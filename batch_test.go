package npdbench

import (
	"runtime"
	"testing"

	"npdbench/internal/core"
	"npdbench/internal/npd"
)

// TestBatchRowIdentical runs all 21 NPD queries on engines that differ only
// in Options.BatchSize — 1 (the row-at-a-time executor) versus the default
// vectorized batches — and asserts the answers are identical row-for-row
// (the ResultSet rendering is order-sensitive). It runs at sequential and
// at NumCPU intra-query parallelism, so the batched morsel/partition paths
// are covered too; ci.sh runs the package under -race, which makes the
// parallel variant a real race detector for shared segments and scratch
// buffers.
func TestBatchRowIdentical(t *testing.T) {
	for _, par := range []int{1, runtime.NumCPU()} {
		spec := parallelSpec(t)
		rowOpts := core.DefaultOptions()
		rowOpts.Parallelism = par
		rowOpts.BatchSize = 1
		rowEng, err := core.NewEngine(spec, rowOpts)
		if err != nil {
			t.Fatal(err)
		}
		batchOpts := core.DefaultOptions()
		batchOpts.Parallelism = par
		batchEng, err := core.NewEngine(spec, batchOpts)
		if err != nil {
			t.Fatal(err)
		}
		batchWorkDone := false
		for _, q := range npd.Queries() {
			parsed, err := rowEng.ParseQuery(q.SPARQL)
			if err != nil {
				t.Fatal(err)
			}
			row, err := rowEng.Answer(parsed)
			if err != nil {
				t.Fatalf("par=%d %s (row path): %v", par, q.ID, err)
			}
			batch, err := batchEng.Answer(parsed.Clone())
			if err != nil {
				t.Fatalf("par=%d %s (batched): %v", par, q.ID, err)
			}
			if got, want := batch.String(), row.String(); got != want {
				t.Errorf("par=%d %s: batched answer differs from row path\nbatched:\n%s\nrow path:\n%s",
					par, q.ID, got, want)
			}
			if batch.Stats.Parallel.Batches > 0 {
				batchWorkDone = true
			}
			if row.Stats.Parallel.Batches > 0 {
				t.Errorf("par=%d %s: row-at-a-time engine reported %d batches",
					par, q.ID, row.Stats.Parallel.Batches)
			}
		}
		if !batchWorkDone {
			t.Errorf("par=%d: no query reported batch execution work; the vectorized path never ran", par)
		}
	}
}
