package npdbench

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"npdbench/internal/core"
	"npdbench/internal/npd"
)

var updatePrune = flag.Bool("update", false, "rewrite the static-pruning golden file")

// renderRows flattens a result set into sorted row strings so that answer
// sets can be compared independently of arm ordering in the generated SQL.
func renderRows(a *core.Answer) []string {
	out := make([]string, 0, a.Len())
	for _, row := range a.Rows {
		parts := make([]string, len(row))
		for i, t := range row {
			if t.IsZero() {
				parts[i] = "_"
			} else {
				parts[i] = t.String()
			}
		}
		out = append(out, strings.Join(parts, "\t"))
	}
	sort.Strings(out)
	return out
}

func pruneEngines(t testing.TB) (on, off *core.Engine) {
	t.Helper()
	db, err := npd.NewSeededDatabase(npd.SeedConfig{Scale: 0.15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	spec := core.Spec{
		Onto: npd.NewOntology(), Mapping: npd.NewMapping(),
		DB: db, Prefixes: npd.Prefixes(),
	}
	base := core.Options{
		TMappings: true, Existential: true, Constraints: true,
		VerifyPlans: core.VerifyOn,
	}
	withPrune := base
	withPrune.StaticPrune = true
	on, err = core.NewEngine(spec, withPrune)
	if err != nil {
		t.Fatal(err)
	}
	off, err = core.NewEngine(spec, base)
	if err != nil {
		t.Fatal(err)
	}
	return on, off
}

// TestStaticPruneSoundNPD runs every NPD query through two engines that
// differ only in Options.StaticPrune, both with the planck verifier forced
// on. Static pruning must (a) verify cleanly at every pipeline stage,
// (b) produce identical answer sets, and (c) statically delete work on at
// least one query.
func TestStaticPruneSoundNPD(t *testing.T) {
	engOn, engOff := pruneEngines(t)
	totalPruned := 0
	for _, q := range npd.Queries() {
		parsed, err := engOn.ParseQuery(q.SPARQL)
		if err != nil {
			t.Fatal(err)
		}
		aOn, err := engOn.Answer(parsed)
		if err != nil {
			t.Fatalf("%s (static pruning on): %v", q.ID, err)
		}
		aOff, err := engOff.Answer(parsed)
		if err != nil {
			t.Fatalf("%s (static pruning off): %v", q.ID, err)
		}
		rOn, rOff := renderRows(aOn), renderRows(aOff)
		if len(rOn) != len(rOff) {
			t.Errorf("%s: answers diverge — %d rows pruned, %d unpruned", q.ID, len(rOn), len(rOff))
			continue
		}
		for i := range rOn {
			if rOn[i] != rOff[i] {
				t.Errorf("%s: row %d diverges:\npruned:   %s\nunpruned: %s", q.ID, i, rOn[i], rOff[i])
				break
			}
		}
		st := aOn.Stats
		pruned := st.StaticPrunedCQs + st.StaticPrunedArms + st.StaticUnsatFilters
		totalPruned += pruned
		if pruned > 0 {
			t.Logf("%s: statically pruned %d CQs, %d candidates/arms, %d filter sets (arms %d)",
				q.ID, st.StaticPrunedCQs, st.StaticPrunedArms, st.StaticUnsatFilters, st.UnionArms)
		}
	}
	if totalPruned == 0 {
		t.Error("no NPD query had any statically pruned work; the ablation is vacuous")
	}
}

// TestStaticPruneGoldenNPD pins the per-query static-pruning counts for the
// 21 NPD queries. Regenerate with: go test . -run StaticPruneGolden -update
func TestStaticPruneGoldenNPD(t *testing.T) {
	engOn, _ := pruneEngines(t)
	var sb strings.Builder
	sb.WriteString("query\tstatic_cqs\tstatic_arms\tstatic_filters\tunion_arms\n")
	for _, q := range npd.Queries() {
		ans, err := engOn.Query(q.SPARQL)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		st := ans.Stats
		fmt.Fprintf(&sb, "%s\t%d\t%d\t%d\t%d\n",
			q.ID, st.StaticPrunedCQs, st.StaticPrunedArms, st.StaticUnsatFilters, st.UnionArms)
	}
	got := sb.String()
	path := filepath.Join("testdata", "static_prune.golden")
	if *updatePrune {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (generate with -update)", err)
	}
	if got != string(want) {
		t.Errorf("static-pruning counts drifted from golden; review and regenerate with -update\ngot:\n%s\nwant:\n%s", got, want)
	}
}
