package npdbench

import (
	"sync"
	"testing"

	"npdbench/internal/core"
	"npdbench/internal/npd"
)

func parallelSpec(t testing.TB) core.Spec {
	t.Helper()
	db, err := npd.NewSeededDatabase(npd.SeedConfig{Scale: 0.15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return core.Spec{
		Onto: npd.NewOntology(), Mapping: npd.NewMapping(),
		DB: db, Prefixes: npd.Prefixes(),
	}
}

// TestParallelSequentialIdentical runs all 21 NPD queries on two engines
// that differ only in Options.Parallelism and asserts the answers are
// identical row-for-row (the ResultSet rendering is order-sensitive), so
// parallel execution — union-arm fan-out, partitioned joins, morsel
// scans — is provably answer- and order-preserving, including the ORDER
// BY/LIMIT and UNION-dedup queries. ci.sh also runs this test under
// GOMAXPROCS=1, where parallel scheduling interleaves maximally
// differently from the multi-core case.
func TestParallelSequentialIdentical(t *testing.T) {
	spec := parallelSpec(t)
	seqEng, err := core.NewEngine(spec, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Parallelism = 4
	parEng, err := core.NewEngine(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	parWorkDone := false
	for _, q := range npd.Queries() {
		parsed, err := seqEng.ParseQuery(q.SPARQL)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := seqEng.Answer(parsed)
		if err != nil {
			t.Fatalf("%s (sequential): %v", q.ID, err)
		}
		par, err := parEng.Answer(parsed.Clone())
		if err != nil {
			t.Fatalf("%s (parallel): %v", q.ID, err)
		}
		if got, want := par.String(), seq.String(); got != want {
			t.Errorf("%s: parallel answer differs from sequential\nparallel:\n%s\nsequential:\n%s",
				q.ID, got, want)
		}
		if par.Stats.Parallel.Tasks > 0 {
			parWorkDone = true
		}
	}
	if !parWorkDone {
		t.Error("no query reported parallel execution work; the parallel path never ran")
	}
}

// TestParallelConcurrentStress is the clients × workers race test: every
// NPD query runs concurrently against one engine with intra-query
// parallelism on, so inter-query pool sharing, the plan cache, and the
// statement caches are all exercised under -race. Each client checks its
// answers against the precomputed sequential reference.
func TestParallelConcurrentStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	spec := parallelSpec(t)
	opts := core.DefaultOptions()
	opts.Parallelism = 4
	eng, err := core.NewEngine(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	seqEng, err := core.NewEngine(spec, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	queries := npd.Queries()
	want := make(map[string]string, len(queries))
	for _, q := range queries {
		parsed, err := seqEng.ParseQuery(q.SPARQL)
		if err != nil {
			t.Fatal(err)
		}
		ans, err := seqEng.Answer(parsed)
		if err != nil {
			t.Fatalf("%s (reference): %v", q.ID, err)
		}
		want[q.ID] = ans.String()
	}
	const clients = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			for _, q := range queries {
				parsed, err := eng.ParseQuery(q.SPARQL)
				if err != nil {
					errs <- err
					return
				}
				ans, err := eng.Answer(parsed)
				if err != nil {
					errs <- err
					return
				}
				if ans.String() != want[q.ID] {
					t.Errorf("client %d %s: concurrent parallel answer differs from sequential", client, q.ID)
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
