module npdbench

go 1.22
