module npdbench

go 1.23
