// Command obdaqd is the long-running SPARQL endpoint over an NPD
// benchmark instance: the serving-mode counterpart of obdaq. It speaks
// the SPARQL 1.1 protocol (GET ?query= and POST form or
// application/sparql-query, JSON and TSV results), bounds concurrency
// with admission control, enforces a per-query deadline through the
// engine's cooperative cancellation, and exposes /metrics, /healthz and
// (optionally) /debug/slowlog.
//
//	obdaqd -http :8585                     # serve NPD1 on port 8585
//	obdaqd -http :8585 -scale 5 -parallel 4
//	obdaqd -http :8585 -timeout 5s -maxinflight 8
//	kill -HUP <pid>                        # quiesced mapping/constraint reload
//	kill -TERM <pid>                       # graceful drain and exit
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"npdbench/internal/core"
	"npdbench/internal/mixer"
	"npdbench/internal/npd"
	"npdbench/internal/obs"
	"npdbench/internal/server"
	"npdbench/internal/sqldb"
)

func main() {
	var (
		httpAddr    = flag.String("http", ":8585", "listen address for the SPARQL endpoint")
		scale       = flag.Float64("scale", 1, "NPDk scale factor")
		seedScale   = flag.Float64("seedscale", 1, "seed instance size multiplier")
		seed        = flag.Int64("seed", 42, "random seed")
		profile     = flag.String("profile", "hashjoin", "database profile: hashjoin | sortmerge")
		existential = flag.Bool("existential", true, "enable tree-witness reasoning")
		constraints = flag.Bool("constraints", true, "enable schema-constraint optimizations")
		staticPrune = flag.Bool("staticprune", true, "statically prune unsatisfiable CQs, candidates, and arms")
		planCache   = flag.Bool("plancache", true, "cache compiled BGP plans across requests")
		planCacheSz = flag.Int("plancachesize", 0, "plan cache capacity in entries (0 = engine default)")
		parallel    = flag.Int("parallel", 0, "intra-query parallel workers (0 = NumCPU, 1 = sequential)")
		batchsize   = flag.Int("batchsize", 0, "vectorized executor batch size (0 = default 1024, 1 = row-at-a-time)")
		budgetRows  = flag.Int64("budgetrows", 0, "per-query soft limit on rows scanned (0 = unlimited)")
		budgetBytes = flag.Int64("budgetbytes", 0, "per-query soft limit on bytes materialized (0 = unlimited)")
		slowlogCap  = flag.Int("slowlog", 0, "capture the N slowest executions and serve them on /debug/slowlog")
		slowThresh  = flag.Duration("slowthreshold", 0, "always retain traces of queries at least this slow (e.g. 50ms)")
		sampleRate  = flag.Float64("sample", 0, "probabilistic trace retention rate in [0,1]")
		maxInflight = flag.Int("maxinflight", server.DefaultMaxInflight, "concurrently executing queries before arrivals get 429")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-query deadline (0 = none)")
		retryAfter  = flag.Duration("retryafter", time.Second, "advisory Retry-After stamped on 429 responses")
		drainWait   = flag.Duration("draintimeout", 15*time.Second, "in-flight request drain budget on shutdown")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: obdaqd [flags] (obdaqd takes no positional arguments)")
		os.Exit(2)
	}

	db, genTime, err := mixer.BuildInstance(*scale, *seedScale, *seed)
	if err != nil {
		fatal(err)
	}
	switch *profile {
	case "hashjoin":
		db.Profile = sqldb.ProfileHashJoin
	case "sortmerge":
		db.Profile = sqldb.ProfileSortMerge
	default:
		fatal(fmt.Errorf("unknown profile %q", *profile))
	}
	fmt.Printf("obdaqd: instance NPD%g: %d rows (built in %v)\n", *scale, db.TotalRows(), genTime.Round(1e6))

	// The daemon always carries a metrics registry (it serves /metrics);
	// the slow log and sampler remain opt-in like obdaq's.
	observer := &obs.Observer{
		Metrics: obs.NewRegistry(),
		Budget:  obs.QueryBudget{MaxRowsScanned: *budgetRows, MaxBytesMaterialized: *budgetBytes},
	}
	if *sampleRate > 0 || *slowThresh > 0 {
		observer.Sampler = &obs.Sampler{Rate: *sampleRate, SlowThreshold: *slowThresh, Seed: uint64(*seed)}
	}
	if *slowlogCap > 0 {
		observer.SlowLog = obs.NewSlowLog(*slowlogCap)
	}

	spec := core.Spec{Onto: npd.NewOntology(), Mapping: npd.NewMapping(), DB: db, Prefixes: npd.Prefixes()}
	eng, err := core.NewEngine(spec, core.Options{
		TMappings:     true,
		Existential:   *existential,
		Constraints:   *constraints,
		StaticPrune:   *staticPrune,
		PlanCache:     *planCache,
		PlanCacheSize: *planCacheSz,
		Parallelism:   *parallel,
		BatchSize:     *batchsize,
		Obs:           observer,
	})
	if err != nil {
		fatal(err)
	}
	ls := eng.LoadStats()
	fmt.Printf("obdaqd: starting phase %v (%d mapping assertions, %d after T-mapping saturation)\n",
		ls.LoadTime.Round(1e6), ls.MappingAssertions, ls.SaturatedAssertions)

	srv := server.New(eng, server.Config{
		MaxInflight:  *maxInflight,
		QueryTimeout: *timeout,
		RetryAfter:   *retryAfter,
		Obs:          observer,
	})
	hs := &http.Server{
		Addr:              *httpAddr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	addr, stop, err := server.StartHTTP(hs)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("obdaqd: serving SPARQL on %s (maxinflight=%d timeout=%v)\n", addr, *maxInflight, *timeout)

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGHUP, syscall.SIGINT, syscall.SIGTERM)
	for sig := range sigc {
		if sig == syscall.SIGHUP {
			// Quiesced reconfiguration: the server's write lock drains
			// in-flight queries, then the engine re-reads its mapping,
			// re-derives constraints, and drops cached plans.
			srv.Reload(func(e *core.Engine) {
				e.SetMapping(npd.NewMapping())
				e.SetConstraints(*constraints)
				e.InvalidatePlans()
			})
			fmt.Println("obdaqd: reload complete")
			continue
		}
		fmt.Printf("obdaqd: %v: draining (budget %v)\n", sig, *drainWait)
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		err := stop(ctx)
		cancel()
		if err != nil {
			fatal(fmt.Errorf("shutdown: %w", err))
		}
		fmt.Println("obdaqd: shutdown complete")
		return
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "obdaqd:", err)
	os.Exit(1)
}
