// Command npdgen builds scaled NPD benchmark instances with VIG and
// reports their shape, optionally dumping table contents as CSV.
//
//	npdgen -scale 5                      # NPD5: seed pumped by growth 4
//	npdgen -scale 10 -csv /tmp/npd10     # also dump CSV files
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"npdbench/internal/npd"
	"npdbench/internal/obs"
	"npdbench/internal/rdf"
	"npdbench/internal/sqldb"
	"npdbench/internal/triplestore"
	"npdbench/internal/vig"
)

func main() {
	var (
		scale     = flag.Float64("scale", 1, "NPDk scale factor (1 = seed only)")
		seedScale = flag.Float64("seedscale", 1, "seed instance size multiplier")
		seed      = flag.Int64("seed", 42, "random seed")
		csvDir    = flag.String("csv", "", "directory to dump per-table CSV files")
		ntFile    = flag.String("ntriples", "", "file to dump the virtual RDF graph as N-Triples")
		random    = flag.Bool("random", false, "use the random baseline generator instead of VIG")
		verify    = flag.Bool("verify", true, "check referential integrity after generation")
	)
	flag.Parse()

	start := obs.Now()
	db, err := npd.NewSeededDatabase(npd.SeedConfig{Scale: *seedScale, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("seeded %d rows in %d tables (%v)\n", db.TotalRows(), npd.TableCount(), obs.Since(start).Round(time.Millisecond))

	if *scale > 1 {
		start = obs.Now()
		var rep *vig.Report
		if *random {
			rep, err = vig.NewRandom(*seed).Generate(db, *scale-1)
		} else {
			analysis, aerr := vig.Analyze(db)
			if aerr != nil {
				fatal(aerr)
			}
			rep, err = vig.New(analysis, *seed).Generate(db, *scale-1)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("pumped to NPD%g: +%d rows (%v)\n", *scale, rep.TotalInserted(), obs.Since(start).Round(time.Millisecond))
	}

	if *verify {
		if errs := db.CheckIntegrity(); len(errs) > 0 {
			fmt.Fprintf(os.Stderr, "npdgen: %d integrity violations, first: %v\n", len(errs), errs[0])
			os.Exit(1)
		}
		fmt.Println("referential integrity: OK")
	}
	fmt.Println(npd.SortedTableSizes(db))

	if *csvDir != "" {
		if err := dumpCSV(db, *csvDir); err != nil {
			fatal(err)
		}
		fmt.Printf("CSV dump written to %s\n", *csvDir)
	}

	if *ntFile != "" {
		f, err := os.Create(*ntFile)
		if err != nil {
			fatal(err)
		}
		store := triplestore.New()
		if err := npd.NewMapping().Materialize(db, func(t rdf.Triple) { store.Add(t) }); err != nil {
			fatal(err)
		}
		if err := rdf.WriteNTriples(f, store.Triples()); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("virtual graph (%d triples) written to %s\n", store.Len(), *ntFile)
	}
}

func dumpCSV(db *sqldb.Database, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, t := range db.Tables() {
		f, err := os.Create(filepath.Join(dir, t.Def.Name+".csv"))
		if err != nil {
			return err
		}
		var sb strings.Builder
		for i, c := range t.Def.Columns {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(c.Name)
		}
		sb.WriteByte('\n')
		for _, row := range t.Rows {
			for i, v := range row {
				if i > 0 {
					sb.WriteByte(',')
				}
				s := v.String()
				if strings.ContainsAny(s, ",\"\n") {
					s = `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
				}
				if !v.IsNull() {
					sb.WriteString(s)
				}
			}
			sb.WriteByte('\n')
		}
		if _, err := f.WriteString(sb.String()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "npdgen:", err)
	os.Exit(1)
}
