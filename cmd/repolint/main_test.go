package main

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func lintSource(t *testing.T, src string) []finding {
	return lintPath(t, "internal/pkg/fixture.go", src)
}

func lintPath(t *testing.T, path, src string) []finding {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return lintFile(fset, path, file)
}

func TestDiscardedError(t *testing.T) {
	findings := lintSource(t, `package p
func f() {
	err := g()
	_ = err
}
func g() error { return nil }
`)
	if len(findings) != 1 || !strings.Contains(findings[0].msg, "discarded") {
		t.Fatalf("findings: %v", findings)
	}
	if findings[0].pos.Line != 4 {
		t.Fatalf("line = %d, want 4", findings[0].pos.Line)
	}
}

func TestDiscardedErrorIgnoresOtherBlanks(t *testing.T) {
	findings := lintSource(t, `package p
func f() {
	v := 1
	_ = v
	_, ok := m["k"]
	_ = ok
}
var m map[string]int
`)
	if len(findings) != 0 {
		t.Fatalf("unexpected findings: %v", findings)
	}
}

func TestIteratorNeverClosed(t *testing.T) {
	findings := lintSource(t, `package p
func f() {
	it := OpenRows()
	for it.Next() {
	}
}
`)
	if len(findings) != 1 || !strings.Contains(findings[0].msg, "never Closed") {
		t.Fatalf("findings: %v", findings)
	}
}

func TestIteratorClosedDirectly(t *testing.T) {
	findings := lintSource(t, `package p
func f() {
	it := OpenRows()
	defer it.Close()
	other := table.NewIterator()
	other.Close()
}
`)
	if len(findings) != 0 {
		t.Fatalf("unexpected findings: %v", findings)
	}
}

func TestIteratorEscapes(t *testing.T) {
	findings := lintSource(t, `package p
func ret() *Rows {
	it := OpenRows()
	return it
}
func pass() {
	it := OpenRows()
	consume(it)
}
func store(s *state) {
	it := OpenRows()
	s.rows = it
}
`)
	if len(findings) != 0 {
		t.Fatalf("unexpected findings: %v", findings)
	}
}

func TestIteratorUsedAsPlainValue(t *testing.T) {
	// Values with iterator-like provenance that are ranged over or used in
	// arithmetic/comparisons are plain data (slices, counts), not
	// closable resources.
	findings := lintSource(t, `package p
func f() {
	rows := TableRows()
	for _, r := range rows {
		use(r)
	}
	n := db.TotalRows()
	if n != 0 {
		use(n)
	}
}
`)
	if len(findings) != 0 {
		t.Fatalf("unexpected findings: %v", findings)
	}
}

func TestIteratorNamingHeuristics(t *testing.T) {
	findings := lintSource(t, `package p
func f() {
	a := OpenFile("x")
	b := db.ScanRows()
	c := idx.KeyIterator()
	plain := compute()
	_ = plain
}
`)
	if len(findings) != 3 {
		t.Fatalf("want 3 findings (a, b, c), got %v", findings)
	}
}

func TestRawTimeNowFlagged(t *testing.T) {
	src := `package p
import "time"
func f() time.Duration {
	start := time.Now()
	return time.Since(start)
}
`
	findings := lintPath(t, "internal/core/engine.go", src)
	if len(findings) != 2 {
		t.Fatalf("findings: %v", findings)
	}
	for _, f := range findings {
		if !strings.Contains(f.msg, "obs.") {
			t.Fatalf("message should point at the obs funnel: %v", f)
		}
	}
	if findings[0].pos.Line != 4 || findings[1].pos.Line != 5 {
		t.Fatalf("lines: %v", findings)
	}
}

func TestRawTimeNowExemptions(t *testing.T) {
	src := `package p
import "time"
func f() time.Time { return time.Now() }
`
	for _, path := range []string{
		"internal/obs/clock.go",
		"internal/mixer/mixer.go",
		"internal/core/engine_test.go",
	} {
		if findings := lintPath(t, path, src); len(findings) != 0 {
			t.Errorf("%s should be exempt: %v", path, findings)
		}
	}
	// Unrelated time package members stay legal everywhere.
	other := `package p
import "time"
func f() time.Duration { return 5 * time.Millisecond }
func g() { time.Sleep(time.Millisecond) }
`
	if findings := lintPath(t, "internal/core/x.go", other); len(findings) != 0 {
		t.Errorf("non-Now/Since time calls flagged: %v", findings)
	}
}
