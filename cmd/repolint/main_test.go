package main

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"npdbench/internal/lint"
)

// report builds a minimal lint.Report carrying the given suppressions.
func report(ss ...lint.Suppression) *lint.Report {
	return &lint.Report{Suppressions: ss}
}

func suppression(file string, line int, pass string, used bool) lint.Suppression {
	return lint.Suppression{
		Pass: pass, Reason: "test", Used: used,
		Pos: token.Position{Filename: file, Line: line},
	}
}

// TestCheckSuppressionsEmptyAllowlist checks the -strict default: every
// suppression directive is rejected until it is allowlisted, and unused
// directives are rejected regardless.
func TestCheckSuppressionsEmptyAllowlist(t *testing.T) {
	rep := report(
		suppression("internal/core/plancache.go", 85, "lockguard", true),
		suppression("internal/sqldb/plan.go", 10, "sharedmut", false),
	)
	msgs := checkSuppressions(rep, "")
	if len(msgs) != 3 {
		t.Fatalf("got %d messages, want 3 (2 not-allowed + 1 unused): %v", len(msgs), msgs)
	}
	joined := strings.Join(msgs, "\n")
	if !strings.Contains(joined, "not in the allowlist") {
		t.Errorf("missing not-in-allowlist message: %v", msgs)
	}
	if !strings.Contains(joined, "matches no diagnostic") {
		t.Errorf("missing stale-suppression message: %v", msgs)
	}
}

// TestCheckSuppressionsAllowlisted checks that an allowlist entry (with
// comments and extra whitespace tolerated) admits a used suppression.
func TestCheckSuppressionsAllowlisted(t *testing.T) {
	allow := filepath.Join(t.TempDir(), "allow.txt")
	content := "# documented suppressions\n\n  internal/core/plancache.go   lockguard  \n"
	if err := os.WriteFile(allow, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	rep := report(suppression("internal/core/plancache.go", 85, "lockguard", true))
	if msgs := checkSuppressions(rep, allow); len(msgs) != 0 {
		t.Errorf("allowlisted used suppression rejected: %v", msgs)
	}

	// The same entry does not cover a different pass in the same file.
	rep = report(suppression("internal/core/plancache.go", 85, "sharedmut", true))
	if msgs := checkSuppressions(rep, allow); len(msgs) != 1 {
		t.Errorf("got %d messages for a non-allowlisted pass, want 1: %v", len(msgs), msgs)
	}
}

// TestCheckSuppressionsStale checks that an allowlisted but unmatched
// directive is still rejected: stale suppressions hide nothing and must
// be deleted.
func TestCheckSuppressionsStale(t *testing.T) {
	allow := filepath.Join(t.TempDir(), "allow.txt")
	if err := os.WriteFile(allow, []byte("a.go lockguard\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep := report(suppression("a.go", 3, "lockguard", false))
	msgs := checkSuppressions(rep, allow)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "matches no diagnostic") {
		t.Errorf("stale suppression not rejected: %v", msgs)
	}
}

// TestRepoIsStrictClean is the in-tree mirror of the ci gate: the engine
// over the whole module must report nothing unsuppressed, and every
// suppression must be documented in the committed allowlist.
func TestRepoIsStrictClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typed whole-module load is slow; skipped with -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		t.Fatalf("typed load: %v", err)
	}
	rep := lint.Run(mod, lint.Catalog())
	for _, d := range rep.Diags {
		// Info findings (the hotalloc work list) are pinned by the hot-report
		// golden, not treated as gate failures — mirror the exit policy.
		if d.Sev < lint.SevWarning {
			continue
		}
		t.Errorf("unsuppressed finding: %s", d)
	}
	if msgs := checkSuppressions(rep, filepath.Join(root, "testdata", "repolint_allow.txt")); len(msgs) > 0 {
		for _, m := range msgs {
			t.Errorf("suppression policy: %s", m)
		}
	}
}
