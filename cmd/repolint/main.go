// Command repolint runs the repository's typed static-analysis engine
// (internal/lint) over the module: the whole tree is loaded through
// go/parser + go/types + go/importer and an ordered catalog of type-aware
// passes checks the invariants the engine implementation has to hold —
// shared-storage aliasing/ownership, guarded-field lock discipline
// (interprocedural, via call-graph summaries), atomic-access consistency,
// goroutine hygiene, iterator close, discarded errors, the observability
// timing funnel, http server hygiene, cooperative-stop flow, and hot-path
// allocation reporting.
//
//	repolint                   # text report over the whole module
//	repolint internal cmd      # restrict to directories
//	repolint -json             # machine-readable report (obdalint shape)
//	repolint -strict           # any finding fails; suppressions must be
//	                           # allowlisted and used
//	repolint -golden FILE      # diff the canonical report against FILE
//	repolint -allow FILE       # suppression allowlist ("path pass" lines)
//	repolint -budget DURATION  # fail when load+passes exceed the budget
//	repolint -quiet            # summary line only
//	repolint -hotreport        # ranked per-iteration allocation work list
//	repolint -hotgolden FILE   # diff the hot report against FILE
//
// Exits 0 when clean, 1 on error- or warning-severity findings (or, with
// -strict, suppression / golden / budget violations), 2 on load errors.
// Info-severity findings (the hotalloc work list) never affect the exit
// code. ci.sh gates on `repolint -strict` with the golden repo report,
// the golden hot report, the documented suppression allowlist, and the
// timing budget.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"npdbench/internal/lint"
	"npdbench/internal/obs"
)

func main() {
	var (
		asJSON    = flag.Bool("json", false, "emit the report as JSON")
		strict    = flag.Bool("strict", false, "fail on any finding; check suppressions against the allowlist")
		quiet     = flag.Bool("quiet", false, "print only the summary line")
		golden    = flag.String("golden", "", "compare the canonical text report against this file")
		allow     = flag.String("allow", "", "suppression allowlist file")
		budget    = flag.Duration("budget", 0, "fail when typed load + passes exceed this wall time")
		hotreport = flag.Bool("hotreport", false, "print the ranked hot-path allocation work list instead of the report")
		hotgolden = flag.String("hotgolden", "", "compare the hot report against this file")
	)
	flag.Parse()

	root, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loadStart := obs.Now()
	mod, err := lint.LoadModule(root, flag.Args()...)
	if err != nil {
		fatal(err)
	}
	loadTime := obs.Since(loadStart)
	rep := lint.Run(mod, lint.Catalog())
	rep.LoadTime = loadTime

	// Info findings are work items (the hotalloc list), not gate
	// failures: only error and warning severities affect the exit code.
	exit := 0
	if rep.Count(lint.SevError)+rep.Count(lint.SevWarning) > 0 {
		exit = 1
	}

	if *hotreport || *hotgolden != "" {
		hot := lint.RenderHotReport(rep.Hot, 25)
		if *hotreport {
			fmt.Print(hot)
		}
		if *hotgolden != "" {
			want, err := os.ReadFile(*hotgolden)
			if err != nil {
				fatal(err)
			}
			if hot != string(want) {
				fmt.Fprintf(os.Stderr, "repolint: hot report differs from golden %s\n--- golden\n%s--- got\n%s", *hotgolden, want, hot)
				os.Exit(1)
			}
		}
		if *hotreport {
			os.Exit(exit)
		}
	}

	switch {
	case *asJSON:
		b, err := json.MarshalIndent(rep.Payload(), "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(b))
	case *quiet:
		fmt.Println(rep.Summary())
	default:
		fmt.Print(rep.String())
	}

	if *strict {
		if msgs := checkSuppressions(rep, *allow); len(msgs) > 0 {
			for _, m := range msgs {
				fmt.Fprintln(os.Stderr, "repolint:", m)
			}
			exit = 1
		}
	}
	if *golden != "" {
		want, err := os.ReadFile(*golden)
		if err != nil {
			fatal(err)
		}
		if got := rep.String(); got != string(want) {
			fmt.Fprintf(os.Stderr, "repolint: report differs from golden %s\n--- golden\n%s--- got\n%s", *golden, want, got)
			exit = 1
		}
	}
	if *budget > 0 {
		total := rep.LoadTime + rep.CallgraphTime + rep.SummaryTime + rep.PassTime
		if total > *budget {
			fmt.Fprintf(os.Stderr, "repolint: load+callgraph+summaries+passes took %v, over the %v budget (load %v, callgraph %v, summaries %v, passes %v)\n",
				total.Round(time.Millisecond), *budget,
				rep.LoadTime.Round(time.Millisecond), rep.CallgraphTime.Round(time.Millisecond),
				rep.SummaryTime.Round(time.Millisecond), rep.PassTime.Round(time.Millisecond))
			exit = 1
		}
	}
	os.Exit(exit)
}

// checkSuppressions enforces the -strict suppression policy: every
// //lint:ignore in the tree must appear in the allowlist ("<path> <pass>"
// lines, # comments) and must have matched a diagnostic — a stale
// suppression hides nothing and has to be deleted.
func checkSuppressions(rep *lint.Report, allowFile string) []string {
	allowed := map[string]bool{}
	if allowFile != "" {
		b, err := os.ReadFile(allowFile)
		if err != nil {
			return []string{err.Error()}
		}
		for _, line := range strings.Split(string(b), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			allowed[strings.Join(strings.Fields(line), " ")] = true
		}
	}
	var msgs []string
	for _, s := range rep.Suppressions {
		key := s.Pos.Filename + " " + s.Pass
		if !allowed[key] {
			msgs = append(msgs, fmt.Sprintf("%s:%d: suppression of %s is not in the allowlist (%s)",
				s.Pos.Filename, s.Pos.Line, s.Pass, key))
		}
		if !s.Used {
			msgs = append(msgs, fmt.Sprintf("%s:%d: suppression of %s matches no diagnostic; delete it",
				s.Pos.Filename, s.Pos.Line, s.Pass))
		}
	}
	return msgs
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repolint:", err)
	os.Exit(2)
}
