// Command repolint enforces repository-local coding discipline that go vet
// does not cover, using nothing but the standard library's go/ast:
//
//   - iterator hygiene: a value obtained from an Open*/*Iterator/*Rows
//     call must be Closed (directly or deferred) within the same function,
//     or returned/assigned onward for the caller to close;
//   - no discarded errors: `_ = err` silently swallows a value that was
//     important enough to assign a name to;
//   - timing funnel: raw time.Now()/time.Since() calls are reserved to
//     internal/obs (the clock funnel) and internal/mixer (the measurement
//     harness); everything else must go through obs.Now/obs.Since so the
//     observability layer stays the single timing authority. Test files are
//     exempt.
//
// Usage: repolint [dirs...]   (default: internal)
// Exits 1 when any finding is reported, making it suitable as a ci.sh gate.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// finding is one lint diagnostic.
type finding struct {
	pos token.Position
	msg string
}

func (f finding) String() string {
	return fmt.Sprintf("%s:%d: %s", f.pos.Filename, f.pos.Line, f.msg)
}

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{"internal"}
	}
	fset := token.NewFileSet()
	var findings []finding
	for _, dir := range dirs {
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if d.Name() == "testdata" {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") {
				return nil
			}
			file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
			if err != nil {
				return err
			}
			findings = append(findings, lintFile(fset, path, file)...)
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "repolint:", err)
			os.Exit(2)
		}
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// lintFile runs every check over one parsed file.
func lintFile(fset *token.FileSet, path string, file *ast.File) []finding {
	var out []finding
	timingExempt := timingExemptPath(path)
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, checkIterators(fset, fn.Body)...)
			}
		case *ast.AssignStmt:
			out = append(out, checkDiscardedError(fset, fn)...)
		case *ast.CallExpr:
			if !timingExempt {
				out = append(out, checkTimeNow(fset, fn)...)
			}
		}
		return true
	})
	return out
}

// timingExemptPath reports whether a file may call time.Now/time.Since
// directly: the obs clock funnel itself, the mixer measurement harness, and
// test files (fixtures time whatever they like).
func timingExemptPath(path string) bool {
	p := filepath.ToSlash(path)
	return strings.HasSuffix(p, "_test.go") ||
		strings.Contains(p, "internal/obs/") ||
		strings.Contains(p, "internal/mixer/")
}

// checkTimeNow flags raw time.Now()/time.Since() calls outside the exempt
// packages: ad-hoc timing bypasses the observability clock funnel.
func checkTimeNow(fset *token.FileSet, call *ast.CallExpr) []finding {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != "time" {
		return nil
	}
	if sel.Sel.Name != "Now" && sel.Sel.Name != "Since" {
		return nil
	}
	return []finding{{
		pos: fset.Position(call.Pos()),
		msg: fmt.Sprintf("raw time.%s call: use obs.%s so timing stays behind the observability funnel",
			sel.Sel.Name, sel.Sel.Name),
	}}
}

// checkDiscardedError flags `_ = err`: every left-hand side is blank and
// the right-hand side is a bare identifier named err (or *Err-suffixed).
func checkDiscardedError(fset *token.FileSet, as *ast.AssignStmt) []finding {
	if len(as.Lhs) != len(as.Rhs) {
		return nil
	}
	allBlank := true
	for _, l := range as.Lhs {
		id, ok := l.(*ast.Ident)
		if !ok || id.Name != "_" {
			allBlank = false
			break
		}
	}
	if !allBlank {
		return nil
	}
	var out []finding
	for _, r := range as.Rhs {
		id, ok := r.(*ast.Ident)
		if !ok {
			continue
		}
		if id.Name == "err" || strings.HasSuffix(id.Name, "Err") {
			out = append(out, finding{
				pos: fset.Position(as.Pos()),
				msg: fmt.Sprintf("error value %q discarded with a blank assignment", id.Name),
			})
		}
	}
	return out
}

// iteratorCall reports whether a call expression looks like it yields a
// resource that must be closed: Open*(...), *Iterator(...), *Rows(...).
func iteratorCall(call *ast.CallExpr) bool {
	var name string
	switch f := call.Fun.(type) {
	case *ast.Ident:
		name = f.Name
	case *ast.SelectorExpr:
		name = f.Sel.Name
	default:
		return false
	}
	return strings.HasPrefix(name, "Open") ||
		strings.HasSuffix(name, "Iterator") ||
		strings.HasSuffix(name, "Rows")
}

// checkIterators flags variables bound to iterator-yielding calls that are
// never Closed in the function body. A variable that escapes the function
// (returned, stored in a field or another variable, passed to a call) is
// considered handed off and exempt — the discipline travels with the value.
func checkIterators(fset *token.FileSet, body *ast.BlockStmt) []finding {
	type obtained struct {
		name string
		pos  token.Pos
	}
	var opened []obtained
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !iteratorCall(call) {
			return true
		}
		for _, l := range as.Lhs {
			id, okID := l.(*ast.Ident)
			if !okID || id.Name == "_" || id.Name == "err" {
				continue
			}
			opened = append(opened, obtained{name: id.Name, pos: as.Pos()})
			break // only the first non-blank binding is the iterator
		}
		return true
	})
	if len(opened) == 0 {
		return nil
	}
	closed := map[string]bool{}
	escaped := map[string]bool{}
	markIdent := func(e ast.Expr, set map[string]bool) {
		if id, ok := e.(*ast.Ident); ok {
			set[id.Name] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
				markIdent(sel.X, closed)
				return true
			}
			for _, arg := range x.Args {
				markIdent(arg, escaped)
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				markIdent(r, escaped)
			}
		case *ast.AssignStmt:
			// re-assignment onward (v.field = it, other = it) hands it off
			for _, r := range x.Rhs {
				if _, isCall := r.(*ast.CallExpr); !isCall {
					markIdent(r, escaped)
				}
			}
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					markIdent(kv.Value, escaped)
				} else {
					markIdent(el, escaped)
				}
			}
		case *ast.RangeStmt:
			// ranged over: a slice or map, not a closable iterator — the
			// Open*/*Rows naming heuristic misfired
			markIdent(x.X, escaped)
		case *ast.BinaryExpr:
			// compared or computed with: plain data, not a resource
			markIdent(x.X, escaped)
			markIdent(x.Y, escaped)
		}
		return true
	})
	var out []finding
	for _, o := range opened {
		if closed[o.name] || escaped[o.name] {
			continue
		}
		out = append(out, finding{
			pos: fset.Position(o.pos),
			msg: fmt.Sprintf("iterator %q is never Closed in this function (and does not escape)", o.name),
		})
	}
	return out
}
