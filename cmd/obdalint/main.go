// Command obdalint runs the static analyzer over an OBDA specification —
// by default the NPD benchmark artifacts (ontology, R2RML mapping, schema)
// — and prints the lint report. It is the CI gate for the benchmark
// artifacts: the exit status is non-zero when the analysis finds errors
// (or, with -strict, warnings).
//
//	obdalint            # text report over the NPD artifacts
//	obdalint -json      # machine-readable report
//	obdalint -strict    # warnings also fail
//	obdalint -quiet     # summary line only
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"npdbench/internal/analyze"
	"npdbench/internal/npd"
)

func main() {
	var (
		asJSON = flag.Bool("json", false, "emit the report as JSON")
		strict = flag.Bool("strict", false, "exit non-zero on warnings too")
		quiet  = flag.Bool("quiet", false, "print only the summary line")
	)
	flag.Parse()

	db, err := npd.NewDatabase()
	if err != nil {
		fmt.Fprintln(os.Stderr, "obdalint:", err)
		os.Exit(2)
	}
	res := analyze.Run(analyze.Input{
		Mapping:  npd.NewMapping(),
		Ontology: npd.NewOntology(),
		DB:       db,
	})

	switch {
	case *asJSON:
		payload := struct {
			analyze.ReportJSON
			Constraints analyze.ConstraintStats `json:"constraints"`
		}{res.Report.Payload(), res.Constraints.Stats()}
		b, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "obdalint:", err)
			os.Exit(2)
		}
		fmt.Println(string(b))
	case *quiet:
		fmt.Println(res.Report.Summary())
	default:
		fmt.Print(res.Report.String())
		cs := res.Constraints.Stats()
		fmt.Printf("constraints: %d tables, %d keys, %d not-null columns, %d exact terms\n",
			cs.Tables, cs.Keys, cs.NotNullColumns, cs.ExactTerms)
	}

	if res.Report.HasErrors() || (*strict && res.Report.Count(analyze.SevWarning) > 0) {
		os.Exit(1)
	}
}
