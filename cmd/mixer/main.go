// Command mixer is the automated testing platform of the NPD benchmark
// (the paper's "OBDA Mixer"): it regenerates the evaluation tables and
// figures.
//
// Usage:
//
//	mixer -table 3                 # prior-benchmark ontology statistics
//	mixer -table 7                 # the 21 NPD queries' statistics
//	mixer -table 8                 # VIG vs random generator validation
//	mixer -table 9                 # tractable queries, hash-join profile
//	mixer -table 10                # tractable queries, sort-merge profile
//	mixer -figure 1                # QMpH sweep over both profiles
//	mixer -store                   # OBDA engine vs triple-store baseline
//	mixer -breakdown -scales 1,5   # per-query phase measures
//
// Common flags: -scales, -seedscale, -runs, -warmup, -seed, -existential,
// -clients, -plancache, -plancachesize.
//
// Observability:
//
//	mixer -breakdown -jsonl run.jsonl   # one JSONL record per execution
//	mixer -validatejsonl run.jsonl      # check a run log (the ci.sh gate)
//	mixer -breakdown -http :6060        # serve /metrics, /debug/slowlog + pprof
//	mixer -breakdown -metrics           # print the metric exposition after the run
//	mixer -breakdown -slowlog 16        # capture the 16 slowest executions
//	mixer -breakdown -sample 0.1        # retain ~10% of traces (plus all slow ones)
//	mixer -benchdiff old.json new.json  # compare two benchmark result files;
//	                                    # exits 1 on a p50+p95 regression
//
// Serving (against a running obdaqd endpoint):
//
//	mixer -servebench BENCH_serve.json -endpoint http://127.0.0.1:8585 \
//	    -rates 5,20 -rateduration 5s -tenants 2
//
// fires open-loop Poisson arrivals at each offered rate and reports
// QMpH plus latency-under-load percentiles; exits 1 when a rate
// completes nothing or hits protocol errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	"npdbench/internal/mixer"
	"npdbench/internal/obs"
	"npdbench/internal/server"
	"npdbench/internal/sqldb"
)

func main() {
	var (
		table       = flag.Int("table", 0, "regenerate a paper table (3, 7, 8, 9, 10)")
		figure      = flag.Int("figure", 0, "regenerate a paper figure (1)")
		store       = flag.Bool("store", false, "compare the OBDA engine with the triple-store baseline")
		breakdown   = flag.Bool("breakdown", false, "print per-query phase measures")
		scales      = flag.String("scales", "1,2,5", "comma-separated NPDk scale factors")
		seedScale   = flag.Float64("seedscale", 1, "seed instance size multiplier")
		seed        = flag.Int64("seed", 42, "random seed")
		runs        = flag.Int("runs", 3, "measured runs per query")
		warmup      = flag.Int("warmup", 1, "warmup runs per query")
		existential = flag.Bool("existential", true, "enable tree-witness (existential) reasoning")
		queries     = flag.String("queries", "", "comma-separated query ids (default: all 21)")
		triples     = flag.Bool("triples", true, "count virtual triples per scale")
		clients     = flag.Int("clients", 1, "concurrent query streams")
		planCache   = flag.Bool("plancache", true, "cache compiled BGP plans across runs and clients")
		planCacheSz = flag.Int("plancachesize", 0, "plan cache capacity in entries (0 = engine default)")
		parallel    = flag.Int("parallel", 0, "intra-query parallel workers per engine (0 = NumCPU, 1 = sequential)")
		batchsize   = flag.Int("batchsize", 0, "vectorized executor batch size (0 = default 1024, 1 = row-at-a-time)")
		parbench    = flag.String("parbench", "", "run the parallel-speedup benchmark and write its JSON report to this file")
		batchbench  = flag.String("batchbench", "", "run the batch-size benchmark and write its JSON report to this file")
		jsonl       = flag.String("jsonl", "", "write a JSONL run log (one record per query execution)")
		validate    = flag.String("validatejsonl", "", "validate a JSONL run log and exit")
		httpAddr    = flag.String("http", "", "serve /metrics, /debug/slowlog and net/http/pprof on this address while running")
		metrics     = flag.Bool("metrics", false, "print the Prometheus metric exposition after the run")
		slowlogCap  = flag.Int("slowlog", 0, "capture the N slowest query executions (span tree + usage block)")
		slowThresh  = flag.Duration("slowthreshold", 0, "always retain traces of queries at least this slow (e.g. 50ms)")
		sampleRate  = flag.Float64("sample", 0, "probabilistic trace retention rate in [0,1] (0 = trace everything when -jsonl is on)")
		budgetRows  = flag.Int64("budgetrows", 0, "per-query soft limit on rows scanned (0 = unlimited)")
		budgetBytes = flag.Int64("budgetbytes", 0, "per-query soft limit on bytes materialized (0 = unlimited)")
		servebench  = flag.String("servebench", "", "run the open-loop serving benchmark against -endpoint and write its JSON report to this file")
		endpoint    = flag.String("endpoint", "http://127.0.0.1:8585", "SPARQL endpoint base URL for -servebench")
		rates       = flag.String("rates", "5,20", "comma-separated offered arrival rates (queries/second) for -servebench")
		rateDur     = flag.Duration("rateduration", 5*time.Second, "how long each -servebench arrival rate is sustained")
		tenants     = flag.Int("tenants", 2, "independent open-loop arrival processes for -servebench")
		benchdiff   = flag.Bool("benchdiff", false, "diff two benchmark result files (parbench/batchbench JSON or JSONL run logs): mixer -benchdiff old new")
		diffThresh  = flag.Float64("diffthreshold", 0.30, "relative p50+p95 slowdown that counts as a regression")
		diffMinRuns = flag.Int("diffminruns", 3, "minimum runs per side before a query is judged")
		diffFloor   = flag.Duration("difffloor", 500*time.Microsecond, "absolute p50 delta a regression must clear")
	)
	flag.Parse()

	if *benchdiff {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-benchdiff needs exactly two file arguments, got %d", flag.NArg()))
		}
		opt := mixer.DiffOptions{Threshold: *diffThresh, MinRuns: *diffMinRuns, Floor: *diffFloor}
		rep, err := mixer.BenchDiffFiles(flag.Arg(0), flag.Arg(1), opt)
		if err != nil {
			fatal(err)
		}
		fmt.Print(rep.String())
		if rep.Regressions > 0 {
			os.Exit(1)
		}
		return
	}

	if *servebench != "" {
		rs, err := parseRates(*rates)
		if err != nil {
			fatal(err)
		}
		slcfg := mixer.ServeLoadConfig{
			Endpoint: strings.TrimRight(*endpoint, "/"),
			Rates:    rs,
			Duration: *rateDur,
			Tenants:  *tenants,
			Seed:     *seed,
		}
		if *queries != "" {
			slcfg.QueryIDs = strings.Split(*queries, ",")
		}
		rep, err := mixer.RunServeLoad(slcfg)
		if err != nil {
			fatal(err)
		}
		data, err := rep.JSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*servebench, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		failed := false
		for _, r := range rep.Rates {
			fmt.Printf("rate %g q/s: offered %d, completed %d, throttled %d, timeouts %d, protocol errors %d, QMpH %.1f, p50 %.1fms p95 %.1fms p99 %.1fms\n",
				r.RatePerSec, r.Offered, r.Completed, r.Throttled, r.Timeouts, r.ProtocolErrors, r.QMPH, r.P50MS, r.P95MS, r.P99MS)
			if r.Completed == 0 || r.ProtocolErrors > 0 {
				failed = true
			}
		}
		fmt.Printf("serving benchmark report written to %s (%d tenants, mix of %d)\n", *servebench, rep.Tenants, rep.MixSize)
		if failed {
			fatal(fmt.Errorf("serving benchmark unhealthy: a rate completed zero queries or hit protocol errors"))
		}
		return
	}

	if *validate != "" {
		f, err := os.Open(*validate)
		if err != nil {
			fatal(err)
		}
		n, err := obs.ValidateRunLog(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", *validate, err))
		}
		fmt.Printf("%s: %d records OK\n", *validate, n)
		return
	}

	cfg := mixer.DefaultConfig()
	cfg.SeedScale = *seedScale
	cfg.Seed = *seed
	cfg.Runs = *runs
	cfg.Warmup = *warmup
	cfg.Existential = *existential
	cfg.CountTriples = *triples
	cfg.Clients = *clients
	cfg.PlanCache = *planCache
	cfg.PlanCacheSize = *planCacheSz
	cfg.Parallelism = *parallel
	cfg.BatchSize = *batchsize
	if s, err := parseScales(*scales); err == nil {
		cfg.Scales = s
	} else {
		fatal(err)
	}
	if *queries != "" {
		cfg.QueryIDs = strings.Split(*queries, ",")
	}
	if *jsonl != "" {
		f, err := os.Create(*jsonl)
		if err != nil {
			fatal(err)
		}
		cfg.RunLog = obs.NewRunLog(f)
		defer func() {
			if err := cfg.RunLog.Flush(); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("run log: %d records written to %s\n", cfg.RunLog.Count(), *jsonl)
		}()
	}
	if *sampleRate > 0 || *slowThresh > 0 {
		cfg.Sampler = &obs.Sampler{Rate: *sampleRate, SlowThreshold: *slowThresh, Seed: uint64(*seed)}
	}
	if *slowlogCap > 0 {
		cfg.SlowLog = obs.NewSlowLog(*slowlogCap)
		defer func() {
			fmt.Printf("slow log: %d of %d offered executions captured\n",
				cfg.SlowLog.Len(), cfg.SlowLog.Offered())
		}()
	}
	cfg.Budget = obs.QueryBudget{MaxRowsScanned: *budgetRows, MaxBytesMaterialized: *budgetBytes}
	var collector *obs.RuntimeCollector
	if *metrics {
		cfg.Metrics = obs.NewRegistry()
		defer func() {
			// One synchronous runtime-metrics pass so the exposition always
			// carries the npdbench_runtime_* family, ticker or not.
			collector.Collect()
			fmt.Printf("\nmetrics:\n%s", cfg.Metrics.PrometheusText())
		}()
	}
	if *httpAddr != "" {
		if cfg.Metrics == nil {
			cfg.Metrics = obs.NewRegistry()
		}
		// An explicit mux (pprof is wired by hand rather than through the
		// DefaultServeMux side effect of importing net/http/pprof) behind
		// a server with timeouts: a stuck or slow scrape client must not
		// hold a connection open for the lifetime of the run.
		mux := http.NewServeMux()
		mux.Handle("/metrics", cfg.Metrics.Handler())
		if cfg.SlowLog == nil {
			cfg.SlowLog = obs.NewSlowLog(0)
		}
		mux.Handle("/debug/slowlog", cfg.SlowLog.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		srv := &http.Server{
			Addr:              *httpAddr,
			Handler:           mux,
			ReadTimeout:       10 * time.Second,
			ReadHeaderTimeout: 5 * time.Second,
			WriteTimeout:      0, // pprof profile/trace streams run long
			IdleTimeout:       2 * time.Minute,
		}
		addr, stopHTTP, err := server.StartHTTP(srv)
		if err != nil {
			fatal(err)
		}
		// Drain before exit: without this the process used to die with
		// the listener still accepting and scrapes cut off mid-response.
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := stopHTTP(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "mixer: http shutdown:", err)
			}
		}()
		fmt.Printf("serving /metrics, /debug/slowlog and /debug/pprof on %s\n", addr)
	}
	if cfg.Metrics != nil {
		// Bridge runtime/metrics (heap, GC, goroutines, sched latency) into
		// the same registry the engine writes, so one scrape shows both.
		collector = obs.NewRuntimeCollector(cfg.Metrics)
		collector.Start(0)
		defer collector.Stop()
	}

	switch {
	case *batchbench != "":
		rep, err := mixer.RunBatchBench(cfg)
		if err != nil {
			fatal(err)
		}
		data, err := rep.JSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*batchbench, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		for _, lvl := range rep.Levels {
			fmt.Printf("batch size %d: mix %.1fms, speedup %.2fx, allocs %d, identical=%v\n",
				lvl.BatchSize, lvl.MixTotalMS, lvl.SpeedupVsRow, lvl.MixAllocs, lvl.IdenticalToRowPath)
		}
		fmt.Printf("batch benchmark report written to %s (parallelism=%d)\n", *batchbench, rep.Parallelism)
	case *parbench != "":
		rep, err := mixer.RunParallelBench(cfg)
		if err != nil {
			fatal(err)
		}
		data, err := rep.JSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*parbench, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		for _, lvl := range rep.Levels {
			fmt.Printf("parallelism %d: mix %.1fms, speedup %.2fx, identical=%v\n",
				lvl.Parallelism, lvl.MixTotalMS, lvl.SpeedupVsSeq, lvl.IdenticalToSequential)
		}
		fmt.Printf("parallel benchmark report written to %s (NumCPU=%d)\n", *parbench, rep.NumCPU)
	case *table == 3:
		emit(mixer.Table3())
	case *table == 7:
		emit(mixer.Table7())
	case *table == 8:
		growths := make([]float64, 0, len(cfg.Scales))
		for _, k := range cfg.Scales {
			if k > 1 {
				growths = append(growths, k-1)
			}
		}
		if len(growths) == 0 {
			growths = []float64{1, 4}
		}
		emit(mixer.Table8(cfg.SeedScale, cfg.Seed, growths))
	case *table == 9:
		cfg.Profile = sqldb.ProfileHashJoin
		rep, err := mixer.Run(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(mixer.TractableTable(rep, "Table 9: tractable queries (hash-join profile / MySQL-like)"))
	case *table == 10:
		cfg.Profile = sqldb.ProfileSortMerge
		rep, err := mixer.Run(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(mixer.TractableTable(rep, "Table 10: tractable queries (sort-merge profile / PostgreSQL-like)"))
	case *figure == 1:
		emit(mixer.Figure1(cfg))
	case *store:
		emit(mixer.StoreComparison(cfg))
	case *breakdown:
		rep, err := mixer.Run(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(rep.Summary())
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func parseScales(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || f < 1 {
			return nil, fmt.Errorf("bad scale %q (need numbers >= 1)", part)
		}
		out = append(out, f)
	}
	return out, nil
}

func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("bad arrival rate %q (need numbers > 0)", part)
		}
		out = append(out, f)
	}
	return out, nil
}

func emit(s string, err error) {
	if err != nil {
		fatal(err)
	}
	fmt.Println(s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mixer:", err)
	os.Exit(1)
}
