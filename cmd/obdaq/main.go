// Command obdaq answers SPARQL queries over an NPD benchmark instance
// through the OBDA engine, printing results and the per-phase measures of
// the paper's Table 1.
//
//	obdaq -q q6                          # run benchmark query q6
//	obdaq 'SELECT ?w WHERE { ?w a npdv:Wellbore } LIMIT 5'
//	obdaq -q q1 -scale 5 -sql            # also print the unfolded SQL
//	obdaq -q q6 -explain                 # pipeline span tree + EXPLAIN ANALYZE
//	obdaq -q q6 -trace                   # pipeline span tree only
//	obdaq -q q6 -metrics                 # Prometheus metric exposition (engine + runtime)
//	obdaq -q q6 -slowlog 8               # capture + print the slow-query log
//	obdaq -q q6 -sample 0.5 -trace       # sampled trace retention
//	obdaq -q q6 -budgetrows 1000         # flag queries scanning past a soft budget
package main

import (
	"flag"
	"fmt"
	"os"

	"npdbench/internal/core"
	"npdbench/internal/mixer"
	"npdbench/internal/npd"
	"npdbench/internal/obs"
	"npdbench/internal/sqldb"
)

func main() {
	var (
		queryID     = flag.String("q", "", "benchmark query id (q1..q21)")
		scale       = flag.Float64("scale", 1, "NPDk scale factor")
		seedScale   = flag.Float64("seedscale", 1, "seed instance size multiplier")
		seed        = flag.Int64("seed", 42, "random seed")
		profile     = flag.String("profile", "hashjoin", "database profile: hashjoin | sortmerge")
		existential = flag.Bool("existential", true, "enable tree-witness reasoning")
		constraints = flag.Bool("constraints", true, "enable schema-constraint optimizations (self-join merging, arm subsumption)")
		verify      = flag.Bool("verify", false, "verify every intermediate plan against the invariant catalog (planck)")
		staticPrune = flag.Bool("staticprune", true, "statically delete unsatisfiable CQs, candidates, and arms before execution")
		planCache   = flag.Bool("plancache", true, "cache compiled BGP plans (repeated shapes pay execute-only cost)")
		planCacheSz = flag.Int("plancachesize", 0, "plan cache capacity in entries (0 = engine default)")
		parallel    = flag.Int("parallel", 0, "intra-query parallel workers (0 = NumCPU, 1 = sequential; results identical)")
		batchsize   = flag.Int("batchsize", 0, "vectorized executor batch size (0 = default 1024, 1 = row-at-a-time; results identical)")
		showSQL     = flag.Bool("sql", false, "print the unfolded SQL")
		explain     = flag.Bool("explain", false, "print the pipeline span tree and the EXPLAIN ANALYZE operator tree")
		trace       = flag.Bool("trace", false, "print the pipeline span tree (stage timings and attributes)")
		metrics     = flag.Bool("metrics", false, "print the Prometheus metric exposition (engine + runtime families) after the query")
		maxRows     = flag.Int("rows", 20, "result rows to print (0 = all)")
		useStore    = flag.Bool("storebaseline", false, "answer over the materialized triple store instead")
		slowlogCap  = flag.Int("slowlog", 0, "capture the N slowest executions and print the slow-query log as JSON")
		slowThresh  = flag.Duration("slowthreshold", 0, "always retain traces of queries at least this slow (e.g. 50ms)")
		sampleRate  = flag.Float64("sample", 0, "probabilistic trace retention rate in [0,1]")
		budgetRows  = flag.Int64("budgetrows", 0, "per-query soft limit on rows scanned (0 = unlimited)")
		budgetBytes = flag.Int64("budgetbytes", 0, "per-query soft limit on bytes materialized (0 = unlimited)")
	)
	flag.Parse()

	src := ""
	switch {
	case *queryID != "":
		q := npd.QueryByID(*queryID)
		if q == nil {
			fatal(fmt.Errorf("unknown query %q", *queryID))
		}
		fmt.Printf("# %s: %s\n", q.ID, q.Description)
		src = q.SPARQL
	case flag.NArg() == 1:
		src = flag.Arg(0)
	default:
		fmt.Fprintln(os.Stderr, "usage: obdaq [-q qN | 'SPARQL...'] [flags]")
		os.Exit(2)
	}

	db, genTime, err := mixer.BuildInstance(*scale, *seedScale, *seed)
	if err != nil {
		fatal(err)
	}
	switch *profile {
	case "hashjoin":
		db.Profile = sqldb.ProfileHashJoin
	case "sortmerge":
		db.Profile = sqldb.ProfileSortMerge
	default:
		fatal(fmt.Errorf("unknown profile %q", *profile))
	}
	fmt.Printf("instance NPD%g: %d rows (built in %v)\n", *scale, db.TotalRows(), genTime.Round(1e6))

	spec := core.Spec{Onto: npd.NewOntology(), Mapping: npd.NewMapping(), DB: db, Prefixes: npd.Prefixes()}
	var ans *core.Answer
	var observer *obs.Observer
	var cacheStats core.PlanCacheStats
	var cacheOn bool
	if *useStore {
		store, err := core.NewStoreEngine(spec, core.StoreOptions{Reasoning: *existential})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("materialized %d triples in %v\n", store.LoadStats().Triples, store.LoadStats().LoadTime.Round(1e6))
		ans, err = store.Query(src)
		if err != nil {
			fatal(err)
		}
	} else {
		mode := core.VerifyOff
		if *verify {
			mode = core.VerifyOn
		}
		sampled := *sampleRate > 0 || *slowThresh > 0
		if *explain || *trace || *metrics || sampled || *slowlogCap > 0 {
			observer = &obs.Observer{
				// A sampler takes over the retention decision from
				// all-or-nothing tracing.
				Tracing:     (*explain || *trace) && !sampled,
				ExecProfile: *explain,
				Budget:      obs.QueryBudget{MaxRowsScanned: *budgetRows, MaxBytesMaterialized: *budgetBytes},
			}
			if *metrics {
				observer.Metrics = obs.NewRegistry()
			}
			if sampled {
				observer.Sampler = &obs.Sampler{Rate: *sampleRate, SlowThreshold: *slowThresh, Seed: uint64(*seed)}
			}
			if *slowlogCap > 0 {
				observer.SlowLog = obs.NewSlowLog(*slowlogCap)
			}
		}
		eng, err := core.NewEngine(spec, core.Options{
			TMappings:     true,
			Existential:   *existential,
			Constraints:   *constraints,
			VerifyPlans:   mode,
			StaticPrune:   *staticPrune,
			PlanCache:     *planCache,
			PlanCacheSize: *planCacheSz,
			Parallelism:   *parallel,
			BatchSize:     *batchsize,
			Obs:           observer,
		})
		if err != nil {
			fatal(err)
		}
		ls := eng.LoadStats()
		fmt.Printf("starting phase: %v (%d mapping assertions, %d after T-mapping saturation)\n",
			ls.LoadTime.Round(1e6), ls.MappingAssertions, ls.SaturatedAssertions)
		ans, err = eng.Query(src)
		if err != nil {
			fatal(err)
		}
		cacheStats, cacheOn = eng.PlanCacheStats()
	}

	st := ans.Stats
	fmt.Printf("\nphases: rewrite=%v unfold=%v exec=%v translate=%v total=%v\n",
		st.RewriteTime.Round(1e3), st.UnfoldTime.Round(1e3),
		st.ExecTime.Round(1e3), st.TranslateTime.Round(1e3), st.TotalTime.Round(1e3))
	fmt.Printf("rewriting: %d tree witnesses, %d CQs; unfolding: %d arms (%d pruned, %d self-joins eliminated, %d subsumed)\n",
		st.TreeWitnesses, st.CQCount, st.UnionArms, st.PrunedArms, st.SelfJoinsEliminated, st.SubsumedArms)
	if st.StaticPrunedCQs+st.StaticPrunedArms+st.StaticUnsatFilters > 0 {
		fmt.Printf("static pruning: %d CQs, %d candidates/arms, %d unsatisfiable filter sets\n",
			st.StaticPrunedCQs, st.StaticPrunedArms, st.StaticUnsatFilters)
	}
	fmt.Printf("weight of R+U: %.3f\n", st.WeightRU())
	if cacheOn {
		fmt.Printf("plan cache: %d hits, %d misses this query (%d/%d entries, %d evictions)\n",
			st.PlanCacheHits, st.PlanCacheMisses, cacheStats.Entries, cacheStats.Capacity, cacheStats.Evictions)
	}
	if *showSQL && st.UnfoldedSQL != "" {
		fmt.Printf("\nunfolded SQL:\n%s\n", st.UnfoldedSQL)
	}
	if (*trace || *explain) && ans.Trace != nil {
		fmt.Printf("\npipeline trace: id=%s sampled=%v decision=%s\n%s",
			ans.Trace.ID, ans.Sample.Sampled, ans.Sample.Reason, ans.Trace.Render())
	}
	if (*trace || *explain) && ans.Trace == nil && ans.Sample.Reason != "" {
		fmt.Printf("\npipeline trace: dropped by sampler (decision=%s)\n", ans.Sample.Reason)
	}
	if *explain && st.Usage != nil {
		fmt.Printf("\nusage: %s\n", st.Usage.String())
	}
	if *explain {
		for i, prof := range ans.Profiles {
			fmt.Printf("\nEXPLAIN ANALYZE (statement %d of %d):\n%s", i+1, len(ans.Profiles), prof.Render())
		}
		if len(ans.Profiles) == 0 {
			fmt.Println("\nEXPLAIN ANALYZE: no SQL executed (query statically answered)")
		}
	}
	if *metrics && observer != nil && observer.Metrics != nil {
		// One runtime-metrics pass so the exposition carries the
		// npdbench_runtime_* family alongside the engine counters.
		obs.NewRuntimeCollector(observer.Metrics).Collect()
		fmt.Printf("\nmetrics:\n%s", observer.Metrics.PrometheusText())
	}
	if observer != nil && observer.SlowLog != nil {
		doc, err := observer.SlowLog.RenderJSON()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nslow-query log (%d captured):\n%s\n", observer.SlowLog.Len(), doc)
	}

	fmt.Printf("\n%d solutions\n", ans.Len())
	rows := ans.Rows
	if *maxRows > 0 && len(rows) > *maxRows {
		rows = rows[:*maxRows]
	}
	for _, row := range rows {
		for i, t := range row {
			if i > 0 {
				fmt.Print("\t")
			}
			if t.IsZero() {
				fmt.Print("_")
			} else {
				fmt.Print(t)
			}
		}
		fmt.Println()
	}
	if *maxRows > 0 && ans.Len() > *maxRows {
		fmt.Printf("... (%d more)\n", ans.Len()-*maxRows)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "obdaq:", err)
	os.Exit(1)
}
