// Command vigstat dumps the VIG analysis-phase statistics for an NPD
// benchmark instance: per-column duplicate ratios, value intervals,
// geometry bounding boxes and constant-vocabulary detection, plus the FK
// cycle report.
//
//	vigstat                  # analysis of the default seed
//	vigstat -table licence   # restrict to one table
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"npdbench/internal/npd"
	"npdbench/internal/vig"
)

func main() {
	var (
		seedScale = flag.Float64("seedscale", 1, "seed instance size multiplier")
		seed      = flag.Int64("seed", 42, "random seed")
		table     = flag.String("table", "", "show only this table")
		md        = flag.Bool("md", false, "show multiplicity distributions and IGA measures (paper Table 6)")
	)
	flag.Parse()

	db, err := npd.NewSeededDatabase(npd.SeedConfig{Scale: *seedScale, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	if *md {
		mp := npd.NewMapping()
		vmd, err := vig.VirtualMultiplicity(mp, db)
		if err != nil {
			fatal(err)
		}
		fmt.Println("Virtual Multiplicity Distribution (per property):")
		var props []string
		for p := range vmd {
			props = append(props, p)
		}
		sort.Strings(props)
		for _, p := range props {
			fmt.Printf("  %-64s %s\n", shorten(p), vmd[p])
		}
		pairs, err := vig.AnalyzeIGAs(mp, db)
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		fmt.Println("IGA pairs (Intra-/Inter-table MD and pair duplication):")
		for _, pr := range pairs {
			kind := "inter"
			if pr.IntraTable {
				kind = "intra"
			}
			fmt.Printf("  %-56s %s %s->%s  MD{%s}  dup=%.3f\n",
				shorten(pr.Property), kind,
				strings.Join(pr.SubjectIGA, "+"), strings.Join(pr.ObjectIGA, "+"),
				pr.MD, pr.PairDuplication)
		}
		return
	}
	analysis, err := vig.Analyze(db)
	if err != nil {
		fatal(err)
	}
	out := analysis.Summary()
	if *table != "" {
		var kept []string
		keep := false
		for _, line := range strings.Split(out, "\n") {
			if !strings.HasPrefix(line, "  ") {
				keep = strings.HasPrefix(strings.ToLower(line), strings.ToLower(*table))
			}
			if keep {
				kept = append(kept, line)
			}
		}
		out = strings.Join(kept, "\n")
	}
	fmt.Println(out)
}

func shorten(iri string) string {
	for i := len(iri) - 1; i >= 0; i-- {
		if iri[i] == '#' || iri[i] == '/' {
			return iri[i+1:]
		}
	}
	return iri
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vigstat:", err)
	os.Exit(1)
}
