package npdbench

import (
	"testing"

	"npdbench/internal/core"
	"npdbench/internal/npd"
)

// TestConstraintsReduceNPDQueries runs every NPD query through two engines
// that differ only in Options.Constraints and checks that the
// schema-constraint optimizations (key-based self-join merging, arm
// subsumption) are (a) sound — identical answers — and (b) effective: at
// least one query unfolds to a strictly simpler SQL plan, measured by
// SQLMetrics.
func TestConstraintsReduceNPDQueries(t *testing.T) {
	db, err := npd.NewSeededDatabase(npd.SeedConfig{Scale: 0.15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	spec := core.Spec{
		Onto: npd.NewOntology(), Mapping: npd.NewMapping(),
		DB: db, Prefixes: npd.Prefixes(),
	}
	engOff, err := core.NewEngine(spec, core.Options{TMappings: true, Existential: true})
	if err != nil {
		t.Fatal(err)
	}
	engOn, err := core.NewEngine(spec, core.Options{TMappings: true, Existential: true, Constraints: true})
	if err != nil {
		t.Fatal(err)
	}

	improved := 0
	for _, q := range npd.Queries() {
		pOff, err := engOff.ParseQuery(q.SPARQL)
		if err != nil {
			t.Fatal(err)
		}
		pOn, err := engOn.ParseQuery(q.SPARQL)
		if err != nil {
			t.Fatal(err)
		}
		aOff, err := engOff.Answer(pOff)
		if err != nil {
			t.Fatalf("%s (constraints off): %v", q.ID, err)
		}
		aOn, err := engOn.Answer(pOn)
		if err != nil {
			t.Fatalf("%s (constraints on): %v", q.ID, err)
		}
		if aOn.Len() != aOff.Len() {
			t.Errorf("%s: answers diverge — %d rows with constraints, %d without",
				q.ID, aOn.Len(), aOff.Len())
		}
		on, off := aOn.Stats, aOff.Stats
		if on.UnionArms > off.UnionArms || on.SQL.InnerQueries > off.SQL.InnerQueries ||
			on.SQL.Joins > off.SQL.Joins {
			t.Errorf("%s: constraints made the plan larger: on %+v off %+v",
				q.ID, on.SQL, off.SQL)
		}
		if on.SubsumedArms > 0 || on.SelfJoinsEliminated > off.SelfJoinsEliminated ||
			on.SQL.InnerQueries < off.SQL.InnerQueries {
			improved++
			t.Logf("%s: arms %d->%d, selfJoins +%d, subsumed %d, inner queries %d->%d, joins %d->%d",
				q.ID, off.UnionArms, on.UnionArms,
				on.SelfJoinsEliminated-off.SelfJoinsEliminated, on.SubsumedArms,
				off.SQL.InnerQueries, on.SQL.InnerQueries,
				off.SQL.Joins, on.SQL.Joins)
		}
	}
	if improved == 0 {
		t.Error("no NPD query benefited from constraint-driven optimization")
	}
}
