// triplestore-compare: the paper's system comparison in miniature. The
// same OBDA specification is answered two ways — virtually (OBDA engine,
// SPARQL→SQL) and materialized (triple store + query rewriting, the
// Stardog role) — and the answers are cross-checked while the costs of the
// two architectures are reported: the store pays materialization up front,
// the OBDA engine pays query translation per query.
//
//	go run ./examples/triplestore-compare
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"npdbench/internal/core"
	"npdbench/internal/mixer"
	"npdbench/internal/npd"
)

func main() {
	db, _, err := mixer.BuildInstance(1, 0.5, 42)
	if err != nil {
		log.Fatal(err)
	}
	spec := core.Spec{Onto: npd.NewOntology(), Mapping: npd.NewMapping(), DB: db, Prefixes: npd.Prefixes()}

	obda, err := core.NewEngine(spec, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	store, err := core.NewStoreEngine(spec, core.StoreOptions{Reasoning: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OBDA starting phase:   %8v (mapping saturation, no data touched)\n",
		obda.LoadStats().LoadTime.Round(1e6))
	fmt.Printf("store loading phase:   %8v (materialized %d triples)\n\n",
		store.LoadStats().LoadTime.Round(1e6), store.LoadStats().Triples)

	ids := []string{"q1", "q3", "q5", "q6", "q7", "q13", "q16"}
	fmt.Printf("%-5s %10s %10s %8s  agreement\n", "query", "obda", "store", "rows")
	for _, id := range ids {
		q := npd.QueryByID(id)
		a1, err := obda.Query(q.SPARQL)
		if err != nil {
			log.Fatalf("obda %s: %v", id, err)
		}
		a2, err := store.Query(q.SPARQL)
		if err != nil {
			log.Fatalf("store %s: %v", id, err)
		}
		agree := "OK"
		if canonical(a1) != canonical(a2) {
			agree = "MISMATCH"
		}
		fmt.Printf("%-5s %10v %10v %8d  %s\n", id,
			a1.Stats.TotalTime.Round(1e5), a2.Stats.TotalTime.Round(1e5), a1.Len(), agree)
	}
	fmt.Println("\nNote q6: its answers depend on existential reasoning; both engines")
	fmt.Println("agree because both implement tree-witness rewriting.")
}

func canonical(a *core.Answer) string {
	lines := make([]string, len(a.Rows))
	for i, row := range a.Rows {
		parts := make([]string, len(row))
		for j, t := range row {
			parts[j] = t.String()
		}
		lines[i] = strings.Join(parts, "\t")
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
