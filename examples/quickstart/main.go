// Quickstart: build a tiny OBDA specification from scratch — a relational
// database, an OWL 2 QL ontology, and a textual mapping — then answer
// SPARQL queries over the virtual RDF graph.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"npdbench/internal/core"
	"npdbench/internal/owl"
	"npdbench/internal/r2rml"
	"npdbench/internal/rdf"
	"npdbench/internal/sqldb"
)

const ns = "http://example.org/"

func main() {
	// 1. A relational database: employees selling products (the running
	// example of the benchmark paper, Sect. 4).
	db := sqldb.NewDatabase("quickstart")
	must2(db.CreateTable(&sqldb.TableDef{
		Name: "TEmployee",
		Columns: []sqldb.Column{
			{Name: "id", Type: sqldb.TInt, NotNull: true},
			{Name: "name", Type: sqldb.TText},
			{Name: "branch", Type: sqldb.TText},
		},
		PrimaryKey: []int{0},
	}))
	must2(db.CreateTable(&sqldb.TableDef{
		Name: "TSellsProduct",
		Columns: []sqldb.Column{
			{Name: "id", Type: sqldb.TInt, NotNull: true},
			{Name: "product", Type: sqldb.TText, NotNull: true},
		},
		PrimaryKey:  []int{0, 1},
		ForeignKeys: []sqldb.ForeignKey{{Columns: []int{0}, RefTable: "TEmployee", RefColumns: []int{0}}},
	}))
	for _, row := range []sqldb.Row{
		{sqldb.NewInt(1), sqldb.NewString("John"), sqldb.NewString("B1")},
		{sqldb.NewInt(2), sqldb.NewString("Lisa"), sqldb.NewString("B1")},
		{sqldb.NewInt(3), sqldb.NewString("Mara"), sqldb.NewString("B2")},
	} {
		must(db.Insert("TEmployee", row))
	}
	for _, row := range []sqldb.Row{
		{sqldb.NewInt(1), sqldb.NewString("p1")},
		{sqldb.NewInt(2), sqldb.NewString("p1")},
		{sqldb.NewInt(2), sqldb.NewString("p2")},
	} {
		must(db.Insert("TSellsProduct", row))
	}

	// 2. An OWL 2 QL ontology: Employee ⊑ Person, and the domain of
	// SellsProduct is Employee (so sellers are inferred to be persons even
	// without an explicit type assertion).
	onto := owl.New(ns + "onto")
	onto.AddSubClass(owl.NamedConcept(ns+"Employee"), owl.NamedConcept(ns+"Person"))
	onto.AddDomain(ns+"SellsProduct", false, ns+"Employee")
	onto.DeclareDataProperty(ns + "name")

	// 3. Mappings in the compact textual syntax.
	mapping := r2rml.MustParseMapping(`
[PrefixDeclaration]
:  http://example.org/

[MappingDeclaration]
mappingId employees
target    :emp/{id} a :Employee ; :name {name} .
source    SELECT id, name FROM TEmployee

mappingId sales
target    :emp/{id} :SellsProduct :prod/{product} .
source    SELECT id, product FROM TSellsProduct
`)

	// 4. The OBDA engine: starting phase compiles the hierarchy into the
	// mapping (T-mappings); queries run through rewrite → unfold → SQL.
	prefixes := rdf.StandardPrefixes()
	prefixes[""] = ns
	eng, err := core.NewEngine(core.Spec{
		Onto: onto, Mapping: mapping, DB: db, Prefixes: prefixes,
	}, core.DefaultOptions())
	must(err)

	// Persons are inferred: Employee rows + SellsProduct subjects.
	ans, err := eng.Query(`SELECT DISTINCT ?p ?n WHERE { ?p a :Person . ?p :name ?n } ORDER BY ?n`)
	must(err)
	fmt.Println("inferred persons:")
	for _, row := range ans.Rows {
		fmt.Printf("  %s  %s\n", row[0], row[1])
	}
	fmt.Printf("\nphases: rewrite=%v unfold=%v exec=%v (total %v)\n",
		ans.Stats.RewriteTime, ans.Stats.UnfoldTime, ans.Stats.ExecTime, ans.Stats.TotalTime)
	fmt.Printf("unfolded SQL:\n%s\n", ans.Stats.UnfoldedSQL)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func must2[T any](v T, err error) T {
	must(err)
	return v
}
