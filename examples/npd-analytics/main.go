// npd-analytics: run the full 21-query NPD workload over a benchmark
// instance and print an analyst-style report — which fields produce most,
// which companies drill most, what the reasoner had to infer.
//
//	go run ./examples/npd-analytics
package main

import (
	"fmt"
	"log"

	"npdbench/internal/core"
	"npdbench/internal/mixer"
	"npdbench/internal/npd"
)

func main() {
	db, genTime, err := mixer.BuildInstance(2, 0.5, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NPD2 instance: %d rows in %d tables (built in %v)\n\n",
		db.TotalRows(), npd.TableCount(), genTime.Round(1e6))

	eng, err := core.NewEngine(core.Spec{
		Onto: npd.NewOntology(), Mapping: npd.NewMapping(), DB: db, Prefixes: npd.Prefixes(),
	}, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// The full benchmark workload.
	fmt.Println("benchmark workload (21 queries):")
	for _, q := range npd.Queries() {
		ans, err := eng.Query(q.SPARQL)
		if err != nil {
			log.Fatalf("%s: %v", q.ID, err)
		}
		fmt.Printf("  %-4s %4d rows  %8v  (tw=%d, arms=%d)  %s\n",
			q.ID, ans.Len(), ans.Stats.TotalTime.Round(1e5),
			ans.Stats.TreeWitnesses, ans.Stats.UnionArms, q.Description)
	}

	// Analyst drill-downs over the public vocabulary.
	fmt.Println("\ntop oil-producing fields (q18):")
	ans, err := eng.Query(npd.QueryByID("q18").SPARQL)
	if err != nil {
		log.Fatal(err)
	}
	for i, row := range ans.Rows {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-24s %s\n", row[0].Value, row[1].Value)
	}

	fmt.Println("\nbusiest drilling operators (q19):")
	ans, err = eng.Query(npd.QueryByID("q19").SPARQL)
	if err != nil {
		log.Fatal(err)
	}
	for i, row := range ans.Rows {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-40s %s wellbores\n", row[0].Value, row[1].Value)
	}

	// A custom ad-hoc query: deep HPHT-style exploration.
	fmt.Println("\nad-hoc: wildcat wellbores below 5000 m:")
	ans, err = eng.Query(`
SELECT ?name ?depth WHERE {
  ?w a npdv:WildcatWellbore ;
     npdv:name ?name ;
     npdv:wlbTotalDepth ?depth .
  FILTER(?depth > 5000)
} ORDER BY DESC(?depth) LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range ans.Rows {
		fmt.Printf("  %-16s %s m\n", row[0].Value, row[1].Value)
	}
}
