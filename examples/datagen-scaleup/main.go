// datagen-scaleup: demonstrate VIG's two phases. Analyze the seed
// instance, pump it through increasing growth factors, and show that the
// virtual instance grows the way the paper requires: linear concepts grow
// with the factor, intrinsically constant concepts (the :ProductSize
// analogues — facility kinds, areas, statuses) do not grow at all, and
// the random baseline violates both.
//
//	go run ./examples/datagen-scaleup
package main

import (
	"fmt"
	"log"

	"npdbench/internal/npd"
	"npdbench/internal/sqldb"
	"npdbench/internal/vig"
)

func main() {
	seedCfg := npd.SeedConfig{Scale: 0.5, Seed: 42}
	mapping := npd.NewMapping()

	seed, err := npd.NewSeededDatabase(seedCfg)
	if err != nil {
		log.Fatal(err)
	}
	base, err := mapping.VirtualCounts(seed)
	if err != nil {
		log.Fatal(err)
	}

	// Analysis phase: show a couple of interesting columns.
	analysis, err := vig.Analyze(seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("analysis highlights:")
	for _, tn := range []string{"field", "wellbore_exploration_all"} {
		tp := analysis.Tables[tn]
		for _, c := range tp.Columns {
			if c.IntrinsicallyConstant {
				fmt.Printf("  %s.%s: duplicate ratio %.2f -> intrinsically constant (%d values)\n",
					tp.Name, c.Name, c.DuplicateRatio, len(c.Distinct))
			}
		}
	}
	fmt.Printf("  tables on FK cycles: %d (chase cut by NULL/duplicate)\n\n", len(analysis.CyclicTables))

	watch := []string{
		npd.V("ExplorationWellbore"), // linear concept
		npd.V("MonthlyProductionVolume"),
		npd.V("Jacket4LegsFacility"), // conditional class over constant vocab
		npd.V("drillingOperatorCompany"),
	}

	for _, g := range []float64{1, 4} {
		db, err := npd.NewSeededDatabase(seedCfg)
		if err != nil {
			log.Fatal(err)
		}
		a, err := vig.Analyze(db)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := vig.New(a, 42).Generate(db, g)
		if err != nil {
			log.Fatal(err)
		}
		if errs := db.CheckIntegrity(); len(errs) > 0 {
			log.Fatalf("integrity: %v", errs[0])
		}
		counts, err := mapping.VirtualCounts(db)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("VIG growth %g (NPD%g): +%d rows inserted\n", g, g+1, rep.TotalInserted())
		for _, term := range watch {
			fmt.Printf("  %-56s %6d -> %6d (expected linear: %d)\n",
				localName(term), base[term], counts[term], int(float64(base[term])*(1+g)))
		}
	}

	// Contrast with the random baseline at growth 1.
	db, err := npd.NewSeededDatabase(seedCfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := vig.NewRandom(42).Generate(db, 1); err != nil {
		log.Fatal(err)
	}
	counts, err := mapping.VirtualCounts(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrandom baseline, growth 1 (for comparison):")
	for _, term := range watch {
		fmt.Printf("  %-56s %6d -> %6d (expected linear: %d)\n",
			localName(term), base[term], counts[term], 2*base[term])
	}
	_ = sqldb.Null
}

func localName(iri string) string {
	for i := len(iri) - 1; i >= 0; i-- {
		if iri[i] == '#' || iri[i] == '/' {
			return iri[i+1:]
		}
	}
	return iri
}
