// Package npdbench's benchmark harness regenerates every table and figure
// of the paper's evaluation (see DESIGN.md, experiment index):
//
//	go test -bench=Table3 .      # prior-benchmark ontology statistics
//	go test -bench=Table7 .      # the 21 NPD queries' statistics
//	go test -bench=Table8 .      # VIG vs random generator validation
//	go test -bench=Table9 .      # tractable queries, hash-join profile
//	go test -bench=Table10 .     # tractable queries, sort-merge profile
//	go test -bench=Figure1 .     # QMpH sweep over both profiles
//	go test -bench=Query .       # per-query phase measures
//	go test -bench=Ablation .    # design-choice ablations
//
// Scales are laptop-sized (the paper's NPD500/NPD1500 instances need a
// server); pass -benchtime=1x for a single full regeneration and read the
// emitted tables from the -v log.
package npdbench

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"npdbench/internal/core"
	"npdbench/internal/mixer"
	"npdbench/internal/npd"
	"npdbench/internal/obs"
	"npdbench/internal/rdf"
	"npdbench/internal/rewrite"
	"npdbench/internal/sparql"
	"npdbench/internal/sqldb"
	"npdbench/internal/vig"
)

const (
	benchSeedScale = 0.3
	benchSeed      = 42
)

func benchConfig() mixer.Config {
	cfg := mixer.DefaultConfig()
	cfg.SeedScale = benchSeedScale
	cfg.Seed = benchSeed
	cfg.Scales = []float64{1, 2, 5}
	cfg.Runs = 1
	cfg.Warmup = 0
	return cfg
}

// BenchmarkTable3_PriorBenchmarks regenerates Table 3.
func BenchmarkTable3_PriorBenchmarks(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = mixer.Table3()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + out)
}

// BenchmarkTable7_QueryStats regenerates Table 7.
func BenchmarkTable7_QueryStats(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = mixer.Table7()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + out)
}

// BenchmarkTable8_VIGvsRandom regenerates Table 8 (growth factors 1 and 4,
// i.e. the paper's npd2 and npd5 rows).
func BenchmarkTable8_VIGvsRandom(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = mixer.Table8(benchSeedScale, benchSeed, []float64{1, 4})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + out)
}

// BenchmarkTable9_HashJoinProfile regenerates Table 9 (the MySQL-like
// backend).
func BenchmarkTable9_HashJoinProfile(b *testing.B) {
	cfg := benchConfig()
	cfg.Profile = sqldb.ProfileHashJoin
	var rep *mixer.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = mixer.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + mixer.TractableTable(rep, "Table 9: tractable queries (hash-join profile)"))
	reportQMPH(b, rep)
}

// BenchmarkTable10_SortMergeProfile regenerates Table 10 (the
// PostgreSQL-like backend).
func BenchmarkTable10_SortMergeProfile(b *testing.B) {
	cfg := benchConfig()
	cfg.Profile = sqldb.ProfileSortMerge
	var rep *mixer.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = mixer.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + mixer.TractableTable(rep, "Table 10: tractable queries (sort-merge profile)"))
	reportQMPH(b, rep)
}

func reportQMPH(b *testing.B, rep *mixer.Report) {
	for _, sm := range rep.Scales {
		b.ReportMetric(sm.QMPH, fmt.Sprintf("qmph/NPD%g", sm.Scale))
	}
}

// BenchmarkFigure1_QMPHSweep regenerates Figure 1 (QMpH for both profiles
// across scale factors).
func BenchmarkFigure1_QMPHSweep(b *testing.B) {
	cfg := benchConfig()
	cfg.CountTriples = false
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = mixer.Figure1(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + out)
}

// ---- per-query benchmarks (Table 1 measures) ----

var benchEngineOnce sync.Once
var benchEngine *core.Engine
var benchEngineErr error

func sharedEngine(b *testing.B) *core.Engine {
	benchEngineOnce.Do(func() {
		db, _, err := mixer.BuildInstance(2, benchSeedScale, benchSeed)
		if err != nil {
			benchEngineErr = err
			return
		}
		benchEngine, benchEngineErr = core.NewEngine(core.Spec{
			Onto: npd.NewOntology(), Mapping: npd.NewMapping(),
			DB: db, Prefixes: npd.Prefixes(),
		}, core.DefaultOptions())
	})
	if benchEngineErr != nil {
		b.Fatal(benchEngineErr)
	}
	return benchEngine
}

// BenchmarkQuery measures each of the 21 queries end-to-end on an NPD2
// instance.
func BenchmarkQuery(b *testing.B) {
	eng := sharedEngine(b)
	for _, q := range npd.Queries() {
		parsed, err := eng.ParseQuery(q.SPARQL)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(q.ID, func(b *testing.B) {
			var rows int
			for i := 0; i < b.N; i++ {
				ans, err := eng.Answer(parsed)
				if err != nil {
					b.Fatal(err)
				}
				rows = ans.Len()
			}
			b.ReportMetric(float64(rows), "rows")
		})
	}
}

// ---- ablations (design choices called out in DESIGN.md) ----

// BenchmarkAblation_TMappings contrasts the two hierarchy-reasoning
// strategies: T-mappings (saturation at load) versus classic UCQ expansion
// at query time. The paper attributes Ontop's performance to the former.
func BenchmarkAblation_TMappings(b *testing.B) {
	db, _, err := mixer.BuildInstance(1, benchSeedScale, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	spec := core.Spec{Onto: npd.NewOntology(), Mapping: npd.NewMapping(), DB: db, Prefixes: npd.Prefixes()}
	query := npd.QueryByID("q7").SPARQL // FixedFacility: 13-subclass hierarchy
	for _, mode := range []struct {
		name string
		opts core.Options
	}{
		{"tmappings", core.Options{TMappings: true, Existential: true}},
		{"ucq-expansion", core.Options{TMappings: false, Existential: true, MaxCQs: 8192}},
	} {
		eng, err := core.NewEngine(spec, mode.opts)
		if err != nil {
			b.Fatal(err)
		}
		parsed, err := eng.ParseQuery(query)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(mode.name, func(b *testing.B) {
			var cqs int
			for i := 0; i < b.N; i++ {
				ans, err := eng.Answer(parsed)
				if err != nil {
					b.Fatal(err)
				}
				cqs = ans.Stats.CQCount
			}
			b.ReportMetric(float64(cqs), "CQs")
		})
	}
}

// BenchmarkAblation_Existential measures the cost and effect of
// tree-witness reasoning on q6 (the paper's Sect. 6 toggle).
func BenchmarkAblation_Existential(b *testing.B) {
	db, _, err := mixer.BuildInstance(1, benchSeedScale, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	spec := core.Spec{Onto: npd.NewOntology(), Mapping: npd.NewMapping(), DB: db, Prefixes: npd.Prefixes()}
	query := npd.QueryByID("q6").SPARQL
	for _, mode := range []struct {
		name string
		on   bool
	}{{"existential-on", true}, {"existential-off", false}} {
		eng, err := core.NewEngine(spec, core.Options{TMappings: true, Existential: mode.on})
		if err != nil {
			b.Fatal(err)
		}
		parsed, err := eng.ParseQuery(query)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(mode.name, func(b *testing.B) {
			var rows int
			for i := 0; i < b.N; i++ {
				ans, err := eng.Answer(parsed)
				if err != nil {
					b.Fatal(err)
				}
				rows = ans.Len()
			}
			b.ReportMetric(float64(rows), "rows")
		})
	}
}

// BenchmarkAblation_Profiles contrasts the two database profiles on the
// join-heavy q1 (the Figure 1 effect at query granularity).
func BenchmarkAblation_Profiles(b *testing.B) {
	for _, prof := range []sqldb.Profile{sqldb.ProfileHashJoin, sqldb.ProfileSortMerge} {
		db, _, err := mixer.BuildInstance(2, benchSeedScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		db.Profile = prof
		eng, err := core.NewEngine(core.Spec{
			Onto: npd.NewOntology(), Mapping: npd.NewMapping(), DB: db, Prefixes: npd.Prefixes(),
		}, core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		parsed, err := eng.ParseQuery(npd.QueryByID("q1").SPARQL)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(prof.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.Answer(parsed); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_Constraints contrasts unfolding with and without the
// static analyzer's schema constraints (key-based self-join merging and
// union-arm subsumption; see internal/analyze). The reported metrics show
// the plan simplification on the dataPropsSplit-heavy NPD mappings.
func BenchmarkAblation_Constraints(b *testing.B) {
	db, _, err := mixer.BuildInstance(1, benchSeedScale, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	spec := core.Spec{Onto: npd.NewOntology(), Mapping: npd.NewMapping(), DB: db, Prefixes: npd.Prefixes()}
	for _, mode := range []struct {
		name string
		on   bool
	}{{"constraints-on", true}, {"constraints-off", false}} {
		eng, err := core.NewEngine(spec, core.Options{
			TMappings: true, Existential: true, Constraints: mode.on,
		})
		if err != nil {
			b.Fatal(err)
		}
		// q1 (join-heavy), q6 (largest UCQ), q10 (per-attribute lookups):
		// the three shapes the merge optimization targets.
		for _, id := range []string{"q1", "q6", "q10"} {
			parsed, err := eng.ParseQuery(npd.QueryByID(id).SPARQL)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(id+"/"+mode.name, func(b *testing.B) {
				var st core.PhaseStats
				for i := 0; i < b.N; i++ {
					ans, err := eng.Answer(parsed)
					if err != nil {
						b.Fatal(err)
					}
					st = ans.Stats
				}
				b.ReportMetric(float64(st.UnionArms), "arms")
				b.ReportMetric(float64(st.SelfJoinsEliminated), "selfjoins-merged")
				b.ReportMetric(float64(st.SQL.Joins), "joins")
				b.ReportMetric(float64(st.SQL.InnerQueries), "innerqueries")
			})
		}
	}
}

// BenchmarkAblation_StaticPrune measures the effect of ontology-driven
// static pruning (candidate arc-consistency and contradictory-condition
// elimination before/during unfolding) on the queries where the NPD
// mapping admits the most dead candidates.
func BenchmarkAblation_StaticPrune(b *testing.B) {
	db, _, err := mixer.BuildInstance(1, benchSeedScale, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	spec := core.Spec{Onto: npd.NewOntology(), Mapping: npd.NewMapping(), DB: db, Prefixes: npd.Prefixes()}
	for _, mode := range []struct {
		name string
		on   bool
	}{{"staticprune-on", true}, {"staticprune-off", false}} {
		eng, err := core.NewEngine(spec, core.Options{
			TMappings: true, Existential: true, Constraints: true, StaticPrune: mode.on,
		})
		if err != nil {
			b.Fatal(err)
		}
		// q1 (join-heavy, many template candidates), q6 (largest UCQ),
		// q13 (wide union over facility subclasses).
		for _, id := range []string{"q1", "q6", "q13"} {
			parsed, err := eng.ParseQuery(npd.QueryByID(id).SPARQL)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(id+"/"+mode.name, func(b *testing.B) {
				var st core.PhaseStats
				for i := 0; i < b.N; i++ {
					ans, err := eng.Answer(parsed)
					if err != nil {
						b.Fatal(err)
					}
					st = ans.Stats
				}
				b.ReportMetric(float64(st.UnionArms), "arms")
				b.ReportMetric(float64(st.StaticPrunedArms), "staticpruned")
				b.ReportMetric(float64(st.PrunedArms), "walkpruned")
			})
		}
	}
}

// BenchmarkPlanCache measures the steady-state effect of the compiled-query
// cache over all 21 NPD queries: with the cache on, every iteration after
// the first serves memoized plans and pays execute/translate only; with it
// off, every iteration recompiles (rewrite + static-prune + unfold + plan).
func BenchmarkPlanCache(b *testing.B) {
	// A small instance keeps execution cheap so the compile fraction —
	// the part the cache removes — is visible in ns/op; compileus/op
	// reports the saved work directly (near zero when cached).
	db, _, err := mixer.BuildInstance(1, 0.05, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	spec := core.Spec{Onto: npd.NewOntology(), Mapping: npd.NewMapping(), DB: db, Prefixes: npd.Prefixes()}
	for _, mode := range []struct {
		name  string
		cache bool
	}{{"cache-on", true}, {"cache-off", false}} {
		opts := core.DefaultOptions()
		opts.PlanCache = mode.cache
		opts.VerifyPlans = core.VerifyOff
		eng, err := core.NewEngine(spec, opts)
		if err != nil {
			b.Fatal(err)
		}
		queries := npd.Queries()
		parsed := make([]*sparql.Query, len(queries))
		for i, q := range queries {
			parsed[i], err = eng.ParseQuery(q.SPARQL)
			if err != nil {
				b.Fatal(err)
			}
		}
		// Warm pass so cache-on measures the steady state, not the cold
		// compile; the same pass is run for cache-off to keep modes even.
		for _, p := range parsed {
			if _, err := eng.Answer(p); err != nil {
				b.Fatal(err)
			}
		}
		b.Run(mode.name, func(b *testing.B) {
			var hits, misses int
			var compile time.Duration
			for i := 0; i < b.N; i++ {
				for _, p := range parsed {
					ans, err := eng.Answer(p)
					if err != nil {
						b.Fatal(err)
					}
					hits += ans.Stats.PlanCacheHits
					misses += ans.Stats.PlanCacheMisses
					compile += ans.Stats.RewriteTime + ans.Stats.UnfoldTime
				}
			}
			b.ReportMetric(float64(hits)/float64(b.N), "cachehits/op")
			b.ReportMetric(float64(misses)/float64(b.N), "cachemisses/op")
			b.ReportMetric(float64(compile.Microseconds())/float64(b.N), "compileus/op")
		})
	}
}

// BenchmarkVerifyOverhead measures the cost of running the planck plan
// verifier on every intermediate representation (translate, rewrite,
// static-prune, unfold) relative to an unverified pipeline, over all 21
// NPD queries end-to-end.
func BenchmarkVerifyOverhead(b *testing.B) {
	db, _, err := mixer.BuildInstance(1, benchSeedScale, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	spec := core.Spec{Onto: npd.NewOntology(), Mapping: npd.NewMapping(), DB: db, Prefixes: npd.Prefixes()}
	for _, mode := range []struct {
		name   string
		verify core.VerifyMode
	}{{"verify-on", core.VerifyOn}, {"verify-off", core.VerifyOff}} {
		opts := core.DefaultOptions()
		opts.VerifyPlans = mode.verify
		eng, err := core.NewEngine(spec, opts)
		if err != nil {
			b.Fatal(err)
		}
		queries := npd.Queries()
		parsed := make([]*sparql.Query, len(queries))
		for i, q := range queries {
			parsed[i], err = eng.ParseQuery(q.SPARQL)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, p := range parsed {
					if _, err := eng.Answer(p); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkObsOverhead measures the cost of the observability layer on q6:
// "off" is the production default (Obs nil — one nil check per stage), "on"
// enables tracing plus the metrics registry. The acceptance bar is that the
// disabled path stays within 2% of an unobserved pipeline, so the observer
// can ship enabled-by-flag without a tax on benchmarks. Plan verification
// is forced off in both modes so it cannot mask the delta.
func BenchmarkObsOverhead(b *testing.B) {
	db, _, err := mixer.BuildInstance(1, benchSeedScale, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	spec := core.Spec{Onto: npd.NewOntology(), Mapping: npd.NewMapping(), DB: db, Prefixes: npd.Prefixes()}
	for _, mode := range []struct {
		name string
		obs  *obs.Observer
	}{
		{"off", nil},
		{"on", &obs.Observer{Tracing: true, Metrics: obs.NewRegistry()}},
	} {
		opts := core.DefaultOptions()
		opts.VerifyPlans = core.VerifyOff
		opts.Obs = mode.obs
		eng, err := core.NewEngine(spec, opts)
		if err != nil {
			b.Fatal(err)
		}
		parsed, err := eng.ParseQuery(npd.QueryByID("q6").SPARQL)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.Answer(parsed); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_AggregatePushdown contrasts SQL-side aggregation with
// in-memory aggregation over translated bindings on q19 (COUNT per
// company over every wellbore).
func BenchmarkAblation_AggregatePushdown(b *testing.B) {
	eng := sharedEngine(b)
	q := npd.QueryByID("q19")
	parsed, err := eng.ParseQuery(q.SPARQL)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("pushdown", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.Answer(parsed); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The in-memory path is what a HAVING query takes; q17 exercises it.
	q17, err := eng.ParseQuery(npd.QueryByID("q17").SPARQL)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("in-memory", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.Answer(q17); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBatchExecutor contrasts the row-at-a-time executor (BatchSize 1)
// with the vectorized batch executor across its size ladder, over the full
// 21-query NPD mix end-to-end. allocs/op and ns/op per level are the
// numbers EXPERIMENTS.md tabulates; the answers themselves are pinned
// identical by TestBatchRowIdentical.
func BenchmarkBatchExecutor(b *testing.B) {
	db, _, err := mixer.BuildInstance(1, benchSeedScale, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	spec := core.Spec{Onto: npd.NewOntology(), Mapping: npd.NewMapping(), DB: db, Prefixes: npd.Prefixes()}
	for _, bs := range []int{1, 256, 1024, 4096} {
		opts := core.DefaultOptions()
		opts.VerifyPlans = core.VerifyOff
		opts.Parallelism = 1
		opts.BatchSize = bs
		eng, err := core.NewEngine(spec, opts)
		if err != nil {
			b.Fatal(err)
		}
		queries := npd.Queries()
		parsed := make([]*sparql.Query, len(queries))
		for i, q := range queries {
			parsed[i], err = eng.ParseQuery(q.SPARQL)
			if err != nil {
				b.Fatal(err)
			}
		}
		// Warm pass: plans compile once, segments build once, so the
		// measured loop is pure execution.
		for _, p := range parsed {
			if _, err := eng.Answer(p); err != nil {
				b.Fatal(err)
			}
		}
		b.Run(fmt.Sprintf("batch%d", bs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, p := range parsed {
					if _, err := eng.Answer(p); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// ---- component throughput benchmarks ----

// BenchmarkVIG_Generation measures the generator's throughput (the paper's
// "Fast" requirement: 130 GB in 10 h ≈ 3.6 MB/s; we report rows/s).
func BenchmarkVIG_Generation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db, err := npd.NewSeededDatabase(npd.SeedConfig{Scale: benchSeedScale, Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		analysis, err := vig.Analyze(db)
		if err != nil {
			b.Fatal(err)
		}
		gen := vig.New(analysis, benchSeed)
		b.StartTimer()
		rep, err := gen.Generate(db, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.TotalInserted()), "rows/op")
	}
}

// BenchmarkMaterialization measures virtual-graph exposure (the triple
// store's loading phase).
func BenchmarkMaterialization(b *testing.B) {
	db, err := npd.NewSeededDatabase(npd.SeedConfig{Scale: benchSeedScale, Seed: benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	mp := npd.NewMapping()
	b.ResetTimer()
	var triples int
	for i := 0; i < b.N; i++ {
		triples = 0
		if err := mp.Materialize(db, func(rdf.Triple) { triples++ }); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(triples), "triples")
}

// BenchmarkRewriting measures phase 2 alone on q6 (tree-witness detection
// and folding).
func BenchmarkRewriting(b *testing.B) {
	onto := npd.NewOntology()
	rw := &rewrite.Rewriter{Onto: onto, Existential: true}
	q, err := sparql.Parse(npd.QueryByID("q6").SPARQL, npd.Prefixes())
	if err != nil {
		b.Fatal(err)
	}
	filter := q.Pattern.(*sparql.Filter)
	bgp := filter.Inner.(*sparql.BGP)
	var answer []string
	for _, v := range sparql.PatternVars(bgp) {
		if len(v) < 3 || v[:3] != "_bn" {
			answer = append(answer, v)
		}
	}
	cq, err := rewrite.FromBGP(bgp, onto, answer)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rw.Rewrite(cq, answer); err != nil {
			b.Fatal(err)
		}
	}
}
