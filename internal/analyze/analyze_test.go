package analyze

import (
	"encoding/json"
	"strings"
	"testing"

	"npdbench/internal/owl"
	"npdbench/internal/r2rml"
	"npdbench/internal/sqldb"
)

const ex = "http://ex#"

func fixtureDB(t *testing.T) *sqldb.Database {
	t.Helper()
	db := sqldb.NewDatabase("fixture")
	for _, def := range []*sqldb.TableDef{
		{
			Name: "person",
			Columns: []sqldb.Column{
				{Name: "id", Type: sqldb.TInt, NotNull: true},
				{Name: "name", Type: sqldb.TText},
				{Name: "dept_id", Type: sqldb.TInt},
			},
			PrimaryKey: []int{0},
			ForeignKeys: []sqldb.ForeignKey{
				{Columns: []int{2}, RefTable: "dept", RefColumns: []int{0}},
			},
		},
		{
			Name: "dept",
			Columns: []sqldb.Column{
				{Name: "id", Type: sqldb.TInt, NotNull: true},
				{Name: "title", Type: sqldb.TText},
			},
			PrimaryKey: []int{0},
			Uniques:    [][]int{{1}},
		},
	} {
		if _, err := db.CreateTable(def); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func fixtureOnto() *owl.Ontology {
	o := owl.New(ex)
	o.DeclareClass(ex + "Person")
	o.DeclareClass(ex + "Employee")
	o.DeclareClass(ex + "Ghost") // never mapped
	o.DeclareDataProperty(ex + "name")
	o.DeclareObjectProperty(ex + "inDept")
	o.DeclareObjectProperty(ex + "badRef")
	o.AddSubClass(owl.NamedConcept(ex+"Employee"), owl.NamedConcept(ex+"Person"))
	return o
}

// fixtureMapping deliberately contains one instance of every artifact
// problem the analyzer detects.
func fixtureMapping() *r2rml.Mapping {
	mp := r2rml.NewMapping()
	// Healthy assertions — plus a redundant one: Person over the same rows
	// as Employee, which T-mapping saturation re-derives from Employee.
	mp.Add(&r2rml.TriplesMap{
		Name:    "m-good",
		Table:   "person",
		Subject: r2rml.IRIMap("http://ex/person/{id}"),
		Classes: []string{ex + "Person", ex + "Employee"},
		POs: []r2rml.PredicateObject{
			{Predicate: ex + "name", Object: r2rml.ColumnMap("name")},
			{Predicate: ex + "inDept", Object: r2rml.IRIMap("http://ex/dept/{dept_id}")},
		},
	})
	mp.Add(&r2rml.TriplesMap{
		Name:    "m-dept",
		Table:   "dept",
		Subject: r2rml.IRIMap("http://ex/dept/{id}"),
		Classes: []string{ex + "Dept"}, // not declared: dead mapping
	})
	mp.Add(&r2rml.TriplesMap{
		Name:    "m-badsql",
		SQL:     "SELEC id FRM person", // does not parse
		Subject: r2rml.IRIMap("http://ex/person/{id}"),
		Classes: []string{ex + "Person"},
	})
	mp.Add(&r2rml.TriplesMap{
		Name:    "m-notable",
		SQL:     "SELECT id FROM nosuch",
		Subject: r2rml.IRIMap("http://ex/person/{id}"),
		Classes: []string{ex + "Person"},
	})
	mp.Add(&r2rml.TriplesMap{
		Name:    "m-nocol",
		SQL:     "SELECT wrongcol FROM person",
		Subject: r2rml.IRIMap("http://ex/person/{wrongcol}"),
		Classes: []string{ex + "Person"},
	})
	mp.Add(&r2rml.TriplesMap{
		Name:    "m-termcol",
		Table:   "person",
		Subject: r2rml.IRIMap("http://ex/person/{id}"),
		POs: []r2rml.PredicateObject{
			{Predicate: ex + "name", Object: r2rml.ColumnMap("nickname")}, // absent
		},
	})
	mp.Add(&r2rml.TriplesMap{
		Name:    "m-unjoinable",
		Table:   "person",
		Subject: r2rml.IRIMap("http://ex/person/{id}"),
		POs: []r2rml.PredicateObject{
			{Predicate: ex + "badRef", Object: r2rml.IRIMap("http://nowhere/x/{dept_id}")},
		},
	})
	mp.Add(&r2rml.TriplesMap{
		Name: "m-badjoin",
		SQL: "SELECT p.id FROM person p, person q, dept d " +
			"WHERE p.name = q.name AND p.dept_id = d.id",
		Subject: r2rml.IRIMap("http://ex/person/{id}"),
		Classes: []string{ex + "Person"},
	})
	return mp
}

func TestRunDetectsAllCategories(t *testing.T) {
	res := Run(Input{Mapping: fixtureMapping(), Ontology: fixtureOnto(), DB: fixtureDB(t)})
	rep := res.Report
	counts := rep.ByCode()
	for _, want := range []struct {
		code string
		min  int
	}{
		{CodeInvalidSource, 1},
		{CodeMissingTable, 1},
		{CodeMissingColumn, 2}, // SQL column + term-map column
		{CodeUnmappedTerm, 1},  // Ghost
		{CodeDeadMapping, 1},   // ex#Dept
		{CodeUnjoinableObject, 1},
		{CodeUnsupportedJoin, 1}, // p.name = q.name: neither side heads a key
		{CodeRedundantAssertion, 1},
	} {
		if counts[want.code] < want.min {
			t.Errorf("code %s: got %d diagnostics, want >= %d\n%s",
				want.code, counts[want.code], want.min, rep)
		}
	}
	if !rep.HasErrors() {
		t.Error("fixture should produce errors")
	}
	if got := len(counts); got < 5 {
		t.Errorf("only %d distinct diagnostic categories, want >= 5", got)
	}
	// The FK-backed join must NOT be flagged.
	for _, d := range rep.Diagnostics {
		if d.Code == CodeUnsupportedJoin && strings.Contains(d.Detail, "dept_id") {
			t.Errorf("FK-supported join flagged: %s", d)
		}
	}
	// JSON output round-trips.
	if _, err := rep.JSON(); err != nil {
		t.Fatal(err)
	}
}

func TestUnsupportedJoinDetection(t *testing.T) {
	// title joined against a non-key column of person: no support on
	// either side.
	mp := r2rml.NewMapping()
	mp.Add(&r2rml.TriplesMap{
		Name:    "m-join",
		SQL:     "SELECT p.id FROM person p, dept d WHERE p.name = d.title",
		Subject: r2rml.IRIMap("http://ex/person/{id}"),
		Classes: []string{ex + "Person"},
	})
	res := Run(Input{Mapping: mp, Ontology: fixtureOnto(), DB: fixtureDB(t)})
	n := res.Report.ByCode()[CodeUnsupportedJoin]
	// d.title heads a UNIQUE key, so this join IS supported.
	if n != 0 {
		t.Errorf("unique-head join flagged %d times:\n%s", n, res.Report)
	}

	mp2 := r2rml.NewMapping()
	mp2.Add(&r2rml.TriplesMap{
		Name:    "m-join2",
		SQL:     "SELECT p.id FROM person p, person q WHERE p.name = q.name",
		Subject: r2rml.IRIMap("http://ex/person/{id}"),
		Classes: []string{ex + "Person"},
	})
	res = Run(Input{Mapping: mp2, Ontology: fixtureOnto(), DB: fixtureDB(t)})
	if res.Report.ByCode()[CodeUnsupportedJoin] != 1 {
		t.Errorf("unsupported self-join not flagged:\n%s", res.Report)
	}
}

func TestConstraints(t *testing.T) {
	db := fixtureDB(t)
	cons := DeriveConstraints(fixtureMapping(), fixtureOnto(), db)

	if !cons.KeyCoveredBy("person", []string{"id", "name"}) {
		t.Error("PK {id} should be covered by {id,name}")
	}
	if !cons.KeyCoveredBy("PERSON", []string{"ID"}) {
		t.Error("key coverage must be case-insensitive")
	}
	if cons.KeyCoveredBy("person", []string{"name"}) {
		t.Error("{name} covers no key of person")
	}
	if !cons.KeyCoveredBy("dept", []string{"title"}) {
		t.Error("UNIQUE {title} should count as a key")
	}
	if !cons.IsNotNull("person", "id") {
		t.Error("PK column id must be NOT NULL")
	}
	if cons.IsNotNull("person", "name") {
		t.Error("name is nullable")
	}

	// Person's direct assertion covers Employee's (same shape), so Person
	// is exact; Ghost has no mapping at all.
	if !cons.IsExact(ex + "Person") {
		t.Errorf("Person should be exact; exact terms: %v", cons.ExactTerms())
	}
	if cons.IsExact(ex + "Ghost") {
		t.Error("Ghost has no direct mapping, cannot be exact")
	}

	st := cons.Stats()
	if st.Tables != 2 || st.Keys != 3 || st.NotNullColumns == 0 {
		t.Errorf("unexpected stats: %+v", st)
	}

	// nil constraints constrain nothing.
	var nilCons *Constraints
	if nilCons.KeyCoveredBy("person", []string{"id"}) || nilCons.IsNotNull("person", "id") || nilCons.IsExact(ex+"Person") {
		t.Error("nil Constraints must be inert")
	}
}

func TestReportOrderingAndSummary(t *testing.T) {
	rep := &Report{}
	rep.add(Diagnostic{Code: "b-code", Severity: SevInfo, Detail: "x"})
	rep.add(Diagnostic{Code: "a-code", Severity: SevError, Detail: "y"})
	rep.add(Diagnostic{Code: "c-code", Severity: SevWarning, Detail: "z"})
	rep.sortDiagnostics()
	if rep.Diagnostics[0].Severity != SevError || rep.Diagnostics[2].Severity != SevInfo {
		t.Errorf("diagnostics not ordered by severity: %v", rep.Diagnostics)
	}
	if got := rep.Summary(); got != "1 errors, 1 warnings, 1 infos" {
		t.Errorf("summary = %q", got)
	}
}

func TestReportJSONPayload(t *testing.T) {
	rep := &Report{}
	rep.add(Diagnostic{Code: "missing-table", Severity: SevError, Detail: "x"})
	rep.add(Diagnostic{Code: "missing-table", Severity: SevError, Detail: "y"})
	rep.add(Diagnostic{Code: "dead-mapping", Severity: SevWarning, Detail: "z"})
	p := rep.Payload()
	if p.Summary != rep.Summary() {
		t.Errorf("payload summary = %q", p.Summary)
	}
	if p.Counts["error"] != 2 || p.Counts["warning"] != 1 || p.Counts["info"] != 0 {
		t.Errorf("payload counts = %v", p.Counts)
	}
	if p.ByCode["missing-table"] != 2 || p.ByCode["dead-mapping"] != 1 {
		t.Errorf("payload by_code = %v", p.ByCode)
	}
	b, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var round map[string]any
	if err := json.Unmarshal(b, &round); err != nil {
		t.Fatalf("report JSON invalid: %v", err)
	}
	for _, key := range []string{"summary", "diagnostics", "counts", "by_code"} {
		if _, ok := round[key]; !ok {
			t.Errorf("report JSON missing %q", key)
		}
	}
}
