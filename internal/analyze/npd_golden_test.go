package analyze_test

import (
	"flag"
	"os"
	"testing"

	"npdbench/internal/analyze"
	"npdbench/internal/npd"
)

var update = flag.Bool("update", false, "rewrite the golden lint report")

// TestNPDGoldenReport pins the analyzer's output over the seed NPD
// artifacts: the benchmark spec must lint clean (no errors or warnings —
// obdalint is the CI gate), and the full report must match the checked-in
// golden file so any artifact or analyzer drift is reviewed explicitly.
// Regenerate with: go test ./internal/analyze -run Golden -update
func TestNPDGoldenReport(t *testing.T) {
	db, err := npd.NewDatabase()
	if err != nil {
		t.Fatal(err)
	}
	res := analyze.Run(analyze.Input{
		Mapping:  npd.NewMapping(),
		Ontology: npd.NewOntology(),
		DB:       db,
	})
	if res.Report.HasErrors() || res.Report.Count(analyze.SevWarning) > 0 {
		t.Fatalf("NPD artifacts should lint clean, got: %s", res.Report.Summary())
	}
	// The deliberate M2 redundancies must be visible as infos.
	if n := res.Report.ByCode()[analyze.CodeRedundantAssertion]; n < 10 {
		t.Errorf("expected the M2 redundant assertions to be flagged, got %d", n)
	}

	got := res.Report.String()
	const path = "testdata/npd_report.golden"
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (generate with -update)", err)
	}
	if got != string(want) {
		t.Errorf("lint report drifted from golden; review and regenerate with -update\ngot %d bytes, want %d", len(got), len(want))
	}

	cs := res.Constraints.Stats()
	if cs.Tables == 0 || cs.Keys == 0 || cs.NotNullColumns == 0 || cs.ExactTerms == 0 {
		t.Errorf("constraints look empty: %+v", cs)
	}
}
