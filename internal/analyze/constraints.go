package analyze

import (
	"sort"
	"strings"

	"npdbench/internal/owl"
	"npdbench/internal/r2rml"
	"npdbench/internal/sqldb"
)

// Constraints is the optimization half of the static analysis: database
// key/NULL metadata plus exact-mapping predicates, in the form the
// unfolder consumes at query time (Hovland et al.'s OBDA constraints).
//
//   - Unique keys turn into virtual functional dependencies: two table
//     instances joined on a subject template whose columns cover a key of
//     the table denote the same row and collapse into one instance — even
//     when they come from different mapping assertions.
//   - NOT NULL columns let the unfolder elide the R2RML NULL guards it
//     otherwise emits for every term-map column.
//   - Exact terms are ontology predicates whose direct mapping already
//     produces everything T-mapping saturation could derive; rewriting
//     below them is pure redundancy.
//
// All lookups are case-insensitive on table/column names, matching the
// sqldb catalog. A nil *Constraints is valid and constrains nothing.
type Constraints struct {
	keys    map[string][][]string      // table -> PK/UNIQUE column sets
	notNull map[string]map[string]bool // table -> column -> true
	exact   map[string]bool            // ontology term IRI -> exact
}

// KeyCoveredBy reports whether some PK/UNIQUE key of table is fully
// contained in cols.
func (c *Constraints) KeyCoveredBy(table string, cols []string) bool {
	if c == nil {
		return false
	}
	have := make(map[string]bool, len(cols))
	for _, col := range cols {
		have[strings.ToLower(col)] = true
	}
	for _, key := range c.keys[strings.ToLower(table)] {
		covered := true
		for _, kc := range key {
			if !have[kc] {
				covered = false
				break
			}
		}
		if covered {
			return true
		}
	}
	return false
}

// IsNotNull reports whether table.col is declared NOT NULL (directly or as
// a primary-key column).
func (c *Constraints) IsNotNull(table, col string) bool {
	if c == nil {
		return false
	}
	return c.notNull[strings.ToLower(table)][strings.ToLower(col)]
}

// IsExact reports whether the ontology term's direct mapping subsumes
// every mapping derivable for it through the ontology.
func (c *Constraints) IsExact(term string) bool {
	if c == nil {
		return false
	}
	return c.exact[term]
}

// ExactTerms lists the exact predicates, sorted.
func (c *Constraints) ExactTerms() []string {
	if c == nil {
		return nil
	}
	out := make([]string, 0, len(c.exact))
	for t := range c.exact {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// ConstraintStats summarizes a Constraints artifact for reporting.
type ConstraintStats struct {
	Tables         int `json:"tables"`
	Keys           int `json:"keys"`
	NotNullColumns int `json:"notNullColumns"`
	ExactTerms     int `json:"exactTerms"`
}

// Stats computes summary counts.
func (c *Constraints) Stats() ConstraintStats {
	var s ConstraintStats
	if c == nil {
		return s
	}
	s.Tables = len(c.keys)
	for _, ks := range c.keys {
		s.Keys += len(ks)
	}
	for _, nn := range c.notNull {
		s.NotNullColumns += len(nn)
	}
	s.ExactTerms = len(c.exact)
	return s
}

// DeriveConstraints builds the Constraints artifact from the catalog's
// PK/UNIQUE/NOT NULL metadata and the mapping/ontology pair. It is cheap
// (one pass over schema and mapping) and runs once at engine load.
func DeriveConstraints(mp *r2rml.Mapping, onto *owl.Ontology, db *sqldb.Database) *Constraints {
	c := &Constraints{
		keys:    map[string][][]string{},
		notNull: map[string]map[string]bool{},
		exact:   map[string]bool{},
	}
	for _, t := range db.Tables() {
		def := t.Def
		lt := strings.ToLower(def.Name)
		addKey := func(cols []int) {
			if len(cols) == 0 {
				return
			}
			names := make([]string, len(cols))
			for i, ci := range cols {
				names[i] = strings.ToLower(def.Columns[ci].Name)
			}
			c.keys[lt] = append(c.keys[lt], names)
		}
		addKey(def.PrimaryKey)
		for _, u := range def.Uniques {
			addKey(u)
		}
		nn := map[string]bool{}
		for _, col := range def.Columns {
			if col.NotNull {
				nn[strings.ToLower(col.Name)] = true
			}
		}
		// PK columns reject NULLs at insert even without a NOT NULL flag.
		for _, ci := range def.PrimaryKey {
			nn[strings.ToLower(def.Columns[ci].Name)] = true
		}
		if len(nn) > 0 {
			c.notNull[lt] = nn
		}
		if len(c.keys[lt]) == 0 {
			// keep the table present so Stats counts it
			c.keys[lt] = nil
		}
	}
	if mp != nil && onto != nil {
		deriveExact(c, mp, onto)
	}
	return c
}

// deriveExact marks ontology terms whose direct mapping assertions subsume
// every assertion T-mapping saturation could derive from strictly
// subsumed terms. The check is conservative: only single-base-table
// sources compare, containment is WHERE-conjunct subset, and any
// derivation path the comparison cannot see (existential subclasses,
// inverse sub-properties) disqualifies the term.
func deriveExact(c *Constraints, mp *r2rml.Mapping, onto *owl.Ontology) {
	shapes := assertionShapes(mp)
	covered := func(sup, sub []shape) bool {
		for _, b := range sub {
			ok := false
			for _, a := range sup {
				if a.subsumes(b) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	for _, cls := range onto.ClassNames() {
		direct := shapes[cls]
		if len(direct) == 0 {
			continue
		}
		exact := true
		for _, sub := range onto.SubConceptsOf(owl.NamedConcept(cls)) {
			if !sub.IsNamed() {
				// ∃R subclass: saturation derives cls from R's mapping —
				// outside the shape comparison, so not provably exact.
				if len(shapes[sub.Prop]) > 0 {
					exact = false
					break
				}
				continue
			}
			if sub.Class == cls {
				continue
			}
			if !covered(direct, shapes[sub.Class]) {
				exact = false
				break
			}
		}
		if exact {
			c.exact[cls] = true
		}
	}
	for _, prop := range onto.ObjectPropertyNames() {
		direct := shapes[prop]
		if len(direct) == 0 {
			continue
		}
		exact := true
		for _, sub := range onto.SubPropertiesOf(owl.PropRef{Prop: prop}) {
			if sub.Prop == prop && !sub.Inverse {
				continue
			}
			if sub.Inverse {
				// Inverse derivations swap subject/object; out of scope.
				if len(shapes[sub.Prop]) > 0 {
					exact = false
					break
				}
				continue
			}
			if !covered(direct, shapes[sub.Prop]) {
				exact = false
				break
			}
		}
		if exact {
			c.exact[prop] = true
		}
	}
	for _, prop := range onto.DataPropertyNames() {
		direct := shapes[prop]
		if len(direct) == 0 {
			continue
		}
		exact := true
		for _, sub := range onto.SubDataPropertiesOf(prop) {
			if sub == prop {
				continue
			}
			if !covered(direct, shapes[sub]) {
				exact = false
				break
			}
		}
		if exact {
			c.exact[prop] = true
		}
	}
}

// shape is the normalized form of one mapping assertion over a
// single-base-table source: which table, which subject/object term maps,
// and the source's WHERE conjuncts rendered without qualifiers.
type shape struct {
	ok      bool // single base table, no DISTINCT/GROUP/LIMIT/UNION
	table   string
	subj    string
	obj     string // "" for class assertions
	conjs   map[string]bool
	mapName string
}

// subsumes reports that a's rows are a superset of b's (same table and
// term maps, a's conditions a subset of b's), so the assertion b derives
// is contained in a's.
func (a shape) subsumes(b shape) bool {
	if !a.ok || !b.ok || a.table != b.table || a.subj != b.subj || a.obj != b.obj {
		return false
	}
	for cj := range a.conjs {
		if !b.conjs[cj] {
			return false
		}
	}
	return true
}

// sourceShape normalizes a triples map's logical source; ok=false when the
// source is not a plain single-table SELECT.
func sourceShape(m *r2rml.TriplesMap) shape {
	stmt, err := m.LogicalSQL()
	if err != nil {
		return shape{}
	}
	if stmt.Union != nil || stmt.Distinct || len(stmt.GroupBy) > 0 ||
		stmt.Having != nil || stmt.Limit >= 0 || len(stmt.From) != 1 {
		return shape{}
	}
	bt, ok := stmt.From[0].(*sqldb.BaseTable)
	if !ok {
		return shape{}
	}
	conjs := map[string]bool{}
	for _, cj := range sqldb.Conjuncts(stmt.Where) {
		conjs[sqldb.QualifyColumns(cj, "").String()] = true
	}
	return shape{ok: true, table: strings.ToLower(bt.Name), conjs: conjs}
}

// assertionShapes indexes every mapping assertion by asserted term.
func assertionShapes(mp *r2rml.Mapping) map[string][]shape {
	out := map[string][]shape{}
	for _, m := range mp.Maps {
		base := sourceShape(m)
		base.subj = m.Subject.String()
		base.mapName = m.Name
		for _, cls := range m.Classes {
			s := base
			out[cls] = append(out[cls], s)
		}
		for _, po := range m.POs {
			s := base
			s.obj = po.Object.String()
			out[po.Predicate] = append(out[po.Predicate], s)
		}
	}
	return out
}
