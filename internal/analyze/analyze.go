package analyze

import (
	"fmt"
	"strings"

	"npdbench/internal/owl"
	"npdbench/internal/r2rml"
	"npdbench/internal/sqldb"
)

// Input bundles the three artifacts the analyzer cross-checks.
type Input struct {
	Mapping  *r2rml.Mapping
	Ontology *owl.Ontology
	DB       *sqldb.Database
}

// Analysis is the result of one Run: the lint report and the optimization
// constraints.
type Analysis struct {
	Report      *Report
	Constraints *Constraints
}

// Run executes the full static-analysis pass. It never fails: artifact
// problems become diagnostics, not errors.
func Run(in Input) *Analysis {
	rep := &Report{}
	if in.Mapping != nil && in.DB != nil {
		checkSources(in, rep)
	}
	if in.Mapping != nil && in.Ontology != nil {
		checkCoverage(in, rep)
		checkRedundancy(in, rep)
	}
	if in.Mapping != nil {
		checkJoinability(in, rep)
	}
	rep.sortDiagnostics()
	return &Analysis{
		Report:      rep,
		Constraints: DeriveConstraints(in.Mapping, in.Ontology, in.DB),
	}
}

// ---- source SQL vs. schema ----

// colSet abstracts the columns a logical source provides.
type colSet struct {
	all  bool // SELECT * over (partly) unknown relations
	cols map[string]bool
}

func (cs colSet) has(col string) bool { return cs.all || cs.cols[strings.ToLower(col)] }

// fromScope resolves table aliases of one SELECT to schema definitions
// (nil def = derived table, checked recursively but opaque here).
type fromScope struct {
	aliases map[string]*sqldb.TableDef
}

func checkSources(in Input, rep *Report) {
	for _, m := range in.Mapping.Maps {
		stmt, err := m.LogicalSQL()
		if err != nil {
			rep.add(Diagnostic{Code: CodeInvalidSource, Severity: SevError,
				Mapping: m.Name, Detail: err.Error()})
			continue
		}
		var avail colSet
		for arm := stmt; arm != nil; arm = arm.Union {
			a := checkStmt(in, rep, m.Name, arm)
			if arm == stmt {
				avail = a // union arms project the same layout as the first
			}
		}
		checkTerm := func(tm r2rml.TermMap, role string) {
			for _, col := range tm.Columns() {
				if !avail.has(col) {
					rep.add(Diagnostic{Code: CodeMissingColumn, Severity: SevError,
						Mapping: m.Name,
						Detail:  fmt.Sprintf("%s term map references column %q not provided by the logical source", role, col)})
				}
			}
		}
		checkTerm(m.Subject, "subject")
		for _, po := range m.POs {
			checkTerm(po.Object, "object <"+po.Predicate+">")
		}
	}
}

// checkStmt verifies one SELECT arm against the schema and returns its
// output columns. Derived tables are checked recursively.
func checkStmt(in Input, rep *Report, mapName string, stmt *sqldb.SelectStmt) colSet {
	scope := fromScope{aliases: map[string]*sqldb.TableDef{}}
	var onExprs []sqldb.Expr
	var walkFrom func(tr sqldb.TableRef)
	walkFrom = func(tr sqldb.TableRef) {
		switch t := tr.(type) {
		case *sqldb.BaseTable:
			var def *sqldb.TableDef
			if tbl := in.DB.Table(t.Name); tbl != nil {
				def = tbl.Def
			} else {
				rep.add(Diagnostic{Code: CodeMissingTable, Severity: SevError,
					Mapping: mapName,
					Detail:  fmt.Sprintf("table %q not in schema", t.Name)})
			}
			alias := t.Alias
			if alias == "" {
				alias = t.Name
			}
			scope.aliases[strings.ToLower(alias)] = def
		case *sqldb.SubqueryTable:
			for arm := t.Query; arm != nil; arm = arm.Union {
				checkStmt(in, rep, mapName, arm)
			}
			scope.aliases[strings.ToLower(t.Alias)] = nil
		case *sqldb.JoinRef:
			walkFrom(t.L)
			walkFrom(t.R)
			if t.On != nil {
				onExprs = append(onExprs, t.On)
			}
		}
	}
	for _, tr := range stmt.From {
		walkFrom(tr)
	}
	hasUnknown := false
	for _, def := range scope.aliases {
		if def == nil {
			hasUnknown = true
		}
	}

	resolve := func(c *sqldb.ColRef) {
		if c.Table != "" {
			def, ok := scope.aliases[strings.ToLower(c.Table)]
			if !ok {
				rep.add(Diagnostic{Code: CodeMissingColumn, Severity: SevError,
					Mapping: mapName,
					Detail:  fmt.Sprintf("column %s references unknown table alias %q", c, c.Table)})
				return
			}
			if def != nil && def.ColIndex(c.Name) < 0 {
				rep.add(Diagnostic{Code: CodeMissingColumn, Severity: SevError,
					Mapping: mapName,
					Detail:  fmt.Sprintf("column %q not in table %s", c.Name, def.Name)})
			}
			return
		}
		if hasUnknown {
			return
		}
		for _, def := range scope.aliases {
			if def != nil && def.ColIndex(c.Name) >= 0 {
				return
			}
		}
		rep.add(Diagnostic{Code: CodeMissingColumn, Severity: SevError,
			Mapping: mapName,
			Detail:  fmt.Sprintf("column %q not in any source table", c.Name)})
	}
	var exprs []sqldb.Expr
	for _, it := range stmt.Items {
		if !it.Star && it.Expr != nil {
			exprs = append(exprs, it.Expr)
		}
	}
	exprs = append(exprs, onExprs...)
	if stmt.Where != nil {
		exprs = append(exprs, stmt.Where)
	}
	exprs = append(exprs, stmt.GroupBy...)
	if stmt.Having != nil {
		exprs = append(exprs, stmt.Having)
	}
	for _, o := range stmt.OrderBy {
		exprs = append(exprs, o.Expr)
	}
	for _, e := range exprs {
		for _, c := range sqldb.ColumnRefs(e) {
			resolve(c)
		}
	}

	// Join support: equality conditions between two base tables should be
	// backed by an index-able key or a declared foreign key.
	joinConds := sqldb.Conjuncts(stmt.Where)
	for _, on := range onExprs {
		joinConds = append(joinConds, sqldb.Conjuncts(on)...)
	}
	for _, cj := range joinConds {
		b, ok := cj.(*sqldb.BinOp)
		if !ok || b.Op != sqldb.OpEq {
			continue
		}
		l, okL := b.L.(*sqldb.ColRef)
		r, okR := b.R.(*sqldb.ColRef)
		if !okL || !okR || l.Table == "" || r.Table == "" ||
			strings.EqualFold(l.Table, r.Table) {
			continue
		}
		ld := scope.aliases[strings.ToLower(l.Table)]
		rd := scope.aliases[strings.ToLower(r.Table)]
		if ld == nil || rd == nil {
			continue
		}
		if !joinSupported(in.DB, ld, l.Name, rd, r.Name) {
			rep.add(Diagnostic{Code: CodeUnsupportedJoin, Severity: SevWarning,
				Mapping: mapName,
				Detail:  fmt.Sprintf("join %s = %s has no supporting key or foreign key", l, r)})
		}
	}

	// Output columns.
	out := colSet{cols: map[string]bool{}}
	for _, it := range stmt.Items {
		switch {
		case it.Star && it.Table == "":
			if hasUnknown {
				out.all = true
			}
			for _, def := range scope.aliases {
				if def == nil {
					continue
				}
				for _, col := range def.Columns {
					out.cols[strings.ToLower(col.Name)] = true
				}
			}
		case it.Star:
			def, ok := scope.aliases[strings.ToLower(it.Table)]
			if !ok || def == nil {
				out.all = true
				continue
			}
			for _, col := range def.Columns {
				out.cols[strings.ToLower(col.Name)] = true
			}
		case it.Alias != "":
			out.cols[strings.ToLower(it.Alias)] = true
		default:
			if c, ok := it.Expr.(*sqldb.ColRef); ok {
				out.cols[strings.ToLower(c.Name)] = true
			}
		}
	}
	return out
}

// joinSupported reports whether an equality join between two table columns
// is backed by catalog metadata: a key whose leading column is joined (an
// index lookup) or a declared foreign key covering the pair.
func joinSupported(db *sqldb.Database, ld *sqldb.TableDef, lcol string, rd *sqldb.TableDef, rcol string) bool {
	keyHead := func(def *sqldb.TableDef, col string) bool {
		idx := def.ColIndex(col)
		if idx < 0 {
			return false
		}
		if len(def.PrimaryKey) > 0 && def.PrimaryKey[0] == idx {
			return true
		}
		for _, u := range def.Uniques {
			if len(u) > 0 && u[0] == idx {
				return true
			}
		}
		return false
	}
	fkCovers := func(def *sqldb.TableDef, col string, refDef *sqldb.TableDef, refCol string) bool {
		for _, fk := range def.ForeignKeys {
			if !strings.EqualFold(fk.RefTable, refDef.Name) {
				continue
			}
			for i, ci := range fk.Columns {
				if i >= len(fk.RefColumns) {
					break
				}
				if strings.EqualFold(def.Columns[ci].Name, col) &&
					strings.EqualFold(refDef.Columns[fk.RefColumns[i]].Name, refCol) {
					return true
				}
			}
		}
		return false
	}
	return keyHead(ld, lcol) || keyHead(rd, rcol) ||
		fkCovers(ld, lcol, rd, rcol) || fkCovers(rd, rcol, ld, lcol)
}

// ---- ontology vs. mapping coverage ----

func checkCoverage(in Input, rep *Report) {
	onto := in.Ontology
	mapped := map[string]bool{}
	for _, t := range in.Mapping.MappedTerms() {
		mapped[t] = true
	}

	// Dead mappings: asserted terms the ontology does not declare.
	for _, m := range in.Mapping.Maps {
		for _, cls := range m.Classes {
			if !onto.HasClass(cls) {
				rep.add(Diagnostic{Code: CodeDeadMapping, Severity: SevWarning,
					Mapping: m.Name, Term: cls,
					Detail: "mapping asserts a class the ontology does not declare"})
			}
		}
		for _, po := range m.POs {
			if !onto.HasObjectProperty(po.Predicate) && !onto.HasDataProperty(po.Predicate) {
				rep.add(Diagnostic{Code: CodeDeadMapping, Severity: SevWarning,
					Mapping: m.Name, Term: po.Predicate,
					Detail: "mapping asserts a property the ontology does not declare"})
			}
		}
	}

	// Unmapped terms: nothing in the subsumption cone has a mapping, so
	// queries over the term are provably empty.
	for _, cls := range onto.ClassNames() {
		derivable := false
		for _, sub := range onto.SubConceptsOf(owl.NamedConcept(cls)) {
			if sub.IsNamed() && mapped[sub.Class] {
				derivable = true
				break
			}
			if !sub.IsNamed() && mapped[sub.Prop] {
				derivable = true
				break
			}
		}
		if !derivable {
			rep.add(Diagnostic{Code: CodeUnmappedTerm, Severity: SevInfo, Term: cls,
				Detail: "class has no mapping, directly or via subsumed terms"})
		}
	}
	for _, prop := range onto.ObjectPropertyNames() {
		derivable := false
		for _, sub := range onto.SubPropertiesOf(owl.PropRef{Prop: prop}) {
			if mapped[sub.Prop] {
				derivable = true
				break
			}
		}
		if !derivable {
			rep.add(Diagnostic{Code: CodeUnmappedTerm, Severity: SevInfo, Term: prop,
				Detail: "object property has no mapping, directly or via subsumed terms"})
		}
	}
	for _, prop := range onto.DataPropertyNames() {
		derivable := false
		for _, sub := range onto.SubDataPropertiesOf(prop) {
			if mapped[sub] {
				derivable = true
				break
			}
		}
		if !derivable {
			rep.add(Diagnostic{Code: CodeUnmappedTerm, Severity: SevInfo, Term: prop,
				Detail: "data property has no mapping, directly or via subsumed terms"})
		}
	}
}

// ---- template joinability ----

// checkJoinability flags object IRI templates disjoint from every subject
// template in the mapping: such objects can never be joined with a typed
// resource, which almost always indicates a template typo.
func checkJoinability(in Input, rep *Report) {
	var subjects []r2rml.TermMap
	for _, m := range in.Mapping.Maps {
		subjects = append(subjects, m.Subject)
	}
	for _, m := range in.Mapping.Maps {
		for _, po := range m.POs {
			if po.Object.Kind != r2rml.IRITemplate {
				continue
			}
			joinable := false
			for _, s := range subjects {
				if r2rml.TermMapsCompatible(po.Object, s) {
					joinable = true
					break
				}
			}
			if !joinable {
				rep.add(Diagnostic{Code: CodeUnjoinableObject, Severity: SevWarning,
					Mapping: m.Name, Term: po.Predicate,
					Detail: fmt.Sprintf("object template %s never unifies with any subject template", po.Object)})
			}
		}
	}
}

// ---- T-mapping redundancy ----

// checkRedundancy flags direct mapping assertions that T-mapping
// saturation re-derives from a strictly subsumed term over the same rows:
// the direct assertion contributes no triples and only inflates the
// saturated mapping.
func checkRedundancy(in Input, rep *Report) {
	onto := in.Ontology
	shapes := assertionShapes(in.Mapping)
	seen := map[string]bool{} // one diagnostic per (term, asserting mapping)
	flag := func(term, subTerm string, direct, sub []shape) {
		for _, a := range direct {
			k := term + "\x00" + a.mapName
			if seen[k] {
				continue
			}
			for _, b := range sub {
				if b.subsumes(a) && !(b.mapName == a.mapName && subTerm == term) {
					seen[k] = true
					rep.add(Diagnostic{Code: CodeRedundantAssertion, Severity: SevInfo,
						Mapping: a.mapName, Term: term,
						Detail: fmt.Sprintf("assertion subsumed by the <%s> assertion in mapping %s", subTerm, b.mapName)})
					break
				}
			}
		}
	}
	for _, cls := range onto.ClassNames() {
		direct := shapes[cls]
		if len(direct) == 0 {
			continue
		}
		for _, sub := range onto.SubConceptsOf(owl.NamedConcept(cls)) {
			if !sub.IsNamed() || sub.Class == cls {
				continue
			}
			flag(cls, sub.Class, direct, shapes[sub.Class])
		}
	}
	for _, prop := range onto.ObjectPropertyNames() {
		direct := shapes[prop]
		if len(direct) == 0 {
			continue
		}
		for _, sub := range onto.SubPropertiesOf(owl.PropRef{Prop: prop}) {
			if sub.Inverse || sub.Prop == prop {
				continue
			}
			flag(prop, sub.Prop, direct, shapes[sub.Prop])
		}
	}
	for _, prop := range onto.DataPropertyNames() {
		direct := shapes[prop]
		if len(direct) == 0 {
			continue
		}
		for _, sub := range onto.SubDataPropertiesOf(prop) {
			if sub == prop {
				continue
			}
			flag(prop, sub, direct, shapes[sub])
		}
	}
}
