// Package analyze implements the static-analysis pass of the OBDA stack:
// a one-time check of the three benchmark artifacts — R2RML mapping, OWL 2
// QL ontology and SQL schema — that produces (a) a diagnostic Report (the
// lint half, surfaced by cmd/obdalint) and (b) a Constraints artifact (the
// optimization half, consumed by internal/unfold to drop subsumed UCQ arms
// and collapse provably-redundant self-joins, after Hovland et al., "OBDA
// Constraints for Effective Query Answering").
package analyze

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Severity grades a diagnostic.
type Severity uint8

// Severities, ordered: errors make obdalint exit non-zero.
const (
	SevInfo Severity = iota
	SevWarning
	SevError
)

func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	}
	return "info"
}

// MarshalJSON renders the severity as its lower-case name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// Diagnostic codes emitted by Run.
const (
	// CodeInvalidSource: a mapping's logical source SQL does not parse.
	CodeInvalidSource = "invalid-source"
	// CodeMissingTable: source SQL references a table absent from the schema.
	CodeMissingTable = "missing-table"
	// CodeMissingColumn: source SQL or a term map references a column the
	// logical source does not provide.
	CodeMissingColumn = "missing-column"
	// CodeUnmappedTerm: an ontology class/property with no mapping assertion,
	// directly or via any subsumed term — queries over it are provably empty.
	CodeUnmappedTerm = "unmapped-term"
	// CodeDeadMapping: a mapping asserts a class/property the ontology does
	// not declare — the triples are invisible to rewriting.
	CodeDeadMapping = "dead-mapping"
	// CodeUnjoinableObject: an object IRI template disjoint from every
	// subject template — its objects can never be joined or typed.
	CodeUnjoinableObject = "unjoinable-object"
	// CodeUnsupportedJoin: a source-level join condition with no supporting
	// key or foreign key in the catalog.
	CodeUnsupportedJoin = "unsupported-join"
	// CodeRedundantAssertion: a mapping assertion subsumed by a sub-term's
	// assertion under the ontology (T-mapping redundancy).
	CodeRedundantAssertion = "redundant-assertion"
)

// Diagnostic is one finding of the static analyzer.
type Diagnostic struct {
	Code     string   `json:"code"`
	Severity Severity `json:"severity"`
	Mapping  string   `json:"mapping,omitempty"` // triples-map name, when tied to one
	Term     string   `json:"term,omitempty"`    // ontology term IRI, when tied to one
	Detail   string   `json:"detail"`
}

func (d Diagnostic) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-7s %-20s", d.Severity, d.Code)
	if d.Mapping != "" {
		fmt.Fprintf(&sb, " [%s]", d.Mapping)
	}
	if d.Term != "" {
		fmt.Fprintf(&sb, " <%s>", d.Term)
	}
	sb.WriteString(" " + d.Detail)
	return sb.String()
}

// Report is the ordered set of diagnostics produced by one analysis run.
type Report struct {
	Diagnostics []Diagnostic `json:"diagnostics"`
}

func (r *Report) add(d Diagnostic) { r.Diagnostics = append(r.Diagnostics, d) }

// sortDiagnostics orders errors first, then by code, mapping, term and
// detail, so reports are deterministic (golden tests diff them).
func (r *Report) sortDiagnostics() {
	sort.SliceStable(r.Diagnostics, func(i, j int) bool {
		a, b := r.Diagnostics[i], r.Diagnostics[j]
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		if a.Mapping != b.Mapping {
			return a.Mapping < b.Mapping
		}
		if a.Term != b.Term {
			return a.Term < b.Term
		}
		return a.Detail < b.Detail
	})
}

// Count returns the number of diagnostics at the given severity.
func (r *Report) Count(s Severity) int {
	n := 0
	for _, d := range r.Diagnostics {
		if d.Severity == s {
			n++
		}
	}
	return n
}

// HasErrors reports whether any diagnostic is an error.
func (r *Report) HasErrors() bool { return r.Count(SevError) > 0 }

// ByCode counts diagnostics per code.
func (r *Report) ByCode() map[string]int {
	out := map[string]int{}
	for _, d := range r.Diagnostics {
		out[d.Code]++
	}
	return out
}

// Summary is a one-line count of findings.
func (r *Report) Summary() string {
	return fmt.Sprintf("%d errors, %d warnings, %d infos",
		r.Count(SevError), r.Count(SevWarning), r.Count(SevInfo))
}

// String renders the full text report: one line per diagnostic plus the
// summary line.
func (r *Report) String() string {
	var sb strings.Builder
	for _, d := range r.Diagnostics {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	sb.WriteString(r.Summary())
	sb.WriteByte('\n')
	return sb.String()
}

// ReportJSON is the machine-readable shape of a Report: the diagnostics
// plus the summary line, per-severity counts, and per-code counts, so a CI
// consumer never has to re-derive them.
type ReportJSON struct {
	Summary     string         `json:"summary"`
	Diagnostics []Diagnostic   `json:"diagnostics"`
	Counts      map[string]int `json:"counts"`
	ByCode      map[string]int `json:"by_code"`
}

// Payload builds the machine-readable report structure.
func (r *Report) Payload() ReportJSON {
	return ReportJSON{
		Summary:     r.Summary(),
		Diagnostics: r.Diagnostics,
		Counts: map[string]int{
			"error":   r.Count(SevError),
			"warning": r.Count(SevWarning),
			"info":    r.Count(SevInfo),
		},
		ByCode: r.ByCode(),
	}
}

// JSON renders the report as indented JSON for machine consumers.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r.Payload(), "", "  ")
}
