package triplestore

import (
	"fmt"
	"testing"

	"npdbench/internal/rdf"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://t/" + s) }

func testStore() *Store {
	st := New()
	typ := rdf.NewIRI(rdf.RDFType)
	for i := 0; i < 10; i++ {
		s := iri(fmt.Sprintf("e%d", i))
		st.Add(rdf.Triple{S: s, P: typ, O: iri("E")})
		st.Add(rdf.Triple{S: s, P: iri("value"), O: rdf.NewInteger(int64(i))})
		if i > 0 {
			st.Add(rdf.Triple{S: s, P: iri("next"), O: iri(fmt.Sprintf("e%d", i-1))})
		}
	}
	return st
}

func TestAddDeduplicates(t *testing.T) {
	st := New()
	tr := rdf.Triple{S: iri("a"), P: iri("p"), O: iri("b")}
	if !st.Add(tr) {
		t.Fatal("first add must report new")
	}
	if st.Add(tr) {
		t.Fatal("second add must report duplicate")
	}
	if st.Len() != 1 {
		t.Fatalf("len = %d", st.Len())
	}
}

func TestMatchAccessPaths(t *testing.T) {
	st := testStore()
	typ := rdf.NewIRI(rdf.RDFType)
	e := iri("E")
	// by PO
	if got := len(st.Match(nil, &typ, &e)); got != 10 {
		t.Fatalf("PO match = %d", got)
	}
	// by S
	s := iri("e3")
	if got := len(st.Match(&s, nil, nil)); got != 3 {
		t.Fatalf("S match = %d", got)
	}
	// by P
	next := iri("next")
	if got := len(st.Match(nil, &next, nil)); got != 9 {
		t.Fatalf("P match = %d", got)
	}
	// by O
	o := iri("e0")
	if got := len(st.Match(nil, nil, &o)); got != 1 {
		t.Fatalf("O match = %d", got)
	}
	// fully bound
	if got := len(st.Match(&s, &next, nil)); got != 1 {
		t.Fatalf("SP match = %d", got)
	}
	// no match
	zz := iri("zz")
	if got := len(st.Match(&zz, nil, nil)); got != 0 {
		t.Fatalf("missing subject match = %d", got)
	}
	// full scan
	if got := len(st.Match(nil, nil, nil)); got != st.Len() {
		t.Fatalf("scan = %d, len = %d", got, st.Len())
	}
}

func TestCounts(t *testing.T) {
	st := testStore()
	if st.CountClass(iri("E")) != 10 {
		t.Fatal("CountClass")
	}
	if st.CountPredicate(iri("value")) != 10 {
		t.Fatal("CountPredicate")
	}
	if got := len(st.Subjects(iri("next"))); got != 9 {
		t.Fatalf("Subjects = %d", got)
	}
}

func TestTriplesDeterministic(t *testing.T) {
	a, b := testStore(), testStore()
	ta, tb := a.Triples(), b.Triples()
	if len(ta) != len(tb) {
		t.Fatal("length mismatch")
	}
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("order differs at %d", i)
		}
	}
}
