// Package triplestore is an in-memory indexed RDF store with SPO/POS/OSP
// access paths. It is the materialized baseline of the benchmark: the
// virtual RDF graph exposed by an OBDA specification is loaded here and
// queried directly with the SPARQL evaluator (the role Stardog plays in the
// paper's evaluation).
package triplestore

import (
	"sort"

	"npdbench/internal/rdf"
)

// Store holds triples with three hash access paths.
type Store struct {
	triples []rdf.Triple
	seen    map[tripleKey]bool

	bySubject   map[rdf.Term][]int
	byPredicate map[rdf.Term][]int
	byObject    map[rdf.Term][]int
	// byPO accelerates the hottest OBDA pattern: ?x rdf:type :Class and
	// ?x :prop <const>.
	byPO map[poKey][]int
}

type tripleKey struct{ s, p, o rdf.Term }

type poKey struct{ p, o rdf.Term }

// New creates an empty store.
func New() *Store {
	return &Store{
		seen:        make(map[tripleKey]bool),
		bySubject:   make(map[rdf.Term][]int),
		byPredicate: make(map[rdf.Term][]int),
		byObject:    make(map[rdf.Term][]int),
		byPO:        make(map[poKey][]int),
	}
}

// Add inserts a triple; duplicates are ignored (RDF graphs are sets).
// It reports whether the triple was new.
func (st *Store) Add(t rdf.Triple) bool {
	k := tripleKey{t.S, t.P, t.O}
	if st.seen[k] {
		return false
	}
	st.seen[k] = true
	idx := len(st.triples)
	st.triples = append(st.triples, t)
	st.bySubject[t.S] = append(st.bySubject[t.S], idx)
	st.byPredicate[t.P] = append(st.byPredicate[t.P], idx)
	st.byObject[t.O] = append(st.byObject[t.O], idx)
	st.byPO[poKey{t.P, t.O}] = append(st.byPO[poKey{t.P, t.O}], idx)
	return true
}

// AddAll inserts a batch of triples and returns the number actually added.
func (st *Store) AddAll(ts []rdf.Triple) int {
	n := 0
	for _, t := range ts {
		if st.Add(t) {
			n++
		}
	}
	return n
}

// Len returns the number of distinct triples.
func (st *Store) Len() int { return len(st.triples) }

// Contains reports whether the triple is in the store.
func (st *Store) Contains(t rdf.Triple) bool {
	return st.seen[tripleKey{t.S, t.P, t.O}]
}

// Match returns the triples matching the given pattern; nil positions are
// wildcards. It implements sparql.TripleSource.
func (st *Store) Match(s, p, o *rdf.Term) []rdf.Triple {
	var candidates []int
	switch {
	case s != nil:
		candidates = st.bySubject[*s]
	case p != nil && o != nil:
		candidates = st.byPO[poKey{*p, *o}]
	case p != nil:
		candidates = st.byPredicate[*p]
	case o != nil:
		candidates = st.byObject[*o]
	default:
		out := make([]rdf.Triple, len(st.triples))
		copy(out, st.triples)
		return out
	}
	var out []rdf.Triple
	for _, idx := range candidates {
		t := st.triples[idx]
		if s != nil && t.S != *s {
			continue
		}
		if p != nil && t.P != *p {
			continue
		}
		if o != nil && t.O != *o {
			continue
		}
		out = append(out, t)
	}
	return out
}

// Triples returns a sorted copy of all triples (deterministic dumps).
func (st *Store) Triples() []rdf.Triple {
	out := make([]rdf.Triple, len(st.triples))
	copy(out, st.triples)
	rdf.SortTriples(out)
	return out
}

// Subjects returns the sorted distinct subjects of a predicate (statistics
// and VIG validation).
func (st *Store) Subjects(p rdf.Term) []rdf.Term {
	set := make(map[rdf.Term]bool)
	for _, idx := range st.byPredicate[p] {
		set[st.triples[idx].S] = true
	}
	out := make([]rdf.Term, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return rdf.CompareTerms(out[i], out[j]) < 0 })
	return out
}

// CountPredicate returns the number of triples with predicate p.
func (st *Store) CountPredicate(p rdf.Term) int {
	return len(st.byPredicate[p])
}

// CountClass returns the number of rdf:type assertions for a class.
func (st *Store) CountClass(class rdf.Term) int {
	return len(st.byPO[poKey{rdf.NewIRI(rdf.RDFType), class}])
}
