package owl

import "sort"

// classification caches the reflexive-transitive closure of the concept and
// property hierarchies, the pieces every query-rewriting step consumes.
type classification struct {
	// subConcepts[c] is the set of basic concepts subsumed by c (including
	// c itself).
	subConcepts map[Concept]map[Concept]bool
	// superConcepts is the converse relation.
	superConcepts map[Concept]map[Concept]bool
	// subProps[p] is the set of (possibly inverted) object properties
	// subsumed by p, including p.
	subProps map[PropRef]map[PropRef]bool
	// subDataProps[u] similarly for data properties (no inverses).
	subDataProps map[string]map[string]bool
}

func (o *Ontology) classify() *classification {
	if o.cls != nil {
		return o.cls
	}
	c := &classification{
		subConcepts:   make(map[Concept]map[Concept]bool),
		superConcepts: make(map[Concept]map[Concept]bool),
		subProps:      make(map[PropRef]map[PropRef]bool),
		subDataProps:  make(map[string]map[string]bool),
	}

	// --- property hierarchy (with inverses) ---
	// edges: sub -> sup
	pEdges := make(map[PropRef][]PropRef)
	addPEdge := func(sub, sup PropRef) {
		pEdges[sub] = append(pEdges[sub], sup)
		pEdges[sub.Inv()] = append(pEdges[sub.Inv()], sup.Inv())
	}
	for _, ax := range o.SubProps {
		if ax.IsData {
			continue
		}
		addPEdge(ax.Sub, ax.Sup)
	}
	for _, inv := range o.Inverses {
		p := PropRef{Prop: inv[0]}
		q := PropRef{Prop: inv[1]}
		addPEdge(p, q.Inv())
		addPEdge(q.Inv(), p)
	}
	// closure per declared property (both orientations)
	for prop := range o.objProps {
		for _, orient := range []bool{false, true} {
			root := PropRef{Prop: prop, Inverse: orient}
			c.subProps[root] = reachableInverse(pEdges, root)
		}
	}

	// --- data property hierarchy ---
	dEdges := make(map[string][]string)
	for _, ax := range o.SubProps {
		if ax.IsData {
			dEdges[ax.Sub.Prop] = append(dEdges[ax.Sub.Prop], ax.Sup.Prop)
		}
	}
	for prop := range o.dataProps {
		c.subDataProps[prop] = reachableInverseStr(dEdges, prop)
	}

	// --- concept hierarchy ---
	// Direct edges from subclass axioms...
	cEdges := make(map[Concept][]Concept) // sub -> sups
	for _, ax := range o.SubClasses {
		cEdges[ax.Sub] = append(cEdges[ax.Sub], ax.Sup)
	}
	// ...plus A ⊑ ∃R.B implies A ⊑ ∃R...
	for _, ax := range o.Existentials {
		cEdges[ax.Sub] = append(cEdges[ax.Sub], SomeValues(ax.Prop, ax.Inverse))
	}
	// ...plus R ⊑ S implies ∃R ⊑ ∃S and ∃R⁻ ⊑ ∃S⁻ (in closure form, via
	// the property hierarchy).
	for prop := range o.objProps {
		for _, orient := range []bool{false, true} {
			p := PropRef{Prop: prop, Inverse: orient}
			for sub := range c.subProps[p] {
				if sub == p {
					continue
				}
				cEdges[SomeValues(sub.Prop, sub.Inverse)] =
					append(cEdges[SomeValues(sub.Prop, sub.Inverse)], SomeValues(p.Prop, p.Inverse))
			}
		}
	}
	// ...plus U ⊑ V for data props implies ∃U ⊑ ∃V.
	for prop := range o.dataProps {
		for sub := range c.subDataProps[prop] {
			if sub == prop {
				continue
			}
			cEdges[SomeData(sub)] = append(cEdges[SomeData(sub)], SomeData(prop))
		}
	}

	// All basic concepts appearing anywhere.
	all := make(map[Concept]bool)
	for cl := range o.classes {
		all[NamedConcept(cl)] = true
	}
	for p := range o.objProps {
		all[SomeValues(p, false)] = true
		all[SomeValues(p, true)] = true
	}
	for p := range o.dataProps {
		all[SomeData(p)] = true
	}
	for sub, sups := range cEdges {
		all[sub] = true
		for _, s := range sups {
			all[s] = true
		}
	}

	// Reverse edges for the sub-concepts relation: sup -> subs.
	rev := make(map[Concept][]Concept)
	for sub, sups := range cEdges {
		for _, sup := range sups {
			rev[sup] = append(rev[sup], sub)
		}
	}
	for concept := range all {
		c.subConcepts[concept] = reachableConcepts(rev, concept)
		c.superConcepts[concept] = reachableConcepts(cEdges, concept)
	}

	o.cls = c
	return c
}

func reachableConcepts(edges map[Concept][]Concept, start Concept) map[Concept]bool {
	seen := map[Concept]bool{start: true}
	stack := []Concept{start}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, next := range edges[cur] {
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return seen
}

func reachableInverse(edges map[PropRef][]PropRef, root PropRef) map[PropRef]bool {
	// compute all p with p ⊑* root: reverse reachability.
	rev := make(map[PropRef][]PropRef)
	for sub, sups := range edges {
		for _, sup := range sups {
			rev[sup] = append(rev[sup], sub)
		}
	}
	seen := map[PropRef]bool{root: true}
	stack := []PropRef{root}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, next := range rev[cur] {
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return seen
}

func reachableInverseStr(edges map[string][]string, root string) map[string]bool {
	rev := make(map[string][]string)
	for sub, sups := range edges {
		for _, sup := range sups {
			rev[sup] = append(rev[sup], sub)
		}
	}
	seen := map[string]bool{root: true}
	stack := []string{root}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, next := range rev[cur] {
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return seen
}

// SubConceptsOf returns all basic concepts subsumed by c (including c),
// sorted deterministically.
func (o *Ontology) SubConceptsOf(c Concept) []Concept {
	m := o.classify().subConcepts[c]
	if m == nil {
		return []Concept{c}
	}
	return sortConcepts(m)
}

// SuperConceptsOf returns all basic concepts subsuming c (including c).
func (o *Ontology) SuperConceptsOf(c Concept) []Concept {
	m := o.classify().superConcepts[c]
	if m == nil {
		return []Concept{c}
	}
	return sortConcepts(m)
}

// SubPropertiesOf returns the (possibly inverted) object properties
// subsumed by p, including p itself.
func (o *Ontology) SubPropertiesOf(p PropRef) []PropRef {
	m := o.classify().subProps[p]
	if m == nil {
		return []PropRef{p}
	}
	out := make([]PropRef, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prop != out[j].Prop {
			return out[i].Prop < out[j].Prop
		}
		return !out[i].Inverse && out[j].Inverse
	})
	return out
}

// SubDataPropertiesOf returns the data properties subsumed by u, including
// u itself.
func (o *Ontology) SubDataPropertiesOf(u string) []string {
	m := o.classify().subDataProps[u]
	if m == nil {
		return []string{u}
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Subsumes reports whether sup subsumes sub (sub ⊑* sup).
func (o *Ontology) Subsumes(sup, sub Concept) bool {
	m := o.classify().subConcepts[sup]
	return m != nil && m[sub]
}

// GeneratingAxioms returns the existential axioms applicable to instances of
// concept c: every ExistAxiom whose Sub subsumes-or-equals some
// super-concept of c. These drive tree-witness detection.
func (o *Ontology) GeneratingAxioms(c Concept) []ExistAxiom {
	supers := o.classify().superConcepts[c]
	var out []ExistAxiom
	for _, ax := range o.Existentials {
		if supers[ax.Sub] || ax.Sub == c {
			out = append(out, ax)
		}
	}
	return out
}

// UnsatisfiableClasses returns named classes that can have no instances in
// any model: classes subsumed by two declared-disjoint concepts.
func (o *Ontology) UnsatisfiableClasses() []string {
	var out []string
	for cl := range o.classes {
		supers := o.classify().superConcepts[NamedConcept(cl)]
		for _, d := range o.Disjoints {
			if supers[d.A] && supers[d.B] {
				out = append(out, cl)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// DisjointWith reports whether concepts a and b are entailed disjoint.
func (o *Ontology) DisjointWith(a, b Concept) bool {
	sa := o.classify().superConcepts[a]
	sb := o.classify().superConcepts[b]
	for _, d := range o.Disjoints {
		if (sa[d.A] && sb[d.B]) || (sa[d.B] && sb[d.A]) {
			return true
		}
	}
	return false
}

func sortConcepts(m map[Concept]bool) []Concept {
	out := make([]Concept, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.Prop != b.Prop {
			return a.Prop < b.Prop
		}
		if a.Inverse != b.Inverse {
			return !a.Inverse
		}
		return !a.IsData && b.IsData
	})
	return out
}
