// Package owl models OWL 2 QL ontologies: class and property declarations
// and the axiom forms admitted by the QL profile, which guarantees
// first-order rewritability of unions of conjunctive queries (the property
// the NPD benchmark exercises).
//
// The basic concepts of OWL 2 QL are named classes A, unqualified
// existentials ∃R and ∃R⁻ over object properties, and ∃U over data
// properties. Subclass axioms have a basic concept on the left; the right
// side may additionally be a qualified existential ∃R.A (which generates
// anonymous individuals — the source of tree witnesses in query rewriting).
package owl

import (
	"fmt"
	"sort"
)

// Concept is a basic concept: a named class or an (un)qualified existential.
type Concept struct {
	// Class is the class IRI when the concept is named; empty otherwise.
	Class string
	// Prop is the property IRI when the concept is an existential.
	Prop string
	// Inverse marks ∃R⁻.
	Inverse bool
	// IsData marks ∃U over a data property.
	IsData bool
}

// NamedConcept returns the basic concept for a class IRI.
func NamedConcept(iri string) Concept { return Concept{Class: iri} }

// SomeValues returns ∃R or ∃R⁻ for an object property.
func SomeValues(prop string, inverse bool) Concept {
	return Concept{Prop: prop, Inverse: inverse}
}

// SomeData returns ∃U for a data property.
func SomeData(prop string) Concept { return Concept{Prop: prop, IsData: true} }

// IsNamed reports whether the concept is a named class.
func (c Concept) IsNamed() bool { return c.Class != "" }

func (c Concept) String() string {
	if c.IsNamed() {
		return c.Class
	}
	if c.IsData {
		return "∃" + c.Prop
	}
	if c.Inverse {
		return "∃" + c.Prop + "⁻"
	}
	return "∃" + c.Prop
}

// PropRef is a property, possibly inverted.
type PropRef struct {
	Prop    string
	Inverse bool
}

func (p PropRef) String() string {
	if p.Inverse {
		return p.Prop + "⁻"
	}
	return p.Prop
}

// Inv returns the inverse reference.
func (p PropRef) Inv() PropRef { return PropRef{Prop: p.Prop, Inverse: !p.Inverse} }

// SubClassAxiom states Sub ⊑ Sup for basic concepts. Qualified existentials
// on the right-hand side are expressed as ExistAxiom instead.
type SubClassAxiom struct {
	Sub, Sup Concept
}

// ExistAxiom states Sub ⊑ ∃Prop.Filler (anonymous-individual generation).
// Inverse marks ∃Prop⁻.Filler.
type ExistAxiom struct {
	Sub     Concept
	Prop    string
	Inverse bool
	Filler  string // named class; empty means owl:Thing
}

// SubPropAxiom states Sub ⊑ Sup between (possibly inverted) object
// properties, or between data properties (Inverse flags must be false).
type SubPropAxiom struct {
	Sub, Sup PropRef
	IsData   bool
}

// DisjointAxiom states that two basic concepts share no instances.
type DisjointAxiom struct {
	A, B Concept
}

// DisjointPropAxiom states that two object properties are disjoint.
type DisjointPropAxiom struct {
	A, B PropRef
}

// Ontology is an OWL 2 QL TBox.
type Ontology struct {
	IRI string

	classes   map[string]bool
	objProps  map[string]bool
	dataProps map[string]bool

	SubClasses    []SubClassAxiom
	Existentials  []ExistAxiom
	SubProps      []SubPropAxiom
	Disjoints     []DisjointAxiom
	DisjointProps []DisjointPropAxiom
	// Inverses lists declared owl:inverseOf pairs (P ≡ Q⁻).
	Inverses [][2]string

	cls *classification // computed lazily
}

// New creates an empty ontology.
func New(iri string) *Ontology {
	return &Ontology{
		IRI:       iri,
		classes:   make(map[string]bool),
		objProps:  make(map[string]bool),
		dataProps: make(map[string]bool),
	}
}

// DeclareClass registers a class IRI.
func (o *Ontology) DeclareClass(iri string) {
	o.classes[iri] = true
	o.cls = nil
}

// DeclareObjectProperty registers an object property IRI.
func (o *Ontology) DeclareObjectProperty(iri string) {
	o.objProps[iri] = true
	o.cls = nil
}

// DeclareDataProperty registers a data property IRI.
func (o *Ontology) DeclareDataProperty(iri string) {
	o.dataProps[iri] = true
	o.cls = nil
}

// HasClass reports whether the IRI is a declared class.
func (o *Ontology) HasClass(iri string) bool { return o.classes[iri] }

// HasObjectProperty reports whether the IRI is a declared object property.
func (o *Ontology) HasObjectProperty(iri string) bool { return o.objProps[iri] }

// HasDataProperty reports whether the IRI is a declared data property.
func (o *Ontology) HasDataProperty(iri string) bool { return o.dataProps[iri] }

// ClassNames returns the sorted class IRIs.
func (o *Ontology) ClassNames() []string { return sortedKeys(o.classes) }

// ObjectPropertyNames returns the sorted object property IRIs.
func (o *Ontology) ObjectPropertyNames() []string { return sortedKeys(o.objProps) }

// DataPropertyNames returns the sorted data property IRIs.
func (o *Ontology) DataPropertyNames() []string { return sortedKeys(o.dataProps) }

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// AddSubClass asserts Sub ⊑ Sup; both concepts' vocabulary is auto-declared.
func (o *Ontology) AddSubClass(sub, sup Concept) {
	o.declareConcept(sub)
	o.declareConcept(sup)
	o.SubClasses = append(o.SubClasses, SubClassAxiom{Sub: sub, Sup: sup})
	o.cls = nil
}

// AddExistential asserts sub ⊑ ∃prop.filler.
func (o *Ontology) AddExistential(sub Concept, prop string, inverse bool, filler string) {
	o.declareConcept(sub)
	o.objProps[prop] = true
	if filler != "" {
		o.classes[filler] = true
	}
	o.Existentials = append(o.Existentials, ExistAxiom{Sub: sub, Prop: prop, Inverse: inverse, Filler: filler})
	o.cls = nil
}

// AddSubObjectProperty asserts sub ⊑ sup between object properties.
func (o *Ontology) AddSubObjectProperty(sub, sup PropRef) {
	o.objProps[sub.Prop] = true
	o.objProps[sup.Prop] = true
	o.SubProps = append(o.SubProps, SubPropAxiom{Sub: sub, Sup: sup})
	o.cls = nil
}

// AddSubDataProperty asserts sub ⊑ sup between data properties.
func (o *Ontology) AddSubDataProperty(sub, sup string) {
	o.dataProps[sub] = true
	o.dataProps[sup] = true
	o.SubProps = append(o.SubProps, SubPropAxiom{Sub: PropRef{Prop: sub}, Sup: PropRef{Prop: sup}, IsData: true})
	o.cls = nil
}

// AddInverse asserts P ≡ Q⁻.
func (o *Ontology) AddInverse(p, q string) {
	o.objProps[p] = true
	o.objProps[q] = true
	o.Inverses = append(o.Inverses, [2]string{p, q})
	o.cls = nil
}

// AddDomain asserts ∃P ⊑ C (works for both object and data properties).
func (o *Ontology) AddDomain(prop string, isData bool, class string) {
	if isData {
		o.dataProps[prop] = true
		o.AddSubClass(SomeData(prop), NamedConcept(class))
		return
	}
	o.objProps[prop] = true
	o.AddSubClass(SomeValues(prop, false), NamedConcept(class))
}

// AddRange asserts ∃P⁻ ⊑ C for an object property.
func (o *Ontology) AddRange(prop, class string) {
	o.objProps[prop] = true
	o.AddSubClass(SomeValues(prop, true), NamedConcept(class))
}

// AddDisjoint asserts that a and b share no instances.
func (o *Ontology) AddDisjoint(a, b Concept) {
	o.declareConcept(a)
	o.declareConcept(b)
	o.Disjoints = append(o.Disjoints, DisjointAxiom{A: a, B: b})
	o.cls = nil
}

// AddDisjointProperties asserts that object properties a and b are disjoint.
func (o *Ontology) AddDisjointProperties(a, b PropRef) {
	o.objProps[a.Prop] = true
	o.objProps[b.Prop] = true
	o.DisjointProps = append(o.DisjointProps, DisjointPropAxiom{A: a, B: b})
	o.cls = nil
}

func (o *Ontology) declareConcept(c Concept) {
	switch {
	case c.IsNamed():
		o.classes[c.Class] = true
	case c.IsData:
		o.dataProps[c.Prop] = true
	default:
		o.objProps[c.Prop] = true
	}
}

// Stats summarizes the ontology for the paper's Table 3 columns.
type Stats struct {
	Classes         int
	ObjectProps     int
	DataProps       int
	InclusionAxioms int
	MaxDepth        int // longest chain in the named-class hierarchy
}

// Stats computes ontology statistics.
func (o *Ontology) Stats() Stats {
	s := Stats{
		Classes:         len(o.classes),
		ObjectProps:     len(o.objProps),
		DataProps:       len(o.dataProps),
		InclusionAxioms: len(o.SubClasses) + len(o.Existentials) + len(o.SubProps),
	}
	s.MaxDepth = o.hierarchyDepth()
	return s
}

// hierarchyDepth returns the length of the longest strict subclass chain
// between named classes (cycles count as depth of their condensation).
func (o *Ontology) hierarchyDepth() int {
	edges := make(map[string][]string) // sub -> sups (named only)
	for _, ax := range o.SubClasses {
		if ax.Sub.IsNamed() && ax.Sup.IsNamed() {
			edges[ax.Sub.Class] = append(edges[ax.Sub.Class], ax.Sup.Class)
		}
	}
	memo := make(map[string]int)
	onStack := make(map[string]bool)
	var depth func(string) int
	depth = func(c string) int {
		if d, ok := memo[c]; ok {
			return d
		}
		if onStack[c] {
			return 0 // cycle guard
		}
		onStack[c] = true
		best := 0
		for _, sup := range edges[c] {
			if d := depth(sup) + 1; d > best {
				best = d
			}
		}
		onStack[c] = false
		memo[c] = best
		return best
	}
	max := 0
	for c := range o.classes {
		if d := depth(c); d > max {
			max = d
		}
	}
	return max
}

func (o *Ontology) String() string {
	s := o.Stats()
	return fmt.Sprintf("Ontology(%s: %d classes, %d obj props, %d data props, %d axioms, depth %d)",
		o.IRI, s.Classes, s.ObjectProps, s.DataProps, s.InclusionAxioms, s.MaxDepth)
}
