package owl

import (
	"testing"
	"testing/quick"
)

const ns = "http://test/"

func chainOntology() *Ontology {
	o := New(ns)
	// A ⊑ B ⊑ C; P ⊑ Q; inverse(P, Pinv); domain(P)=A; range(P)=C;
	// A ⊑ ∃R.B; disjoint(A, D)
	o.AddSubClass(NamedConcept(ns+"A"), NamedConcept(ns+"B"))
	o.AddSubClass(NamedConcept(ns+"B"), NamedConcept(ns+"C"))
	o.AddSubObjectProperty(PropRef{Prop: ns + "P"}, PropRef{Prop: ns + "Q"})
	o.AddInverse(ns+"P", ns+"Pinv")
	o.AddDomain(ns+"P", false, ns+"A")
	o.AddRange(ns+"P", ns+"C")
	o.AddExistential(NamedConcept(ns+"A"), ns+"R", false, ns+"B")
	o.AddDisjoint(NamedConcept(ns+"A"), NamedConcept(ns+"D"))
	o.AddSubDataProperty(ns+"u", ns+"v")
	return o
}

func TestSubConceptClosure(t *testing.T) {
	o := chainOntology()
	subsOfC := o.SubConceptsOf(NamedConcept(ns + "C"))
	want := map[string]bool{ns + "A": true, ns + "B": true, ns + "C": true}
	named := 0
	for _, c := range subsOfC {
		if c.IsNamed() {
			named++
			if !want[c.Class] {
				t.Errorf("unexpected subclass %s", c.Class)
			}
		}
	}
	if named != 3 {
		t.Fatalf("named subclasses of C = %d, want 3", named)
	}
	// ∃P ⊑ A ⊑ B ⊑ C via the domain axiom
	if !o.Subsumes(NamedConcept(ns+"C"), SomeValues(ns+"P", false)) {
		t.Fatal("∃P must be subsumed by C")
	}
	// ∃P⁻ ⊑ C via the range axiom
	if !o.Subsumes(NamedConcept(ns+"C"), SomeValues(ns+"P", true)) {
		t.Fatal("∃P⁻ must be subsumed by C")
	}
}

func TestSubsumptionIsReflexiveAndTransitive(t *testing.T) {
	o := chainOntology()
	for _, c := range o.ClassNames() {
		if !o.Subsumes(NamedConcept(c), NamedConcept(c)) {
			t.Fatalf("subsumption must be reflexive (%s)", c)
		}
	}
	if !o.Subsumes(NamedConcept(ns+"C"), NamedConcept(ns+"A")) {
		t.Fatal("A ⊑ C by transitivity")
	}
	if o.Subsumes(NamedConcept(ns+"A"), NamedConcept(ns+"C")) {
		t.Fatal("C ⋢ A")
	}
}

func TestPropertyHierarchyWithInverses(t *testing.T) {
	o := chainOntology()
	subsOfQ := o.SubPropertiesOf(PropRef{Prop: ns + "Q"})
	found := map[string]bool{}
	for _, p := range subsOfQ {
		found[p.String()] = true
	}
	if !found[ns+"P"] || !found[ns+"Q"] {
		t.Fatalf("P and Q must be sub-properties of Q: %v", found)
	}
	// Pinv ≡ P⁻, so Pinv⁻ ⊑ Q too
	if !found[ns+"Pinv⁻"] {
		t.Fatalf("Pinv⁻ must be a sub-property of Q: %v", found)
	}
	// inverse direction: P⁻ ⊑ Q⁻
	subsOfQinv := o.SubPropertiesOf(PropRef{Prop: ns + "Q", Inverse: true})
	foundInv := map[string]bool{}
	for _, p := range subsOfQinv {
		foundInv[p.String()] = true
	}
	if !foundInv[ns+"P⁻"] || !foundInv[ns+"Pinv"] {
		t.Fatalf("P⁻ and Pinv must be sub-properties of Q⁻: %v", foundInv)
	}
}

func TestDataPropertyHierarchy(t *testing.T) {
	o := chainOntology()
	subs := o.SubDataPropertiesOf(ns + "v")
	if len(subs) != 2 {
		t.Fatalf("sub data props of v: %v", subs)
	}
	// ∃u ⊑ ∃v at the concept level
	if !o.Subsumes(SomeData(ns+"v"), SomeData(ns+"u")) {
		t.Fatal("∃u ⊑ ∃v expected")
	}
}

func TestGeneratingAxioms(t *testing.T) {
	o := chainOntology()
	// A has the existential directly.
	if got := o.GeneratingAxioms(NamedConcept(ns + "A")); len(got) != 1 {
		t.Fatalf("A generating axioms = %d, want 1", len(got))
	}
	// C does not (the axiom's Sub is A, and A is below C, not above).
	if got := o.GeneratingAxioms(NamedConcept(ns + "C")); len(got) != 0 {
		t.Fatalf("C generating axioms = %d, want 0", len(got))
	}
}

func TestUnsatisfiableClasses(t *testing.T) {
	o := chainOntology()
	if u := o.UnsatisfiableClasses(); len(u) != 0 {
		t.Fatalf("consistent ontology reports unsat classes %v", u)
	}
	// E ⊑ A and E ⊑ D with disjoint(A, D) makes E unsatisfiable.
	o.AddSubClass(NamedConcept(ns+"E"), NamedConcept(ns+"A"))
	o.AddSubClass(NamedConcept(ns+"E"), NamedConcept(ns+"D"))
	u := o.UnsatisfiableClasses()
	if len(u) != 1 || u[0] != ns+"E" {
		t.Fatalf("unsat = %v, want [E]", u)
	}
}

func TestDisjointWithPropagates(t *testing.T) {
	o := chainOntology()
	o.AddSubClass(NamedConcept(ns+"A2"), NamedConcept(ns+"A"))
	o.AddSubClass(NamedConcept(ns+"D2"), NamedConcept(ns+"D"))
	if !o.DisjointWith(NamedConcept(ns+"A2"), NamedConcept(ns+"D2")) {
		t.Fatal("disjointness must propagate down both hierarchies")
	}
	if o.DisjointWith(NamedConcept(ns+"A"), NamedConcept(ns+"B")) {
		t.Fatal("A and B are not disjoint")
	}
}

func TestHierarchyDepth(t *testing.T) {
	o := New(ns)
	prev := "L0"
	for i := 1; i <= 7; i++ {
		cur := "L" + string(rune('0'+i))
		o.AddSubClass(NamedConcept(ns+cur), NamedConcept(ns+prev))
		prev = cur
	}
	if d := o.Stats().MaxDepth; d != 7 {
		t.Fatalf("depth = %d, want 7", d)
	}
}

func TestDepthCycleGuard(t *testing.T) {
	o := New(ns)
	o.AddSubClass(NamedConcept(ns+"X"), NamedConcept(ns+"Y"))
	o.AddSubClass(NamedConcept(ns+"Y"), NamedConcept(ns+"X"))
	// must terminate
	_ = o.Stats().MaxDepth
	// and the closure must treat them as mutually subsumed
	if !o.Subsumes(NamedConcept(ns+"X"), NamedConcept(ns+"Y")) ||
		!o.Subsumes(NamedConcept(ns+"Y"), NamedConcept(ns+"X")) {
		t.Fatal("cyclic subclassing means mutual subsumption")
	}
}

func TestClassificationCacheInvalidation(t *testing.T) {
	o := New(ns)
	o.AddSubClass(NamedConcept(ns+"A"), NamedConcept(ns+"B"))
	if !o.Subsumes(NamedConcept(ns+"B"), NamedConcept(ns+"A")) {
		t.Fatal("A ⊑ B")
	}
	// add after classification: cache must invalidate
	o.AddSubClass(NamedConcept(ns+"B"), NamedConcept(ns+"C"))
	if !o.Subsumes(NamedConcept(ns+"C"), NamedConcept(ns+"A")) {
		t.Fatal("A ⊑ C after adding B ⊑ C")
	}
}

func TestPropRefInvolution(t *testing.T) {
	f := func(name string, inv bool) bool {
		p := PropRef{Prop: name, Inverse: inv}
		return p.Inv().Inv() == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubsumptionClosureProperty(t *testing.T) {
	// Random chains: subsumption along any chain must hold end to end.
	o := New(ns)
	names := []string{"c0", "c1", "c2", "c3", "c4", "c5", "c6", "c7"}
	for i := 0; i+1 < len(names); i++ {
		o.AddSubClass(NamedConcept(ns+names[i]), NamedConcept(ns+names[i+1]))
	}
	for i := 0; i < len(names); i++ {
		for j := i; j < len(names); j++ {
			if !o.Subsumes(NamedConcept(ns+names[j]), NamedConcept(ns+names[i])) {
				t.Fatalf("%s ⊑ %s expected", names[i], names[j])
			}
			if i != j && o.Subsumes(NamedConcept(ns+names[i]), NamedConcept(ns+names[j])) {
				t.Fatalf("%s ⋢ %s expected", names[j], names[i])
			}
		}
	}
}
