package owl

import (
	"fmt"
	"math/rand"
	"testing"
)

// Property: Subsumes over random subclass DAGs coincides with naive
// graph reachability.
func TestSubsumptionMatchesReachability(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		n := 6 + rng.Intn(14)
		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("%sC%d", ns, i)
		}
		// random DAG edges i -> j with i < j (child -> parent)
		edges := make(map[int][]int)
		o := New(ns)
		for i := 0; i < n; i++ {
			o.DeclareClass(names[i])
			for j := i + 1; j < n; j++ {
				if rng.Intn(4) == 0 {
					edges[i] = append(edges[i], j)
					o.AddSubClass(NamedConcept(names[i]), NamedConcept(names[j]))
				}
			}
		}
		reach := func(from, to int) bool {
			if from == to {
				return true
			}
			seen := map[int]bool{}
			stack := []int{from}
			for len(stack) > 0 {
				cur := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, nxt := range edges[cur] {
					if nxt == to {
						return true
					}
					if !seen[nxt] {
						seen[nxt] = true
						stack = append(stack, nxt)
					}
				}
			}
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := reach(i, j)
				got := o.Subsumes(NamedConcept(names[j]), NamedConcept(names[i]))
				if got != want {
					t.Fatalf("trial %d: Subsumes(%d ⊒ %d) = %v, reachability says %v",
						trial, j, i, got, want)
				}
			}
		}
	}
}

// Property: SubConceptsOf and SuperConceptsOf are converses.
func TestSubSuperConverse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	o := New(ns)
	n := 15
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("%sK%d", ns, i)
		o.DeclareClass(names[i])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(3) == 0 {
				o.AddSubClass(NamedConcept(names[i]), NamedConcept(names[j]))
			}
		}
	}
	for i := 0; i < n; i++ {
		for _, sub := range o.SubConceptsOf(NamedConcept(names[i])) {
			found := false
			for _, sup := range o.SuperConceptsOf(sub) {
				if sup == NamedConcept(names[i]) {
					found = true
				}
			}
			if !found {
				t.Fatalf("%v ∈ sub(%s) but %s ∉ super(%v)", sub, names[i], names[i], sub)
			}
		}
	}
}
