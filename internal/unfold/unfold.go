// Package unfold implements phase 3 of the OBDA query-answering workflow:
// translating a rewritten UCQ into a single SQL statement over the mapped
// database. The translation applies the semantic query optimizations the
// paper's benchmark is designed to exercise:
//
//   - IRI-template compatibility pruning: a union arm whose join or
//     constant unification is impossible at the template level is dropped
//     before reaching the database;
//   - self-join elimination: atoms over the same logical table joined on
//     the same subject template collapse into a single table instance
//     (essential for OBDA mappings, where each data property of a wide
//     table is a separate mapping assertion);
//   - NOT NULL filters per R2RML semantics (no term from NULL).
//
// Every union arm produces the same output layout: for each answer
// variable v, three columns — the lexical form, a term-kind tag, and a
// datatype IRI — so that heterogeneous arms union cleanly and the engine
// can reconstruct RDF terms from rows.
package unfold

import (
	"fmt"
	"slices"
	"sort"
	"strconv"
	"strings"

	"npdbench/internal/analyze"
	"npdbench/internal/r2rml"
	"npdbench/internal/rdf"
	"npdbench/internal/rewrite"
	"npdbench/internal/sqldb"
)

// Term-kind tags emitted in the *_t output columns.
const (
	TagIRI     = 0
	TagLiteral = 1
	TagTyped   = 2
)

// PushFilter is a SPARQL filter fragment the engine determined safe to push
// into SQL: a comparison between a variable and a constant.
type PushFilter struct {
	Var string
	Op  string // "=", "!=", "<", "<=", ">", ">="
	Val rdf.Term
}

// Unfolded is the result of unfolding a UCQ.
type Unfolded struct {
	// Stmt is the complete SQL statement (a UNION ALL of SPJ arms); nil
	// when every arm was pruned (the query has no answers).
	Stmt *sqldb.SelectStmt
	// Vars lists the answer variables; output columns come in triples
	// (v, v_t, v_dt) in this order.
	Vars []string
	// Arms is the number of SPJ arms emitted.
	Arms int
	// PrunedArms counts mapping combinations discarded by template
	// incompatibility (the SQO measure).
	PrunedArms int
	// SelfJoinsEliminated counts merged table instances.
	SelfJoinsEliminated int
	// SubsumedArms counts arms dropped because another arm provably
	// returns a superset (constraint-driven, requires UnfoldWith).
	SubsumedArms int
	// StaticPrunedCands counts mapping-assertion candidates deleted by the
	// pre-walk static analysis (own-constant and arc-consistency proofs)
	// before the combinatorial candidate walk ran (requires
	// Opts.StaticPrune).
	StaticPrunedCands int
	// StaticContradictions counts arms whose compiled WHERE conjunction was
	// proved unsatisfiable (contradictory exact predicates hoisted from
	// merged fragment views) and deleted (requires Opts.StaticPrune).
	StaticContradictions int
	// FiltersPushed[i] reports whether filters[i] was translated into SQL
	// in every emitted arm. Callers that skip re-checking filters on the
	// translated results (e.g. aggregate pushdown) must require true.
	FiltersPushed []bool
}

// VarInfo describes how a variable's values are produced across the arms.
type VarInfo struct {
	// AlwaysLiteral is true when no arm produces an IRI for the variable.
	AlwaysLiteral bool
	// UniformDatatype is the datatype IRI shared by every arm ("" when
	// arms disagree or when the datatype is derived from column types).
	UniformDatatype string
	// DatatypeKnown reports whether UniformDatatype is meaningful.
	DatatypeKnown bool
}

// VarInfos inspects the emitted arms' constant tag/datatype columns and
// summarizes them per answer variable (aggregate pushdown uses this to
// decide whether MIN/MAX/SUM can run on the lexical column directly).
func (u *Unfolded) VarInfos() map[string]VarInfo {
	out := make(map[string]VarInfo, len(u.Vars))
	if u.Stmt == nil {
		return out
	}
	for i, v := range u.Vars {
		info := VarInfo{AlwaysLiteral: true, DatatypeKnown: true}
		first := true
		for arm := u.Stmt; arm != nil; arm = arm.Union {
			tagItem, dtItem := arm.Items[3*i+1], arm.Items[3*i+2]
			tagLit, ok1 := tagItem.Expr.(*sqldb.Lit)
			dtLit, ok2 := dtItem.Expr.(*sqldb.Lit)
			if !ok1 || !ok2 {
				info = VarInfo{}
				break
			}
			if tagLit.Val.I == TagIRI {
				info.AlwaysLiteral = false
			}
			dt := dtLit.Val.S
			if first {
				info.UniformDatatype = dt
				first = false
			} else if info.UniformDatatype != dt {
				info.DatatypeKnown = false
				info.UniformDatatype = ""
			}
		}
		out[v] = info
	}
	return out
}

// Metrics exposes the paper's Simplicity-U measures for the unfolded SQL.
func (u *Unfolded) Metrics() sqldb.SQLMetrics {
	if u.Stmt == nil {
		return sqldb.SQLMetrics{}
	}
	return u.Stmt.Metrics()
}

// candidate pairs an atom with one mapping assertion able to produce it.
type candidate struct {
	m       *r2rml.TriplesMap
	subject r2rml.TermMap
	object  r2rml.TermMap // zero for class atoms
	isClass bool
}

// Unfold translates the UCQ into SQL over the mapping.
func Unfold(ucq rewrite.UCQ, mp *r2rml.Mapping, filters []PushFilter) (*Unfolded, error) {
	return UnfoldOpts(ucq, mp, filters, Opts{})
}

// Opts configures the unfolding.
type Opts struct {
	// Cons enables the constraint-driven semantic query optimizations (see
	// UnfoldWith). Nil disables them.
	Cons *analyze.Constraints
	// StaticPrune enables the pre-walk static candidate deletion
	// (own-constant and arc-consistency proofs over IRI-template structure)
	// and the post-compilation contradictory-condition arm deletion. Both
	// are pure strength reductions: they remove only work the candidate
	// walk or the database would discard anyway.
	StaticPrune bool
}

// UnfoldWith additionally applies the constraint-driven semantic query
// optimizations of the static analyzer (Hovland et al.'s OBDA
// constraints):
//
//   - key-based self-join elimination: atoms whose logical sources reduce
//     to the same base table and whose shared subject template covers a
//     PK/UNIQUE key of that table denote the same row, so their instances
//     merge even across different mapping assertions (the per-attribute
//     mapping style of the NPD benchmark otherwise yields one subquery
//     per data property);
//   - NOT NULL guard elision for columns the catalog declares NOT NULL;
//   - subsumed-arm elimination: a union arm whose FROM/projection equals
//     another's and whose conditions are a superset is dropped (sound
//     under the engine's set semantics).
//
// A nil cons reproduces Unfold exactly.
func UnfoldWith(ucq rewrite.UCQ, mp *r2rml.Mapping, filters []PushFilter, cons *analyze.Constraints) (*Unfolded, error) {
	return UnfoldOpts(ucq, mp, filters, Opts{Cons: cons})
}

// UnfoldOpts is the fully configurable unfolding entry point.
func UnfoldOpts(ucq rewrite.UCQ, mp *r2rml.Mapping, filters []PushFilter, o Opts) (*Unfolded, error) {
	cons := o.Cons
	res := &Unfolded{}
	if len(ucq) == 0 {
		return nil, fmt.Errorf("unfold: empty UCQ")
	}
	res.Vars = append([]string{}, ucq[0].Answer...)
	res.FiltersPushed = make([]bool, len(filters))
	for i := range res.FiltersPushed {
		res.FiltersPushed[i] = true
	}
	var arms []*sqldb.SelectStmt
	for _, cq := range ucq {
		cqArms, st, pushed, err := unfoldCQ(cq, mp, filters, o)
		if err != nil {
			return nil, err
		}
		arms = append(arms, cqArms...)
		res.PrunedArms += st.pruned
		res.SelfJoinsEliminated += st.selfJoins
		res.StaticPrunedCands += st.staticCands
		res.StaticContradictions += st.contradictions
		for i := range res.FiltersPushed {
			res.FiltersPushed[i] = res.FiltersPushed[i] && pushed[i]
		}
	}
	// Drop syntactically identical arms (saturated mappings derive the
	// same assertion through several subsumption paths).
	seenArm := make(map[string]bool, len(arms))
	uniq := arms[:0]
	for _, a := range arms {
		k := a.String()
		if seenArm[k] {
			continue
		}
		seenArm[k] = true
		uniq = append(uniq, a)
	}
	arms = uniq
	if cons != nil && len(arms) > 1 {
		arms = subsumeArms(arms, &res.SubsumedArms)
	}
	res.Arms = len(arms)
	if len(arms) == 0 {
		return res, nil // provably empty
	}
	for i := 0; i < len(arms)-1; i++ {
		arms[i].Union = arms[i+1]
	}
	arms[0].UnionAll = true
	res.Stmt = arms[0]
	return res, nil
}

// cqStats aggregates the per-CQ unfolding counters.
type cqStats struct {
	pruned         int // walk-time template-compatibility prunes
	selfJoins      int
	staticCands    int // pre-walk statically deleted candidates
	contradictions int // arms deleted for contradictory WHERE conjunctions
}

// unfoldCQ enumerates mapping-assertion combinations for the CQ's atoms and
// compiles each viable combination into one SPJ arm.
func unfoldCQ(cq *rewrite.CQ, mp *r2rml.Mapping, filters []PushFilter, o Opts) (arms []*sqldb.SelectStmt, st cqStats, pushedAll []bool, err error) {
	cons := o.Cons
	pushedAll = make([]bool, len(filters))
	for i := range pushedAll {
		pushedAll[i] = true
	}
	cands := make([][]candidate, len(cq.Atoms))
	for i, atom := range cq.Atoms {
		cands[i] = candidatesFor(atom, mp)
		if len(cands[i]) == 0 {
			return nil, st, pushedAll, nil // some atom has no mapping: CQ is empty
		}
	}
	if o.StaticPrune {
		dropped, empty := pruneCandidatesStatic(cq, cands)
		st.staticCands += dropped
		if empty {
			return nil, st, pushedAll, nil // statically empty CQ
		}
	}
	pick := make([]candidate, len(cq.Atoms))
	var walk func(i int) error
	walk = func(i int) error {
		if i == len(cands) {
			arm, ok, merged, pushed, err := buildArm(cq, pick, filters, cons)
			if err != nil {
				return err
			}
			if !ok {
				st.pruned++
				return nil
			}
			if o.StaticPrune && arm.Where != nil && contradictoryConds(sqldb.Conjuncts(arm.Where)) {
				st.contradictions++
				return nil
			}
			st.selfJoins += merged
			arms = append(arms, arm)
			for fi := range pushedAll {
				pushedAll[fi] = pushedAll[fi] && pushed[fi]
			}
			return nil
		}
		for _, c := range cands[i] {
			// Incremental template-compatibility pruning: reject the
			// candidate as soon as a shared variable cannot unify with an
			// earlier pick (cuts the combinatorial walk exponentially).
			if !compatibleWithPicks(cq, pick[:i], c, i) {
				st.pruned++
				continue
			}
			pick[i] = c
			if err := walk(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(0); err != nil {
		return nil, cqStats{}, pushedAll, err
	}
	return arms, st, pushedAll, nil
}

// termMapsOf lists the (term, map) pairs a candidate contributes for its atom.
func termMapsOf(a rewrite.Atom, c candidate) [][2]interface{} {
	out := [][2]interface{}{{a.S, c.subject}}
	if !c.isClass {
		out = append(out, [2]interface{}{a.O, c.object})
	}
	return out
}

// compatibleWithPicks performs the cheap half of unification between the
// new candidate and all previous picks: shared variables must have
// structurally compatible term maps, and constants must match templates.
func compatibleWithPicks(cq *rewrite.CQ, picked []candidate, c candidate, idx int) bool {
	newPairs := termMapsOf(cq.Atoms[idx], c)
	// constants against the new candidate's own maps
	for _, p := range newPairs {
		t := p[0].(rewrite.Term)
		tm := p[1].(r2rml.TermMap)
		if !t.IsVar() && !constantCompatible(tm, t.Const) {
			return false
		}
	}
	for j, pc := range picked {
		oldPairs := termMapsOf(cq.Atoms[j], pc)
		for _, np := range newPairs {
			nt := np[0].(rewrite.Term)
			if !nt.IsVar() {
				continue
			}
			ntm := np[1].(r2rml.TermMap)
			for _, op := range oldPairs {
				ot := op[0].(rewrite.Term)
				if !ot.IsVar() || ot.Var != nt.Var {
					continue
				}
				otm := op[1].(r2rml.TermMap)
				if !mapsCompatible(ntm, otm) {
					return false
				}
			}
		}
	}
	return true
}

func constantCompatible(tm r2rml.TermMap, c rdf.Term) bool {
	switch tm.Kind {
	case r2rml.ConstantTerm:
		return tm.Constant == c
	case r2rml.IRITemplate:
		if !c.IsIRI() {
			return false
		}
		_, ok := tm.Template.Match(c.Value)
		return ok
	case r2rml.LiteralTemplate:
		if !c.IsLiteral() {
			return false
		}
		_, ok := tm.Template.Match(c.Value)
		return ok
	default:
		return c.IsLiteral()
	}
}

// mapsCompatible is the conservative structural check used during the
// candidate walk; the full unification in buildArm remains authoritative.
// The implementation is shared with the static analyzer (r2rml).
func mapsCompatible(a, b r2rml.TermMap) bool {
	return r2rml.TermMapsCompatible(a, b)
}

func candidatesFor(atom rewrite.Atom, mp *r2rml.Mapping) []candidate {
	var out []candidate
	for _, m := range mp.Maps {
		if atom.Kind == rewrite.ClassAtom {
			for _, c := range m.Classes {
				if c == atom.Pred {
					out = append(out, candidate{m: m, subject: m.Subject, isClass: true})
				}
			}
			continue
		}
		for _, po := range m.POs {
			if po.Predicate == atom.Pred {
				out = append(out, candidate{m: m, subject: m.Subject, object: po.Object})
			}
		}
	}
	return out
}

// occurrence locates a term map instance within an arm.
type occurrence struct {
	alias string
	tm    r2rml.TermMap
}

// mergeShape describes a candidate's logical source when it reduces to a
// single (optionally filtered) base table exposing columns under their own
// names — the precondition for key-based self-join elimination and
// catalog-driven NOT NULL guard elision.
type mergeShape struct {
	ok    bool
	table string
	where sqldb.Expr // the source's WHERE clause, possibly nil
}

func shapeForMerge(m *r2rml.TriplesMap) mergeShape {
	if m.SQL == "" {
		if m.Table == "" {
			return mergeShape{}
		}
		return mergeShape{ok: true, table: m.Table}
	}
	stmt, err := m.LogicalSQL()
	if err != nil || stmt.Union != nil || stmt.Distinct || len(stmt.GroupBy) > 0 ||
		stmt.Having != nil || stmt.Limit >= 0 || stmt.Offset > 0 ||
		len(stmt.OrderBy) > 0 || len(stmt.From) != 1 {
		return mergeShape{}
	}
	bt, ok := stmt.From[0].(*sqldb.BaseTable)
	if !ok {
		return mergeShape{}
	}
	for _, it := range stmt.Items {
		if it.Star {
			if it.Table != "" && !strings.EqualFold(it.Table, bt.Name) &&
				!strings.EqualFold(it.Table, bt.Alias) {
				return mergeShape{}
			}
			continue
		}
		c, okc := it.Expr.(*sqldb.ColRef)
		if !okc || (it.Alias != "" && !strings.EqualFold(it.Alias, c.Name)) {
			return mergeShape{}
		}
	}
	return mergeShape{ok: true, table: bt.Name, where: stmt.Where}
}

// buildArm compiles one combination of mapping assertions into an SPJ
// SELECT. ok=false means the combination is pruned (template mismatch).
func buildArm(cq *rewrite.CQ, pick []candidate, filters []PushFilter, cons *analyze.Constraints) (stmt *sqldb.SelectStmt, ok bool, selfJoins int, pushed []bool, err error) {
	pushed = make([]bool, len(filters))
	// Self-join elimination: group atoms by (source, subject var, subject
	// template); each group shares one alias. With constraints, candidates
	// whose sources reduce to the same base table additionally merge
	// across *different* mapping assertions whenever the shared subject
	// template covers a PK/UNIQUE key of that table — equal key values
	// denote the same row (a virtual functional dependency), so one table
	// instance suffices and the sources' WHERE clauses hoist into the arm.
	type groupKey struct {
		source  string
		subject string // subject term rendering (var name or constant)
		tmpl    string
	}
	aliasOf := make([]string, len(pick))
	groups := make(map[groupKey]string)
	aliasSeq := 0
	var fromItems []sqldb.TableRef
	var conds []sqldb.Expr
	aliasTable := make(map[string]string) // alias -> base table (guard elision)
	seenHoist := make(map[string]bool)    // dedup hoisted source conditions
	newAlias := func(c candidate) (string, error) {
		aliasSeq++
		alias := fmt.Sprintf("t%d", aliasSeq)
		if c.m.SQL != "" {
			sub, err := c.m.LogicalSQL()
			if err != nil {
				return "", err
			}
			fromItems = append(fromItems, &sqldb.SubqueryTable{Query: cloneStmt(sub), Alias: alias})
		} else {
			fromItems = append(fromItems, &sqldb.BaseTable{Name: c.m.Table, Alias: alias})
		}
		return alias, nil
	}
	for i, c := range pick {
		var sh mergeShape
		if cons != nil {
			sh = shapeForMerge(c.m)
		}
		keyMerge := sh.ok && len(c.subject.Columns()) > 0 &&
			cons.KeyCoveredBy(sh.table, c.subject.Columns())
		key := groupKey{
			source:  c.m.SourceDescription(),
			subject: cq.Atoms[i].S.String(),
			tmpl:    c.subject.String(),
		}
		if keyMerge {
			key.source = "\x00table:" + strings.ToLower(sh.table)
		}
		alias, found := groups[key]
		if found && (keyMerge || cq.Atoms[i].S.IsVar()) {
			aliasOf[i] = alias
			selfJoins++
		} else {
			if keyMerge {
				// Flatten to a plain base table; source filters hoist below.
				aliasSeq++
				alias = fmt.Sprintf("t%d", aliasSeq)
				fromItems = append(fromItems, &sqldb.BaseTable{Name: sh.table, Alias: alias})
			} else if alias, err = newAlias(c); err != nil {
				return nil, false, 0, pushed, err
			}
			groups[key] = alias
			aliasOf[i] = alias
		}
		if sh.ok {
			aliasTable[alias] = sh.table
		}
		if keyMerge && sh.where != nil {
			for _, cj := range sqldb.Conjuncts(sh.where) {
				q := sqldb.QualifyColumns(cj, alias)
				k := alias + "\x00" + q.String()
				if !seenHoist[k] {
					seenHoist[k] = true
					conds = append(conds, q)
				}
			}
		}
	}

	// Collect per-variable occurrences and constant conditions.
	varOccs := make(map[string][]occurrence)
	addOcc := func(t rewrite.Term, alias string, tm r2rml.TermMap) bool {
		if t.IsVar() {
			varOccs[t.Var] = append(varOccs[t.Var], occurrence{alias, tm})
			return true
		}
		cs, okc := constantConditions(alias, tm, t.Const)
		if !okc {
			return false
		}
		conds = append(conds, cs...)
		return true
	}
	for i, c := range pick {
		if !addOcc(cq.Atoms[i].S, aliasOf[i], c.subject) {
			return nil, false, 0, pushed, nil
		}
		if !c.isClass {
			if !addOcc(cq.Atoms[i].O, aliasOf[i], c.object) {
				return nil, false, 0, pushed, nil
			}
		}
	}
	// Join conditions between occurrences of the same variable
	// (deterministic variable order keeps emitted SQL stable).
	varNames := make([]string, 0, len(varOccs))
	for v := range varOccs {
		varNames = append(varNames, v)
	}
	sort.Strings(varNames)
	for _, v := range varNames {
		occs := varOccs[v]
		rep := occs[0]
		for _, o := range occs[1:] {
			cs, okj := unifyOccurrences(rep, o)
			if !okj {
				return nil, false, 0, pushed, nil
			}
			conds = append(conds, cs...)
		}
	}
	// NOT NULL guards for every column feeding an answer variable or a
	// join/constant condition (R2RML: NULL generates no term).
	seenNN := map[string]bool{}
	addNotNull := func(alias string, tm r2rml.TermMap) {
		for _, col := range tm.Columns() {
			if t, known := aliasTable[alias]; known && cons.IsNotNull(t, col) {
				continue // catalog says NOT NULL: guard is redundant
			}
			k := alias + "." + col
			if seenNN[k] {
				continue
			}
			seenNN[k] = true
			conds = append(conds, &sqldb.IsNullExpr{
				E:      &sqldb.ColRef{Table: alias, Name: col},
				Negate: true,
			})
		}
	}
	for i, c := range pick {
		addNotNull(aliasOf[i], c.subject)
		if !c.isClass {
			addNotNull(aliasOf[i], c.object)
		}
	}

	// Pushed filters: translate against the variable's representative
	// occurrence when it is a literal column; skip otherwise (the engine
	// re-checks filters on the translated results anyway).
	for fi, f := range filters {
		occs := varOccs[f.Var]
		if len(occs) == 0 {
			continue
		}
		if cond, okf := filterCondition(occs[0], f); okf {
			conds = append(conds, cond)
			pushed[fi] = true
		}
	}

	// Projection: three columns per answer variable.
	stmt = sqldb.NewSelect()
	for _, v := range cq.Answer {
		occs := varOccs[v]
		if len(occs) == 0 {
			// variable not bound by this arm: output NULLs
			stmt.Items = append(stmt.Items,
				sqldb.SelectItem{Expr: &sqldb.Lit{Val: sqldb.Null}, Alias: "v_" + v},
				sqldb.SelectItem{Expr: &sqldb.Lit{Val: sqldb.NewInt(TagLiteral)}, Alias: "v_" + v + "_t"},
				sqldb.SelectItem{Expr: &sqldb.Lit{Val: sqldb.NewString("")}, Alias: "v_" + v + "_dt"})
			continue
		}
		lex, tag, dt := projectTermMap(occs[0])
		stmt.Items = append(stmt.Items,
			sqldb.SelectItem{Expr: lex, Alias: "v_" + v},
			sqldb.SelectItem{Expr: &sqldb.Lit{Val: sqldb.NewInt(int64(tag))}, Alias: "v_" + v + "_t"},
			sqldb.SelectItem{Expr: &sqldb.Lit{Val: sqldb.NewString(dt)}, Alias: "v_" + v + "_dt"})
	}
	stmt.From = fromItems
	var where sqldb.Expr
	for _, c := range conds {
		if where == nil {
			where = c
		} else {
			where = &sqldb.BinOp{Op: sqldb.OpAnd, L: where, R: c}
		}
	}
	stmt.Where = where
	return stmt, true, selfJoins, pushed, nil
}

// projectTermMap builds the lexical-form SQL expression plus tag/datatype
// for a term map occurrence.
func projectTermMap(o occurrence) (lex sqldb.Expr, tag int, datatype string) {
	switch o.tm.Kind {
	case r2rml.ConstantTerm:
		t := o.tm.Constant
		switch {
		case t.IsIRI():
			return &sqldb.Lit{Val: sqldb.NewString(t.Value)}, TagIRI, ""
		case t.Datatype != "":
			return &sqldb.Lit{Val: sqldb.NewString(t.Value)}, TagTyped, t.Datatype
		default:
			return &sqldb.Lit{Val: sqldb.NewString(t.Value)}, TagLiteral, ""
		}
	case r2rml.IRITemplate:
		return concatTemplate(o.alias, o.tm.Template), TagIRI, ""
	case r2rml.LiteralTemplate:
		return concatTemplate(o.alias, o.tm.Template), TagTyped, o.tm.Datatype
	default: // LiteralColumn
		return &sqldb.ColRef{Table: o.alias, Name: o.tm.Column}, TagTyped, o.tm.Datatype
	}
}

// concatTemplate renders template expansion as SQL string concatenation.
func concatTemplate(alias string, t *r2rml.Template) sqldb.Expr {
	var out sqldb.Expr
	add := func(e sqldb.Expr) {
		if out == nil {
			out = e
			return
		}
		out = &sqldb.BinOp{Op: sqldb.OpConcat, L: out, R: e}
	}
	parts, cols := t.Skeleton()
	for i, p := range parts {
		if p != "" {
			add(&sqldb.Lit{Val: sqldb.NewString(p)})
		}
		if i < len(cols) {
			add(&sqldb.ColRef{Table: alias, Name: cols[i]})
		}
	}
	if out == nil {
		out = &sqldb.Lit{Val: sqldb.NewString("")}
	}
	return out
}

// constantConditions unifies a term map with a constant query term,
// producing column equality conditions; ok=false prunes the arm.
func constantConditions(alias string, tm r2rml.TermMap, c rdf.Term) ([]sqldb.Expr, bool) {
	switch tm.Kind {
	case r2rml.ConstantTerm:
		return nil, tm.Constant == c
	case r2rml.IRITemplate:
		if !c.IsIRI() {
			return nil, false
		}
		return templateConditions(alias, tm.Template, c.Value)
	case r2rml.LiteralTemplate:
		if !c.IsLiteral() {
			return nil, false
		}
		return templateConditions(alias, tm.Template, c.Value)
	default: // LiteralColumn
		if !c.IsLiteral() {
			return nil, false
		}
		return []sqldb.Expr{&sqldb.BinOp{
			Op: sqldb.OpEq,
			L:  &sqldb.ColRef{Table: alias, Name: tm.Column},
			R:  &sqldb.Lit{Val: literalValue(c)},
		}}, true
	}
}

// templateConditions unifies a template with a concrete string, producing
// deterministic per-column equality conditions (placeholder order).
func templateConditions(alias string, tmpl *r2rml.Template, s string) ([]sqldb.Expr, bool) {
	vals, ok := tmpl.Match(s)
	if !ok {
		return nil, false
	}
	var conds []sqldb.Expr
	for _, col := range tmpl.Columns {
		v, present := vals[col]
		if !present {
			return nil, false
		}
		conds = append(conds, &sqldb.BinOp{
			Op: sqldb.OpEq,
			L:  &sqldb.ColRef{Table: alias, Name: col},
			R:  &sqldb.Lit{Val: guessValue(v)},
		})
	}
	return conds, true
}

// unifyOccurrences emits join conditions equating two term-map occurrences
// of the same variable; ok=false prunes the arm (template mismatch — the
// headline SQO of the paper's mapping design).
func unifyOccurrences(a, b occurrence) ([]sqldb.Expr, bool) {
	if a.alias == b.alias && a.tm.String() == b.tm.String() {
		return nil, true // same instance: trivially equal
	}
	ak, bk := a.tm.Kind, b.tm.Kind
	// IRI cannot equal literal.
	aIRI := ak == r2rml.IRITemplate || (ak == r2rml.ConstantTerm && a.tm.Constant.IsIRI())
	bIRI := bk == r2rml.IRITemplate || (bk == r2rml.ConstantTerm && b.tm.Constant.IsIRI())
	if aIRI != bIRI {
		return nil, false
	}
	// Constants resolve to constant conditions on the other side.
	if ak == r2rml.ConstantTerm {
		return constantConditions(b.alias, b.tm, a.tm.Constant)
	}
	if bk == r2rml.ConstantTerm {
		return constantConditions(a.alias, a.tm, b.tm.Constant)
	}
	if ak == r2rml.LiteralColumn && bk == r2rml.LiteralColumn {
		return []sqldb.Expr{&sqldb.BinOp{
			Op: sqldb.OpEq,
			L:  &sqldb.ColRef{Table: a.alias, Name: a.tm.Column},
			R:  &sqldb.ColRef{Table: b.alias, Name: b.tm.Column},
		}}, true
	}
	if (ak == r2rml.IRITemplate || ak == r2rml.LiteralTemplate) &&
		(bk == r2rml.IRITemplate || bk == r2rml.LiteralTemplate) {
		ta, tb := a.tm.Template, b.tm.Template
		if !ta.SameStructure(tb) {
			return nil, false
		}
		pa, ca := ta.Skeleton()
		pb, cb := tb.Skeleton()
		if len(ca) == len(cb) && slices.Equal(pa, pb) {
			// identical skeletons: equate columns pairwise
			var conds []sqldb.Expr
			for i := range ca {
				conds = append(conds, &sqldb.BinOp{
					Op: sqldb.OpEq,
					L:  &sqldb.ColRef{Table: a.alias, Name: ca[i]},
					R:  &sqldb.ColRef{Table: b.alias, Name: cb[i]},
				})
			}
			return conds, true
		}
		// fall back to comparing the generated strings
		return []sqldb.Expr{&sqldb.BinOp{
			Op: sqldb.OpEq,
			L:  concatTemplate(a.alias, ta),
			R:  concatTemplate(b.alias, tb),
		}}, true
	}
	// literal column vs literal template: compare strings
	return []sqldb.Expr{&sqldb.BinOp{
		Op: sqldb.OpEq,
		L:  projectLex(a),
		R:  projectLex(b),
	}}, true
}

func projectLex(o occurrence) sqldb.Expr {
	lex, _, _ := projectTermMap(o)
	return lex
}

// filterCondition translates a pushed filter over a literal-column variable
// occurrence into SQL; ok=false when not translatable.
func filterCondition(o occurrence, f PushFilter) (sqldb.Expr, bool) {
	if o.tm.Kind != r2rml.LiteralColumn {
		return nil, false
	}
	var op sqldb.BinOpKind
	switch f.Op {
	case "=":
		op = sqldb.OpEq
	case "!=":
		op = sqldb.OpNe
	case "<":
		op = sqldb.OpLt
	case "<=":
		op = sqldb.OpLe
	case ">":
		op = sqldb.OpGt
	case ">=":
		op = sqldb.OpGe
	default:
		return nil, false
	}
	return &sqldb.BinOp{
		Op: op,
		L:  &sqldb.ColRef{Table: o.alias, Name: o.tm.Column},
		R:  &sqldb.Lit{Val: literalValue(f.Val)},
	}, true
}

// literalValue converts an RDF literal to the SQL value used in pushed
// comparisons.
func literalValue(t rdf.Term) sqldb.Value {
	switch t.Datatype {
	case rdf.XSDInteger:
		if n, err := strconv.ParseInt(t.Value, 10, 64); err == nil {
			return sqldb.NewInt(n)
		}
	case rdf.XSDDecimal, rdf.XSDDouble:
		if f, err := strconv.ParseFloat(t.Value, 64); err == nil {
			return sqldb.NewFloat(f)
		}
	case rdf.XSDDate:
		if v, err := sqldb.ParseDate(t.Value); err == nil {
			return v
		}
	case rdf.XSDBoolean:
		return sqldb.NewBool(t.Value == "true" || t.Value == "1")
	}
	return sqldb.NewString(t.Value)
}

// guessValue types a template-matched string fragment: integers and floats
// are recognized, everything else stays a string.
func guessValue(s string) sqldb.Value {
	if s == "" {
		return sqldb.NewString("")
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return sqldb.NewInt(n)
	}
	if strings.ContainsAny(s, ".eE") {
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return sqldb.NewFloat(f)
		}
	}
	return sqldb.NewString(s)
}

// cloneStmt shallow-copies a parsed SELECT so union arms do not share
// mutable Union links.
func cloneStmt(s *sqldb.SelectStmt) *sqldb.SelectStmt {
	c := *s
	return &c
}

// subsumeArms drops arms provably contained in a surviving arm: identical
// projection and FROM rendering, with WHERE conjuncts a superset of the
// other's (the other arm already returns every row this arm can). Sound
// because every consumer enforces set semantics on the translated
// bindings (dedup at the BGP level, inner DISTINCT for aggregates).
func subsumeArms(arms []*sqldb.SelectStmt, counter *int) []*sqldb.SelectStmt {
	type armInfo struct {
		skel  string
		conjs map[string]bool
	}
	infos := make([]armInfo, len(arms))
	for i, a := range arms {
		c := *a
		c.Where = nil
		c.Union, c.UnionAll = nil, false
		m := make(map[string]bool)
		for _, cj := range sqldb.Conjuncts(a.Where) {
			m[cj.String()] = true
		}
		infos[i] = armInfo{skel: c.String(), conjs: m}
	}
	subset := func(a, b map[string]bool) bool {
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	}
	keep := make([]bool, len(arms))
	for i := range keep {
		keep[i] = true
	}
	for i := range arms {
		for j := range arms {
			if i == j || !keep[j] || infos[i].skel != infos[j].skel {
				continue
			}
			if !subset(infos[j].conjs, infos[i].conjs) {
				continue
			}
			if len(infos[j].conjs) == len(infos[i].conjs) && j > i {
				continue // equal condition sets: keep the earlier arm
			}
			keep[i] = false
			*counter++
			break
		}
	}
	out := arms[:0]
	for i, a := range arms {
		if keep[i] {
			out = append(out, a)
		}
	}
	return out
}
