package unfold

import (
	"testing"

	"npdbench/internal/analyze"
	"npdbench/internal/r2rml"
	"npdbench/internal/rdf"
	"npdbench/internal/rewrite"
	"npdbench/internal/sqldb"
)

// disjointTemplateMapping maps two properties whose object templates can
// never unify (emp/{id} vs prod/{p} fixtures differ).
func disjointTemplateMapping() *r2rml.Mapping {
	return r2rml.MustParseMapping(`
[PrefixDeclaration]
t: http://t/

[MappingDeclaration]
mappingId worksWith
target    t:emp/{id} t:worksWith t:emp/{mate} .
source    SELECT id, mate FROM colleagues

mappingId sells
target    t:emp/{id} t:sells t:prod/{p} .
source    SELECT id, p FROM sells

mappingId likes
target    t:emp/{id} t:likes t:prod/{p} .
source    SELECT id, p FROM likes

mappingId likes2
target    t:emp/{id} t:likes t:emp/{mate} .
source    SELECT id, mate FROM fans
`)
}

func TestStaticPruneArcConsistency(t *testing.T) {
	// ?y is sold (always t:prod/{p}) and likes-linked; the likes2 candidate
	// produces t:emp/{mate} for ?y, which can never unify with any sells
	// candidate — arc consistency deletes it before the walk.
	cq := &rewrite.CQ{
		Atoms: []rewrite.Atom{
			propAtom("sells", vt("x"), vt("y")),
			propAtom("likes", vt("z"), vt("y")),
		},
		Answer: []string{"x", "y"},
	}
	mp := disjointTemplateMapping()
	off, err := UnfoldOpts(rewrite.UCQ{cq}, mp, nil, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	on, err := UnfoldOpts(rewrite.UCQ{cq}, mp, nil, Opts{StaticPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	if on.StaticPrunedCands == 0 {
		t.Fatal("expected statically pruned candidates")
	}
	if off.Arms != on.Arms {
		t.Fatalf("pruning changed the emitted arms: %d vs %d", off.Arms, on.Arms)
	}
	if off.Stmt.String() != on.Stmt.String() {
		t.Fatalf("pruning changed the SQL:\noff: %s\non:  %s", off.Stmt, on.Stmt)
	}
	// The walk-time prune counter shrinks accordingly: the work moved from
	// enumeration to static analysis.
	if on.PrunedArms >= off.PrunedArms {
		t.Fatalf("static pruning did not reduce walk-time pruning: %d vs %d", on.PrunedArms, off.PrunedArms)
	}
}

func TestStaticPruneEmptyCQ(t *testing.T) {
	// ?y both sold (prod template) and worksWith-linked (emp template):
	// every candidate pair is template-disjoint, so the CQ is statically
	// empty and no arm is emitted.
	cq := &rewrite.CQ{
		Atoms: []rewrite.Atom{
			propAtom("sells", vt("x"), vt("y")),
			propAtom("worksWith", vt("z"), vt("y")),
		},
		Answer: []string{"x", "y"},
	}
	un, err := UnfoldOpts(rewrite.UCQ{cq}, disjointTemplateMapping(), nil, Opts{StaticPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	if un.Stmt != nil || un.Arms != 0 {
		t.Fatalf("expected statically empty result, got %d arms", un.Arms)
	}
	if un.StaticPrunedCands == 0 {
		t.Fatal("expected statically pruned candidates")
	}
}

func TestStaticPruneConstantMismatch(t *testing.T) {
	// A constant subject outside the emp/{id} template shape empties the
	// atom's candidate list without entering the walk.
	cq := &rewrite.CQ{
		Atoms:  []rewrite.Atom{propAtom("sells", ct(rdf.NewIRI("http://t/prod/9")), vt("y"))},
		Answer: []string{"y"},
	}
	un, err := UnfoldOpts(rewrite.UCQ{cq}, disjointTemplateMapping(), nil, Opts{StaticPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	if un.Stmt != nil || un.StaticPrunedCands == 0 {
		t.Fatalf("expected constant-mismatch prune, got %d arms, %d pruned",
			un.Arms, un.StaticPrunedCands)
	}
}

func TestContradictoryConds(t *testing.T) {
	col := func(name string) sqldb.Expr { return &sqldb.ColRef{Table: "t1", Name: name} }
	lit := func(v sqldb.Value) sqldb.Expr { return &sqldb.Lit{Val: v} }
	bin := func(op sqldb.BinOpKind, l, r sqldb.Expr) sqldb.Expr { return &sqldb.BinOp{Op: op, L: l, R: r} }
	cases := []struct {
		name  string
		conds []sqldb.Expr
		want  bool
	}{
		{"conflicting equalities", []sqldb.Expr{
			bin(sqldb.OpEq, col("kind"), lit(sqldb.NewString("exploration"))),
			bin(sqldb.OpEq, col("kind"), lit(sqldb.NewString("development"))),
		}, true},
		{"equality vs disequality", []sqldb.Expr{
			bin(sqldb.OpEq, col("kind"), lit(sqldb.NewString("a"))),
			bin(sqldb.OpNe, col("kind"), lit(sqldb.NewString("a"))),
		}, true},
		{"equality outside range", []sqldb.Expr{
			bin(sqldb.OpEq, col("year"), lit(sqldb.NewInt(1990))),
			bin(sqldb.OpGt, col("year"), lit(sqldb.NewInt(2000))),
		}, true},
		{"empty range", []sqldb.Expr{
			bin(sqldb.OpGe, col("year"), lit(sqldb.NewInt(2010))),
			bin(sqldb.OpLe, col("year"), lit(sqldb.NewInt(2000))),
		}, true},
		{"flipped literal side", []sqldb.Expr{
			bin(sqldb.OpGt, lit(sqldb.NewInt(2000)), col("year")), // 2000 > year, i.e. year < 2000
			bin(sqldb.OpGt, col("year"), lit(sqldb.NewInt(2010))),
		}, true},
		{"same equality twice is fine", []sqldb.Expr{
			bin(sqldb.OpEq, col("kind"), lit(sqldb.NewString("a"))),
			bin(sqldb.OpEq, col("kind"), lit(sqldb.NewString("a"))),
		}, false},
		{"different columns do not interact", []sqldb.Expr{
			bin(sqldb.OpEq, col("kind"), lit(sqldb.NewString("a"))),
			bin(sqldb.OpEq, col("name"), lit(sqldb.NewString("b"))),
		}, false},
		{"satisfiable range", []sqldb.Expr{
			bin(sqldb.OpGe, col("year"), lit(sqldb.NewInt(2000))),
			bin(sqldb.OpLe, col("year"), lit(sqldb.NewInt(2010))),
		}, false},
		{"incomparable kinds are skipped", []sqldb.Expr{
			bin(sqldb.OpEq, col("kind"), lit(sqldb.NewString("a"))),
			bin(sqldb.OpEq, col("kind"), lit(sqldb.NewInt(1))),
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := contradictoryConds(tc.conds); got != tc.want {
				t.Fatalf("contradictoryConds = %v, want %v", got, tc.want)
			}
		})
	}
}

// exactPredicateMapping exposes the paper-style pattern where saturation
// hoists fragment filters: one table maps to two classes through disjoint
// WHERE fragments on the same column.
func TestStaticContradictionArm(t *testing.T) {
	mp := r2rml.MustParseMapping(`
[PrefixDeclaration]
t: http://t/

[MappingDeclaration]
mappingId expl
target    t:well/{id} a t:Exploration .
source    SELECT id FROM wellbore WHERE kind = 'exploration'

mappingId dev
target    t:well/{id} a t:Development .
source    SELECT id FROM wellbore WHERE kind = 'development'
`)
	db := sqldb.NewDatabase("t")
	if _, err := db.CreateTable(&sqldb.TableDef{
		Name: "wellbore",
		Columns: []sqldb.Column{
			{Name: "id", Type: sqldb.TInt, NotNull: true},
			{Name: "kind", Type: sqldb.TText, NotNull: true},
		},
		PrimaryKey: []int{0},
	}); err != nil {
		t.Fatal(err)
	}
	cons := analyze.DeriveConstraints(nil, nil, db)
	// Both classes over the same subject: the key-merge hoists the two
	// fragment filters onto one table instance, where kind='exploration'
	// AND kind='development' is a static contradiction.
	cq := &rewrite.CQ{
		Atoms: []rewrite.Atom{
			classAtom("Exploration", vt("x")),
			classAtom("Development", vt("x")),
		},
		Answer: []string{"x"},
	}
	off, err := UnfoldOpts(rewrite.UCQ{cq}, mp, nil, Opts{Cons: cons})
	if err != nil {
		t.Fatal(err)
	}
	on, err := UnfoldOpts(rewrite.UCQ{cq}, mp, nil, Opts{Cons: cons, StaticPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	if on.StaticContradictions == 0 {
		t.Fatal("expected a contradictory arm to be deleted")
	}
	if on.Arms != 0 || on.Stmt != nil {
		t.Fatalf("expected no arms after contradiction pruning, got %d", on.Arms)
	}
	// The unpruned unfolding keeps the contradictory arm (the database
	// would evaluate it to zero rows).
	if off.Arms == 0 {
		t.Fatal("fixture did not produce the contradictory arm")
	}
}
