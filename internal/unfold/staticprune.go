package unfold

import (
	"strings"

	"npdbench/internal/r2rml"
	"npdbench/internal/rewrite"
	"npdbench/internal/sqldb"
)

// Static candidate pruning (the planck payoff inside the unfolder): before
// the combinatorial candidate walk, delete mapping-assertion candidates
// that provably cannot participate in any viable combination. Two sources
// of proof:
//
//   - own-constant incompatibility: the candidate's term map cannot
//     produce the atom's constant term;
//   - arc inconsistency: some other atom shares a variable with this
//     atom, and *every* candidate of that atom has a term map for the
//     shared variable that is provably disjoint from this candidate's
//     (IRI-template skeletons with incompatible literal fixtures, IRI vs
//     literal positions). Since a viable combination must pick one
//     candidate per atom, no combination containing this candidate can
//     unify — exactly the rows the walk would enumerate and discard.
//
// The deletion is sound (the walk's compatibleWithPicks would reject every
// combination involving a deleted candidate) and shrinks the walk's
// candidate product multiplicatively. Iterated to a fixpoint, it also
// detects statically empty CQs (some atom loses all candidates).

// varMaps lists the term maps candidate c contributes for variable v in
// atom a (subject and/or object position).
func varMaps(a rewrite.Atom, c candidate, v string) []r2rml.TermMap {
	var out []r2rml.TermMap
	if a.S.IsVar() && a.S.Var == v {
		out = append(out, c.subject)
	}
	if !c.isClass && a.O.IsVar() && a.O.Var == v {
		out = append(out, c.object)
	}
	return out
}

// candidatesArcCompatible reports whether candidates c (of atom i) and d
// (of atom j) have structurally unifiable term maps for every variable the
// two atoms share.
func candidatesArcCompatible(ai, aj rewrite.Atom, c, d candidate, shared []string) bool {
	for _, v := range shared {
		for _, cm := range varMaps(ai, c, v) {
			for _, dm := range varMaps(aj, d, v) {
				if !mapsCompatible(cm, dm) {
					return false
				}
			}
		}
	}
	return true
}

// sharedVars returns the variables occurring in both atoms.
func sharedVars(a, b rewrite.Atom) []string {
	var out []string
	for _, v := range a.Vars() {
		for _, w := range b.Vars() {
			if v == w {
				out = append(out, v)
				break
			}
		}
	}
	return out
}

// pruneCandidatesStatic runs the static candidate deletion to fixpoint.
// It returns the number of candidates deleted and whether some atom ended
// up with no candidate (the CQ is statically empty).
func pruneCandidatesStatic(cq *rewrite.CQ, cands [][]candidate) (dropped int, empty bool) {
	n := len(cq.Atoms)
	// Own-constant check once up front (cheapest proof).
	for i, atom := range cq.Atoms {
		kept := cands[i][:0]
		for _, c := range cands[i] {
			ok := true
			if !atom.S.IsVar() && !constantCompatible(c.subject, atom.S.Const) {
				ok = false
			}
			if ok && !c.isClass && !atom.O.IsVar() && !constantCompatible(c.object, atom.O.Const) {
				ok = false
			}
			if ok {
				kept = append(kept, c)
			} else {
				dropped++
			}
		}
		cands[i] = kept
		if len(cands[i]) == 0 {
			return dropped, true
		}
	}
	// Arc consistency to fixpoint.
	shared := make([][][]string, n)
	for i := 0; i < n; i++ {
		shared[i] = make([][]string, n)
		for j := 0; j < n; j++ {
			if i != j {
				shared[i][j] = sharedVars(cq.Atoms[i], cq.Atoms[j])
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			kept := cands[i][:0]
			for _, c := range cands[i] {
				supported := true
				for j := 0; j < n && supported; j++ {
					if i == j || len(shared[i][j]) == 0 {
						continue
					}
					anyPartner := false
					for _, d := range cands[j] {
						if candidatesArcCompatible(cq.Atoms[i], cq.Atoms[j], c, d, shared[i][j]) {
							anyPartner = true
							break
						}
					}
					if !anyPartner {
						supported = false
					}
				}
				if supported {
					kept = append(kept, c)
				} else {
					dropped++
					changed = true
				}
			}
			cands[i] = kept
			if len(cands[i]) == 0 {
				return dropped, true
			}
		}
	}
	return dropped, false
}

// contradictoryConds proves that a conjunction of arm conditions is
// unsatisfiable: two equality constraints pinning the same column to
// different constants (hoisted from different fragment views during
// key-based self-join merging), an equality contradicting a disequality,
// or an equality lying outside a range bound on the same column. Only
// comparisons between a column reference and a literal participate; a
// comparison whose values are not mutually comparable is ignored.
func contradictoryConds(conds []sqldb.Expr) bool {
	type colBounds struct {
		eq    *sqldb.Value
		nes   []sqldb.Value
		lo    *sqldb.Value
		loStr bool
		hi    *sqldb.Value
		hiStr bool
	}
	bounds := map[string]*colBounds{}
	at := func(c *sqldb.ColRef) *colBounds {
		k := strings.ToLower(c.Table + "." + c.Name)
		b := bounds[k]
		if b == nil {
			b = &colBounds{}
			bounds[k] = b
		}
		return b
	}
	cmp := func(a, b sqldb.Value) (int, bool) {
		c, err := sqldb.Compare(a, b)
		return c, err == nil
	}
	for _, cond := range conds {
		bo, ok := cond.(*sqldb.BinOp)
		if !ok {
			continue
		}
		col, okc := bo.L.(*sqldb.ColRef)
		lit, okl := bo.R.(*sqldb.Lit)
		op := bo.Op
		if !okc || !okl {
			// literal on the left: flip
			if lit2, okl2 := bo.L.(*sqldb.Lit); okl2 {
				if col2, okc2 := bo.R.(*sqldb.ColRef); okc2 {
					col, lit = col2, lit2
					switch op {
					case sqldb.OpLt:
						op = sqldb.OpGt
					case sqldb.OpLe:
						op = sqldb.OpGe
					case sqldb.OpGt:
						op = sqldb.OpLt
					case sqldb.OpGe:
						op = sqldb.OpLe
					}
					okc, okl = true, true
				}
			}
			if !okc || !okl {
				continue
			}
		}
		if lit.Val.IsNull() {
			continue
		}
		b := at(col)
		v := lit.Val
		switch op {
		case sqldb.OpEq:
			if b.eq != nil {
				if c, comparable := cmp(*b.eq, v); comparable && c != 0 {
					return true
				}
			} else {
				b.eq = &v
			}
		case sqldb.OpNe:
			b.nes = append(b.nes, v)
		case sqldb.OpLt, sqldb.OpLe:
			if b.hi == nil {
				b.hi, b.hiStr = &v, op == sqldb.OpLt
			} else if c, comparable := cmp(v, *b.hi); comparable && (c < 0 || (c == 0 && op == sqldb.OpLt)) {
				b.hi, b.hiStr = &v, op == sqldb.OpLt
			}
		case sqldb.OpGt, sqldb.OpGe:
			if b.lo == nil {
				b.lo, b.loStr = &v, op == sqldb.OpGt
			} else if c, comparable := cmp(v, *b.lo); comparable && (c > 0 || (c == 0 && op == sqldb.OpGt)) {
				b.lo, b.loStr = &v, op == sqldb.OpGt
			}
		}
	}
	for _, b := range bounds {
		if b.eq != nil {
			for _, ne := range b.nes {
				if c, comparable := cmp(*b.eq, ne); comparable && c == 0 {
					return true
				}
			}
			if b.lo != nil {
				if c, comparable := cmp(*b.eq, *b.lo); comparable && (c < 0 || (c == 0 && b.loStr)) {
					return true
				}
			}
			if b.hi != nil {
				if c, comparable := cmp(*b.eq, *b.hi); comparable && (c > 0 || (c == 0 && b.hiStr)) {
					return true
				}
			}
		}
		if b.lo != nil && b.hi != nil {
			if c, comparable := cmp(*b.lo, *b.hi); comparable && (c > 0 || (c == 0 && (b.loStr || b.hiStr))) {
				return true
			}
		}
	}
	return false
}
