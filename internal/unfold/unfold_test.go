package unfold

import (
	"strings"
	"testing"

	"npdbench/internal/r2rml"
	"npdbench/internal/rdf"
	"npdbench/internal/rewrite"
	"npdbench/internal/sqldb"
)

const ns = "http://t/"

func testMapping() *r2rml.Mapping {
	return r2rml.MustParseMapping(`
[PrefixDeclaration]
t: http://t/

[MappingDeclaration]
mappingId emp
target    t:emp/{id} a t:Employee ; t:name {name} .
source    SELECT id, name FROM emp

mappingId sells
target    t:emp/{id} t:sells t:prod/{p} .
source    SELECT id, p FROM sells

mappingId prods
target    t:prod/{p} a t:Product .
source    SELECT p FROM prods
`)
}

func vt(v string) rewrite.Term   { return rewrite.Term{Var: v} }
func ct(t rdf.Term) rewrite.Term { return rewrite.Term{Const: t} }

func classAtom(class string, s rewrite.Term) rewrite.Atom {
	return rewrite.Atom{Kind: rewrite.ClassAtom, Pred: ns + class, S: s}
}

func propAtom(p string, s, o rewrite.Term) rewrite.Atom {
	return rewrite.Atom{Kind: rewrite.ObjPropAtom, Pred: ns + p, S: s, O: o}
}

func dataAtom(p string, s, o rewrite.Term) rewrite.Atom {
	return rewrite.Atom{Kind: rewrite.DataPropAtom, Pred: ns + p, S: s, O: o}
}

func TestUnfoldSingleClassAtom(t *testing.T) {
	cq := &rewrite.CQ{Atoms: []rewrite.Atom{classAtom("Employee", vt("x"))}, Answer: []string{"x"}}
	un, err := Unfold(rewrite.UCQ{cq}, testMapping(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if un.Arms != 1 || un.Stmt == nil {
		t.Fatalf("arms = %d", un.Arms)
	}
	sql := un.Stmt.String()
	if !strings.Contains(sql, "emp") || !strings.Contains(sql, "http://t/emp/") {
		t.Fatalf("SQL: %s", sql)
	}
	// three output columns per answer variable
	if got := len(un.Stmt.Items); got != 3 {
		t.Fatalf("items = %d, want 3", got)
	}
}

func TestUnfoldJoinSharedVariable(t *testing.T) {
	cq := &rewrite.CQ{
		Atoms: []rewrite.Atom{
			propAtom("sells", vt("x"), vt("y")),
			classAtom("Product", vt("y")),
		},
		Answer: []string{"x", "y"},
	}
	un, err := Unfold(rewrite.UCQ{cq}, testMapping(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if un.Arms != 1 {
		t.Fatalf("arms = %d", un.Arms)
	}
	sql := un.Stmt.String()
	// templates share the skeleton prod/{..}: join on columns, not concat
	if !strings.Contains(sql, "t1.p = t2.p") && !strings.Contains(sql, "t2.p = t1.p") {
		t.Fatalf("expected column-level join: %s", sql)
	}
}

func TestUnfoldTemplateMismatchPrunes(t *testing.T) {
	// x sells y, y sells z: y must be both a product IRI and an employee
	// IRI — impossible.
	cq := &rewrite.CQ{
		Atoms: []rewrite.Atom{
			propAtom("sells", vt("x"), vt("y")),
			propAtom("sells", vt("y"), vt("z")),
		},
		Answer: []string{"x", "z"},
	}
	un, err := Unfold(rewrite.UCQ{cq}, testMapping(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if un.Arms != 0 {
		t.Fatalf("arms = %d, want 0 (template mismatch)", un.Arms)
	}
	if un.PrunedArms == 0 {
		t.Fatal("pruning not recorded")
	}
	if un.Stmt != nil {
		t.Fatal("provably empty query must have nil statement")
	}
}

func TestUnfoldConstantUnification(t *testing.T) {
	cq := &rewrite.CQ{
		Atoms: []rewrite.Atom{
			propAtom("sells", ct(rdf.NewIRI(ns+"emp/7")), vt("y")),
		},
		Answer: []string{"y"},
	}
	un, err := Unfold(rewrite.UCQ{cq}, testMapping(), nil)
	if err != nil {
		t.Fatal(err)
	}
	sql := un.Stmt.String()
	if !strings.Contains(sql, "= 7") {
		t.Fatalf("constant must become a column condition: %s", sql)
	}
}

func TestUnfoldConstantMismatchPrunes(t *testing.T) {
	cq := &rewrite.CQ{
		Atoms: []rewrite.Atom{
			propAtom("sells", ct(rdf.NewIRI("http://other/emp/7")), vt("y")),
		},
		Answer: []string{"y"},
	}
	un, err := Unfold(rewrite.UCQ{cq}, testMapping(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if un.Arms != 0 {
		t.Fatalf("arms = %d, want 0", un.Arms)
	}
}

func TestUnfoldSelfJoinElimination(t *testing.T) {
	cq := &rewrite.CQ{
		Atoms: []rewrite.Atom{
			classAtom("Employee", vt("x")),
			dataAtom("name", vt("x"), vt("n")),
		},
		Answer: []string{"x", "n"},
	}
	un, err := Unfold(rewrite.UCQ{cq}, testMapping(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if un.SelfJoinsEliminated != 1 {
		t.Fatalf("self joins eliminated = %d, want 1", un.SelfJoinsEliminated)
	}
	if strings.Contains(un.Stmt.String(), "t2") {
		t.Fatalf("same-source atoms must share one alias: %s", un.Stmt)
	}
}

func TestUnfoldNotNullGuards(t *testing.T) {
	cq := &rewrite.CQ{
		Atoms:  []rewrite.Atom{dataAtom("name", vt("x"), vt("n"))},
		Answer: []string{"x", "n"},
	}
	un, err := Unfold(rewrite.UCQ{cq}, testMapping(), nil)
	if err != nil {
		t.Fatal(err)
	}
	sql := un.Stmt.String()
	if !strings.Contains(sql, "IS NOT NULL") {
		t.Fatalf("R2RML NULL suppression missing: %s", sql)
	}
}

func TestUnfoldPushFilter(t *testing.T) {
	cq := &rewrite.CQ{
		Atoms:  []rewrite.Atom{dataAtom("name", vt("x"), vt("n"))},
		Answer: []string{"x", "n"},
	}
	un, err := Unfold(rewrite.UCQ{cq}, testMapping(), []PushFilter{
		{Var: "n", Op: ">=", Val: rdf.NewLiteral("M")},
	})
	if err != nil {
		t.Fatal(err)
	}
	sql := un.Stmt.String()
	if !strings.Contains(sql, ">= 'M'") {
		t.Fatalf("filter not pushed: %s", sql)
	}
}

func TestUnfoldUnionArms(t *testing.T) {
	// Employee(x) ∪ Product(x) — built as two CQs.
	u := rewrite.UCQ{
		{Atoms: []rewrite.Atom{classAtom("Employee", vt("x"))}, Answer: []string{"x"}},
		{Atoms: []rewrite.Atom{classAtom("Product", vt("x"))}, Answer: []string{"x"}},
	}
	un, err := Unfold(u, testMapping(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if un.Arms != 2 {
		t.Fatalf("arms = %d, want 2", un.Arms)
	}
	if m := un.Metrics(); m.Unions != 1 {
		t.Fatalf("metrics %+v", m)
	}
}

func TestUnfoldEndToEndExecution(t *testing.T) {
	db := sqldb.NewDatabase("t")
	mustCreate := func(def *sqldb.TableDef) {
		if _, err := db.CreateTable(def); err != nil {
			t.Fatal(err)
		}
	}
	mustCreate(&sqldb.TableDef{Name: "emp", Columns: []sqldb.Column{
		{Name: "id", Type: sqldb.TInt, NotNull: true}, {Name: "name", Type: sqldb.TText}},
		PrimaryKey: []int{0}})
	mustCreate(&sqldb.TableDef{Name: "sells", Columns: []sqldb.Column{
		{Name: "id", Type: sqldb.TInt, NotNull: true}, {Name: "p", Type: sqldb.TText, NotNull: true}},
		PrimaryKey: []int{0, 1}})
	mustCreate(&sqldb.TableDef{Name: "prods", Columns: []sqldb.Column{
		{Name: "p", Type: sqldb.TText, NotNull: true}}, PrimaryKey: []int{0}})
	for _, r := range []sqldb.Row{{sqldb.NewInt(1), sqldb.NewString("A")}, {sqldb.NewInt(2), sqldb.NewString("B")}} {
		if err := db.Insert("emp", r); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Insert("prods", sqldb.Row{sqldb.NewString("x")}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("sells", sqldb.Row{sqldb.NewInt(1), sqldb.NewString("x")}); err != nil {
		t.Fatal(err)
	}
	cq := &rewrite.CQ{
		Atoms: []rewrite.Atom{
			propAtom("sells", vt("e"), vt("p")),
			classAtom("Product", vt("p")),
			dataAtom("name", vt("e"), vt("n")),
		},
		Answer: []string{"n", "p"},
	}
	un, err := Unfold(rewrite.UCQ{cq}, testMapping(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.ExecSelect(un.Stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].S != "A" {
		t.Fatalf("row %v", res.Rows[0])
	}
	// the IRI column carries the full lexical form
	if res.Rows[0][3].S != ns+"prod/x" {
		t.Fatalf("IRI lexical form: %v", res.Rows[0][3])
	}
}

func TestUnfoldEmptyUCQ(t *testing.T) {
	if _, err := Unfold(nil, testMapping(), nil); err == nil {
		t.Fatal("empty UCQ must error")
	}
}
