package unfold

import (
	"strings"
	"testing"

	"npdbench/internal/analyze"
	"npdbench/internal/r2rml"
	"npdbench/internal/rdf"
	"npdbench/internal/rewrite"
	"npdbench/internal/sqldb"
)

const ns = "http://t/"

func testMapping() *r2rml.Mapping {
	return r2rml.MustParseMapping(`
[PrefixDeclaration]
t: http://t/

[MappingDeclaration]
mappingId emp
target    t:emp/{id} a t:Employee ; t:name {name} .
source    SELECT id, name FROM emp

mappingId sells
target    t:emp/{id} t:sells t:prod/{p} .
source    SELECT id, p FROM sells

mappingId prods
target    t:prod/{p} a t:Product .
source    SELECT p FROM prods
`)
}

func vt(v string) rewrite.Term   { return rewrite.Term{Var: v} }
func ct(t rdf.Term) rewrite.Term { return rewrite.Term{Const: t} }

func classAtom(class string, s rewrite.Term) rewrite.Atom {
	return rewrite.Atom{Kind: rewrite.ClassAtom, Pred: ns + class, S: s}
}

func propAtom(p string, s, o rewrite.Term) rewrite.Atom {
	return rewrite.Atom{Kind: rewrite.ObjPropAtom, Pred: ns + p, S: s, O: o}
}

func dataAtom(p string, s, o rewrite.Term) rewrite.Atom {
	return rewrite.Atom{Kind: rewrite.DataPropAtom, Pred: ns + p, S: s, O: o}
}

func TestUnfoldSingleClassAtom(t *testing.T) {
	cq := &rewrite.CQ{Atoms: []rewrite.Atom{classAtom("Employee", vt("x"))}, Answer: []string{"x"}}
	un, err := Unfold(rewrite.UCQ{cq}, testMapping(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if un.Arms != 1 || un.Stmt == nil {
		t.Fatalf("arms = %d", un.Arms)
	}
	sql := un.Stmt.String()
	if !strings.Contains(sql, "emp") || !strings.Contains(sql, "http://t/emp/") {
		t.Fatalf("SQL: %s", sql)
	}
	// three output columns per answer variable
	if got := len(un.Stmt.Items); got != 3 {
		t.Fatalf("items = %d, want 3", got)
	}
}

func TestUnfoldJoinSharedVariable(t *testing.T) {
	cq := &rewrite.CQ{
		Atoms: []rewrite.Atom{
			propAtom("sells", vt("x"), vt("y")),
			classAtom("Product", vt("y")),
		},
		Answer: []string{"x", "y"},
	}
	un, err := Unfold(rewrite.UCQ{cq}, testMapping(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if un.Arms != 1 {
		t.Fatalf("arms = %d", un.Arms)
	}
	sql := un.Stmt.String()
	// templates share the skeleton prod/{..}: join on columns, not concat
	if !strings.Contains(sql, "t1.p = t2.p") && !strings.Contains(sql, "t2.p = t1.p") {
		t.Fatalf("expected column-level join: %s", sql)
	}
}

func TestUnfoldTemplateMismatchPrunes(t *testing.T) {
	// x sells y, y sells z: y must be both a product IRI and an employee
	// IRI — impossible.
	cq := &rewrite.CQ{
		Atoms: []rewrite.Atom{
			propAtom("sells", vt("x"), vt("y")),
			propAtom("sells", vt("y"), vt("z")),
		},
		Answer: []string{"x", "z"},
	}
	un, err := Unfold(rewrite.UCQ{cq}, testMapping(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if un.Arms != 0 {
		t.Fatalf("arms = %d, want 0 (template mismatch)", un.Arms)
	}
	if un.PrunedArms == 0 {
		t.Fatal("pruning not recorded")
	}
	if un.Stmt != nil {
		t.Fatal("provably empty query must have nil statement")
	}
}

func TestUnfoldConstantUnification(t *testing.T) {
	cq := &rewrite.CQ{
		Atoms: []rewrite.Atom{
			propAtom("sells", ct(rdf.NewIRI(ns+"emp/7")), vt("y")),
		},
		Answer: []string{"y"},
	}
	un, err := Unfold(rewrite.UCQ{cq}, testMapping(), nil)
	if err != nil {
		t.Fatal(err)
	}
	sql := un.Stmt.String()
	if !strings.Contains(sql, "= 7") {
		t.Fatalf("constant must become a column condition: %s", sql)
	}
}

func TestUnfoldConstantMismatchPrunes(t *testing.T) {
	cq := &rewrite.CQ{
		Atoms: []rewrite.Atom{
			propAtom("sells", ct(rdf.NewIRI("http://other/emp/7")), vt("y")),
		},
		Answer: []string{"y"},
	}
	un, err := Unfold(rewrite.UCQ{cq}, testMapping(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if un.Arms != 0 {
		t.Fatalf("arms = %d, want 0", un.Arms)
	}
}

func TestUnfoldSelfJoinElimination(t *testing.T) {
	cq := &rewrite.CQ{
		Atoms: []rewrite.Atom{
			classAtom("Employee", vt("x")),
			dataAtom("name", vt("x"), vt("n")),
		},
		Answer: []string{"x", "n"},
	}
	un, err := Unfold(rewrite.UCQ{cq}, testMapping(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if un.SelfJoinsEliminated != 1 {
		t.Fatalf("self joins eliminated = %d, want 1", un.SelfJoinsEliminated)
	}
	if strings.Contains(un.Stmt.String(), "t2") {
		t.Fatalf("same-source atoms must share one alias: %s", un.Stmt)
	}
}

func TestUnfoldNotNullGuards(t *testing.T) {
	cq := &rewrite.CQ{
		Atoms:  []rewrite.Atom{dataAtom("name", vt("x"), vt("n"))},
		Answer: []string{"x", "n"},
	}
	un, err := Unfold(rewrite.UCQ{cq}, testMapping(), nil)
	if err != nil {
		t.Fatal(err)
	}
	sql := un.Stmt.String()
	if !strings.Contains(sql, "IS NOT NULL") {
		t.Fatalf("R2RML NULL suppression missing: %s", sql)
	}
}

func TestUnfoldPushFilter(t *testing.T) {
	cq := &rewrite.CQ{
		Atoms:  []rewrite.Atom{dataAtom("name", vt("x"), vt("n"))},
		Answer: []string{"x", "n"},
	}
	un, err := Unfold(rewrite.UCQ{cq}, testMapping(), []PushFilter{
		{Var: "n", Op: ">=", Val: rdf.NewLiteral("M")},
	})
	if err != nil {
		t.Fatal(err)
	}
	sql := un.Stmt.String()
	if !strings.Contains(sql, ">= 'M'") {
		t.Fatalf("filter not pushed: %s", sql)
	}
}

func TestUnfoldUnionArms(t *testing.T) {
	// Employee(x) ∪ Product(x) — built as two CQs.
	u := rewrite.UCQ{
		{Atoms: []rewrite.Atom{classAtom("Employee", vt("x"))}, Answer: []string{"x"}},
		{Atoms: []rewrite.Atom{classAtom("Product", vt("x"))}, Answer: []string{"x"}},
	}
	un, err := Unfold(u, testMapping(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if un.Arms != 2 {
		t.Fatalf("arms = %d, want 2", un.Arms)
	}
	if m := un.Metrics(); m.Unions != 1 {
		t.Fatalf("metrics %+v", m)
	}
}

func TestUnfoldEndToEndExecution(t *testing.T) {
	db := sqldb.NewDatabase("t")
	mustCreate := func(def *sqldb.TableDef) {
		if _, err := db.CreateTable(def); err != nil {
			t.Fatal(err)
		}
	}
	mustCreate(&sqldb.TableDef{Name: "emp", Columns: []sqldb.Column{
		{Name: "id", Type: sqldb.TInt, NotNull: true}, {Name: "name", Type: sqldb.TText}},
		PrimaryKey: []int{0}})
	mustCreate(&sqldb.TableDef{Name: "sells", Columns: []sqldb.Column{
		{Name: "id", Type: sqldb.TInt, NotNull: true}, {Name: "p", Type: sqldb.TText, NotNull: true}},
		PrimaryKey: []int{0, 1}})
	mustCreate(&sqldb.TableDef{Name: "prods", Columns: []sqldb.Column{
		{Name: "p", Type: sqldb.TText, NotNull: true}}, PrimaryKey: []int{0}})
	for _, r := range []sqldb.Row{{sqldb.NewInt(1), sqldb.NewString("A")}, {sqldb.NewInt(2), sqldb.NewString("B")}} {
		if err := db.Insert("emp", r); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Insert("prods", sqldb.Row{sqldb.NewString("x")}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("sells", sqldb.Row{sqldb.NewInt(1), sqldb.NewString("x")}); err != nil {
		t.Fatal(err)
	}
	cq := &rewrite.CQ{
		Atoms: []rewrite.Atom{
			propAtom("sells", vt("e"), vt("p")),
			classAtom("Product", vt("p")),
			dataAtom("name", vt("e"), vt("n")),
		},
		Answer: []string{"n", "p"},
	}
	un, err := Unfold(rewrite.UCQ{cq}, testMapping(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.ExecSelect(un.Stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].S != "A" {
		t.Fatalf("row %v", res.Rows[0])
	}
	// the IRI column carries the full lexical form
	if res.Rows[0][3].S != ns+"prod/x" {
		t.Fatalf("IRI lexical form: %v", res.Rows[0][3])
	}
}

func TestUnfoldEmptyUCQ(t *testing.T) {
	if _, err := Unfold(nil, testMapping(), nil); err == nil {
		t.Fatal("empty UCQ must error")
	}
}

// ---- pruning edge cases and constraint-driven SQO ----

func TestUnfoldConstantSubjectWithPicks(t *testing.T) {
	// A constant in subject position must unify with the candidate's
	// subject template directly and stay consistent across the picks for
	// the other atoms sharing it.
	iri := ct(rdf.NewIRI(ns + "emp/7"))
	cq := &rewrite.CQ{
		Atoms: []rewrite.Atom{
			classAtom("Employee", iri),
			dataAtom("name", iri, vt("n")),
		},
		Answer: []string{"n"},
	}
	un, err := Unfold(rewrite.UCQ{cq}, testMapping(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if un.Arms != 1 {
		t.Fatalf("arms = %d, want 1", un.Arms)
	}
	if sql := un.Stmt.String(); !strings.Contains(sql, "= 7") {
		t.Fatalf("constant subject must bind the template column: %s", sql)
	}

	// The same shape with a subject from a foreign template prunes every
	// combination before any SQL is built.
	bad := ct(rdf.NewIRI(ns + "prod/7"))
	cq2 := &rewrite.CQ{
		Atoms: []rewrite.Atom{
			classAtom("Employee", bad),
			dataAtom("name", bad, vt("n")),
		},
		Answer: []string{"n"},
	}
	un2, err := Unfold(rewrite.UCQ{cq2}, testMapping(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if un2.Arms != 0 || un2.PrunedArms == 0 {
		t.Fatalf("arms = %d, pruned = %d; want 0 arms and pruning recorded",
			un2.Arms, un2.PrunedArms)
	}
}

func TestMapsCompatibleSeparatorLiterals(t *testing.T) {
	// Templates that differ only in an interior separator are NOT provably
	// disjoint: {a}/{b} with a="x-y", b="z" collides with {a}-{b} at
	// a="x", b="y/z" is impossible, but a="x", b="y" vs a="x-y" … the
	// placeholders can absorb the separators, so pruning here would be
	// unsound.
	a := r2rml.IRIMap("http://t/w/{a}/{b}")
	b := r2rml.IRIMap("http://t/w/{a}-{b}")
	if !mapsCompatible(a, b) {
		t.Error("interior separator difference must not prove disjointness")
	}
	// Literal prefixes that diverge DO prove disjointness.
	c := r2rml.IRIMap("http://t/x/{a}/{b}")
	if mapsCompatible(a, c) {
		t.Error("diverging literal prefixes are disjoint")
	}
	// …and so do diverging literal suffixes.
	d := r2rml.IRIMap("http://t/w/{a}/{b}/tail")
	e := r2rml.IRIMap("http://t/w/{a}/{b}/liat")
	if mapsCompatible(d, e) {
		t.Error("diverging literal suffixes are disjoint")
	}
}

// splitMapping mimics the NPD dataPropsSplit style: one narrow SELECT per
// data property over the same base table, plus a guarded variant.
func splitMapping() *r2rml.Mapping {
	return r2rml.MustParseMapping(`
[PrefixDeclaration]
t: http://t/

[MappingDeclaration]
mappingId emp-name
target    t:emp/{id} t:name {name} .
source    SELECT id, name FROM emp

mappingId emp-age
target    t:emp/{id} t:age {age} .
source    SELECT id, age FROM emp

mappingId emp-senior
target    t:emp/{id} t:senior {name} .
source    SELECT id, name FROM emp WHERE age > 30
`)
}

func splitConstraints(t *testing.T) *analyze.Constraints {
	t.Helper()
	db := sqldb.NewDatabase("t")
	if _, err := db.CreateTable(&sqldb.TableDef{Name: "emp", Columns: []sqldb.Column{
		{Name: "id", Type: sqldb.TInt, NotNull: true},
		{Name: "name", Type: sqldb.TText},
		{Name: "age", Type: sqldb.TInt},
	}, PrimaryKey: []int{0}}); err != nil {
		t.Fatal(err)
	}
	return analyze.DeriveConstraints(nil, nil, db)
}

func TestUnfoldWithConstraintsMergesSplitMappings(t *testing.T) {
	// name(x,n) ∧ age(x,a): the two picks come from different mappings, so
	// syntactic source-equality never merges them. The subject template
	// covers emp's primary key, so under the key constraint both table
	// instances denote the same row and collapse to one.
	cq := &rewrite.CQ{
		Atoms: []rewrite.Atom{
			dataAtom("name", vt("x"), vt("n")),
			dataAtom("age", vt("x"), vt("a")),
		},
		Answer: []string{"x", "n", "a"},
	}
	base, err := Unfold(rewrite.UCQ{cq}, splitMapping(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if base.SelfJoinsEliminated != 0 {
		t.Fatalf("baseline should not merge: %d", base.SelfJoinsEliminated)
	}

	opt, err := UnfoldWith(rewrite.UCQ{cq}, splitMapping(), nil, splitConstraints(t))
	if err != nil {
		t.Fatal(err)
	}
	if opt.Arms != 1 || opt.SelfJoinsEliminated != 1 {
		t.Fatalf("arms = %d, selfJoins = %d; want 1 arm with 1 merged instance\n%s",
			opt.Arms, opt.SelfJoinsEliminated, opt.Stmt)
	}
	bm, om := base.Metrics(), opt.Metrics()
	if om.InnerQueries >= bm.InnerQueries {
		t.Fatalf("inner queries not reduced: base %d, constrained %d",
			bm.InnerQueries, om.InnerQueries)
	}
	if strings.Contains(opt.Stmt.String(), "t2") {
		t.Fatalf("merged arm must use a single table instance: %s", opt.Stmt)
	}
}

func TestUnfoldWithConstraintsSubsumesArms(t *testing.T) {
	// name(x,n) ∪ senior(x,n): the senior arm adds age > 30 over the same
	// flattened shape, so its rows are a subset of the name arm's and the
	// engine's set semantics make the union arm redundant.
	u := rewrite.UCQ{
		{Atoms: []rewrite.Atom{dataAtom("name", vt("x"), vt("n"))}, Answer: []string{"x", "n"}},
		{Atoms: []rewrite.Atom{dataAtom("senior", vt("x"), vt("n"))}, Answer: []string{"x", "n"}},
	}
	base, err := Unfold(u, splitMapping(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if base.Arms != 2 || base.SubsumedArms != 0 {
		t.Fatalf("baseline arms = %d, subsumed = %d", base.Arms, base.SubsumedArms)
	}

	opt, err := UnfoldWith(u, splitMapping(), nil, splitConstraints(t))
	if err != nil {
		t.Fatal(err)
	}
	if opt.Arms != 1 || opt.SubsumedArms != 1 {
		t.Fatalf("arms = %d, subsumed = %d; want the senior arm dropped\n%s",
			opt.Arms, opt.SubsumedArms, opt.Stmt)
	}
	if m := opt.Metrics(); m.Unions != 0 {
		t.Fatalf("union should collapse: %+v", m)
	}
	// The surviving arm must be the unguarded (superset) one.
	if sql := opt.Stmt.String(); strings.Contains(sql, "age") {
		t.Fatalf("kept the narrower arm: %s", sql)
	}
}

func TestUnfoldWithNilConstraintsMatchesUnfold(t *testing.T) {
	cq := &rewrite.CQ{
		Atoms: []rewrite.Atom{
			dataAtom("name", vt("x"), vt("n")),
			dataAtom("age", vt("x"), vt("a")),
		},
		Answer: []string{"x", "n", "a"},
	}
	a, err := Unfold(rewrite.UCQ{cq}, splitMapping(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := UnfoldWith(rewrite.UCQ{cq}, splitMapping(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stmt.String() != b.Stmt.String() {
		t.Fatalf("nil constraints must be a no-op:\n%s\nvs\n%s", a.Stmt, b.Stmt)
	}
}

func TestUnfoldWithConstraintsExecution(t *testing.T) {
	// Semantics check: merged and unmerged plans return the same rows.
	db := sqldb.NewDatabase("t")
	if _, err := db.CreateTable(&sqldb.TableDef{Name: "emp", Columns: []sqldb.Column{
		{Name: "id", Type: sqldb.TInt, NotNull: true},
		{Name: "name", Type: sqldb.TText},
		{Name: "age", Type: sqldb.TInt},
	}, PrimaryKey: []int{0}}); err != nil {
		t.Fatal(err)
	}
	rows := []sqldb.Row{
		{sqldb.NewInt(1), sqldb.NewString("A"), sqldb.NewInt(50)},
		{sqldb.NewInt(2), sqldb.NewString("B"), sqldb.NewInt(20)},
		{sqldb.NewInt(3), sqldb.Null, sqldb.NewInt(40)},
	}
	for _, r := range rows {
		if err := db.Insert("emp", r); err != nil {
			t.Fatal(err)
		}
	}
	cq := &rewrite.CQ{
		Atoms: []rewrite.Atom{
			dataAtom("name", vt("x"), vt("n")),
			dataAtom("age", vt("x"), vt("a")),
		},
		Answer: []string{"x", "n", "a"},
	}
	base, err := Unfold(rewrite.UCQ{cq}, splitMapping(), nil)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := UnfoldWith(rewrite.UCQ{cq}, splitMapping(), nil, analyze.DeriveConstraints(nil, nil, db))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := db.ExecSelect(base.Stmt)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := db.ExecSelect(opt.Stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rb.Rows) != 2 || len(ro.Rows) != len(rb.Rows) {
		t.Fatalf("row counts diverge: base %d, constrained %d", len(rb.Rows), len(ro.Rows))
	}
}
