package sparql

import "npdbench/internal/rdf"

// Clone returns a deep copy of the query: patterns, expressions, and
// modifier lists are all fresh nodes. Engines evaluate queries without
// mutating them, but a caller that shares one parsed query across
// concurrent clients (the mixer does) clones per client so no future
// in-place transform can turn that sharing into a race.
func (q *Query) Clone() *Query {
	if q == nil {
		return nil
	}
	out := &Query{
		Distinct: q.Distinct,
		Star:     q.Star,
		Pattern:  ClonePattern(q.Pattern),
		Having:   CloneExpr(q.Having),
		Limit:    q.Limit,
		Offset:   q.Offset,
	}
	if q.Prefixes != nil {
		out.Prefixes = make(rdf.PrefixMap, len(q.Prefixes))
		for k, v := range q.Prefixes {
			out.Prefixes[k] = v
		}
	}
	if q.Items != nil {
		out.Items = make([]SelectItem, len(q.Items))
		for i, it := range q.Items {
			out.Items[i] = SelectItem{Var: it.Var, Expr: CloneExpr(it.Expr)}
		}
	}
	if q.GroupBy != nil {
		out.GroupBy = append([]string(nil), q.GroupBy...)
	}
	if q.OrderBy != nil {
		out.OrderBy = make([]OrderKey, len(q.OrderBy))
		for i, o := range q.OrderBy {
			out.OrderBy[i] = OrderKey{Expr: CloneExpr(o.Expr), Desc: o.Desc}
		}
	}
	return out
}

// ClonePattern deep-copies a graph pattern tree.
func ClonePattern(p GraphPattern) GraphPattern {
	switch x := p.(type) {
	case nil:
		return nil
	case *BGP:
		return &BGP{Triples: append([]TriplePattern(nil), x.Triples...)}
	case *Group:
		parts := make([]GraphPattern, len(x.Parts))
		for i, part := range x.Parts {
			parts[i] = ClonePattern(part)
		}
		return &Group{Parts: parts}
	case *Filter:
		return &Filter{Inner: ClonePattern(x.Inner), Cond: CloneExpr(x.Cond)}
	case *Optional:
		return &Optional{Left: ClonePattern(x.Left), Right: ClonePattern(x.Right)}
	case *Union:
		return &Union{Left: ClonePattern(x.Left), Right: ClonePattern(x.Right)}
	}
	return p
}

// CloneExpr deep-copies an expression tree (nil-safe).
func CloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *VarExpr:
		return &VarExpr{Name: x.Name}
	case *TermExpr:
		return &TermExpr{Term: x.Term}
	case *BinExpr:
		return &BinExpr{Op: x.Op, L: CloneExpr(x.L), R: CloneExpr(x.R)}
	case *NotExpr:
		return &NotExpr{E: CloneExpr(x.E)}
	case *CallExpr:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = CloneExpr(a)
		}
		return &CallExpr{Name: x.Name, Args: args}
	case *AggExpr:
		return &AggExpr{Name: x.Name, Arg: CloneExpr(x.Arg), Distinct: x.Distinct, Star: x.Star}
	}
	return e
}
