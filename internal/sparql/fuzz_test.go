package sparql

import (
	"testing"

	"npdbench/internal/rdf"
)

// FuzzParse drives the SPARQL lexer and parser with arbitrary input. The
// seed corpus covers the syntactic features the 21 NPD benchmark queries
// exercise: prefixed names, full IRIs, literals with datatypes, FILTER
// expressions, OPTIONAL/UNION nesting, aggregation, and solution
// modifiers. The property under test is total behaviour: Parse must
// return a value or an error, never panic, and a successfully parsed
// query must render (String) and re-parse without panicking either.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`SELECT ?x WHERE { ?x a <http://example.org/Wellbore> }`,
		`PREFIX npdv: <http://npd#> SELECT ?w WHERE { ?w a npdv:Wellbore }`,
		`SELECT DISTINCT ?n WHERE { ?x npdv:name ?n . ?x a npdv:Field }`,
		`SELECT ?x ?y WHERE { ?x npdv:p ?y FILTER (?y > 10) }`,
		`SELECT ?x WHERE { ?x npdv:name "A" . FILTER (?x != "B" && ?x < "C") }`,
		`SELECT ?x WHERE { { ?x a npdv:A } UNION { ?x a npdv:B } }`,
		`SELECT ?x ?n WHERE { ?x a npdv:A OPTIONAL { ?x npdv:name ?n } }`,
		`SELECT ?x (COUNT(?y) AS ?c) WHERE { ?x npdv:p ?y } GROUP BY ?x`,
		`SELECT (AVG(DISTINCT ?v) AS ?a) WHERE { ?x npdv:v ?v }`,
		`SELECT ?x WHERE { ?x npdv:y "2010-01-01"^^<http://www.w3.org/2001/XMLSchema#date> }`,
		`SELECT ?x WHERE { ?x npdv:p ?y } ORDER BY DESC(?x) LIMIT 10 OFFSET 5`,
		`SELECT * WHERE { ?s ?p ?o }`,
		`ASK { ?x a npdv:Wellbore }`,
		"SELECT ?x WHERE { ?x a npdv:W }\n# comment\nLIMIT 3",
		`SELECT ?x WHERE { ?x npdv:p _:b . _:b npdv:q ?y }`,
		`SELECT`, `SELECT ?x WHERE {`, `{}}`, `PREFIX : <`, "\x00\xff", ``,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	prefixes := rdf.PrefixMap{"npdv": "http://npd#", "": "http://example.org/"}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src, prefixes)
		if err != nil {
			return
		}
		if q == nil {
			t.Fatal("nil query with nil error")
		}
		// A parsed query must render and re-parse without panicking (the
		// rendered form need not round-trip byte-for-byte).
		_, _ = Parse(q.String(), prefixes)
	})
}
