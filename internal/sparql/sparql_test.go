package sparql

import (
	"strings"
	"testing"

	"npdbench/internal/rdf"
)

const ns = "http://test/"

func pm() rdf.PrefixMap {
	m := rdf.StandardPrefixes()
	m[""] = ns
	m["t"] = ns
	return m
}

func TestParseSimpleSelect(t *testing.T) {
	q, err := Parse(`SELECT ?x ?y WHERE { ?x t:knows ?y . }`, pm())
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Items) != 2 || q.Items[0].Var != "x" {
		t.Fatalf("items %v", q.Items)
	}
	bgp := q.Pattern.(*BGP)
	if len(bgp.Triples) != 1 {
		t.Fatalf("triples %v", bgp.Triples)
	}
	if bgp.Triples[0].P.Term.Value != ns+"knows" {
		t.Fatalf("predicate %v", bgp.Triples[0].P)
	}
}

func TestParsePredicateObjectLists(t *testing.T) {
	q, err := Parse(`SELECT ?x WHERE { ?x a t:Person ; t:name ?n , ?m . }`, pm())
	if err != nil {
		t.Fatal(err)
	}
	bgp := q.Pattern.(*BGP)
	if len(bgp.Triples) != 3 {
		t.Fatalf("got %d triples, want 3 (type + two names)", len(bgp.Triples))
	}
	if bgp.Triples[0].P.Term.Value != rdf.RDFType {
		t.Fatalf("'a' must expand to rdf:type")
	}
}

func TestParseBlankNodePropertyList(t *testing.T) {
	q, err := Parse(`SELECT ?x WHERE { ?x t:knows [ a t:Person ; t:name ?n ] . }`, pm())
	if err != nil {
		t.Fatal(err)
	}
	bgp := q.Pattern.(*BGP)
	if len(bgp.Triples) != 3 {
		t.Fatalf("got %d triples, want 3", len(bgp.Triples))
	}
	// the generated blank variable must connect the outer triple with the
	// inner property list
	var bn TermOrVar
	for _, tp := range bgp.Triples {
		if !tp.P.IsVar() && tp.P.Term.Value == ns+"knows" {
			bn = tp.O
		}
	}
	if !bn.IsVar() || !strings.HasPrefix(bn.Var, "_bn") {
		t.Fatalf("object should be a fresh blank variable: %v", bn)
	}
	for _, tp := range bgp.Triples {
		for _, v := range tp.Vars() {
			if v == bn.Var {
				goto connected
			}
		}
	}
	t.Fatal("blank variable does not connect the patterns")
connected:
}

func TestParseFilterOptionalUnion(t *testing.T) {
	q, err := Parse(`
SELECT DISTINCT ?x WHERE {
  { ?x a t:Cat } UNION { ?x a t:Dog }
  OPTIONAL { ?x t:name ?n }
  FILTER(?x != t:garfield)
} ORDER BY ?x LIMIT 5 OFFSET 2`, pm())
	if err != nil {
		t.Fatal(err)
	}
	if !q.Distinct || q.Limit != 5 || q.Offset != 2 || len(q.OrderBy) != 1 {
		t.Fatalf("modifiers wrong: %+v", q)
	}
	f, ok := q.Pattern.(*Filter)
	if !ok {
		t.Fatalf("outermost should be Filter, got %T", q.Pattern)
	}
	if _, ok := f.Inner.(*Optional); !ok {
		t.Fatalf("inner should be Optional, got %T", f.Inner)
	}
}

func TestParseAggregates(t *testing.T) {
	q, err := Parse(`
SELECT ?d (COUNT(DISTINCT ?x) AS ?n) (AVG(?age) AS ?avg) WHERE {
  ?x t:dept ?d . ?x t:age ?age .
} GROUP BY ?d HAVING(COUNT(?x) > 2)`, pm())
	if err != nil {
		t.Fatal(err)
	}
	if !q.HasAggregates() {
		t.Fatal("aggregates not detected")
	}
	agg, ok := q.Items[1].Expr.(*AggExpr)
	if !ok || agg.Name != "COUNT" || !agg.Distinct {
		t.Fatalf("item 1: %v", q.Items[1].Expr)
	}
	if q.Having == nil || len(q.GroupBy) != 1 {
		t.Fatal("HAVING/GROUP BY lost")
	}
}

func TestParseTypedLiterals(t *testing.T) {
	q, err := Parse(`SELECT ?x WHERE { ?x t:year "2008"^^xsd:integer ; t:label "hi"@en ; t:score 3.5 . }`, pm())
	if err != nil {
		t.Fatal(err)
	}
	bgp := q.Pattern.(*BGP)
	if bgp.Triples[0].O.Term.Datatype != rdf.XSDInteger {
		t.Fatalf("typed literal: %v", bgp.Triples[0].O)
	}
	if bgp.Triples[1].O.Term.Lang != "en" {
		t.Fatalf("lang literal: %v", bgp.Triples[1].O)
	}
	if bgp.Triples[2].O.Term.Datatype != rdf.XSDDecimal {
		t.Fatalf("decimal literal: %v", bgp.Triples[2].O)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT WHERE { ?x ?p ?y }`,
		`SELECT ?x WHERE { ?x t:p }`,
		`SELECT ?x WHERE { ?x t:p ?y`,
		`SELECT ?x WHERE { ?x unknown:p ?y }`,
		`SELECT ?x WHERE { ?x t:p ?y } LIMIT x`,
	}
	for _, src := range bad {
		if _, err := Parse(src, pm()); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

// memSource is a tiny in-memory triple source for evaluator tests.
type memSource []rdf.Triple

func (m memSource) Match(s, p, o *rdf.Term) []rdf.Triple {
	var out []rdf.Triple
	for _, t := range m {
		if s != nil && t.S != *s {
			continue
		}
		if p != nil && t.P != *p {
			continue
		}
		if o != nil && t.O != *o {
			continue
		}
		out = append(out, t)
	}
	return out
}

func iri(s string) rdf.Term { return rdf.NewIRI(ns + s) }

func testGraph() memSource {
	knows := iri("knows")
	name := iri("name")
	typ := rdf.NewIRI(rdf.RDFType)
	person := iri("Person")
	return memSource{
		{S: iri("alice"), P: typ, O: person},
		{S: iri("bob"), P: typ, O: person},
		{S: iri("carol"), P: typ, O: person},
		{S: iri("alice"), P: knows, O: iri("bob")},
		{S: iri("bob"), P: knows, O: iri("carol")},
		{S: iri("alice"), P: name, O: rdf.NewLiteral("Alice")},
		{S: iri("bob"), P: name, O: rdf.NewLiteral("Bob")},
		{S: iri("alice"), P: iri("age"), O: rdf.NewInteger(30)},
		{S: iri("bob"), P: iri("age"), O: rdf.NewInteger(25)},
		{S: iri("carol"), P: iri("age"), O: rdf.NewInteger(35)},
	}
}

func eval(t *testing.T, src string) *ResultSet {
	t.Helper()
	q, err := Parse(src, pm())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Evaluate(q, testGraph())
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func TestEvaluateBGPJoin(t *testing.T) {
	rs := eval(t, `SELECT ?a ?b WHERE { ?a t:knows ?b . ?b a t:Person }`)
	if rs.Len() != 2 {
		t.Fatalf("got %d rows:\n%s", rs.Len(), rs)
	}
}

func TestEvaluateFilter(t *testing.T) {
	rs := eval(t, `SELECT ?x WHERE { ?x t:age ?a . FILTER(?a > 28) }`)
	if rs.Len() != 2 {
		t.Fatalf("got %d rows:\n%s", rs.Len(), rs)
	}
}

func TestEvaluateFilterTypeErrorEliminates(t *testing.T) {
	// comparing a name (string) with a number is a type error -> dropped
	rs := eval(t, `SELECT ?x WHERE { ?x t:name ?n . FILTER(?n > 5) }`)
	if rs.Len() != 0 {
		t.Fatalf("type-error rows must be eliminated, got %d", rs.Len())
	}
}

func TestEvaluateOptional(t *testing.T) {
	rs := eval(t, `SELECT ?x ?n WHERE { ?x a t:Person OPTIONAL { ?x t:name ?n } } ORDER BY ?x`)
	if rs.Len() != 3 {
		t.Fatalf("got %d rows", rs.Len())
	}
	// carol has no name: unbound cell
	unbound := 0
	for _, row := range rs.Rows {
		if row[1].IsZero() {
			unbound++
		}
	}
	if unbound != 1 {
		t.Fatalf("expected one unbound name, got %d", unbound)
	}
}

func TestEvaluateUnion(t *testing.T) {
	rs := eval(t, `SELECT ?x WHERE { { ?x t:name "Alice" } UNION { ?x t:name "Bob" } }`)
	if rs.Len() != 2 {
		t.Fatalf("got %d rows", rs.Len())
	}
}

func TestEvaluateAggregates(t *testing.T) {
	rs := eval(t, `SELECT (COUNT(?x) AS ?n) (AVG(?a) AS ?avg) (MIN(?a) AS ?min) (MAX(?a) AS ?max) WHERE { ?x t:age ?a }`)
	if rs.Len() != 1 {
		t.Fatalf("got %d rows", rs.Len())
	}
	row := rs.Rows[0]
	if row[0].Value != "3" || row[1].Value != "30" || row[2].Value != "25" || row[3].Value != "35" {
		t.Fatalf("aggregate row: %v", row)
	}
}

func TestEvaluateGroupBy(t *testing.T) {
	rs := eval(t, `SELECT ?x (COUNT(?y) AS ?n) WHERE { ?x t:knows ?y } GROUP BY ?x`)
	if rs.Len() != 2 {
		t.Fatalf("got %d rows:\n%s", rs.Len(), rs)
	}
}

func TestEvaluateOrderAndSlice(t *testing.T) {
	rs := eval(t, `SELECT ?x ?a WHERE { ?x t:age ?a } ORDER BY DESC(?a) LIMIT 2`)
	if rs.Len() != 2 {
		t.Fatalf("got %d rows", rs.Len())
	}
	if rs.Rows[0][1].Value != "35" || rs.Rows[1][1].Value != "30" {
		t.Fatalf("order wrong:\n%s", rs)
	}
}

func TestEvaluateDistinct(t *testing.T) {
	rs := eval(t, `SELECT DISTINCT ?t WHERE { ?x a ?t }`)
	if rs.Len() != 1 {
		t.Fatalf("got %d rows", rs.Len())
	}
}

func TestComputeStats(t *testing.T) {
	q, err := Parse(`
SELECT ?x WHERE {
  ?x t:p ?y . ?y t:q ?z . ?a t:r ?b .
  OPTIONAL { ?x t:s ?w }
  FILTER(?z > 1)
}`, pm())
	if err != nil {
		t.Fatal(err)
	}
	st := q.ComputeStats()
	// 4 triple patterns in 2 variable-connected components -> 2 joins.
	if st.TriplePatterns != 4 || st.Joins != 2 {
		t.Fatalf("stats %+v", st)
	}
	if st.Optionals != 1 || !st.HasFilter {
		t.Fatalf("stats %+v", st)
	}
}

func TestEffectiveBooleanValue(t *testing.T) {
	cases := []struct {
		term rdf.Term
		want bool
		err  bool
	}{
		{rdf.NewTypedLiteral("true", rdf.XSDBoolean), true, false},
		{rdf.NewTypedLiteral("false", rdf.XSDBoolean), false, false},
		{rdf.NewLiteral(""), false, false},
		{rdf.NewLiteral("x"), true, false},
		{rdf.NewInteger(0), false, false},
		{rdf.NewInteger(7), true, false},
		{rdf.NewIRI(ns + "x"), false, true},
	}
	for _, c := range cases {
		got, err := ebv(c.term)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("ebv(%v) = %v, %v", c.term, got, err)
		}
	}
}

func TestBindingHelpers(t *testing.T) {
	a := Binding{"x": iri("alice")}
	b := Binding{"x": iri("alice"), "y": iri("bob")}
	merged, ok := MergeBindings(a, b)
	if !ok || len(merged) != 2 {
		t.Fatalf("merge failed: %v %v", merged, ok)
	}
	c := Binding{"x": iri("carol")}
	if _, ok := MergeBindings(a, c); ok {
		t.Fatal("conflicting bindings must not merge")
	}
	joined := JoinBindings([]Binding{a}, []Binding{b, c})
	if len(joined) != 1 {
		t.Fatalf("join: %v", joined)
	}
	left := LeftJoinBindings([]Binding{c}, []Binding{b})
	if len(left) != 1 || len(left[0]) != 1 {
		t.Fatalf("left join must keep unmatched left: %v", left)
	}
}
