// Package sparql implements the SPARQL fragment exercised by the NPD
// benchmark: basic graph patterns, FILTER, OPTIONAL, UNION, DISTINCT,
// aggregates with GROUP BY/HAVING, ORDER BY and LIMIT/OFFSET, together with
// a parser and an evaluator over any triple source.
package sparql

import (
	"fmt"
	"sort"
	"strings"

	"npdbench/internal/rdf"
)

// TermOrVar is either a variable (Var != "") or a concrete RDF term.
type TermOrVar struct {
	Var  string
	Term rdf.Term
}

// V returns a variable.
func V(name string) TermOrVar { return TermOrVar{Var: name} }

// T returns a concrete term.
func T(t rdf.Term) TermOrVar { return TermOrVar{Term: t} }

// IsVar reports whether the operand is a variable.
func (tv TermOrVar) IsVar() bool { return tv.Var != "" }

func (tv TermOrVar) String() string {
	if tv.IsVar() {
		return "?" + tv.Var
	}
	return tv.Term.String()
}

// TriplePattern is a triple with variables allowed in any position.
type TriplePattern struct {
	S, P, O TermOrVar
}

func (tp TriplePattern) String() string {
	return tp.S.String() + " " + tp.P.String() + " " + tp.O.String() + " ."
}

// Vars returns the variable names of the pattern.
func (tp TriplePattern) Vars() []string {
	var out []string
	for _, t := range []TermOrVar{tp.S, tp.P, tp.O} {
		if t.IsVar() {
			out = append(out, t.Var)
		}
	}
	return out
}

// GraphPattern is a node of the SPARQL algebra.
type GraphPattern interface {
	patternNode()
	fmt.Stringer
}

// BGP is a basic graph pattern: a conjunction of triple patterns.
type BGP struct {
	Triples []TriplePattern
}

// Group joins sub-patterns (SPARQL Join).
type Group struct {
	Parts []GraphPattern
}

// Filter restricts a pattern by a boolean expression.
type Filter struct {
	Inner GraphPattern
	Cond  Expr
}

// Optional is a left join.
type Optional struct {
	Left, Right GraphPattern
}

// Union merges the solutions of two patterns.
type Union struct {
	Left, Right GraphPattern
}

func (*BGP) patternNode()      {}
func (*Group) patternNode()    {}
func (*Filter) patternNode()   {}
func (*Optional) patternNode() {}
func (*Union) patternNode()    {}

func (b *BGP) String() string {
	parts := make([]string, len(b.Triples))
	for i, t := range b.Triples {
		parts[i] = t.String()
	}
	return strings.Join(parts, " ")
}

func (g *Group) String() string {
	parts := make([]string, len(g.Parts))
	for i, p := range g.Parts {
		parts[i] = p.String()
	}
	return "{ " + strings.Join(parts, " ") + " }"
}

func (f *Filter) String() string {
	return f.Inner.String() + " FILTER(" + f.Cond.String() + ")"
}

func (o *Optional) String() string {
	return o.Left.String() + " OPTIONAL { " + o.Right.String() + " }"
}

func (u *Union) String() string {
	return "{ " + u.Left.String() + " } UNION { " + u.Right.String() + " }"
}

// SelectItem is one projection of the SELECT clause: a plain variable or an
// (Expr AS ?Var) binding, possibly aggregate.
type SelectItem struct {
	Var  string // output name
	Expr Expr   // nil for a plain variable projection
}

// OrderKey is one ORDER BY criterion.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// Query is a parsed SPARQL SELECT query.
type Query struct {
	Prefixes rdf.PrefixMap
	Distinct bool
	Items    []SelectItem
	Star     bool
	Pattern  GraphPattern
	GroupBy  []string
	Having   Expr
	OrderBy  []OrderKey
	Limit    int // -1 when absent
	Offset   int
}

// HasAggregates reports whether any select item or HAVING uses an aggregate.
func (q *Query) HasAggregates() bool {
	for _, it := range q.Items {
		if it.Expr != nil && exprHasAggregate(it.Expr) {
			return true
		}
	}
	return q.Having != nil || len(q.GroupBy) > 0
}

// SelectVars returns the output variable names in order.
func (q *Query) SelectVars() []string {
	out := make([]string, len(q.Items))
	for i, it := range q.Items {
		out[i] = it.Var
	}
	return out
}

func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if q.Distinct {
		sb.WriteString("DISTINCT ")
	}
	if q.Star {
		sb.WriteString("*")
	}
	for i, it := range q.Items {
		if i > 0 || q.Star {
			sb.WriteByte(' ')
		}
		if it.Expr == nil {
			sb.WriteString("?" + it.Var)
		} else {
			fmt.Fprintf(&sb, "(%s AS ?%s)", it.Expr, it.Var)
		}
	}
	sb.WriteString(" WHERE { ")
	sb.WriteString(q.Pattern.String())
	sb.WriteString(" }")
	if len(q.GroupBy) > 0 {
		sb.WriteString(" GROUP BY")
		for _, g := range q.GroupBy {
			sb.WriteString(" ?" + g)
		}
	}
	if q.Having != nil {
		sb.WriteString(" HAVING(" + q.Having.String() + ")")
	}
	if len(q.OrderBy) > 0 {
		sb.WriteString(" ORDER BY")
		for _, o := range q.OrderBy {
			if o.Desc {
				sb.WriteString(" DESC(" + o.Expr.String() + ")")
			} else {
				sb.WriteString(" " + o.Expr.String())
			}
		}
	}
	if q.Limit >= 0 {
		fmt.Fprintf(&sb, " LIMIT %d", q.Limit)
	}
	if q.Offset > 0 {
		fmt.Fprintf(&sb, " OFFSET %d", q.Offset)
	}
	return sb.String()
}

// Stats captures the paper's Table 7 per-query shape statistics.
type Stats struct {
	TriplePatterns int
	Joins          int // shared-variable connections between triple patterns
	Optionals      int
	HasAggregate   bool
	HasFilter      bool
	HasModifier    bool // DISTINCT / ORDER / LIMIT
	UnionArms      int
}

// ComputeStats walks the query and derives its structural statistics.
// The #joins counts, per the benchmark convention, the number of triple
// patterns minus the number of connected components linked by shared
// variables (i.e. how many join operations a bushy plan needs).
func (q *Query) ComputeStats() Stats {
	var s Stats
	var walk func(GraphPattern)
	var allTriples []TriplePattern
	walk = func(p GraphPattern) {
		switch x := p.(type) {
		case *BGP:
			allTriples = append(allTriples, x.Triples...)
		case *Group:
			for _, part := range x.Parts {
				walk(part)
			}
		case *Filter:
			s.HasFilter = true
			walk(x.Inner)
		case *Optional:
			s.Optionals++
			walk(x.Left)
			walk(x.Right)
		case *Union:
			s.UnionArms++
			walk(x.Left)
			walk(x.Right)
		}
	}
	walk(q.Pattern)
	s.TriplePatterns = len(allTriples)
	s.Joins = countJoins(allTriples)
	s.HasAggregate = q.HasAggregates()
	s.HasModifier = q.Distinct || len(q.OrderBy) > 0 || q.Limit >= 0
	return s
}

func countJoins(tps []TriplePattern) int {
	if len(tps) == 0 {
		return 0
	}
	// union-find over patterns sharing variables
	parent := make([]int, len(tps))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	byVar := make(map[string][]int)
	for i, tp := range tps {
		for _, v := range tp.Vars() {
			byVar[v] = append(byVar[v], i)
		}
	}
	joins := 0
	for _, ids := range byVar {
		for i := 1; i < len(ids); i++ {
			a, b := find(ids[0]), find(ids[i])
			if a != b {
				parent[a] = b
				joins++
			}
		}
	}
	return joins
}

// PatternVars returns the sorted set of variables mentioned in a pattern.
func PatternVars(p GraphPattern) []string {
	set := make(map[string]bool)
	var walk func(GraphPattern)
	walk = func(p GraphPattern) {
		switch x := p.(type) {
		case *BGP:
			for _, t := range x.Triples {
				for _, v := range t.Vars() {
					set[v] = true
				}
			}
		case *Group:
			for _, part := range x.Parts {
				walk(part)
			}
		case *Filter:
			walk(x.Inner)
		case *Optional:
			walk(x.Left)
			walk(x.Right)
		case *Union:
			walk(x.Left)
			walk(x.Right)
		}
	}
	walk(p)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
