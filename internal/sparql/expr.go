package sparql

import (
	"fmt"
	"strconv"
	"strings"

	"npdbench/internal/rdf"
)

// Expr is a SPARQL expression (filters, select bindings, aggregates).
type Expr interface {
	fmt.Stringer
	sparqlExpr()
}

// VarExpr references a variable.
type VarExpr struct{ Name string }

// TermExpr is a constant RDF term.
type TermExpr struct{ Term rdf.Term }

// BinExpr is a binary operation.
type BinExpr struct {
	Op   string // "||" "&&" "=" "!=" "<" "<=" ">" ">=" "+" "-" "*" "/"
	L, R Expr
}

// NotExpr negates a boolean expression.
type NotExpr struct{ E Expr }

// CallExpr is a builtin call: BOUND, STR, LANG, DATATYPE, REGEX.
type CallExpr struct {
	Name string // upper-cased
	Args []Expr
}

// AggExpr is an aggregate: COUNT/SUM/AVG/MIN/MAX, possibly DISTINCT;
// Star marks COUNT(*).
type AggExpr struct {
	Name     string
	Arg      Expr
	Distinct bool
	Star     bool
}

func (*VarExpr) sparqlExpr()  {}
func (*TermExpr) sparqlExpr() {}
func (*BinExpr) sparqlExpr()  {}
func (*NotExpr) sparqlExpr()  {}
func (*CallExpr) sparqlExpr() {}
func (*AggExpr) sparqlExpr()  {}

func (e *VarExpr) String() string  { return "?" + e.Name }
func (e *TermExpr) String() string { return e.Term.String() }
func (e *BinExpr) String() string {
	return "(" + e.L.String() + " " + e.Op + " " + e.R.String() + ")"
}
func (e *NotExpr) String() string { return "!(" + e.E.String() + ")" }
func (e *CallExpr) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return e.Name + "(" + strings.Join(args, ", ") + ")"
}
func (e *AggExpr) String() string {
	if e.Star {
		return e.Name + "(*)"
	}
	d := ""
	if e.Distinct {
		d = "DISTINCT "
	}
	return e.Name + "(" + d + e.Arg.String() + ")"
}

func exprHasAggregate(e Expr) bool {
	switch x := e.(type) {
	case *AggExpr:
		return true
	case *BinExpr:
		return exprHasAggregate(x.L) || exprHasAggregate(x.R)
	case *NotExpr:
		return exprHasAggregate(x.E)
	case *CallExpr:
		for _, a := range x.Args {
			if exprHasAggregate(a) {
				return true
			}
		}
	}
	return false
}

// ExprVars returns the variables mentioned by an expression.
func ExprVars(e Expr) []string {
	set := map[string]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *VarExpr:
			set[x.Name] = true
		case *BinExpr:
			walk(x.L)
			walk(x.R)
		case *NotExpr:
			walk(x.E)
		case *CallExpr:
			for _, a := range x.Args {
				walk(a)
			}
		case *AggExpr:
			if x.Arg != nil {
				walk(x.Arg)
			}
		}
	}
	walk(e)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	return out
}

// Binding maps variable names to RDF terms. Absent variables are unbound.
type Binding map[string]rdf.Term

// Clone copies the binding.
func (b Binding) Clone() Binding {
	nb := make(Binding, len(b)+1)
	for k, v := range b {
		nb[k] = v
	}
	return nb
}

// errTypeError marks SPARQL type errors, which make filters eliminate the
// solution (per the spec) rather than abort evaluation.
var errTypeError = fmt.Errorf("sparql: type error")

// EvalExpr evaluates a non-aggregate expression under a binding. A type
// error is reported via errTypeError so callers can apply filter semantics.
func EvalExpr(e Expr, b Binding) (rdf.Term, error) {
	switch x := e.(type) {
	case *VarExpr:
		t, ok := b[x.Name]
		if !ok {
			return rdf.Term{}, errTypeError
		}
		return t, nil
	case *TermExpr:
		return x.Term, nil
	case *NotExpr:
		v, err := EvalExpr(x.E, b)
		if err != nil {
			return rdf.Term{}, err
		}
		tb, err := ebv(v)
		if err != nil {
			return rdf.Term{}, err
		}
		return boolTerm(!tb), nil
	case *CallExpr:
		return evalCall(x, b)
	case *BinExpr:
		return evalBin(x, b)
	case *AggExpr:
		return rdf.Term{}, fmt.Errorf("sparql: aggregate in scalar context")
	}
	return rdf.Term{}, fmt.Errorf("sparql: unknown expression %T", e)
}

func evalCall(x *CallExpr, b Binding) (rdf.Term, error) {
	switch x.Name {
	case "BOUND":
		if len(x.Args) != 1 {
			return rdf.Term{}, fmt.Errorf("sparql: BOUND arity")
		}
		v, ok := x.Args[0].(*VarExpr)
		if !ok {
			return rdf.Term{}, fmt.Errorf("sparql: BOUND requires a variable")
		}
		_, bound := b[v.Name]
		return boolTerm(bound), nil
	case "STR":
		if len(x.Args) != 1 {
			return rdf.Term{}, fmt.Errorf("sparql: STR arity")
		}
		v, err := EvalExpr(x.Args[0], b)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewLiteral(v.Value), nil
	case "LANG":
		v, err := EvalExpr(x.Args[0], b)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewLiteral(v.Lang), nil
	case "DATATYPE":
		v, err := EvalExpr(x.Args[0], b)
		if err != nil {
			return rdf.Term{}, err
		}
		dt := v.Datatype
		if dt == "" {
			dt = rdf.XSDString
		}
		return rdf.NewIRI(dt), nil
	case "REGEX":
		if len(x.Args) < 2 {
			return rdf.Term{}, fmt.Errorf("sparql: REGEX arity")
		}
		v, err := EvalExpr(x.Args[0], b)
		if err != nil {
			return rdf.Term{}, err
		}
		p, err := EvalExpr(x.Args[1], b)
		if err != nil {
			return rdf.Term{}, err
		}
		// substring semantics without flags (sufficient for the benchmark)
		return boolTerm(strings.Contains(strings.ToLower(v.Value), strings.ToLower(p.Value))), nil
	}
	return rdf.Term{}, fmt.Errorf("sparql: unknown function %s", x.Name)
}

func evalBin(x *BinExpr, b Binding) (rdf.Term, error) {
	switch x.Op {
	case "&&":
		lv, lerr := evalBool(x.L, b)
		rv, rerr := evalBool(x.R, b)
		// SPARQL: error && false = false
		if lerr == nil && !lv {
			return boolTerm(false), nil
		}
		if rerr == nil && !rv {
			return boolTerm(false), nil
		}
		if lerr != nil {
			return rdf.Term{}, lerr
		}
		if rerr != nil {
			return rdf.Term{}, rerr
		}
		return boolTerm(true), nil
	case "||":
		lv, lerr := evalBool(x.L, b)
		rv, rerr := evalBool(x.R, b)
		if lerr == nil && lv {
			return boolTerm(true), nil
		}
		if rerr == nil && rv {
			return boolTerm(true), nil
		}
		if lerr != nil {
			return rdf.Term{}, lerr
		}
		if rerr != nil {
			return rdf.Term{}, rerr
		}
		return boolTerm(false), nil
	}
	lv, err := EvalExpr(x.L, b)
	if err != nil {
		return rdf.Term{}, err
	}
	rv, err := EvalExpr(x.R, b)
	if err != nil {
		return rdf.Term{}, err
	}
	switch x.Op {
	case "=", "!=", "<", "<=", ">", ">=":
		c, err := CompareTermsSPARQL(lv, rv)
		if err != nil {
			if x.Op == "=" {
				return boolTerm(lv == rv), nil
			}
			if x.Op == "!=" {
				return boolTerm(lv != rv), nil
			}
			return rdf.Term{}, err
		}
		var ok bool
		switch x.Op {
		case "=":
			ok = c == 0
		case "!=":
			ok = c != 0
		case "<":
			ok = c < 0
		case "<=":
			ok = c <= 0
		case ">":
			ok = c > 0
		case ">=":
			ok = c >= 0
		}
		return boolTerm(ok), nil
	case "+", "-", "*", "/":
		lf, lok := NumericValue(lv)
		rf, rok := NumericValue(rv)
		if !lok || !rok {
			return rdf.Term{}, errTypeError
		}
		var out float64
		switch x.Op {
		case "+":
			out = lf + rf
		case "-":
			out = lf - rf
		case "*":
			out = lf * rf
		case "/":
			if rf == 0 {
				return rdf.Term{}, errTypeError
			}
			out = lf / rf
		}
		if out == float64(int64(out)) && isIntegerTyped(lv) && isIntegerTyped(rv) {
			return rdf.NewInteger(int64(out)), nil
		}
		return rdf.NewTypedLiteral(strconv.FormatFloat(out, 'g', -1, 64), rdf.XSDDouble), nil
	}
	return rdf.Term{}, fmt.Errorf("sparql: unknown operator %q", x.Op)
}

func evalBool(e Expr, b Binding) (bool, error) {
	v, err := EvalExpr(e, b)
	if err != nil {
		return false, err
	}
	return ebv(v)
}

// ebv computes the SPARQL effective boolean value.
func ebv(t rdf.Term) (bool, error) {
	if t.Kind != rdf.Literal {
		return false, errTypeError
	}
	switch t.Datatype {
	case rdf.XSDBoolean:
		return t.Value == "true" || t.Value == "1", nil
	case "", rdf.XSDString:
		return t.Value != "", nil
	}
	if f, ok := NumericValue(t); ok {
		return f != 0, nil
	}
	return false, errTypeError
}

func boolTerm(b bool) rdf.Term {
	if b {
		return rdf.NewTypedLiteral("true", rdf.XSDBoolean)
	}
	return rdf.NewTypedLiteral("false", rdf.XSDBoolean)
}

// NumericValue extracts a numeric interpretation of a literal; plain
// literals that parse as numbers are accepted (lenient, matching how the
// benchmark's queries compare years stored as strings).
func NumericValue(t rdf.Term) (float64, bool) {
	if t.Kind != rdf.Literal {
		return 0, false
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(t.Value), 64)
	if err != nil {
		return 0, false
	}
	return f, true
}

func isIntegerTyped(t rdf.Term) bool {
	if t.Datatype == rdf.XSDInteger {
		return true
	}
	if t.Datatype != "" && t.Datatype != rdf.XSDString {
		return false
	}
	_, err := strconv.ParseInt(strings.TrimSpace(t.Value), 10, 64)
	return err == nil
}

// CompareTermsSPARQL compares two terms under SPARQL ordering: numerics by
// value, strings lexicographically, IRIs lexicographically. Cross-category
// comparisons yield an error (filter type error).
func CompareTermsSPARQL(a, b rdf.Term) (int, error) {
	if a.Kind == rdf.Literal && b.Kind == rdf.Literal {
		af, aok := NumericValue(a)
		bf, bok := NumericValue(b)
		if aok && bok {
			switch {
			case af < bf:
				return -1, nil
			case af > bf:
				return 1, nil
			}
			return 0, nil
		}
		if aok != bok {
			return 0, errTypeError
		}
		return strings.Compare(a.Value, b.Value), nil
	}
	if a.Kind == b.Kind {
		return strings.Compare(a.Value, b.Value), nil
	}
	return 0, errTypeError
}
