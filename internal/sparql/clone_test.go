package sparql

import (
	"testing"

	"npdbench/internal/rdf"
)

func TestCloneIsDeep(t *testing.T) {
	prefixes := rdf.StandardPrefixes()
	prefixes["ex"] = "http://example.org/"
	src := `PREFIX ex: <http://example.org/>
SELECT DISTINCT ?n (COUNT(?p) AS ?c) WHERE {
  { ?x ex:name ?n . ?x ex:SellsProduct ?p }
  UNION
  { ?x ex:name ?n . OPTIONAL { ?x ex:AssignedTo ?p } }
  FILTER(?n != "nobody")
} GROUP BY ?n HAVING (COUNT(?p) > 1) ORDER BY ?n LIMIT 5`
	q, err := Parse(src, prefixes)
	if err != nil {
		t.Fatal(err)
	}
	before := q.String()

	c := q.Clone()
	if c.String() != before {
		t.Fatalf("clone renders differently:\n%s\nvs\n%s", c.String(), before)
	}

	// Mutate every region of the clone; the original must not move.
	c.Prefixes["ex"] = "http://elsewhere.invalid/"
	c.Items[0].Var = "mutated"
	c.GroupBy[0] = "mutated"
	c.OrderBy[0].Desc = !c.OrderBy[0].Desc
	c.Limit = 99
	var walk func(GraphPattern)
	walk = func(p GraphPattern) {
		switch x := p.(type) {
		case *BGP:
			for i := range x.Triples {
				x.Triples[i].S = V("mutated")
			}
		case *Group:
			for _, part := range x.Parts {
				walk(part)
			}
		case *Filter:
			walk(x.Inner)
			if b, ok := x.Cond.(*BinExpr); ok {
				if v, ok := b.L.(*VarExpr); ok {
					v.Name = "mutated"
				}
			}
		case *Optional:
			walk(x.Left)
			walk(x.Right)
		case *Union:
			walk(x.Left)
			walk(x.Right)
		}
	}
	walk(c.Pattern)

	if q.String() != before {
		t.Fatalf("mutating the clone changed the original:\n%s\nvs\n%s", q.String(), before)
	}
	if q.Prefixes["ex"] != "http://example.org/" {
		t.Fatal("prefix map is shared between clone and original")
	}
}

func TestCloneNil(t *testing.T) {
	var q *Query
	if q.Clone() != nil {
		t.Fatal("nil Clone should be nil")
	}
	if CloneExpr(nil) != nil || ClonePattern(nil) != nil {
		t.Fatal("nil-safe clones should return nil")
	}
}
