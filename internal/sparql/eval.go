package sparql

import (
	"fmt"
	"sort"
	"strings"

	"npdbench/internal/rdf"
)

// TripleSource is anything that can match triple patterns; nil positions
// are wildcards.
type TripleSource interface {
	Match(s, p, o *rdf.Term) []rdf.Triple
}

// ResultSet holds the solutions of a SELECT query.
type ResultSet struct {
	Vars []string
	Rows [][]rdf.Term // zero Term = unbound
}

// Len returns the number of solutions.
func (rs *ResultSet) Len() int { return len(rs.Rows) }

// String renders the result set as a TSV-ish table (diagnostics).
func (rs *ResultSet) String() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(rs.Vars, "\t"))
	sb.WriteByte('\n')
	for _, row := range rs.Rows {
		for i, t := range row {
			if i > 0 {
				sb.WriteByte('\t')
			}
			if t.IsZero() {
				sb.WriteString("_")
			} else {
				sb.WriteString(t.String())
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Evaluate runs the query over the triple source.
func Evaluate(q *Query, src TripleSource) (*ResultSet, error) {
	bindings, err := evalPattern(q.Pattern, src)
	if err != nil {
		return nil, err
	}
	return Finalize(q, bindings)
}

// Finalize applies the solution modifiers of q (aggregation, computed
// select items, ORDER BY, projection, DISTINCT, LIMIT/OFFSET) to a set of
// solution bindings. OBDA engines call it after producing the bindings
// from SQL; the triple-store path calls it from Evaluate.
func Finalize(q *Query, bindings []Binding) (*ResultSet, error) {
	var err error
	if q.HasAggregates() {
		bindings, err = aggregateBindings(q, bindings)
		if err != nil {
			return nil, err
		}
	} else {
		// evaluate computed select items
		for _, it := range q.Items {
			if it.Expr == nil {
				continue
			}
			for _, b := range bindings {
				if v, err := EvalExpr(it.Expr, b); err == nil {
					b[it.Var] = v
				}
			}
		}
	}
	if len(q.OrderBy) > 0 {
		sortBindings(bindings, q.OrderBy)
	}
	rs := &ResultSet{Vars: q.SelectVars()}
	for _, b := range bindings {
		row := make([]rdf.Term, len(rs.Vars))
		for i, v := range rs.Vars {
			row[i] = b[v]
		}
		rs.Rows = append(rs.Rows, row)
	}
	if q.Distinct {
		rs = distinctResults(rs)
	}
	if q.Offset > 0 {
		if q.Offset >= len(rs.Rows) {
			rs.Rows = nil
		} else {
			rs.Rows = rs.Rows[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(rs.Rows) {
		rs.Rows = rs.Rows[:q.Limit]
	}
	return rs, nil
}

func distinctResults(rs *ResultSet) *ResultSet {
	seen := make(map[string]bool, len(rs.Rows))
	out := &ResultSet{Vars: rs.Vars}
	for _, row := range rs.Rows {
		var kb strings.Builder
		for _, t := range row {
			s := t.String()
			fmt.Fprintf(&kb, "%d:%s", len(s), s)
		}
		k := kb.String()
		if seen[k] {
			continue
		}
		seen[k] = true
		out.Rows = append(out.Rows, row)
	}
	return out
}

func sortBindings(bs []Binding, keys []OrderKey) {
	sort.SliceStable(bs, func(i, j int) bool {
		for _, k := range keys {
			vi, ei := EvalExpr(k.Expr, bs[i])
			vj, ej := EvalExpr(k.Expr, bs[j])
			if ei != nil && ej != nil {
				continue
			}
			if ei != nil {
				return !k.Desc // unbound sorts first ascending
			}
			if ej != nil {
				return k.Desc
			}
			c, err := CompareTermsSPARQL(vi, vj)
			if err != nil {
				c = rdf.CompareTerms(vi, vj)
			}
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

// FilterKeeps reports whether the binding satisfies the filter condition
// under SPARQL semantics (type errors eliminate the solution).
func FilterKeeps(cond Expr, b Binding) bool {
	v, err := EvalExpr(cond, b)
	if err != nil {
		return false
	}
	ok, err := ebv(v)
	return err == nil && ok
}

// JoinBindings computes the SPARQL join of two solution sequences.
func JoinBindings(left, right []Binding) []Binding {
	return joinBindings(left, right)
}

// LeftJoinBindings computes the SPARQL left join (OPTIONAL) of two solution
// sequences.
func LeftJoinBindings(left, right []Binding) []Binding {
	shared := sharedBoundVars(left, right)
	if len(shared) == 0 || len(left)*len(right) < 1024 {
		var out []Binding
		for _, lb := range left {
			matched := false
			for _, rb := range right {
				if merged, ok := mergeBindings(lb, rb); ok {
					out = append(out, merged)
					matched = true
				}
			}
			if !matched {
				out = append(out, lb)
			}
		}
		return out
	}
	ht := make(map[string][]Binding, len(right))
	for _, rb := range right {
		ht[bindingKey(rb, shared)] = append(ht[bindingKey(rb, shared)], rb)
	}
	var out []Binding
	for _, lb := range left {
		matched := false
		for _, rb := range ht[bindingKey(lb, shared)] {
			if merged, ok := mergeBindings(lb, rb); ok {
				out = append(out, merged)
				matched = true
			}
		}
		if !matched {
			out = append(out, lb)
		}
	}
	return out
}

// MergeBindings merges two compatible bindings; ok=false on conflict.
func MergeBindings(a, b Binding) (Binding, bool) { return mergeBindings(a, b) }

// EvalPattern evaluates a graph pattern over the source, returning the
// solution bindings (no solution modifiers applied).
func EvalPattern(p GraphPattern, src TripleSource) ([]Binding, error) {
	return evalPattern(p, src)
}

func evalPattern(p GraphPattern, src TripleSource) ([]Binding, error) {
	switch x := p.(type) {
	case *BGP:
		return evalBGP(x, src, []Binding{{}})
	case *Group:
		cur := []Binding{{}}
		for _, part := range x.Parts {
			next, err := evalPattern(part, src)
			if err != nil {
				return nil, err
			}
			cur = joinBindings(cur, next)
		}
		return cur, nil
	case *Filter:
		inner, err := evalPattern(x.Inner, src)
		if err != nil {
			return nil, err
		}
		var out []Binding
		for _, b := range inner {
			v, err := EvalExpr(x.Cond, b)
			if err != nil {
				continue // type error eliminates the solution
			}
			ok, err := ebv(v)
			if err == nil && ok {
				out = append(out, b)
			}
		}
		return out, nil
	case *Optional:
		left, err := evalPattern(x.Left, src)
		if err != nil {
			return nil, err
		}
		right, err := evalPattern(x.Right, src)
		if err != nil {
			return nil, err
		}
		return LeftJoinBindings(left, right), nil
	case *Union:
		left, err := evalPattern(x.Left, src)
		if err != nil {
			return nil, err
		}
		right, err := evalPattern(x.Right, src)
		if err != nil {
			return nil, err
		}
		return append(left, right...), nil
	}
	return nil, fmt.Errorf("sparql: unknown pattern %T", p)
}

// evalBGP extends each seed binding through the triple patterns, greedily
// choosing the most-bound pattern next.
func evalBGP(bgp *BGP, src TripleSource, seeds []Binding) ([]Binding, error) {
	remaining := append([]TriplePattern{}, bgp.Triples...)
	cur := seeds
	for len(remaining) > 0 {
		// choose pattern with most positions bound under current bindings
		bound := map[string]bool{}
		if len(cur) > 0 {
			for v := range cur[0] {
				bound[v] = true
			}
		}
		best, bestScore := 0, -1
		for i, tp := range remaining {
			score := 0
			for _, t := range []TermOrVar{tp.S, tp.P, tp.O} {
				if !t.IsVar() || bound[t.Var] {
					score++
				}
			}
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		tp := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		var next []Binding
		for _, b := range cur {
			next = append(next, matchPattern(tp, src, b)...)
		}
		cur = next
		if len(cur) == 0 {
			return nil, nil
		}
	}
	return cur, nil
}

func matchPattern(tp TriplePattern, src TripleSource, b Binding) []Binding {
	resolve := func(t TermOrVar) *rdf.Term {
		if !t.IsVar() {
			v := t.Term
			return &v
		}
		if v, ok := b[t.Var]; ok {
			return &v
		}
		return nil
	}
	s, p, o := resolve(tp.S), resolve(tp.P), resolve(tp.O)
	var out []Binding
	for _, tr := range src.Match(s, p, o) {
		nb := b.Clone()
		ok := true
		bind := func(t TermOrVar, val rdf.Term) {
			if !t.IsVar() {
				return
			}
			if prev, exists := nb[t.Var]; exists {
				if prev != val {
					ok = false
				}
				return
			}
			nb[t.Var] = val
		}
		bind(tp.S, tr.S)
		bind(tp.P, tr.P)
		bind(tp.O, tr.O)
		if ok {
			out = append(out, nb)
		}
	}
	return out
}

func joinBindings(left, right []Binding) []Binding {
	shared := sharedBoundVars(left, right)
	if len(shared) == 0 || len(left)*len(right) < 1024 {
		var out []Binding
		for _, lb := range left {
			for _, rb := range right {
				if merged, ok := mergeBindings(lb, rb); ok {
					out = append(out, merged)
				}
			}
		}
		return out
	}
	// hash join on the variables bound in every binding of both sides;
	// mergeBindings still verifies full compatibility.
	ht := make(map[string][]Binding, len(right))
	for _, rb := range right {
		k := bindingKey(rb, shared)
		ht[k] = append(ht[k], rb)
	}
	var out []Binding
	for _, lb := range left {
		for _, rb := range ht[bindingKey(lb, shared)] {
			if merged, ok := mergeBindings(lb, rb); ok {
				out = append(out, merged)
			}
		}
	}
	return out
}

// sharedBoundVars returns variables bound in every binding on both sides.
func sharedBoundVars(left, right []Binding) []string {
	if len(left) == 0 || len(right) == 0 {
		return nil
	}
	everywhere := func(bs []Binding) map[string]bool {
		m := map[string]bool{}
		for v := range bs[0] {
			m[v] = true
		}
		for _, b := range bs[1:] {
			for v := range m {
				if _, ok := b[v]; !ok {
					delete(m, v)
				}
			}
		}
		return m
	}
	l := everywhere(left)
	r := everywhere(right)
	var out []string
	for v := range l {
		if r[v] {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

func bindingKey(b Binding, vars []string) string {
	var sb strings.Builder
	for _, v := range vars {
		s := b[v].String()
		fmt.Fprintf(&sb, "%d:%s", len(s), s)
	}
	return sb.String()
}

func mergeBindings(a, b Binding) (Binding, bool) {
	out := a.Clone()
	for k, v := range b {
		if prev, ok := out[k]; ok {
			if prev != v {
				return nil, false
			}
			continue
		}
		out[k] = v
	}
	return out, true
}

// aggregateBindings implements GROUP BY + aggregate projection + HAVING.
func aggregateBindings(q *Query, bindings []Binding) ([]Binding, error) {
	type group struct {
		key  Binding
		rows []Binding
	}
	groups := map[string]*group{}
	var order []string
	for _, b := range bindings {
		var kb strings.Builder
		key := Binding{}
		for _, g := range q.GroupBy {
			t := b[g]
			key[g] = t
			s := t.String()
			fmt.Fprintf(&kb, "%d:%s", len(s), s)
		}
		k := kb.String()
		gr, ok := groups[k]
		if !ok {
			gr = &group{key: key}
			groups[k] = gr
			order = append(order, k)
		}
		gr.rows = append(gr.rows, b)
	}
	if len(q.GroupBy) == 0 && len(order) == 0 {
		groups[""] = &group{key: Binding{}}
		order = append(order, "")
	}
	var out []Binding
	for _, k := range order {
		gr := groups[k]
		if q.Having != nil {
			hv, err := evalAggregateExpr(q.Having, gr.rows, gr.key)
			if err != nil {
				continue
			}
			ok, err := ebv(hv)
			if err != nil || !ok {
				continue
			}
		}
		nb := gr.key.Clone()
		for _, it := range q.Items {
			if it.Expr == nil {
				continue // plain var: must be a GROUP BY var, already in key
			}
			v, err := evalAggregateExpr(it.Expr, gr.rows, gr.key)
			if err != nil {
				continue
			}
			nb[it.Var] = v
		}
		out = append(out, nb)
	}
	return out, nil
}

// evalAggregateExpr evaluates expressions that may contain aggregate calls
// over a group of solutions.
func evalAggregateExpr(e Expr, rows []Binding, key Binding) (rdf.Term, error) {
	switch x := e.(type) {
	case *AggExpr:
		return computeAgg(x, rows)
	case *BinExpr:
		if !exprHasAggregate(x) {
			return EvalExpr(x, key)
		}
		lv, err := evalAggregateExpr(x.L, rows, key)
		if err != nil {
			return rdf.Term{}, err
		}
		rv, err := evalAggregateExpr(x.R, rows, key)
		if err != nil {
			return rdf.Term{}, err
		}
		return evalBin(&BinExpr{Op: x.Op, L: &TermExpr{Term: lv}, R: &TermExpr{Term: rv}}, Binding{})
	case *NotExpr:
		v, err := evalAggregateExpr(x.E, rows, key)
		if err != nil {
			return rdf.Term{}, err
		}
		ok, err := ebv(v)
		if err != nil {
			return rdf.Term{}, err
		}
		return boolTerm(!ok), nil
	default:
		return EvalExpr(e, key)
	}
}

func computeAgg(a *AggExpr, rows []Binding) (rdf.Term, error) {
	if a.Star {
		if a.Name != "COUNT" {
			return rdf.Term{}, fmt.Errorf("sparql: %s(*) invalid", a.Name)
		}
		return rdf.NewInteger(int64(len(rows))), nil
	}
	var vals []rdf.Term
	seen := map[string]bool{}
	for _, b := range rows {
		v, err := EvalExpr(a.Arg, b)
		if err != nil {
			continue
		}
		if a.Distinct {
			k := v.String()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}
	switch a.Name {
	case "COUNT":
		return rdf.NewInteger(int64(len(vals))), nil
	case "SUM", "AVG":
		sum := 0.0
		allInt := true
		for _, v := range vals {
			f, ok := NumericValue(v)
			if !ok {
				return rdf.Term{}, errTypeError
			}
			if !isIntegerTyped(v) {
				allInt = false
			}
			sum += f
		}
		if a.Name == "AVG" {
			if len(vals) == 0 {
				return rdf.NewInteger(0), nil
			}
			avg := sum / float64(len(vals))
			return rdf.NewTypedLiteral(fmt.Sprintf("%g", avg), rdf.XSDDouble), nil
		}
		if allInt {
			return rdf.NewInteger(int64(sum)), nil
		}
		return rdf.NewTypedLiteral(fmt.Sprintf("%g", sum), rdf.XSDDouble), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return rdf.Term{}, errTypeError
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c, err := CompareTermsSPARQL(v, best)
			if err != nil {
				c = rdf.CompareTerms(v, best)
			}
			if (a.Name == "MIN" && c < 0) || (a.Name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	}
	return rdf.Term{}, fmt.Errorf("sparql: unknown aggregate %s", a.Name)
}
