package sparql

import (
	"fmt"
	"strconv"
	"strings"

	"npdbench/internal/rdf"
)

// Parse parses a SPARQL SELECT query. extraPrefixes (may be nil) are merged
// under any PREFIX declarations in the query text.
func Parse(src string, extraPrefixes rdf.PrefixMap) (*Query, error) {
	toks, err := lexSPARQL(src)
	if err != nil {
		return nil, err
	}
	p := &sparser{toks: toks, prefixes: rdf.StandardPrefixes()}
	for k, v := range extraPrefixes {
		p.prefixes[k] = v
	}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse parses or panics; for the static benchmark query set.
func MustParse(src string, prefixes rdf.PrefixMap) *Query {
	q, err := Parse(src, prefixes)
	if err != nil {
		panic(fmt.Sprintf("sparql.MustParse: %v\nquery: %s", err, src))
	}
	return q
}

// ---- lexer ----

type stokKind uint8

const (
	stEOF stokKind = iota
	stIRI
	stPName  // prefixed name, text includes the colon
	stVar    // text without the ? or $
	stString // lexical form
	stNumber
	stKeyword
	stSymbol
	stBlankLabel // _:label
	stLangTag    // @en — text without the @
)

type stok struct {
	kind stokKind
	text string
	pos  int
}

var sparqlKeywords = map[string]bool{
	"PREFIX": true, "BASE": true, "SELECT": true, "DISTINCT": true,
	"REDUCED": true, "WHERE": true, "FILTER": true, "OPTIONAL": true,
	"UNION": true, "GROUP": true, "BY": true, "HAVING": true, "ORDER": true,
	"ASC": true, "DESC": true, "LIMIT": true, "OFFSET": true, "AS": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"BOUND": true, "STR": true, "LANG": true, "DATATYPE": true, "REGEX": true,
	"A": true, "TRUE": true, "FALSE": true, "NOT": true, "EXISTS": true,
}

func lexSPARQL(src string) ([]stok, error) {
	var toks []stok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '<':
			j := strings.IndexByte(src[i:], '>')
			if j < 0 {
				return nil, fmt.Errorf("sparql: unterminated IRI at %d", i)
			}
			toks = append(toks, stok{stIRI, src[i+1 : i+j], i})
			i += j + 1
		case c == '?' || c == '$':
			j := i + 1
			for j < len(src) && isPNChar(src[j]) {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("sparql: bad variable at %d", i)
			}
			toks = append(toks, stok{stVar, src[i+1 : j], i})
			i = j
		case c == '"':
			j := i + 1
			var sb strings.Builder
			for j < len(src) && src[j] != '"' {
				if src[j] == '\\' && j+1 < len(src) {
					switch src[j+1] {
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					case 'r':
						sb.WriteByte('\r')
					default:
						sb.WriteByte(src[j+1])
					}
					j += 2
					continue
				}
				sb.WriteByte(src[j])
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("sparql: unterminated string at %d", i)
			}
			toks = append(toks, stok{stString, sb.String(), i})
			i = j + 1
		case c == '_' && i+1 < len(src) && src[i+1] == ':':
			j := i + 2
			for j < len(src) && isPNChar(src[j]) {
				j++
			}
			toks = append(toks, stok{stBlankLabel, src[i+2 : j], i})
			i = j
		case c >= '0' && c <= '9' || (c == '-' || c == '+') && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9':
			j := i
			if c == '-' || c == '+' {
				j++
			}
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				j++
			}
			toks = append(toks, stok{stNumber, src[i:j], i})
			i = j
		case c == ':':
			// default-prefix name, e.g. :Employee
			j := i + 1
			for j < len(src) && (isPNChar(src[j]) || src[j] == '/' || src[j] == '.' && j+1 < len(src) && isPNChar(src[j+1])) {
				j++
			}
			toks = append(toks, stok{stPName, src[i:j], i})
			i = j
		case isPNCharBase(c):
			j := i
			for j < len(src) && (isPNChar(src[j]) || src[j] == ':' || src[j] == '/' && j > i && strings.Contains(src[i:j], ":") || src[j] == '.' && j+1 < len(src) && isPNChar(src[j+1])) {
				j++
			}
			word := src[i:j]
			if strings.Contains(word, ":") {
				toks = append(toks, stok{stPName, word, i})
			} else if up := strings.ToUpper(word); sparqlKeywords[up] {
				toks = append(toks, stok{stKeyword, up, i})
			} else {
				// bare word: treat as prefixed-name-local? Error out.
				return nil, fmt.Errorf("sparql: unexpected word %q at %d", word, i)
			}
			i = j
		default:
			for _, sym := range []string{"^^", "&&", "||", "!=", "<=", ">="} {
				if strings.HasPrefix(src[i:], sym) {
					toks = append(toks, stok{stSymbol, sym, i})
					i += len(sym)
					goto next
				}
			}
			if c == '@' {
				j := i + 1
				for j < len(src) && (isPNCharBase(src[j]) || src[j] == '-') {
					j++
				}
				if j == i+1 {
					return nil, fmt.Errorf("sparql: empty language tag at %d", i)
				}
				toks = append(toks, stok{stLangTag, src[i+1 : j], i})
				i = j
				goto next
			}
			if strings.ContainsRune("{}()[].;,=<>!*+-/", rune(c)) {
				toks = append(toks, stok{stSymbol, string(c), i})
				i++
				goto next
			}
			return nil, fmt.Errorf("sparql: unexpected character %q at %d", c, i)
		next:
		}
	}
	toks = append(toks, stok{kind: stEOF, pos: len(src)})
	return toks, nil
}

func isPNCharBase(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isPNChar(c byte) bool {
	return isPNCharBase(c) || c >= '0' && c <= '9' || c == '-'
}

// ---- parser ----

type sparser struct {
	toks     []stok
	i        int
	prefixes rdf.PrefixMap
	bnodeSeq int
}

func (p *sparser) peek() stok { return p.toks[p.i] }
func (p *sparser) advance() stok {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func (p *sparser) errf(format string, args ...any) error {
	return fmt.Errorf("sparql: parse error near offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *sparser) acceptKeyword(kw string) bool {
	if p.peek().kind == stKeyword && p.peek().text == kw {
		p.advance()
		return true
	}
	return false
}

func (p *sparser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, got %q", kw, p.peek().text)
	}
	return nil
}

func (p *sparser) acceptSymbol(s string) bool {
	if p.peek().kind == stSymbol && p.peek().text == s {
		p.advance()
		return true
	}
	return false
}

func (p *sparser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return p.errf("expected %q, got %q", s, p.peek().text)
	}
	return nil
}

func (p *sparser) freshBlankVar() string {
	p.bnodeSeq++
	return fmt.Sprintf("_bn%d", p.bnodeSeq)
}

func (p *sparser) parseQuery() (*Query, error) {
	for p.acceptKeyword("PREFIX") {
		t := p.peek()
		if t.kind != stPName || !strings.HasSuffix(t.text, ":") {
			return nil, p.errf("expected prefix declaration, got %q", t.text)
		}
		p.advance()
		iri := p.peek()
		if iri.kind != stIRI {
			return nil, p.errf("expected IRI after prefix, got %q", iri.text)
		}
		p.advance()
		p.prefixes[strings.TrimSuffix(t.text, ":")] = iri.text
	}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{Prefixes: p.prefixes, Limit: -1}
	q.Distinct = p.acceptKeyword("DISTINCT")
	p.acceptKeyword("REDUCED")
	// projection
	for {
		t := p.peek()
		if t.kind == stSymbol && t.text == "*" {
			p.advance()
			q.Star = true
			break
		}
		if t.kind == stVar {
			p.advance()
			q.Items = append(q.Items, SelectItem{Var: t.text})
			continue
		}
		if t.kind == stSymbol && t.text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AS"); err != nil {
				return nil, err
			}
			v := p.peek()
			if v.kind != stVar {
				return nil, p.errf("expected variable after AS")
			}
			p.advance()
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			q.Items = append(q.Items, SelectItem{Var: v.text, Expr: e})
			continue
		}
		break
	}
	if !q.Star && len(q.Items) == 0 {
		return nil, p.errf("empty SELECT clause")
	}
	p.acceptKeyword("WHERE")
	pat, err := p.parseGroupGraphPattern()
	if err != nil {
		return nil, err
	}
	q.Pattern = pat
	if q.Star {
		for _, v := range PatternVars(pat) {
			if !strings.HasPrefix(v, "_bn") {
				q.Items = append(q.Items, SelectItem{Var: v})
			}
		}
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for p.peek().kind == stVar {
			q.GroupBy = append(q.GroupBy, p.advance().text)
		}
		if len(q.GroupBy) == 0 {
			return nil, p.errf("empty GROUP BY")
		}
	}
	if p.acceptKeyword("HAVING") {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		q.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			t := p.peek()
			switch {
			case t.kind == stKeyword && (t.text == "ASC" || t.text == "DESC"):
				p.advance()
				if err := p.expectSymbol("("); err != nil {
					return nil, err
				}
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				q.OrderBy = append(q.OrderBy, OrderKey{Expr: e, Desc: t.text == "DESC"})
			case t.kind == stVar:
				p.advance()
				q.OrderBy = append(q.OrderBy, OrderKey{Expr: &VarExpr{Name: t.text}})
			default:
				goto doneOrder
			}
		}
	doneOrder:
		if len(q.OrderBy) == 0 {
			return nil, p.errf("empty ORDER BY")
		}
	}
	if p.acceptKeyword("LIMIT") {
		n, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		q.Limit = n
	}
	if p.acceptKeyword("OFFSET") {
		n, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		q.Offset = n
	}
	if p.peek().kind != stEOF {
		return nil, p.errf("unexpected trailing input %q", p.peek().text)
	}
	return q, nil
}

func (p *sparser) parseInt() (int, error) {
	t := p.peek()
	if t.kind != stNumber {
		return 0, p.errf("expected number, got %q", t.text)
	}
	p.advance()
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, p.errf("bad integer %q", t.text)
	}
	return n, nil
}

// parseGroupGraphPattern parses { ... } including FILTER/OPTIONAL/UNION.
func (p *sparser) parseGroupGraphPattern() (GraphPattern, error) {
	if err := p.expectSymbol("{"); err != nil {
		return nil, err
	}
	var parts []GraphPattern
	cur := &BGP{}
	flush := func() {
		if len(cur.Triples) > 0 {
			parts = append(parts, cur)
			cur = &BGP{}
		}
	}
	var filters []Expr
	for {
		t := p.peek()
		switch {
		case t.kind == stSymbol && t.text == "}":
			p.advance()
			flush()
			var inner GraphPattern
			switch len(parts) {
			case 0:
				inner = &BGP{}
			case 1:
				inner = parts[0]
			default:
				inner = &Group{Parts: parts}
			}
			for _, f := range filters {
				inner = &Filter{Inner: inner, Cond: f}
			}
			return inner, nil
		case t.kind == stKeyword && t.text == "FILTER":
			p.advance()
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			filters = append(filters, e)
			p.acceptSymbol(".")
		case t.kind == stKeyword && t.text == "OPTIONAL":
			p.advance()
			right, err := p.parseGroupGraphPattern()
			if err != nil {
				return nil, err
			}
			flush()
			var left GraphPattern
			switch len(parts) {
			case 0:
				left = &BGP{}
			case 1:
				left = parts[0]
			default:
				left = &Group{Parts: parts}
			}
			parts = []GraphPattern{&Optional{Left: left, Right: right}}
			p.acceptSymbol(".")
		case t.kind == stSymbol && t.text == "{":
			sub, err := p.parseGroupGraphPattern()
			if err != nil {
				return nil, err
			}
			// possible UNION chain
			for p.acceptKeyword("UNION") {
				rhs, err := p.parseGroupGraphPattern()
				if err != nil {
					return nil, err
				}
				sub = &Union{Left: sub, Right: rhs}
			}
			flush()
			parts = append(parts, sub)
			p.acceptSymbol(".")
		default:
			// triples block
			if err := p.parseTriplesSameSubject(cur); err != nil {
				return nil, err
			}
			if !p.acceptSymbol(".") {
				// allowed before }
				if !(p.peek().kind == stSymbol && p.peek().text == "}") &&
					!(p.peek().kind == stKeyword && (p.peek().text == "FILTER" || p.peek().text == "OPTIONAL")) {
					return nil, p.errf("expected '.' or '}', got %q", p.peek().text)
				}
			}
		}
	}
}

// parseTriplesSameSubject parses subject propertyList.
func (p *sparser) parseTriplesSameSubject(bgp *BGP) error {
	subj, err := p.parseTermOrVarAllowBNode(bgp)
	if err != nil {
		return err
	}
	return p.parsePropertyList(bgp, subj, true)
}

func (p *sparser) parsePropertyList(bgp *BGP, subj TermOrVar, required bool) error {
	first := true
	for {
		t := p.peek()
		if t.kind == stSymbol && (t.text == "." || t.text == "}" || t.text == "]") {
			if first && required {
				return p.errf("expected predicate, got %q", t.text)
			}
			return nil
		}
		pred, err := p.parsePredicate()
		if err != nil {
			return err
		}
		// object list
		for {
			obj, err := p.parseTermOrVarAllowBNode(bgp)
			if err != nil {
				return err
			}
			bgp.Triples = append(bgp.Triples, TriplePattern{S: subj, P: pred, O: obj})
			if !p.acceptSymbol(",") {
				break
			}
		}
		first = false
		if !p.acceptSymbol(";") {
			return nil
		}
		// a dangling ';' before '.' or ']' is allowed
		if tt := p.peek(); tt.kind == stSymbol && (tt.text == "." || tt.text == "]" || tt.text == "}") {
			return nil
		}
	}
}

func (p *sparser) parsePredicate() (TermOrVar, error) {
	t := p.peek()
	switch {
	case t.kind == stKeyword && t.text == "A":
		p.advance()
		return T(rdf.NewIRI(rdf.RDFType)), nil
	case t.kind == stVar:
		p.advance()
		return V(t.text), nil
	case t.kind == stIRI:
		p.advance()
		return T(rdf.NewIRI(t.text)), nil
	case t.kind == stPName:
		p.advance()
		iri, err := p.prefixes.Expand(t.text)
		if err != nil {
			return TermOrVar{}, p.errf("%v", err)
		}
		return T(rdf.NewIRI(iri)), nil
	}
	return TermOrVar{}, p.errf("expected predicate, got %q", t.text)
}

// parseTermOrVarAllowBNode parses a node, expanding [ ... ] blank node
// property lists into fresh non-distinguished variables.
func (p *sparser) parseTermOrVarAllowBNode(bgp *BGP) (TermOrVar, error) {
	t := p.peek()
	switch t.kind {
	case stVar:
		p.advance()
		return V(t.text), nil
	case stIRI:
		p.advance()
		return T(rdf.NewIRI(t.text)), nil
	case stPName:
		p.advance()
		iri, err := p.prefixes.Expand(t.text)
		if err != nil {
			return TermOrVar{}, p.errf("%v", err)
		}
		return T(rdf.NewIRI(iri)), nil
	case stBlankLabel:
		p.advance()
		return V("_bnl_" + t.text), nil
	case stString:
		p.advance()
		lex := t.text
		if p.acceptSymbol("^^") {
			dt := p.peek()
			var dtIRI string
			switch dt.kind {
			case stIRI:
				dtIRI = dt.text
			case stPName:
				var err error
				dtIRI, err = p.prefixes.Expand(dt.text)
				if err != nil {
					return TermOrVar{}, p.errf("%v", err)
				}
			default:
				return TermOrVar{}, p.errf("expected datatype after ^^")
			}
			p.advance()
			return T(rdf.NewTypedLiteral(lex, dtIRI)), nil
		}
		if p.peek().kind == stLangTag {
			lang := p.advance()
			return T(rdf.NewLangLiteral(lex, lang.text)), nil
		}
		return T(rdf.NewLiteral(lex)), nil
	case stNumber:
		p.advance()
		if strings.Contains(t.text, ".") {
			return T(rdf.NewTypedLiteral(t.text, rdf.XSDDecimal)), nil
		}
		return T(rdf.NewTypedLiteral(t.text, rdf.XSDInteger)), nil
	case stKeyword:
		switch t.text {
		case "TRUE":
			p.advance()
			return T(rdf.NewTypedLiteral("true", rdf.XSDBoolean)), nil
		case "FALSE":
			p.advance()
			return T(rdf.NewTypedLiteral("false", rdf.XSDBoolean)), nil
		}
	case stSymbol:
		if t.text == "[" {
			p.advance()
			v := V(p.freshBlankVar())
			if p.acceptSymbol("]") {
				return v, nil
			}
			if err := p.parsePropertyList(bgp, v, true); err != nil {
				return TermOrVar{}, err
			}
			if err := p.expectSymbol("]"); err != nil {
				return TermOrVar{}, err
			}
			return v, nil
		}
	}
	return TermOrVar{}, p.errf("expected term, got %q", t.text)
}

// ---- expression parsing ----

func (p *sparser) parseExpr() (Expr, error) { return p.parseOrExpr() }

func (p *sparser) parseOrExpr() (Expr, error) {
	l, err := p.parseAndExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptSymbol("||") {
		r, err := p.parseAndExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "||", L: l, R: r}
	}
	return l, nil
}

func (p *sparser) parseAndExpr() (Expr, error) {
	l, err := p.parseRelExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptSymbol("&&") {
		r, err := p.parseRelExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "&&", L: l, R: r}
	}
	return l, nil
}

func (p *sparser) parseRelExpr() (Expr, error) {
	l, err := p.parseAddExpr()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == stSymbol {
		switch t.text {
		case "=", "!=", "<", "<=", ">", ">=":
			p.advance()
			r, err := p.parseAddExpr()
			if err != nil {
				return nil, err
			}
			return &BinExpr{Op: t.text, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *sparser) parseAddExpr() (Expr, error) {
	l, err := p.parseMulExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == stSymbol && (t.text == "+" || t.text == "-") {
			p.advance()
			r, err := p.parseMulExpr()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *sparser) parseMulExpr() (Expr, error) {
	l, err := p.parseUnaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == stSymbol && (t.text == "*" || t.text == "/") {
			p.advance()
			r, err := p.parseUnaryExpr()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *sparser) parseUnaryExpr() (Expr, error) {
	if p.acceptSymbol("!") {
		e, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	}
	t := p.peek()
	switch t.kind {
	case stVar:
		p.advance()
		return &VarExpr{Name: t.text}, nil
	case stSymbol:
		if t.text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case stKeyword:
		switch t.text {
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			p.advance()
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			agg := &AggExpr{Name: t.text}
			if p.acceptSymbol("*") {
				agg.Star = true
			} else {
				agg.Distinct = p.acceptKeyword("DISTINCT")
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				agg.Arg = arg
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return agg, nil
		case "BOUND", "STR", "LANG", "DATATYPE", "REGEX":
			p.advance()
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			call := &CallExpr{Name: t.text}
			if !p.acceptSymbol(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.acceptSymbol(",") {
						break
					}
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
			}
			return call, nil
		case "TRUE":
			p.advance()
			return &TermExpr{Term: rdf.NewTypedLiteral("true", rdf.XSDBoolean)}, nil
		case "FALSE":
			p.advance()
			return &TermExpr{Term: rdf.NewTypedLiteral("false", rdf.XSDBoolean)}, nil
		}
	}
	// concrete term
	tv, err := p.parseTermOrVarAllowBNode(&BGP{})
	if err != nil {
		return nil, err
	}
	if tv.IsVar() {
		return &VarExpr{Name: tv.Var}, nil
	}
	return &TermExpr{Term: tv.Term}, nil
}
