package sparql

import (
	"errors"
	"testing"

	"npdbench/internal/rdf"
	"npdbench/internal/triplestore"
)

// These tests pin down the SPARQL error/unbound semantics of the expression
// evaluator: type errors must eliminate solutions in FILTER context (never
// panic, never abort the whole query), logical operators must absorb errors
// per the three-valued truth tables, and OPTIONAL-scoped variables must be
// safe to reference in filters whether or not the optional part matched.

func v(name string) Expr            { return &VarExpr{Name: name} }
func lit(s string) Expr             { return &TermExpr{Term: rdf.NewLiteral(s)} }
func num(n int64) Expr              { return &TermExpr{Term: rdf.NewInteger(n)} }
func iriExpr(s string) Expr         { return &TermExpr{Term: rdf.NewIRI(s)} }
func bin(op string, l, r Expr) Expr { return &BinExpr{Op: op, L: l, R: r} }

// evalErr reports whether evaluating e under b yields a type error.
func evalErr(t *testing.T, e Expr, b Binding) bool {
	t.Helper()
	_, err := EvalExpr(e, b)
	if err != nil && !errors.Is(err, errTypeError) {
		t.Fatalf("EvalExpr(%s): unexpected non-type error %v", e, err)
	}
	return err != nil
}

func TestEvalUnboundVariableIsTypeError(t *testing.T) {
	b := Binding{"x": rdf.NewInteger(1)}
	if !evalErr(t, v("missing"), b) {
		t.Fatal("unbound variable should raise a type error")
	}
	// ...and in FILTER context the solution is eliminated, not kept.
	if FilterKeeps(bin(">", v("missing"), num(0)), b) {
		t.Fatal("filter over an unbound variable must drop the solution")
	}
}

func TestEvalCrossTypeComparison(t *testing.T) {
	b := Binding{
		"i": rdf.NewIRI("http://x/a"),
		"n": rdf.NewInteger(3),
		"s": rdf.NewLiteral("abc"),
	}
	// Ordering an IRI against a number is a type error, eliminating the row.
	if FilterKeeps(bin("<", v("i"), v("n")), b) {
		t.Fatal("IRI < number must not keep the solution")
	}
	if !evalErr(t, bin("<", v("i"), v("n")), b) {
		t.Fatal("IRI < number should be a type error, not a value")
	}
	// Equality falls back to term identity for incomparable kinds.
	got, err := EvalExpr(bin("=", v("i"), iriExpr("http://x/a")), b)
	if err != nil || got.Value != "true" {
		t.Fatalf("IRI = IRI identity: got %v, %v", got, err)
	}
	got, err = EvalExpr(bin("!=", v("i"), v("s")), b)
	if err != nil || got.Value != "true" {
		t.Fatalf("IRI != string identity: got %v, %v", got, err)
	}
	// Ordering a plain string against a number is likewise a type error.
	if FilterKeeps(bin(">=", v("s"), v("n")), b) {
		t.Fatal("string >= number must not keep the solution")
	}
}

func TestEvalArithmeticTypeErrors(t *testing.T) {
	b := Binding{"s": rdf.NewLiteral("abc"), "n": rdf.NewInteger(4)}
	if !evalErr(t, bin("+", v("s"), v("n")), b) {
		t.Fatal("string + number should be a type error")
	}
	if !evalErr(t, bin("/", v("n"), num(0)), b) {
		t.Fatal("division by zero should be a type error")
	}
	if FilterKeeps(bin(">", bin("/", v("n"), num(0)), num(1)), b) {
		t.Fatal("filter over a divide-by-zero must drop the solution")
	}
}

// The SPARQL three-valued truth tables: && and || recover from an errored
// operand when the other operand already determines the result.
func TestEvalLogicalErrorAbsorption(t *testing.T) {
	b := Binding{"n": rdf.NewInteger(1)}
	errExpr := bin(">", v("unbound"), num(0)) // always a type error
	trueExpr := bin("=", v("n"), num(1))
	falseExpr := bin("=", v("n"), num(2))

	cases := []struct {
		name string
		e    Expr
		want string // "true", "false", or "error"
	}{
		{"err && false", bin("&&", errExpr, falseExpr), "false"},
		{"false && err", bin("&&", falseExpr, errExpr), "false"},
		{"err && true", bin("&&", errExpr, trueExpr), "error"},
		{"true && err", bin("&&", trueExpr, errExpr), "error"},
		{"err || true", bin("||", errExpr, trueExpr), "true"},
		{"true || err", bin("||", trueExpr, errExpr), "true"},
		{"err || false", bin("||", errExpr, falseExpr), "error"},
		{"false || err", bin("||", falseExpr, errExpr), "error"},
	}
	for _, tc := range cases {
		got, err := EvalExpr(tc.e, b)
		switch tc.want {
		case "error":
			if err == nil {
				t.Errorf("%s: want type error, got %v", tc.name, got)
			}
			if FilterKeeps(tc.e, b) {
				t.Errorf("%s: errored filter must drop the solution", tc.name)
			}
		default:
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			} else if got.Value != tc.want {
				t.Errorf("%s: got %s, want %s", tc.name, got.Value, tc.want)
			}
		}
	}
}

func TestEvalNegationPropagatesErrors(t *testing.T) {
	b := Binding{}
	e := &NotExpr{E: bin(">", v("unbound"), num(0))}
	if !evalErr(t, e, b) {
		t.Fatal("!(error) should remain an error, not become true")
	}
	if FilterKeeps(e, b) {
		t.Fatal("!(error) in a filter must drop the solution")
	}
	// Negating a non-boolean without a sensible EBV is also an error.
	e = &NotExpr{E: iriExpr("http://x/a")}
	if !evalErr(t, e, b) {
		t.Fatal("!(IRI) should be a type error")
	}
}

func TestEvalEffectiveBooleanValue(t *testing.T) {
	b := Binding{
		"iri":     rdf.NewIRI("http://x/a"),
		"empty":   rdf.NewLiteral(""),
		"full":    rdf.NewLiteral("x"),
		"zero":    rdf.NewInteger(0),
		"badint":  rdf.NewTypedLiteral("notanumber", rdf.XSDInteger),
		"boolLit": rdf.NewTypedLiteral("true", rdf.XSDBoolean),
	}
	if FilterKeeps(v("iri"), b) {
		t.Fatal("an IRI has no effective boolean value")
	}
	if FilterKeeps(v("empty"), b) {
		t.Fatal("empty string EBV is false")
	}
	if !FilterKeeps(v("full"), b) {
		t.Fatal("non-empty string EBV is true")
	}
	if FilterKeeps(v("zero"), b) {
		t.Fatal("numeric zero EBV is false")
	}
	if FilterKeeps(v("badint"), b) {
		t.Fatal("malformed numeric literal EBV is a type error")
	}
	if !FilterKeeps(v("boolLit"), b) {
		t.Fatal("boolean true EBV is true")
	}
}

func TestEvalBoundBuiltin(t *testing.T) {
	b := Binding{"x": rdf.NewInteger(1)}
	keep := &CallExpr{Name: "BOUND", Args: []Expr{v("x")}}
	drop := &CallExpr{Name: "BOUND", Args: []Expr{v("y")}}
	if !FilterKeeps(keep, b) {
		t.Fatal("BOUND(?x) should keep a bound solution")
	}
	if FilterKeeps(drop, b) {
		t.Fatal("BOUND(?y) should drop an unbound solution")
	}
	if !FilterKeeps(&NotExpr{E: drop}, b) {
		t.Fatal("!BOUND(?y) should keep an unbound solution")
	}
}

// TestOptionalScopedFilter runs a full query over a triple store: a FILTER
// that references a variable bound only inside OPTIONAL must drop the rows
// where the optional part did not match (unbound => type error => drop),
// without panicking and without disturbing matched rows.
func TestOptionalScopedFilter(t *testing.T) {
	ns := "http://t/"
	st := triplestore.New()
	wellbore := rdf.NewIRI(ns + "Wellbore")
	year := rdf.NewIRI(ns + "year")
	rdfType := rdf.NewIRI(rdf.RDFType)
	w1 := rdf.NewIRI(ns + "w1")
	w2 := rdf.NewIRI(ns + "w2")
	w3 := rdf.NewIRI(ns + "w3")
	st.Add(rdf.Triple{S: w1, P: rdfType, O: wellbore})
	st.Add(rdf.Triple{S: w2, P: rdfType, O: wellbore})
	st.Add(rdf.Triple{S: w3, P: rdfType, O: wellbore})
	st.Add(rdf.Triple{S: w1, P: year, O: rdf.NewInteger(1995)})
	st.Add(rdf.Triple{S: w2, P: year, O: rdf.NewInteger(2010)})
	// w3 has no year: the optional arm leaves ?y unbound.

	q, err := Parse(`SELECT ?w ?y WHERE {
		?w a <http://t/Wellbore>
		OPTIONAL { ?w <http://t/year> ?y }
		FILTER (?y >= 2000)
	}`, nil)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Evaluate(q, st)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 {
		t.Fatalf("want exactly w2 to survive the filter, got %d rows:\n%s", rs.Len(), rs)
	}
	if got := rs.Rows[0][0].Value; got != ns+"w2" {
		t.Fatalf("surviving row is %s, want %sw2", got, ns)
	}

	// Without the filter all three wellbores appear, w3 with ?y unbound.
	q2, err := Parse(`SELECT ?w ?y WHERE {
		?w a <http://t/Wellbore>
		OPTIONAL { ?w <http://t/year> ?y }
	}`, nil)
	if err != nil {
		t.Fatal(err)
	}
	rs2, err := Evaluate(q2, st)
	if err != nil {
		t.Fatal(err)
	}
	if rs2.Len() != 3 {
		t.Fatalf("want 3 rows without the filter, got %d:\n%s", rs2.Len(), rs2)
	}
	unbound := 0
	for _, row := range rs2.Rows {
		if row[1].IsZero() {
			unbound++
		}
	}
	if unbound != 1 {
		t.Fatalf("want exactly one row with unbound ?y, got %d", unbound)
	}

	// BOUND lets a filter keep exactly the rows where the optional missed.
	q3, err := Parse(`SELECT ?w WHERE {
		?w a <http://t/Wellbore>
		OPTIONAL { ?w <http://t/year> ?y }
		FILTER (!BOUND(?y))
	}`, nil)
	if err != nil {
		t.Fatal(err)
	}
	rs3, err := Evaluate(q3, st)
	if err != nil {
		t.Fatal(err)
	}
	if rs3.Len() != 1 || rs3.Rows[0][0].Value != ns+"w3" {
		t.Fatalf("want only w3 via !BOUND, got:\n%s", rs3)
	}
}
