package sparql

import (
	"fmt"
	"math/rand"
	"testing"

	"npdbench/internal/rdf"
)

// randomGraph builds a random source over a fixed vocabulary.
func randomGraph(seed int64, n int) memSource {
	rng := rand.New(rand.NewSource(seed))
	knows := iri("knows")
	typ := rdf.NewIRI(rdf.RDFType)
	person := iri("Person")
	var g memSource
	seen := map[rdf.Triple]bool{}
	add := func(t rdf.Triple) {
		if !seen[t] {
			seen[t] = true
			g = append(g, t)
		}
	}
	for i := 0; i < n; i++ {
		s := iri(fmt.Sprintf("p%d", i))
		add(rdf.Triple{S: s, P: typ, O: person})
		add(rdf.Triple{S: s, P: iri("age"), O: rdf.NewInteger(int64(rng.Intn(60)))})
		for k := 0; k < rng.Intn(4); k++ {
			o := iri(fmt.Sprintf("p%d", rng.Intn(n)))
			add(rdf.Triple{S: s, P: knows, O: o})
		}
	}
	return g
}

// Property: DISTINCT is idempotent and never increases the result.
func TestDistinctIdempotent(t *testing.T) {
	for trial := int64(0); trial < 8; trial++ {
		g := randomGraph(trial, 12)
		q1 := MustParse(`SELECT ?a WHERE { ?a t:knows ?b }`, pm())
		q2 := MustParse(`SELECT DISTINCT ?a WHERE { ?a t:knows ?b }`, pm())
		r1, err := Evaluate(q1, g)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Evaluate(q2, g)
		if err != nil {
			t.Fatal(err)
		}
		if r2.Len() > r1.Len() {
			t.Fatalf("DISTINCT grew the result: %d > %d", r2.Len(), r1.Len())
		}
		seen := map[string]bool{}
		for _, row := range r2.Rows {
			k := row[0].String()
			if seen[k] {
				t.Fatalf("duplicate %s after DISTINCT", k)
			}
			seen[k] = true
		}
	}
}

// Property: OPTIONAL never loses left-side solutions.
func TestOptionalPreservesLeft(t *testing.T) {
	for trial := int64(0); trial < 8; trial++ {
		g := randomGraph(trial, 10)
		left := MustParse(`SELECT ?x WHERE { ?x a t:Person }`, pm())
		opt := MustParse(`SELECT ?x ?y WHERE { ?x a t:Person OPTIONAL { ?x t:knows ?y } }`, pm())
		rl, err := Evaluate(left, g)
		if err != nil {
			t.Fatal(err)
		}
		ro, err := Evaluate(opt, g)
		if err != nil {
			t.Fatal(err)
		}
		subjects := map[string]bool{}
		for _, row := range ro.Rows {
			subjects[row[0].String()] = true
		}
		for _, row := range rl.Rows {
			if !subjects[row[0].String()] {
				t.Fatalf("OPTIONAL dropped %s", row[0])
			}
		}
	}
}

// Property: FILTER commutes with itself and only removes rows.
func TestFilterMonotone(t *testing.T) {
	for trial := int64(0); trial < 8; trial++ {
		g := randomGraph(trial, 15)
		all := MustParse(`SELECT ?x ?a WHERE { ?x t:age ?a }`, pm())
		filt := MustParse(`SELECT ?x ?a WHERE { ?x t:age ?a . FILTER(?a >= 30) }`, pm())
		ra, err := Evaluate(all, g)
		if err != nil {
			t.Fatal(err)
		}
		rf, err := Evaluate(filt, g)
		if err != nil {
			t.Fatal(err)
		}
		if rf.Len() > ra.Len() {
			t.Fatalf("filter grew result")
		}
		for _, row := range rf.Rows {
			v, _ := NumericValue(row[1])
			if v < 30 {
				t.Fatalf("filter kept %v", row[1])
			}
		}
	}
}

// Property: GROUP BY COUNT sums to the unaggregated row count.
func TestGroupCountsSumToTotal(t *testing.T) {
	for trial := int64(0); trial < 8; trial++ {
		g := randomGraph(trial, 12)
		flat := MustParse(`SELECT ?x ?y WHERE { ?x t:knows ?y }`, pm())
		grouped := MustParse(`SELECT ?x (COUNT(?y) AS ?n) WHERE { ?x t:knows ?y } GROUP BY ?x`, pm())
		rf, err := Evaluate(flat, g)
		if err != nil {
			t.Fatal(err)
		}
		rg, err := Evaluate(grouped, g)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, row := range rg.Rows {
			v, ok := NumericValue(row[1])
			if !ok {
				t.Fatalf("non-numeric count %v", row[1])
			}
			sum += v
		}
		if int(sum) != rf.Len() {
			t.Fatalf("counts sum %d != %d rows", int(sum), rf.Len())
		}
	}
}
