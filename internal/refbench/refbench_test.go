package refbench

import "testing"

func TestAllBenchmarksParse(t *testing.T) {
	for _, b := range All() {
		queries, err := b.Queries()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if len(queries) < 4 {
			t.Fatalf("%s: only %d queries", b.Name, len(queries))
		}
	}
}

func TestTable3RowsMatchPaperShape(t *testing.T) {
	rows := map[string]Table3Row{}
	for _, b := range All() {
		row, err := Table3(b)
		if err != nil {
			t.Fatal(err)
		}
		rows[b.Name] = row
	}
	// Adolena: rich class hierarchy, poor property structure, no tree
	// witnesses (the paper's characterization).
	if rows["adolena"].Classes < 100 {
		t.Fatalf("adolena classes = %d, want a rich hierarchy", rows["adolena"].Classes)
	}
	if rows["adolena"].ObjProps > 10 {
		t.Fatalf("adolena must have few properties, got %d", rows["adolena"].ObjProps)
	}
	if rows["adolena"].MaxTreeWitness != 0 {
		t.Fatal("adolena queries must be devoid of tree witnesses")
	}
	// LUBM: ~43 classes; at least one query with existential reasoning.
	if c := rows["lubm"].Classes; c < 40 || c > 50 {
		t.Fatalf("lubm classes = %d, want ≈43", c)
	}
	if rows["lubm"].MaxTreeWitness == 0 {
		t.Fatal("lubm's graduate-course query admits a tree witness")
	}
	// DBpedia: large but shallow; no existentials.
	if rows["dbpedia"].Classes < 100 {
		t.Fatalf("dbpedia classes = %d", rows["dbpedia"].Classes)
	}
	if rows["dbpedia"].MaxTreeWitness != 0 {
		t.Fatal("dbpedia has no existential axioms")
	}
	// BSBM: tiny flat vocabulary, no inclusion axioms.
	if rows["bsbm"].InclusionAxioms != 0 {
		t.Fatalf("bsbm i-axioms = %d, want 0", rows["bsbm"].InclusionAxioms)
	}
	// FishMark: small ontology but the heaviest joins of the five.
	maxJoins := 0
	heaviest := ""
	for name, r := range rows {
		if r.MaxJoins > maxJoins {
			maxJoins, heaviest = r.MaxJoins, name
		}
	}
	if heaviest != "fishmark" {
		t.Fatalf("heaviest joins in %s (%d), want fishmark", heaviest, maxJoins)
	}
}
