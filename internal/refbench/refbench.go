// Package refbench reproduces the paper's Table 3: statistics of the five
// prior benchmarks the NPD benchmark is compared against (Adolena, LUBM,
// DBpedia, BSBM, FishMark). Each benchmark is rebuilt as a structurally
// faithful miniature — the real vocabulary and hierarchy shape, the real
// query shapes (joins, OPTIONALs, existential reasoning opportunities) —
// so the statistics extractor regenerates the table's qualitative content:
// which benchmarks have rich hierarchies, which queries join heavily, and
// which admit tree witnesses.
package refbench

import (
	"fmt"

	"npdbench/internal/owl"
	"npdbench/internal/rdf"
	"npdbench/internal/rewrite"
	"npdbench/internal/sparql"
)

// Benchmark bundles a reference benchmark's ontology and query set.
type Benchmark struct {
	Name     string
	NS       string
	Onto     *owl.Ontology
	QuerySrc []string
	Prefixes rdf.PrefixMap
}

// Queries parses the benchmark's query set.
func (b *Benchmark) Queries() ([]*sparql.Query, error) {
	out := make([]*sparql.Query, 0, len(b.QuerySrc))
	for i, src := range b.QuerySrc {
		q, err := sparql.Parse(src, b.Prefixes)
		if err != nil {
			return nil, fmt.Errorf("refbench %s query %d: %w", b.Name, i+1, err)
		}
		out = append(out, q)
	}
	return out, nil
}

// All returns the five reference benchmarks in the paper's row order.
func All() []*Benchmark {
	return []*Benchmark{Adolena(), LUBM(), DBpedia(), BSBM(), FishMark()}
}

func prefixesFor(ns string) rdf.PrefixMap {
	pm := rdf.StandardPrefixes()
	pm[""] = ns
	return pm
}

// ---------------------------------------------------------------- Adolena

// Adolena models the South African National Accessibility Portal ontology:
// a rich class hierarchy of assistive devices, abilities and disabilities,
// with a deliberately poor property structure (the paper: "queries over
// this ontology will usually be devoid of tree-witnesses").
func Adolena() *Benchmark {
	ns := "http://www.ksg.meraka.org.za/adolena.owl#"
	o := owl.New(ns)
	sub := func(c, p string) {
		o.AddSubClass(owl.NamedConcept(ns+c), owl.NamedConcept(ns+p))
	}
	sub("Device", "Thing")
	sub("Ability", "Thing")
	sub("Disability", "Thing")
	sub("Person", "Thing")
	deviceFamilies := map[string][]string{
		"MobilityDevice":      {"Wheelchair", "Walker", "Crutch", "Cane", "Scooter", "StairLift", "TransferBoard", "StandingFrame"},
		"HearingDevice":       {"HearingAid", "CochlearImplant", "FMSystem", "AlertingDevice", "Amplifier"},
		"VisualDevice":        {"Magnifier", "ScreenReader", "BrailleDisplay", "TalkingWatch", "WhiteCane", "CCTVReader"},
		"CommunicationDevice": {"SpeechSynthesizer", "CommunicationBoard", "TextTelephone", "VoiceAmplifier"},
		"DailyLivingDevice":   {"AdaptedUtensil", "DressingAid", "ReachingAid", "GrabRail", "BathLift"},
		"CognitiveDevice":     {"MemoryAid", "Scheduler", "TaskPrompter"},
	}
	for fam, members := range deviceFamilies {
		sub(fam, "Device")
		for _, m := range members {
			sub(m, fam)
			// two refinement levels to deepen the hierarchy
			sub("Electric"+m, m)
			sub("Manual"+m, m)
			sub("Portable"+m, m)
		}
	}
	abilities := []string{"Seeing", "Hearing", "Walking", "Speaking", "Learning", "Remembering", "Gripping", "Reaching"}
	for _, a := range abilities {
		sub(a+"Ability", "Ability")
		sub("Limited"+a+"Ability", a+"Ability")
		sub(a+"Disability", "Disability")
	}
	op := func(name, d, r string) {
		o.DeclareObjectProperty(ns + name)
		if d != "" {
			o.AddDomain(ns+name, false, ns+d)
		}
		if r != "" {
			o.AddRange(ns+name, ns+r)
		}
	}
	op("assistsWith", "Device", "Ability")
	op("compensatesFor", "Device", "Disability")
	op("hasDisability", "Person", "Disability")
	for _, dp := range []string{"deviceName", "supplier", "cost", "description"} {
		o.DeclareDataProperty(ns + dp)
	}
	return &Benchmark{
		Name: "adolena", NS: ns, Onto: o, Prefixes: prefixesFor(ns),
		QuerySrc: []string{
			`SELECT ?d WHERE { ?d a :MobilityDevice }`,
			`SELECT ?d ?a WHERE { ?d a :Device . ?d :assistsWith ?a }`,
			`SELECT ?d ?n WHERE { ?d a :HearingDevice ; :deviceName ?n ; :assistsWith ?a . ?a a :HearingAbility }`,
			`SELECT ?p ?d WHERE { ?p a :Person ; :hasDisability ?x . ?d :compensatesFor ?x . ?d a :VisualDevice }`,
		},
	}
}

// ------------------------------------------------------------------ LUBM

// LUBM rebuilds the Lehigh University Benchmark ontology (43 classes, 32
// properties) and a representative subset of its 14 queries.
func LUBM() *Benchmark {
	ns := "http://swat.cse.lehigh.edu/onto/univ-bench.owl#"
	o := owl.New(ns)
	sub := func(c, p string) {
		o.AddSubClass(owl.NamedConcept(ns+c), owl.NamedConcept(ns+p))
	}
	chains := [][]string{
		{"Employee", "Person"}, {"Faculty", "Employee"},
		{"Professor", "Faculty"}, {"FullProfessor", "Professor"},
		{"AssociateProfessor", "Professor"}, {"AssistantProfessor", "Professor"},
		{"VisitingProfessor", "Professor"}, {"Lecturer", "Faculty"},
		{"PostDoc", "Faculty"}, {"Chair", "Professor"}, {"Dean", "Professor"},
		{"Director", "Person"}, {"Student", "Person"},
		{"UndergraduateStudent", "Student"}, {"GraduateStudent", "Person"},
		{"TeachingAssistant", "Person"}, {"ResearchAssistant", "Person"},
		{"Organization", "Thing"}, {"University", "Organization"},
		{"Department", "Organization"}, {"Institute", "Organization"},
		{"College", "Organization"}, {"Program", "Organization"},
		{"ResearchGroup", "Organization"}, {"Work", "Thing"},
		{"Course", "Work"}, {"GraduateCourse", "Course"},
		{"Research", "Work"}, {"Publication", "Thing"},
		{"Article", "Publication"}, {"JournalArticle", "Article"},
		{"ConferencePaper", "Article"}, {"TechnicalReport", "Article"},
		{"Book", "Publication"}, {"Manual", "Publication"},
		{"Software", "Publication"}, {"Specification", "Publication"},
		{"UnofficialPublication", "Publication"}, {"Schedule", "Thing"},
		{"AdministrativeStaff", "Employee"}, {"ClericalStaff", "AdministrativeStaff"},
		{"SystemsStaff", "AdministrativeStaff"},
	}
	for _, c := range chains {
		sub(c[0], c[1])
	}
	op := func(name, d, r string) {
		o.DeclareObjectProperty(ns + name)
		if d != "" {
			o.AddDomain(ns+name, false, ns+d)
		}
		if r != "" {
			o.AddRange(ns+name, ns+r)
		}
	}
	op("worksFor", "Employee", "Organization")
	op("memberOf", "Person", "Organization")
	o.AddSubObjectProperty(owl.PropRef{Prop: ns + "worksFor"}, owl.PropRef{Prop: ns + "memberOf"})
	op("headOf", "Person", "Organization")
	o.AddSubObjectProperty(owl.PropRef{Prop: ns + "headOf"}, owl.PropRef{Prop: ns + "worksFor"})
	op("subOrganizationOf", "Organization", "Organization")
	op("undergraduateDegreeFrom", "Person", "University")
	op("mastersDegreeFrom", "Person", "University")
	op("doctoralDegreeFrom", "Person", "University")
	op("degreeFrom", "Person", "University")
	for _, d := range []string{"undergraduateDegreeFrom", "mastersDegreeFrom", "doctoralDegreeFrom"} {
		o.AddSubObjectProperty(owl.PropRef{Prop: ns + d}, owl.PropRef{Prop: ns + "degreeFrom"})
	}
	op("advisor", "Person", "Professor")
	op("takesCourse", "Student", "Course")
	op("teacherOf", "Faculty", "Course")
	op("teachingAssistantOf", "TeachingAssistant", "Course")
	op("publicationAuthor", "Publication", "Person")
	op("researchProject", "ResearchGroup", "Research")
	op("orgPublication", "Organization", "Publication")
	op("softwareDocumentation", "Software", "Publication")
	op("hasAlumnus", "University", "Person")
	o.AddInverse(ns+"hasAlumnus", ns+"degreeFrom")
	// GraduateStudent takes some GraduateCourse (existential)
	o.AddExistential(owl.NamedConcept(ns+"GraduateStudent"), ns+"takesCourse", false, ns+"GraduateCourse")
	o.AddExistential(owl.NamedConcept(ns+"Faculty"), ns+"worksFor", false, ns+"Department")
	for _, dp := range []string{"name", "emailAddress", "telephone", "age", "title", "officeNumber", "researchInterest"} {
		o.DeclareDataProperty(ns + dp)
	}
	return &Benchmark{
		Name: "lubm", NS: ns, Onto: o, Prefixes: prefixesFor(ns),
		QuerySrc: []string{
			// LUBM q1
			`SELECT ?x WHERE { ?x a :GraduateStudent . ?x :takesCourse <http://www.Department0.University0.edu/GraduateCourse0> }`,
			// LUBM q2
			`SELECT ?x ?y ?z WHERE { ?x a :GraduateStudent . ?y a :University . ?z a :Department . ?x :memberOf ?z . ?z :subOrganizationOf ?y . ?x :undergraduateDegreeFrom ?y }`,
			// LUBM q4
			`SELECT ?x ?n ?e ?t WHERE { ?x a :Professor . ?x :worksFor <http://www.Department0.University0.edu> . ?x :name ?n . ?x :emailAddress ?e . ?x :telephone ?t }`,
			// LUBM q8
			`SELECT ?x ?y ?e WHERE { ?x a :Student . ?y a :Department . ?x :memberOf ?y . ?y :subOrganizationOf <http://www.University0.edu> . ?x :emailAddress ?e }`,
			// LUBM q9
			`SELECT ?x ?y ?z WHERE { ?x a :Student . ?y a :Faculty . ?z a :Course . ?x :advisor ?y . ?y :teacherOf ?z . ?x :takesCourse ?z }`,
			// existential flavour: every graduate student takes some course
			`SELECT ?x WHERE { ?x a :GraduateStudent . ?x :takesCourse [ a :GraduateCourse ] }`,
		},
	}
}

// --------------------------------------------------------------- DBpedia

// DBpedia rebuilds the DBpedia benchmark shape: a large but shallow
// ontology (the paper: "relatively large yet simple, not suitable for
// reasoning w.r.t. existentials") and queries drawn from the public
// endpoint's most frequent shapes.
func DBpedia() *Benchmark {
	ns := "http://dbpedia.org/ontology/"
	o := owl.New(ns)
	sub := func(c, p string) {
		o.AddSubClass(owl.NamedConcept(ns+c), owl.NamedConcept(ns+p))
	}
	families := map[string][]string{
		"Person":                 {"Artist", "Athlete", "Politician", "Scientist", "Writer", "Journalist", "Architect", "Astronaut", "Chef", "Cleric", "Criminal", "Economist", "Engineer", "Historian", "Judge", "Lawyer", "Model", "Monarch", "Philosopher", "Pilot"},
		"Artist":                 {"Actor", "Comedian", "ComicsCreator", "Dancer", "MusicalArtist", "Painter", "Photographer", "Sculptor"},
		"Athlete":                {"BaseballPlayer", "BasketballPlayer", "Boxer", "Cyclist", "GolfPlayer", "SoccerPlayer", "Swimmer", "TennisPlayer", "Wrestler", "Skier"},
		"Place":                  {"PopulatedPlace", "NaturalPlace", "Building", "Infrastructure", "ProtectedArea"},
		"PopulatedPlace":         {"Settlement", "Country", "Region", "Island", "Continent"},
		"Settlement":             {"City", "Town", "Village"},
		"NaturalPlace":           {"Mountain", "River", "Lake", "Volcano", "Valley", "Glacier", "Cave"},
		"Organisation":           {"Company", "EducationalInstitution", "SportsTeam", "Band", "PoliticalParty", "Broadcaster", "Airline", "Publisher", "RecordLabel", "Non-ProfitOrganisation"},
		"EducationalInstitution": {"University", "School", "College", "Library"},
		"Work":                   {"Film", "MusicalWork", "WrittenWork", "TelevisionShow", "Software", "VideoGame", "Artwork", "Musical"},
		"MusicalWork":            {"Album", "Song", "Single"},
		"WrittenWork":            {"Novel", "Poem", "Play", "Magazine", "Newspaper", "AcademicJournal"},
		"Species":                {"Animal", "Plant", "Fungus", "Bacteria"},
		"Animal":                 {"Mammal", "Bird", "Fish", "Reptile", "Amphibian", "Insect"},
		"Event":                  {"SportsEvent", "MilitaryConflict", "Election", "FilmFestival", "MusicFestival"},
		"Device":                 {"Automobile", "Aircraft", "Ship", "Locomotive", "Weapon", "Camera"},
	}
	for parent, kids := range families {
		sub(parent, "Thing")
		for _, k := range kids {
			sub(k, parent)
		}
	}
	for _, p := range []string{"birthPlace", "deathPlace", "country", "location", "starring", "director", "author", "artist", "genre", "team", "league", "producer", "writer", "spouse", "child", "parent", "successor", "predecessor", "capital", "largestCity", "headquarter", "owner", "operator", "builder", "developer", "publisher", "recordLabel", "album", "hometown", "nationality", "almaMater", "occupation", "knownFor", "award", "influenced", "influencedBy", "relative", "partner", "employer", "club"} {
		o.DeclareObjectProperty(ns + p)
	}
	for _, p := range []string{"name", "birthDate", "deathDate", "populationTotal", "areaTotal", "elevation", "runtime", "budget", "gross", "numberOfEmployees", "foundingYear", "abstract", "height", "weight", "length", "width", "releaseDate", "isbn", "salary"} {
		o.DeclareDataProperty(ns + p)
	}
	return &Benchmark{
		Name: "dbpedia", NS: ns, Onto: o, Prefixes: prefixesFor(ns),
		QuerySrc: []string{
			`SELECT ?p WHERE { ?p a :Person . ?p :birthPlace ?c . ?c a :City }`,
			`SELECT ?f ?d WHERE { ?f a :Film . ?f :director ?d . OPTIONAL { ?f :runtime ?r } }`,
			`SELECT ?s ?n WHERE { ?s a :SoccerPlayer ; :name ?n ; :team ?t . ?t :league ?l . OPTIONAL { ?s :birthDate ?b } }`,
			`SELECT ?c ?p WHERE { ?c a :Country . ?c :capital ?cap . OPTIONAL { ?c :populationTotal ?p } }`,
		},
	}
}

// ------------------------------------------------------------------ BSBM

// BSBM rebuilds the Berlin SPARQL Benchmark e-commerce vocabulary (the
// paper: "no ontology to measure reasoning tasks, rather simple queries").
func BSBM() *Benchmark {
	ns := "http://www4.wiwiss.fu-berlin.de/bizer/bsbm/v01/vocabulary/"
	o := owl.New(ns)
	for _, c := range []string{"Product", "ProductType", "ProductFeature", "Producer", "Vendor", "Offer", "Review", "Person"} {
		o.DeclareClass(ns + c)
	}
	for _, p := range []string{"productFeature", "producer", "vendor", "offerOf", "reviewFor", "reviewer", "type"} {
		o.DeclareObjectProperty(ns + p)
	}
	for _, p := range []string{"label", "comment", "productPropertyNumeric1", "productPropertyNumeric2", "productPropertyTextual1", "price", "validFrom", "validTo", "deliveryDays", "rating1", "rating2", "reviewDate", "publishDate", "country"} {
		o.DeclareDataProperty(ns + p)
	}
	return &Benchmark{
		Name: "bsbm", NS: ns, Onto: o, Prefixes: prefixesFor(ns),
		QuerySrc: []string{
			// BSBM Q1-like
			`SELECT ?p ?l WHERE { ?p a :Product ; :label ?l ; :productFeature ?f1 ; :productPropertyNumeric1 ?v . FILTER(?v > 100) }`,
			// BSBM Q2-like (wide star)
			`SELECT ?l ?c ?pr ?f WHERE { ?p a :Product ; :label ?l ; :comment ?c ; :producer ?prod . ?prod :label ?pr . ?p :productFeature ?f }`,
			// BSBM Q7-like (offers + reviews with OPTIONALs)
			`SELECT ?o ?price ?r WHERE { ?o :offerOf ?p ; :price ?price ; :vendor ?v . OPTIONAL { ?rev :reviewFor ?p ; :rating1 ?r } }`,
			// BSBM Q8-like
			`SELECT ?rev ?rd WHERE { ?rev :reviewFor ?p ; :reviewer ?person ; :reviewDate ?rd . ?person :country ?c . FILTER(?c = "US") }`,
		},
	}
}

// -------------------------------------------------------------- FishMark

// FishMark rebuilds the FishBase benchmark shape: a small flat ontology
// but heavily joined queries (the paper: "more complex than those from
// BSBM").
func FishMark() *Benchmark {
	ns := "http://fishdelish.cs.man.ac.uk/rdf/vocab/"
	o := owl.New(ns)
	for _, c := range []string{"Species", "Genus", "Family", "Order", "Class", "Country", "Ecosystem", "CommonName", "Occurrence", "Morphology", "Picture", "Reference"} {
		o.DeclareClass(ns + c)
	}
	o.AddSubClass(owl.NamedConcept(ns+"Species"), owl.NamedConcept(ns+"Taxon"))
	o.AddSubClass(owl.NamedConcept(ns+"Genus"), owl.NamedConcept(ns+"Taxon"))
	o.AddSubClass(owl.NamedConcept(ns+"Family"), owl.NamedConcept(ns+"Taxon"))
	for _, p := range []string{"genus", "family", "order", "inCountry", "inEcosystem", "commonNameOf", "occurrenceOf", "morphologyOf", "pictureOf", "referenceFor"} {
		o.DeclareObjectProperty(ns + p)
	}
	for _, p := range []string{"scientificName", "vernacularName", "language", "maxLength", "maxWeight", "maxAge", "depthRangeShallow", "depthRangeDeep", "vulnerability", "resilience", "pictureUrl", "author", "year"} {
		o.DeclareDataProperty(ns + p)
	}
	return &Benchmark{
		Name: "fishmark", NS: ns, Onto: o, Prefixes: prefixesFor(ns),
		QuerySrc: []string{
			// heavy join chain, FishMark style
			`SELECT ?sn ?cn ?fam ?cty WHERE { ?s a :Species ; :scientificName ?sn ; :genus ?g . ?g :family ?f . ?f :scientificName ?fam . ?c :commonNameOf ?s ; :vernacularName ?cn ; :language ?lang . ?occ :occurrenceOf ?s ; :inCountry ?k . ?k :scientificName ?cty . FILTER(?lang = "English") }`,
			`SELECT ?sn ?len ?dep WHERE { ?s a :Species ; :scientificName ?sn . ?m :morphologyOf ?s ; :maxLength ?len ; :depthRangeDeep ?dep . FILTER(?len > 100) }`,
			`SELECT ?sn ?url ?auth WHERE { ?s a :Species ; :scientificName ?sn . ?p :pictureOf ?s ; :pictureUrl ?url . OPTIONAL { ?r :referenceFor ?s ; :author ?auth } }`,
			`SELECT ?fam ?cnt WHERE { ?s a :Species ; :genus ?g . ?g :family ?f . ?f :scientificName ?fam . ?occ :occurrenceOf ?s ; :inEcosystem ?e . ?e :scientificName ?cnt . OPTIONAL { ?m :morphologyOf ?s ; :vulnerability ?v } OPTIONAL { ?c :commonNameOf ?s ; :vernacularName ?vn } }`,
		},
	}
}

// Table3Row is one row of the paper's Table 3.
type Table3Row struct {
	Name            string
	Classes         int
	ObjProps        int
	DataProps       int
	InclusionAxioms int
	MaxJoins        int
	MaxOptionals    int
	MaxTreeWitness  int
}

// Table3 computes the statistics row for one benchmark: ontology totals
// plus per-query maxima over joins, OPTIONALs and tree witnesses.
func Table3(b *Benchmark) (Table3Row, error) {
	st := b.Onto.Stats()
	row := Table3Row{
		Name:            b.Name,
		Classes:         st.Classes,
		ObjProps:        st.ObjectProps,
		DataProps:       st.DataProps,
		InclusionAxioms: st.InclusionAxioms,
	}
	queries, err := b.Queries()
	if err != nil {
		return row, err
	}
	rw := &rewrite.Rewriter{Onto: b.Onto, Existential: true}
	for _, q := range queries {
		qs := q.ComputeStats()
		if qs.Joins > row.MaxJoins {
			row.MaxJoins = qs.Joins
		}
		if qs.Optionals > row.MaxOptionals {
			row.MaxOptionals = qs.Optionals
		}
		tw := countTreeWitnesses(rw, b.Onto, q)
		if tw > row.MaxTreeWitness {
			row.MaxTreeWitness = tw
		}
	}
	return row, nil
}

// countTreeWitnesses sums tree witnesses over the query's BGP leaves.
func countTreeWitnesses(rw *rewrite.Rewriter, onto *owl.Ontology, q *sparql.Query) int {
	total := 0
	var walk func(p sparql.GraphPattern)
	walk = func(p sparql.GraphPattern) {
		switch x := p.(type) {
		case *sparql.BGP:
			var answer []string
			for _, v := range sparql.PatternVars(x) {
				if len(v) < 3 || v[:3] != "_bn" {
					answer = append(answer, v)
				}
			}
			cq, err := rewrite.FromBGP(x, onto, answer)
			if err != nil {
				return
			}
			res, err := rw.Rewrite(cq, answer)
			if err != nil {
				return
			}
			total += res.TreeWitnesses
		case *sparql.Group:
			for _, part := range x.Parts {
				walk(part)
			}
		case *sparql.Filter:
			walk(x.Inner)
		case *sparql.Optional:
			walk(x.Left)
			walk(x.Right)
		case *sparql.Union:
			walk(x.Left)
			walk(x.Right)
		}
	}
	walk(q.Pattern)
	return total
}
