// Package rdf provides the RDF data model used throughout the OBDA stack:
// IRIs, typed literals, blank nodes, triples, and an interning term store
// that keeps large virtual-instance materializations compact.
package rdf

import (
	"fmt"
	"sort"
	"strings"
)

// TermKind distinguishes the three RDF term categories.
type TermKind uint8

// Term kinds.
const (
	IRI TermKind = iota
	Literal
	Blank
)

// Well-known namespaces.
const (
	RDFNS  = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	RDFSNS = "http://www.w3.org/2000/01/rdf-schema#"
	OWLNS  = "http://www.w3.org/2002/07/owl#"
	XSDNS  = "http://www.w3.org/2001/XMLSchema#"

	RDFType = RDFNS + "type"

	XSDString  = XSDNS + "string"
	XSDInteger = XSDNS + "integer"
	XSDDecimal = XSDNS + "decimal"
	XSDDouble  = XSDNS + "double"
	XSDBoolean = XSDNS + "boolean"
	XSDDate    = XSDNS + "date"
)

// Term is an RDF term. Terms are value types; two terms are equal iff their
// fields are equal, so Term is directly usable as a map key.
type Term struct {
	Kind TermKind
	// Value holds the IRI string, the literal lexical form, or the blank
	// node label.
	Value string
	// Datatype holds the literal datatype IRI ("" means xsd:string).
	Datatype string
	// Lang holds the literal language tag, if any.
	Lang string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: IRI, Value: iri} }

// NewLiteral returns a plain string literal.
func NewLiteral(lex string) Term { return Term{Kind: Literal, Value: lex} }

// NewTypedLiteral returns a literal with an explicit datatype.
func NewTypedLiteral(lex, datatype string) Term {
	return Term{Kind: Literal, Value: lex, Datatype: datatype}
}

// NewLangLiteral returns a language-tagged literal.
func NewLangLiteral(lex, lang string) Term {
	return Term{Kind: Literal, Value: lex, Lang: lang}
}

// NewBlank returns a blank node with the given label.
func NewBlank(label string) Term { return Term{Kind: Blank, Value: label} }

// NewInteger returns an xsd:integer literal.
func NewInteger(v int64) Term {
	return NewTypedLiteral(fmt.Sprintf("%d", v), XSDInteger)
}

// IsIRI reports whether t is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRI }

// IsLiteral reports whether t is a literal.
func (t Term) IsLiteral() bool { return t.Kind == Literal }

// IsBlank reports whether t is a blank node.
func (t Term) IsBlank() bool { return t.Kind == Blank }

// IsZero reports whether t is the zero Term (no term at all).
func (t Term) IsZero() bool { return t == Term{} }

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + t.Value + ">"
	case Blank:
		return "_:" + t.Value
	case Literal:
		s := `"` + escapeLiteral(t.Value) + `"`
		if t.Lang != "" {
			return s + "@" + t.Lang
		}
		if t.Datatype != "" && t.Datatype != XSDString {
			return s + "^^<" + t.Datatype + ">"
		}
		return s
	}
	return "?"
}

func escapeLiteral(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`, "\r", `\r`, "\t", `\t`)
	return r.Replace(s)
}

// LocalName returns the fragment or last path segment of an IRI.
func (t Term) LocalName() string {
	if t.Kind != IRI {
		return t.Value
	}
	if i := strings.LastIndexAny(t.Value, "#/"); i >= 0 && i+1 < len(t.Value) {
		return t.Value[i+1:]
	}
	return t.Value
}

// Triple is an RDF statement.
type Triple struct {
	S, P, O Term
}

func (tr Triple) String() string {
	return tr.S.String() + " " + tr.P.String() + " " + tr.O.String() + " ."
}

// CompareTerms orders terms for deterministic output: IRIs < blanks <
// literals, then lexicographically.
func CompareTerms(a, b Term) int {
	if a.Kind != b.Kind {
		return int(a.Kind) - int(b.Kind)
	}
	if c := strings.Compare(a.Value, b.Value); c != 0 {
		return c
	}
	if c := strings.Compare(a.Datatype, b.Datatype); c != 0 {
		return c
	}
	return strings.Compare(a.Lang, b.Lang)
}

// SortTriples orders triples S-P-O for deterministic serialization.
func SortTriples(ts []Triple) {
	sort.Slice(ts, func(i, j int) bool {
		if c := CompareTerms(ts[i].S, ts[j].S); c != 0 {
			return c < 0
		}
		if c := CompareTerms(ts[i].P, ts[j].P); c != 0 {
			return c < 0
		}
		return CompareTerms(ts[i].O, ts[j].O) < 0
	})
}

// PrefixMap maps prefixes to namespace IRIs for compact rendering and the
// query/mapping parsers.
type PrefixMap map[string]string

// StandardPrefixes returns the ubiquitous prefix bindings.
func StandardPrefixes() PrefixMap {
	return PrefixMap{
		"rdf":  RDFNS,
		"rdfs": RDFSNS,
		"owl":  OWLNS,
		"xsd":  XSDNS,
	}
}

// Expand resolves a prefixed name ("npdv:Wellbore") against the map; IRIs
// wrapped in <> are returned verbatim.
func (pm PrefixMap) Expand(qname string) (string, error) {
	if strings.HasPrefix(qname, "<") && strings.HasSuffix(qname, ">") {
		return qname[1 : len(qname)-1], nil
	}
	i := strings.Index(qname, ":")
	if i < 0 {
		return "", fmt.Errorf("rdf: %q is not a prefixed name", qname)
	}
	ns, ok := pm[qname[:i]]
	if !ok {
		return "", fmt.Errorf("rdf: unknown prefix %q", qname[:i])
	}
	return ns + qname[i+1:], nil
}

// Compact renders an IRI using the longest matching prefix, falling back to
// <iri> form.
func (pm PrefixMap) Compact(iri string) string {
	best, bestNS := "", ""
	for p, ns := range pm {
		if strings.HasPrefix(iri, ns) && len(ns) > len(bestNS) {
			best, bestNS = p, ns
		}
	}
	if bestNS == "" {
		return "<" + iri + ">"
	}
	local := iri[len(bestNS):]
	if strings.ContainsAny(local, "/#") {
		return "<" + iri + ">"
	}
	return best + ":" + local
}
