package rdf

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTermStringNTriples(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{NewIRI("http://x/a"), "<http://x/a>"},
		{NewLiteral("hi"), `"hi"`},
		{NewTypedLiteral("5", XSDInteger), `"5"^^<http://www.w3.org/2001/XMLSchema#integer>`},
		{NewLangLiteral("hei", "no"), `"hei"@no`},
		{NewBlank("b1"), "_:b1"},
		{NewLiteral("a\"b\n"), `"a\"b\n"`},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String(%v) = %s, want %s", c.term, got, c.want)
		}
	}
}

func TestLocalName(t *testing.T) {
	if NewIRI("http://x/v#Frag").LocalName() != "Frag" {
		t.Fatal("fragment")
	}
	if NewIRI("http://x/path/leaf").LocalName() != "leaf" {
		t.Fatal("path")
	}
}

func TestPrefixMapExpandCompact(t *testing.T) {
	pm := StandardPrefixes()
	pm["npdv"] = "http://vocab/"
	iri, err := pm.Expand("npdv:Wellbore")
	if err != nil || iri != "http://vocab/Wellbore" {
		t.Fatalf("expand: %q %v", iri, err)
	}
	if _, err := pm.Expand("unknown:X"); err == nil {
		t.Fatal("unknown prefix must error")
	}
	if got, _ := pm.Expand("<http://raw/iri>"); got != "http://raw/iri" {
		t.Fatalf("angle-bracket passthrough: %q", got)
	}
	if got := pm.Compact("http://vocab/Wellbore"); got != "npdv:Wellbore" {
		t.Fatalf("compact: %q", got)
	}
	if got := pm.Compact("http://elsewhere/x"); got != "<http://elsewhere/x>" {
		t.Fatalf("compact fallback: %q", got)
	}
}

func TestCompareTermsTotalOrder(t *testing.T) {
	f := func(a, b string) bool {
		x, y := NewIRI(a), NewIRI(b)
		return CompareTerms(x, y) == -CompareTerms(y, x) &&
			(CompareTerms(x, y) == 0) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// kinds are ordered IRI < blank < literal
	if CompareTerms(NewIRI("z"), NewLiteral("a")) >= 0 {
		t.Fatal("IRIs sort before literals")
	}
}

func TestSortTriplesDeterministic(t *testing.T) {
	ts := []Triple{
		{S: NewIRI("b"), P: NewIRI("p"), O: NewIRI("x")},
		{S: NewIRI("a"), P: NewIRI("q"), O: NewIRI("y")},
		{S: NewIRI("a"), P: NewIRI("p"), O: NewIRI("z")},
	}
	SortTriples(ts)
	if ts[0].S.Value != "a" || ts[0].P.Value != "p" || ts[2].S.Value != "b" {
		t.Fatalf("order %v", ts)
	}
	var sb strings.Builder
	for _, tr := range ts {
		sb.WriteString(tr.String())
		sb.WriteByte('\n')
	}
	if !strings.Contains(sb.String(), "<a> <p> <z> .") {
		t.Fatalf("serialization:\n%s", sb.String())
	}
}

func TestTermIsZero(t *testing.T) {
	var z Term
	if !z.IsZero() {
		t.Fatal("zero term")
	}
	if NewLiteral("").IsZero() {
		t.Fatal("empty literal is not the zero term")
	}
}

func TestNTriplesRoundTrip(t *testing.T) {
	triples := []Triple{
		{S: NewIRI("http://x/a"), P: NewIRI("http://x/p"), O: NewIRI("http://x/b")},
		{S: NewIRI("http://x/a"), P: NewIRI("http://x/name"), O: NewLiteral("Ann \"A\"\nB")},
		{S: NewBlank("n1"), P: NewIRI("http://x/v"), O: NewTypedLiteral("5", XSDInteger)},
		{S: NewIRI("http://x/c"), P: NewIRI("http://x/l"), O: NewLangLiteral("hei", "no")},
	}
	var buf strings.Builder
	if err := WriteNTriples(&buf, triples); err != nil {
		t.Fatal(err)
	}
	back, err := ParseNTriples(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("%v\ninput:\n%s", err, buf.String())
	}
	if len(back) != len(triples) {
		t.Fatalf("count %d != %d", len(back), len(triples))
	}
	for i := range triples {
		if back[i] != triples[i] {
			t.Fatalf("triple %d: %v != %v", i, back[i], triples[i])
		}
	}
}

func TestNTriplesSkipsCommentsAndErrors(t *testing.T) {
	src := "# comment\n\n<http://a> <http://p> \"x\" .\n"
	ts, err := ParseNTriples(strings.NewReader(src))
	if err != nil || len(ts) != 1 {
		t.Fatalf("%v %d", err, len(ts))
	}
	for _, bad := range []string{
		"<http://a> <http://p>",
		"<http://a> \"notpred\" <http://b> .",
		"<http://a> <http://p> \"unterminated .",
		"junk",
	} {
		if _, err := ParseNTriples(strings.NewReader(bad)); err == nil {
			t.Errorf("expected error for %q", bad)
		}
	}
}
