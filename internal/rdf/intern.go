package rdf

import "sync"

// The interning term store promised by the package doc: a sharded pool of
// canonical string backings. Materializing a virtual instance (or building
// the sqldb columnar dictionaries over one) produces the same lexical forms
// over and over — IRI templates differ only in their key infix, literal
// columns repeat heavily — and interning collapses every recurrence onto
// one backing array. Shards keep the pool cheap under concurrent loaders.

const internShards = 16

type internShard struct {
	mu sync.RWMutex
	m  map[string]string
}

var internPool = func() [internShards]*internShard {
	var p [internShards]*internShard
	for i := range p {
		p[i] = &internShard{m: make(map[string]string)}
	}
	return p
}()

// Intern returns a canonical copy of s: every call with an equal string
// yields the identical backing, so callers holding many repeats of the
// same lexical form keep one allocation instead of one per occurrence.
func Intern(s string) string {
	if s == "" {
		return ""
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	sh := internPool[h%internShards]
	sh.mu.RLock()
	c, ok := sh.m[s]
	sh.mu.RUnlock()
	if ok {
		return c
	}
	sh.mu.Lock()
	if c, ok = sh.m[s]; !ok {
		// Clone onto a fresh backing so the pool never pins a caller's
		// larger buffer (a substring would keep its whole parent alive).
		c = string(append([]byte(nil), s...))
		sh.m[s] = c
	}
	sh.mu.Unlock()
	return c
}
