package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteNTriples serializes triples in N-Triples syntax, one statement per
// line. The caller controls ordering (use SortTriples for canonical dumps).
func WriteNTriples(w io.Writer, triples []Triple) error {
	bw := bufio.NewWriter(w)
	for _, t := range triples {
		if _, err := bw.WriteString(t.String()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadNTriples parses N-Triples from r, invoking emit for every statement.
// Comment lines (#...) and blank lines are skipped.
func ReadNTriples(r io.Reader, emit func(Triple)) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := parseNTLine(line)
		if err != nil {
			return fmt.Errorf("rdf: line %d: %w", lineNo, err)
		}
		emit(t)
	}
	return sc.Err()
}

// ParseNTriples reads all statements into a slice.
func ParseNTriples(r io.Reader) ([]Triple, error) {
	var out []Triple
	err := ReadNTriples(r, func(t Triple) { out = append(out, t) })
	return out, err
}

func parseNTLine(line string) (Triple, error) {
	p := &ntParser{s: line}
	s, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	pred, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	if !pred.IsIRI() {
		return Triple{}, fmt.Errorf("predicate must be an IRI, got %s", pred)
	}
	o, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	p.skipWS()
	if !strings.HasPrefix(p.s[p.i:], ".") {
		return Triple{}, fmt.Errorf("missing terminating '.'")
	}
	return Triple{S: s, P: pred, O: o}, nil
}

type ntParser struct {
	s string
	i int
}

func (p *ntParser) skipWS() {
	for p.i < len(p.s) && (p.s[p.i] == ' ' || p.s[p.i] == '\t') {
		p.i++
	}
}

func (p *ntParser) term() (Term, error) {
	p.skipWS()
	if p.i >= len(p.s) {
		return Term{}, fmt.Errorf("unexpected end of statement")
	}
	switch p.s[p.i] {
	case '<':
		end := strings.IndexByte(p.s[p.i:], '>')
		if end < 0 {
			return Term{}, fmt.Errorf("unterminated IRI")
		}
		iri := p.s[p.i+1 : p.i+end]
		p.i += end + 1
		return NewIRI(iri), nil
	case '_':
		if p.i+1 >= len(p.s) || p.s[p.i+1] != ':' {
			return Term{}, fmt.Errorf("bad blank node")
		}
		j := p.i + 2
		for j < len(p.s) && p.s[j] != ' ' && p.s[j] != '\t' {
			j++
		}
		label := p.s[p.i+2 : j]
		p.i = j
		return NewBlank(label), nil
	case '"':
		var sb strings.Builder
		j := p.i + 1
		for j < len(p.s) {
			c := p.s[j]
			if c == '\\' && j+1 < len(p.s) {
				switch p.s[j+1] {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case 'r':
					sb.WriteByte('\r')
				case '"':
					sb.WriteByte('"')
				case '\\':
					sb.WriteByte('\\')
				default:
					sb.WriteByte(p.s[j+1])
				}
				j += 2
				continue
			}
			if c == '"' {
				break
			}
			sb.WriteByte(c)
			j++
		}
		if j >= len(p.s) {
			return Term{}, fmt.Errorf("unterminated literal")
		}
		p.i = j + 1
		lex := sb.String()
		// datatype or language tag?
		if strings.HasPrefix(p.s[p.i:], "^^<") {
			end := strings.IndexByte(p.s[p.i+3:], '>')
			if end < 0 {
				return Term{}, fmt.Errorf("unterminated datatype IRI")
			}
			dt := p.s[p.i+3 : p.i+3+end]
			p.i += 3 + end + 1
			return NewTypedLiteral(lex, dt), nil
		}
		if strings.HasPrefix(p.s[p.i:], "@") {
			j := p.i + 1
			for j < len(p.s) && p.s[j] != ' ' && p.s[j] != '\t' {
				j++
			}
			lang := p.s[p.i+1 : j]
			p.i = j
			return NewLangLiteral(lex, lang), nil
		}
		return NewLiteral(lex), nil
	}
	return Term{}, fmt.Errorf("unexpected character %q", p.s[p.i])
}
