package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// passIterClose ports repolint's iterator-hygiene rule onto the typed
// driver: a value obtained from an Open*/*Iterator/*Rows call must be
// Closed (directly or deferred) within the same function, or handed onward
// (returned, stored, passed) for the caller to close. The typed gate — the
// bound value's method set must actually contain Close — kills the old
// rule's known false-positive mode, where any *Rows-suffixed helper
// returning a plain slice or count tripped the naming heuristic.
func passIterClose() *Pass {
	return &Pass{
		Name: "iterclose",
		Doc:  "closable values from Open*/*Iterator/*Rows calls never Closed",
		Sev:  SevWarning,
		Run: func(c *Context) {
			for _, file := range c.Pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					fd, ok := n.(*ast.FuncDecl)
					if ok && fd.Body != nil {
						checkIterators(c, fd.Body)
					}
					return true
				})
			}
		},
	}
}

// iteratorCallName reports the callee name when a call looks like it yields
// a resource that must be closed: Open*(...), *Iterator(...), *Rows(...).
func iteratorCallName(call *ast.CallExpr) (string, bool) {
	var name string
	switch f := call.Fun.(type) {
	case *ast.Ident:
		name = f.Name
	case *ast.SelectorExpr:
		name = f.Sel.Name
	default:
		return "", false
	}
	if strings.HasPrefix(name, "Open") ||
		strings.HasSuffix(name, "Iterator") ||
		strings.HasSuffix(name, "Rows") {
		return name, true
	}
	return "", false
}

// checkIterators flags variables bound to closable iterator-yielding calls
// that are never Closed in the function body and never escape it.
func checkIterators(c *Context, body *ast.BlockStmt) {
	type obtained struct {
		name string
		node ast.Node
		from string
	}
	var opened []obtained
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, ok := iteratorCallName(call)
		if !ok {
			return true
		}
		for i, l := range as.Lhs {
			id, okID := l.(*ast.Ident)
			if !okID || id.Name == "_" {
				continue
			}
			// The typed gate: only values that can actually be Closed are
			// tracked; the error half of a (it, err) pair is skipped by it.
			if !hasCloseMethod(c.TypeOf(as.Lhs[i])) {
				continue
			}
			opened = append(opened, obtained{name: id.Name, node: as, from: callee})
			break // the first closable binding is the iterator
		}
		return true
	})
	if len(opened) == 0 {
		return
	}
	closed := map[string]bool{}
	escaped := map[string]bool{}
	markIdent := func(e ast.Expr, set map[string]bool) {
		if id, ok := e.(*ast.Ident); ok {
			set[id.Name] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
				markIdent(sel.X, closed)
				return true
			}
			for _, arg := range x.Args {
				markIdent(arg, escaped)
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				markIdent(r, escaped)
			}
		case *ast.AssignStmt:
			// Re-assignment onward (v.field = it, other = it) hands it off.
			for _, r := range x.Rhs {
				if _, isCall := r.(*ast.CallExpr); !isCall {
					markIdent(r, escaped)
				}
			}
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					markIdent(kv.Value, escaped)
				} else {
					markIdent(el, escaped)
				}
			}
		}
		return true
	})
	for _, o := range opened {
		if closed[o.name] || escaped[o.name] {
			continue
		}
		c.Report(o.node, fmt.Sprintf(
			"closable value %q from %s is never Closed in this function (and does not escape)",
			o.name, o.from))
	}
}
