package lint

import (
	"go/ast"
	"go/types"
)

// srvhygiene forbids the two http-server shortcuts that do not survive
// production traffic: bare http.ListenAndServe (a server with no read,
// header, or idle timeouts — one slow client holds a connection forever)
// and the package-global http.DefaultServeMux (any imported package can
// register handlers on it; net/http/pprof does exactly that on import).
// Long-running endpoints must build an explicit *http.Server over an
// explicit *http.ServeMux. The rule guards the upcoming SPARQL endpoint
// the same way it fixed cmd/mixer's metrics listener.
func passSrvHygiene() *Pass {
	p := &Pass{
		Name: "srvhygiene",
		Doc:  "forbid bare http.ListenAndServe and http.DefaultServeMux in server code",
		Sev:  SevWarning,
	}
	p.Run = func(c *Context) {
		for _, file := range c.Pkg.Files {
			ast.Inspect(file, func(node ast.Node) bool {
				sel, ok := node.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj := c.ObjectOf(sel.Sel)
				if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "net/http" {
					return true
				}
				switch o := obj.(type) {
				case *types.Func:
					// Methods ((*http.Server).ListenAndServe) are the fix,
					// not the finding: only package-level functions count.
					if sig, ok := o.Type().(*types.Signature); !ok || sig.Recv() != nil {
						return true
					}
					switch o.Name() {
					case "ListenAndServe", "ListenAndServeTLS":
						c.Report(sel, "bare http."+o.Name()+" has no timeouts; build an explicit *http.Server with Read/Header/Idle timeouts")
					case "Handle", "HandleFunc":
						c.Report(sel, "http."+o.Name()+" registers on the global DefaultServeMux; use an explicit *http.ServeMux")
					}
				case *types.Var:
					if o.Name() == "DefaultServeMux" {
						c.Report(sel, "http.DefaultServeMux is a process-global mux (pprof registers on it via import); use an explicit *http.ServeMux")
					}
				}
				return true
			})
		}
	}
	return p
}
