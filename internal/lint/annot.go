package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// The annotation grammar (documented in DESIGN.md):
//
//	//lint:ignore <pass> <reason>     on or directly above a line: suppress
//	                                  that pass's diagnostics for the line
//	// guarded by <mu>                on a struct field: the field may only
//	                                  be accessed with <mu> (a sibling
//	                                  mutex field) held  [lockguard]
//	//lint:shared <prose>             on a slice-typed struct field: values
//	                                  may alias shared storage; in-place
//	                                  mutation requires freshening first
//	                                  [sharedmut]
//	//lint:mutates <param>            on a function: the function mutates
//	                                  <param>'s shared backing in place;
//	                                  callers must pass owned (freshened)
//	                                  values  [sharedmut]
//	//lint:holds <mu>                 on a method: callers hold the
//	                                  receiver's <mu>; guarded fields of
//	                                  the receiver are accessible, and
//	                                  call sites are checked instead
//	                                  [lockguard]
//	//lint:go-allowed <reason>        anywhere in a file: go statements in
//	                                  this file are the sanctioned spawn
//	                                  point (still checked for cooperative
//	                                  stop)  [gohygiene]
var guardedRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// annotations is the per-package index of every lint directive and
// annotation, resolved to type objects where possible.
type annotations struct {
	// ignores maps file name -> line -> suppressions declared on that line.
	ignores map[string]map[int][]*Suppression
	// guards maps a struct field object to the name of the sibling mutex
	// field guarding it.
	guards map[*types.Var]string
	// shared is the set of struct fields whose values may alias shared
	// storage (the sharedmut ownership domain).
	shared map[*types.Var]bool
	// mutates maps a function object to the parameter/receiver names it
	// declares in-place mutation of.
	mutates map[*types.Func][]string
	// holds maps a method object to the receiver mutex name its callers
	// must hold.
	holds map[*types.Func]string
	// goAllowed is the set of files carrying a go-allowed directive.
	goAllowed map[*ast.File]bool
}

// directive splits "//lint:<verb> <args...>"; ok is false for any other
// comment.
func directive(c *ast.Comment) (verb, args string, ok bool) {
	text := strings.TrimPrefix(c.Text, "//")
	text = strings.TrimSpace(text)
	rest, found := strings.CutPrefix(text, "lint:")
	if !found {
		return "", "", false
	}
	verb, args, _ = strings.Cut(rest, " ")
	return verb, strings.TrimSpace(args), true
}

// annotate indexes every annotation in the package.
func annotate(fset *token.FileSet, pkg *Package) *annotations {
	ann := &annotations{
		ignores:   map[string]map[int][]*Suppression{},
		guards:    map[*types.Var]string{},
		shared:    map[*types.Var]bool{},
		mutates:   map[*types.Func][]string{},
		holds:     map[*types.Func]string{},
		goAllowed: map[*ast.File]bool{},
	}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				verb, args, ok := directive(c)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				switch verb {
				case "ignore":
					pass, reason, _ := strings.Cut(args, " ")
					if pass == "" {
						continue
					}
					byLine := ann.ignores[pos.Filename]
					if byLine == nil {
						byLine = map[int][]*Suppression{}
						ann.ignores[pos.Filename] = byLine
					}
					byLine[pos.Line] = append(byLine[pos.Line], &Suppression{
						Pass: pass, Reason: strings.TrimSpace(reason), Pos: pos,
					})
				case "go-allowed":
					ann.goAllowed[file] = true
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.StructType:
				ann.indexFields(pkg, x)
			case *ast.FuncDecl:
				ann.indexFunc(pkg, x)
			}
			return true
		})
	}
	return ann
}

// indexFields records guarded-by and shared annotations on struct fields.
func (ann *annotations) indexFields(pkg *Package, st *ast.StructType) {
	for _, field := range st.Fields.List {
		var mu string
		shared := false
		for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
			if cg == nil {
				continue
			}
			for _, c := range cg.List {
				if m := guardedRe.FindStringSubmatch(c.Text); m != nil {
					mu = m[1]
				}
				if verb, _, ok := directive(c); ok && verb == "shared" {
					shared = true
				}
			}
		}
		if mu == "" && !shared {
			continue
		}
		for _, name := range field.Names {
			obj, ok := pkg.Info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			if mu != "" {
				ann.guards[obj] = mu
			}
			if shared {
				ann.shared[obj] = true
			}
		}
	}
}

// indexFunc records mutates/holds annotations from a function's doc.
func (ann *annotations) indexFunc(pkg *Package, fd *ast.FuncDecl) {
	if fd.Doc == nil {
		return
	}
	obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	for _, c := range fd.Doc.List {
		verb, args, ok := directive(c)
		if !ok {
			continue
		}
		switch verb {
		case "mutates":
			for _, p := range strings.Fields(args) {
				ann.mutates[obj] = append(ann.mutates[obj], p)
			}
		case "holds":
			if f := strings.Fields(args); len(f) > 0 {
				ann.holds[obj] = f[0]
			}
		}
	}
}

// suppressionsFor returns the directives covering a diagnostic: same file,
// same line or the line directly above.
func (ann *annotations) suppressionsFor(d Diagnostic) []*Suppression {
	byLine := ann.ignores[d.Pos.Filename]
	if byLine == nil {
		return nil
	}
	var out []*Suppression
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, s := range byLine[line] {
			if s.Pass == d.Pass {
				out = append(out, s)
			}
		}
	}
	return out
}

// allSuppressions flattens the directive index in deterministic order.
func (ann *annotations) allSuppressions() []*Suppression {
	var out []*Suppression
	for _, byLine := range ann.ignores {
		for _, ss := range byLine {
			out = append(out, ss...)
		}
	}
	return out
}
