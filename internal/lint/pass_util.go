package lint

import (
	"go/ast"
	"go/types"
)

// exprString renders an expression canonically; the aliasing and lock
// passes key their state on these renderings, so `sh.mu.Lock()` guards a
// later `sh.entries` access through the shared "sh" spelling.
func exprString(e ast.Expr) string {
	return types.ExprString(e)
}

// hasCloseMethod reports whether t's method set (through a pointer if
// needed) contains a niladic-or-not Close method — the typed gate of the
// iterator-close pass.
func hasCloseMethod(t types.Type) bool {
	if t == nil {
		return false
	}
	ms := types.NewMethodSet(t)
	if _, ok := t.Underlying().(*types.Pointer); !ok {
		if _, isIface := t.Underlying().(*types.Interface); !isIface {
			ms = types.NewMethodSet(types.NewPointer(t))
		}
	}
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == "Close" {
			return true
		}
	}
	return false
}

// namedType unwraps pointers and aliases down to the *types.Named beneath,
// nil when there is none.
func namedType(t types.Type) *types.Named {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			return x
		case *types.Alias:
			t = types.Unalias(x)
		default:
			return nil
		}
	}
}

// isPkgFunc reports whether the call's callee is the named function of the
// named package (matched by import path).
func isPkgFunc(c *Context, call *ast.CallExpr, pkgPath string, names ...string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := c.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return "", false
	}
	for _, n := range names {
		if fn.Name() == n {
			return n, true
		}
	}
	return "", false
}
