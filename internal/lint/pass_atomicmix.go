package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// passAtomicMix is the atomic-consistency analysis: a variable or field
// accessed through sync/atomic anywhere in the package must never be read
// or written non-atomically anywhere else — mixed access is a data race
// even when every write happens to be atomic (the pool's ExecStats class
// of bug, fixed in PR 5 by moving every counter to typed atomics). The
// pass runs in two phases over the whole package: phase one collects
// every variable whose address is passed to a sync/atomic operation,
// phase two flags every other syntactic use of those variables.
func passAtomicMix() *Pass {
	return &Pass{
		Name: "atomicmix",
		Doc:  "variables accessed both atomically and non-atomically",
		Sev:  SevError,
		Run: func(c *Context) {
			// Phase 1: every `atomic.Op(&x, ...)` argument position.
			atomicVars := map[*types.Var]string{} // var -> atomic op seen
			atomicUses := map[token.Pos]bool{}    // idents sanctioned by phase 1
			for _, file := range c.Pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					fn, ok := c.ObjectOf(sel.Sel).(*types.Func)
					if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
						return true
					}
					for _, arg := range call.Args {
						un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
						if !ok || un.Op != token.AND {
							continue
						}
						v, id := resolveVar(c, un.X)
						if v == nil {
							continue
						}
						atomicVars[v] = fn.Name()
						atomicUses[id.Pos()] = true
					}
					return true
				})
			}
			if len(atomicVars) == 0 {
				return
			}
			// Phase 2: any other use of those variables is a plain access.
			for _, file := range c.Pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					id, ok := n.(*ast.Ident)
					if !ok {
						return true
					}
					v, ok := c.ObjectOf(id).(*types.Var)
					if !ok {
						return true
					}
					op, isAtomic := atomicVars[v]
					if !isAtomic || atomicUses[id.Pos()] {
						return true
					}
					// The declaration itself is not an access.
					if c.Pkg.Info.Defs[id] != nil {
						return true
					}
					c.Report(id, fmt.Sprintf(
						"%q is accessed with sync/atomic.%s elsewhere; this non-atomic access races with it",
						id.Name, op))
					return true
				})
			}
		},
	}
}

// resolveVar resolves &x or &s.f down to the variable/field object and the
// identifier naming it.
func resolveVar(c *Context, e ast.Expr) (*types.Var, *ast.Ident) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := c.ObjectOf(x).(*types.Var); ok {
			return v, x
		}
	case *ast.SelectorExpr:
		if sel, ok := c.Pkg.Info.Selections[x]; ok {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v, x.Sel
			}
		}
	case *ast.IndexExpr:
		return resolveVar(c, x.X)
	}
	return nil, nil
}
