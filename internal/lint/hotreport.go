package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The hot-path allocation analysis measures statically what the
// vectorized-executor work (ROADMAP item 3) must eliminate dynamically:
// per-row heap allocations on the operator paths of internal/sqldb. It
// starts from the operator entry points (scan/filter/join/dedup/aggregate/
// sort and plan construction), takes the forward call-graph closure, and
// classifies every allocation site found inside a loop of a reachable
// function. The result feeds two consumers: the hotalloc pass, which
// surfaces each (function, kind) group as an info-severity diagnostic, and
// `repolint -hotreport`, which renders the full ranked work list and is
// golden-pinned in ci so the list only changes deliberately.

// HotEntry is one (function, allocation-kind) group of the report.
type HotEntry struct {
	Func  string // deterministic function key (package path + name)
	Kind  string // allocation kind: make, composite, closure, fmt.*, append, defer, iface-box, alloc-call
	Sites int    // number of distinct source sites
	Score int    // kind weight × loop depth, summed over sites
	Pos   token.Position
	Pkg   *Package
	first ast.Node
}

// kind weights: relative per-iteration cost classes, used only for ranking.
func hotKindWeight(kind string) int {
	switch {
	case kind == "defer":
		return 5
	case strings.HasPrefix(kind, "fmt."):
		return 4
	case kind == "make", kind == "composite", kind == "closure", kind == "iface-box":
		return 3
	default: // append, alloc-call
		return 2
	}
}

// hotRoot reports whether fn is an operator entry point of the execution
// layer.
func hotRoot(n *FuncNode) bool {
	if !strings.HasSuffix(n.Pkg.Path, "internal/sqldb") {
		return false
	}
	name := n.Fn.Name()
	if name == "buildRef" {
		return true
	}
	lower := strings.ToLower(name)
	for _, op := range []string{"scan", "filter", "join", "dedup", "distinct", "aggregate", "sort"} {
		if strings.Contains(lower, op) {
			return true
		}
	}
	return false
}

// hotEntries runs the analysis over the whole module.
func hotEntries(ip *Interp) []HotEntry {
	var roots []*FuncNode
	for _, n := range ip.Graph.BottomUp {
		if hotRoot(n) {
			roots = append(roots, n)
		}
	}
	reach := ip.Graph.Reachable(roots)

	type groupKey struct {
		fn   *FuncNode
		kind string
	}
	groups := map[groupKey]*HotEntry{}
	record := func(n *FuncNode, kind string, depth int, site ast.Node) {
		k := groupKey{n, kind}
		g := groups[k]
		if g == nil {
			g = &HotEntry{
				Func:  n.Pkg.Path + "." + n.Fn.Name(),
				Kind:  kind,
				Pos:   ip.Mod.Fset.Position(site.Pos()),
				Pkg:   n.Pkg,
				first: site,
			}
			g.Pos.Filename = relPath(ip.Mod.Root, g.Pos.Filename)
			groups[k] = g
		}
		g.Sites++
		g.Score += hotKindWeight(kind) * depth
	}

	for _, n := range ip.Graph.BottomUp {
		if !reach[n] {
			continue
		}
		walkLoopSites(ip, n, func(kind string, depth int, site ast.Node) {
			record(n, kind, depth, site)
		})
	}

	out := make([]HotEntry, 0, len(groups))
	for _, g := range groups {
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		return a.Kind < b.Kind
	})
	return out
}

// walkLoopSites classifies every allocation site inside a loop of the
// function body, tracking loop nesting depth via ast.Inspect's push/pop
// protocol.
func walkLoopSites(ip *Interp, n *FuncNode, visit func(kind string, depth int, site ast.Node)) {
	info := n.Pkg.Info
	depth := 0
	var stack []ast.Node
	isLoop := func(node ast.Node) bool {
		switch node.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		}
		return false
	}
	classify := func(node ast.Node) {
		switch x := node.(type) {
		case *ast.DeferStmt:
			visit("defer", depth, x)
		case *ast.FuncLit:
			visit("closure", depth, x)
		case *ast.CompositeLit:
			visit("composite", depth, x)
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok {
				switch id.Name {
				case "make", "new":
					visit("make", depth, x)
					return
				case "append":
					if len(x.Args) > 0 && !preallocatedDest(n, x.Args[0]) {
						visit("append", depth, x)
					}
					return
				}
			}
			if name, ok := isPkgFunc2(n.Pkg, x, "fmt", "Sprintf", "Sprint", "Sprintln", "Errorf", "Appendf", "Fprintf"); ok {
				visit("fmt."+name, depth, x)
				return
			}
			// Interface boxing: a concrete argument passed where the
			// parameter type is an interface forces a heap conversion.
			for range boxedArgs(info, x) {
				visit("iface-box", depth, x)
			}
			// A module callee that allocates on every call charges its
			// cost to this loop.
			if cs := ip.SummaryOf(callee(info, x)); cs != nil && cs.Allocates {
				visit("alloc-call", depth, x)
			}
		}
	}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		if node == nil {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if isLoop(top) {
				depth--
			}
			return true
		}
		if depth >= 1 {
			classify(node)
		}
		if isLoop(node) {
			depth++
		}
		stack = append(stack, node)
		return true
	})
}

// boxedArgs returns the argument indices of a call that undergo a
// concrete-to-interface conversion. fmt formatting calls are excluded —
// they are already classified as fmt allocations.
func boxedArgs(info *types.Info, call *ast.CallExpr) []int {
	if _, isFmt := isPkgFunc2FromInfo(info, call, "fmt"); isFmt {
		return nil
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return nil
	}
	var out []int
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			last := sig.Params().At(sig.Params().Len() - 1)
			if call.Ellipsis.IsValid() {
				pt = last.Type()
			} else if sl, ok := last.Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < sig.Params().Len():
			pt = sig.Params().At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, ok := pt.Underlying().(*types.Interface); !ok {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || at == types.Typ[types.UntypedNil] {
			continue
		}
		if _, argIsIface := at.Underlying().(*types.Interface); argIsIface {
			continue
		}
		if basic, ok := at.(*types.Basic); ok && basic.Info()&types.IsUntyped != 0 {
			// Untyped constants convert at compile time when possible;
			// still a box for non-empty values, but too noisy to count.
			continue
		}
		out = append(out, i)
	}
	return out
}

// isPkgFunc2FromInfo reports whether the call's static callee lives in the
// given package.
func isPkgFunc2FromInfo(info *types.Info, call *ast.CallExpr, pkgPath string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return "", false
	}
	return fn.Name(), true
}

// preallocatedDest reports whether an append destination visibly carries
// preallocated capacity: a local whose every binding is make-with-cap, a
// capacity-preserving reslice (x[:0]), or an append chain over one.
func preallocatedDest(n *FuncNode, dest ast.Expr) bool {
	id, ok := ast.Unparen(dest).(*ast.Ident)
	if !ok {
		return false
	}
	obj, ok := n.Pkg.Info.Uses[id].(*types.Var)
	if !ok {
		if obj, ok = n.Pkg.Info.Defs[id].(*types.Var); !ok {
			return false
		}
	}
	pre := false
	any := false
	forEachAssign(n, obj, func(rhs ast.Expr) {
		any = true
		if rhs == nil {
			return
		}
		switch x := ast.Unparen(rhs).(type) {
		case *ast.CallExpr:
			if fid, ok := x.Fun.(*ast.Ident); ok {
				if fid.Name == "make" && len(x.Args) == 3 {
					pre = true
				}
				if fid.Name == "append" && len(x.Args) > 0 {
					// x = append(x, ...) is neutral: capacity comes from
					// whatever other binding initialized x.
					if inner, ok := ast.Unparen(x.Args[0]).(*ast.Ident); ok && n.Pkg.Info.Uses[inner] == obj {
						return
					}
					pre = preallocatedDest(n, x.Args[0]) || pre
				}
			}
		case *ast.SliceExpr:
			// buf[:0] reslices preserve capacity.
			pre = true
		}
	})
	return any && pre
}

// RenderHotReport renders the ranked work list (top max entries; 0 means
// all) in a canonical, golden-diffable layout.
func RenderHotReport(entries []HotEntry, max int) string {
	if max <= 0 || max > len(entries) {
		max = len(entries)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "hotalloc report: %d per-iteration allocation group(s) on operator-reachable paths\n", len(entries))
	if max < len(entries) {
		fmt.Fprintf(&b, "(showing top %d)\n", max)
	}
	for i, e := range entries[:max] {
		fmt.Fprintf(&b, "%4d  score %-4d sites %-3d %-12s %-44s %s:%d\n",
			i+1, e.Score, e.Sites, e.Kind, e.Func, e.Pos.Filename, e.Pos.Line)
	}
	return b.String()
}
