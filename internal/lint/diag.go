// Package lint is the repository's typed static-analysis engine: it loads
// the whole module through go/parser + go/types + go/importer (stdlib only,
// no external tooling), runs an ordered catalog of type-aware passes over
// every package, and emits severity-ranked diagnostics. The engine exists
// because PRs 4–5 fixed by hand exactly the bug classes a typed analyzer
// catches mechanically — shared-storage aliasing, unguarded field access,
// mixed atomic/plain access, stray goroutines — and ROADMAP item 1 (a
// long-running server under sustained concurrent load) raises the cost of
// every such latent bug. cmd/repolint is the CLI driver; ci.sh gates on it
// in -strict mode against a golden repo report, mirroring obdalint's
// contract for the benchmark artifacts.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"time"
)

// Severity ranks diagnostics. Errors are bug-class findings (aliasing, lock
// discipline, atomics, goroutine hygiene); warnings are discipline findings
// (iterator close, discarded errors, timing funnel). -strict mode fails on
// both.
type Severity int

const (
	SevInfo Severity = iota
	SevWarning
	SevError
)

func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	default:
		return "info"
	}
}

// Diagnostic is one finding of one pass.
type Diagnostic struct {
	Pass string
	Sev  Severity
	Pos  token.Position
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s: %s", d.Pos.Filename, d.Pos.Line, d.Pass, d.Sev, d.Msg)
}

// Suppression is one //lint:ignore directive encountered in the tree,
// whether or not it matched a diagnostic. -strict mode cross-checks the
// list against an explicit allowlist so suppressions stay documented.
type Suppression struct {
	Pass   string
	Reason string
	Pos    token.Position
	Used   bool
}

func (s Suppression) String() string {
	state := "unused"
	if s.Used {
		state = "used"
	}
	return fmt.Sprintf("%s:%d: [%s] suppressed (%s): %s", s.Pos.Filename, s.Pos.Line, s.Pass, state, s.Reason)
}

// Report is the outcome of one engine run: surviving diagnostics, the
// diagnostics silenced by directives, every directive seen, the ranked
// hot-path allocation entries, and the per-phase wall times (the ci timing
// budget gates on their sum).
type Report struct {
	Diags        []Diagnostic
	Suppressed   []Diagnostic
	Suppressions []Suppression

	// Hot is the ranked hot-path allocation work list behind
	// `repolint -hotreport` (nil under RunIntra).
	Hot []HotEntry

	Packages      int
	Files         int
	LoadTime      time.Duration
	CallgraphTime time.Duration
	SummaryTime   time.Duration
	PassTime      time.Duration
}

// sortDiags orders diagnostics for stable output: file, line, pass, message.
func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		return a.Msg < b.Msg
	})
}

// Count returns the number of surviving diagnostics at the given severity.
func (r *Report) Count(sev Severity) int {
	n := 0
	for _, d := range r.Diags {
		if d.Sev == sev {
			n++
		}
	}
	return n
}

// Summary is the one-line human digest (also the JSON summary field).
func (r *Report) Summary() string {
	return fmt.Sprintf("repolint: %d package(s), %d file(s): %d error(s), %d warning(s), %d info, %d suppressed",
		r.Packages, r.Files, r.Count(SevError), r.Count(SevWarning), r.Count(SevInfo), len(r.Suppressed))
}

// String renders the full text report: diagnostics, suppression inventory,
// summary line. The rendering is canonical (sorted, no timings), so it can
// be diffed against a committed golden file.
func (r *Report) String() string {
	out := ""
	for _, d := range r.Diags {
		out += d.String() + "\n"
	}
	for _, s := range r.Suppressions {
		out += s.String() + "\n"
	}
	return out + r.Summary() + "\n"
}

// DiagnosticJSON mirrors analyze.DiagnosticJSON so obdalint and repolint
// reports are consumed the same way.
type DiagnosticJSON struct {
	Pass     string `json:"pass"`
	Severity string `json:"severity"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Message  string `json:"message"`
}

// SuppressionJSON is one suppression directive in the JSON report.
type SuppressionJSON struct {
	Pass   string `json:"pass"`
	File   string `json:"file"`
	Line   int    `json:"line"`
	Reason string `json:"reason"`
	Used   bool   `json:"used"`
}

// TimingJSON carries the per-phase wall times the ci budget gates on, so a
// budget overrun is attributable to loading, call-graph construction,
// summary computation, or the passes themselves.
type TimingJSON struct {
	LoadMS      int64 `json:"load_ms"`
	CallgraphMS int64 `json:"callgraph_ms"`
	SummaryMS   int64 `json:"summary_ms"`
	PassMS      int64 `json:"pass_ms"`
}

// ReportJSON is the machine-readable report: summary line, per-severity
// counts, and per-pass counts — the same summary/counts/by_* shape as
// obdalint -json — plus the diagnostics, suppressions, and timings.
type ReportJSON struct {
	Summary      string            `json:"summary"`
	Counts       map[string]int    `json:"counts"`
	ByPass       map[string]int    `json:"by_pass"`
	Diagnostics  []DiagnosticJSON  `json:"diagnostics"`
	Suppressions []SuppressionJSON `json:"suppressions"`
	Packages     int               `json:"packages"`
	Files        int               `json:"files"`
	Timing       TimingJSON        `json:"timing"`
}

// Payload builds the JSON shape of the report.
func (r *Report) Payload() ReportJSON {
	p := ReportJSON{
		Summary:      r.Summary(),
		Counts:       map[string]int{},
		ByPass:       map[string]int{},
		Diagnostics:  []DiagnosticJSON{},
		Suppressions: []SuppressionJSON{},
		Packages:     r.Packages,
		Files:        r.Files,
		Timing: TimingJSON{
			LoadMS:      r.LoadTime.Milliseconds(),
			CallgraphMS: r.CallgraphTime.Milliseconds(),
			SummaryMS:   r.SummaryTime.Milliseconds(),
			PassMS:      r.PassTime.Milliseconds(),
		},
	}
	for _, d := range r.Diags {
		p.Counts[d.Sev.String()]++
		p.ByPass[d.Pass]++
		p.Diagnostics = append(p.Diagnostics, DiagnosticJSON{
			Pass: d.Pass, Severity: d.Sev.String(),
			File: d.Pos.Filename, Line: d.Pos.Line, Message: d.Msg,
		})
	}
	for _, s := range r.Suppressions {
		p.Suppressions = append(p.Suppressions, SuppressionJSON{
			Pass: s.Pass, File: s.Pos.Filename, Line: s.Pos.Line,
			Reason: s.Reason, Used: s.Used,
		})
	}
	return p
}
