package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// passTimingFunnel ports repolint's timing-funnel rule onto the typed
// driver: raw time.Now()/time.Since() calls are reserved to internal/obs
// (the clock funnel) and internal/mixer (the measurement harness);
// everything else goes through obs.Now/obs.Since so the observability layer
// stays the single timing authority. Resolving the callee through the type
// information kills the old rule's false-positive/negative mode: a package
// imported as anything other than "time" is still caught, and a local
// package named time is not.
func passTimingFunnel() *Pass {
	return &Pass{
		Name: "timingfunnel",
		Doc:  "raw time.Now/time.Since outside the obs clock funnel",
		Sev:  SevWarning,
		Run: func(c *Context) {
			if timingExemptPkg(c.Pkg.Path) {
				return
			}
			for _, file := range c.Pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					fn, ok := c.ObjectOf(sel.Sel).(*types.Func)
					if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
						return true
					}
					if fn.Name() != "Now" && fn.Name() != "Since" {
						return true
					}
					c.Report(call, fmt.Sprintf(
						"raw time.%s call: use obs.%s so timing stays behind the observability funnel",
						fn.Name(), fn.Name()))
					return true
				})
			}
		},
	}
}

// timingExemptPkg reports whether a package may call time.Now/time.Since
// directly: the obs clock funnel itself and the mixer measurement harness.
func timingExemptPkg(path string) bool {
	return strings.HasSuffix(path, "internal/obs") ||
		strings.HasSuffix(path, "internal/mixer")
}
