package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// passDiscardErr ports repolint's discarded-error rule onto the typed
// driver: `_ = x` where x is a bound error value silently swallows a value
// that was important enough to assign a name to. The old rule matched
// identifiers *named* err/*Err; the typed rule matches on the static type
// instead, so misnamed error values are caught and non-error values named
// err are not. Deliberate call discards (`_ = f()`) stay legal — the
// author chose to ignore a fresh result, not to drop an already-bound one.
func passDiscardErr() *Pass {
	return &Pass{
		Name: "discarderr",
		Doc:  "bound error values discarded with a blank assignment",
		Sev:  SevWarning,
		Run: func(c *Context) {
			for _, file := range c.Pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					as, ok := n.(*ast.AssignStmt)
					if !ok || len(as.Lhs) != len(as.Rhs) {
						return true
					}
					for _, l := range as.Lhs {
						if id, ok := l.(*ast.Ident); !ok || id.Name != "_" {
							return true
						}
					}
					for _, r := range as.Rhs {
						switch r.(type) {
						case *ast.Ident, *ast.SelectorExpr:
						default:
							continue
						}
						t := c.TypeOf(r)
						if t == nil || !isErrorType(t) {
							continue
						}
						c.Report(as, fmt.Sprintf(
							"error value %q discarded with a blank assignment", exprString(r)))
					}
					return true
				})
			}
		},
	}
}

// isErrorType reports whether t is the error interface or implements it.
func isErrorType(t types.Type) bool {
	if t == types.Universe.Lookup("error").Type() {
		return true
	}
	iface, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(t, iface)
}
