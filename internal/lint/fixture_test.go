package lint

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden fixture reports")

// fixtureCases maps each catalog pass to its fixture package. Every
// fixture seeds at least one true violation and one near-miss; the golden
// report asserts both — the violation by its presence, the near-miss by
// the exact-match absence of any further diagnostic.
var fixtureCases = []struct {
	pass       string
	dir        string
	importPath string
}{
	{"sharedmut", "sharedmut", "fixture/sharedmut"},
	{"lockguard", "lockguard", "fixture/lockguard"},
	{"atomicmix", "atomicmix", "fixture/atomicmix"},
	// The gohygiene pass only fires inside internal/sqldb and
	// internal/core, so the fixture borrows a qualifying import path.
	{"gohygiene", "gohygiene", "fixture/internal/sqldb"},
	{"iterclose", "iterclose", "fixture/iterclose"},
	{"discarderr", "discarderr", "fixture/discarderr"},
	{"timingfunnel", "timingfunnel", "fixture/timingfunnel"},
	{"srvhygiene", "srvhygiene", "fixture/srvhygiene"},
	{"stopflow", "stopflow", "fixture/stopflow"},
	// The hotalloc roots live in internal/sqldb, so the fixture borrows a
	// qualifying import path (as gohygiene does).
	{"hotalloc", "hotalloc", "fixture/internal/sqldb"},
	// The interprocedural fixtures: every seeded violation crosses a
	// function boundary. TestInterpCatchesWhatIntraMisses additionally
	// asserts the intra-procedural engine reports zero on them.
	{"lockguard", "lockguard_interp", "fixture/lockguard_interp"},
	{"sharedmut", "sharedmut_interp", "fixture/sharedmut_interp"},
}

// loadFixture type-checks one fixture package and runs the named pass
// over it.
func loadFixture(t *testing.T, dir, importPath, pass string) *Report {
	t.Helper()
	mod, err := LoadDir(filepath.Join("testdata", "src", dir), importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	p := PassByName(pass)
	if p == nil {
		t.Fatalf("pass %q is not in the catalog", pass)
	}
	return Run(mod, []*Pass{p})
}

// TestPassFixtures runs each pass over its fixture package and compares
// the canonical report against the committed golden (refresh with
// `go test ./internal/lint -run TestPassFixtures -update`).
func TestPassFixtures(t *testing.T) {
	for _, tc := range fixtureCases {
		t.Run(tc.pass, func(t *testing.T) {
			rep := loadFixture(t, tc.dir, tc.importPath, tc.pass)
			got := rep.String()
			golden := filepath.Join("testdata", tc.dir+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("report differs from %s\n--- want\n%s--- got\n%s", golden, want, got)
			}
			if len(rep.Diags) == 0 {
				t.Errorf("fixture %s seeds a violation but the pass reported nothing", tc.dir)
			}
		})
	}
}

// TestSuppression checks the ignore-directive plumbing end to end: a
// matching directive moves the diagnostic to the suppressed list and is
// marked used; a directive matching nothing stays unused.
func TestSuppression(t *testing.T) {
	rep := loadFixture(t, "suppress", "fixture/suppress", "lockguard")
	if len(rep.Diags) != 0 {
		t.Errorf("suppressed diagnostic survived: %v", rep.Diags)
	}
	if len(rep.Suppressed) != 1 {
		t.Fatalf("got %d suppressed diagnostics, want 1", len(rep.Suppressed))
	}
	if len(rep.Suppressions) != 2 {
		t.Fatalf("got %d suppression directives, want 2", len(rep.Suppressions))
	}
	var used, unused int
	for _, s := range rep.Suppressions {
		if s.Used {
			used++
		} else {
			unused++
		}
	}
	if used != 1 || unused != 1 {
		t.Errorf("got %d used / %d unused suppressions, want 1/1", used, unused)
	}
}

// TestReportJSON checks the machine-readable shape against the obdalint
// contract: summary, per-severity counts, per-pass counts, and the
// diagnostics themselves.
func TestReportJSON(t *testing.T) {
	rep := loadFixture(t, "sharedmut", "fixture/sharedmut", "sharedmut")
	p := rep.Payload()
	if p.Summary != rep.Summary() {
		t.Errorf("payload summary %q != report summary %q", p.Summary, rep.Summary())
	}
	if p.Counts["error"] != 1 {
		t.Errorf("counts[error] = %d, want 1", p.Counts["error"])
	}
	if p.ByPass["sharedmut"] != 1 {
		t.Errorf("by_pass[sharedmut] = %d, want 1", p.ByPass["sharedmut"])
	}
	if len(p.Diagnostics) != 1 {
		t.Fatalf("got %d diagnostics, want 1", len(p.Diagnostics))
	}
	d := p.Diagnostics[0]
	if d.Pass != "sharedmut" || d.Severity != "error" || d.File != "sharedmut.go" || d.Line == 0 {
		t.Errorf("diagnostic fields wrong: %+v", d)
	}
}

// TestCatalogOrder pins the pass catalog: order is part of the output
// contract, and every pass must be reachable by name.
func TestCatalogOrder(t *testing.T) {
	want := []string{"sharedmut", "lockguard", "atomicmix", "gohygiene", "iterclose", "discarderr", "timingfunnel", "srvhygiene", "stopflow", "hotalloc"}
	cat := Catalog()
	if len(cat) != len(want) {
		t.Fatalf("catalog has %d passes, want %d", len(cat), len(want))
	}
	for i, p := range cat {
		if p.Name != want[i] {
			t.Errorf("catalog[%d] = %s, want %s", i, p.Name, want[i])
		}
		if PassByName(p.Name) == nil {
			t.Errorf("PassByName(%q) = nil", p.Name)
		}
	}
	if PassByName("nosuchpass") != nil {
		t.Error("PassByName of an unknown name should be nil")
	}
}
