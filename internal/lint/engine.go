package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"npdbench/internal/obs"
)

// Pass is one analysis in the ordered catalog. Run receives a fully typed
// package and reports findings through the context; the engine owns
// ordering, suppression, and severity bookkeeping.
type Pass struct {
	Name string
	Doc  string
	Sev  Severity
	Run  func(*Context)
}

// Context is the per-(pass, package) view handed to a pass: the syntax and
// type information of the package under analysis plus the resolved
// annotations. Interp carries the module-wide interprocedural facts (call
// graph, per-function summaries, merged annotations); it is nil under
// RunIntra, and every pass degrades to its intra-procedural behavior when
// it is.
type Context struct {
	Fset   *token.FileSet
	Pkg    *Package
	Ann    *annotations
	Interp *Interp

	pass  *Pass
	diags *[]Diagnostic
}

// Report files a diagnostic at the given node.
func (c *Context) Report(n ast.Node, msg string) {
	*c.diags = append(*c.diags, Diagnostic{
		Pass: c.pass.Name,
		Sev:  c.pass.Sev,
		Pos:  c.Fset.Position(n.Pos()),
		Msg:  msg,
	})
}

// TypeOf resolves the static type of an expression (nil when untyped).
func (c *Context) TypeOf(e ast.Expr) types.Type {
	return c.Pkg.Info.TypeOf(e)
}

// ObjectOf resolves an identifier to its object (use or def).
func (c *Context) ObjectOf(id *ast.Ident) types.Object {
	return c.Pkg.Info.ObjectOf(id)
}

// Catalog returns the ordered pass catalog. Order is part of the contract:
// output is deterministic, and the report groups per file/line across
// passes after the final sort.
func Catalog() []*Pass {
	return []*Pass{
		passSharedMut(),
		passLockGuard(),
		passAtomicMix(),
		passGoHygiene(),
		passIterClose(),
		passDiscardErr(),
		passTimingFunnel(),
		passSrvHygiene(),
		passStopFlow(),
		passHotAlloc(),
	}
}

// PassByName returns the catalog entry with the given name (nil if absent).
func PassByName(name string) *Pass {
	for _, p := range Catalog() {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Run executes the catalog over every package of the module and folds the
// results into a report: the call graph and bottom-up summaries are built
// first (each phase individually timed for the ci budget), then every pass
// runs per package with the interprocedural context attached; diagnostics
// matched by an ignore directive move to the suppressed list and everything
// is sorted canonically.
func Run(mod *Module, passes []*Pass) *Report {
	return run(mod, passes, true)
}

// RunIntra executes the catalog without the interprocedural layer — the
// PR 6 engine, verbatim. It exists so regression tests can prove which
// findings only the interprocedural engine sees.
func RunIntra(mod *Module, passes []*Pass) *Report {
	return run(mod, passes, false)
}

func run(mod *Module, passes []*Pass, interp bool) *Report {
	rep := &Report{Packages: len(mod.Pkgs)}
	anns := map[*Package]*annotations{}
	var annList []*annotations
	for _, pkg := range mod.Pkgs {
		a := annotate(mod.Fset, pkg)
		anns[pkg] = a
		annList = append(annList, a)
	}
	var ip *Interp
	if interp {
		cgStart := obs.Now()
		g := buildCallGraph(mod)
		rep.CallgraphTime = obs.Since(cgStart)
		sumStart := obs.Now()
		ip = buildInterp(mod, annList, g)
		rep.SummaryTime = obs.Since(sumStart)
		ip.hot = hotEntries(ip)
		rep.Hot = ip.hot
	}
	start := obs.Now()
	for _, pkg := range mod.Pkgs {
		rep.Files += len(pkg.Files)
		ann := anns[pkg]
		var diags []Diagnostic
		for _, p := range passes {
			ctx := &Context{Fset: mod.Fset, Pkg: pkg, Ann: ann, Interp: ip, pass: p, diags: &diags}
			p.Run(ctx)
		}
		for _, d := range diags {
			if ss := ann.suppressionsFor(d); len(ss) > 0 {
				for _, s := range ss {
					s.Used = true
				}
				rep.Suppressed = append(rep.Suppressed, d)
				continue
			}
			rep.Diags = append(rep.Diags, d)
		}
		for _, s := range ann.allSuppressions() {
			rep.Suppressions = append(rep.Suppressions, *s)
		}
	}
	for i := range rep.Diags {
		rep.Diags[i].Pos.Filename = relPath(mod.Root, rep.Diags[i].Pos.Filename)
	}
	for i := range rep.Suppressed {
		rep.Suppressed[i].Pos.Filename = relPath(mod.Root, rep.Suppressed[i].Pos.Filename)
	}
	for i := range rep.Suppressions {
		rep.Suppressions[i].Pos.Filename = relPath(mod.Root, rep.Suppressions[i].Pos.Filename)
	}
	sortDiags(rep.Diags)
	rep.Diags = dedupeDiags(rep.Diags)
	sortDiags(rep.Suppressed)
	sortSuppressions(rep.Suppressions)
	rep.PassTime = obs.Since(start)
	return rep
}

// dedupeDiags drops exact duplicates from a sorted diagnostic list. An
// interprocedural pass run from two packages can reach — and report — the
// same callee site twice; one finding is enough.
func dedupeDiags(ds []Diagnostic) []Diagnostic {
	out := ds[:0]
	for i, d := range ds {
		if i > 0 {
			p := ds[i-1]
			if p.Pass == d.Pass && p.Pos == d.Pos && p.Msg == d.Msg {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

// relPath renders a file name relative to the module root, so reports are
// stable across checkouts and diffable against a committed golden.
func relPath(root, name string) string {
	rel, err := filepath.Rel(root, name)
	if err != nil || strings.HasPrefix(rel, "..") {
		return name
	}
	return filepath.ToSlash(rel)
}

func sortSuppressions(ss []Suppression) {
	sort.Slice(ss, func(i, j int) bool {
		a, b := ss[i], ss[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pass < b.Pass
	})
}
