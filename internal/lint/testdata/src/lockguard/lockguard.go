// Package lockguard is the lock-discipline fixture: counter declares a
// field that may only be touched with its sibling mutex held.
package lockguard

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// bad is the seeded violation: a guarded field read with no lock held.
func bad(c *counter) int {
	return c.n
}

// good is the near-miss: the same read, under the declared mutex.
func good(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}
