// Package suppress is the suppression fixture: one lockguard violation is
// silenced by a documented ignore directive, and a second directive
// matches nothing (the stale-suppression case -strict mode rejects).
package suppress

import "sync"

type box struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// peek reads the guarded field bare, under a documented suppression.
func peek(b *box) int {
	//lint:ignore lockguard fixture: read happens before the box is shared
	return b.n
}

//lint:ignore lockguard stale directive that matches nothing
func unrelated() int { return 0 }
