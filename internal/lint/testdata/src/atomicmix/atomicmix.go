// Package atomicmix is the atomic-consistency fixture: hits is accessed
// both atomically and plainly (the mixed-access race), cold only ever
// through sync/atomic.
package atomicmix

import "sync/atomic"

type stats struct {
	hits int64
	cold int64
}

// bad is the seeded violation: hits is bumped atomically but read plainly,
// which races with the atomic writer.
func bad(s *stats) int64 {
	atomic.AddInt64(&s.hits, 1)
	return s.hits
}

// good is the near-miss: every access to cold goes through sync/atomic.
func good(s *stats) int64 {
	atomic.AddInt64(&s.cold, 1)
	return atomic.LoadInt64(&s.cold)
}
