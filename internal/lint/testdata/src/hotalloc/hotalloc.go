// Package sqldb is the hot-path allocation fixture: its import path ends
// in internal/sqldb, so its operator-named functions are hotalloc roots.
// filterRows seeds one finding per allocation kind the walker classifies;
// scanRows is the near-miss whose append target carries preallocated
// capacity.
package sqldb

import "fmt"

type row []int

// sink models an interface-typed parameter: passing a concrete row boxes
// it on every call.
func sink(v any) {}

// pad allocates on every call; calling it per row charges the allocation
// to the caller's loop.
func pad(r row) row {
	out := make(row, len(r))
	copy(out, r)
	return out
}

// filterRows is an operator entry point with four per-iteration
// allocation groups: the growing append, the allocating callee, the fmt
// formatting, and the interface boxing.
func filterRows(rows []row) []row {
	var out []row
	for _, r := range rows {
		out = append(out, pad(r))
		_ = fmt.Sprintf("%d", len(r))
		sink(r)
	}
	return out
}

// scanRows is the near-miss: the destination is preallocated with
// capacity, so the appends do not grow per iteration.
func scanRows(rows []row) []row {
	out := make([]row, 0, len(rows))
	for _, r := range rows {
		out = append(out, r)
	}
	return out
}
