// Package iterclose is the iterator-hygiene fixture: rows is a closable
// resource yielded by an Open* constructor.
package iterclose

type rows struct{}

func (r *rows) Next() bool   { return false }
func (r *rows) Close() error { return nil }

// OpenRows yields a resource the caller must Close.
func OpenRows() *rows { return &rows{} }

// CountRows matches the *Rows naming heuristic but returns a plain count;
// the typed gate (no Close method) must keep it silent.
func CountRows() int { return 0 }

// bad is the seeded violation: the iterator is consumed but never Closed
// and never escapes the function.
func bad() int {
	it := OpenRows()
	n := 0
	for it.Next() {
		n++
	}
	return n
}

// good is the near-miss: same shape, closed via defer.
func good() int {
	it := OpenRows()
	defer it.Close()
	n := 0
	for it.Next() {
		n++
	}
	return n
}

// alsoGood exercises the typed gate: a *Rows-named call binding a plain
// int must not be tracked.
func alsoGood() int {
	n := CountRows()
	return n
}
