// Package discarderr is the discarded-error fixture: a bound error value
// dropped with a blank assignment is a violation; discarding a fresh call
// result, or a non-error that happens to be named err, is not.
package discarderr

import "errors"

func work() error { return errors.New("boom") }

// bad is the seeded violation: the error was bound to a name, then
// silently dropped.
func bad() {
	err := work()
	_ = err
}

// good is the near-miss: a deliberate discard of a fresh call result.
func good() {
	_ = work()
}

// alsoGood exercises the typed gate: a non-error named err is not flagged.
func alsoGood() {
	err := 42
	_ = err
}
