// Package sharedmut is the aliasing/ownership fixture: relation mirrors
// the engine's result-set shape, whose rows may alias base-table storage
// through the star fast path.
package sharedmut

type row []int

type relation struct {
	rows []row //lint:shared may alias base-table storage
}

// base stands in for table storage living beyond the current call.
var base relation

// supply stands in for an operator returning a relation of unknown
// provenance (possibly the star fast path handing out table storage).
// It hands out package-level state so the interprocedural summary cannot
// prove the result fresh either.
func supply() relation { return base }

// badAppend is the seeded violation: it appends into the possibly shared
// backing array of a relation it did not freshen.
func badAppend(extra row) relation {
	v := supply()
	v.rows = append(v.rows, extra)
	return v
}

// goodAppend is the near-miss: the same append, legal because the rows
// slice is reassigned from a fresh copy first (ownership transfer).
func goodAppend(extra row) relation {
	v := supply()
	v.rows = append(make([]row, 0, len(v.rows)+1), v.rows...)
	v.rows = append(v.rows, extra)
	return v
}
