// Package stopflow is the cooperative-cancellation fixture: tasks
// submitted to the worker pool (parState.run) must not reach loops that
// spin without observing a stop signal. The violations cover a loop
// written in the task literal, a loop behind a function the literal
// calls, and a loop in a named task; the near-miss polls an atomic stop
// flag.
package stopflow

import "sync/atomic"

type parState struct{ workers int }

// run is the pool-submission point the pass keys on.
func (ps *parState) run(n int, task func(int)) {
	for i := 0; i < n; i++ {
		task(i)
	}
}

func step() {}

// spinLocal seeds the literal-loop violation: the captured flag is never
// written inside the loop body, so the task can spin forever on a
// pinned worker.
func spinLocal(ps *parState) {
	done := false
	ps.run(4, func(i int) {
		for !done {
		}
	})
	done = true
}

// churn never observes the stop signal; spinIndirect reaches it through
// the submitted task — only the call-graph closure sees this one.
func churn() {
	for {
		step()
	}
}

func spinIndirect(ps *parState) {
	ps.run(2, func(i int) { churn() })
}

// worker is a named task with an unbounded loop.
func worker(i int) {
	for {
	}
}

func spinNamed(ps *parState) {
	ps.run(2, worker)
}

// polite is the near-miss: the loop condition observes the atomic stop
// flag on every iteration.
func polite(ps *parState, stop *atomic.Bool) {
	ps.run(2, func(i int) {
		for !stop.Load() {
			step()
		}
	})
}
