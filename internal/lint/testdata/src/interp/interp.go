// Package interp is the summary-layer unit fixture: each function
// isolates one interprocedural fact the bottom-up summaries must derive.
// It is consumed by the callgraph and summary unit tests, not by a golden
// fixture run.
package interp

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// peek requires the mutex held at entry.
//
//lint:holds mu
func (c *counter) peek() int { return c.n }

// wrapper forwards to peek without locking: it inherits the obligation
// onto its own parameter slot.
func wrapper(c *counter) int { return c.peek() }

// locker acquires and leaves the mutex held for the caller.
func (c *counter) locker() { c.mu.Lock() }

// unlocker releases the caller's mutex.
func (c *counter) unlocker() { c.mu.Unlock() }

type rel struct {
	rows []int //lint:shared may alias shared storage
}

// handOut returns the shared backing.
func (r *rel) handOut() []int { return r.rows }

// copyOut returns an owned copy.
func (r *rel) copyOut() []int {
	out := make([]int, len(r.rows))
	copy(out, r.rows)
	return out
}

// growCopy exercises the self-append cycle guard of the shape classifier.
func (r *rel) growCopy() []int {
	out := make([]int, 0, len(r.rows))
	out = append(out, r.rows...)
	return out
}

// passThrough returns its parameter's backing unchanged.
func passThrough(xs []int) []int { return xs }

var published []int

// publish stores its parameter beyond the call.
func publish(xs []int) { published = xs }

// fpDemo looks like a violation to the intra-procedural engine (a call
// result has unknown provenance) but copyOut's summary proves the
// backing locally owned.
func fpDemo(r *rel) []int {
	out := r.copyOut()
	out = append(out, 1)
	return out
}

// even and odd form a recursive cycle for the SCC condensation.
func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}

func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}
