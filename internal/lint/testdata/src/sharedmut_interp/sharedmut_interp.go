// Package sharedmutinterp is the interprocedural ownership fixture: the
// shared backing leaks through a call (snapshot's returns-shared summary),
// so the intra-procedural engine — which treats every call result used
// in place as unknown provenance — reports nothing on this package.
package sharedmutinterp

import "sort"

type row []int

type table struct {
	rows []row //lint:shared may alias base-table storage
}

// snapshot hands out the table's shared backing directly — its summary
// says returns-shared.
func (t *table) snapshot() []row { return t.rows }

// fresh returns an owned copy — its summary says returns-fresh.
func (t *table) fresh() []row {
	out := make([]row, len(t.rows))
	copy(out, t.rows)
	return out
}

// badSort is the first seeded violation: sorting the shared backing in
// place through the call result, never bound to a local.
func badSort(t *table) {
	sort.Slice(t.snapshot(), func(i, j int) bool { return i < j })
}

// badAppend is the second seeded violation: appending into the shared
// backing handed out by snapshot.
func badAppend(t *table, extra row) {
	t.rows = append(t.snapshot(), extra)
}

// goodSort is the near-miss: same call shape, but fresh's summary proves
// the backing is owned.
func goodSort(t *table) {
	sort.Slice(t.fresh(), func(i, j int) bool { return i < j })
}
