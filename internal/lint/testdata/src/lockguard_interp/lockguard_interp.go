// Package lockguardinterp is the interprocedural lock-discipline fixture:
// every seeded violation here crosses a function boundary, so the
// intra-procedural engine (RunIntra) provably reports nothing on this
// package while the summary-driven engine catches both.
package lockguardinterp

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// drop releases the counter's mutex on the caller's behalf — its summary
// carries a net-release lock delta.
func (c *counter) drop() {
	c.mu.Unlock()
}

// bad is the first seeded violation: drop's net release empties the
// caller's lock set, so the increment runs unprotected. Intra-procedurally
// the Lock() above still looks like cover.
func bad(c *counter) {
	c.mu.Lock()
	c.drop()
	c.n++
}

// lockAndGet acquires the mutex itself — its summary says may-acquire mu.
func (c *counter) lockAndGet() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// alsoBad is the second seeded violation: calling lockAndGet while the
// mutex is already held is a self-deadlock with a non-reentrant
// sync.Mutex. No single body shows both acquisitions.
func alsoBad(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	v := c.lockAndGet()
	return v
}

// peek requires the mutex held at entry.
//
//lint:holds mu
func (c *counter) peek() int { return c.n }

// nearMiss holds the mutex across the annotated callee: clean under both
// engines.
func nearMiss(c *counter) int {
	c.mu.Lock()
	v := c.peek()
	c.mu.Unlock()
	return v
}
