// Package srvhygiene is the http-server hygiene fixture: the bad path
// uses the two forbidden shortcuts (bare http.ListenAndServe, the global
// DefaultServeMux); the near-miss builds an explicit mux behind a
// configured *http.Server, whose ListenAndServe method is the fix, not a
// finding.
package srvhygiene

import (
	"net/http"
	"time"
)

// defaultMux references the process-global mux directly.
var defaultMux = http.DefaultServeMux

// badServe seeds the package-function findings.
func badServe() error {
	http.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {})
	return http.ListenAndServe(":8080", nil)
}

// goodServe is the near-miss: explicit mux, explicit server, timeouts.
func goodServe() error {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {})
	srv := &http.Server{
		Addr:              ":8080",
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       time.Minute,
	}
	return srv.ListenAndServe()
}
