// Package timingfunnel is the timing-funnel fixture: raw time.Now calls
// outside internal/obs and internal/mixer are violations; other uses of
// package time are fine.
package timingfunnel

import "time"

// bad is the seeded violation: a raw time.Now call outside the funnel.
func bad() time.Time {
	return time.Now()
}

// good is the near-miss: durations and sleeps are not timing reads.
func good() {
	time.Sleep(5 * time.Millisecond)
}
