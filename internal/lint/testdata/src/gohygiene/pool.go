// This file is the fixture's sanctioned spawn point: go statements are
// allowed, but each spawned task must observe a cooperative-stop signal.
//
//lint:go-allowed fixture worker pool; tasks observe the stop flag
package sqldb

import "sync/atomic"

// fanOutGood is the near-miss: a sanctioned spawn whose task checks the
// atomic stop flag before working.
func fanOutGood(n int, task func(int)) {
	var stop atomic.Bool
	for i := 0; i < n; i++ {
		go func(i int) {
			if stop.Load() {
				return
			}
			task(i)
		}(i)
	}
}

// fanOutDeaf is the second seeded violation: the file sanctions spawning,
// but this task ignores every stop signal.
func fanOutDeaf(task func()) {
	go func() {
		task()
	}()
}
