// Package sqldb is the goroutine-hygiene fixture; its import path ends in
// internal/sqldb, which puts it under the engine's spawn discipline. This
// file carries no //lint:go-allowed directive, so any go statement in it
// is a violation.
package sqldb

// fanOutBad is the seeded violation: a naked go statement outside the
// sanctioned spawn point.
func fanOutBad(work func()) {
	go work()
}
