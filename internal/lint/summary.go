package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Per-function summaries are the interprocedural currency of the engine:
// each function is analyzed once, bottom-up over the call graph's SCC
// condensation, and the facts a caller needs about a callee — what locks it
// takes or drops, whether its results carry owned or shared backing,
// whether it allocates on every call, whether its loops observe the
// cooperative-stop signal — are available at every call site without
// re-walking the callee. The lattice is deliberately shallow: every fact
// defaults to "unknown", unknown facts never produce diagnostics, and a
// fact is only asserted when the body proves it. Recursive cycles are
// summarized with their members' defaults (a cycle member sees its peers as
// unknown), which loses precision inside the cycle but stays sound for the
// false-positive-averse passes consuming the facts.

// lockRef names a mutex relative to a function's signature: Slot -1 is the
// receiver, otherwise the parameter index; Mu is the mutex field name on
// that value.
type lockRef struct {
	Slot int
	Mu   string
}

// Summary is the interprocedural fact sheet of one declared function.
type Summary struct {
	Node *FuncNode

	// LockDelta is the net effect one call has on the caller's lock state,
	// computed from the unconditional (top-statement-level) Lock/Unlock
	// calls of the body: +1 means the callee returns with the mutex held
	// on the caller's behalf, -1 means the callee releases a mutex the
	// caller held on entry. Lock operations inside branches contribute
	// nothing (their effect is input-dependent).
	LockDelta map[lockRef]int
	// MayAcquire records every mutex the body may write-Lock anywhere,
	// including conditionally — the self-deadlock check's domain.
	MayAcquire map[lockRef]bool
	// Requires records the mutexes that must already be held when the
	// function is entered: its own //lint:holds annotation, plus
	// obligations inherited from callees it invokes on its receiver or
	// parameters without locking them itself.
	Requires map[lockRef]bool

	// ReturnsFresh marks results (of ownership-tracked types) proven to
	// carry locally allocated backing on every return path.
	ReturnsFresh []bool
	// ReturnsShared marks results that may alias a //lint:shared field's
	// backing on some return path.
	ReturnsShared []bool
	// ReturnsParam maps result i to the parameter index whose backing it
	// aliases (-1 when it does not pass a parameter through).
	ReturnsParam []int
	// EscapesParam marks parameters whose backing the body stores beyond
	// the call: into a field, an element of a container, a channel, or a
	// callee that does the same.
	EscapesParam []bool

	// Allocates reports a direct per-call heap allocation in the body
	// (make, new, composite literal, closure, fmt formatting); AllocKind
	// is the dominant kind for reporting.
	Allocates bool
	AllocKind string

	// ObservesStop reports that the body observes a cooperative-stop
	// signal: an atomic.Bool Load, a channel receive, or context.Done.
	ObservesStop bool
	// SpinLoops are loops that may iterate unboundedly without observing a
	// stop signal: condition-less for-loops, and condition-only loops
	// whose condition no body statement can change.
	SpinLoops []token.Pos
}

// interpAnn is the module-wide annotation index: the per-package maps are
// keyed on type objects, so their union is well defined across packages.
type interpAnn struct {
	guards  map[*types.Var]string
	shared  map[*types.Var]bool
	mutates map[*types.Func][]string
	holds   map[*types.Func]string
}

func mergeAnnotations(anns []*annotations) *interpAnn {
	m := &interpAnn{
		guards:  map[*types.Var]string{},
		shared:  map[*types.Var]bool{},
		mutates: map[*types.Func][]string{},
		holds:   map[*types.Func]string{},
	}
	for _, a := range anns {
		for k, v := range a.guards {
			m.guards[k] = v
		}
		for k := range a.shared {
			m.shared[k] = true
		}
		for k, v := range a.mutates {
			m.mutates[k] = v
		}
		for k, v := range a.holds {
			m.holds[k] = v
		}
	}
	return m
}

// Interp is the module-wide interprocedural context handed to every pass:
// call graph, summaries, merged annotations, and the shared-ownership type
// domain. A nil Interp on the pass context reverts each pass to its
// intra-procedural behavior (the PR 6 engine), which the regression tests
// use to prove what the old engine missed.
type Interp struct {
	Mod       *Module
	Graph     *CallGraph
	Ann       *interpAnn
	Summaries map[*types.Func]*Summary

	owners     map[*types.Named]bool
	fieldTypes []types.Type
	declIx     *declIndex
	hot        []HotEntry
}

// SummaryOf returns the callee's summary (nil for functions without a body
// in the module).
func (ip *Interp) SummaryOf(fn *types.Func) *Summary {
	if ip == nil || fn == nil {
		return nil
	}
	return ip.Summaries[fn]
}

// buildOwnership derives the sharedmut type domain from the shared-field
// set: the named structs owning a shared field, and the fields' own slice
// types.
func buildOwnership(shared map[*types.Var]bool, pkgs []*Package) (map[*types.Named]bool, []types.Type) {
	owners := map[*types.Named]bool{}
	var fieldTypes []types.Type
	for f := range shared {
		fieldTypes = append(fieldTypes, f.Type())
		for _, pkg := range pkgs {
			scope := pkg.Types.Scope()
			for _, name := range scope.Names() {
				tn, ok := scope.Lookup(name).(*types.TypeName)
				if !ok {
					continue
				}
				named, ok := tn.Type().(*types.Named)
				if !ok {
					continue
				}
				st, ok := named.Underlying().(*types.Struct)
				if !ok {
					continue
				}
				for i := 0; i < st.NumFields(); i++ {
					if st.Field(i) == f {
						owners[named] = true
					}
				}
			}
		}
	}
	return owners, fieldTypes
}

// buildInterp computes the full interprocedural context for a module.
func buildInterp(mod *Module, anns []*annotations, g *CallGraph) *Interp {
	ip := &Interp{
		Mod:       mod,
		Graph:     g,
		Ann:       mergeAnnotations(anns),
		Summaries: map[*types.Func]*Summary{},
	}
	ip.owners, ip.fieldTypes = buildOwnership(ip.Ann.shared, mod.Pkgs)
	ip.declIx = newDeclIndex(g)
	for _, n := range g.BottomUp {
		ip.Summaries[n.Fn] = ip.summarize(n)
	}
	return ip
}

// trackedType reports whether t is in the shared-ownership domain.
func (ip *Interp) trackedType(t types.Type) bool {
	if t == nil {
		return false
	}
	if n := namedType(t); n != nil && ip.owners[n] {
		return true
	}
	for _, ft := range ip.fieldTypes {
		if types.Identical(t, ft) {
			return true
		}
	}
	return false
}

// sharedFieldVar resolves a selector to a //lint:shared field object using
// the module-wide index.
func (ip *Interp) sharedFieldVar(pkg *Package, sel *ast.SelectorExpr) *types.Var {
	s, ok := pkg.Info.Selections[sel]
	if !ok {
		return nil
	}
	f, ok := s.Obj().(*types.Var)
	if !ok || !ip.shared(f) {
		return nil
	}
	return f
}

func (ip *Interp) shared(f *types.Var) bool { return ip.Ann.shared[f] }

// summarize computes one function's summary; callee summaries earlier in
// the bottom-up order are already in place.
func (ip *Interp) summarize(n *FuncNode) *Summary {
	s := &Summary{
		Node:       n,
		LockDelta:  map[lockRef]int{},
		MayAcquire: map[lockRef]bool{},
		Requires:   map[lockRef]bool{},
	}
	sig, _ := n.Fn.Type().(*types.Signature)
	if sig == nil {
		return s
	}
	slots := signatureSlots(n, sig)

	ip.lockFacts(n, s, slots)
	ip.ownershipFacts(n, s, sig, slots)
	ip.allocFacts(n, s)
	ip.stopFacts(n, s)
	return s
}

// signatureSlots maps the receiver and parameter objects of a declaration
// to their lockRef slots.
func signatureSlots(n *FuncNode, sig *types.Signature) map[*types.Var]int {
	slots := map[*types.Var]int{}
	if recv := sig.Recv(); recv != nil {
		slots[recv] = -1
	}
	// Parameter objects in Defs are the declared idents; sig.Params() holds
	// the same objects.
	for i := 0; i < sig.Params().Len(); i++ {
		slots[sig.Params().At(i)] = i
	}
	// The receiver object in the signature and the ident in the
	// declaration can differ; map the declared ident's object too.
	if n.Decl.Recv != nil && len(n.Decl.Recv.List) > 0 && len(n.Decl.Recv.List[0].Names) > 0 {
		if obj, ok := n.Pkg.Info.Defs[n.Decl.Recv.List[0].Names[0]].(*types.Var); ok {
			slots[obj] = -1
		}
	}
	return slots
}

// slotOf resolves an expression to a signature slot: a plain identifier
// bound to the receiver or a parameter.
func slotOf(pkg *Package, slots map[*types.Var]int, e ast.Expr) (int, bool) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return 0, false
	}
	obj, ok := pkg.Info.Uses[id].(*types.Var)
	if !ok {
		return 0, false
	}
	slot, ok := slots[obj]
	return slot, ok
}

// lockFacts fills LockDelta, MayAcquire, and Requires.
func (ip *Interp) lockFacts(n *FuncNode, s *Summary, slots map[*types.Var]int) {
	info := n.Pkg.Info

	// mutexRef decodes <ident>.<field> where ident is a signature value and
	// field a sync mutex.
	mutexRef := func(recv ast.Expr) (lockRef, bool) {
		sel, ok := ast.Unparen(recv).(*ast.SelectorExpr)
		if !ok {
			return lockRef{}, false
		}
		slot, ok := slotOf(n.Pkg, slots, sel.X)
		if !ok {
			return lockRef{}, false
		}
		t := info.TypeOf(sel)
		if t == nil || !isSyncMutex(t) {
			return lockRef{}, false
		}
		return lockRef{Slot: slot, Mu: sel.Sel.Name}, true
	}

	// lockOp decodes one statement-level lock transition.
	lockOp := func(e ast.Expr) (ref lockRef, delta int, ok bool) {
		call, isCall := ast.Unparen(e).(*ast.CallExpr)
		if !isCall {
			return lockRef{}, 0, false
		}
		sel, isSel := call.Fun.(*ast.SelectorExpr)
		if !isSel {
			return lockRef{}, 0, false
		}
		switch sel.Sel.Name {
		case "Lock", "RLock":
			delta = 1
		case "Unlock", "RUnlock":
			delta = -1
		default:
			return lockRef{}, 0, false
		}
		ref, ok = mutexRef(sel.X)
		return ref, delta, ok
	}

	// Net effect: unconditional ops only — the top statement list of the
	// body, with defer-unlocks applied at exit.
	net := map[lockRef]int{}
	deferred := map[lockRef]int{}
	for _, stmt := range n.Decl.Body.List {
		switch x := stmt.(type) {
		case *ast.ExprStmt:
			if ref, d, ok := lockOp(x.X); ok {
				net[ref] += d
			}
		case *ast.DeferStmt:
			if ref, d, ok := lockOp(x.Call); ok && d < 0 {
				deferred[ref]++
			}
		}
	}
	for ref, c := range deferred {
		net[ref] -= c
	}
	for ref, d := range net {
		if d != 0 {
			s.LockDelta[ref] = d
		}
	}

	// MayAcquire: write locks anywhere in the body, branches and literals
	// included.
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Lock" {
			return true
		}
		if ref, ok := mutexRef(sel.X); ok {
			s.MayAcquire[ref] = true
		}
		return true
	})

	// Requires: the declared obligation first.
	if mu, ok := ip.Ann.holds[n.Fn]; ok {
		s.Requires[lockRef{Slot: -1, Mu: mu}] = true
	}
	// Inherited obligations: a callee invoked on one of our signature
	// values, requiring a mutex we neither hold by annotation nor ever
	// acquire, passes the obligation to our callers. Calls under a branch
	// still propagate — the obligation exists on at least one path.
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := callee(info, call)
		cs := ip.SummaryOf(fn)
		if cs == nil || len(cs.Requires) == 0 {
			return true
		}
		for ref := range cs.Requires {
			var bound ast.Expr
			if ref.Slot == -1 {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					bound = sel.X
				}
			} else if ref.Slot < len(call.Args) {
				bound = call.Args[ref.Slot]
			}
			if bound == nil {
				continue
			}
			slot, ok := slotOf(n.Pkg, slots, bound)
			if !ok {
				continue
			}
			ours := lockRef{Slot: slot, Mu: ref.Mu}
			if s.MayAcquire[ours] || s.Requires[ours] {
				continue
			}
			s.Requires[ours] = true
		}
		return true
	})
}

// ownershipFacts fills the returns-fresh / returns-shared / returns-param
// and escapes-param columns for tracked types.
func (ip *Interp) ownershipFacts(n *FuncNode, s *Summary, sig *types.Signature, slots map[*types.Var]int) {
	nres := sig.Results().Len()
	s.ReturnsFresh = make([]bool, nres)
	s.ReturnsShared = make([]bool, nres)
	s.ReturnsParam = make([]int, nres)
	for i := range s.ReturnsParam {
		s.ReturnsParam[i] = -1
	}
	s.EscapesParam = make([]bool, sig.Params().Len())

	anyTracked := false
	for i := 0; i < nres; i++ {
		if ip.trackedType(sig.Results().At(i).Type()) {
			anyTracked = true
		}
	}
	trackedParams := map[int]bool{}
	for i := 0; i < sig.Params().Len(); i++ {
		if ip.trackedType(sig.Params().At(i).Type()) {
			trackedParams[i] = true
		}
	}
	if anyTracked {
		ip.returnFacts(n, s, sig, slots)
	}
	if len(trackedParams) > 0 {
		ip.escapeFacts(n, s, slots, trackedParams)
	}
}

// returnFacts classifies every return site of the function (function
// literals excluded — their returns are not ours).
func (ip *Interp) returnFacts(n *FuncNode, s *Summary, sig *types.Signature, slots map[*types.Var]int) {
	nres := len(s.ReturnsFresh)
	cls := &shapeClassifier{ip: ip, n: n, slots: slots}
	fresh := make([]bool, nres)
	for i := range fresh {
		fresh[i] = ip.trackedType(sig.Results().At(i).Type())
	}
	param := make([]int, nres)
	seenReturn := false
	for i := range param {
		param[i] = -2 // unset
	}
	forEachOwnStmt(n.Decl.Body, func(stmt ast.Stmt) {
		ret, ok := stmt.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != nres || nres == 0 {
			if ok {
				// Naked return or comma-spread: classify nothing.
				for i := range fresh {
					fresh[i] = false
				}
				seenReturn = seenReturn || ok
			}
			return
		}
		seenReturn = true
		for i, e := range ret.Results {
			if !ip.trackedType(sig.Results().At(i).Type()) {
				continue
			}
			k := cls.classify(e, 0)
			if k.fresh != 1 {
				fresh[i] = false
			}
			if k.shared {
				s.ReturnsShared[i] = true
			}
			switch param[i] {
			case -2:
				param[i] = k.param
			default:
				if param[i] != k.param {
					param[i] = -1
				}
			}
		}
	})
	if seenReturn {
		copy(s.ReturnsFresh, fresh)
		for i, p := range param {
			if p >= 0 {
				s.ReturnsParam[i] = p
			}
		}
	}
}

// escapeFacts marks tracked parameters whose backing is stored beyond the
// call frame.
func (ip *Interp) escapeFacts(n *FuncNode, s *Summary, slots map[*types.Var]int, trackedParams map[int]bool) {
	info := n.Pkg.Info
	paramSlot := func(e ast.Expr) (int, bool) {
		slot, ok := slotOf(n.Pkg, slots, e)
		if !ok || slot < 0 || !trackedParams[slot] {
			return 0, false
		}
		return slot, true
	}
	mark := func(e ast.Expr) {
		if slot, ok := paramSlot(e); ok {
			s.EscapesParam[slot] = true
		}
	}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.AssignStmt:
			for i, l := range x.Lhs {
				if i >= len(x.Rhs) {
					break
				}
				switch lhs := l.(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					mark(x.Rhs[i])
				case *ast.Ident:
					// Stored into a package-level variable: outlives the call.
					if obj, ok := info.Uses[lhs].(*types.Var); ok && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
						mark(x.Rhs[i])
					}
				}
			}
		case *ast.SendStmt:
			mark(x.Value)
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					mark(kv.Value)
				} else {
					mark(el)
				}
			}
		case *ast.CallExpr:
			// append(container.field, p) escapes p into the container; a
			// callee that escapes its parameter escapes ours.
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "append" {
				for _, a := range x.Args[min(1, len(x.Args)):] {
					mark(a)
				}
				return true
			}
			cs := ip.SummaryOf(callee(info, x))
			if cs == nil {
				return true
			}
			for i, a := range x.Args {
				if i < len(cs.EscapesParam) && cs.EscapesParam[i] {
					mark(a)
				}
			}
		}
		return true
	})
}

// shapeKind is the result of the shape classifier: fresh is a tri-state
// (1 proven fresh, 0 unknown, -1 proven-not), shared marks possible
// aliasing of a //lint:shared field, param the pass-through parameter.
type shapeKind struct {
	fresh  int
	shared bool
	param  int // -1 none
}

// shapeClassifier classifies expressions by shape, flow-insensitively:
// local variables resolve through the set of every assignment to them in
// the body. Depth-capped against pathological chains.
type shapeClassifier struct {
	ip    *Interp
	n     *FuncNode
	slots map[*types.Var]int
	seen  map[*types.Var]bool
}

func (c *shapeClassifier) classify(e ast.Expr, depth int) shapeKind {
	unknown := shapeKind{fresh: 0, param: -1}
	if depth > 8 || e == nil {
		return unknown
	}
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		if x.Name == "nil" {
			return shapeKind{fresh: 1, param: -1}
		}
		obj, ok := c.n.Pkg.Info.Uses[x].(*types.Var)
		if !ok {
			return unknown
		}
		if slot, isSig := c.slots[obj]; isSig {
			if slot >= 0 {
				return shapeKind{fresh: 0, param: slot}
			}
			return unknown // the receiver itself
		}
		return c.classifyVar(obj, depth)
	case *ast.UnaryExpr:
		return c.classify(x.X, depth+1)
	case *ast.SliceExpr:
		return c.classify(x.X, depth+1)
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok {
			switch id.Name {
			case "make", "new":
				return shapeKind{fresh: 1, param: -1}
			case "append":
				if len(x.Args) == 0 {
					return shapeKind{fresh: 1, param: -1}
				}
				return c.classify(x.Args[0], depth+1)
			}
		}
		if tv, ok := c.n.Pkg.Info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return c.classify(x.Args[0], depth+1)
		}
		if cs := c.ip.SummaryOf(callee(c.n.Pkg.Info, x)); cs != nil {
			// Single-result calls only: multi-value shapes stay unknown.
			if len(cs.ReturnsFresh) == 1 {
				k := unknown
				if cs.ReturnsFresh[0] {
					k.fresh = 1
				}
				if cs.ReturnsShared[0] {
					k.shared = true
				}
				if p := cs.ReturnsParam[0]; p >= 0 && p < len(x.Args) {
					inner := c.classify(x.Args[p], depth+1)
					if k.fresh == 0 {
						k.fresh = inner.fresh
					}
					k.shared = k.shared || inner.shared
					k.param = inner.param
				}
				return k
			}
		}
		return unknown
	case *ast.CompositeLit:
		return shapeKind{fresh: 1, param: -1}
	case *ast.SelectorExpr:
		if c.ip.sharedFieldVar(c.n.Pkg, x) != nil {
			return shapeKind{fresh: -1, shared: true, param: -1}
		}
		return unknown
	}
	return unknown
}

// classifyVar folds the classifications of every assignment to a local
// variable: fresh only if every assignment is fresh, shared if any is.
func (c *shapeClassifier) classifyVar(obj *types.Var, depth int) shapeKind {
	if c.seen[obj] {
		// A self-referential binding (out = append(out, ...)) is neutral:
		// the variable's shape is decided by its other bindings.
		return shapeKind{fresh: 1, param: -1}
	}
	if c.seen == nil {
		c.seen = map[*types.Var]bool{}
	}
	c.seen[obj] = true
	defer delete(c.seen, obj)
	out := shapeKind{fresh: 1, param: -1}
	found := false
	forEachAssign(c.n, obj, func(rhs ast.Expr) {
		found = true
		if rhs == nil { // var decl without initializer: nil, fresh
			return
		}
		k := c.classify(rhs, depth+1)
		if k.fresh != 1 {
			out.fresh = min(out.fresh, k.fresh)
		}
		out.shared = out.shared || k.shared
	})
	if !found {
		return shapeKind{fresh: 0, param: -1}
	}
	return out
}

// forEachAssign visits the right-hand side of every assignment and
// declaration binding obj inside the function (nil rhs for bare var
// declarations). Range-clause bindings count as opaque assignments.
func forEachAssign(n *FuncNode, obj *types.Var, fn func(rhs ast.Expr)) {
	info := n.Pkg.Info
	bound := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		if !ok {
			return false
		}
		if info.Defs[id] == obj {
			return true
		}
		return info.Uses[id] == obj
	}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.AssignStmt:
			balanced := len(x.Lhs) == len(x.Rhs)
			for i, l := range x.Lhs {
				if !bound(l) {
					continue
				}
				if balanced {
					fn(x.Rhs[i])
				} else {
					fn(x.Rhs[0]) // multi-value: opaque call result
				}
			}
		case *ast.ValueSpec:
			for i, name := range x.Names {
				if !bound(name) {
					continue
				}
				if i < len(x.Values) {
					fn(x.Values[i])
				} else {
					fn(nil)
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{x.Key, x.Value} {
				if e != nil && bound(e) {
					fn(x.X) // backing comes from the ranged collection
				}
			}
		}
		return true
	})
}

// allocFacts records whether the body allocates directly on a call.
func (ip *Interp) allocFacts(n *FuncNode, s *Summary) {
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		if s.Allocates {
			return false
		}
		// append is excluded here: appending into preallocated storage is
		// the standard non-allocating pattern, and the hot-path walker
		// judges appends in place with capacity evidence.
		if kind, ok := allocSiteKind(n.Pkg, node); ok && kind != "append" {
			s.Allocates, s.AllocKind = true, kind
		}
		return true
	})
}

// allocSiteKind classifies one AST node as a direct heap-allocation site.
func allocSiteKind(pkg *Package, node ast.Node) (string, bool) {
	switch x := node.(type) {
	case *ast.CompositeLit:
		return "composite", true
	case *ast.FuncLit:
		return "closure", true
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok {
			switch id.Name {
			case "make", "new":
				return "make", true
			case "append":
				return "append", true
			}
		}
		if name, ok := isPkgFunc2(pkg, x, "fmt", "Sprintf", "Sprint", "Sprintln", "Errorf", "Appendf"); ok {
			return "fmt." + name, true
		}
	}
	return "", false
}

// isPkgFunc2 is isPkgFunc over a package instead of a pass context.
func isPkgFunc2(pkg *Package, call *ast.CallExpr, pkgPath string, names ...string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return "", false
	}
	for _, n := range names {
		if fn.Name() == n {
			return n, true
		}
	}
	return "", false
}

// stopFacts records stop-signal observation and spin-suspect loops.
func (ip *Interp) stopFacts(n *FuncNode, s *Summary) {
	pkg := n.Pkg
	s.ObservesStop = observesStopSignal(pkg, n.Decl.Body)
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		loop, ok := node.(*ast.ForStmt)
		if !ok {
			return true
		}
		if loop.Cond == nil && loop.Init == nil && loop.Post == nil {
			// `for { ... }`: unbounded by construction.
			if !observesStopSignal(pkg, loop.Body) {
				s.SpinLoops = append(s.SpinLoops, loop.Pos())
			}
			return true
		}
		if loop.Cond != nil && loop.Init == nil && loop.Post == nil {
			// `for cond { ... }`: a spin when nothing in the body can
			// change the condition and the body observes no signal.
			if condCanProgress(pkg, loop) || observesStopSignal(pkg, loop.Body) {
				return true
			}
			s.SpinLoops = append(s.SpinLoops, loop.Pos())
		}
		return true
	})
}

// observesStopSignal reports whether the node observes a cooperative-stop
// signal: atomic.Bool Load, channel receive (including select and
// range-over-channel), or context.Done.
func observesStopSignal(pkg *Package, root ast.Node) bool {
	found := false
	ast.Inspect(root, func(node ast.Node) bool {
		if found {
			return false
		}
		switch x := node.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		case *ast.RangeStmt:
			if t := pkg.Info.TypeOf(x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Load":
					if isAtomicBool(pkg.Info.TypeOf(sel.X)) {
						found = true
					}
				case "Done", "Err":
					if isContext(pkg.Info.TypeOf(sel.X)) {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// condCanProgress reports whether a condition-only for loop's condition
// can plausibly change: it contains a call or channel operation, or one of
// its identifiers is written somewhere in the body.
func condCanProgress(pkg *Package, loop *ast.ForStmt) bool {
	progress := false
	condVars := map[types.Object]bool{}
	ast.Inspect(loop.Cond, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.CallExpr, *ast.UnaryExpr:
			if u, ok := x.(*ast.UnaryExpr); !ok || u.Op == token.ARROW {
				progress = true
			}
		case *ast.IndexExpr, *ast.SelectorExpr:
			// Loads through memory the body may write: give the loop the
			// benefit of the doubt.
			progress = true
		case *ast.Ident:
			if obj := pkg.Info.Uses[x]; obj != nil {
				condVars[obj] = true
			}
		}
		return true
	})
	if progress {
		return true
	}
	written := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if obj := pkg.Info.Uses[id]; obj != nil && condVars[obj] {
				progress = true
			}
		}
	}
	ast.Inspect(loop.Body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.AssignStmt:
			for _, l := range x.Lhs {
				written(l)
			}
		case *ast.IncDecStmt:
			written(x.X)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				written(x.X)
			}
		}
		return !progress
	})
	return progress
}

// forEachOwnStmt visits every statement of the body that belongs to the
// function itself, skipping the bodies of nested function literals.
func forEachOwnStmt(body *ast.BlockStmt, fn func(ast.Stmt)) {
	ast.Inspect(body, func(node ast.Node) bool {
		if _, isLit := node.(*ast.FuncLit); isLit {
			return false
		}
		if stmt, ok := node.(ast.Stmt); ok {
			fn(stmt)
		}
		return true
	})
}
