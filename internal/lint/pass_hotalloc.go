package lint

import "fmt"

// hotalloc surfaces the hot-path allocation analysis (hotreport.go) as
// diagnostics: one info-severity finding per (function, allocation-kind)
// group found inside a loop of a function reachable from the sqldb
// operator entry points. Info severity is deliberate — these are
// performance work items for the vectorized-executor arc, not bugs, so
// they never fail -strict or the exit code; the golden pins them so the
// work list only changes deliberately.
func passHotAlloc() *Pass {
	p := &Pass{
		Name: "hotalloc",
		Doc:  "per-iteration heap allocations on operator-reachable row loops",
		Sev:  SevInfo,
	}
	p.Run = func(c *Context) {
		if c.Interp == nil {
			return
		}
		for _, e := range c.Interp.hot {
			if e.Pkg != c.Pkg {
				continue
			}
			site := "site"
			if e.Sites != 1 {
				site = "sites"
			}
			c.Report(e.first, fmt.Sprintf(
				"per-iteration %s allocation in %s (%d %s, score %d) on an operator-reachable loop",
				e.Kind, funcBase(e.Func), e.Sites, site, e.Score))
		}
	}
	return p
}

// funcBase strips the package path from a hot-entry function key.
func funcBase(key string) string {
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == '.' {
			return key[i+1:]
		}
	}
	return key
}
