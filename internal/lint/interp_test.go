package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// loadInterp type-checks the unit fixture and builds the full
// interprocedural context the way run() does.
func loadInterp(t *testing.T, dir, importPath string) (*Module, *Interp) {
	t.Helper()
	mod, err := LoadDir(filepath.Join("testdata", "src", dir), importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	var anns []*annotations
	for _, pkg := range mod.Pkgs {
		anns = append(anns, annotate(mod.Fset, pkg))
	}
	return mod, buildInterp(mod, anns, buildCallGraph(mod))
}

// node resolves a function by bare name through the call graph.
func node(t *testing.T, ip *Interp, name string) *FuncNode {
	t.Helper()
	var found *FuncNode
	for _, n := range ip.Graph.BottomUp {
		if n.Fn.Name() == name {
			if found != nil {
				t.Fatalf("function name %s is ambiguous in the fixture", name)
			}
			found = n
		}
	}
	if found == nil {
		t.Fatalf("function %s not in the call graph", name)
	}
	return found
}

func summaryOf(t *testing.T, ip *Interp, name string) *Summary {
	t.Helper()
	s := ip.SummaryOf(node(t, ip, name).Fn)
	if s == nil {
		t.Fatalf("no summary for %s", name)
	}
	return s
}

func TestSummaryLockFacts(t *testing.T) {
	_, ip := loadInterp(t, "interp", "fixture/interp")

	recvMu := lockRef{Slot: -1, Mu: "mu"}
	if s := summaryOf(t, ip, "locker"); s.LockDelta[recvMu] != 1 || !s.MayAcquire[recvMu] {
		t.Errorf("locker: LockDelta=%v MayAcquire=%v, want +1 and may-acquire on recv.mu", s.LockDelta, s.MayAcquire)
	}
	if s := summaryOf(t, ip, "unlocker"); s.LockDelta[recvMu] != -1 {
		t.Errorf("unlocker: LockDelta=%v, want -1 on recv.mu", s.LockDelta)
	}
	if s := summaryOf(t, ip, "peek"); !s.Requires[recvMu] {
		t.Errorf("peek: Requires=%v, want recv.mu (lint:holds)", s.Requires)
	}
	// The wrapper never locks, so peek's receiver obligation lands on the
	// wrapper's first parameter.
	if s := summaryOf(t, ip, "wrapper"); !s.Requires[lockRef{Slot: 0, Mu: "mu"}] {
		t.Errorf("wrapper: Requires=%v, want inherited param-0 mu obligation", s.Requires)
	}
}

func TestSummaryOwnershipFacts(t *testing.T) {
	_, ip := loadInterp(t, "interp", "fixture/interp")

	if s := summaryOf(t, ip, "handOut"); !s.ReturnsShared[0] || s.ReturnsFresh[0] {
		t.Errorf("handOut: shared=%v fresh=%v, want returns-shared", s.ReturnsShared, s.ReturnsFresh)
	}
	if s := summaryOf(t, ip, "copyOut"); !s.ReturnsFresh[0] || s.ReturnsShared[0] {
		t.Errorf("copyOut: fresh=%v shared=%v, want returns-fresh", s.ReturnsFresh, s.ReturnsShared)
	}
	if s := summaryOf(t, ip, "growCopy"); !s.ReturnsFresh[0] {
		t.Errorf("growCopy: fresh=%v, want returns-fresh (self-append must stay neutral)", s.ReturnsFresh)
	}
	if s := summaryOf(t, ip, "passThrough"); s.ReturnsParam[0] != 0 {
		t.Errorf("passThrough: ReturnsParam=%v, want result 0 -> param 0", s.ReturnsParam)
	}
	if s := summaryOf(t, ip, "publish"); !s.EscapesParam[0] {
		t.Errorf("publish: EscapesParam=%v, want param 0 escaping via the package-level store", s.EscapesParam)
	}
}

func TestCallGraphShape(t *testing.T) {
	_, ip := loadInterp(t, "interp", "fixture/interp")
	g := ip.Graph

	index := map[*FuncNode]int{}
	for i, n := range g.BottomUp {
		index[n] = i
	}
	peek, wrapper := node(t, ip, "peek"), node(t, ip, "wrapper")
	if index[peek] >= index[wrapper] {
		t.Errorf("bottom-up order has wrapper (%d) before its callee peek (%d)", index[wrapper], index[peek])
	}
	edge := false
	for _, c := range wrapper.Callees {
		if c == peek {
			edge = true
		}
	}
	if !edge {
		t.Error("wrapper -> peek call edge missing")
	}
	even, odd := node(t, ip, "even"), node(t, ip, "odd")
	if !g.SameCycle(even, odd) {
		t.Error("even and odd are mutually recursive but not in the same SCC")
	}
	if g.SameCycle(even, peek) {
		t.Error("even and peek must not share an SCC")
	}
	reach := g.Reachable([]*FuncNode{wrapper})
	if !reach[wrapper] || !reach[peek] {
		t.Errorf("Reachable(wrapper) = %v, want wrapper and peek", reach)
	}
	if reach[even] {
		t.Error("Reachable(wrapper) must not include even")
	}
}

// TestInterpRemovesFalsePositive: fpDemo appends into a call result the
// intra engine cannot classify (a false positive); copyOut's returns-fresh
// summary clears it.
func TestInterpRemovesFalsePositive(t *testing.T) {
	mod, err := LoadDir(filepath.Join("testdata", "src", "interp"), "fixture/interp")
	if err != nil {
		t.Fatal(err)
	}
	p := PassByName("sharedmut")
	intra := RunIntra(mod, []*Pass{p})
	var fpSeen bool
	for _, d := range intra.Diags {
		if strings.Contains(d.Msg, "append may write into the shared backing array of out") {
			fpSeen = true
		}
	}
	if !fpSeen {
		t.Fatalf("intra engine did not produce the fpDemo false positive; diags: %v", intra.Diags)
	}
	full := Run(mod, []*Pass{p})
	for _, d := range full.Diags {
		if strings.Contains(d.Msg, "append may write into the shared backing array of out") {
			t.Errorf("interprocedural engine kept the fpDemo false positive: %v", d)
		}
	}
}

// TestInterpCatchesWhatIntraMisses is the acceptance check for the
// interprocedural upgrades: on the *_interp fixtures the intra-procedural
// engine (RunIntra — the pre-summary engine, verbatim) reports nothing,
// while the summary-driven engine reports every seeded cross-function
// violation.
func TestInterpCatchesWhatIntraMisses(t *testing.T) {
	cases := []struct {
		pass, dir, importPath string
		wantMsgs              []string
	}{
		{"lockguard", "lockguard_interp", "fixture/lockguard_interp", []string{
			"accessed without holding c.mu",
			"possible self-deadlock",
		}},
		{"sharedmut", "sharedmut_interp", "fixture/sharedmut_interp", []string{
			"sorts t.snapshot() in place",
			"append may write into the shared backing array",
		}},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			mod, err := LoadDir(filepath.Join("testdata", "src", tc.dir), tc.importPath)
			if err != nil {
				t.Fatal(err)
			}
			p := PassByName(tc.pass)
			if p == nil {
				t.Fatalf("no pass %q", tc.pass)
			}
			intra := RunIntra(mod, []*Pass{p})
			if len(intra.Diags) != 0 {
				t.Errorf("intra engine reported %d finding(s) on %s, want 0 (the violations must be invisible without summaries): %v",
					len(intra.Diags), tc.dir, intra.Diags)
			}
			full := Run(mod, []*Pass{p})
			if len(full.Diags) != len(tc.wantMsgs) {
				t.Fatalf("interprocedural engine reported %d finding(s), want %d: %v", len(full.Diags), len(tc.wantMsgs), full.Diags)
			}
			for i, want := range tc.wantMsgs {
				if !strings.Contains(full.Diags[i].Msg, want) {
					t.Errorf("diag %d = %q, want substring %q", i, full.Diags[i].Msg, want)
				}
			}
		})
	}
}
