package lint

import (
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDeletedFixFailsTheBuild reverts three fixes the engine's passes
// drove into the real tree — the insertUnchecked index-maintenance lock
// (lockguard), the orderRelation pre-sort freshen (sharedmut), and the
// mixer's configured http.Server (srvhygiene) — in a scratch copy of the
// repository, and asserts each regression is reported. Deleting a fix
// must fail the build.
func TestDeletedFixFailsTheBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module load in -short mode")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	copyTree(t, root, tmp)

	// lockguard: run the secondary-index maintenance bare again.
	patch(t, filepath.Join(tmp, "internal", "sqldb", "table.go"),
		"\tt.mu.Lock()\n\tfor _, idx := range t.secondary {",
		"\tfor _, idx := range t.secondary {")
	patch(t, filepath.Join(tmp, "internal", "sqldb", "table.go"),
		"\tt.seg = nil\n\tt.mu.Unlock()",
		"\tt.seg = nil")
	// sharedmut: sort the possibly-aliased rows slice in place again.
	patch(t, filepath.Join(tmp, "internal", "sqldb", "plan.go"),
		"\tout.rows = append(make([]Row, 0, len(out.rows)), out.rows...)\n",
		"")
	// srvhygiene: serve the metrics listener bare again (alongside the
	// drained server.StartHTTP path, so every identifier stays used).
	patch(t, filepath.Join(tmp, "cmd", "mixer", "main.go"),
		"addr, stopHTTP, err := server.StartHTTP(srv)",
		"go func() { _ = http.ListenAndServe(srv.Addr, mux) }()\n\t\taddr, stopHTTP, err := server.StartHTTP(srv)")

	mod, err := LoadModule(tmp)
	if err != nil {
		t.Fatalf("loading patched module: %v", err)
	}
	rep := Run(mod, Catalog())
	wants := []struct{ file, msg string }{
		{"internal/sqldb/table.go", "(guarded by mu) accessed without holding t.mu"},
		{"internal/sqldb/plan.go", "sortRelation mutates r in place"},
		{"cmd/mixer/main.go", "bare http.ListenAndServe has no timeouts"},
	}
	for _, w := range wants {
		found := false
		for _, d := range rep.Diags {
			if d.Pos.Filename == w.file && strings.Contains(d.Msg, w.msg) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("reverting the fix in %s was not reported (want a diagnostic containing %q)\ndiags: %v",
				w.file, w.msg, rep.Diags)
		}
	}
}

// copyTree copies the module sources into dst, skipping VCS metadata and
// testdata (fixtures are loaded separately and the goldens are irrelevant
// to a scratch load).
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		if rel == "." {
			return nil
		}
		name := d.Name()
		if d.IsDir() {
			if name == "testdata" || strings.HasPrefix(name, ".") {
				return fs.SkipDir
			}
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), b, 0o644)
	})
	if err != nil {
		t.Fatalf("copying module tree: %v", err)
	}
}

// patch rewrites one occurrence of old with new and fails the test when
// the anchor text has drifted — a drifted anchor means the regression
// test no longer reverts what it claims to.
func patch(t *testing.T, file, old, new string) {
	t.Helper()
	b, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), old) {
		t.Fatalf("%s no longer contains the fix anchor %q; update the regression test", file, old)
	}
	out := strings.Replace(string(b), old, new, 1)
	if err := os.WriteFile(file, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
}
