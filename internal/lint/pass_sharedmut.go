package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// passSharedMut is the aliasing/ownership analysis: values whose
// //lint:shared-annotated slice fields may alias shared storage (a
// relation's rows aliasing sqldb base-table storage via the star fast
// path) must not be mutated in place — no in-place sort, no element
// assignment, no append into the shared backing array — until the field
// has been freshened with an owned copy. This is exactly the PR 4
// fast-path bug class: ORDER BY sorting, and UNION appending into, rows
// slices that still aliased a base table corrupted the table for every
// other query and raced with concurrent executions of a shared plan.
//
// The analysis is provenance-based and, with the interprocedural layer
// (Context.Interp non-nil), follows provenance across calls: a call whose
// callee summary proves returns-fresh classifies as locally owned instead
// of giving up, a callee that returns a //lint:shared field's backing
// taints the result, a callee that passes a parameter through to its
// result propagates the argument's provenance, and a callee that stores a
// parameter's backing beyond the call (escapes-param) revokes the
// caller's exclusive ownership of that argument. Under RunIntra every
// call result is simply unknown provenance, as in PR 6.
//
// Within one function the analysis is flow-sensitive. A value of an
// "ownership-tracked" type (a struct declaring a shared field, a pointer
// to one, or the shared field's own slice type) is tainted when it arrives
// from a call, a parameter, or a collection — anywhere its backing array
// may be shared — and fresh when it is built locally from make/append-
// to-make/composite literals. Assigning a fresh expression to the shared
// field (`v.rows = append(make([]Row, 0, n), v.rows...)`) transfers
// ownership to v for that field. Functions that mutate a parameter's
// shared backing in place declare it with //lint:mutates <param>; inside
// them the parameter is treated as owned, and every call site is checked
// to pass an owned value instead.
func passSharedMut() *Pass {
	return &Pass{
		Name: "sharedmut",
		Doc:  "in-place mutation of values that may alias shared storage",
		Sev:  SevError,
		Run: func(c *Context) {
			if len(c.Ann.shared) == 0 && (c.Interp == nil || len(c.Interp.Ann.shared) == 0) {
				return
			}
			sm := newSharedMut(c)
			for _, file := range c.Pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					fd, ok := n.(*ast.FuncDecl)
					if ok && fd.Body != nil {
						sm.checkFunc(fd)
					}
					return true
				})
			}
		},
	}
}

type sharedMut struct {
	c *Context
	// owners is the set of named struct types declaring at least one
	// shared field.
	owners map[*types.Named]bool
	// fieldTypes holds the shared fields' own (slice) types; a variable of
	// one of these types is ownership-tracked too.
	fieldTypes []types.Type
	// state maps "v" / "v.field" to freshness (true = locally owned
	// backing, false = possibly shared). Reset per function.
	state map[string]bool
}

func newSharedMut(c *Context) *sharedMut {
	// With the interprocedural layer the type domain is module-wide: a
	// package mutating another package's shared-annotated values is held
	// to the same rules.
	if ip := c.Interp; ip != nil {
		return &sharedMut{c: c, owners: ip.owners, fieldTypes: ip.fieldTypes}
	}
	sm := &sharedMut{c: c, owners: map[*types.Named]bool{}}
	for f := range c.Ann.shared {
		sm.fieldTypes = append(sm.fieldTypes, f.Type())
		// The owning struct: walk the package's named types for one whose
		// underlying struct contains this field object.
		scope := c.Pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == f {
					sm.owners[named] = true
				}
			}
		}
	}
	return sm
}

// tracked reports whether t is an ownership-tracked type.
func (sm *sharedMut) tracked(t types.Type) bool {
	if t == nil {
		return false
	}
	if n := namedType(t); n != nil && sm.owners[n] {
		return true
	}
	for _, ft := range sm.fieldTypes {
		if types.Identical(t, ft) {
			return true
		}
	}
	return false
}

// isShared reports whether f carries a //lint:shared annotation, in this
// package or (interprocedurally) anywhere in the module.
func (sm *sharedMut) isShared(f *types.Var) bool {
	if sm.c.Ann.shared[f] {
		return true
	}
	return sm.c.Interp != nil && sm.c.Interp.Ann.shared[f]
}

// sharedField resolves a selector to a shared field object, nil otherwise.
func (sm *sharedMut) sharedField(sel *ast.SelectorExpr) *types.Var {
	s, ok := sm.c.Pkg.Info.Selections[sel]
	if !ok {
		return nil
	}
	f, ok := s.Obj().(*types.Var)
	if !ok || !sm.isShared(f) {
		return nil
	}
	return f
}

// checkFunc runs the state machine over one function body.
func (sm *sharedMut) checkFunc(fd *ast.FuncDecl) {
	sm.state = map[string]bool{}
	owned := map[string]bool{}
	if obj, ok := sm.c.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
		for _, p := range sm.c.Ann.mutates[obj] {
			owned[p] = true
		}
	}
	seed := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, f := range fields.List {
			for _, name := range f.Names {
				if sm.tracked(sm.c.TypeOf(name)) {
					sm.state[name.Name] = owned[name.Name]
				}
			}
		}
	}
	seed(fd.Recv)
	seed(fd.Type.Params)
	sm.scanStmts(fd.Body.List)
	sm.state = nil
}

// scanStmts threads the ownership state through a statement list in
// order. Branch bodies run on a copy of the state, so an assignment taken
// on one path (the parallel arm of a join returning early, say) cannot
// poison the analysis of the other path; the price is that freshening
// inside a branch is forgotten after it — a false-positive-only
// approximation.
func (sm *sharedMut) scanStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		sm.scanStmt(s)
	}
}

func (sm *sharedMut) branch(stmts []ast.Stmt) {
	saved := sm.state
	sm.state = map[string]bool{}
	for k, v := range saved {
		sm.state[k] = v
	}
	sm.scanStmts(stmts)
	sm.state = saved
}

func (sm *sharedMut) scanStmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.AssignStmt:
		for _, r := range x.Rhs {
			sm.scanExpr(r)
		}
		sm.assign(x)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			sm.decl(gd)
		}
	case *ast.BlockStmt:
		sm.scanStmts(x.List)
	case *ast.IfStmt:
		if x.Init != nil {
			sm.scanStmt(x.Init)
		}
		sm.scanExpr(x.Cond)
		sm.branch(x.Body.List)
		if x.Else != nil {
			sm.branch([]ast.Stmt{x.Else})
		}
	case *ast.ForStmt:
		if x.Init != nil {
			sm.scanStmt(x.Init)
		}
		if x.Cond != nil {
			sm.scanExpr(x.Cond)
		}
		body := x.Body.List
		if x.Post != nil {
			body = append(body[:len(body):len(body)], x.Post)
		}
		sm.branch(body)
	case *ast.RangeStmt:
		sm.scanExpr(x.X)
		saved := sm.state
		sm.state = map[string]bool{}
		for k, v := range saved {
			sm.state[k] = v
		}
		sm.rangeVars(x)
		sm.scanStmts(x.Body.List)
		sm.state = saved
	case *ast.SwitchStmt:
		if x.Init != nil {
			sm.scanStmt(x.Init)
		}
		if x.Tag != nil {
			sm.scanExpr(x.Tag)
		}
		for _, cl := range x.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					sm.scanExpr(e)
				}
				sm.branch(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			sm.scanStmt(x.Init)
		}
		for _, cl := range x.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				sm.branch(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, cl := range x.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				body := cc.Body
				if cc.Comm != nil {
					body = append([]ast.Stmt{cc.Comm}, body...)
				}
				sm.branch(body)
			}
		}
	case *ast.LabeledStmt:
		sm.scanStmt(x.Stmt)
	case *ast.ExprStmt:
		sm.scanExpr(x.X)
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			sm.scanExpr(r)
		}
	case *ast.GoStmt:
		sm.scanExpr(x.Call)
	case *ast.DeferStmt:
		sm.scanExpr(x.Call)
	case *ast.SendStmt:
		sm.scanExpr(x.Chan)
		sm.scanExpr(x.Value)
	case *ast.IncDecStmt:
		sm.scanExpr(x.X)
	}
}

// scanExpr applies the call-shaped mutation checks to every call in the
// expression tree; function literals are analyzed on a copy of the
// current state (they may capture and mutate, but close over the same
// provenance).
func (sm *sharedMut) scanExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			sm.branch(x.Body.List)
			return false
		case *ast.CallExpr:
			sm.call(x)
		}
		return true
	})
}

// assign applies one assignment: mutation checks on indexed left-hand
// sides, then state transfer for tracked variables and shared fields.
func (sm *sharedMut) assign(as *ast.AssignStmt) {
	for _, l := range as.Lhs {
		if ix, ok := l.(*ast.IndexExpr); ok && sm.taintedExpr(ix.X) {
			sm.c.Report(as, fmt.Sprintf(
				"in-place element write to %s, which may alias shared storage; reassign it from a fresh copy first",
				exprString(ix.X)))
		}
	}
	balanced := len(as.Lhs) == len(as.Rhs)
	for i, l := range as.Lhs {
		fresh := false
		if balanced {
			fresh = sm.classify(as.Rhs[i])
		}
		switch lhs := l.(type) {
		case *ast.Ident:
			if lhs.Name != "_" && sm.tracked(sm.c.TypeOf(lhs)) {
				sm.state[lhs.Name] = fresh
			}
		case *ast.SelectorExpr:
			if sm.sharedField(lhs) != nil {
				sm.state[exprString(lhs)] = fresh
			}
		}
	}
}

// decl applies `var v []T = ...` declarations: no initializer means a nil,
// locally owned slice.
func (sm *sharedMut) decl(gd *ast.GenDecl) {
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			if name.Name == "_" || !sm.tracked(sm.c.TypeOf(name)) {
				continue
			}
			fresh := true
			if len(vs.Values) > i {
				fresh = sm.classify(vs.Values[i])
			}
			sm.state[name.Name] = fresh
		}
	}
}

// rangeVars taints tracked range variables: rows handed out by a
// collection share whatever backing the collection's producer gave them.
func (sm *sharedMut) rangeVars(rs *ast.RangeStmt) {
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" && sm.tracked(sm.c.TypeOf(id)) {
			sm.state[id.Name] = false
		}
	}
}

// call applies the three call-shaped mutation checks: append into a shared
// backing array, in-place sorts, and lint:mutates call sites.
func (sm *sharedMut) call(call *ast.CallExpr) {
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
		if sm.taintedExpr(call.Args[0]) {
			sm.c.Report(call, fmt.Sprintf(
				"append may write into the shared backing array of %s (possibly aliasing base-table storage); reassign it from a fresh copy first",
				exprString(call.Args[0])))
		}
		return
	}
	for _, pkgPath := range []string{"sort", "slices"} {
		if name, ok := isPkgFunc(sm.c, call, pkgPath, "Slice", "SliceStable", "Sort", "Stable", "SortFunc", "SortStableFunc"); ok && len(call.Args) > 0 {
			if sm.taintedExpr(call.Args[0]) {
				sm.c.Report(call, fmt.Sprintf(
					"%s.%s sorts %s in place, which may alias shared base-table storage; sort a fresh copy",
					pkgPath, name, exprString(call.Args[0])))
			}
			return
		}
	}
	sm.checkMutatesCall(call)
	// Escapes-param: handing a tracked value to a callee that stores its
	// backing beyond the call revokes the caller's exclusive ownership —
	// later in-place mutation would write into storage someone else now
	// also references.
	if cs := sm.calleeSummary(call); cs != nil {
		for i, a := range call.Args {
			if i >= len(cs.EscapesParam) || !cs.EscapesParam[i] {
				continue
			}
			if id, ok := ast.Unparen(a).(*ast.Ident); ok {
				if _, tracked := sm.state[id.Name]; tracked {
					sm.state[id.Name] = false
				}
			}
		}
	}
}

// checkMutatesCall verifies that arguments bound to lint:mutates parameters
// carry owned backing.
func (sm *sharedMut) checkMutatesCall(call *ast.CallExpr) {
	var fn *types.Func
	var recv ast.Expr
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ = sm.c.ObjectOf(fun).(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = sm.c.ObjectOf(fun.Sel).(*types.Func)
		recv = fun.X
	}
	if fn == nil {
		return
	}
	params := sm.c.Ann.mutates[fn]
	if len(params) == 0 && sm.c.Interp != nil {
		params = sm.c.Interp.Ann.mutates[fn]
	}
	if len(params) == 0 {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	for _, pname := range params {
		var arg ast.Expr
		if sig.Recv() != nil && sig.Recv().Name() == pname {
			arg = recv
		} else {
			for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
				if sig.Params().At(i).Name() == pname {
					arg = call.Args[i]
				}
			}
		}
		if arg == nil || sm.ownedArg(arg) {
			continue
		}
		sm.c.Report(call, fmt.Sprintf(
			"%s mutates %s in place (lint:mutates); argument %s may alias shared storage — pass an owned copy",
			fn.Name(), pname, exprString(arg)))
	}
}

// ownedArg reports whether an argument satisfies a lint:mutates parameter:
// the value is fresh, or every shared field it carries has been freshened.
func (sm *sharedMut) ownedArg(arg ast.Expr) bool {
	if sm.classify(arg) {
		return true
	}
	n := namedType(sm.c.TypeOf(arg))
	if n == nil || !sm.owners[n] {
		return false
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	base := exprString(arg)
	all := true
	anyShared := false
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !sm.isShared(f) {
			continue
		}
		anyShared = true
		if !sm.state[base+"."+f.Name()] {
			all = false
		}
	}
	return anyShared && all
}

// taintedExpr reports whether e is ownership-tracked and currently
// possibly shared. Untracked expressions are never flagged: the pass
// reasons only about provenance it has proven.
func (sm *sharedMut) taintedExpr(e ast.Expr) bool {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		fresh, ok := sm.state[x.Name]
		return ok && !fresh
	case *ast.SelectorExpr:
		if sm.sharedField(x) == nil {
			return false
		}
		if fresh, ok := sm.state[exprString(x)]; ok {
			return !fresh
		}
		if fresh, ok := sm.state[exprString(x.X)]; ok {
			return !fresh
		}
		return true // shared field of an untracked base: assume shared
	case *ast.CallExpr:
		// Interprocedural: the callee's summary settles the result's
		// provenance. Returns-shared is tainted backing; a pass-through
		// result carries the argument's provenance; anything else —
		// including returns-fresh — is not proven tainted.
		cs := sm.calleeSummary(x)
		if cs == nil || len(cs.ReturnsFresh) != 1 {
			return false
		}
		if cs.ReturnsShared[0] {
			return true
		}
		if p := cs.ReturnsParam[0]; p >= 0 && p < len(x.Args) {
			return sm.taintedExpr(x.Args[p])
		}
		return false
	}
	return false
}

// calleeSummary resolves a call's static callee summary (nil without the
// interprocedural layer).
func (sm *sharedMut) calleeSummary(call *ast.CallExpr) *Summary {
	if sm.c.Interp == nil {
		return nil
	}
	return sm.c.Interp.SummaryOf(callee(sm.c.Pkg.Info, call))
}

// classify computes the freshness of an expression: true means the backing
// array is locally owned.
func (sm *sharedMut) classify(e ast.Expr) bool {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		if x.Name == "nil" {
			return true
		}
		if fresh, ok := sm.state[x.Name]; ok {
			return fresh
		}
		return false
	case *ast.UnaryExpr:
		return sm.classify(x.X)
	case *ast.SliceExpr:
		return sm.classify(x.X)
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok {
			switch id.Name {
			case "make":
				return true
			case "append":
				if len(x.Args) > 0 {
					return sm.classify(x.Args[0])
				}
				return true
			}
		}
		// Conversions preserve the operand's backing; real calls return
		// values of unknown provenance — unless the callee's summary
		// proves returns-fresh (or passes a parameter through, in which
		// case the argument's provenance decides).
		if tv, ok := sm.c.Pkg.Info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return sm.classify(x.Args[0])
		}
		if cs := sm.calleeSummary(x); cs != nil && len(cs.ReturnsFresh) == 1 {
			if cs.ReturnsFresh[0] {
				return true
			}
			if p := cs.ReturnsParam[0]; p >= 0 && p < len(x.Args) && !cs.ReturnsShared[0] {
				return sm.classify(x.Args[p])
			}
		}
		return false
	case *ast.CompositeLit:
		t := sm.c.TypeOf(x)
		n := namedType(t)
		if n == nil || !sm.owners[n] {
			// Slice/map/plain literals own their backing.
			return true
		}
		st, ok := n.Underlying().(*types.Struct)
		if !ok {
			return true
		}
		for _, el := range x.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				// Positional struct literal: assume the shared field is
				// among the values and classify them all.
				if !sm.classify(el) {
					return false
				}
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if sm.isShared(f) && f.Name() == key.Name && !sm.classify(kv.Value) {
					return false
				}
			}
		}
		return true
	case *ast.SelectorExpr:
		if sm.sharedField(x) != nil {
			if fresh, ok := sm.state[exprString(x)]; ok {
				return fresh
			}
			if fresh, ok := sm.state[exprString(x.X)]; ok {
				return fresh
			}
		}
		return false
	}
	return false
}
