package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one fully type-checked package: syntax, type information, and
// the file names backing it. Test files are excluded — the analyzer guards
// production code; fixtures and tests time, spawn, and discard whatever
// they like.
type Package struct {
	Path  string // import path ("npdbench/internal/sqldb")
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Module is the loaded closure of repository packages sharing one FileSet.
type Module struct {
	Root string
	Fset *token.FileSet
	Pkgs []*Package // sorted by import path
}

// loader resolves intra-module imports by type-checking the imported
// directory on demand (memoized) and delegates everything else to the
// stdlib source importer, so the engine needs nothing beyond the standard
// library — no export data, no external driver.
type loader struct {
	root    string
	modpath string
	fset    *token.FileSet
	std     types.Importer
	cache   map[string]*Package
	loading map[string]bool
}

func newLoader(root, modpath string, fset *token.FileSet) *loader {
	return &loader{
		root:    root,
		modpath: modpath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   map[string]*Package{},
		loading: map[string]bool{},
	}
}

// Import implements types.Importer over the union of module and stdlib
// packages.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.modpath || strings.HasPrefix(path, l.modpath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one module package by import path.
func (l *loader) load(path string) (*Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.root
	if path != l.modpath {
		dir = filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.modpath+"/")))
	}
	p, err := l.check(path, dir)
	if err != nil {
		return nil, err
	}
	l.cache[path] = p
	return p, nil
}

// check type-checks the non-test Go files of one directory as the package
// with the given import path.
func (l *loader) check(path, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

// LoadModule loads every package found under the given directories
// (relative to the module root; default the whole module). testdata and
// hidden directories are skipped. The module path comes from go.mod.
func LoadModule(root string, dirs ...string) (*Module, error) {
	modpath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	if len(dirs) == 0 {
		dirs = []string{"."}
	}
	fset := token.NewFileSet()
	l := newLoader(root, modpath, fset)
	seen := map[string]bool{}
	for _, d := range dirs {
		start := filepath.Join(root, filepath.FromSlash(d))
		err := filepath.WalkDir(start, func(p string, de fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if de.IsDir() {
				name := de.Name()
				if name == "testdata" || (strings.HasPrefix(name, ".") && p != start) {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(p, ".go") || strings.HasSuffix(p, "_test.go") {
				return nil
			}
			dir := filepath.Dir(p)
			if seen[dir] {
				return nil
			}
			seen[dir] = true
			rel, err := filepath.Rel(root, dir)
			if err != nil {
				return err
			}
			ip := modpath
			if rel != "." {
				ip = modpath + "/" + filepath.ToSlash(rel)
			}
			_, err = l.load(ip)
			return err
		})
		if err != nil {
			return nil, err
		}
	}
	return l.module(root), nil
}

// LoadDir type-checks a single directory as a standalone package under the
// given import path — the fixture loader used by the per-pass golden tests.
// Fixture packages may import only the standard library.
func LoadDir(dir, path string) (*Module, error) {
	fset := token.NewFileSet()
	l := newLoader(dir, path, fset)
	p, err := l.check(path, dir)
	if err != nil {
		return nil, err
	}
	l.cache[path] = p
	return l.module(dir), nil
}

func (l *loader) module(root string) *Module {
	m := &Module{Root: root, Fset: l.fset}
	for _, p := range l.cache {
		m.Pkgs = append(m.Pkgs, p)
	}
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].Path < m.Pkgs[j].Path })
	return m
}

// modulePath reads the module declaration out of root's go.mod.
func modulePath(root string) (string, error) {
	b, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s/go.mod", root)
}
