package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one fully type-checked package: syntax, type information, and
// the file names backing it. Test files are excluded — the analyzer guards
// production code; fixtures and tests time, spawn, and discard whatever
// they like.
type Package struct {
	Path  string // import path ("npdbench/internal/sqldb")
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Module is the loaded closure of repository packages sharing one FileSet.
type Module struct {
	Root string
	Fset *token.FileSet
	Pkgs []*Package // sorted by import path
}

// loader resolves intra-module imports by type-checking the imported
// directory on demand (memoized) and delegates everything else to the
// stdlib source importer, so the engine needs nothing beyond the standard
// library — no export data, no external driver.
type loader struct {
	root    string
	modpath string
	fset    *token.FileSet
	std     types.Importer
	cache   map[string]*Package
	loading map[string]bool
}

func newLoader(root, modpath string, fset *token.FileSet) *loader {
	return &loader{
		root:    root,
		modpath: modpath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   map[string]*Package{},
		loading: map[string]bool{},
	}
}

// Import implements types.Importer over the union of module and stdlib
// packages.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.modpath || strings.HasPrefix(path, l.modpath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one module package by import path.
func (l *loader) load(path string) (*Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.root
	if path != l.modpath {
		dir = filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.modpath+"/")))
	}
	p, err := l.check(path, dir)
	if err != nil {
		return nil, err
	}
	l.cache[path] = p
	return p, nil
}

// check type-checks the non-test Go files of one directory as the package
// with the given import path.
func (l *loader) check(path, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

// LoadModule loads every package found under the given directories
// (relative to the module root; default the whole module). testdata and
// hidden directories are skipped. The module path comes from go.mod.
//
// Loading is parallel: all files parse concurrently (token.FileSet is
// safe for concurrent AddFile), the module-internal import graph is read
// off the syntax, and packages type-check on a worker pool in dependency
// waves — a package starts the moment its last module dependency
// finishes, so independent import subtrees (cmd/* on one side, the
// internal/* chains on the other) overlap. Standard-library imports go
// through one shared source importer behind a mutex: the importer
// memoizes, so the first package pays for the stdlib closure and the
// rest hit its cache.
func LoadModule(root string, dirs ...string) (*Module, error) {
	modpath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	if len(dirs) == 0 {
		dirs = []string{"."}
	}
	fset := token.NewFileSet()
	units, err := discoverPackages(root, modpath, dirs)
	if err != nil {
		return nil, err
	}
	if err := parseUnits(fset, units); err != nil {
		return nil, err
	}
	pl := &parLoader{
		root:    root,
		modpath: modpath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
	}
	if err := pl.checkAll(units); err != nil {
		return nil, err
	}
	m := &Module{Root: root, Fset: fset}
	for _, u := range units {
		if p := pl.pkgs[u.path]; p != nil {
			m.Pkgs = append(m.Pkgs, p)
		}
	}
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].Path < m.Pkgs[j].Path })
	return m, nil
}

// loadUnit is one package directory between discovery and type-checking.
type loadUnit struct {
	path  string // import path
	dir   string
	names []string // .go file names, sorted
	files []*ast.File

	deps []string // module-internal imports present in the unit set
}

// discoverPackages walks the requested directories and collects one unit
// per package directory containing non-test Go files.
func discoverPackages(root, modpath string, dirs []string) ([]*loadUnit, error) {
	seen := map[string]*loadUnit{}
	var units []*loadUnit
	for _, d := range dirs {
		start := filepath.Join(root, filepath.FromSlash(d))
		err := filepath.WalkDir(start, func(p string, de fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if de.IsDir() {
				name := de.Name()
				if name == "testdata" || (strings.HasPrefix(name, ".") && p != start) {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(p, ".go") || strings.HasSuffix(p, "_test.go") {
				return nil
			}
			dir := filepath.Dir(p)
			u := seen[dir]
			if u == nil {
				rel, err := filepath.Rel(root, dir)
				if err != nil {
					return err
				}
				ip := modpath
				if rel != "." {
					ip = modpath + "/" + filepath.ToSlash(rel)
				}
				u = &loadUnit{path: ip, dir: dir}
				seen[dir] = u
				units = append(units, u)
			}
			u.names = append(u.names, filepath.Base(p))
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	for _, u := range units {
		sort.Strings(u.names)
	}
	sort.Slice(units, func(i, j int) bool { return units[i].path < units[j].path })
	return units, nil
}

// parseUnits parses every file of every unit concurrently and resolves
// each unit's module-internal dependencies from the import declarations.
func parseUnits(fset *token.FileSet, units []*loadUnit) error {
	inSet := map[string]bool{}
	for _, u := range units {
		inSet[u.path] = true
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for _, u := range units {
		u.files = make([]*ast.File, len(u.names))
		for i, name := range u.names {
			wg.Add(1)
			go func(u *loadUnit, i int, name string) {
				defer wg.Done()
				f, err := parser.ParseFile(fset, filepath.Join(u.dir, name), nil, parser.ParseComments)
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				u.files[i] = f
			}(u, i, name)
		}
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	for _, u := range units {
		depSet := map[string]bool{}
		for _, f := range u.files {
			for _, imp := range f.Imports {
				ip := strings.Trim(imp.Path.Value, `"`)
				if inSet[ip] && ip != u.path {
					depSet[ip] = true
				}
			}
		}
		for ip := range depSet {
			u.deps = append(u.deps, ip)
		}
		sort.Strings(u.deps)
	}
	return nil
}

// parLoader type-checks parsed units on a worker pool in dependency
// order. The stdlib source importer is not safe for concurrent use, so
// one shared instance sits behind stdMu; completed module packages are
// read from pkgs under mu.
type parLoader struct {
	root    string
	modpath string
	fset    *token.FileSet

	stdMu sync.Mutex
	std   types.Importer

	mu   sync.Mutex
	pkgs map[string]*Package
}

// Import implements types.Importer for the concurrent type-checkers. A
// module import is guaranteed complete by the wave scheduling; a nil
// entry means the dependency itself failed to check.
func (pl *parLoader) Import(path string) (*types.Package, error) {
	if path == pl.modpath || strings.HasPrefix(path, pl.modpath+"/") {
		pl.mu.Lock()
		p := pl.pkgs[path]
		pl.mu.Unlock()
		if p == nil {
			return nil, fmt.Errorf("lint: dependency %s failed to load", path)
		}
		return p.Types, nil
	}
	pl.stdMu.Lock()
	defer pl.stdMu.Unlock()
	return pl.std.Import(path)
}

// checkAll schedules the units: each unit is enqueued when its last
// module dependency completes, and up to GOMAXPROCS workers drain the
// queue. Import cycles are rejected up front (Kahn's count), so the
// scheduler cannot stall.
func (pl *parLoader) checkAll(units []*loadUnit) error {
	byPath := map[string]*loadUnit{}
	for _, u := range units {
		byPath[u.path] = u
	}
	remaining := map[string]int{}
	dependents := map[string][]string{}
	for _, u := range units {
		remaining[u.path] = len(u.deps)
		for _, d := range u.deps {
			dependents[d] = append(dependents[d], u.path)
		}
	}
	// Cycle check: peel zero-degree units; anything left sits on a cycle.
	deg := map[string]int{}
	for p, n := range remaining {
		deg[p] = n
	}
	queue := make([]string, 0, len(units))
	for _, u := range units {
		if deg[u.path] == 0 {
			queue = append(queue, u.path)
		}
	}
	peeled := 0
	for len(queue) > 0 {
		p := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		peeled++
		for _, d := range dependents[p] {
			if deg[d]--; deg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if peeled != len(units) {
		var cyclic []string
		for p, n := range deg {
			if n > 0 {
				cyclic = append(cyclic, p)
			}
		}
		sort.Strings(cyclic)
		return fmt.Errorf("lint: import cycle through %s", strings.Join(cyclic, ", "))
	}

	ready := make(chan *loadUnit, len(units))
	for _, u := range units {
		if remaining[u.path] == 0 {
			ready <- u
		}
	}
	var (
		wg       sync.WaitGroup
		firstErr error
	)
	wg.Add(len(units))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(units) {
		workers = len(units)
	}
	for w := 0; w < workers; w++ {
		go func() {
			for u := range ready {
				p, err := pl.checkUnit(u)
				pl.mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				if p != nil {
					pl.pkgs[u.path] = p
				}
				for _, d := range dependents[u.path] {
					if remaining[d]--; remaining[d] == 0 {
						ready <- byPath[d]
					}
				}
				pl.mu.Unlock()
				wg.Done()
			}
		}()
	}
	wg.Wait()
	close(ready)
	return firstErr
}

// checkUnit type-checks one parsed unit.
func (pl *parLoader) checkUnit(u *loadUnit) (*Package, error) {
	for _, f := range u.files {
		if f == nil {
			return nil, fmt.Errorf("lint: no Go files in %s", u.dir)
		}
	}
	if len(u.files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", u.dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: pl}
	tpkg, err := conf.Check(u.path, pl.fset, u.files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", u.path, err)
	}
	return &Package{Path: u.path, Dir: u.dir, Files: u.files, Types: tpkg, Info: info}, nil
}

// LoadDir type-checks a single directory as a standalone package under the
// given import path — the fixture loader used by the per-pass golden tests.
// Fixture packages may import only the standard library.
func LoadDir(dir, path string) (*Module, error) {
	fset := token.NewFileSet()
	l := newLoader(dir, path, fset)
	p, err := l.check(path, dir)
	if err != nil {
		return nil, err
	}
	l.cache[path] = p
	return l.module(dir), nil
}

func (l *loader) module(root string) *Module {
	m := &Module{Root: root, Fset: l.fset}
	for _, p := range l.cache {
		m.Pkgs = append(m.Pkgs, p)
	}
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].Path < m.Pkgs[j].Path })
	return m
}

// modulePath reads the module declaration out of root's go.mod.
func modulePath(root string) (string, error) {
	b, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s/go.mod", root)
}
