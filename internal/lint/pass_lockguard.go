package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// passLockGuard is the lock-discipline analysis: struct fields annotated
// `// guarded by <mu>` may only be accessed with that mutex held. The
// analysis tracks lock state intra-procedurally — `x.mu.Lock()` puts
// "x.mu" into the held set, `x.mu.Unlock()` removes it, `defer
// x.mu.Unlock()` keeps it held to the end of the function — and every
// read or write of a guarded field is checked against the set. Methods
// whose callers hold the lock declare it with //lint:holds <mu>: inside
// them the receiver's guarded fields are accessible, and each call site
// is checked for the lock instead (the plancache's intrusive LRU helpers
// run under the shard mutex this way).
//
// The tracking is best-effort by design: branches are analyzed with a
// copy of the held set and do not propagate lock-state changes outward,
// and function literals start from an empty held set. The failure mode is
// a false positive, never a false negative — an access the analysis
// cannot prove locked is reported, and a deliberate exception (such as
// constructor code before the value is published) carries a documented
// //lint:ignore.
func passLockGuard() *Pass {
	return &Pass{
		Name: "lockguard",
		Doc:  "guarded-field access without the declared mutex held",
		Sev:  SevError,
		Run: func(c *Context) {
			if len(c.Ann.guards) == 0 {
				return
			}
			lg := &lockGuard{c: c}
			for _, file := range c.Pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					fd, ok := n.(*ast.FuncDecl)
					if ok && fd.Body != nil {
						lg.checkFunc(fd)
					}
					return true
				})
			}
		},
	}
}

type lockGuard struct {
	c *Context
	// holdsMu is the //lint:holds mutex name of the function under
	// analysis ("" when none) and holdsRecv its receiver name.
	holdsMu   string
	holdsRecv string
}

type heldSet map[string]bool

func (h heldSet) clone() heldSet {
	out := make(heldSet, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

func (lg *lockGuard) checkFunc(fd *ast.FuncDecl) {
	lg.holdsMu, lg.holdsRecv = "", ""
	if obj, ok := lg.c.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
		if mu, ok := lg.c.Ann.holds[obj]; ok {
			lg.holdsMu = mu
			if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
				lg.holdsRecv = fd.Recv.List[0].Names[0].Name
			}
		}
	}
	held := heldSet{}
	if lg.holdsMu != "" && lg.holdsRecv != "" {
		held[lg.holdsRecv+"."+lg.holdsMu] = true
	}
	lg.scanStmts(fd.Body.List, held)
}

// scanStmts threads the held set through a statement list in order.
func (lg *lockGuard) scanStmts(stmts []ast.Stmt, held heldSet) {
	for _, s := range stmts {
		lg.scanStmt(s, held)
	}
}

// scanStmt updates held for lock transitions in s and checks every
// guarded-field access inside it. Nested blocks get a copy of the set so
// their transitions stay local (best-effort flow handling).
func (lg *lockGuard) scanStmt(s ast.Stmt, held heldSet) {
	switch x := s.(type) {
	case *ast.ExprStmt:
		if key, op, ok := lg.lockCall(x.X); ok {
			lg.checkExprs(x.X, held) // the receiver chain itself
			if op {
				held[key] = true
			} else {
				delete(held, key)
			}
			return
		}
		lg.checkExprs(x.X, held)
	case *ast.DeferStmt:
		// defer x.mu.Unlock() keeps the lock held for the remainder of the
		// function; any other deferred call is checked against the current
		// set (an approximation — it actually runs at return).
		if _, _, ok := lg.lockCall(x.Call); !ok {
			lg.checkExprs(x.Call, held)
		}
	case *ast.BlockStmt:
		lg.scanStmts(x.List, held)
	case *ast.IfStmt:
		if x.Init != nil {
			lg.scanStmt(x.Init, held)
		}
		lg.checkExprs(x.Cond, held)
		lg.scanStmts(x.Body.List, held.clone())
		if x.Else != nil {
			lg.scanStmt(x.Else, held.clone())
		}
	case *ast.ForStmt:
		if x.Init != nil {
			lg.scanStmt(x.Init, held)
		}
		if x.Cond != nil {
			lg.checkExprs(x.Cond, held)
		}
		body := held.clone()
		lg.scanStmts(x.Body.List, body)
		if x.Post != nil {
			lg.scanStmt(x.Post, body)
		}
	case *ast.RangeStmt:
		lg.checkExprs(x.X, held)
		lg.scanStmts(x.Body.List, held.clone())
	case *ast.SwitchStmt:
		if x.Init != nil {
			lg.scanStmt(x.Init, held)
		}
		if x.Tag != nil {
			lg.checkExprs(x.Tag, held)
		}
		for _, cl := range x.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					lg.checkExprs(e, held)
				}
				lg.scanStmts(cc.Body, held.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			lg.scanStmt(x.Init, held)
		}
		lg.scanStmt(x.Assign, held)
		for _, cl := range x.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				lg.scanStmts(cc.Body, held.clone())
			}
		}
	case *ast.SelectStmt:
		for _, cl := range x.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				if cc.Comm != nil {
					lg.scanStmt(cc.Comm, held.clone())
				}
				lg.scanStmts(cc.Body, held.clone())
			}
		}
	case *ast.LabeledStmt:
		lg.scanStmt(x.Stmt, held)
	default:
		// Assignments, returns, go/send/incdec statements: plain
		// expression checks.
		ast.Inspect(s, func(n ast.Node) bool {
			switch y := n.(type) {
			case *ast.FuncLit:
				lg.scanStmts(y.Body.List, heldSet{})
				return false
			case *ast.SelectorExpr:
				lg.checkSelector(y, held)
			}
			return true
		})
	}
}

// checkExprs checks guarded accesses in an expression tree; nested
// function literals start from an empty held set (they may run on another
// goroutine or after the lock is released).
func (lg *lockGuard) checkExprs(e ast.Expr, held heldSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			lg.scanStmts(x.Body.List, heldSet{})
			return false
		case *ast.SelectorExpr:
			lg.checkSelector(x, held)
		}
		return true
	})
}

// checkSelector reports a guarded field accessed without its mutex, and
// checks lint:holds call-site obligations.
func (lg *lockGuard) checkSelector(sel *ast.SelectorExpr, held heldSet) {
	s, ok := lg.c.Pkg.Info.Selections[sel]
	if !ok {
		return
	}
	if f, ok := s.Obj().(*types.Var); ok {
		mu, guarded := lg.c.Ann.guards[f]
		if !guarded {
			return
		}
		key := exprString(sel.X) + "." + mu
		if held[key] {
			return
		}
		lg.c.Report(sel, fmt.Sprintf(
			"field %s.%s (guarded by %s) accessed without holding %s",
			exprString(sel.X), f.Name(), mu, key))
		return
	}
	if m, ok := s.Obj().(*types.Func); ok {
		mu, needs := lg.c.Ann.holds[m]
		if !needs {
			return
		}
		key := exprString(sel.X) + "." + mu
		if held[key] {
			return
		}
		lg.c.Report(sel, fmt.Sprintf(
			"call to %s requires %s held (lint:holds)", m.Name(), key))
	}
}

// lockCall decodes `<base>.<mu>.Lock()`-shaped calls on sync.Mutex /
// sync.RWMutex values; it returns the held-set key, whether the call
// acquires (true) or releases (false), and ok.
func (lg *lockGuard) lockCall(e ast.Expr) (key string, acquires, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquires = true
	case "Unlock", "RUnlock":
		acquires = false
	default:
		return "", false, false
	}
	recv := sel.X
	t := lg.c.TypeOf(recv)
	if t == nil || !isSyncMutex(t) {
		return "", false, false
	}
	return exprString(recv), acquires, true
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isSyncMutex(t types.Type) bool {
	n := namedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}
