package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
)

// passLockGuard is the lock-discipline analysis: struct fields annotated
// `// guarded by <mu>` may only be accessed with that mutex held. The
// analysis tracks lock state intra-procedurally — `x.mu.Lock()` puts
// "x.mu" into the held set, `x.mu.Unlock()` removes it, `defer
// x.mu.Unlock()` keeps it held to the end of the function — and every
// read or write of a guarded field is checked against the set. Methods
// whose callers hold the lock declare it with //lint:holds <mu>: inside
// them the receiver's guarded fields are accessible, and each call site
// is checked for the lock instead (the plancache's intrusive LRU helpers
// run under the shard mutex this way).
//
// The tracking is best-effort by design: branches are analyzed with a
// copy of the held set and do not propagate lock-state changes outward,
// and function literals start from an empty held set. The failure mode is
// a false positive, never a false negative — an access the analysis
// cannot prove locked is reported, and a deliberate exception (such as
// constructor code before the value is published) carries a documented
// //lint:ignore.
//
// With the interprocedural layer (Context.Interp non-nil) the analysis
// additionally applies callee summaries at statement-level call sites:
// a callee with a net lock effect (a helper that unlocks on the caller's
// behalf, or locks and leaves the mutex held) updates the held set; a
// callee that may re-acquire a mutex the caller already holds is a
// self-deadlock; and //lint:holds obligations propagate transitively —
// an unannotated wrapper around a holds-annotated method carries the
// obligation to its own callers. Under RunIntra the Interp is nil and
// the pass behaves exactly as in PR 6.
func passLockGuard() *Pass {
	return &Pass{
		Name: "lockguard",
		Doc:  "guarded-field access without the declared mutex held",
		Sev:  SevError,
		Run: func(c *Context) {
			if len(c.Ann.guards) == 0 {
				return
			}
			lg := &lockGuard{c: c}
			for _, file := range c.Pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					fd, ok := n.(*ast.FuncDecl)
					if ok && fd.Body != nil {
						lg.checkFunc(fd)
					}
					return true
				})
			}
		},
	}
}

type lockGuard struct {
	c *Context
	// holdsMu is the //lint:holds mutex name of the function under
	// analysis ("" when none) and holdsRecv its receiver name.
	holdsMu   string
	holdsRecv string
}

type heldSet map[string]bool

func (h heldSet) clone() heldSet {
	out := make(heldSet, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

func (lg *lockGuard) checkFunc(fd *ast.FuncDecl) {
	lg.holdsMu, lg.holdsRecv = "", ""
	if obj, ok := lg.c.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
		if mu, ok := lg.c.Ann.holds[obj]; ok {
			lg.holdsMu = mu
			if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
				lg.holdsRecv = fd.Recv.List[0].Names[0].Name
			}
		}
	}
	held := heldSet{}
	if lg.holdsMu != "" && lg.holdsRecv != "" {
		held[lg.holdsRecv+"."+lg.holdsMu] = true
	}
	// Inherited obligations: a function whose summary requires a mutex at
	// entry (because a callee does) analyzes its body with that mutex held
	// — its own call sites carry the obligation instead.
	if ip := lg.c.Interp; ip != nil {
		if obj, ok := lg.c.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
			if cs := ip.SummaryOf(obj); cs != nil {
				for _, ref := range sortedLockRefs(cs.Requires) {
					if name := slotName(fd, ref.Slot); name != "" {
						held[name+"."+ref.Mu] = true
					}
				}
			}
		}
	}
	lg.scanStmts(fd.Body.List, held)
}

// slotName resolves a lockRef slot to the declared receiver or parameter
// name of a function declaration.
func slotName(fd *ast.FuncDecl, slot int) string {
	if slot == -1 {
		if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
			return fd.Recv.List[0].Names[0].Name
		}
		return ""
	}
	i := 0
	for _, f := range fd.Type.Params.List {
		for _, name := range f.Names {
			if i == slot {
				return name.Name
			}
			i++
		}
	}
	return ""
}

// sortedLockRefs orders a lockRef set deterministically.
func sortedLockRefs(m map[lockRef]bool) []lockRef {
	out := make([]lockRef, 0, len(m))
	for ref := range m {
		out = append(out, ref)
	}
	sortLockRefs(out)
	return out
}

func sortLockRefs(out []lockRef) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Slot != out[j].Slot {
			return out[i].Slot < out[j].Slot
		}
		return out[i].Mu < out[j].Mu
	})
}

// scanStmts threads the held set through a statement list in order.
func (lg *lockGuard) scanStmts(stmts []ast.Stmt, held heldSet) {
	for _, s := range stmts {
		lg.scanStmt(s, held)
	}
}

// scanStmt updates held for lock transitions in s and checks every
// guarded-field access inside it. Nested blocks get a copy of the set so
// their transitions stay local (best-effort flow handling).
func (lg *lockGuard) scanStmt(s ast.Stmt, held heldSet) {
	switch x := s.(type) {
	case *ast.ExprStmt:
		if key, op, ok := lg.lockCall(x.X); ok {
			lg.checkExprs(x.X, held) // the receiver chain itself
			if op {
				held[key] = true
			} else {
				delete(held, key)
			}
			return
		}
		lg.checkExprs(x.X, held)
		lg.applyCallEffects(x.X, held)
	case *ast.AssignStmt:
		for _, r := range x.Rhs {
			lg.checkExprs(r, held)
		}
		for _, l := range x.Lhs {
			lg.checkExprs(l, held)
		}
		for _, r := range x.Rhs {
			lg.applyCallEffects(r, held)
		}
	case *ast.DeferStmt:
		// defer x.mu.Unlock() keeps the lock held for the remainder of the
		// function; any other deferred call is checked against the current
		// set (an approximation — it actually runs at return).
		if _, _, ok := lg.lockCall(x.Call); !ok {
			lg.checkExprs(x.Call, held)
		}
	case *ast.BlockStmt:
		lg.scanStmts(x.List, held)
	case *ast.IfStmt:
		if x.Init != nil {
			lg.scanStmt(x.Init, held)
		}
		lg.checkExprs(x.Cond, held)
		lg.scanStmts(x.Body.List, held.clone())
		if x.Else != nil {
			lg.scanStmt(x.Else, held.clone())
		}
	case *ast.ForStmt:
		if x.Init != nil {
			lg.scanStmt(x.Init, held)
		}
		if x.Cond != nil {
			lg.checkExprs(x.Cond, held)
		}
		body := held.clone()
		lg.scanStmts(x.Body.List, body)
		if x.Post != nil {
			lg.scanStmt(x.Post, body)
		}
	case *ast.RangeStmt:
		lg.checkExprs(x.X, held)
		lg.scanStmts(x.Body.List, held.clone())
	case *ast.SwitchStmt:
		if x.Init != nil {
			lg.scanStmt(x.Init, held)
		}
		if x.Tag != nil {
			lg.checkExprs(x.Tag, held)
		}
		for _, cl := range x.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					lg.checkExprs(e, held)
				}
				lg.scanStmts(cc.Body, held.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			lg.scanStmt(x.Init, held)
		}
		lg.scanStmt(x.Assign, held)
		for _, cl := range x.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				lg.scanStmts(cc.Body, held.clone())
			}
		}
	case *ast.SelectStmt:
		for _, cl := range x.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				if cc.Comm != nil {
					lg.scanStmt(cc.Comm, held.clone())
				}
				lg.scanStmts(cc.Body, held.clone())
			}
		}
	case *ast.LabeledStmt:
		lg.scanStmt(x.Stmt, held)
	default:
		// Assignments, returns, go/send/incdec statements: plain
		// expression checks.
		ast.Inspect(s, func(n ast.Node) bool {
			switch y := n.(type) {
			case *ast.FuncLit:
				lg.scanStmts(y.Body.List, heldSet{})
				return false
			case *ast.SelectorExpr:
				lg.checkSelector(y, held)
			}
			return true
		})
	}
}

// checkExprs checks guarded accesses in an expression tree; nested
// function literals start from an empty held set (they may run on another
// goroutine or after the lock is released).
func (lg *lockGuard) checkExprs(e ast.Expr, held heldSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			lg.scanStmts(x.Body.List, heldSet{})
			return false
		case *ast.SelectorExpr:
			lg.checkSelector(x, held)
		}
		return true
	})
}

// checkSelector reports a guarded field accessed without its mutex, and
// checks lint:holds call-site obligations.
func (lg *lockGuard) checkSelector(sel *ast.SelectorExpr, held heldSet) {
	s, ok := lg.c.Pkg.Info.Selections[sel]
	if !ok {
		return
	}
	if f, ok := s.Obj().(*types.Var); ok {
		mu, guarded := lg.c.Ann.guards[f]
		if !guarded {
			return
		}
		key := exprString(sel.X) + "." + mu
		if held[key] {
			return
		}
		lg.c.Report(sel, fmt.Sprintf(
			"field %s.%s (guarded by %s) accessed without holding %s",
			exprString(sel.X), f.Name(), mu, key))
		return
	}
	if m, ok := s.Obj().(*types.Func); ok {
		// Receiver-slot obligations: the direct //lint:holds annotation
		// plus, interprocedurally, whatever the callee's summary inherited
		// from its own callees. The summary subsumes the annotation, so
		// the key set deduplicates the two sources.
		keys := map[string]bool{}
		if mu, needs := lg.c.Ann.holds[m]; needs {
			keys[exprString(sel.X)+"."+mu] = true
		}
		if ip := lg.c.Interp; ip != nil {
			if cs := ip.SummaryOf(m); cs != nil {
				for ref := range cs.Requires {
					if ref.Slot == -1 {
						keys[exprString(sel.X)+"."+ref.Mu] = true
					}
				}
			}
		}
		for _, key := range sortedStringKeys(keys) {
			if held[key] {
				continue
			}
			lg.c.Report(sel, fmt.Sprintf(
				"call to %s requires %s held (lint:holds)", m.Name(), key))
		}
	}
}

func sortedStringKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// applyCallEffects applies a statement-level call's interprocedural lock
// facts to the held set: parameter-slot obligations are checked, a callee
// that may re-acquire an already-held mutex is a self-deadlock, and the
// callee's net lock effect updates the set. Statement-level only — a call
// buried in a larger expression cannot reliably order its effect against
// the expression's other accesses, so it is left alone (false-positive-
// averse, like every approximation in this pass).
func (lg *lockGuard) applyCallEffects(e ast.Expr, held heldSet) {
	ip := lg.c.Interp
	if ip == nil {
		return
	}
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := callee(lg.c.Pkg.Info, call)
	cs := ip.SummaryOf(fn)
	if cs == nil {
		return
	}
	bind := func(ref lockRef) (string, bool) {
		var bound ast.Expr
		if ref.Slot == -1 {
			sel, isSel := call.Fun.(*ast.SelectorExpr)
			if !isSel {
				return "", false
			}
			bound = sel.X
		} else if ref.Slot < len(call.Args) {
			bound = call.Args[ref.Slot]
		}
		if bound == nil {
			return "", false
		}
		return exprString(bound) + "." + ref.Mu, true
	}
	// Parameter-slot obligations (receiver-slot ones are reported by
	// checkSelector, which sees every method reference).
	for _, ref := range sortedLockRefs(cs.Requires) {
		if ref.Slot < 0 {
			continue
		}
		if key, ok := bind(ref); ok && !held[key] {
			lg.c.Report(call, fmt.Sprintf(
				"call to %s requires %s held (lint:holds)", fn.Name(), key))
		}
	}
	for _, ref := range sortedLockRefs(cs.MayAcquire) {
		if key, ok := bind(ref); ok && held[key] {
			lg.c.Report(call, fmt.Sprintf(
				"possible self-deadlock: call to %s may re-acquire %s, which is already held", fn.Name(), key))
		}
	}
	deltas := make([]lockRef, 0, len(cs.LockDelta))
	for ref := range cs.LockDelta {
		deltas = append(deltas, ref)
	}
	sortLockRefs(deltas)
	for _, ref := range deltas {
		key, ok := bind(ref)
		if !ok {
			continue
		}
		if cs.LockDelta[ref] > 0 {
			held[key] = true
		} else {
			delete(held, key)
		}
	}
}

// lockCall decodes `<base>.<mu>.Lock()`-shaped calls on sync.Mutex /
// sync.RWMutex values; it returns the held-set key, whether the call
// acquires (true) or releases (false), and ok.
func (lg *lockGuard) lockCall(e ast.Expr) (key string, acquires, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquires = true
	case "Unlock", "RUnlock":
		acquires = false
	default:
		return "", false, false
	}
	recv := sel.X
	t := lg.c.TypeOf(recv)
	if t == nil || !isSyncMutex(t) {
		return "", false, false
	}
	return exprString(recv), acquires, true
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isSyncMutex(t types.Type) bool {
	n := namedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}
