package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// passGoHygiene is the goroutine-hygiene analysis for the engine packages
// (internal/sqldb and internal/core): no naked `go` statements outside the
// worker pool — every parallel operator borrows from the bounded Pool so
// nested operators cannot deadlock and goroutine counts stay bounded under
// a long-running server — and the sanctioned spawn sites (files carrying
// //lint:go-allowed) must thread the cooperative-stop signal: the spawned
// task has to observe an atomic.Bool stop flag, a channel receive, or a
// context cancellation, directly or through a local function literal it
// calls, so an error in any sibling task stops the whole fan-out.
func passGoHygiene() *Pass {
	return &Pass{
		Name: "gohygiene",
		Doc:  "goroutine spawning outside the pool / without a stop signal",
		Sev:  SevError,
		Run: func(c *Context) {
			if !goHygienePkg(c.Pkg.Path) {
				return
			}
			for _, file := range c.Pkg.Files {
				allowed := c.Ann.goAllowed[file]
				ast.Inspect(file, func(n ast.Node) bool {
					fd, ok := n.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						return true
					}
					// Local function literals, for one level of expansion:
					// `work := func() {...}; go func() { work() }()`.
					locals := localFuncLits(fd.Body)
					ast.Inspect(fd.Body, func(m ast.Node) bool {
						gs, ok := m.(*ast.GoStmt)
						if !ok {
							return true
						}
						if !allowed {
							c.Report(gs, "naked go statement outside the worker pool; fan work out through Pool (or annotate the file //lint:go-allowed with a reason)")
							return true
						}
						if !spawnObservesStop(c, gs.Call, locals) {
							c.Report(gs, "spawned goroutine does not observe a cooperative-stop signal (atomic.Bool Load, channel receive, or context.Done)")
						}
						return true
					})
					return true
				})
			}
		},
	}
}

// goHygienePkg reports whether the package is under the engine's goroutine
// discipline.
func goHygienePkg(path string) bool {
	return strings.HasSuffix(path, "internal/sqldb") ||
		strings.HasSuffix(path, "internal/core")
}

// localFuncLits maps variable names to the function literals assigned to
// them within the function body.
func localFuncLits(body *ast.BlockStmt) map[string]*ast.FuncLit {
	out := map[string]*ast.FuncLit{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, l := range as.Lhs {
			id, ok := l.(*ast.Ident)
			if !ok {
				continue
			}
			if fl, ok := as.Rhs[i].(*ast.FuncLit); ok {
				out[id.Name] = fl
			}
		}
		return true
	})
	return out
}

// spawnObservesStop reports whether the spawned call's body (expanding one
// level of local function-literal calls) observes a cooperative-stop
// signal.
func spawnObservesStop(c *Context, call *ast.CallExpr, locals map[string]*ast.FuncLit) bool {
	fl, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		// `go method()` / `go fn()`: resolve local literals; anything else
		// is outside the intra-procedural horizon — require the literal
		// form at sanctioned spawn sites.
		if id, isIdent := call.Fun.(*ast.Ident); isIdent {
			if lit, found := locals[id.Name]; found {
				return bodyObservesStop(c, lit.Body, locals, 1)
			}
		}
		return false
	}
	return bodyObservesStop(c, fl.Body, locals, 1)
}

func bodyObservesStop(c *Context, body *ast.BlockStmt, locals map[string]*ast.FuncLit, depth int) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.UnaryExpr:
			// <-ch: any channel receive counts as observing a signal.
			if x.Op.String() == "<-" {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Load":
					if isAtomicBool(c.TypeOf(sel.X)) {
						found = true
					}
				case "Done":
					if isContext(c.TypeOf(sel.X)) {
						found = true
					}
				}
			}
			if id, ok := x.Fun.(*ast.Ident); ok && depth > 0 {
				if lit, isLocal := locals[id.Name]; isLocal && bodyObservesStop(c, lit.Body, locals, depth-1) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isAtomicBool reports whether t is sync/atomic.Bool.
func isAtomicBool(t types.Type) bool {
	n := namedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && obj.Name() == "Bool"
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	n := namedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
