package lint

import (
	"go/ast"
	"strings"
	"testing"
)

// FuzzAnnot fuzzes the //lint: directive grammar: parsing must never
// panic, only comments whose trimmed text starts with "lint:" may parse,
// the verb never contains a space, and the args come back trimmed.
func FuzzAnnot(f *testing.F) {
	for _, s := range []string{
		"//lint:ignore lockguard constructor precedes publication",
		"//lint:shared may alias base-table storage",
		"//lint:mutates rows aligned",
		"//lint:holds mu",
		"//lint:go-allowed pool workers only",
		"// guarded by mu",
		"//lint:",
		"//lint: ",
		"//lint:holds",
		"//   lint:holds mu",
		"//not a directive",
		"/* lint:holds mu */",
		"//lint:holds\tmu",
		"////lint:ignore x y",
		"",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		verb, args, ok := directive(&ast.Comment{Text: s})
		if !ok {
			if verb != "" || args != "" {
				t.Errorf("rejected comment %q still returned verb=%q args=%q", s, verb, args)
			}
			return
		}
		trimmed := strings.TrimSpace(strings.TrimPrefix(s, "//"))
		if !strings.HasPrefix(trimmed, "lint:") {
			t.Errorf("accepted %q as a directive without a lint: prefix (verb=%q)", s, verb)
		}
		if strings.Contains(verb, " ") {
			t.Errorf("verb %q contains a space", verb)
		}
		if args != strings.TrimSpace(args) {
			t.Errorf("args %q came back untrimmed", args)
		}
	})
}
