package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The call graph is the engine's interprocedural backbone: one node per
// declared function or method with a body anywhere in the module, and one
// edge per statically resolvable reference from a body to another node —
// direct calls, method calls, and function values passed or stored (a
// reference can become a call the analysis cannot see, so reachability
// treats it as one). Calls inside function literals are attributed to the
// enclosing declaration: the literal runs with the declaration's state and
// its allocations and loops belong to the declaration's cost.
//
// Dynamic dispatch (interface method calls, calls through function-typed
// values) has no static callee and produces no edge. Passes that consume
// the graph are written for that asymmetry: a missing edge can hide work
// from a hot-path report, never invent a diagnostic.

// FuncNode is one declared function or method of the module.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	// Callees are the statically resolved module functions this body
	// references, deduplicated, in first-reference order.
	Callees []*FuncNode
	// Callers is the reverse adjacency, filled after all edges exist.
	Callers []*FuncNode

	scc int // SCC id, assigned in reverse topological order (callees first)
}

// CallGraph is the module-wide graph plus the traversal orders the summary
// builder needs.
type CallGraph struct {
	Nodes map[*types.Func]*FuncNode
	// BottomUp lists every node so that all statically known callees of a
	// node appear before the node itself (members of one cycle appear
	// adjacent, in deterministic order).
	BottomUp []*FuncNode
}

// buildCallGraph walks every function body of every package and resolves
// its references.
func buildCallGraph(mod *Module) *CallGraph {
	g := &CallGraph{Nodes: map[*types.Func]*FuncNode{}}
	// First pass: one node per declaration.
	var order []*FuncNode
	for _, pkg := range mod.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &FuncNode{Fn: fn, Decl: fd, Pkg: pkg}
				g.Nodes[fn] = n
				order = append(order, n)
			}
		}
	}
	// Second pass: edges. Every identifier or selector resolving to a
	// declared module function counts, whether in call position or as a
	// value.
	for _, n := range order {
		seen := map[*FuncNode]bool{}
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			var obj types.Object
			switch x := node.(type) {
			case *ast.Ident:
				obj = n.Pkg.Info.Uses[x]
			case *ast.SelectorExpr:
				obj = n.Pkg.Info.Uses[x.Sel]
			default:
				return true
			}
			fn, ok := obj.(*types.Func)
			if !ok {
				return true
			}
			if callee := g.Nodes[fn]; callee != nil && callee != n && !seen[callee] {
				seen[callee] = true
				n.Callees = append(n.Callees, callee)
			}
			return true
		})
	}
	for _, n := range order {
		for _, c := range n.Callees {
			c.Callers = append(c.Callers, n)
		}
	}
	g.condense(order)
	return g
}

// condense runs Tarjan's SCC algorithm and records the bottom-up order:
// Tarjan emits each strongly connected component only after every
// component it calls into, so concatenating components in emission order
// gives the summary builder its callees-first traversal.
func (g *CallGraph) condense(order []*FuncNode) {
	index := map[*FuncNode]int{}
	low := map[*FuncNode]int{}
	onStack := map[*FuncNode]bool{}
	var stack []*FuncNode
	next, sccID := 0, 0

	var strongConnect func(n *FuncNode)
	strongConnect = func(n *FuncNode) {
		index[n] = next
		low[n] = next
		next++
		stack = append(stack, n)
		onStack[n] = true
		for _, c := range n.Callees {
			if _, seen := index[c]; !seen {
				strongConnect(c)
				if low[c] < low[n] {
					low[n] = low[c]
				}
			} else if onStack[c] && index[c] < low[n] {
				low[n] = index[c]
			}
		}
		if low[n] == index[n] {
			var comp []*FuncNode
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m] = false
				comp = append(comp, m)
				if m == n {
					break
				}
			}
			sort.Slice(comp, func(i, j int) bool { return funcKey(comp[i].Fn) < funcKey(comp[j].Fn) })
			for _, m := range comp {
				m.scc = sccID
				g.BottomUp = append(g.BottomUp, m)
			}
			sccID++
		}
	}
	for _, n := range order {
		if _, seen := index[n]; !seen {
			strongConnect(n)
		}
	}
}

// SameCycle reports whether a and b sit on one call cycle.
func (g *CallGraph) SameCycle(a, b *FuncNode) bool {
	return a != nil && b != nil && a.scc == b.scc
}

// Reachable returns the forward closure of the given roots (roots
// included), following every edge.
func (g *CallGraph) Reachable(roots []*FuncNode) map[*FuncNode]bool {
	out := map[*FuncNode]bool{}
	var visit func(n *FuncNode)
	visit = func(n *FuncNode) {
		if n == nil || out[n] {
			return
		}
		out[n] = true
		for _, c := range n.Callees {
			visit(c)
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return out
}

// Lookup resolves a types.Func to its node (nil for functions without a
// body in the module: externals, interface methods, declarations only).
func (g *CallGraph) Lookup(fn *types.Func) *FuncNode {
	if fn == nil {
		return nil
	}
	return g.Nodes[fn]
}

// funcKey renders a deterministic sort key for a function across packages.
func funcKey(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	return pkg + "." + fn.FullName()
}

// callee resolves the statically known callee of a call expression using
// the package's type information (nil for builtins, conversions, and
// dynamic calls).
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// enclosingFuncs indexes, per package, each function declaration by its
// body's source interval so passes can attribute positions to functions.
type declIndex struct {
	nodes []*FuncNode
}

func newDeclIndex(g *CallGraph) *declIndex {
	ix := &declIndex{}
	for _, n := range g.Nodes {
		ix.nodes = append(ix.nodes, n)
	}
	sort.Slice(ix.nodes, func(i, j int) bool { return ix.nodes[i].Decl.Pos() < ix.nodes[j].Decl.Pos() })
	return ix
}

// enclosing returns the function whose declaration covers pos.
func (ix *declIndex) enclosing(pos token.Pos) *FuncNode {
	lo, hi := 0, len(ix.nodes)
	for lo < hi {
		mid := (lo + hi) / 2
		if ix.nodes[mid].Decl.End() <= pos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ix.nodes) && ix.nodes[lo].Decl.Pos() <= pos && pos < ix.nodes[lo].Decl.End() {
		return ix.nodes[lo]
	}
	return nil
}
