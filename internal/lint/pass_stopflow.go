package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// stopflow hardens the cooperative-cancellation contract of the parallel
// executor: a task submitted to the worker pool (a parState.run call) runs
// on a shared goroutine, so any loop it can reach that neither terminates
// by construction (range, three-clause) nor observes the stop signal
// (atomic.Bool Load, channel receive, context.Done) can pin a worker after
// the query is abandoned. The pass resolves the task argument of every
// pool submission, follows the call graph from it, and reports the spin
// loops the summaries recorded along the way. Interprocedural by nature:
// without summaries (RunIntra) it checks only loops written directly in
// the task literal.
func passStopFlow() *Pass {
	p := &Pass{
		Name: "stopflow",
		Doc:  "pool-submitted task loops must observe the cooperative-stop signal",
		Sev:  SevError,
	}
	p.Run = func(c *Context) {
		seen := map[string]bool{}
		reportSpin := func(pkg *Package, pos ast.Node, via string) {
			key := c.Fset.Position(pos.Pos()).String()
			if seen[key] {
				return
			}
			seen[key] = true
			msg := "loop reachable from a pool-submitted task may spin without observing the stop signal"
			if via != "" {
				msg += " (task calls " + via + ")"
			}
			c.Report(pos, msg)
		}
		for _, file := range c.Pkg.Files {
			ast.Inspect(file, func(node ast.Node) bool {
				call, ok := node.(*ast.CallExpr)
				if !ok {
					return true
				}
				task := poolTaskArg(c, call)
				if task == nil {
					return true
				}
				switch t := ast.Unparen(task).(type) {
				case *ast.FuncLit:
					// Loops written in the literal itself.
					for _, loop := range spinLoopsIn(c.Pkg, t.Body) {
						reportSpin(c.Pkg, loop, "")
					}
					// Loops in module functions the literal references.
					for _, root := range referencedFuncs(c, t.Body) {
						reportReachableSpins(c, root, reportSpin)
					}
				default:
					if fn, _ := taskExprFunc(c, t); fn != nil {
						reportReachableSpins(c, fn, reportSpin)
					}
				}
				return true
			})
		}
	}
	return p
}

// poolTaskArg recognizes a worker-pool submission — a call to a method
// named "run" on a value of a named type "parState" — and returns its
// function-typed task argument.
func poolTaskArg(c *Context, call *ast.CallExpr) ast.Expr {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "run" {
		return nil
	}
	n := namedType(c.TypeOf(sel.X))
	if n == nil || n.Obj().Name() != "parState" {
		return nil
	}
	for _, a := range call.Args {
		if t := c.TypeOf(a); t != nil {
			if _, isFunc := t.Underlying().(*types.Signature); isFunc {
				return a
			}
		}
	}
	return nil
}

// taskExprFunc resolves a task expression (identifier, selector, or method
// value) to a declared module function.
func taskExprFunc(c *Context, e ast.Expr) (*FuncNode, string) {
	if c.Interp == nil {
		return nil, ""
	}
	var obj types.Object
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = c.Pkg.Info.Uses[x]
	case *ast.SelectorExpr:
		obj = c.Pkg.Info.Uses[x.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil, ""
	}
	if n := c.Interp.Graph.Lookup(fn); n != nil {
		return n, fn.Name()
	}
	return nil, ""
}

// referencedFuncs lists the module functions a task body references, in
// first-use order.
func referencedFuncs(c *Context, body ast.Node) []*FuncNode {
	if c.Interp == nil {
		return nil
	}
	var out []*FuncNode
	dup := map[*FuncNode]bool{}
	ast.Inspect(body, func(node ast.Node) bool {
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		fn, ok := c.Pkg.Info.Uses[id].(*types.Func)
		if !ok {
			return true
		}
		if n := c.Interp.Graph.Lookup(fn); n != nil && !dup[n] {
			dup[n] = true
			out = append(out, n)
		}
		return true
	})
	return out
}

// reportReachableSpins reports every spin loop recorded in the summaries
// of the closure reachable from root.
func reportReachableSpins(c *Context, root *FuncNode, report func(*Package, ast.Node, string)) {
	if c.Interp == nil {
		return
	}
	reach := c.Interp.Graph.Reachable([]*FuncNode{root})
	var nodes []*FuncNode
	for n := range reach {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return funcKey(nodes[i].Fn) < funcKey(nodes[j].Fn) })
	for _, n := range nodes {
		sum := c.Interp.SummaryOf(n.Fn)
		if sum == nil {
			continue
		}
		for _, pos := range sum.SpinLoops {
			via := ""
			if n != root {
				via = n.Fn.Name()
			} else if root.Fn != nil {
				via = root.Fn.Name()
			}
			report(n.Pkg, posSpan{pos}, via)
		}
	}
}

// posSpan wraps a recorded token position in a reportable ast.Node.
type posSpan struct{ pos token.Pos }

func (s posSpan) Pos() token.Pos { return s.pos }
func (s posSpan) End() token.Pos { return s.pos }

// spinLoopsIn collects the spin-suspect loops of one body, for the
// intra-procedural (literal-only) part of the check.
func spinLoopsIn(pkg *Package, body *ast.BlockStmt) []*ast.ForStmt {
	var out []*ast.ForStmt
	ast.Inspect(body, func(node ast.Node) bool {
		loop, ok := node.(*ast.ForStmt)
		if !ok {
			return true
		}
		if loop.Cond == nil && loop.Init == nil && loop.Post == nil {
			if !observesStopSignal(pkg, loop.Body) {
				out = append(out, loop)
			}
			return true
		}
		if loop.Cond != nil && loop.Init == nil && loop.Post == nil {
			if !condCanProgress(pkg, loop) && !observesStopSignal(pkg, loop.Body) {
				out = append(out, loop)
			}
		}
		return true
	})
	return out
}
