package r2rml

import (
	"fmt"
	"strings"
	"sync"

	"npdbench/internal/rdf"
	"npdbench/internal/sqldb"
)

// TermMapKind distinguishes how a term map produces RDF terms.
type TermMapKind uint8

// Term map kinds.
const (
	// IRITemplate produces IRIs by template expansion.
	IRITemplate TermMapKind = iota
	// LiteralColumn produces literals directly from a column.
	LiteralColumn
	// LiteralTemplate produces literals by template expansion.
	LiteralTemplate
	// ConstantTerm produces a fixed term.
	ConstantTerm
)

// TermMap generates RDF terms from logical-table rows (rr:subjectMap /
// rr:objectMap in R2RML terms).
type TermMap struct {
	Kind     TermMapKind
	Template *Template // IRITemplate, LiteralTemplate
	Column   string    // LiteralColumn
	Datatype string    // literal datatype IRI ("" = derive from column type)
	Constant rdf.Term  // ConstantTerm
}

// IRIMap builds an IRI-template term map.
func IRIMap(template string) TermMap {
	return TermMap{Kind: IRITemplate, Template: MustParseTemplate(template)}
}

// ColumnMap builds a literal term map over a column.
func ColumnMap(column string) TermMap {
	return TermMap{Kind: LiteralColumn, Column: column}
}

// TypedColumnMap builds a literal term map with an explicit datatype.
func TypedColumnMap(column, datatype string) TermMap {
	return TermMap{Kind: LiteralColumn, Column: column, Datatype: datatype}
}

// ConstantMap builds a constant term map.
func ConstantMap(t rdf.Term) TermMap {
	return TermMap{Kind: ConstantTerm, Constant: t}
}

// Columns returns the source columns the term map reads.
func (tm TermMap) Columns() []string {
	switch tm.Kind {
	case IRITemplate, LiteralTemplate:
		return tm.Template.Columns
	case LiteralColumn:
		return []string{tm.Column}
	}
	return nil
}

// Generate produces the RDF term for a row; ok=false when a needed value is
// NULL (no triple is generated, per R2RML).
func (tm TermMap) Generate(get func(col string) (sqldb.Value, bool)) (rdf.Term, bool) {
	switch tm.Kind {
	case ConstantTerm:
		return tm.Constant, true
	case IRITemplate:
		s, ok := tm.Template.Expand(get)
		if !ok {
			return rdf.Term{}, false
		}
		return rdf.NewIRI(s), true
	case LiteralTemplate:
		s, ok := tm.Template.Expand(get)
		if !ok {
			return rdf.Term{}, false
		}
		return rdf.NewTypedLiteral(s, tm.Datatype), true
	case LiteralColumn:
		v, ok := get(tm.Column)
		if !ok || v.IsNull() {
			return rdf.Term{}, false
		}
		dt := tm.Datatype
		if dt == "" {
			dt = datatypeFor(v)
		}
		if dt == rdf.XSDString {
			return rdf.NewLiteral(v.String()), true
		}
		return rdf.NewTypedLiteral(v.String(), dt), true
	}
	return rdf.Term{}, false
}

func datatypeFor(v sqldb.Value) string {
	switch v.Kind {
	case sqldb.KindInt:
		return rdf.XSDInteger
	case sqldb.KindFloat:
		return rdf.XSDDouble
	case sqldb.KindBool:
		return rdf.XSDBoolean
	case sqldb.KindDate:
		return rdf.XSDDate
	}
	return rdf.XSDString
}

func (tm TermMap) String() string {
	switch tm.Kind {
	case ConstantTerm:
		return tm.Constant.String()
	case IRITemplate:
		return "<" + tm.Template.String() + ">"
	case LiteralTemplate:
		return "\"" + tm.Template.String() + "\""
	case LiteralColumn:
		if tm.Datatype != "" {
			return "{" + tm.Column + "}^^<" + tm.Datatype + ">"
		}
		return "{" + tm.Column + "}"
	}
	return "?"
}

// TermMapsCompatible is the conservative structural unification check
// shared by the unfolder's candidate walk and the static analyzer: false
// proves the two term maps can never generate the same RDF term; true
// means they may (full unification remains the caller's job).
func TermMapsCompatible(a, b TermMap) bool {
	aIRI := a.Kind == IRITemplate || (a.Kind == ConstantTerm && a.Constant.IsIRI())
	bIRI := b.Kind == IRITemplate || (b.Kind == ConstantTerm && b.Constant.IsIRI())
	if aIRI != bIRI {
		return false
	}
	if a.Kind == IRITemplate && b.Kind == IRITemplate {
		return a.Template.SameStructure(b.Template)
	}
	if a.Kind == ConstantTerm && b.Kind == IRITemplate {
		_, ok := b.Template.Match(a.Constant.Value)
		return ok
	}
	if b.Kind == ConstantTerm && a.Kind == IRITemplate {
		_, ok := a.Template.Match(b.Constant.Value)
		return ok
	}
	return true
}

// PredicateObject pairs a predicate IRI with an object term map.
type PredicateObject struct {
	Predicate string
	Object    TermMap
}

// TriplesMap maps one logical table to a set of triples: rr:TriplesMap.
type TriplesMap struct {
	// Name identifies the mapping assertion (mappingId).
	Name string
	// Table is the base-table logical table; empty when SQL is set.
	Table string
	// SQL is an R2RML view (rr:sqlQuery); empty when Table is set.
	SQL string
	// Subject generates the subject term.
	Subject TermMap
	// Classes lists rr:class IRIs asserted for every subject.
	Classes []string
	// POs lists the predicate–object maps.
	POs []PredicateObject

	parseOnce sync.Once
	parsedSQL *sqldb.SelectStmt
	parseErr  error
}

// LogicalSQL returns the mapping's source query as a parsed SELECT
// statement (base tables become SELECT *). Safe for concurrent callers.
func (m *TriplesMap) LogicalSQL() (*sqldb.SelectStmt, error) {
	m.parseOnce.Do(func() {
		src := m.SQL
		if src == "" {
			if m.Table == "" {
				m.parseErr = fmt.Errorf("r2rml: mapping %s has no logical table", m.Name)
				return
			}
			src = "SELECT * FROM " + m.Table
		}
		stmt, err := sqldb.Parse(src)
		if err != nil {
			m.parseErr = fmt.Errorf("r2rml: mapping %s: %w", m.Name, err)
			return
		}
		m.parsedSQL = stmt
	})
	return m.parsedSQL, m.parseErr
}

// SourceDescription returns the textual source query.
func (m *TriplesMap) SourceDescription() string {
	if m.SQL != "" {
		return m.SQL
	}
	return "SELECT * FROM " + m.Table
}

// Mapping is a complete R2RML mapping document.
type Mapping struct {
	Prefixes rdf.PrefixMap
	Maps     []*TriplesMap
}

// NewMapping creates an empty mapping with standard prefixes.
func NewMapping() *Mapping {
	return &Mapping{Prefixes: rdf.StandardPrefixes()}
}

// Add appends a triples map.
func (mp *Mapping) Add(m *TriplesMap) { mp.Maps = append(mp.Maps, m) }

// AssertionCount counts mapping assertions the way the paper does: one per
// class and one per predicate–object map.
func (mp *Mapping) AssertionCount() int {
	n := 0
	for _, m := range mp.Maps {
		n += len(m.Classes) + len(m.POs)
	}
	return n
}

// MappedTerms returns the distinct ontology terms (classes + properties)
// that have at least one mapping assertion.
func (mp *Mapping) MappedTerms() []string {
	set := map[string]bool{}
	for _, m := range mp.Maps {
		for _, c := range m.Classes {
			set[c] = true
		}
		for _, po := range m.POs {
			set[po.Predicate] = true
		}
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	return out
}

// Stats describes mapping complexity (paper Sect. 5: 1190 assertions,
// avg 2.6 SPJ unions, 1.7 joins per SPJ).
type Stats struct {
	TriplesMaps     int
	Assertions      int
	MappedTerms     int
	AvgUnionsPerSQL float64
	AvgJoinsPerSPJ  float64
}

// Stats computes mapping statistics.
func (mp *Mapping) Stats() Stats {
	s := Stats{TriplesMaps: len(mp.Maps), Assertions: mp.AssertionCount(),
		MappedTerms: len(mp.MappedTerms())}
	totalUnions, totalJoins, spjs := 0, 0, 0
	for _, m := range mp.Maps {
		stmt, err := m.LogicalSQL()
		if err != nil {
			continue
		}
		met := stmt.Metrics()
		totalUnions += met.Unions + 1
		totalJoins += met.Joins + met.LeftJoins
		spjs += met.Unions + 1
	}
	if len(mp.Maps) > 0 {
		s.AvgUnionsPerSQL = float64(totalUnions) / float64(len(mp.Maps))
	}
	if spjs > 0 {
		s.AvgJoinsPerSPJ = float64(totalJoins) / float64(spjs)
	}
	return s
}

// String renders the mapping in the compact textual syntax.
func (mp *Mapping) String() string {
	var sb strings.Builder
	for _, m := range mp.Maps {
		fmt.Fprintf(&sb, "mappingId %s\n", m.Name)
		fmt.Fprintf(&sb, "source    %s\n", m.SourceDescription())
		fmt.Fprintf(&sb, "target    %s", m.Subject)
		for _, c := range m.Classes {
			fmt.Fprintf(&sb, " a <%s> ;", c)
		}
		for _, po := range m.POs {
			fmt.Fprintf(&sb, " <%s> %s ;", po.Predicate, po.Object)
		}
		sb.WriteString(" .\n\n")
	}
	return sb.String()
}
