package r2rml

import (
	"testing"
)

// FuzzParseTemplate drives the IRI/literal template parser with arbitrary
// placeholder syntax and exercises the downstream template algebra on
// every successfully parsed value: Skeleton/String reconstruction, Match
// against the template's own rendering, and the structural comparisons
// the unfolder's pruning relies on (SameStructure, DisjointWith). None of
// it may panic, and Match(t.String()) must not reject a template without
// placeholders adjacent to each other.
func FuzzParseTemplate(f *testing.F) {
	seeds := []string{
		"http://npd#wellbore/{id}",
		"http://npd#well/{quadrant}-{num}",
		"{id}",
		"{a}{b}",
		"plain-constant",
		"",
		"pre{col}post",
		"http://npd#x/{id}/y/{id}",
		"{unterminated",
		"}stray",
		"{}",
		"a{b}c{d}e{f}g",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		tm, err := ParseTemplate(src)
		if err != nil {
			return
		}
		parts, cols := tm.Skeleton()
		if len(parts) != len(cols)+1 {
			t.Fatalf("skeleton shape: %d parts, %d cols", len(parts), len(cols))
		}
		rendered := tm.String()
		// A template must agree with itself structurally.
		if !tm.SameStructure(tm) {
			t.Fatalf("template %q not SameStructure with itself", rendered)
		}
		if tm.DisjointWith(tm) {
			t.Fatalf("template %q disjoint with itself", rendered)
		}
		// Matching is exercised for totality; success depends on the
		// template's fixture structure, so only panics are failures.
		_, _ = tm.Match(rendered)
		_, _ = tm.Match(src)
		_, _ = tm.Match("")
	})
}

// FuzzParseMapping drives the compact mapping-declaration parser.
func FuzzParseMapping(f *testing.F) {
	seeds := []string{
		`[PrefixDeclaration]
t: http://t/

[MappingDeclaration]
mappingId m1
target    t:emp/{id} a t:Employee ; t:name {name} .
source    SELECT id, name FROM emp
`,
		`[MappingDeclaration]
mappingId broken
target    t:emp/{id a t:Employee .
source    SELECT id FROM emp
`,
		"mappingId only",
		"",
		"[PrefixDeclaration]\nbad prefix line",
		// Regression: a subject token whose prefix expansion has a stray '}'
		// used to panic in MustParseTemplate instead of returning an error.
		"[PrefixDeclaration]\nt: 0\n[MappingDeclaration]\nmappingId \ntarget t:}",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		mp, err := ParseMapping(src)
		if err != nil {
			return
		}
		for _, m := range mp.Maps {
			_ = m.SourceDescription()
		}
	})
}
