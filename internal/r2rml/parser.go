package r2rml

import (
	"fmt"
	"strings"

	"npdbench/internal/rdf"
)

// ParseMapping parses the compact OBDA mapping syntax (modelled on Ontop's
// .obda format):
//
//	[PrefixDeclaration]
//	npdv:  http://sws.ifi.uio.no/vocab/npd-v2#
//	data:  http://sws.ifi.uio.no/data/npd-v2/
//
//	[MappingDeclaration]
//	mappingId  wellbore-core
//	target     data:wellbore/{id} a npdv:Wellbore ; npdv:name {name} .
//	source     SELECT id, name FROM wellbore
//
//	mappingId  ...
//
// Targets use Turtle-like triples with {column} placeholders; `a` abbreviates
// rdf:type; objects may be IRI templates, literal columns (optionally typed
// with ^^), or constants.
func ParseMapping(src string) (*Mapping, error) {
	mp := NewMapping()
	lines := strings.Split(src, "\n")
	section := ""
	var cur *TriplesMap
	var curTarget string
	flush := func() error {
		if cur == nil {
			return nil
		}
		if curTarget == "" {
			return fmt.Errorf("r2rml: mapping %s has no target", cur.Name)
		}
		if err := parseTarget(mp, cur, curTarget); err != nil {
			return err
		}
		if cur.Table == "" && cur.SQL == "" {
			return fmt.Errorf("r2rml: mapping %s has no source", cur.Name)
		}
		mp.Add(cur)
		cur, curTarget = nil, ""
		return nil
	}
	for lineNo, raw := range lines {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "[") {
			section = strings.Trim(line, "[]")
			continue
		}
		switch section {
		case "PrefixDeclaration":
			fields := strings.Fields(line)
			if len(fields) != 2 || !strings.HasSuffix(fields[0], ":") {
				return nil, fmt.Errorf("r2rml: line %d: bad prefix declaration %q", lineNo+1, line)
			}
			mp.Prefixes[strings.TrimSuffix(fields[0], ":")] = fields[1]
		case "MappingDeclaration":
			key, rest, found := strings.Cut(line, " ")
			if !found {
				key, rest = line, ""
			}
			rest = strings.TrimSpace(rest)
			switch key {
			case "mappingId":
				if err := flush(); err != nil {
					return nil, err
				}
				cur = &TriplesMap{Name: rest}
			case "target":
				if cur == nil {
					return nil, fmt.Errorf("r2rml: line %d: target before mappingId", lineNo+1)
				}
				curTarget = rest
			case "source":
				if cur == nil {
					return nil, fmt.Errorf("r2rml: line %d: source before mappingId", lineNo+1)
				}
				cur.SQL = rest
			default:
				// continuation of the previous source line
				if cur != nil && cur.SQL != "" {
					cur.SQL += " " + line
					continue
				}
				return nil, fmt.Errorf("r2rml: line %d: unexpected %q", lineNo+1, line)
			}
		default:
			return nil, fmt.Errorf("r2rml: line %d: content outside a section", lineNo+1)
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return mp, nil
}

// MustParseMapping parses or panics (static benchmark assets).
func MustParseMapping(src string) *Mapping {
	mp, err := ParseMapping(src)
	if err != nil {
		panic(err)
	}
	return mp
}

// parseTarget fills the subject/classes/POs of m from the target text.
func parseTarget(mp *Mapping, m *TriplesMap, target string) error {
	toks, err := tokenizeTarget(target)
	if err != nil {
		return fmt.Errorf("r2rml: mapping %s: %w", m.Name, err)
	}
	if len(toks) == 0 {
		return fmt.Errorf("r2rml: mapping %s: empty target", m.Name)
	}
	subj, err := parseTermToken(mp, toks[0], true)
	if err != nil {
		return fmt.Errorf("r2rml: mapping %s: subject: %w", m.Name, err)
	}
	m.Subject = subj
	i := 1
	for i < len(toks) {
		if toks[i] == "." {
			i++
			continue
		}
		pred := toks[i]
		i++
		if i >= len(toks) {
			return fmt.Errorf("r2rml: mapping %s: dangling predicate %q", m.Name, pred)
		}
		obj := toks[i]
		i++
		if pred == "a" {
			iri, err := expandIRIToken(mp, obj)
			if err != nil {
				return fmt.Errorf("r2rml: mapping %s: class: %w", m.Name, err)
			}
			m.Classes = append(m.Classes, iri)
		} else {
			predIRI, err := expandIRIToken(mp, pred)
			if err != nil {
				return fmt.Errorf("r2rml: mapping %s: predicate: %w", m.Name, err)
			}
			objMap, err := parseTermToken(mp, obj, false)
			if err != nil {
				return fmt.Errorf("r2rml: mapping %s: object: %w", m.Name, err)
			}
			m.POs = append(m.POs, PredicateObject{Predicate: predIRI, Object: objMap})
		}
		if i < len(toks) && (toks[i] == ";" || toks[i] == ".") {
			i++
		}
	}
	return nil
}

func tokenizeTarget(s string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == ';' || c == '.':
			// '.' inside an IRI/template is handled by the token scanners
			toks = append(toks, string(c))
			i++
		case c == '"':
			j := i + 1
			for j < len(s) && s[j] != '"' {
				j++
			}
			if j >= len(s) {
				return nil, fmt.Errorf("unterminated literal in target")
			}
			end := j + 1
			// optional ^^datatype
			if end+1 < len(s) && s[end] == '^' && s[end+1] == '^' {
				end += 2
				for end < len(s) && s[end] != ' ' && s[end] != ';' {
					end++
				}
			}
			toks = append(toks, s[i:end])
			i = end
		case c == '<':
			j := strings.IndexByte(s[i:], '>')
			if j < 0 {
				return nil, fmt.Errorf("unterminated IRI in target")
			}
			toks = append(toks, s[i:i+j+1])
			i += j + 1
		default:
			j := i
			for j < len(s) && s[j] != ' ' && s[j] != '\t' && s[j] != ';' {
				j++
			}
			word := s[i:j]
			// strip a trailing '.' when it terminates the whole target
			if word != "." && strings.HasSuffix(word, ".") && j == len(s) {
				word = word[:len(word)-1]
				toks = append(toks, word, ".")
			} else {
				toks = append(toks, word)
			}
			i = j
		}
	}
	return toks, nil
}

// expandIRIToken resolves an IRI token (prefixed or <...>), allowing
// {placeholders} to pass through.
func expandIRIToken(mp *Mapping, tok string) (string, error) {
	if strings.HasPrefix(tok, "<") && strings.HasSuffix(tok, ">") {
		return tok[1 : len(tok)-1], nil
	}
	colon := strings.Index(tok, ":")
	if colon < 0 {
		return "", fmt.Errorf("%q is not an IRI", tok)
	}
	ns, ok := mp.Prefixes[tok[:colon]]
	if !ok {
		return "", fmt.Errorf("unknown prefix in %q", tok)
	}
	return ns + tok[colon+1:], nil
}

// parseTermToken interprets a target token as a term map. Subjects must be
// IRI maps.
func parseTermToken(mp *Mapping, tok string, subject bool) (TermMap, error) {
	switch {
	case strings.HasPrefix(tok, "\""):
		// constant literal with optional datatype
		body, dt, _ := strings.Cut(tok, "^^")
		lex := strings.Trim(body, "\"")
		if dt != "" {
			iri, err := expandIRIToken(mp, dt)
			if err != nil {
				return TermMap{}, err
			}
			return ConstantMap(rdf.NewTypedLiteral(lex, iri)), nil
		}
		return ConstantMap(rdf.NewLiteral(lex)), nil
	case strings.HasPrefix(tok, "{"):
		// literal column, optionally typed
		body, dt, _ := strings.Cut(tok, "^^")
		col := strings.Trim(body, "{}")
		if col == "" {
			return TermMap{}, fmt.Errorf("empty column in %q", tok)
		}
		if subject {
			return TermMap{}, fmt.Errorf("subject cannot be a literal (%q)", tok)
		}
		if dt != "" {
			iri, err := expandIRIToken(mp, dt)
			if err != nil {
				return TermMap{}, err
			}
			return TypedColumnMap(col, iri), nil
		}
		return ColumnMap(col), nil
	default:
		iri, err := expandIRIToken(mp, tok)
		if err != nil {
			return TermMap{}, err
		}
		if !strings.Contains(iri, "{") {
			if subject {
				// Still run through ParseTemplate: a stray '}' must surface
				// as a parse error, not a panic.
				tmpl, err := ParseTemplate(iri)
				if err != nil {
					return TermMap{}, err
				}
				return TermMap{Kind: IRITemplate, Template: tmpl}, nil
			}
			return ConstantMap(rdf.NewIRI(iri)), nil
		}
		tmpl, err := ParseTemplate(iri)
		if err != nil {
			return TermMap{}, err
		}
		return TermMap{Kind: IRITemplate, Template: tmpl}, nil
	}
}
