package r2rml

import (
	"math/rand"
	"testing"

	"npdbench/internal/sqldb"
)

// Property: VirtualCounts sums to the distinct-triple count of the
// materialized graph, for random instances.
func TestVirtualCountsMatchDistinctTriples(t *testing.T) {
	mp := MustParseMapping(`
[PrefixDeclaration]
v: http://v/

[MappingDeclaration]
mappingId classes
target    v:e/{id} a v:E .
source    SELECT id FROM t

mappingId props
target    v:e/{id} v:p {val} .
source    SELECT id, val FROM t

mappingId dup
target    v:e/{id} a v:E .
source    SELECT id FROM t WHERE val IS NOT NULL
`)
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		db := sqldb.NewDatabase("p")
		if _, err := db.CreateTable(&sqldb.TableDef{
			Name: "t",
			Columns: []sqldb.Column{
				{Name: "id", Type: sqldb.TInt, NotNull: true},
				{Name: "val", Type: sqldb.TText},
			},
			PrimaryKey: []int{0},
		}); err != nil {
			t.Fatal(err)
		}
		n := 5 + rng.Intn(40)
		for i := 0; i < n; i++ {
			v := sqldb.Value(sqldb.NewString(string(rune('a' + rng.Intn(4)))))
			if rng.Intn(3) == 0 {
				v = sqldb.Null
			}
			if err := db.Insert("t", sqldb.Row{sqldb.NewInt(int64(i)), v}); err != nil {
				t.Fatal(err)
			}
		}
		counts, err := mp.VirtualCounts(db)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		// distinct triples by hand
		triples, err := mp.MaterializeTriples(db)
		if err != nil {
			t.Fatal(err)
		}
		distinct := map[string]bool{}
		for _, tr := range triples {
			distinct[tr.String()] = true
		}
		if total != len(distinct) {
			t.Fatalf("trial %d: VirtualCounts total %d != %d distinct triples",
				trial, total, len(distinct))
		}
		// the duplicate class assertion must not double-count
		if counts["http://v/E"] != n {
			t.Fatalf("trial %d: E count %d != %d entities", trial, counts["http://v/E"], n)
		}
	}
}
