// Package r2rml implements the mapping layer of the OBDA architecture:
// R2RML-style triples maps with logical tables (base tables or SQL views),
// IRI templates, and predicate–object maps; a compact textual mapping
// syntax; and a materializer that exposes the virtual RDF graph of a
// relational database.
package r2rml

import (
	"fmt"
	"strings"

	"npdbench/internal/sqldb"
)

// Template is an IRI or literal template with {column} placeholders, e.g.
// "http://npd#wellbore/{id}". A template with no placeholders is a
// constant.
type Template struct {
	// Parts alternates literal segments and placeholders: even indexes are
	// literal text, odd indexes are column names.
	parts []string
	// Columns caches the placeholder names in order.
	Columns []string
}

// ParseTemplate parses "{col}" placeholder syntax. Braces cannot be nested
// or escaped (the R2RML subset the benchmark needs).
func ParseTemplate(s string) (*Template, error) {
	var t Template
	var lit strings.Builder
	i := 0
	for i < len(s) {
		c := s[i]
		switch c {
		case '{':
			j := strings.IndexByte(s[i:], '}')
			if j < 0 {
				return nil, fmt.Errorf("r2rml: unterminated placeholder in %q", s)
			}
			col := s[i+1 : i+j]
			if col == "" {
				return nil, fmt.Errorf("r2rml: empty placeholder in %q", s)
			}
			t.parts = append(t.parts, lit.String(), col)
			t.Columns = append(t.Columns, col)
			lit.Reset()
			i += j + 1
		case '}':
			return nil, fmt.Errorf("r2rml: unbalanced '}' in %q", s)
		default:
			lit.WriteByte(c)
			i++
		}
	}
	t.parts = append(t.parts, lit.String())
	return &t, nil
}

// MustParseTemplate parses or panics (static mapping definitions).
func MustParseTemplate(s string) *Template {
	t, err := ParseTemplate(s)
	if err != nil {
		panic(err)
	}
	return t
}

// IsConstant reports whether the template has no placeholders.
func (t *Template) IsConstant() bool { return len(t.Columns) == 0 }

// Skeleton exposes the template structure: the literal segments (always
// len(cols)+1, possibly empty strings) and the placeholder columns in
// order. The unfolder uses it to compile template expansion into SQL
// concatenation and to align join columns between identical skeletons.
func (t *Template) Skeleton() (literals []string, cols []string) {
	for i, p := range t.parts {
		if i%2 == 0 {
			literals = append(literals, p)
		} else {
			cols = append(cols, p)
		}
	}
	return literals, cols
}

// String reconstructs the template source.
func (t *Template) String() string {
	var sb strings.Builder
	for i, p := range t.parts {
		if i%2 == 1 {
			sb.WriteString("{" + p + "}")
		} else {
			sb.WriteString(p)
		}
	}
	return sb.String()
}

// Expand instantiates the template with column values. It returns ok=false
// when any referenced value is NULL or missing (R2RML: no term generated).
func (t *Template) Expand(get func(col string) (sqldb.Value, bool)) (string, bool) {
	var sb strings.Builder
	for i, p := range t.parts {
		if i%2 == 0 {
			sb.WriteString(p)
			continue
		}
		v, ok := get(p)
		if !ok || v.IsNull() {
			return "", false
		}
		sb.WriteString(iriSafe(v.String()))
	}
	return sb.String(), true
}

// iriSafe percent-encodes the characters R2RML requires to be escaped in
// IRI template expansion.
func iriSafe(s string) string {
	if !strings.ContainsAny(s, " \"<>{}|\\^`%") {
		return s
	}
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if strings.IndexByte(" \"<>{}|\\^`%", c) >= 0 {
			fmt.Fprintf(&sb, "%%%02X", c)
		} else {
			sb.WriteByte(c)
		}
	}
	return sb.String()
}

func iriUnsafe(s string) string {
	if !strings.Contains(s, "%") {
		return s
	}
	var sb strings.Builder
	for i := 0; i < len(s); {
		if s[i] == '%' && i+2 < len(s) {
			var b byte
			if n, err := fmt.Sscanf(s[i+1:i+3], "%02X", &b); err == nil && n == 1 {
				sb.WriteByte(b)
				i += 3
				continue
			}
		}
		sb.WriteByte(s[i])
		i++
	}
	return sb.String()
}

// Match attempts the inverse of Expand: given a concrete string, recover
// the placeholder values. It returns ok=false when the string cannot have
// been produced by this template. Matching is greedy-left with literal
// separators; templates whose adjacent placeholders have no separator are
// rejected as ambiguous.
func (t *Template) Match(s string) (map[string]string, bool) {
	vals := make(map[string]string)
	rest := s
	for i := 0; i < len(t.parts); i++ {
		p := t.parts[i]
		if i%2 == 0 {
			if !strings.HasPrefix(rest, p) {
				return nil, false
			}
			rest = rest[len(p):]
			continue
		}
		// placeholder: capture up to the next literal part
		if i+1 >= len(t.parts) {
			vals[p] = iriUnsafe(rest)
			rest = ""
			continue
		}
		sep := t.parts[i+1]
		if sep == "" {
			// adjacent placeholders or trailing empty literal
			if i+2 >= len(t.parts) {
				vals[p] = iriUnsafe(rest)
				rest = ""
				continue
			}
			return nil, false
		}
		j := strings.Index(rest, sep)
		if j < 0 {
			return nil, false
		}
		vals[p] = iriUnsafe(rest[:j])
		rest = rest[j:]
	}
	if rest != "" {
		return nil, false
	}
	return vals, true
}

// CompatiblePrefix reports whether a string could possibly be produced by
// the template (used by the unfolder to prune mapping branches cheaply
// before full unification).
func (t *Template) CompatiblePrefix(s string) bool {
	if len(t.parts) == 0 {
		return s == ""
	}
	return strings.HasPrefix(s, t.parts[0])
}

// SameStructure reports whether two templates can ever produce the same
// string; the unfolder uses it to prune join branches between incompatible
// templates (a key semantic-query-optimization step of the paper).
// It is the negation of DisjointWith.
func (t *Template) SameStructure(u *Template) bool {
	return !t.DisjointWith(u)
}

// DisjointWith proves that no string can be produced by both templates.
// It is the shared disjointness test behind the unfolder's branch pruning
// and the static analyzer's unjoinable-template diagnostics. The proof is
// conservative (false means "may collide", not "must collide"):
//
//   - the leading literal segments must be prefix-compatible (any
//     expansion of t starts with t.parts[0], and likewise for u);
//   - the trailing literal segments must be suffix-compatible;
//   - two constants collide only when equal.
//
// Templates differing only in interior separators are NOT disjoint:
// placeholder values are unconstrained strings, so "p/{a}-{b}" and
// "p/{a}_{b}" can both produce "p/1_2-3".
func (t *Template) DisjointWith(u *Template) bool {
	a, b := t.parts[0], u.parts[0]
	if len(a) > len(b) {
		a, b = b, a
	}
	if !strings.HasPrefix(b, a) {
		return true
	}
	at, bt := t.parts[len(t.parts)-1], u.parts[len(u.parts)-1]
	if len(at) > len(bt) {
		at, bt = bt, at
	}
	if !strings.HasSuffix(bt, at) {
		return true
	}
	if t.IsConstant() && u.IsConstant() {
		return t.parts[0] != u.parts[0]
	}
	return false
}
