package r2rml

import (
	"strings"
	"testing"
	"testing/quick"

	"npdbench/internal/rdf"
	"npdbench/internal/sqldb"
)

func TestTemplateParseAndString(t *testing.T) {
	tmpl, err := ParseTemplate("http://x/{a}/y/{b}")
	if err != nil {
		t.Fatal(err)
	}
	if len(tmpl.Columns) != 2 || tmpl.Columns[0] != "a" || tmpl.Columns[1] != "b" {
		t.Fatalf("columns %v", tmpl.Columns)
	}
	if tmpl.String() != "http://x/{a}/y/{b}" {
		t.Fatalf("round trip: %s", tmpl)
	}
	for _, bad := range []string{"http://x/{", "a}b", "{}", "{a}{"} {
		if _, err := ParseTemplate(bad); err == nil {
			t.Errorf("expected error for %q", bad)
		}
	}
}

func TestTemplateExpandAndMatchInverse(t *testing.T) {
	tmpl := MustParseTemplate("http://x/{a}/y/{b}")
	vals := map[string]sqldb.Value{
		"a": sqldb.NewInt(42),
		"b": sqldb.NewString("hello"),
	}
	get := func(col string) (sqldb.Value, bool) { v, ok := vals[col]; return v, ok }
	s, ok := tmpl.Expand(get)
	if !ok || s != "http://x/42/y/hello" {
		t.Fatalf("expand: %q %v", s, ok)
	}
	back, ok := tmpl.Match(s)
	if !ok || back["a"] != "42" || back["b"] != "hello" {
		t.Fatalf("match: %v %v", back, ok)
	}
	if _, ok := tmpl.Match("http://other/42/y/z"); ok {
		t.Fatal("wrong prefix must not match")
	}
	if _, ok := tmpl.Match("http://x/42/z/zz"); ok {
		t.Fatal("wrong separator must not match")
	}
}

func TestTemplateMatchProperty(t *testing.T) {
	tmpl := MustParseTemplate("http://npd/w/{id}/c/{n}")
	f := func(id uint32, n uint16) bool {
		vals := map[string]sqldb.Value{
			"id": sqldb.NewInt(int64(id)),
			"n":  sqldb.NewInt(int64(n)),
		}
		s, ok := tmpl.Expand(func(c string) (sqldb.Value, bool) { v, o := vals[c]; return v, o })
		if !ok {
			return false
		}
		back, ok := tmpl.Match(s)
		return ok && back["id"] == vals["id"].String() && back["n"] == vals["n"].String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTemplateIRISafety(t *testing.T) {
	tmpl := MustParseTemplate("http://x/{a}")
	s, ok := tmpl.Expand(func(string) (sqldb.Value, bool) {
		return sqldb.NewString("has space<>"), true
	})
	if !ok {
		t.Fatal("expand failed")
	}
	if strings.ContainsAny(s, " <>") {
		t.Fatalf("unsafe IRI: %q", s)
	}
	back, ok := tmpl.Match(s)
	if !ok || back["a"] != "has space<>" {
		t.Fatalf("percent-decoding failed: %v", back)
	}
}

func TestTemplateNullSuppression(t *testing.T) {
	tmpl := MustParseTemplate("http://x/{a}")
	if _, ok := tmpl.Expand(func(string) (sqldb.Value, bool) { return sqldb.Null, true }); ok {
		t.Fatal("NULL must suppress term generation")
	}
}

func TestSameStructure(t *testing.T) {
	a := MustParseTemplate("http://x/emp/{id}")
	b := MustParseTemplate("http://x/emp/{eid}")
	c := MustParseTemplate("http://x/prod/{id}")
	if !a.SameStructure(b) {
		t.Fatal("same-prefix templates are compatible")
	}
	if a.SameStructure(c) || c.SameStructure(a) {
		t.Fatal("different prefixes can never collide")
	}
}

func TestParseMappingDocument(t *testing.T) {
	mp, err := ParseMapping(`
[PrefixDeclaration]
ex:  http://example.org/
npdv: http://vocab/

# a comment
[MappingDeclaration]
mappingId m1
target    ex:w/{id} a npdv:Wellbore ; npdv:name {name} ; npdv:depth {depth}^^xsd:double .
source    SELECT id, name, depth FROM wellbore

mappingId m2
target    ex:w/{id} npdv:inLicence ex:lic/{lic} .
source    SELECT id, lic FROM wellbore WHERE lic IS NOT NULL
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(mp.Maps) != 2 {
		t.Fatalf("maps = %d", len(mp.Maps))
	}
	m1 := mp.Maps[0]
	if len(m1.Classes) != 1 || m1.Classes[0] != "http://vocab/Wellbore" {
		t.Fatalf("classes %v", m1.Classes)
	}
	if len(m1.POs) != 2 {
		t.Fatalf("POs %v", m1.POs)
	}
	if m1.POs[1].Object.Datatype != rdf.XSDNS+"double" {
		t.Fatalf("datatype %q", m1.POs[1].Object.Datatype)
	}
	m2 := mp.Maps[1]
	if m2.POs[0].Object.Kind != IRITemplate {
		t.Fatalf("object kind %v", m2.POs[0].Object.Kind)
	}
	if _, err := m2.LogicalSQL(); err != nil {
		t.Fatal(err)
	}
}

func TestParseMappingErrors(t *testing.T) {
	bad := []string{
		"junk outside sections",
		"[MappingDeclaration]\nmappingId m\nsource SELECT 1",             // no target
		"[MappingDeclaration]\nmappingId m\ntarget ex:x a ex:C .",        // unknown prefix
		"[MappingDeclaration]\ntarget ex:x a ex:C .\nsource SELECT 1",    // target before id
		"[PrefixDeclaration]\nbroken line without colon http://x/",       // bad prefix
		"[MappingDeclaration]\nmappingId m\ntarget {c} a :C .\nsource S", // literal subject
	}
	for _, src := range bad {
		if _, err := ParseMapping(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestMaterialize(t *testing.T) {
	db := sqldb.NewDatabase("t")
	if _, err := db.CreateTable(&sqldb.TableDef{
		Name: "wellbore",
		Columns: []sqldb.Column{
			{Name: "id", Type: sqldb.TInt, NotNull: true},
			{Name: "name", Type: sqldb.TText},
		},
		PrimaryKey: []int{0},
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("wellbore", sqldb.Row{sqldb.NewInt(1), sqldb.NewString("W1")}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("wellbore", sqldb.Row{sqldb.NewInt(2), sqldb.Null}); err != nil {
		t.Fatal(err)
	}
	mp := MustParseMapping(`
[PrefixDeclaration]
ex: http://e/
v:  http://v/

[MappingDeclaration]
mappingId m
target    ex:w/{id} a v:W ; v:name {name} .
source    SELECT id, name FROM wellbore
`)
	triples, err := mp.MaterializeTriples(db)
	if err != nil {
		t.Fatal(err)
	}
	// 2 type triples + 1 name triple (row 2's name is NULL -> suppressed).
	if len(triples) != 3 {
		t.Fatalf("triples = %d: %v", len(triples), triples)
	}
	counts, err := mp.VirtualCounts(db)
	if err != nil {
		t.Fatal(err)
	}
	if counts["http://v/W"] != 2 || counts["http://v/name"] != 1 {
		t.Fatalf("counts %v", counts)
	}
}

func TestMappingStats(t *testing.T) {
	mp := MustParseMapping(`
[PrefixDeclaration]
v: http://v/

[MappingDeclaration]
mappingId m1
target    v:x/{a} a v:C .
source    SELECT a FROM t1 UNION SELECT a FROM t2

mappingId m2
target    v:x/{a} v:p {b} .
source    SELECT t1.a AS a, t2.b AS b FROM t1 JOIN t2 ON t1.a = t2.a
`)
	st := mp.Stats()
	if st.TriplesMaps != 2 || st.Assertions != 2 || st.MappedTerms != 2 {
		t.Fatalf("stats %+v", st)
	}
	if st.AvgUnionsPerSQL < 1.4 || st.AvgJoinsPerSPJ <= 0 {
		t.Fatalf("SQL complexity stats %+v", st)
	}
}
