package r2rml

import (
	"fmt"
	"strings"

	"npdbench/internal/rdf"
	"npdbench/internal/sqldb"
)

// Materialize exposes the virtual RDF graph: it evaluates every triples
// map's logical table over db and emits the generated triples through emit.
// Duplicate triples may be emitted; RDF-set semantics are the consumer's
// concern (a triplestore.Store deduplicates on Add).
func (mp *Mapping) Materialize(db *sqldb.Database, emit func(rdf.Triple)) error {
	for _, m := range mp.Maps {
		if err := m.materialize(db, emit); err != nil {
			return err
		}
	}
	return nil
}

// MaterializeTriples collects the whole virtual graph into a slice
// (convenience for tests and small instances; large instances should stream
// through Materialize).
func (mp *Mapping) MaterializeTriples(db *sqldb.Database) ([]rdf.Triple, error) {
	var out []rdf.Triple
	err := mp.Materialize(db, func(t rdf.Triple) { out = append(out, t) })
	return out, err
}

func (m *TriplesMap) materialize(db *sqldb.Database, emit func(rdf.Triple)) error {
	stmt, err := m.LogicalSQL()
	if err != nil {
		return err
	}
	res, err := db.ExecSelect(stmt)
	if err != nil {
		return fmt.Errorf("r2rml: mapping %s: %w", m.Name, err)
	}
	colIndex := make(map[string]int, len(res.Columns))
	for i, c := range res.Columns {
		colIndex[strings.ToLower(c)] = i
	}
	rdfType := rdf.NewIRI(rdf.RDFType)
	for _, row := range res.Rows {
		get := func(col string) (sqldb.Value, bool) {
			i, ok := colIndex[strings.ToLower(col)]
			if !ok {
				return sqldb.Null, false
			}
			return row[i], true
		}
		subj, ok := m.Subject.Generate(get)
		if !ok {
			continue
		}
		for _, class := range m.Classes {
			emit(rdf.Triple{S: subj, P: rdfType, O: rdf.NewIRI(class)})
		}
		for _, po := range m.POs {
			obj, ok := po.Object.Generate(get)
			if !ok {
				continue
			}
			emit(rdf.Triple{S: subj, P: rdf.NewIRI(po.Predicate), O: obj})
		}
	}
	return nil
}

// VirtualCounts tallies, per ontology term, the number of distinct triples
// the mapping exposes over db. It is the measurement primitive behind the
// paper's VIG-validation experiment (Table 8: expected vs. actual growth of
// classes and properties).
func (mp *Mapping) VirtualCounts(db *sqldb.Database) (map[string]int, error) {
	type key struct{ s, p, o rdf.Term }
	seen := make(map[key]string, 1024)
	counts := make(map[string]int)
	err := mp.Materialize(db, func(t rdf.Triple) {
		k := key{t.S, t.P, t.O}
		if _, dup := seen[k]; dup {
			return
		}
		var term string
		if t.P.Value == rdf.RDFType {
			term = t.O.Value
		} else {
			term = t.P.Value
		}
		seen[k] = term
		counts[term]++
	})
	return counts, err
}
