package obs

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// RuntimeCollector bridges the runtime/metrics package into a Registry,
// so one Prometheus scrape of /metrics shows engine health (query rates,
// stage latencies, cache hits) and runtime health (heap, GC, goroutines,
// scheduler latency) side by side. Collect is a cheap one-shot read;
// Start runs it on a ticker for serving processes.
//
// Exported family (all under npdbench_runtime_*):
//
//	heap_bytes               gauge    live heap (objects class)
//	total_bytes              gauge    total runtime-mapped memory
//	goroutines               gauge    current goroutine count
//	gc_cycles_total          counter  completed GC cycles
//	gc_pause_us{q="..."}     gauge    GC stop-the-world pause quantiles
//	sched_latency_us{q="..."} gauge   goroutine scheduling latency quantiles
//	collections_total        counter  collector passes
type RuntimeCollector struct {
	mu      sync.Mutex // serializes Collect passes
	samples []metrics.Sample

	heapBytes  *Gauge
	totalBytes *Gauge
	goroutines *Gauge
	gcCycles   *Counter
	gcPauseP50 *Gauge
	gcPauseP99 *Gauge
	schedP50   *Gauge
	schedP99   *Gauge
	collects   *Counter

	lastGCCycles uint64

	stopOnce sync.Once
	stop     chan struct{}
}

// Indices into RuntimeCollector.samples (must match newRuntimeSamples).
const (
	rmHeapBytes = iota
	rmTotalBytes
	rmGoroutines
	rmGCCycles
	rmGCPauses
	rmSchedLatency
	numRuntimeSamples
)

func newRuntimeSamples() []metrics.Sample {
	s := make([]metrics.Sample, numRuntimeSamples)
	s[rmHeapBytes].Name = "/memory/classes/heap/objects:bytes"
	s[rmTotalBytes].Name = "/memory/classes/total:bytes"
	s[rmGoroutines].Name = "/sched/goroutines:goroutines"
	s[rmGCCycles].Name = "/gc/cycles/total:gc-cycles"
	s[rmGCPauses].Name = "/gc/pauses:seconds"
	s[rmSchedLatency].Name = "/sched/latencies:seconds"
	return s
}

// NewRuntimeCollector binds the runtime metric family to reg. Returns nil
// on a nil registry (and every method no-ops), matching the one-nil-check
// discipline of the rest of the package.
func NewRuntimeCollector(reg *Registry) *RuntimeCollector {
	if reg == nil {
		return nil
	}
	c := &RuntimeCollector{
		samples:    newRuntimeSamples(),
		heapBytes:  reg.Gauge("npdbench_runtime_heap_bytes"),
		totalBytes: reg.Gauge("npdbench_runtime_total_bytes"),
		goroutines: reg.Gauge("npdbench_runtime_goroutines"),
		gcCycles:   reg.Counter("npdbench_runtime_gc_cycles_total"),
		gcPauseP50: reg.Gauge(`npdbench_runtime_gc_pause_us{q="0.5"}`),
		gcPauseP99: reg.Gauge(`npdbench_runtime_gc_pause_us{q="0.99"}`),
		schedP50:   reg.Gauge(`npdbench_runtime_sched_latency_us{q="0.5"}`),
		schedP99:   reg.Gauge(`npdbench_runtime_sched_latency_us{q="0.99"}`),
		collects:   reg.Counter("npdbench_runtime_collections_total"),
		stop:       make(chan struct{}),
	}
	reg.Help("npdbench_runtime_heap_bytes", "Live heap memory (runtime/metrics objects class).")
	reg.Help("npdbench_runtime_goroutines", "Current number of goroutines.")
	reg.Help("npdbench_runtime_gc_pause_us", "GC stop-the-world pause quantiles in microseconds.")
	reg.Help("npdbench_runtime_sched_latency_us", "Goroutine scheduling latency quantiles in microseconds.")
	return c
}

// Collect reads one runtime/metrics snapshot into the registry.
func (c *RuntimeCollector) Collect() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	metrics.Read(c.samples)
	if v := c.samples[rmHeapBytes].Value; v.Kind() == metrics.KindUint64 {
		c.heapBytes.Set(int64(v.Uint64()))
	}
	if v := c.samples[rmTotalBytes].Value; v.Kind() == metrics.KindUint64 {
		c.totalBytes.Set(int64(v.Uint64()))
	}
	if v := c.samples[rmGoroutines].Value; v.Kind() == metrics.KindUint64 {
		c.goroutines.Set(int64(v.Uint64()))
	}
	if v := c.samples[rmGCCycles].Value; v.Kind() == metrics.KindUint64 {
		// runtime reports a cumulative total; the registry counter is
		// fed the delta since the previous pass.
		cur := v.Uint64()
		if cur >= c.lastGCCycles {
			c.gcCycles.Add(int64(cur - c.lastGCCycles))
		}
		c.lastGCCycles = cur
	}
	if v := c.samples[rmGCPauses].Value; v.Kind() == metrics.KindFloat64Histogram {
		h := v.Float64Histogram()
		c.gcPauseP50.Set(int64(histQuantile(h, 0.50) * 1e6))
		c.gcPauseP99.Set(int64(histQuantile(h, 0.99) * 1e6))
	}
	if v := c.samples[rmSchedLatency].Value; v.Kind() == metrics.KindFloat64Histogram {
		h := v.Float64Histogram()
		c.schedP50.Set(int64(histQuantile(h, 0.50) * 1e6))
		c.schedP99.Set(int64(histQuantile(h, 0.99) * 1e6))
	}
	c.collects.Inc()
}

// Start launches a ticker goroutine collecting every interval until Stop.
// Uses the sanctioned obs clock; the goroutine observes the stop channel.
func (c *RuntimeCollector) Start(interval time.Duration) {
	if c == nil {
		return
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	c.Collect() // prime the gauges before the first tick
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.Collect()
			}
		}
	}()
}

// Stop halts the ticker goroutine. Safe to call multiple times, and safe
// when Start was never called.
func (c *RuntimeCollector) Stop() {
	if c == nil {
		return
	}
	c.stopOnce.Do(func() { close(c.stop) })
}

// histQuantile estimates the q-quantile of a runtime/metrics histogram.
// Buckets[i]..Buckets[i+1] bounds Counts[i]; boundary buckets may be
// infinite, in which case the finite edge is reported.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 || len(h.Buckets) != len(h.Counts)+1 {
		return 0
	}
	var total uint64
	for _, n := range h.Counts {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, n := range h.Counts {
		cum += float64(n)
		if cum < rank {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		if math.IsInf(lo, -1) {
			lo = 0
		}
		if math.IsInf(hi, 1) { // overflow bucket: report its finite floor
			return lo
		}
		return hi
	}
	last := h.Buckets[len(h.Buckets)-1]
	if math.IsInf(last, 1) {
		last = h.Buckets[len(h.Buckets)-2]
	}
	return last
}
