package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
)

// SlowEntry is one captured slow query: identity, duration, the sampling
// decision that retained it, the usage block, the full span tree, and the
// operator profiles (typed `any` so obs does not import the executor; the
// engine stores its []*sqldb.OpProfile and JSON encoding preserves it).
type SlowEntry struct {
	TraceID    string         `json:"trace_id"`
	Query      string         `json:"query,omitempty"`
	DurationUS int64          `json:"duration_us"`
	Decision   string         `json:"decision"`
	Slow       bool           `json:"slow"`
	Usage      *UsageSnapshot `json:"usage,omitempty"`
	Trace      *Span          `json:"trace,omitempty"`
	Profiles   any            `json:"profiles,omitempty"`
}

// SlowLog is a bounded capture ring of the N slowest queries seen. Offers
// are O(capacity) scans (capacity is small — tens of entries), guarded by
// one mutex; once full, an offer only displaces the current fastest
// resident when it is slower. Nil-safe throughout.
type SlowLog struct {
	mu       sync.Mutex
	capacity int
	entries  []*SlowEntry
	offered  int64
	evicted  int64
}

// DefaultSlowLogCapacity bounds the ring when the caller passes n <= 0.
const DefaultSlowLogCapacity = 32

// NewSlowLog returns a ring keeping the n slowest entries.
func NewSlowLog(n int) *SlowLog {
	if n <= 0 {
		n = DefaultSlowLogCapacity
	}
	return &SlowLog{capacity: n, entries: make([]*SlowEntry, 0, n)}
}

// Offer submits a finished query for capture. Returns true when the entry
// was admitted (ring not full, or slower than the current fastest).
func (l *SlowLog) Offer(e *SlowEntry) bool {
	if l == nil || e == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.offered++
	if len(l.entries) < l.capacity {
		l.entries = append(l.entries, e)
		return true
	}
	min := 0
	for i := 1; i < len(l.entries); i++ {
		if l.entries[i].DurationUS < l.entries[min].DurationUS {
			min = i
		}
	}
	if e.DurationUS <= l.entries[min].DurationUS {
		l.evicted++
		return false
	}
	l.entries[min] = e
	l.evicted++
	return true
}

// Offered returns the total number of entries offered, admitted or not.
func (l *SlowLog) Offered() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.offered
}

// Len returns the number of captured entries.
func (l *SlowLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Snapshot returns the captured entries, slowest first.
func (l *SlowLog) Snapshot() []*SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := append([]*SlowEntry(nil), l.entries...)
	l.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].DurationUS > out[j].DurationUS })
	return out
}

// slowLogJSON is the document served at /debug/slowlog.
type slowLogJSON struct {
	Capacity int          `json:"capacity"`
	Captured int          `json:"captured"`
	Offered  int64        `json:"offered"`
	Evicted  int64        `json:"evicted"`
	Entries  []*SlowEntry `json:"entries"`
}

// RenderJSON encodes the ring (slowest first) with its capture counters —
// the same document /debug/slowlog serves and `obdaq -slowlog` prints.
func (l *SlowLog) RenderJSON() ([]byte, error) {
	doc := slowLogJSON{Entries: []*SlowEntry{}}
	if l != nil {
		l.mu.Lock()
		doc.Capacity = l.capacity
		doc.Offered = l.offered
		doc.Evicted = l.evicted
		l.mu.Unlock()
		doc.Entries = l.Snapshot()
		doc.Captured = len(doc.Entries)
	}
	return json.MarshalIndent(doc, "", "  ")
}

// Handler serves the slow-query log as JSON (mount at /debug/slowlog).
func (l *SlowLog) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		b, err := l.RenderJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(b)
	})
}
