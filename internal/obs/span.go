// Package obs is the observability layer of the OBDA stack: hierarchical
// query traces (spans), a process-wide metrics registry with Prometheus and
// JSON encodings, and the JSONL run log the mixer writes next to its text
// report. It is stdlib-only, safe for concurrent use, and every API is
// nil-receiver-safe so that instrumented code pays (almost) nothing when
// observability is disabled.
package obs

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span. Values are kept as strings;
// SetInt/SetStr format at record time (spans are diagnostics, not a hot
// path — the hot path is the disabled nil-span case).
type Attr struct {
	Key string `json:"key"`
	Val string `json:"val"`
}

// Span is one timed stage of a trace. Child spans are appended under the
// parent's lock, so sibling stages may be recorded from concurrent
// goroutines. All methods are safe on a nil receiver and no-op.
type Span struct {
	Name     string        `json:"name"`
	Began    time.Time     `json:"began"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
	Children []*Span       `json:"children,omitempty"`

	mu    sync.Mutex
	ended bool
}

func newSpan(name string) *Span {
	return &Span{Name: name, Began: time.Now()}
}

// StartChild opens a sub-span under s.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(name)
	s.mu.Lock()
	s.Children = append(s.Children, c)
	s.mu.Unlock()
	return c
}

// End closes the span, fixing its duration. Ending twice keeps the first
// duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.Duration = time.Since(s.Began)
		s.ended = true
	}
	s.mu.Unlock()
}

// SetInt records an integer attribute.
func (s *Span) SetInt(key string, v int) {
	if s == nil {
		return
	}
	s.SetStr(key, fmt.Sprint(v))
}

// SetStr records a string attribute.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.Attrs = append(s.Attrs, Attr{Key: key, Val: v})
	s.mu.Unlock()
}

// Find returns the first span named name in a depth-first walk of s
// (including s itself), or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children {
		if hit := c.Find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// StageNames lists the names of every descendant span in depth-first order
// (the span taxonomy of one trace, used by tests and the CLI).
func (s *Span) StageNames() []string {
	if s == nil {
		return nil
	}
	var out []string
	for _, c := range s.Children {
		out = append(out, c.Name)
		out = append(out, c.StageNames()...)
	}
	return out
}

// Render draws the span tree with durations and attributes.
func (s *Span) Render() string {
	if s == nil {
		return ""
	}
	var sb strings.Builder
	s.render(&sb, "", true, true)
	return sb.String()
}

func (s *Span) render(sb *strings.Builder, prefix string, last, root bool) {
	if root {
		fmt.Fprintf(sb, "%s (%s)%s\n", s.Name, fmtSpanDur(s.Duration), fmtAttrs(s.Attrs))
	} else {
		branch := "├─ "
		if last {
			branch = "└─ "
		}
		fmt.Fprintf(sb, "%s%s%s (%s)%s\n", prefix, branch, s.Name, fmtSpanDur(s.Duration), fmtAttrs(s.Attrs))
	}
	childPrefix := prefix
	if !root {
		if last {
			childPrefix += "   "
		} else {
			childPrefix += "│  "
		}
	}
	for i, c := range s.Children {
		c.render(sb, childPrefix, i == len(s.Children)-1, false)
	}
}

func fmtAttrs(attrs []Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		parts[i] = a.Key + "=" + a.Val
	}
	return " " + strings.Join(parts, " ")
}

func fmtSpanDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// Trace is one query's span tree plus its process-unique identifier.
type Trace struct {
	ID   string `json:"trace_id"`
	Root *Span  `json:"root"`
}

var (
	traceCounter atomic.Uint64
	traceEpoch   = uint64(time.Now().UnixNano())
)

// NewTrace opens a trace whose root span is named name. Close it with
// Finish (or Root.End).
func NewTrace(name string) *Trace {
	n := traceCounter.Add(1)
	return &Trace{
		ID:   fmt.Sprintf("%012x-%06x", traceEpoch&0xffffffffffff, n&0xffffff),
		Root: newSpan(name),
	}
}

// StartSpan opens a child of the root span; nil-safe.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	return t.Root.StartChild(name)
}

// Finish ends the root span.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.Root.End()
}

// Render draws the whole trace, id line first.
func (t *Trace) Render() string {
	if t == nil {
		return ""
	}
	return fmt.Sprintf("trace %s\n%s", t.ID, t.Root.Render())
}

// StageDurations sums descendant span durations by name (a multi-BGP query
// records one span per stage per BGP; the totals are the Table 1 view).
func (t *Trace) StageDurations() map[string]time.Duration {
	if t == nil || t.Root == nil {
		return nil
	}
	out := map[string]time.Duration{}
	var walk func(s *Span)
	walk = func(s *Span) {
		for _, c := range s.Children {
			out[c.Name] += c.Duration
			walk(c)
		}
	}
	walk(t.Root)
	return out
}
