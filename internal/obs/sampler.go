package obs

import (
	"sync/atomic"
	"time"
)

// Sampler decides which query traces are retained. It replaces the
// all-or-nothing Tracing switch for serving workloads: a probabilistic
// head decision (Rate) keeps a representative slice of all traffic cheap,
// and a tail guard (SlowThreshold) retains every query that turns out
// slow regardless of the head decision. The trace is always *collected*
// while a sampler or slow log is installed — the decision controls
// retention (what is returned to the caller and offered to the slow log),
// because "was it slow" is only known at the end.
type Sampler struct {
	// Rate is the head-sampling probability in [0, 1]. 1 retains every
	// trace; 0 retains none except those the slow threshold promotes.
	Rate float64
	// SlowThreshold promotes any query with total duration >= threshold
	// to retained ("slow"), regardless of the head decision. Zero
	// disables the tail guard.
	SlowThreshold time.Duration
	// Seed offsets the deterministic decision sequence (useful in tests
	// to pin or vary it). The zero value is a valid sequence.
	Seed uint64

	state atomic.Uint64
}

// SampleDecision records whether a trace was retained and why.
type SampleDecision struct {
	// Sampled is the retention decision.
	Sampled bool
	// Reason is one of "off" (no tracing configured), "always"
	// (Tracing=true or Rate>=1), "prob" (head-sampled in), "unsampled"
	// (head-sampled out), "slow" (promoted by the tail guard).
	Reason string
}

// Decide makes the head decision for one query. Nil-safe: a nil sampler
// retains nothing by itself (the slow log may still promote).
func (s *Sampler) Decide() SampleDecision {
	if s == nil {
		return SampleDecision{Sampled: false, Reason: "unsampled"}
	}
	if s.Rate >= 1 {
		return SampleDecision{Sampled: true, Reason: "always"}
	}
	if s.Rate > 0 && s.roll() < s.Rate {
		return SampleDecision{Sampled: true, Reason: "prob"}
	}
	return SampleDecision{Sampled: false, Reason: "unsampled"}
}

// Slow reports whether a finished query's duration trips the tail guard.
func (s *Sampler) Slow(d time.Duration) bool {
	return s != nil && s.SlowThreshold > 0 && d >= s.SlowThreshold
}

// roll returns a uniform float64 in [0, 1) from a splitmix64 sequence.
// Lock-free and allocation-free; each call advances the shared state by a
// fixed odd increment, so concurrent callers see distinct draws.
func (s *Sampler) roll() float64 {
	x := s.state.Add(0x9e3779b97f4a7c15) + s.Seed
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}
