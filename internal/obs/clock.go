package obs

import "time"

// Now and Since are the repository's only sanctioned clock reads: repolint
// forbids raw time.Now()/time.Since() timing outside internal/obs and
// internal/mixer, so that every duration measured anywhere in the stack
// funnels through the observability layer (and can later be redirected to a
// fake clock in one place).
func Now() time.Time { return time.Now() }

// Since returns the elapsed wall time since t.
func Since(t time.Time) time.Duration { return time.Since(t) }
