package obs

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// QueryBudget holds per-query soft resource limits. Zero fields mean
// "unlimited". Exceeding a limit never aborts the query — it raises a
// one-shot "budget exceeded" event on the Usage tracker, which surfaces as
// a span attribute, an EXPLAIN ANALYZE line, a run-log field, and a
// labelled counter in the registry. Hard enforcement (killing the query)
// is a serving-layer policy decision and stays out of the engine.
type QueryBudget struct {
	// MaxRowsScanned bounds base-table rows read by the executor.
	MaxRowsScanned int64
	// MaxRowsProduced bounds rows emitted by relational operators.
	MaxRowsProduced int64
	// MaxBytesMaterialized bounds the estimated bytes of intermediate
	// relations materialized (rows x columns x value size).
	MaxBytesMaterialized int64
}

// Zero reports whether no limit is set.
func (b QueryBudget) Zero() bool {
	return b.MaxRowsScanned == 0 && b.MaxRowsProduced == 0 && b.MaxBytesMaterialized == 0
}

// Budget-limit bit positions in Usage.exceeded, and their canonical names
// (the `limit` label on npdbench_budget_exceeded_total).
const (
	limitRowsScanned = iota
	limitRowsProduced
	limitBytesMaterialized
	numBudgetLimits
)

// BudgetLimitNames are the canonical limit identifiers, indexed by bit.
var BudgetLimitNames = [numBudgetLimits]string{
	"rows_scanned",
	"rows_produced",
	"bytes_materialized",
}

// Usage is the per-query resource accounting tracker. All adders are
// atomic and nil-safe, so one tracker is shared by every operator of a
// query including parallel union arms and morsel workers; accounting is
// batched (one add per operator output, never per row). A nil *Usage is
// the disabled path: every method is a single nil check.
type Usage struct {
	rowsScanned   atomic.Int64
	rowsProduced  atomic.Int64
	bytesMat      atomic.Int64
	parallelTasks atomic.Int64
	cacheHits     atomic.Int64

	budget   QueryBudget
	exceeded atomic.Uint32 // bitmask over limit* bits, set once per limit
}

// NewUsage returns a tracker enforcing (softly) the given budget.
func NewUsage(b QueryBudget) *Usage {
	return &Usage{budget: b}
}

// AddRowsScanned records base-table rows read.
func (u *Usage) AddRowsScanned(n int64) {
	if u == nil || n <= 0 {
		return
	}
	v := u.rowsScanned.Add(n)
	if m := u.budget.MaxRowsScanned; m > 0 && v > m {
		u.trip(limitRowsScanned)
	}
}

// AddRowsProduced records operator output rows plus their estimated
// materialized footprint in bytes.
func (u *Usage) AddRowsProduced(rows, bytes int64) {
	if u == nil || rows < 0 {
		return
	}
	v := u.rowsProduced.Add(rows)
	if m := u.budget.MaxRowsProduced; m > 0 && v > m {
		u.trip(limitRowsProduced)
	}
	if bytes <= 0 {
		return
	}
	bv := u.bytesMat.Add(bytes)
	if m := u.budget.MaxBytesMaterialized; m > 0 && bv > m {
		u.trip(limitBytesMaterialized)
	}
}

// AddParallelTasks records tasks dispatched to the worker pool.
func (u *Usage) AddParallelTasks(n int64) {
	if u == nil || n <= 0 {
		return
	}
	u.parallelTasks.Add(n)
}

// AddCacheHits records plan/subquery cache hits.
func (u *Usage) AddCacheHits(n int64) {
	if u == nil || n <= 0 {
		return
	}
	u.cacheHits.Add(n)
}

// trip sets the exceeded bit for one limit; atomic Or makes repeated
// trips idempotent without a CAS retry loop.
func (u *Usage) trip(bit uint) {
	u.exceeded.Or(uint32(1) << bit)
}

// Exceeded returns the names of tripped budget limits, in bit order.
func (u *Usage) Exceeded() []string {
	if u == nil {
		return nil
	}
	mask := u.exceeded.Load()
	if mask == 0 {
		return nil
	}
	var out []string
	for bit, name := range BudgetLimitNames {
		if mask&(1<<uint(bit)) != 0 {
			out = append(out, name)
		}
	}
	return out
}

// Snapshot freezes the tracker into an immutable, JSON-ready block.
// Returns nil on a nil tracker.
func (u *Usage) Snapshot() *UsageSnapshot {
	if u == nil {
		return nil
	}
	return &UsageSnapshot{
		RowsScanned:       u.rowsScanned.Load(),
		RowsProduced:      u.rowsProduced.Load(),
		BytesMaterialized: u.bytesMat.Load(),
		ParallelTasks:     u.parallelTasks.Load(),
		CacheHits:         u.cacheHits.Load(),
		BudgetExceeded:    u.Exceeded(),
	}
}

// UsageSnapshot is the frozen usage block emitted into spans, EXPLAIN
// ANALYZE, the slow-query log and the JSONL run log (schema v2).
type UsageSnapshot struct {
	RowsScanned       int64    `json:"rows_scanned"`
	RowsProduced      int64    `json:"rows_produced"`
	BytesMaterialized int64    `json:"bytes_materialized"`
	ParallelTasks     int64    `json:"parallel_tasks"`
	CacheHits         int64    `json:"cache_hits"`
	BudgetExceeded    []string `json:"budget_exceeded,omitempty"`
}

// String renders the snapshot as one key=value line (the EXPLAIN block).
func (s *UsageSnapshot) String() string {
	if s == nil {
		return ""
	}
	line := fmt.Sprintf("rows_scanned=%d rows_produced=%d bytes_materialized=%d parallel_tasks=%d cache_hits=%d",
		s.RowsScanned, s.RowsProduced, s.BytesMaterialized, s.ParallelTasks, s.CacheHits)
	if len(s.BudgetExceeded) > 0 {
		line += " budget_exceeded=" + strings.Join(s.BudgetExceeded, ",")
	}
	return line
}

// Annotate records the snapshot as attributes on a span (the query's root
// span, so `obdaq -trace` shows the usage block inline). Nil-safe on both
// sides.
func (s *UsageSnapshot) Annotate(sp *Span) {
	if s == nil || sp == nil {
		return
	}
	sp.SetInt("rows_scanned", int(s.RowsScanned))
	sp.SetInt("rows_produced", int(s.RowsProduced))
	sp.SetInt("bytes_materialized", int(s.BytesMaterialized))
	if s.ParallelTasks > 0 {
		sp.SetInt("parallel_tasks", int(s.ParallelTasks))
	}
	if s.CacheHits > 0 {
		sp.SetInt("cache_hits", int(s.CacheHits))
	}
	if len(s.BudgetExceeded) > 0 {
		sp.SetStr("budget_exceeded", strings.Join(s.BudgetExceeded, ","))
	}
}
