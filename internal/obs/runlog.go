package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
)

// Run-log schema versions. V1 (implicit: records without a schema field)
// predates per-query resource accounting; V2 adds the mandatory `usage`
// block on successful records. The writer always stamps the current
// version; the validator accepts both and rejects anything newer.
const (
	RunLogSchemaV1      = 1
	RunLogSchemaVersion = 2
)

// RunRecord is one measured query execution — the JSONL schema the mixer
// writes next to its text report (one line per record). Durations are
// microseconds so the log stays numeric and language-neutral.
type RunRecord struct {
	// Schema is the run-log schema version; 0 is read as v1 (the field
	// predates versioning).
	Schema      int     `json:"schema,omitempty"`
	TraceID     string  `json:"trace_id"`
	Query       string  `json:"query"`
	Scale       float64 `json:"scale"`
	Profile     string  `json:"profile"`
	Client      int     `json:"client"`
	Run         int     `json:"run"`
	RewriteUS   int64   `json:"rewrite_us"`
	UnfoldUS    int64   `json:"unfold_us"`
	ExecUS      int64   `json:"exec_us"`
	TranslateUS int64   `json:"translate_us"`
	TotalUS     int64   `json:"total_us"`
	// AbandonedUS is wall time spent on an abandoned aggregate-pushdown
	// attempt before the fallback path answered; TotalUS includes it but
	// the stage timings do not.
	AbandonedUS int64 `json:"abandoned_us,omitempty"`
	Rows        int   `json:"rows"`
	CQs         int   `json:"cqs"`
	UnionArms   int   `json:"union_arms"`
	// CacheHits/CacheMisses count the BGP compilations this execution
	// served from / added to the compiled-query plan cache — a cached
	// execution is visible as hits > 0 with near-zero rewrite_us.
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
	// Usage is the per-query resource accounting block (schema v2:
	// required on successful records, absent on error records).
	Usage *UsageSnapshot `json:"usage,omitempty"`
	Error string         `json:"error,omitempty"`
}

// RunLog writes RunRecords as JSON Lines. Safe for concurrent use; nil-safe
// (a nil log swallows writes), so callers thread it unconditionally.
type RunLog struct {
	mu sync.Mutex
	w  *bufio.Writer
	n  int
}

// NewRunLog wraps w. Call Flush (or Close on the underlying writer) when
// done.
func NewRunLog(w io.Writer) *RunLog {
	return &RunLog{w: bufio.NewWriter(w)}
}

// Write appends one record as a JSON line.
func (l *RunLog) Write(rec RunRecord) error {
	if l == nil {
		return nil
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.w.Write(b); err != nil {
		return err
	}
	if err := l.w.WriteByte('\n'); err != nil {
		return err
	}
	l.n++
	return nil
}

// Count returns the number of records written.
func (l *RunLog) Count() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Flush drains the buffer to the underlying writer.
func (l *RunLog) Flush() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Flush()
}

// ValidateRunLog checks a JSONL run log: at least one record, every line
// valid JSON carrying a non-empty trace_id and query and a non-negative
// total_us. It returns the record count. This is the ci.sh smoke gate.
func ValidateRunLog(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		n++
		var rec RunRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return n, fmt.Errorf("line %d: malformed JSON: %w", n, err)
		}
		if rec.TraceID == "" {
			return n, fmt.Errorf("line %d: missing trace_id", n)
		}
		if rec.Query == "" {
			return n, fmt.Errorf("line %d: missing query", n)
		}
		if rec.TotalUS < 0 {
			return n, fmt.Errorf("line %d: negative total_us", n)
		}
		if rec.AbandonedUS < 0 {
			return n, fmt.Errorf("line %d: negative abandoned_us", n)
		}
		if rec.CacheHits < 0 || rec.CacheMisses < 0 {
			return n, fmt.Errorf("line %d: negative cache counters", n)
		}
		switch rec.Schema {
		case 0, RunLogSchemaV1:
			// v1: no usage block existed; nothing more to check.
		case RunLogSchemaVersion:
			if rec.Error == "" && rec.Usage == nil {
				return n, fmt.Errorf("line %d: schema v2 record missing usage block", n)
			}
			if u := rec.Usage; u != nil {
				if u.RowsScanned < 0 || u.RowsProduced < 0 || u.BytesMaterialized < 0 ||
					u.ParallelTasks < 0 || u.CacheHits < 0 {
					return n, fmt.Errorf("line %d: negative usage counters", n)
				}
			}
		default:
			return n, fmt.Errorf("line %d: unknown run-log schema version %d (supported: 1, %d)",
				n, rec.Schema, RunLogSchemaVersion)
		}
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	if n == 0 {
		return 0, fmt.Errorf("run log is empty")
	}
	return n, nil
}
