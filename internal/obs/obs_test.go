package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// ---------------------------------------------------------------- spans

func TestSpanTree(t *testing.T) {
	tr := NewTrace("query")
	if tr.ID == "" {
		t.Fatal("trace has no id")
	}
	rw := tr.StartSpan("rewrite")
	rw.SetInt("cqs", 3)
	rw.End()
	un := tr.StartSpan("unfold")
	inner := un.StartChild("self-join-merge")
	inner.End()
	un.End()
	tr.Finish()

	if got := tr.Root.StageNames(); len(got) != 3 {
		t.Fatalf("stage names = %v, want 3 entries", got)
	}
	if tr.Root.Find("self-join-merge") == nil {
		t.Fatal("nested span not found")
	}
	if tr.Root.Find("rewrite").Attrs[0] != (Attr{Key: "cqs", Val: "3"}) {
		t.Fatalf("attr = %+v", tr.Root.Find("rewrite").Attrs)
	}
	out := tr.Render()
	for _, want := range []string{"trace " + tr.ID, "query", "rewrite", "cqs=3", "└─", "self-join-merge"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSpanDurations(t *testing.T) {
	tr := NewTrace("q")
	sp := tr.StartSpan("stage")
	time.Sleep(2 * time.Millisecond)
	sp.End()
	first := sp.Duration
	if first < time.Millisecond {
		t.Fatalf("duration %v too small", first)
	}
	sp.End() // double End keeps the first duration
	if sp.Duration != first {
		t.Fatalf("double End changed duration: %v vs %v", sp.Duration, first)
	}
	ds := tr.StageDurations()
	if ds["stage"] != first {
		t.Fatalf("StageDurations = %v", ds)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Trace
	sp := tr.StartSpan("x")
	sp.SetInt("k", 1)
	sp.SetStr("k", "v")
	sp.StartChild("y").End()
	sp.End()
	tr.Finish()
	if tr.Render() != "" || sp.Render() != "" {
		t.Fatal("nil render should be empty")
	}
	if tr.StageDurations() != nil {
		t.Fatal("nil trace has no durations")
	}

	var r *Registry
	r.Counter("c").Inc()
	r.Gauge("g").Set(5)
	r.Histogram("h", nil).Observe(1)
	r.Help("c", "x")
	if r.PrometheusText() != "" {
		t.Fatal("nil registry text should be empty")
	}
	var o *Observer
	if o.StartTrace("q") != nil || o.Profiling() || o.Registry() != nil {
		t.Fatal("nil observer must be fully off")
	}
	var l *RunLog
	if err := l.Write(RunRecord{}); err != nil || l.Count() != 0 || l.Flush() != nil {
		t.Fatal("nil runlog must swallow writes")
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	root := NewTrace("q").Root
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				c := root.StartChild("c")
				c.SetInt("j", j)
				c.End()
			}
		}()
	}
	wg.Wait()
	if len(root.Children) != 16*50 {
		t.Fatalf("children = %d, want %d", len(root.Children), 16*50)
	}
}

// ---------------------------------------------------------------- metrics

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits_total")
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits_total").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	c := r.Counter("hits_total")
	c.Add(-5) // negative deltas ignored
	if c.Value() != 8000 {
		t.Fatalf("negative add changed counter: %d", c.Value())
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	// le semantics: v <= bound lands in that bucket; exact boundary included.
	for _, v := range []float64{0.5, 1} { // both <= 1
		h.Observe(v)
	}
	h.Observe(1.5) // (1,2]
	h.Observe(2)   // boundary of bucket le=2
	h.Observe(3)   // (2,4]
	h.Observe(9)   // overflow
	want := []int64{2, 2, 1, 1}
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-(0.5+1+1.5+2+3+9)) > 1e-9 {
		t.Fatalf("sum = %g", h.Sum())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30})
	for i := 0; i < 10; i++ {
		h.Observe(5) // all in first bucket
	}
	// Median rank 5 of 10, interpolated inside [0,10] → 5.
	if q := h.Quantile(0.5); math.Abs(q-5) > 1e-9 {
		t.Fatalf("q50 = %g, want 5", q)
	}
	h2 := NewHistogram([]float64{10, 20})
	h2.Observe(25) // overflow clamps to highest finite bound
	if q := h2.Quantile(0.99); q != 20 {
		t.Fatalf("overflow quantile = %g, want 20", q)
	}
	var empty *Histogram
	if empty.Quantile(0.5) != 0 || NewHistogram(nil).Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram([]float64{0.5})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-4000) > 1e-6 {
		t.Fatalf("sum = %g", h.Sum())
	}
}

func TestPercentile(t *testing.T) {
	samples := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {100, 10}, {50, 5.5}, {25, 3.25}, {95, 9.55}, {99, 9.91},
	}
	for _, c := range cases {
		if got := Percentile(samples, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("p%g = %g, want %g", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty samples should give 0")
	}
	if Percentile([]float64{7}, 95) != 7 {
		t.Error("single sample percentile")
	}
	// input must not be reordered
	in := []float64{3, 1, 2}
	Percentile(in, 50)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Counter("npd_queries_total").Add(3)
	r.Help("npd_queries_total", "queries answered")
	r.Gauge("npd_clients").Set(2)
	h := r.Histogram(`npd_stage_seconds{stage="rewrite"}`, []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	out := r.PrometheusText()
	for _, want := range []string{
		"# HELP npd_queries_total queries answered",
		"# TYPE npd_queries_total counter",
		"npd_queries_total 3",
		"# TYPE npd_clients gauge",
		"npd_clients 2",
		"# TYPE npd_stage_seconds histogram",
		`npd_stage_seconds_bucket{stage="rewrite",le="0.1"} 1`,
		`npd_stage_seconds_bucket{stage="rewrite",le="1"} 2`,
		`npd_stage_seconds_bucket{stage="rewrite",le="+Inf"} 2`,
		`npd_stage_seconds_sum{stage="rewrite"} 0.55`,
		`npd_stage_seconds_count{stage="rewrite"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	r.Histogram("h", []float64{1, 2}).Observe(1.5)
	b, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("registry JSON invalid: %v\n%s", err, b)
	}
	if m["c"]["type"] != "counter" || m["c"]["value"].(float64) != 1 {
		t.Fatalf("counter json = %v", m["c"])
	}
	if m["h"]["type"] != "histogram" || m["h"]["count"].(float64) != 1 {
		t.Fatalf("histogram json = %v", m["h"])
	}
}

// ---------------------------------------------------------------- run log

func TestRunLog(t *testing.T) {
	var buf bytes.Buffer
	l := NewRunLog(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if err := l.Write(RunRecord{
					TraceID: "t", Query: "q6", Client: i, Run: j, TotalUS: 12, Rows: 3,
				}); err != nil {
					t.Error(err)
				}
			}
		}(i)
	}
	wg.Wait()
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if l.Count() != 40 {
		t.Fatalf("count = %d", l.Count())
	}
	n, err := ValidateRunLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 40 {
		t.Fatalf("validated %d records, want 40", n)
	}
}

func TestValidateRunLogRejects(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"malformed":     "{not json}\n",
		"no trace id":   `{"query":"q1","total_us":1}` + "\n",
		"no query":      `{"trace_id":"t","total_us":1}` + "\n",
		"negative time": `{"trace_id":"t","query":"q1","total_us":-1}` + "\n",
	}
	for name, in := range cases {
		if _, err := ValidateRunLog(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validation should fail", name)
		}
	}
}
