package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. Nil-safe.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. Nil-safe.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram with Prometheus cumulative ("le")
// semantics: counts[i] counts observations v <= bounds[i]; the final slot
// is the +Inf overflow bucket. Nil-safe.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// DefDurationBuckets are the default latency buckets, in seconds, spanning
// the sub-millisecond unfoldings to the multi-second full-mix runs.
var DefDurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// NewHistogram builds a histogram over the given upper bounds (sorted
// ascending; the +Inf bucket is implicit). Empty bounds fall back to
// DefDurationBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefDurationBuckets
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose upper bound admits v (le semantics).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Bounds returns the finite upper bounds.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// BucketCounts returns the per-bucket (non-cumulative) counts, the last
// entry being the +Inf overflow bucket.
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// inside the bucket that holds the target rank, the standard Prometheus
// histogram_quantile estimator. Values in the overflow bucket clamp to the
// highest finite bound. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if cum+n < rank || n == 0 {
			cum += n
			continue
		}
		if i == len(h.bounds) {
			// overflow bucket: clamp to the largest finite bound
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		return lo + (hi-lo)*((rank-cum)/n)
	}
	return h.bounds[len(h.bounds)-1]
}

// Percentile computes the exact p-percentile (0-100) of raw samples with
// linear interpolation between closest ranks (the spreadsheet/NumPy
// "linear" method). The input need not be sorted; it is not modified.
func Percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo] + (s[hi]-s[lo])*frac
}

// metricKind tags registry entries for exposition.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type metricEntry struct {
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
	help string
}

// Registry is a process-wide named collection of metrics. Get-or-create
// accessors make call sites declaration-free; every accessor is nil-safe
// and returns a nil metric (whose methods no-op) on a nil registry, so the
// disabled path costs one pointer comparison.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*metricEntry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*metricEntry)}
}

func (r *Registry) entry(name string, mk func() *metricEntry) *metricEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		e = mk()
		r.entries[name] = e
	}
	return e
}

// Counter returns the named counter, creating it on first use. The name may
// carry Prometheus labels: `queries_total{stage="rewrite"}`.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	e := r.entry(name, func() *metricEntry { return &metricEntry{kind: kindCounter, c: &Counter{}} })
	return e.c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	e := r.entry(name, func() *metricEntry { return &metricEntry{kind: kindGauge, g: &Gauge{}} })
	return e.g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use (nil bounds = DefDurationBuckets). Later calls ignore the
// bounds argument.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	e := r.entry(name, func() *metricEntry { return &metricEntry{kind: kindHistogram, h: NewHistogram(bounds)} })
	return e.h
}

// Help attaches a HELP string to a metric name (base name, without labels).
func (r *Registry) Help(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		e.help = help
	}
}

// splitName separates `base{label="x"}` into base and the label body
// (`label="x"`, no braces). No labels → empty body.
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

func joinLabels(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	default:
		return a + "," + b
	}
}

func promName(base, labels string) string {
	if labels == "" {
		return base
	}
	return base + "{" + labels + "}"
}

// PrometheusText renders every metric in the Prometheus text exposition
// format (sorted by name, so output is diffable).
func (r *Registry) PrometheusText() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.entries))
	for n := range r.entries {
		names = append(names, n)
	}
	snapshot := make(map[string]*metricEntry, len(r.entries))
	for n, e := range r.entries {
		snapshot[n] = e
	}
	r.mu.Unlock()
	sort.Strings(names)

	var sb strings.Builder
	typed := map[string]bool{} // base names that already emitted # TYPE
	for _, name := range names {
		e := snapshot[name]
		base, labels := splitName(name)
		if !typed[base] {
			typed[base] = true
			if e.help != "" {
				fmt.Fprintf(&sb, "# HELP %s %s\n", base, e.help)
			}
			kind := "counter"
			switch e.kind {
			case kindGauge:
				kind = "gauge"
			case kindHistogram:
				kind = "histogram"
			}
			fmt.Fprintf(&sb, "# TYPE %s %s\n", base, kind)
		}
		switch e.kind {
		case kindCounter:
			fmt.Fprintf(&sb, "%s %d\n", promName(base, labels), e.c.Value())
		case kindGauge:
			fmt.Fprintf(&sb, "%s %d\n", promName(base, labels), e.g.Value())
		case kindHistogram:
			h := e.h
			counts := h.BucketCounts()
			var cum int64
			for i, b := range h.bounds {
				cum += counts[i]
				le := joinLabels(labels, fmt.Sprintf("le=%q", fmtBound(b)))
				fmt.Fprintf(&sb, "%s_bucket{%s} %d\n", base, le, cum)
			}
			cum += counts[len(counts)-1]
			fmt.Fprintf(&sb, "%s_bucket{%s} %d\n", base, joinLabels(labels, `le="+Inf"`), cum)
			fmt.Fprintf(&sb, "%s %g\n", promName(base+"_sum", labels), h.Sum())
			fmt.Fprintf(&sb, "%s %d\n", promName(base+"_count", labels), h.Count())
		}
	}
	return sb.String()
}

// fmtBound renders a bucket bound the way Prometheus clients do: the
// shortest representation that round-trips.
func fmtBound(b float64) string {
	return fmt.Sprintf("%g", b)
}

// metricJSON is the JSON shape of one metric.
type metricJSON struct {
	Type    string    `json:"type"`
	Value   *int64    `json:"value,omitempty"`
	Count   *int64    `json:"count,omitempty"`
	Sum     *float64  `json:"sum,omitempty"`
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []int64   `json:"buckets,omitempty"`
	P50     *float64  `json:"p50,omitempty"`
	P95     *float64  `json:"p95,omitempty"`
	P99     *float64  `json:"p99,omitempty"`
}

// JSON renders the registry as an indented name→metric object.
func (r *Registry) JSON() ([]byte, error) {
	if r == nil {
		return []byte("{}"), nil
	}
	r.mu.Lock()
	snapshot := make(map[string]*metricEntry, len(r.entries))
	for n, e := range r.entries {
		snapshot[n] = e
	}
	r.mu.Unlock()
	out := make(map[string]metricJSON, len(snapshot))
	for name, e := range snapshot {
		switch e.kind {
		case kindCounter:
			v := e.c.Value()
			out[name] = metricJSON{Type: "counter", Value: &v}
		case kindGauge:
			v := e.g.Value()
			out[name] = metricJSON{Type: "gauge", Value: &v}
		case kindHistogram:
			h := e.h
			c, s := h.Count(), h.Sum()
			p50, p95, p99 := h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
			out[name] = metricJSON{
				Type: "histogram", Count: &c, Sum: &s,
				Bounds: h.Bounds(), Buckets: h.BucketCounts(),
				P50: &p50, P95: &p95, P99: &p99,
			}
		}
	}
	return json.MarshalIndent(out, "", "  ")
}

// Handler serves the registry in Prometheus text format (mount at /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprint(w, r.PrometheusText())
	})
}
