package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestUsageAccounting(t *testing.T) {
	u := NewUsage(QueryBudget{})
	u.AddRowsScanned(100)
	u.AddRowsScanned(50)
	u.AddRowsProduced(30, 3000)
	u.AddParallelTasks(4)
	u.AddCacheHits(2)
	s := u.Snapshot()
	if s.RowsScanned != 150 || s.RowsProduced != 30 || s.BytesMaterialized != 3000 ||
		s.ParallelTasks != 4 || s.CacheHits != 2 {
		t.Fatalf("snapshot = %+v", s)
	}
	if len(s.BudgetExceeded) != 0 {
		t.Fatalf("unlimited budget tripped: %v", s.BudgetExceeded)
	}
}

func TestUsageBudgetTrip(t *testing.T) {
	u := NewUsage(QueryBudget{MaxRowsScanned: 100, MaxBytesMaterialized: 1000})
	u.AddRowsScanned(99)
	if got := u.Exceeded(); len(got) != 0 {
		t.Fatalf("under budget yet exceeded: %v", got)
	}
	u.AddRowsScanned(2) // 101 > 100
	u.AddRowsProduced(10, 2000)
	got := u.Exceeded()
	if len(got) != 2 || got[0] != "rows_scanned" || got[1] != "bytes_materialized" {
		t.Fatalf("exceeded = %v", got)
	}
	// Tripping again must not duplicate.
	u.AddRowsScanned(1000)
	if got := u.Exceeded(); len(got) != 2 {
		t.Fatalf("re-trip duplicated: %v", got)
	}
	s := u.Snapshot()
	if strings.Join(s.BudgetExceeded, ",") != "rows_scanned,bytes_materialized" {
		t.Fatalf("snapshot exceeded = %v", s.BudgetExceeded)
	}
	if !strings.Contains(s.String(), "budget_exceeded=rows_scanned,bytes_materialized") {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestUsageNilSafety(t *testing.T) {
	var u *Usage
	u.AddRowsScanned(1)
	u.AddRowsProduced(1, 1)
	u.AddParallelTasks(1)
	u.AddCacheHits(1)
	if u.Exceeded() != nil || u.Snapshot() != nil {
		t.Fatal("nil usage must yield nils")
	}
	var s *UsageSnapshot
	s.Annotate(nil) // must not panic
}

func TestUsageAnnotate(t *testing.T) {
	tr := NewTrace("q")
	u := NewUsage(QueryBudget{MaxRowsScanned: 1})
	u.AddRowsScanned(5)
	u.Snapshot().Annotate(tr.Root)
	tr.Finish()
	out := tr.Render()
	if !strings.Contains(out, "rows_scanned=5") || !strings.Contains(out, "budget_exceeded=rows_scanned") {
		t.Fatalf("render missing usage attrs:\n%s", out)
	}
}

func TestSamplerDecide(t *testing.T) {
	var nilSampler *Sampler
	if d := nilSampler.Decide(); d.Sampled || d.Reason != "unsampled" {
		t.Fatalf("nil sampler: %+v", d)
	}
	always := &Sampler{Rate: 1}
	if d := always.Decide(); !d.Sampled || d.Reason != "always" {
		t.Fatalf("rate 1: %+v", d)
	}
	off := &Sampler{Rate: 0}
	if d := off.Decide(); d.Sampled {
		t.Fatalf("rate 0 sampled: %+v", d)
	}
}

func TestSamplerDeterministic(t *testing.T) {
	a := &Sampler{Rate: 0.5, Seed: 7}
	b := &Sampler{Rate: 0.5, Seed: 7}
	for i := 0; i < 100; i++ {
		da, db := a.Decide(), b.Decide()
		if da != db {
			t.Fatalf("draw %d diverged: %+v vs %+v", i, da, db)
		}
	}
}

func TestSamplerRate(t *testing.T) {
	s := &Sampler{Rate: 0.25, Seed: 42}
	const n = 20000
	hits := 0
	for i := 0; i < n; i++ {
		if d := s.Decide(); d.Sampled {
			if d.Reason != "prob" {
				t.Fatalf("reason = %q", d.Reason)
			}
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.25) > 0.02 {
		t.Fatalf("empirical rate %.3f, want ~0.25", got)
	}
}

func TestSamplerSlow(t *testing.T) {
	s := &Sampler{SlowThreshold: 10 * time.Millisecond}
	if s.Slow(9 * time.Millisecond) {
		t.Fatal("below threshold marked slow")
	}
	if !s.Slow(10 * time.Millisecond) {
		t.Fatal("at threshold not slow")
	}
	var nilSampler *Sampler
	if nilSampler.Slow(time.Hour) {
		t.Fatal("nil sampler marked slow")
	}
	zero := &Sampler{}
	if zero.Slow(time.Hour) {
		t.Fatal("zero threshold marked slow")
	}
}

func TestSlowLogBounds(t *testing.T) {
	l := NewSlowLog(3)
	for i, us := range []int64{50, 10, 30} {
		if !l.Offer(&SlowEntry{TraceID: fmt.Sprintf("t%d", i), DurationUS: us}) {
			t.Fatalf("fill offer %d rejected", i)
		}
	}
	// Slower than the resident minimum (10): displaces it.
	if !l.Offer(&SlowEntry{TraceID: "t3", DurationUS: 20}) {
		t.Fatal("displacing offer rejected")
	}
	// Faster than the new minimum (20): rejected.
	if l.Offer(&SlowEntry{TraceID: "t4", DurationUS: 5}) {
		t.Fatal("fast offer admitted to full ring")
	}
	if l.Len() != 3 {
		t.Fatalf("len = %d", l.Len())
	}
	if l.Offered() != 5 {
		t.Fatalf("offered = %d", l.Offered())
	}
	snap := l.Snapshot()
	var got []int64
	for _, e := range snap {
		got = append(got, e.DurationUS)
	}
	if fmt.Sprint(got) != "[50 30 20]" {
		t.Fatalf("snapshot (slowest first) = %v", got)
	}
}

func TestSlowLogRenderJSON(t *testing.T) {
	l := NewSlowLog(2)
	l.Offer(&SlowEntry{TraceID: "abc", Query: "q6", DurationUS: 99, Decision: "slow", Slow: true})
	data, err := l.RenderJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Capacity int          `json:"capacity"`
		Captured int          `json:"captured"`
		Entries  []*SlowEntry `json:"entries"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("slowlog JSON malformed: %v\n%s", err, data)
	}
	if doc.Capacity != 2 || doc.Captured != 1 || len(doc.Entries) != 1 || doc.Entries[0].TraceID != "abc" {
		t.Fatalf("doc = %+v", doc)
	}
	var nilLog *SlowLog
	if _, err := nilLog.RenderJSON(); err != nil {
		t.Fatalf("nil slowlog render: %v", err)
	}
}

func TestRuntimeCollector(t *testing.T) {
	reg := NewRegistry()
	c := NewRuntimeCollector(reg)
	c.Collect()
	text := reg.PrometheusText()
	for _, want := range []string{
		"npdbench_runtime_heap_bytes",
		"npdbench_runtime_goroutines",
		"npdbench_runtime_gc_cycles_total",
		"npdbench_runtime_collections_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Goroutine count and heap size are always positive in a live process.
	if strings.Contains(text, "npdbench_runtime_goroutines 0\n") {
		t.Error("goroutine gauge is zero")
	}
	if strings.Contains(text, "npdbench_runtime_heap_bytes 0\n") {
		t.Error("heap gauge is zero")
	}
}

func TestRuntimeCollectorStartStop(t *testing.T) {
	reg := NewRegistry()
	c := NewRuntimeCollector(reg)
	c.Start(time.Millisecond)
	defer c.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if strings.Contains(reg.PrometheusText(), "npdbench_runtime_collections_total") {
			c.Stop()
			c.Stop() // idempotent
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("ticker never collected")
}

func TestRuntimeCollectorNil(t *testing.T) {
	c := NewRuntimeCollector(nil)
	if c != nil {
		t.Fatal("nil registry must yield nil collector")
	}
	c.Collect()
	c.Start(time.Millisecond)
	c.Stop()
}

func TestHistQuantile(t *testing.T) {
	// histQuantile is exercised indirectly through Collect on real
	// runtime histograms; here, check the degenerate paths directly.
	if got := histQuantile(nil, 0.5); got != 0 {
		t.Fatalf("nil histogram: %v", got)
	}
}

func TestObserverQueryLifecycle(t *testing.T) {
	var nilObs *Observer
	tr, dec := nilObs.StartQuery("q")
	if tr != nil || dec.Reason != "off" {
		t.Fatalf("nil observer: %v %+v", tr, dec)
	}
	if u := nilObs.NewUsage(); u != nil {
		t.Fatal("nil observer usage")
	}
	retained, _ := nilObs.FinishQuery("q", nil, dec, 0, nil, nil)
	if retained {
		t.Fatal("nil observer retained trace")
	}

	// Plain tracing: always retained.
	o := &Observer{Tracing: true}
	tr, dec = o.StartQuery("q")
	if tr == nil || !dec.Sampled || dec.Reason != "always" {
		t.Fatalf("tracing: %v %+v", tr, dec)
	}
	if retained, _ := o.FinishQuery("q", tr, dec, time.Second, nil, nil); !retained {
		t.Fatal("tracing trace dropped")
	}

	// Sampler at rate 0 with a slow log: trace is still collected so the
	// slow threshold can promote it post hoc.
	reg := NewRegistry()
	o = &Observer{
		Metrics: reg,
		Sampler: &Sampler{Rate: 0, SlowThreshold: 10 * time.Millisecond},
		SlowLog: NewSlowLog(4),
	}
	tr, dec = o.StartQuery("q-fast")
	if tr == nil || dec.Sampled {
		t.Fatalf("tail collection: %v %+v", tr, dec)
	}
	retained, dec = o.FinishQuery("q-fast", tr, dec, time.Millisecond, nil, nil)
	if retained || dec.Sampled {
		t.Fatalf("fast unsampled query retained: %v %+v", retained, dec)
	}

	tr, dec = o.StartQuery("q-slow")
	usage := NewUsage(QueryBudget{}).Snapshot()
	retained, dec = o.FinishQuery("q-slow", tr, dec, 50*time.Millisecond, usage, nil)
	if !retained || dec.Reason != "slow" {
		t.Fatalf("slow query not promoted: %v %+v", retained, dec)
	}
	if o.SlowLog.Len() != 2 {
		t.Fatalf("slowlog captured %d, want 2 (capacity not yet full)", o.SlowLog.Len())
	}
	snap := o.SlowLog.Snapshot()
	if snap[0].Query != "q-slow" || !snap[0].Slow || snap[0].Usage != usage {
		t.Fatalf("slowlog head = %+v", snap[0])
	}
	text := reg.PrometheusText()
	if !strings.Contains(text, `npdbench_traces_sampled_total{decision="slow"} 1`) {
		t.Errorf("missing slow decision counter:\n%s", text)
	}
	if !strings.Contains(text, "npdbench_slowlog_captured_total 2") {
		t.Errorf("missing slowlog counter:\n%s", text)
	}
}

func TestObserverBudgetThreading(t *testing.T) {
	o := &Observer{Metrics: NewRegistry(), Budget: QueryBudget{MaxRowsScanned: 10}}
	u := o.NewUsage()
	if u == nil {
		t.Fatal("observer with metrics must allocate usage")
	}
	u.AddRowsScanned(11)
	if got := u.Exceeded(); len(got) != 1 || got[0] != "rows_scanned" {
		t.Fatalf("budget not threaded: %v", got)
	}
}

func TestRunLogSchemaVersions(t *testing.T) {
	v1 := `{"trace_id":"t","query":"q1","total_us":5}`
	v1x := `{"schema":1,"trace_id":"t","query":"q1","total_us":5}`
	v2ok := `{"schema":2,"trace_id":"t","query":"q1","total_us":5,"usage":{"rows_scanned":1,"rows_produced":1,"bytes_materialized":10,"parallel_tasks":0,"cache_hits":0}}`
	v2err := `{"schema":2,"trace_id":"t","query":"q1","total_us":5,"error":"boom"}`
	v2missing := `{"schema":2,"trace_id":"t","query":"q1","total_us":5}`
	v2negative := `{"schema":2,"trace_id":"t","query":"q1","total_us":5,"usage":{"rows_scanned":-1}}`
	v9 := `{"schema":9,"trace_id":"t","query":"q1","total_us":5}`

	accept := strings.Join([]string{v1, v1x, v2ok, v2err}, "\n")
	if n, err := ValidateRunLog(strings.NewReader(accept)); err != nil || n != 4 {
		t.Fatalf("mixed valid log: n=%d err=%v", n, err)
	}
	for name, line := range map[string]string{
		"v2 missing usage": v2missing,
		"v2 negative":      v2negative,
		"unknown version":  v9,
	} {
		_, err := ValidateRunLog(strings.NewReader(line + "\n"))
		if err == nil {
			t.Errorf("%s: validation should fail", name)
		}
	}
	if _, err := ValidateRunLog(strings.NewReader(v9 + "\n")); err == nil ||
		!strings.Contains(err.Error(), "unknown run-log schema version 9") {
		t.Errorf("unknown-version error unclear: %v", err)
	}
}

// TestTelemetryConcurrent drives the sampler, slow log, registry and
// runtime collector from many goroutines while HTTP clients poll the
// /metrics and /debug/slowlog endpoints — the -race run in ci.sh is the
// real assertion.
func TestTelemetryConcurrent(t *testing.T) {
	reg := NewRegistry()
	o := &Observer{
		Metrics: reg,
		Sampler: &Sampler{Rate: 0.5, Seed: 1, SlowThreshold: time.Microsecond},
		SlowLog: NewSlowLog(8),
		Budget:  QueryBudget{MaxRowsScanned: 100},
	}
	rc := NewRuntimeCollector(reg)
	rc.Start(time.Millisecond)
	defer rc.Stop()

	metricsSrv := httptest.NewServer(reg.Handler())
	defer metricsSrv.Close()
	slowSrv := httptest.NewServer(o.SlowLog.Handler())
	defer slowSrv.Close()

	const workers, iters = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tr, dec := o.StartQuery("q")
				u := o.NewUsage()
				u.AddRowsScanned(int64(i))
				u.AddRowsProduced(1, 64)
				tr.Finish()
				o.FinishQuery("q", tr, dec, time.Duration(i)*time.Microsecond, u.Snapshot(), nil)
			}
		}(w)
	}
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				for _, url := range []string{metricsSrv.URL, slowSrv.URL} {
					resp, err := metricsSrv.Client().Get(url)
					if err != nil {
						t.Error(err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()

	if o.SlowLog.Len() == 0 {
		t.Fatal("no slow queries captured")
	}
	if o.SlowLog.Offered() != workers*iters {
		t.Fatalf("offered = %d, want %d", o.SlowLog.Offered(), workers*iters)
	}
	text := reg.PrometheusText()
	if !strings.Contains(text, "npdbench_traces_sampled_total") {
		t.Error("sampling counters missing after concurrent run")
	}
}
