package obs

import "time"

// Observer bundles the observability switches a pipeline component accepts.
// A nil *Observer means "off": every accessor below degrades to the
// zero-cost path, so instrumented code never branches on more than one nil
// check.
type Observer struct {
	// Tracing records a hierarchical span tree per query (obdaq -trace).
	// It forces retention of every trace, overriding the Sampler.
	Tracing bool
	// ExecProfile collects the operator-level execution profile of every
	// SQL statement run (obdaq -explain: rows in/out, join algorithms,
	// build sizes, probe counts).
	ExecProfile bool
	// Metrics, when non-nil, receives process-wide counters and histograms.
	Metrics *Registry
	// Sampler, when non-nil, decides which traces are retained
	// (probabilistic head sampling plus an always-on-slow tail guard).
	// Traces are still collected for every query so the slow threshold
	// can promote them after the fact.
	Sampler *Sampler
	// SlowLog, when non-nil, captures the N slowest queries with their
	// span tree, usage block and operator profiles (/debug/slowlog).
	SlowLog *SlowLog
	// Budget holds the per-query soft resource limits enforced by the
	// Usage tracker. The zero value means unlimited.
	Budget QueryBudget
}

// StartTrace opens a query trace when tracing is on; otherwise returns nil
// (all Trace/Span methods no-op on nil).
func (o *Observer) StartTrace(name string) *Trace {
	if o == nil || !o.Tracing {
		return nil
	}
	return NewTrace(name)
}

// StartQuery opens the per-query trace and makes the head sampling
// decision. A trace is collected whenever plain tracing is on OR a
// sampler/slow log is installed (retention is decided at FinishQuery,
// because "was it slow" is only known then). Nil-safe: a nil observer
// returns (nil, off) and the caller's span calls all no-op.
func (o *Observer) StartQuery(name string) (*Trace, SampleDecision) {
	if o == nil {
		return nil, SampleDecision{Reason: "off"}
	}
	if o.Tracing {
		return NewTrace(name), SampleDecision{Sampled: true, Reason: "always"}
	}
	if o.Sampler == nil && o.SlowLog == nil {
		return nil, SampleDecision{Reason: "off"}
	}
	return NewTrace(name), o.Sampler.Decide()
}

// NewUsage returns a per-query resource tracker carrying the observer's
// budget, or nil when observability is off.
func (o *Observer) NewUsage() *Usage {
	if o == nil {
		return nil
	}
	return NewUsage(o.Budget)
}

// FinishQuery settles a query's telemetry: promotes the sampling decision
// when the duration trips the slow threshold, offers the trace to the
// slow log, bumps the sampling counters, and reports whether the trace
// should be retained on the answer (false means the caller drops it).
func (o *Observer) FinishQuery(name string, tr *Trace, dec SampleDecision, dur time.Duration, usage *UsageSnapshot, profiles any) (bool, SampleDecision) {
	if o == nil || tr == nil {
		return tr != nil, dec
	}
	slow := o.Sampler.Slow(dur)
	if slow && !dec.Sampled {
		dec = SampleDecision{Sampled: true, Reason: "slow"}
	}
	if o.Metrics != nil {
		o.Metrics.Counter(`npdbench_traces_sampled_total{decision="` + dec.Reason + `"}`).Inc()
	}
	if o.SlowLog != nil {
		admitted := o.SlowLog.Offer(&SlowEntry{
			TraceID:    tr.ID,
			Query:      name,
			DurationUS: dur.Microseconds(),
			Decision:   dec.Reason,
			Slow:       slow,
			Usage:      usage,
			Trace:      tr.Root,
			Profiles:   profiles,
		})
		if admitted && o.Metrics != nil {
			o.Metrics.Counter("npdbench_slowlog_captured_total").Inc()
		}
	}
	return o.Tracing || dec.Sampled, dec
}

// Profiling reports whether operator profiles should be collected.
func (o *Observer) Profiling() bool { return o != nil && o.ExecProfile }

// Registry returns the metrics registry (nil when off).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}
