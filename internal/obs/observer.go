package obs

// Observer bundles the observability switches a pipeline component accepts.
// A nil *Observer means "off": every accessor below degrades to the
// zero-cost path, so instrumented code never branches on more than one nil
// check.
type Observer struct {
	// Tracing records a hierarchical span tree per query (obdaq -trace).
	Tracing bool
	// ExecProfile collects the operator-level execution profile of every
	// SQL statement run (obdaq -explain: rows in/out, join algorithms,
	// build sizes, probe counts).
	ExecProfile bool
	// Metrics, when non-nil, receives process-wide counters and histograms.
	Metrics *Registry
}

// StartTrace opens a query trace when tracing is on; otherwise returns nil
// (all Trace/Span methods no-op on nil).
func (o *Observer) StartTrace(name string) *Trace {
	if o == nil || !o.Tracing {
		return nil
	}
	return NewTrace(name)
}

// Profiling reports whether operator profiles should be collected.
func (o *Observer) Profiling() bool { return o != nil && o.ExecProfile }

// Registry returns the metrics registry (nil when off).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}
