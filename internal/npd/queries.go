package npd

// BenchQuery is one query of the benchmark workload.
type BenchQuery struct {
	ID          string
	Description string
	SPARQL      string
	// Aggregate marks the queries added in the journal version (q15–q21),
	// which stress semantic query optimisation around aggregation.
	Aggregate bool
}

// Queries returns the 21-query workload of the paper's Table 7. Queries
// q1–q14 are selection/join queries of increasing rewriting difficulty;
// q15–q21 add aggregation (q15 derives from q1, q16 is the paper's verbatim
// licence-count query, q17/q19 are fragments of the original aggregate
// queries).
func Queries() []BenchQuery {
	return []BenchQuery{
		{
			ID:          "q1",
			Description: "exploration wellbores completed after 2000, with their production licence",
			SPARQL: `
SELECT DISTINCT ?name ?year ?licence WHERE {
  ?w a npdv:ExplorationWellbore ;
     npdv:name ?name ;
     npdv:wellboreCompletionYear ?year ;
     npdv:drilledInLicence ?l .
  ?l npdv:name ?licence .
  FILTER(?year >= 2000)
}`,
		},
		{
			ID:          "q2",
			Description: "deep oil wellbores (content OIL, total depth over 3000 m)",
			SPARQL: `
SELECT ?name ?depth WHERE {
  ?w a npdv:OilDiscoveryWellbore ;
     npdv:name ?name ;
     npdv:wlbTotalDepth ?depth .
  FILTER(?depth > 3000)
}`,
		},
		{
			ID:          "q3",
			Description: "producing fields with their operator companies (hierarchy: ProducingField)",
			SPARQL: `
SELECT DISTINCT ?field ?company WHERE {
  ?f a npdv:ProducingField ;
     npdv:name ?field .
  ?c npdv:operatorForField ?f ;
     npdv:name ?company .
}`,
		},
		{
			ID:          "q4",
			Description: "fields with large recoverable oil reserves",
			SPARQL: `
SELECT ?field ?oil WHERE {
  ?r a npdv:FieldReserve ;
     npdv:reservesForField ?f ;
     npdv:fldRecoverableOil ?oil .
  ?f npdv:name ?field .
  FILTER(?oil > 20)
}`,
		},
		{
			ID:          "q5",
			Description: "cores drilled through Jurassic units (deep stratigraphy hierarchy)",
			SPARQL: `
SELECT DISTINCT ?wellbore ?unit WHERE {
  ?c a npdv:WellboreCore ;
     npdv:coreForWellbore ?w ;
     npdv:coreStratum ?s .
  ?s a npdv:JurassicUnit ;
     npdv:name ?unit .
  ?w npdv:name ?wellbore .
}`,
		},
		{
			ID:          "q6",
			Description: "paper's tree-witness query: recent wellbores with long cores (2 tree witnesses)",
			SPARQL: `
SELECT DISTINCT ?wellbore ?length ?year WHERE {
  ?wc npdv:coreForWellbore ?w ;
      npdv:coresTotalLength ?length .
  ?w a npdv:Wellbore ;
     npdv:name ?wellbore ;
     npdv:wellboreCompletionYear ?year ;
     npdv:drillingOperatorCompany [ a npdv:Company ] ;
     npdv:belongsToWell [ a npdv:Well ] .
  FILTER(?year >= 2008 && ?length > 50)
}`,
		},
		{
			ID:          "q7",
			Description: "fixed facilities (11-subclass hierarchy) serving producing fields",
			SPARQL: `
SELECT DISTINCT ?facility ?field WHERE {
  ?fa a npdv:FixedFacility ;
      npdv:name ?facility ;
      npdv:facilityForField ?f .
  ?f a npdv:ProducingField ;
     npdv:name ?field .
}`,
		},
		{
			ID:          "q8",
			Description: "gas pipelines with their endpoint facilities",
			SPARQL: `
SELECT ?pipeline ?from ?to WHERE {
  ?p a npdv:GasPipeline ;
     npdv:pipName ?pipeline ;
     npdv:pipelineFromFacility ?f1 ;
     npdv:pipelineToFacility ?f2 .
  ?f1 npdv:name ?from .
  ?f2 npdv:name ?to .
}`,
		},
		{
			ID:          "q9",
			Description: "licensees of recent licences, optionally also operators",
			SPARQL: `
SELECT DISTINCT ?company ?licence WHERE {
  ?c npdv:licenseeForLicence ?l ;
     npdv:name ?company .
  ?l npdv:name ?licence ;
     npdv:dateLicenceGranted ?granted .
  FILTER(?granted > "1995-12-31"^^xsd:date)
  OPTIONAL { ?c npdv:operatorForLicence ?l }
}`,
		},
		{
			ID:          "q10",
			Description: "discoveries included in fields, with optional reserve figures",
			SPARQL: `
SELECT DISTINCT ?discovery ?field ?oil WHERE {
  ?d a npdv:IncludedInFieldDiscovery ;
     npdv:name ?discovery ;
     npdv:includedInField ?f .
  ?f npdv:name ?field .
  OPTIONAL {
    ?r npdv:reservesForDiscovery ?d ;
       npdv:dscRecoverableOil ?oil .
  }
}`,
		},
		{
			ID:          "q11",
			Description: "seismic surveys with acquisition statistics",
			SPARQL: `
SELECT ?survey ?company ?km WHERE {
  ?s a npdv:OrdinarySeismicSurvey ;
     npdv:name ?survey ;
     npdv:surveyingCompany ?c .
  ?c npdv:name ?company .
  ?a npdv:acquisitionForSurvey ?s ;
     npdv:seacTotalKm ?km .
}`,
		},
		{
			ID:          "q12",
			Description: "formation tops in Cretaceous formations below 2000 m",
			SPARQL: `
SELECT DISTINCT ?wellbore ?depth WHERE {
  ?t a npdv:FormationTop ;
     npdv:formationTopForWellbore ?w ;
     npdv:stratumForFormationTop ?s ;
     npdv:wlbTopDepth ?depth .
  ?s a npdv:CretaceousFormation .
  ?w npdv:name ?wellbore .
  FILTER(?depth > 2000)
}`,
		},
		{
			ID:          "q13",
			Description: "licensed blocks (tree witness: every block sits in some quadrant)",
			SPARQL: `
SELECT DISTINCT ?licence ?block WHERE {
  ?l a npdv:ProductionLicence ;
     npdv:name ?licence ;
     npdv:areaForLicence ?b .
  ?b npdv:blkName ?block ;
     npdv:blockInQuadrant [ a npdv:Quadrant ] .
}`,
		},
		{
			ID:          "q14",
			Description: "wellbores with optional cores and optional documents (2 OPTIONALs)",
			SPARQL: `
SELECT ?wellbore ?core ?doc WHERE {
  ?w a npdv:ExplorationWellbore ;
     npdv:name ?wellbore .
  OPTIONAL { ?c npdv:coreForWellbore ?w ; npdv:wlbCoreNumber ?core }
  OPTIONAL { ?d npdv:documentForWellbore ?w ; npdv:wlbDocumentName ?doc }
}`,
		},
		{
			ID:          "q15",
			Description: "aggregate form of q1: exploration wellbores per completion year",
			Aggregate:   true,
			SPARQL: `
SELECT ?year (COUNT(?w) AS ?n) WHERE {
  ?w a npdv:ExplorationWellbore ;
     npdv:wellboreCompletionYear ?year .
  FILTER(?year >= 2000)
} GROUP BY ?year ORDER BY ?year`,
		},
		{
			ID:          "q16",
			Description: "paper's verbatim aggregate: number of licences granted after 2000",
			Aggregate:   true,
			SPARQL: `
SELECT (COUNT(?licence) AS ?licnumber) WHERE {
  [] a npdv:ProductionLicence ;
     npdv:name ?licence ;
     npdv:dateLicenceGranted ?dateGranted .
  FILTER(?dateGranted > "2000-12-31"^^xsd:date)
}`,
		},
		{
			ID:          "q17",
			Description: "average core length per wellbore (fragment of an original aggregate query)",
			Aggregate:   true,
			SPARQL: `
SELECT ?wellbore (AVG(?length) AS ?avgLen) WHERE {
  ?c npdv:coreForWellbore ?w ;
     npdv:coresTotalLength ?length .
  ?w npdv:name ?wellbore .
} GROUP BY ?wellbore HAVING(AVG(?length) > 100)`,
		},
		{
			ID:          "q18",
			Description: "top oil-producing fields of 2010 (SUM + ORDER BY + LIMIT)",
			Aggregate:   true,
			SPARQL: `
SELECT ?field (SUM(?oil) AS ?total) WHERE {
  ?p a npdv:MonthlyProductionVolume ;
     npdv:productionForField ?f ;
     npdv:prfYear ?y ;
     npdv:prfPrdOilNetMillSm3 ?oil .
  ?f npdv:name ?field .
  FILTER(?y = 2010)
} GROUP BY ?field ORDER BY DESC(?total) LIMIT 10`,
		},
		{
			ID:          "q19",
			Description: "wellbores drilled per operator company (fragment of an original aggregate query)",
			Aggregate:   true,
			SPARQL: `
SELECT ?company (COUNT(?w) AS ?n) WHERE {
  ?w a npdv:Wellbore ;
     npdv:drillingOperatorCompany ?c .
  ?c npdv:name ?company .
} GROUP BY ?company ORDER BY DESC(?n)`,
		},
		{
			ID:          "q20",
			Description: "water-depth envelope per facility kind",
			Aggregate:   true,
			SPARQL: `
SELECT ?kind (MIN(?d) AS ?minDepth) (MAX(?d) AS ?maxDepth) WHERE {
  ?f a npdv:FixedFacility ;
     npdv:fclKind ?kind ;
     npdv:fclWaterDepth ?d .
} GROUP BY ?kind`,
		},
		{
			ID:          "q21",
			Description: "total investments per field this millennium (SUM + HAVING + ORDER)",
			Aggregate:   true,
			SPARQL: `
SELECT ?field (SUM(?nok) AS ?total) WHERE {
  ?i a npdv:Investment ;
     npdv:investmentForField ?f ;
     npdv:prfYear ?y ;
     npdv:prfInvestmentsMillNOK ?nok .
  ?f npdv:name ?field .
  FILTER(?y >= 2000)
} GROUP BY ?field HAVING(SUM(?nok) > 5000) ORDER BY DESC(?total)`,
		},
	}
}

// QueryByID returns the query with the given id, or nil.
func QueryByID(id string) *BenchQuery {
	for _, q := range Queries() {
		if q.ID == id {
			out := q
			return &out
		}
	}
	return nil
}
