// Package npd ships the assets of the NPD benchmark: the relational schema
// modelled on the published NPD FactPages database (70 tables, ~94 foreign
// keys, wide overlapping tables), a deterministic synthetic seed-data
// generator standing in for the real FactPages dump, the OWL 2 QL ontology
// with deep class/property hierarchies and existential axioms, the R2RML
// mapping set, and the 21-query benchmark workload of the paper's Table 7.
//
// Substitution note (DESIGN.md): the real FactPages CSV dump is proprietary
// licensed data with daily synchronization; the seed generator reproduces
// its statistical shape (duplicate ratios, constant vocabularies, value
// intervals, FK structure, geometry columns) so that VIG and the query
// workload exercise identical code paths.
package npd

import (
	"fmt"
	"strings"

	"npdbench/internal/sqldb"
)

// tableSpec is the compact schema DSL: "name:type[!]" columns, "pk=a,b",
// "fk=a,b->table.c,d".
type tableSpec struct {
	name  string
	items []string
}

// parseSpec converts a tableSpec into a TableDef.
func parseSpec(ts tableSpec) (*sqldb.TableDef, error) {
	def := &sqldb.TableDef{Name: ts.name}
	colIndex := func(name string) (int, error) {
		for i, c := range def.Columns {
			if strings.EqualFold(c.Name, name) {
				return i, nil
			}
		}
		return 0, fmt.Errorf("npd: table %s: unknown column %q in constraint", ts.name, name)
	}
	var constraints []string
	for _, item := range ts.items {
		if strings.HasPrefix(item, "pk=") || strings.HasPrefix(item, "fk=") {
			constraints = append(constraints, item)
			continue
		}
		name, typ, found := strings.Cut(item, ":")
		if !found {
			return nil, fmt.Errorf("npd: table %s: bad column spec %q", ts.name, item)
		}
		notNull := strings.HasSuffix(typ, "!")
		typ = strings.TrimSuffix(typ, "!")
		var ct sqldb.ColType
		switch typ {
		case "int":
			ct = sqldb.TInt
		case "float":
			ct = sqldb.TFloat
		case "text":
			ct = sqldb.TText
		case "bool":
			ct = sqldb.TBool
		case "date":
			ct = sqldb.TDate
		case "geo":
			ct = sqldb.TGeometry
		default:
			return nil, fmt.Errorf("npd: table %s: unknown type %q", ts.name, typ)
		}
		def.Columns = append(def.Columns, sqldb.Column{Name: name, Type: ct, NotNull: notNull})
	}
	for _, c := range constraints {
		switch {
		case strings.HasPrefix(c, "pk="):
			for _, n := range strings.Split(c[3:], ",") {
				i, err := colIndex(n)
				if err != nil {
					return nil, err
				}
				def.PrimaryKey = append(def.PrimaryKey, i)
			}
		case strings.HasPrefix(c, "fk="):
			lhs, rhs, found := strings.Cut(c[3:], "->")
			if !found {
				return nil, fmt.Errorf("npd: table %s: bad fk spec %q", ts.name, c)
			}
			refTable, refCols, found := strings.Cut(rhs, ".")
			if !found {
				return nil, fmt.Errorf("npd: table %s: bad fk target %q", ts.name, rhs)
			}
			refNames := strings.Split(refCols, ",")
			fk := sqldb.ForeignKey{RefTable: refTable, RefColumns: make([]int, len(refNames))}
			for _, n := range strings.Split(lhs, ",") {
				i, err := colIndex(n)
				if err != nil {
					return nil, err
				}
				fk.Columns = append(fk.Columns, i)
			}
			def.ForeignKeys = append(def.ForeignKeys, fk)
			// RefColumns are resolved by name in NewDatabase, once every
			// table definition exists.
			pendingFKs = append(pendingFKs, pendingFK{table: ts.name, idx: len(def.ForeignKeys) - 1, refCols: refNames})
		}
	}
	return def, nil
}

type pendingFK struct {
	table   string
	idx     int
	refCols []string
}

var pendingFKs []pendingFK

// NewDatabase builds the empty NPD schema.
func NewDatabase() (*sqldb.Database, error) {
	pendingFKs = nil
	db := sqldb.NewDatabase("npd")
	defs := make(map[string]*sqldb.TableDef)
	for _, ts := range schemaSpecs {
		def, err := parseSpec(ts)
		if err != nil {
			return nil, err
		}
		defs[strings.ToLower(def.Name)] = def
	}
	// Resolve FK referenced column names now that all defs exist.
	for _, fn := range pendingFKs {
		def := defs[strings.ToLower(fn.table)]
		fk := &def.ForeignKeys[fn.idx]
		ref := defs[strings.ToLower(fk.RefTable)]
		if ref == nil {
			return nil, fmt.Errorf("npd: table %s: fk references unknown table %s", fn.table, fk.RefTable)
		}
		for i, n := range fn.refCols {
			ci := ref.ColIndex(n)
			if ci < 0 {
				return nil, fmt.Errorf("npd: table %s: fk references unknown column %s.%s", fn.table, fk.RefTable, n)
			}
			fk.RefColumns[i] = ci
		}
	}
	// Create in spec order (parents declared before children below).
	for _, ts := range schemaSpecs {
		if _, err := db.CreateTable(defs[strings.ToLower(ts.name)]); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// schemaSpecs lists the 70 tables of the benchmark schema. Naming follows
// the published FactPages conventions (npdid surrogate keys, prefixed
// attribute names, wide overlapping wellbore tables).
var schemaSpecs = []tableSpec{
	// --- reference / vocabulary tables ---
	{"main_area", []string{"mainArea:text!", "pk=mainArea"}},
	{"hc_type", []string{"hcType:text!", "pk=hcType"}},
	{"activity_status", []string{"status:text!", "pk=status"}},
	{"wellbore_purpose", []string{"purpose:text!", "pk=purpose"}},
	{"wellbore_content", []string{"content:text!", "pk=content"}},
	{"facility_kind", []string{"kind:text!", "pk=kind"}},
	{"facility_phase", []string{"phase:text!", "pk=phase"}},

	// --- core entities ---
	{"company", []string{
		"cmpNpdidCompany:int!", "cmpLongName:text!", "cmpShortName:text",
		"cmpOrgNumberBrReg:text", "cmpNationCode:text", "cmpSurveyPrefix:text",
		"cmpLicenceOperCurrent:bool", "cmpLicenceOperFormer:bool",
		"cmpLicenceLicenseeCurrent:bool", "cmpLicenceLicenseeFormer:bool",
		"cmpDateUpdated:date",
		"pk=cmpNpdidCompany"}},
	{"quadrant", []string{
		"qdrName:text!", "qdrMainArea:text", "pk=qdrName"}},
	{"block", []string{
		"blkName:text!", "qdrName:text!", "blkMainArea:text", "blkGeometry:geo",
		"pk=blkName", "fk=qdrName->quadrant.qdrName"}},
	{"licence", []string{
		"prlNpdidLicence:int!", "prlName:text!", "prlMainArea:text",
		"prlStatus:text", "prlStratigraphical:text",
		"prlDateGranted:date", "prlDateValidTo:date",
		"prlOriginalArea:float", "prlCurrentArea:float",
		"prlPhaseCurrent:text", "prlAreaGeometry:geo", "prlDateUpdated:date",
		"pk=prlNpdidLicence"}},
	{"field", []string{
		"fldNpdidField:int!", "fldName:text!", "cmpNpdidCompany:int",
		"fldCurrentActivityStatus:text", "fldHcType:text", "fldMainArea:text",
		"fldOwnerKind:text", "fldOwnerName:text", "fldMainSupplyBase:text",
		"prlNpdidLicence:int", "fldAreaGeometry:geo", "fldDateUpdated:date",
		"pk=fldNpdidField",
		"fk=cmpNpdidCompany->company.cmpNpdidCompany",
		"fk=prlNpdidLicence->licence.prlNpdidLicence"}},
	{"discovery", []string{
		"dscNpdidDiscovery:int!", "dscName:text!", "fldNpdidField:int",
		"dscHcType:text", "dscCurrentActivityStatus:text",
		"dscDiscoveryYear:int", "dscMainArea:text", "dscOwnerKind:text",
		"dscOwnerName:text", "dscDateFromInclInField:date",
		"dscAreaGeometry:geo", "dscDateUpdated:date",
		"pk=dscNpdidDiscovery",
		"fk=fldNpdidField->field.fldNpdidField"}},
	{"facility_fixed", []string{
		"fclNpdidFacility:int!", "fclName:text!", "fclKind:text",
		"fclPhase:text", "fclBelongsToName:text", "fldNpdidField:int",
		"fclStartupDate:date", "fclGeodeticDatum:text", "fclFunctions:text",
		"fclWaterDepth:float", "fclSurface:bool", "fclPointGeometry:geo",
		"fclDateUpdated:date",
		"pk=fclNpdidFacility",
		"fk=fldNpdidField->field.fldNpdidField"}},
	{"facility_moveable", []string{
		"fclNpdidFacility:int!", "fclName:text!", "fclKind:text",
		"fclPhase:text", "cmpNpdidCompany:int", "fclAocStatus:text",
		"fclNationCode:text", "fclDateUpdated:date",
		"pk=fclNpdidFacility",
		"fk=cmpNpdidCompany->company.cmpNpdidCompany"}},

	// --- wellbores: three wide overlapping tables, as in FactPages ---
	{"wellbore_exploration_all", []string{
		"wlbNpdidWellbore:int!", "wlbWellboreName:text!", "wlbWell:text",
		"wlbDrillingOperator:text", "cmpNpdidCompany:int",
		"wlbProductionLicence:text", "prlNpdidLicence:int",
		"wlbPurpose:text", "wlbStatus:text", "wlbContent:text",
		"wlbEntryDate:date", "wlbCompletionDate:date",
		"wlbEntryYear:int", "wlbCompletionYear:int",
		"wlbTotalDepth:float", "wlbWaterDepth:float",
		"wlbKellyBushElevation:float", "wlbMainArea:text",
		"wlbDrillingFacility:text", "fclNpdidFacility:int",
		"wlbGeodeticDatum:text", "wlbNsDecDeg:float", "wlbEwDecDeg:float",
		"dscNpdidDiscovery:int", "wlbAgeAtTd:text", "wlbFormationAtTd:text",
		"wlbBottomHoleTemperature:float", "wlbSeismicLocation:text",
		"wlbMaxInclation:float", "wlbPlotSymbol:int",
		"wlbGeometry:geo", "wlbDateUpdated:date",
		"pk=wlbNpdidWellbore",
		"fk=cmpNpdidCompany->company.cmpNpdidCompany",
		"fk=prlNpdidLicence->licence.prlNpdidLicence",
		"fk=fclNpdidFacility->facility_fixed.fclNpdidFacility",
		"fk=dscNpdidDiscovery->discovery.dscNpdidDiscovery"}},
	{"wellbore_development_all", []string{
		"wlbNpdidWellbore:int!", "wlbWellboreName:text!", "wlbWell:text",
		"wlbDrillingOperator:text", "cmpNpdidCompany:int",
		"wlbProductionLicence:text", "prlNpdidLicence:int",
		"wlbPurpose:text", "wlbStatus:text", "wlbContent:text",
		"wlbEntryDate:date", "wlbCompletionDate:date",
		"wlbEntryYear:int", "wlbCompletionYear:int",
		"wlbTotalDepth:float", "wlbWaterDepth:float",
		"wlbKellyBushElevation:float", "wlbMainArea:text",
		"wlbDrillingFacility:text", "fclNpdidFacility:int",
		"fldNpdidField:int", "wlbGeodeticDatum:text",
		"wlbNsDecDeg:float", "wlbEwDecDeg:float",
		"wlbProductionFacility:text", "wlbMultilateral:bool",
		"wlbContentPlanned:text", "wlbGeometry:geo", "wlbDateUpdated:date",
		"pk=wlbNpdidWellbore",
		"fk=cmpNpdidCompany->company.cmpNpdidCompany",
		"fk=prlNpdidLicence->licence.prlNpdidLicence",
		"fk=fclNpdidFacility->facility_fixed.fclNpdidFacility",
		"fk=fldNpdidField->field.fldNpdidField"}},
	{"wellbore_shallow_all", []string{
		"wlbNpdidWellbore:int!", "wlbWellboreName:text!",
		"wlbDrillingOperator:text", "cmpNpdidCompany:int",
		"wlbPurpose:text", "wlbEntryDate:date", "wlbCompletionDate:date",
		"wlbCompletionYear:int", "wlbTotalDepth:float", "wlbWaterDepth:float",
		"wlbMainArea:text", "wlbGeodeticDatum:text",
		"wlbNsDecDeg:float", "wlbEwDecDeg:float", "wlbDateUpdated:date",
		"pk=wlbNpdidWellbore",
		"fk=cmpNpdidCompany->company.cmpNpdidCompany"}},

	// --- wellbore satellites ---
	{"wellbore_core", []string{
		"wlbNpdidWellbore:int!", "wlbCoreNumber:int!",
		"wlbCoreIntervalTop:float", "wlbCoreIntervalBottom:float",
		"wlbTotalCoreLength:float", "wlbCoreSampleAvailable:bool",
		"wlbCoreIntervalUom:text",
		"pk=wlbNpdidWellbore,wlbCoreNumber",
		"fk=wlbNpdidWellbore->wellbore_exploration_all.wlbNpdidWellbore"}},
	{"wellbore_core_photo", []string{
		"wlbNpdidWellbore:int!", "wlbCoreNumber:int!", "wlbCorePhotoTitle:text!",
		"wlbCorePhotoUrl:text",
		"pk=wlbNpdidWellbore,wlbCoreNumber,wlbCorePhotoTitle",
		"fk=wlbNpdidWellbore,wlbCoreNumber->wellbore_core.wlbNpdidWellbore,wlbCoreNumber"}},
	{"wellbore_dst", []string{
		"wlbNpdidWellbore:int!", "wlbDstTestNumber:int!",
		"wlbDstFromDepth:float", "wlbDstToDepth:float",
		"wlbDstChokeSize:float", "wlbDstFinalFlowOil:float",
		"wlbDstFinalFlowGas:float", "wlbDstBottomHolePressure:float",
		"pk=wlbNpdidWellbore,wlbDstTestNumber",
		"fk=wlbNpdidWellbore->wellbore_exploration_all.wlbNpdidWellbore"}},
	{"wellbore_document", []string{
		"wlbNpdidWellbore:int!", "wlbDocumentName:text!",
		"wlbDocumentType:text", "wlbDocumentUrl:text",
		"wlbDocumentDateUpdated:date",
		"pk=wlbNpdidWellbore,wlbDocumentName",
		"fk=wlbNpdidWellbore->wellbore_exploration_all.wlbNpdidWellbore"}},
	{"wellbore_mud", []string{
		"wlbNpdidWellbore:int!", "wlbMD:float!",
		"wlbMudWeightAtMD:float", "wlbMudViscosityAtMD:float",
		"wlbYieldPointAtMD:float", "wlbMudType:text",
		"wlbMudDateMeasured:date",
		"pk=wlbNpdidWellbore,wlbMD",
		"fk=wlbNpdidWellbore->wellbore_exploration_all.wlbNpdidWellbore"}},
	{"wellbore_casing_and_lot", []string{
		"wlbNpdidWellbore:int!", "wlbCasingType:text!", "wlbCasingDepth:float!",
		"wlbCasingDiameter:float", "wlbHoleDiameter:float",
		"wlbLotMudDencity:float",
		"pk=wlbNpdidWellbore,wlbCasingType,wlbCasingDepth",
		"fk=wlbNpdidWellbore->wellbore_exploration_all.wlbNpdidWellbore"}},
	{"wellbore_oil_sample", []string{
		"wlbNpdidWellbore:int!", "wlbOilSampleTestNumber:int!",
		"wlbOilSampleTopDepth:float", "wlbOilSampleBottomDepth:float",
		"wlbOilSampleFluidType:text", "wlbOilSampleTestDate:date",
		"pk=wlbNpdidWellbore,wlbOilSampleTestNumber",
		"fk=wlbNpdidWellbore->wellbore_exploration_all.wlbNpdidWellbore"}},
	{"wellbore_coordinates", []string{
		"wlbNpdidWellbore:int!", "wlbCoordinateSystem:text!",
		"wlbNsDeg:int", "wlbNsMin:int", "wlbNsSec:float",
		"wlbEwDeg:int", "wlbEwMin:int", "wlbEwSec:float",
		"pk=wlbNpdidWellbore,wlbCoordinateSystem",
		"fk=wlbNpdidWellbore->wellbore_exploration_all.wlbNpdidWellbore"}},
	{"wellbore_history", []string{
		"wlbNpdidWellbore:int!", "wlbHistorySeq:int!", "wlbHistoryText:text",
		"wlbHistoryDate:date",
		"pk=wlbNpdidWellbore,wlbHistorySeq",
		"fk=wlbNpdidWellbore->wellbore_exploration_all.wlbNpdidWellbore"}},

	// --- stratigraphy (self-referencing FK: a chase cycle for VIG) ---
	{"strat_litho_unit", []string{
		"lsuNpdidLithoStrat:int!", "lsuName:text!", "lsuLevel:text",
		"lsuEra:text", "lsuParent:int",
		"pk=lsuNpdidLithoStrat",
		"fk=lsuParent->strat_litho_unit.lsuNpdidLithoStrat"}},
	{"wellbore_formation_top", []string{
		"wlbNpdidWellbore:int!", "lsuNpdidLithoStrat:int!",
		"wlbTopDepth:float!", "wlbBottomDepth:float", "lsuName:text",
		"pk=wlbNpdidWellbore,lsuNpdidLithoStrat,wlbTopDepth",
		"fk=wlbNpdidWellbore->wellbore_exploration_all.wlbNpdidWellbore",
		"fk=lsuNpdidLithoStrat->strat_litho_unit.lsuNpdidLithoStrat"}},
	{"strat_litho_wellbore_core", []string{
		"wlbNpdidWellbore:int!", "wlbCoreNumber:int!", "lsuNpdidLithoStrat:int!",
		"lsuCoreLenght:float",
		"pk=wlbNpdidWellbore,wlbCoreNumber,lsuNpdidLithoStrat",
		"fk=wlbNpdidWellbore,wlbCoreNumber->wellbore_core.wlbNpdidWellbore,wlbCoreNumber",
		"fk=lsuNpdidLithoStrat->strat_litho_unit.lsuNpdidLithoStrat"}},

	// --- field satellites ---
	{"field_production_monthly", []string{
		"fldNpdidField:int!", "prfYear:int!", "prfMonth:int!",
		"prfPrdOilNetMillSm3:float", "prfPrdGasNetBillSm3:float",
		"prfPrdNGLNetMillSm3:float", "prfPrdCondensateNetMillSm3:float",
		"prfPrdOeNetMillSm3:float", "prfPrdProducedWaterInFieldMillSm3:float",
		"pk=fldNpdidField,prfYear,prfMonth",
		"fk=fldNpdidField->field.fldNpdidField"}},
	{"field_production_yearly", []string{
		"fldNpdidField:int!", "prfYear:int!",
		"prfPrdOilNetMillSm3:float", "prfPrdGasNetBillSm3:float",
		"prfPrdNGLNetMillSm3:float", "prfPrdCondensateNetMillSm3:float",
		"prfPrdOeNetMillSm3:float",
		"pk=fldNpdidField,prfYear",
		"fk=fldNpdidField->field.fldNpdidField"}},
	{"field_investment_yearly", []string{
		"fldNpdidField:int!", "prfYear:int!", "prfInvestmentsMillNOK:float",
		"pk=fldNpdidField,prfYear",
		"fk=fldNpdidField->field.fldNpdidField"}},
	{"field_reserves", []string{
		"fldNpdidField:int!", "fldRecoverableOil:float",
		"fldRecoverableGas:float", "fldRecoverableNGL:float",
		"fldRecoverableCondensate:float", "fldRemainingOil:float",
		"fldRemainingGas:float", "fldDateOffResEstDisplay:date",
		"pk=fldNpdidField",
		"fk=fldNpdidField->field.fldNpdidField"}},
	{"field_activity_status_hst", []string{
		"fldNpdidField:int!", "fldStatusFromDate:date!", "fldStatusToDate:date",
		"fldStatus:text",
		"pk=fldNpdidField,fldStatusFromDate",
		"fk=fldNpdidField->field.fldNpdidField"}},
	{"field_owner_hst", []string{
		"fldNpdidField:int!", "fldOwnerFrom:date!", "fldOwnerTo:date",
		"fldOwnerName:text", "fldOwnerKind:text",
		"pk=fldNpdidField,fldOwnerFrom",
		"fk=fldNpdidField->field.fldNpdidField"}},
	{"field_operator_hst", []string{
		"fldNpdidField:int!", "cmpNpdidCompany:int!", "fldOperatorFrom:date!",
		"fldOperatorTo:date",
		"pk=fldNpdidField,cmpNpdidCompany,fldOperatorFrom",
		"fk=fldNpdidField->field.fldNpdidField",
		"fk=cmpNpdidCompany->company.cmpNpdidCompany"}},
	{"field_licensee_hst", []string{
		"fldNpdidField:int!", "cmpNpdidCompany:int!", "fldLicenseeFrom:date!",
		"fldLicenseeTo:date", "fldLicenseeInterest:float",
		"pk=fldNpdidField,cmpNpdidCompany,fldLicenseeFrom",
		"fk=fldNpdidField->field.fldNpdidField",
		"fk=cmpNpdidCompany->company.cmpNpdidCompany"}},
	{"field_description", []string{
		"fldNpdidField:int!", "fldDescriptionHeading:text!",
		"fldDescriptionText:text",
		"pk=fldNpdidField,fldDescriptionHeading",
		"fk=fldNpdidField->field.fldNpdidField"}},

	// --- discovery satellites ---
	{"discovery_description", []string{
		"dscNpdidDiscovery:int!", "dscDescriptionHeading:text!",
		"dscDescriptionText:text",
		"pk=dscNpdidDiscovery,dscDescriptionHeading",
		"fk=dscNpdidDiscovery->discovery.dscNpdidDiscovery"}},
	{"discovery_reserves", []string{
		"dscNpdidDiscovery:int!", "dscRecoverableOil:float",
		"dscRecoverableGas:float", "dscRecoverableNGL:float",
		"dscRecoverableCondensate:float", "dscDateOffResEstDisplay:date",
		"pk=dscNpdidDiscovery",
		"fk=dscNpdidDiscovery->discovery.dscNpdidDiscovery"}},
	{"discovery_area", []string{
		"dscNpdidDiscovery:int!", "blkName:text!",
		"pk=dscNpdidDiscovery,blkName",
		"fk=dscNpdidDiscovery->discovery.dscNpdidDiscovery",
		"fk=blkName->block.blkName"}},

	// --- licence satellites ---
	{"licence_licensee_hst", []string{
		"prlNpdidLicence:int!", "cmpNpdidCompany:int!",
		"prlLicenseeDateValidFrom:date!", "prlLicenseeDateValidTo:date",
		"prlLicenseeInterest:float",
		"pk=prlNpdidLicence,cmpNpdidCompany,prlLicenseeDateValidFrom",
		"fk=prlNpdidLicence->licence.prlNpdidLicence",
		"fk=cmpNpdidCompany->company.cmpNpdidCompany"}},
	{"licence_oper_hst", []string{
		"prlNpdidLicence:int!", "cmpNpdidCompany:int!",
		"prlOperDateValidFrom:date!", "prlOperDateValidTo:date",
		"pk=prlNpdidLicence,cmpNpdidCompany,prlOperDateValidFrom",
		"fk=prlNpdidLicence->licence.prlNpdidLicence",
		"fk=cmpNpdidCompany->company.cmpNpdidCompany"}},
	{"licence_phase_hst", []string{
		"prlNpdidLicence:int!", "prlPhaseFromDate:date!", "prlPhaseToDate:date",
		"prlPhase:text",
		"pk=prlNpdidLicence,prlPhaseFromDate",
		"fk=prlNpdidLicence->licence.prlNpdidLicence"}},
	{"licence_area", []string{
		"prlNpdidLicence:int!", "blkName:text!", "prlAreaPart:float",
		"pk=prlNpdidLicence,blkName",
		"fk=prlNpdidLicence->licence.prlNpdidLicence",
		"fk=blkName->block.blkName"}},
	{"licence_task", []string{
		"prlNpdidLicence:int!", "prlTaskName:text!", "prlTaskStatus:text",
		"prlTaskDate:date",
		"pk=prlNpdidLicence,prlTaskName",
		"fk=prlNpdidLicence->licence.prlNpdidLicence"}},
	{"licence_transfer_hst", []string{
		"prlNpdidLicence:int!", "cmpNpdidCompany:int!", "prlTransferDate:date!",
		"prlTransferDirection:text", "prlTransferInterest:float",
		"pk=prlNpdidLicence,cmpNpdidCompany,prlTransferDate",
		"fk=prlNpdidLicence->licence.prlNpdidLicence",
		"fk=cmpNpdidCompany->company.cmpNpdidCompany"}},
	{"licence_petreg_licence", []string{
		"ptlNpdidLicence:int!", "ptlName:text!", "ptlDateGranted:date",
		"ptlMainArea:text",
		"pk=ptlNpdidLicence"}},
	{"licence_petreg_licence_licencee", []string{
		"ptlNpdidLicence:int!", "cmpNpdidCompany:int!", "ptlLicenseeInterest:float",
		"pk=ptlNpdidLicence,cmpNpdidCompany",
		"fk=ptlNpdidLicence->licence_petreg_licence.ptlNpdidLicence",
		"fk=cmpNpdidCompany->company.cmpNpdidCompany"}},
	{"licence_petreg_licence_oper", []string{
		"ptlNpdidLicence:int!", "cmpNpdidCompany:int!",
		"pk=ptlNpdidLicence,cmpNpdidCompany",
		"fk=ptlNpdidLicence->licence_petreg_licence.ptlNpdidLicence",
		"fk=cmpNpdidCompany->company.cmpNpdidCompany"}},
	{"licence_petreg_message", []string{
		"ptlNpdidLicence:int!", "ptlMessageSeq:int!", "ptlMessageKind:text",
		"ptlMessageDate:date",
		"pk=ptlNpdidLicence,ptlMessageSeq",
		"fk=ptlNpdidLicence->licence_petreg_licence.ptlNpdidLicence"}},

	// --- company satellites ---
	{"company_reserves", []string{
		"cmpNpdidCompany:int!", "fldNpdidField:int!", "cmpShare:float",
		"cmpRecoverableOil:float", "cmpRecoverableGas:float",
		"cmpRecoverableNGL:float", "cmpRecoverableCondensate:float",
		"pk=cmpNpdidCompany,fldNpdidField",
		"fk=cmpNpdidCompany->company.cmpNpdidCompany",
		"fk=fldNpdidField->field.fldNpdidField"}},

	// --- surveys & seismic ---
	{"survey", []string{
		"seaNpdidSurvey:int!", "seaName:text!", "seaStatus:text",
		"seaGeographicalArea:text", "seaSurveyTypeMain:text",
		"seaSurveyTypePart:text", "cmpNpdidCompany:int",
		"seaPlanFromDate:date", "seaDateStarting:date", "seaDateFinalized:date",
		"seaAreaGeometry:geo",
		"pk=seaNpdidSurvey",
		"fk=cmpNpdidCompany->company.cmpNpdidCompany"}},
	{"seis_acquisition", []string{
		"seaNpdidSurvey:int!", "seacAcquisitionNumber:int!",
		"seacBoatKnots:float", "seacTotalKm:float", "seacCdpKm:float",
		"pk=seaNpdidSurvey,seacAcquisitionNumber",
		"fk=seaNpdidSurvey->survey.seaNpdidSurvey"}},
	{"seis_acquisition_progress", []string{
		"seaNpdidSurvey:int!", "seapProgressDate:date!", "seapKmAcquired:float",
		"pk=seaNpdidSurvey,seapProgressDate",
		"fk=seaNpdidSurvey->survey.seaNpdidSurvey"}},
	{"survey_coordinates", []string{
		"seaNpdidSurvey:int!", "seaPointSeq:int!",
		"seaNsDecDeg:float", "seaEwDecDeg:float",
		"pk=seaNpdidSurvey,seaPointSeq",
		"fk=seaNpdidSurvey->survey.seaNpdidSurvey"}},

	// --- prospects / areas ---
	{"prospect", []string{
		"prsNpdidProspect:int!", "prsName:text!", "prsMainArea:text",
		"prsHcType:text", "prlNpdidLicence:int", "prsGeometry:geo",
		"pk=prsNpdidProspect",
		"fk=prlNpdidLicence->licence.prlNpdidLicence"}},
	{"apa_area_gross", []string{
		"apaNpdidApaGross:int!", "apaName:text!", "apaDateAnnounced:date",
		"apaGeometry:geo",
		"pk=apaNpdidApaGross"}},
	{"apa_area_net", []string{
		"apaNpdidApaNet:int!", "apaNpdidApaGross:int!", "apaBlockName:text",
		"apaGeometry:geo",
		"pk=apaNpdidApaNet",
		"fk=apaNpdidApaGross->apa_area_gross.apaNpdidApaGross"}},
	{"sea_area", []string{
		"seaAreaName:text!", "seaAreaKind:text", "seaAreaGeometry:geo",
		"pk=seaAreaName"}},

	// --- business arrangement areas ---
	{"baa", []string{
		"baaNpdidBsnsArrArea:int!", "baaName:text!", "baaKind:text",
		"baaStatus:text", "baaDateApproved:date", "baaAreaGeometry:geo",
		"pk=baaNpdidBsnsArrArea"}},
	{"baa_licensee_hst", []string{
		"baaNpdidBsnsArrArea:int!", "cmpNpdidCompany:int!",
		"baaLicenseeDateValidFrom:date!", "baaLicenseeDateValidTo:date",
		"baaLicenseeInterest:float",
		"pk=baaNpdidBsnsArrArea,cmpNpdidCompany,baaLicenseeDateValidFrom",
		"fk=baaNpdidBsnsArrArea->baa.baaNpdidBsnsArrArea",
		"fk=cmpNpdidCompany->company.cmpNpdidCompany"}},
	{"baa_operator_hst", []string{
		"baaNpdidBsnsArrArea:int!", "cmpNpdidCompany:int!",
		"baaOperDateValidFrom:date!", "baaOperDateValidTo:date",
		"pk=baaNpdidBsnsArrArea,cmpNpdidCompany,baaOperDateValidFrom",
		"fk=baaNpdidBsnsArrArea->baa.baaNpdidBsnsArrArea",
		"fk=cmpNpdidCompany->company.cmpNpdidCompany"}},
	{"baa_transfer_hst", []string{
		"baaNpdidBsnsArrArea:int!", "cmpNpdidCompany:int!", "baaTransferDate:date!",
		"baaTransferDirection:text",
		"pk=baaNpdidBsnsArrArea,cmpNpdidCompany,baaTransferDate",
		"fk=baaNpdidBsnsArrArea->baa.baaNpdidBsnsArrArea",
		"fk=cmpNpdidCompany->company.cmpNpdidCompany"}},
	{"baa_area", []string{
		"baaNpdidBsnsArrArea:int!", "blkName:text!",
		"pk=baaNpdidBsnsArrArea,blkName",
		"fk=baaNpdidBsnsArrArea->baa.baaNpdidBsnsArrArea",
		"fk=blkName->block.blkName"}},

	// --- transport & utilisation facilities ---
	{"tuf", []string{
		"tufNpdidTuf:int!", "tufName:text!", "tufKind:text", "tufStatus:text",
		"tufDateApproved:date", "tufGeometry:geo",
		"pk=tufNpdidTuf"}},
	{"tuf_owner_hst", []string{
		"tufNpdidTuf:int!", "cmpNpdidCompany:int!", "tufOwnerDateValidFrom:date!",
		"tufOwnerDateValidTo:date", "tufOwnerShare:float",
		"pk=tufNpdidTuf,cmpNpdidCompany,tufOwnerDateValidFrom",
		"fk=tufNpdidTuf->tuf.tufNpdidTuf",
		"fk=cmpNpdidCompany->company.cmpNpdidCompany"}},
	{"tuf_operator_hst", []string{
		"tufNpdidTuf:int!", "cmpNpdidCompany:int!", "tufOperDateValidFrom:date!",
		"tufOperDateValidTo:date",
		"pk=tufNpdidTuf,cmpNpdidCompany,tufOperDateValidFrom",
		"fk=tufNpdidTuf->tuf.tufNpdidTuf",
		"fk=cmpNpdidCompany->company.cmpNpdidCompany"}},
	{"tuf_petreg_licence", []string{
		"tufNpdidTuf:int!", "ptlNpdidLicence:int!",
		"pk=tufNpdidTuf,ptlNpdidLicence",
		"fk=tufNpdidTuf->tuf.tufNpdidTuf",
		"fk=ptlNpdidLicence->licence_petreg_licence.ptlNpdidLicence"}},

	// --- pipelines ---
	{"pipeline", []string{
		"pipNpdidPipeline:int!", "pipName:text!", "pipMedium:text",
		"pipMainGrouping:text", "fclNpdidFacilityFrom:int",
		"fclNpdidFacilityTo:int", "pipDimension:float", "pipWaterDepth:float",
		"pipGeometry:geo",
		"pk=pipNpdidPipeline",
		"fk=fclNpdidFacilityFrom->facility_fixed.fclNpdidFacility",
		"fk=fclNpdidFacilityTo->facility_fixed.fclNpdidFacility"}},

	// --- yearly overview / statistics tables (overlapping columns) ---
	{"production_licence_area_current", []string{
		"prlNpdidLicence:int!", "prlAreaCurrent:float", "prlAreaGeometry:geo",
		"pk=prlNpdidLicence",
		"fk=prlNpdidLicence->licence.prlNpdidLicence"}},
	{"wellbore_npdid_overview", []string{
		"wlbNpdidWellbore:int!", "wlbWellboreName:text", "wlbKind:text",
		"pk=wlbNpdidWellbore"}},
	{"company_name_hst", []string{
		"cmpNpdidCompany:int!", "cmpNameFromDate:date!", "cmpLongName:text",
		"pk=cmpNpdidCompany,cmpNameFromDate",
		"fk=cmpNpdidCompany->company.cmpNpdidCompany"}},
	{"field_area", []string{
		"fldNpdidField:int!", "blkName:text!",
		"pk=fldNpdidField,blkName",
		"fk=fldNpdidField->field.fldNpdidField",
		"fk=blkName->block.blkName"}},
	{"discovery_operator_hst", []string{
		"dscNpdidDiscovery:int!", "cmpNpdidCompany:int!", "dscOperatorFrom:date!",
		"dscOperatorTo:date",
		"pk=dscNpdidDiscovery,cmpNpdidCompany,dscOperatorFrom",
		"fk=dscNpdidDiscovery->discovery.dscNpdidDiscovery",
		"fk=cmpNpdidCompany->company.cmpNpdidCompany"}},
}

// TableCount returns the number of tables in the schema.
func TableCount() int { return len(schemaSpecs) }
