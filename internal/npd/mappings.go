package npd

import (
	"fmt"
	"strings"

	"npdbench/internal/r2rml"
)

// Subject IRI templates per entity, following the published data namespace.
func wellboreIRI() string { return Data + "wellbore/{wlbNpdidWellbore}" }

var subjectTemplates = map[string]string{
	"company":   Data + "company/{cmpNpdidCompany}",
	"licence":   Data + "licence/{prlNpdidLicence}",
	"field":     Data + "field/{fldNpdidField}",
	"discovery": Data + "discovery/{dscNpdidDiscovery}",
	"facility":  Data + "facility/{fclNpdidFacility}",
	"wellbore":  Data + "wellbore/{wlbNpdidWellbore}",
	"stratum":   Data + "stratum/{lsuNpdidLithoStrat}",
	"survey":    Data + "survey/{seaNpdidSurvey}",
	"block":     Data + "block/{blkName}",
	"quadrant":  Data + "quadrant/{qdrName}",
	"baa":       Data + "baa/{baaNpdidBsnsArrArea}",
	"tuf":       Data + "tuf/{tufNpdidTuf}",
	"pipeline":  Data + "pipeline/{pipNpdidPipeline}",
	"prospect":  Data + "prospect/{prsNpdidProspect}",
	"petreg":    Data + "petreg/{ptlNpdidLicence}",
	"apagross":  Data + "apa-gross/{apaNpdidApaGross}",
	"apanet":    Data + "apa-net/{apaNpdidApaNet}",
	"seaarea":   Data + "seaarea/{seaAreaName}",
}

// NewMapping builds the benchmark's R2RML mapping set. Deliberately (per
// requirement M2 of the paper) the mappings are NOT optimized for OBDA:
// most data properties get their own mapping assertion over the same wide
// table (so self-join elimination has work to do), several classes have
// redundant assertions from overlapping tables, and a few sources carry
// unnecessary joins.
func NewMapping() *r2rml.Mapping {
	b := &mappingBuilder{mp: r2rml.NewMapping(), seq: 0}
	b.mp.Prefixes["npdv"] = NPDV
	b.mp.Prefixes["npdd"] = Data

	// ---- wellbores: three overlapping tables ----
	for _, wt := range []struct {
		table string
		class string
	}{
		{"wellbore_exploration_all", "ExplorationWellbore"},
		{"wellbore_development_all", "DevelopmentWellbore"},
		{"wellbore_shallow_all", "ShallowWellbore"},
	} {
		b.class(wt.table, wellboreIRI(), wt.class)
		// redundant assertion of the superclass (M2)
		b.class(wt.table, wellboreIRI(), "Wellbore")
		b.dataPropsSplit(wt.table, wellboreIRI())
		b.name(wt.table, wellboreIRI(), "wlbWellboreName")
	}
	// conditional wellbore subclasses
	b.condClass("wellbore_exploration_all", wellboreIRI(), "WildcatWellbore", "wlbPurpose = 'WILDCAT'")
	b.condClass("wellbore_exploration_all", wellboreIRI(), "AppraisalWellbore", "wlbPurpose = 'APPRAISAL'")
	b.condClass("wellbore_development_all", wellboreIRI(), "ProductionWellbore", "wlbPurpose = 'PRODUCTION'")
	b.condClass("wellbore_development_all", wellboreIRI(), "InjectionWellbore", "wlbPurpose = 'INJECTION'")
	b.condClass("wellbore_development_all", wellboreIRI(), "ObservationWellbore", "wlbPurpose = 'OBSERVATION'")
	b.condClass("wellbore_exploration_all", wellboreIRI(), "DryWellbore", "wlbContent = 'DRY'")
	b.condClass("wellbore_exploration_all", wellboreIRI(), "OilDiscoveryWellbore", "wlbContent = 'OIL'")
	b.condClass("wellbore_exploration_all", wellboreIRI(), "GasDiscoveryWellbore", "wlbContent = 'GAS'")
	b.condClass("wellbore_exploration_all", wellboreIRI(), "OilShowsWellbore", "wlbContent = 'OIL SHOWS'")
	b.condClass("wellbore_exploration_all", wellboreIRI(), "GasShowsWellbore", "wlbContent = 'GAS SHOWS'")
	b.condClass("wellbore_development_all", wellboreIRI(), "SuspendedWellbore", "wlbStatus = 'SUSPENDED'")
	b.condClass("wellbore_exploration_all", wellboreIRI(), "PluggedAndAbandonedWellbore", "wlbStatus = 'P&A'")
	b.condClass("wellbore_development_all", wellboreIRI(), "MultilateralWellbore", "wlbMultilateral = TRUE")
	// redundant: wellbore kind also from the overview table (M2)
	b.condClassCol("wellbore_npdid_overview", wellboreIRI(), "ExplorationWellbore", "wlbKind = 'EXPLORATION'")
	b.condClassCol("wellbore_npdid_overview", wellboreIRI(), "DevelopmentWellbore", "wlbKind = 'DEVELOPMENT'")
	// the raw wellbore kind itself (static-analyzer finding: npdv:wlbKind
	// was declared by the ontology but had no mapping assertion)
	b.alias("wellbore_npdid_overview", wellboreIRI(), "wlbKind", "wlbKind")

	// wellbore object properties
	b.objFK("wellbore_exploration_all", "drillingOperatorCompany", wellboreIRI(), subjectTemplates["company"])
	b.objFK("wellbore_development_all", "drillingOperatorCompany", wellboreIRI(), subjectTemplates["company"])
	b.objFK("wellbore_shallow_all", "drillingOperatorCompany", wellboreIRI(), subjectTemplates["company"])
	b.objFK("wellbore_exploration_all", "drilledInLicence", wellboreIRI(), subjectTemplates["licence"])
	b.objFK("wellbore_development_all", "drilledInLicence", wellboreIRI(), subjectTemplates["licence"])
	b.objFK("wellbore_exploration_all", "wellboreForDiscovery", wellboreIRI(), subjectTemplates["discovery"])
	b.objFK("wellbore_development_all", "wellboreForField", wellboreIRI(), subjectTemplates["field"])
	b.objFK("wellbore_exploration_all", "drillingFacility", wellboreIRI(), subjectTemplates["facility"])
	b.objFK("wellbore_development_all", "drillingFacility", wellboreIRI(), subjectTemplates["facility"])

	// ---- wellbore satellites ----
	coreIRI := Data + "wellbore/{wlbNpdidWellbore}/core/{wlbCoreNumber}"
	b.class("wellbore_core", coreIRI, "WellboreCore")
	b.dataProps("wellbore_core", coreIRI)
	b.obj("wellbore_core", "coreForWellbore", coreIRI, wellboreIRI())
	b.obj("strat_litho_wellbore_core", "coreStratum", coreIRI, subjectTemplates["stratum"])

	photoIRI := Data + "wellbore/{wlbNpdidWellbore}/core/{wlbCoreNumber}/photo/{wlbCorePhotoTitle}"
	b.class("wellbore_core_photo", photoIRI, "WellboreCorePhoto")
	b.obj("wellbore_core_photo", "photoForCore", photoIRI, coreIRI)
	b.dataProps("wellbore_core_photo", photoIRI)

	dstIRI := Data + "wellbore/{wlbNpdidWellbore}/dst/{wlbDstTestNumber}"
	b.class("wellbore_dst", dstIRI, "WellboreDst")
	b.dataProps("wellbore_dst", dstIRI)
	b.obj("wellbore_dst", "dstForWellbore", dstIRI, wellboreIRI())

	docIRI := Data + "wellbore/{wlbNpdidWellbore}/document/{wlbDocumentName}"
	b.class("wellbore_document", docIRI, "WellboreDocument")
	b.condClass("wellbore_document", docIRI, "CompletionReport", "wlbDocumentType = 'COMPLETION REPORT'")
	b.condClass("wellbore_document", docIRI, "CompletionLog", "wlbDocumentType = 'COMPLETION LOG'")
	b.dataProps("wellbore_document", docIRI)
	b.obj("wellbore_document", "documentForWellbore", docIRI, wellboreIRI())

	mudIRI := Data + "wellbore/{wlbNpdidWellbore}/mud/{wlbMD}"
	b.class("wellbore_mud", mudIRI, "WellboreMudSample")
	b.dataProps("wellbore_mud", mudIRI)
	b.obj("wellbore_mud", "mudTestForWellbore", mudIRI, wellboreIRI())

	casingIRI := Data + "wellbore/{wlbNpdidWellbore}/casing/{wlbCasingType}/{wlbCasingDepth}"
	b.class("wellbore_casing_and_lot", casingIRI, "WellboreCasing")
	b.dataProps("wellbore_casing_and_lot", casingIRI)
	b.obj("wellbore_casing_and_lot", "casingForWellbore", casingIRI, wellboreIRI())

	oilSampleIRI := Data + "wellbore/{wlbNpdidWellbore}/oil-sample/{wlbOilSampleTestNumber}"
	b.class("wellbore_oil_sample", oilSampleIRI, "WellboreOilSample")
	b.dataProps("wellbore_oil_sample", oilSampleIRI)
	b.obj("wellbore_oil_sample", "oilSampleForWellbore", oilSampleIRI, wellboreIRI())

	ftIRI := Data + "wellbore/{wlbNpdidWellbore}/formation-top/{lsuNpdidLithoStrat}/{wlbTopDepth}"
	b.class("wellbore_formation_top", ftIRI, "FormationTop")
	b.dataProps("wellbore_formation_top", ftIRI)
	b.obj("wellbore_formation_top", "formationTopForWellbore", ftIRI, wellboreIRI())
	b.obj("wellbore_formation_top", "stratumForFormationTop", ftIRI, subjectTemplates["stratum"])

	histIRI := Data + "wellbore/{wlbNpdidWellbore}/history/{wlbHistorySeq}"
	b.class("wellbore_history", histIRI, "WellboreHistoryEntry")
	b.obj("wellbore_history", "historyForWellbore", histIRI, wellboreIRI())
	b.dataProps("wellbore_history", histIRI)

	// ---- stratigraphy ----
	b.class("strat_litho_unit", subjectTemplates["stratum"], "LithostratigraphicUnit")
	b.condClass("strat_litho_unit", subjectTemplates["stratum"], "LithoGroup", "lsuLevel = 'GROUP'")
	b.condClass("strat_litho_unit", subjectTemplates["stratum"], "LithoFormation", "lsuLevel = 'FORMATION'")
	b.condClass("strat_litho_unit", subjectTemplates["stratum"], "LithoMember", "lsuLevel = 'MEMBER'")
	for _, era := range eras {
		e := titleCase(era)
		b.condClass("strat_litho_unit", subjectTemplates["stratum"], e+"Unit", fmt.Sprintf("lsuEra = '%s'", era))
		for _, lvl := range []string{"GROUP", "FORMATION", "MEMBER"} {
			b.condClass("strat_litho_unit", subjectTemplates["stratum"],
				e+titleCase(lvl), fmt.Sprintf("lsuEra = '%s' AND lsuLevel = '%s'", era, lvl))
		}
	}
	b.dataProps("strat_litho_unit", subjectTemplates["stratum"])
	b.name("strat_litho_unit", subjectTemplates["stratum"], "lsuName")
	b.objCols("strat_litho_unit", "parentStratum",
		subjectTemplates["stratum"], Data+"stratum/{lsuParent}",
		"SELECT lsuNpdidLithoStrat, lsuParent FROM strat_litho_unit WHERE lsuParent IS NOT NULL")

	// ---- companies ----
	b.class("company", subjectTemplates["company"], "Company")
	b.dataProps("company", subjectTemplates["company"])
	b.name("company", subjectTemplates["company"], "cmpLongName")
	b.condClass("company", subjectTemplates["company"], "CurrentOperator", "cmpLicenceOperCurrent = TRUE")
	b.condClass("company", subjectTemplates["company"], "FormerOperator", "cmpLicenceOperFormer = TRUE")
	b.condClass("company", subjectTemplates["company"], "CurrentLicensee", "cmpLicenceLicenseeCurrent = TRUE")
	b.condClass("company", subjectTemplates["company"], "FormerLicensee", "cmpLicenceLicenseeFormer = TRUE")

	// ---- licences ----
	b.class("licence", subjectTemplates["licence"], "ProductionLicence")
	b.condClass("licence", subjectTemplates["licence"], "StratigraphicalLicence", "prlStratigraphical = 'YES'")
	b.dataProps("licence", subjectTemplates["licence"])
	b.name("licence", subjectTemplates["licence"], "prlName")
	b.alias("licence", subjectTemplates["licence"], "dateLicenceGranted", "prlDateGranted")
	b.objFK("licence_licensee_hst", "licenseeForLicence", subjectTemplates["company"], subjectTemplates["licence"])
	b.objFK("licence_oper_hst", "operatorForLicence", subjectTemplates["company"], subjectTemplates["licence"])
	b.objCols("licence_oper_hst", "currentOperatorForLicence",
		subjectTemplates["company"], subjectTemplates["licence"],
		"SELECT cmpNpdidCompany, prlNpdidLicence FROM licence_oper_hst WHERE prlOperDateValidTo IS NULL")
	b.objFK("licence_area", "areaForLicence", subjectTemplates["licence"], subjectTemplates["block"])
	taskIRI := Data + "licence/{prlNpdidLicence}/task/{prlTaskName}"
	b.class("licence_task", taskIRI, "LicenceTask")
	b.dataProps("licence_task", taskIRI)
	b.obj("licence_task", "taskForLicence", taskIRI, subjectTemplates["licence"])
	transferIRI := Data + "licence/{prlNpdidLicence}/transfer/{cmpNpdidCompany}/{prlTransferDate}"
	b.class("licence_transfer_hst", transferIRI, "LicenceTransfer")
	b.dataProps("licence_transfer_hst", transferIRI)
	b.obj("licence_transfer_hst", "licenceeTransfer", transferIRI, subjectTemplates["licence"])
	b.class("licence_petreg_licence", subjectTemplates["petreg"], "PetregLicence")
	b.dataProps("licence_petreg_licence", subjectTemplates["petreg"])
	b.objFK("licence_petreg_licence_licencee", "licenseeForPetregLicence", subjectTemplates["company"], subjectTemplates["petreg"])
	b.objFK("licence_petreg_licence_oper", "operatorForPetregLicence", subjectTemplates["company"], subjectTemplates["petreg"])

	// ---- blocks & quadrants ----
	b.class("block", subjectTemplates["block"], "Block")
	b.dataProps("block", subjectTemplates["block"])
	b.objFK("block", "blockInQuadrant", subjectTemplates["block"], subjectTemplates["quadrant"])
	b.class("quadrant", subjectTemplates["quadrant"], "Quadrant")

	// ---- fields ----
	b.class("field", subjectTemplates["field"], "Field")
	b.condClass("field", subjectTemplates["field"], "ProducingField", "fldCurrentActivityStatus = 'Producing'")
	b.condClass("field", subjectTemplates["field"], "ShutDownField", "fldCurrentActivityStatus = 'Shut down'")
	b.condClass("field", subjectTemplates["field"], "OilField", "fldHcType = 'OIL'")
	b.condClass("field", subjectTemplates["field"], "GasField", "fldHcType = 'GAS'")
	b.condClass("field", subjectTemplates["field"], "OilGasField", "fldHcType = 'OIL/GAS'")
	b.condClass("field", subjectTemplates["field"], "CondensateField", "fldHcType = 'CONDENSATE'")
	b.dataProps("field", subjectTemplates["field"])
	b.name("field", subjectTemplates["field"], "fldName")
	b.objFK("field", "operatorForField", subjectTemplates["company"], subjectTemplates["field"])
	b.objFK("field", "licenceForField", subjectTemplates["field"], subjectTemplates["licence"])
	b.objFK("field_operator_hst", "operatorForField", subjectTemplates["company"], subjectTemplates["field"])
	b.objCols("field_operator_hst", "currentFieldOperator",
		subjectTemplates["company"], subjectTemplates["field"],
		"SELECT cmpNpdidCompany, fldNpdidField FROM field_operator_hst WHERE fldOperatorTo IS NULL")
	b.objFK("field_licensee_hst", "licenseeForField", subjectTemplates["company"], subjectTemplates["field"])
	b.objFK("field_area", "areaForField", subjectTemplates["field"], subjectTemplates["block"])

	prodIRI := Data + "field/{fldNpdidField}/production/{prfYear}/{prfMonth}"
	b.class("field_production_monthly", prodIRI, "MonthlyProductionVolume")
	b.dataProps("field_production_monthly", prodIRI)
	b.obj("field_production_monthly", "productionForField", prodIRI, subjectTemplates["field"])
	prodYIRI := Data + "field/{fldNpdidField}/production/{prfYear}"
	b.class("field_production_yearly", prodYIRI, "YearlyProductionVolume")
	b.dataProps("field_production_yearly", prodYIRI)
	b.obj("field_production_yearly", "productionForField", prodYIRI, subjectTemplates["field"])
	invIRI := Data + "field/{fldNpdidField}/investment/{prfYear}"
	b.class("field_investment_yearly", invIRI, "Investment")
	b.dataProps("field_investment_yearly", invIRI)
	b.obj("field_investment_yearly", "investmentForField", invIRI, subjectTemplates["field"])
	rsvIRI := Data + "field/{fldNpdidField}/reserves"
	b.class("field_reserves", rsvIRI, "FieldReserve")
	b.dataProps("field_reserves", rsvIRI)
	b.obj("field_reserves", "reservesForField", rsvIRI, subjectTemplates["field"])

	// ---- discoveries ----
	b.class("discovery", subjectTemplates["discovery"], "Discovery")
	b.condClass("discovery", subjectTemplates["discovery"], "OilDiscovery", "dscHcType = 'OIL'")
	b.condClass("discovery", subjectTemplates["discovery"], "GasDiscovery", "dscHcType = 'GAS'")
	b.condClass("discovery", subjectTemplates["discovery"], "IncludedInFieldDiscovery", "fldNpdidField IS NOT NULL")
	b.dataProps("discovery", subjectTemplates["discovery"])
	b.name("discovery", subjectTemplates["discovery"], "dscName")
	b.objFK("discovery", "includedInField", subjectTemplates["discovery"], subjectTemplates["field"])
	dscRsvIRI := Data + "discovery/{dscNpdidDiscovery}/reserves"
	b.class("discovery_reserves", dscRsvIRI, "DiscoveryReserve")
	b.dataProps("discovery_reserves", dscRsvIRI)
	b.obj("discovery_reserves", "reservesForDiscovery", dscRsvIRI, subjectTemplates["discovery"])
	b.objFK("discovery_area", "areaForDiscovery", subjectTemplates["discovery"], subjectTemplates["block"])

	cmpRsvIRI := Data + "company/{cmpNpdidCompany}/reserves/{fldNpdidField}"
	b.class("company_reserves", cmpRsvIRI, "CompanyReserve")
	b.dataProps("company_reserves", cmpRsvIRI)
	b.obj("company_reserves", "reservesForCompany", cmpRsvIRI, subjectTemplates["company"])
	b.obj("company_reserves", "reservesInField", cmpRsvIRI, subjectTemplates["field"])

	// ---- facilities ----
	b.class("facility_fixed", subjectTemplates["facility"], "FixedFacility")
	b.class("facility_fixed", subjectTemplates["facility"], "Facility") // redundant (M2)
	for _, k := range fclKinds {
		b.condClass("facility_fixed", subjectTemplates["facility"], facilityClass(k), fmt.Sprintf("fclKind = '%s'", k))
	}
	b.dataProps("facility_fixed", subjectTemplates["facility"])
	b.name("facility_fixed", subjectTemplates["facility"], "fclName")
	b.objFK("facility_fixed", "facilityForField", subjectTemplates["facility"], subjectTemplates["field"])
	b.class("facility_moveable", subjectTemplates["facility"], "MoveableFacility")
	b.dataProps("facility_moveable", subjectTemplates["facility"])
	b.objFK("facility_moveable", "operatorForFacility", subjectTemplates["company"], subjectTemplates["facility"])

	// ---- pipelines / TUF / BAA ----
	b.class("pipeline", subjectTemplates["pipeline"], "Pipeline")
	b.condClass("pipeline", subjectTemplates["pipeline"], "OilPipeline", "pipMedium = 'OIL'")
	b.condClass("pipeline", subjectTemplates["pipeline"], "GasPipeline", "pipMedium = 'GAS'")
	b.condClass("pipeline", subjectTemplates["pipeline"], "CondensatePipeline", "pipMedium = 'CONDENSATE'")
	b.dataProps("pipeline", subjectTemplates["pipeline"])
	b.objCols("pipeline", "pipelineFromFacility", subjectTemplates["pipeline"],
		Data+"facility/{fclNpdidFacilityFrom}",
		"SELECT pipNpdidPipeline, fclNpdidFacilityFrom FROM pipeline WHERE fclNpdidFacilityFrom IS NOT NULL")
	b.objCols("pipeline", "pipelineToFacility", subjectTemplates["pipeline"],
		Data+"facility/{fclNpdidFacilityTo}",
		"SELECT pipNpdidPipeline, fclNpdidFacilityTo FROM pipeline WHERE fclNpdidFacilityTo IS NOT NULL")
	b.class("tuf", subjectTemplates["tuf"], "TUF")
	b.condClass("tuf", subjectTemplates["tuf"], "TransportationTUF", "tufKind = 'TRANSPORTATION'")
	b.condClass("tuf", subjectTemplates["tuf"], "UtilizationTUF", "tufKind = 'UTILIZATION'")
	b.dataProps("tuf", subjectTemplates["tuf"])
	b.objFK("tuf_owner_hst", "ownerForTUF", subjectTemplates["company"], subjectTemplates["tuf"])
	b.objFK("tuf_operator_hst", "operatorForTUF", subjectTemplates["company"], subjectTemplates["tuf"])
	b.objFK("tuf_petreg_licence", "licenceForTUF", subjectTemplates["tuf"], subjectTemplates["petreg"])
	b.class("baa", subjectTemplates["baa"], "BusinessArrangementArea")
	b.condClass("baa", subjectTemplates["baa"], "UnitizedField", "baaKind = 'UNITIZED FIELD'")
	b.dataProps("baa", subjectTemplates["baa"])
	b.objFK("baa_licensee_hst", "licenseeForBAA", subjectTemplates["company"], subjectTemplates["baa"])
	b.objFK("baa_operator_hst", "operatorForBAA", subjectTemplates["company"], subjectTemplates["baa"])
	b.objFK("baa_area", "areaForBAA", subjectTemplates["baa"], subjectTemplates["block"])

	// ---- surveys / prospects / APA ----
	b.class("survey", subjectTemplates["survey"], "Survey")
	b.condClass("survey", subjectTemplates["survey"], "OrdinarySeismicSurvey", "seaSurveyTypeMain = 'Ordinary seismic survey'")
	b.condClass("survey", subjectTemplates["survey"], "SiteSurvey", "seaSurveyTypeMain = 'Site survey'")
	b.condClass("survey", subjectTemplates["survey"], "ElectromagneticSurvey", "seaSurveyTypeMain = 'Electromagnetic'")
	b.dataProps("survey", subjectTemplates["survey"])
	b.name("survey", subjectTemplates["survey"], "seaName")
	b.objFK("survey", "surveyingCompany", subjectTemplates["survey"], subjectTemplates["company"])
	acqIRI := Data + "survey/{seaNpdidSurvey}/acquisition/{seacAcquisitionNumber}"
	b.class("seis_acquisition", acqIRI, "SeismicAcquisition")
	b.dataProps("seis_acquisition", acqIRI)
	b.obj("seis_acquisition", "acquisitionForSurvey", acqIRI, subjectTemplates["survey"])
	b.class("prospect", subjectTemplates["prospect"], "Prospect")
	b.dataProps("prospect", subjectTemplates["prospect"])
	b.objFK("prospect", "prospectInLicence", subjectTemplates["prospect"], subjectTemplates["licence"])
	b.class("apa_area_gross", subjectTemplates["apagross"], "APAAreaGross")
	b.dataProps("apa_area_gross", subjectTemplates["apagross"])
	b.class("apa_area_net", subjectTemplates["apanet"], "APAAreaNet")
	b.objFK("apa_area_net", "netAreaOf", subjectTemplates["apanet"], subjectTemplates["apagross"])
	b.class("sea_area", subjectTemplates["seaarea"], "SeaArea")
	b.dataProps("sea_area", subjectTemplates["seaarea"])

	// ---- area cohorts (conditional classes over the main-area vocab) ----
	for _, area := range mainAreas {
		a := areaClass(area)
		b.condClass("wellbore_exploration_all", wellboreIRI(), a+"Wellbore", fmt.Sprintf("wlbMainArea = '%s'", area))
		b.condClass("wellbore_development_all", wellboreIRI(), a+"Wellbore", fmt.Sprintf("wlbMainArea = '%s'", area))
		b.condClass("field", subjectTemplates["field"], a+"Field", fmt.Sprintf("fldMainArea = '%s'", area))
		b.condClass("discovery", subjectTemplates["discovery"], a+"Discovery", fmt.Sprintf("dscMainArea = '%s'", area))
		b.condClass("licence", subjectTemplates["licence"], a+"Licence", fmt.Sprintf("prlMainArea = '%s'", area))
		b.condClass("block", subjectTemplates["block"], a+"Block", fmt.Sprintf("blkMainArea = '%s'", area))
		b.condClass("survey", subjectTemplates["survey"], a+"Survey", fmt.Sprintf("seaGeographicalArea = '%s'", area))
		b.condClass("prospect", subjectTemplates["prospect"], a+"Prospect", fmt.Sprintf("prsMainArea = '%s'", area))
	}

	// ---- moveable facility kinds ----
	for _, k := range fclKinds {
		b.condClass("facility_moveable", subjectTemplates["facility"], "Moveable"+facilityClass(k), fmt.Sprintf("fclKind = '%s'", k))
	}

	// ---- licence lifecycle ----
	b.condClass("licence", subjectTemplates["licence"], "ActiveLicence", "prlDateValidTo IS NULL OR prlDateValidTo > '2013-12-31'")
	b.condClass("licence", subjectTemplates["licence"], "ExpiredLicence", "prlDateValidTo <= '2013-12-31'")
	for _, ph := range phases {
		b.condClass("licence", subjectTemplates["licence"], titleCase(ph)+"PhaseLicence", fmt.Sprintf("prlPhaseCurrent = '%s'", titleCase(ph)))
	}

	// ---- company nationality cohorts ----
	for _, nc := range nationCodes {
		b.condClass("company", subjectTemplates["company"], "Company"+nc, fmt.Sprintf("cmpNationCode = '%s'", nc))
	}

	// ---- sample/test refinements ----
	b.condClass("wellbore_mud", mudIRI, "OilBasedMudSample", "wlbMudType = 'OIL BASED'")
	b.condClass("wellbore_mud", mudIRI, "WaterBasedMudSample", "wlbMudType = 'WATER BASED'")
	b.condClass("wellbore_mud", mudIRI, "SyntheticMudSample", "wlbMudType = 'SYNTHETIC'")
	for _, ct := range casingTypes {
		b.condClass("wellbore_casing_and_lot", casingIRI, titleCase(strings.ToLower(ct))+"Casing", fmt.Sprintf("wlbCasingType = '%s'", ct))
	}
	b.condClass("wellbore_document", docIRI, "CorePhotoDocument", "wlbDocumentType = 'CORE PHOTO'")
	b.condClass("wellbore_document", docIRI, "PressReleaseDocument", "wlbDocumentType = 'PRESS RELEASE'")
	b.condClass("pipeline", subjectTemplates["pipeline"], "WaterPipeline", "pipMedium = 'WATER'")
	b.condClass("pipeline", subjectTemplates["pipeline"], "OilGasPipeline", "pipMedium = 'OIL/GAS'")
	b.condClass("wellbore_exploration_all", wellboreIRI(), "WaterWellbore", "wlbContent = 'WATER'")
	b.condClass("wellbore_exploration_all", wellboreIRI(), "DrillingWellbore", "wlbStatus = 'DRILLING'")
	b.condClass("wellbore_development_all", wellboreIRI(), "CompletedWellbore", "wlbStatus = 'COMPLETED'")

	// ---- a deliberately suboptimal mapping with an unnecessary join (M2)
	b.objCols("wellbore_exploration_all", "drillingOperatorCompany",
		wellboreIRI(), subjectTemplates["company"],
		"SELECT w.wlbNpdidWellbore AS wlbNpdidWellbore, c.cmpNpdidCompany AS cmpNpdidCompany "+
			"FROM wellbore_exploration_all w JOIN company c ON w.cmpNpdidCompany = c.cmpNpdidCompany")

	return b.mp
}

type mappingBuilder struct {
	mp  *r2rml.Mapping
	seq int
}

func (b *mappingBuilder) next(kind string) string {
	b.seq++
	return fmt.Sprintf("npd-%s-%03d", kind, b.seq)
}

// class asserts a class over every row of a base table.
func (b *mappingBuilder) class(table, subject, class string) {
	b.mp.Add(&r2rml.TriplesMap{
		Name:    b.next("cls"),
		Table:   table,
		Subject: r2rml.IRIMap(subject),
		Classes: []string{V(class)},
	})
}

// condClass asserts a class over the rows matching cond.
func (b *mappingBuilder) condClass(table, subject, class, cond string) {
	tmpl := r2rml.MustParseTemplate(subject)
	cols := strings.Join(tmpl.Columns, ", ")
	b.mp.Add(&r2rml.TriplesMap{
		Name:    b.next("cnd"),
		SQL:     fmt.Sprintf("SELECT %s FROM %s WHERE %s", cols, table, cond),
		Subject: r2rml.IRIMap(subject),
		Classes: []string{V(class)},
	})
}

// condClassCol is condClass with the condition column included in the
// projection (overlapping tables).
func (b *mappingBuilder) condClassCol(table, subject, class, cond string) {
	b.condClass(table, subject, class, cond)
}

// name adds the canonical npdv:name assertion.
func (b *mappingBuilder) name(table, subject, col string) {
	tmpl := r2rml.MustParseTemplate(subject)
	cols := strings.Join(append(append([]string{}, tmpl.Columns...), col), ", ")
	b.mp.Add(&r2rml.TriplesMap{
		Name:    b.next("nam"),
		SQL:     fmt.Sprintf("SELECT %s FROM %s", cols, table),
		Subject: r2rml.IRIMap(subject),
		POs:     []r2rml.PredicateObject{{Predicate: V("name"), Object: r2rml.ColumnMap(col)}},
	})
}

// alias maps an aliased vocabulary property to a column.
func (b *mappingBuilder) alias(table, subject, prop, col string) {
	tmpl := r2rml.MustParseTemplate(subject)
	cols := strings.Join(append(append([]string{}, tmpl.Columns...), col), ", ")
	b.mp.Add(&r2rml.TriplesMap{
		Name:    b.next("als"),
		SQL:     fmt.Sprintf("SELECT %s FROM %s", cols, table),
		Subject: r2rml.IRIMap(subject),
		POs:     []r2rml.PredicateObject{{Predicate: V(prop), Object: r2rml.ColumnMap(col)}},
	})
}

// obj adds an object property whose subject and object templates draw from
// the same base table.
func (b *mappingBuilder) obj(table, prop, subjTmpl, objTmpl string) {
	b.mp.Add(&r2rml.TriplesMap{
		Name:    b.next("obj"),
		Table:   table,
		Subject: r2rml.IRIMap(subjTmpl),
		POs: []r2rml.PredicateObject{{
			Predicate: V(prop),
			Object:    r2rml.TermMap{Kind: r2rml.IRITemplate, Template: r2rml.MustParseTemplate(objTmpl)},
		}},
	})
}

// objFK is obj over a base table (FK columns may be NULL; R2RML semantics
// suppress those triples).
func (b *mappingBuilder) objFK(table, prop, subjTmpl, objTmpl string) {
	b.obj(table, prop, subjTmpl, objTmpl)
}

// objCols adds an object property with an explicit SQL source.
func (b *mappingBuilder) objCols(table, prop, subjTmpl, objTmpl, sql string) {
	b.mp.Add(&r2rml.TriplesMap{
		Name:    b.next("obq"),
		SQL:     sql,
		Subject: r2rml.IRIMap(subjTmpl),
		POs: []r2rml.PredicateObject{{
			Predicate: V(prop),
			Object:    r2rml.TermMap{Kind: r2rml.IRITemplate, Template: r2rml.MustParseTemplate(objTmpl)},
		}},
	})
	_ = table
}

// dataProps adds one PO per plain attribute of the table in a single map.
func (b *mappingBuilder) dataProps(table, subject string) {
	m := &r2rml.TriplesMap{
		Name:    b.next("dat"),
		Table:   table,
		Subject: r2rml.IRIMap(subject),
	}
	for _, col := range tableColumns(table) {
		m.POs = append(m.POs, r2rml.PredicateObject{
			Predicate: V(col), Object: r2rml.ColumnMap(col),
		})
	}
	if len(m.POs) > 0 {
		b.mp.Add(m)
	}
}

// dataPropsSplit adds one triples map per attribute — the deliberately
// unoptimized variant (requirement M2): the unfolder's self-join
// elimination has to merge these back.
func (b *mappingBuilder) dataPropsSplit(table, subject string) {
	tmpl := r2rml.MustParseTemplate(subject)
	for _, col := range tableColumns(table) {
		cols := strings.Join(append(append([]string{}, tmpl.Columns...), col), ", ")
		b.mp.Add(&r2rml.TriplesMap{
			Name:    b.next("dsp"),
			SQL:     fmt.Sprintf("SELECT %s FROM %s", cols, table),
			Subject: r2rml.IRIMap(subject),
			POs: []r2rml.PredicateObject{{
				Predicate: V(col), Object: r2rml.ColumnMap(col),
			}},
		})
	}
}

// tableColumns lists the plain data columns of a schema table (no npdid
// surrogates, no geometry).
func tableColumns(table string) []string {
	for _, ts := range schemaSpecs {
		if !strings.EqualFold(ts.name, table) {
			continue
		}
		var out []string
		for _, item := range ts.items {
			if strings.HasPrefix(item, "pk=") || strings.HasPrefix(item, "fk=") {
				continue
			}
			col, typ, _ := strings.Cut(item, ":")
			lower := strings.ToLower(col)
			if strings.Contains(lower, "npdid") || strings.HasPrefix(typ, "geo") {
				continue
			}
			out = append(out, col)
		}
		return out
	}
	return nil
}
