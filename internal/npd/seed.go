package npd

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"npdbench/internal/sqldb"
)

// SeedConfig controls the synthetic FactPages seed instance.
type SeedConfig struct {
	// Scale multiplies the per-table base row counts (1.0 ≈ a small
	// FactPages snapshot; the benchmark's NPD1 instance).
	Scale float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultSeedConfig returns a small, test-friendly seed instance.
func DefaultSeedConfig() SeedConfig { return SeedConfig{Scale: 1, Seed: 42} }

// Constant vocabularies — the "intrinsically constant" concepts whose
// virtual extensions must not grow with the data (paper Sect. 4 and 5.2).
var (
	mainAreas      = []string{"North sea", "Norwegian sea", "Barents sea"}
	hcTypes        = []string{"OIL", "GAS", "OIL/GAS", "GAS/CONDENSATE", "CONDENSATE"}
	activityStates = []string{"Producing", "Shut down", "Approved for production", "Decided for production", "Returned area"}
	purposes       = []string{"WILDCAT", "APPRAISAL", "PRODUCTION", "INJECTION", "OBSERVATION"}
	contents       = []string{"OIL", "GAS", "OIL SHOWS", "GAS SHOWS", "DRY", "WATER"}
	statuses       = []string{"DRILLING", "SUSPENDED", "COMPLETED", "JUNKED", "P&A", "PRODUCING"}
	fclKinds       = []string{"CONCRETE STRUCTURE", "CONDEEP 3 SHAFTS", "JACKET 4 LEGS", "SUBSEA STRUCTURE", "FPSO", "JACK-UP 3 LEGS", "SEMISUB STEEL", "TLP", "VESSEL", "LOADING SYSTEM", "ONSHORE FACILITY"}
	fclPhases      = []string{"PLANNED", "INSTALLATION", "IN SERVICE", "DISPOSAL", "REMOVED", "ABANDONED IN PLACE"}
	lsuLevels      = []string{"GROUP", "FORMATION", "MEMBER"}
	eras           = []string{"TRIASSIC", "JURASSIC", "CRETACEOUS", "PALEOGENE", "NEOGENE", "PERMIAN", "CARBONIFEROUS", "DEVONIAN"}
	mudTypes       = []string{"WATER BASED", "OIL BASED", "SYNTHETIC", "KCL/POLYMER"}
	taskStatuses   = []string{"ACTIVE", "FULFILLED", "WAIVED"}
	docTypes       = []string{"COMPLETION REPORT", "COMPLETION LOG", "CORE PHOTO", "PRESS RELEASE"}
	surveyStates   = []string{"Planned", "Ongoing", "Finished", "Cancelled"}
	surveyTypes    = []string{"Ordinary seismic survey", "Site survey", "Electromagnetic", "Gravimetric"}
	mediums        = []string{"OIL", "GAS", "CONDENSATE", "WATER", "OIL/GAS"}
	baaKinds       = []string{"UNITIZED FIELD", "TRANSPORTATION", "UTILIZATION"}
	tufKinds       = []string{"TRANSPORTATION", "UTILIZATION"}
	geoDatums      = []string{"ED50", "WGS84"}
	nationCodes    = []string{"NO", "GB", "DK", "NL", "FR", "DE", "US", "IT", "SE"}
	ownerKinds     = []string{"BUSINESS ARRANGEMENT AREA", "PRODUCTION LICENCE"}
	coordSystems   = []string{"ED50 UTM31", "ED50 UTM32", "ED50 UTM33", "ED50 UTM34", "ED50 UTM35"}
	casingTypes    = []string{"CONDUCTOR", "SURFACE", "INTERMEDIATE", "PRODUCTION", "LINER"}
	headings       = []string{"Development", "Reservoir", "Recovery", "Transport", "Status"}
	transferDirs   = []string{"FROM", "TO"}
	petregKinds    = []string{"TRANSFER", "MORTGAGE", "CHANGE OF NAME"}
	fluidTypes     = []string{"OIL", "GAS", "CONDENSATE", "WATER"}
	seaAreaKinds   = []string{"OPENED", "CLOSED", "RESTRICTED"}
	wlbKinds       = []string{"EXPLORATION", "DEVELOPMENT", "SHALLOW"}
	phases         = []string{"INITIAL", "EXTENSION", "PRODUCTION"}
)

// base row counts at Scale 1, chosen to mirror the relative sizes of the
// FactPages tables (many wellbores and monthly production rows, few
// companies).
var baseCounts = map[string]int{
	"company": 60, "quadrant": 24, "block": 180, "licence": 180, "field": 80,
	"discovery": 140, "facility_fixed": 90, "facility_moveable": 50,
	"wellbore_exploration_all": 380, "wellbore_development_all": 560,
	"wellbore_shallow_all": 120,
	"wellbore_core":        420, "wellbore_core_photo": 300, "wellbore_dst": 180,
	"wellbore_document": 500, "wellbore_mud": 600, "wellbore_casing_and_lot": 520,
	"wellbore_oil_sample": 160, "wellbore_coordinates": 380, "wellbore_history": 420,
	"strat_litho_unit": 120, "wellbore_formation_top": 700,
	"strat_litho_wellbore_core": 260,
	"field_production_monthly":  1600, "field_production_yearly": 420,
	"field_investment_yearly": 380, "field_reserves": 78,
	"field_activity_status_hst": 180, "field_owner_hst": 120,
	"field_operator_hst": 140, "field_licensee_hst": 320, "field_description": 150,
	"discovery_description": 180, "discovery_reserves": 120, "discovery_area": 170,
	"licence_licensee_hst": 520, "licence_oper_hst": 260, "licence_phase_hst": 300,
	"licence_area": 260, "licence_task": 200, "licence_transfer_hst": 240,
	"licence_petreg_licence": 150, "licence_petreg_licence_licencee": 320,
	"licence_petreg_licence_oper": 140, "licence_petreg_message": 180,
	"company_reserves": 260,
	"survey":           160, "seis_acquisition": 200, "seis_acquisition_progress": 320,
	"survey_coordinates": 480,
	"prospect":           120, "apa_area_gross": 40, "apa_area_net": 90, "sea_area": 30,
	"baa": 60, "baa_licensee_hst": 160, "baa_operator_hst": 80,
	"baa_transfer_hst": 70, "baa_area": 90,
	"tuf": 40, "tuf_owner_hst": 110, "tuf_operator_hst": 50, "tuf_petreg_licence": 60,
	"pipeline":                        70,
	"production_licence_area_current": 150,
	"wellbore_npdid_overview":         900, "company_name_hst": 80, "field_area": 140,
	"discovery_operator_hst": 150,
}

// seeder holds generation state.
type seeder struct {
	db  *sqldb.Database
	rng *rand.Rand
	// npdid sequences per entity family
	seq map[string]int64
}

// Seed populates the schema with a deterministic synthetic FactPages
// snapshot.
func Seed(db *sqldb.Database, cfg SeedConfig) error {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	s := &seeder{db: db, rng: rand.New(rand.NewSource(cfg.Seed)), seq: map[string]int64{}}
	count := func(table string) int {
		n := int(float64(baseCounts[table]) * cfg.Scale)
		if baseCounts[table] > 0 && n < 2 {
			n = 2
		}
		return n
	}
	// Vocabulary tables first.
	if err := s.vocab("main_area", mainAreas); err != nil {
		return err
	}
	if err := s.vocab("hc_type", hcTypes); err != nil {
		return err
	}
	if err := s.vocab("activity_status", activityStates); err != nil {
		return err
	}
	if err := s.vocab("wellbore_purpose", purposes); err != nil {
		return err
	}
	if err := s.vocab("wellbore_content", contents); err != nil {
		return err
	}
	if err := s.vocab("facility_kind", fclKinds); err != nil {
		return err
	}
	if err := s.vocab("facility_phase", fclPhases); err != nil {
		return err
	}
	// Entities in FK order; the convention engine fills each table.
	order := []string{
		"company", "quadrant", "block", "licence", "field", "discovery",
		"facility_fixed", "facility_moveable",
		"wellbore_exploration_all", "wellbore_development_all", "wellbore_shallow_all",
		"strat_litho_unit",
		"wellbore_core", "wellbore_core_photo", "wellbore_dst", "wellbore_document",
		"wellbore_mud", "wellbore_casing_and_lot", "wellbore_oil_sample",
		"wellbore_coordinates", "wellbore_history", "wellbore_formation_top",
		"strat_litho_wellbore_core",
		"field_production_monthly", "field_production_yearly",
		"field_investment_yearly", "field_reserves", "field_activity_status_hst",
		"field_owner_hst", "field_operator_hst", "field_licensee_hst",
		"field_description",
		"discovery_description", "discovery_reserves", "discovery_area",
		"licence_licensee_hst", "licence_oper_hst", "licence_phase_hst",
		"licence_area", "licence_task", "licence_transfer_hst",
		"licence_petreg_licence", "licence_petreg_licence_licencee",
		"licence_petreg_licence_oper", "licence_petreg_message",
		"company_reserves",
		"survey", "seis_acquisition", "seis_acquisition_progress",
		"survey_coordinates",
		"prospect", "apa_area_gross", "apa_area_net", "sea_area",
		"baa", "baa_licensee_hst", "baa_operator_hst", "baa_transfer_hst",
		"baa_area",
		"tuf", "tuf_owner_hst", "tuf_operator_hst", "tuf_petreg_licence",
		"pipeline", "production_licence_area_current", "wellbore_npdid_overview",
		"company_name_hst", "field_area", "discovery_operator_hst",
	}
	for _, table := range order {
		if err := s.fill(table, count(table)); err != nil {
			return fmt.Errorf("npd: seeding %s: %w", table, err)
		}
	}
	return nil
}

// NewSeededDatabase builds the schema and seeds it.
func NewSeededDatabase(cfg SeedConfig) (*sqldb.Database, error) {
	db, err := NewDatabase()
	if err != nil {
		return nil, err
	}
	if err := Seed(db, cfg); err != nil {
		return nil, err
	}
	return db, nil
}

func (s *seeder) vocab(table string, values []string) error {
	for _, v := range values {
		t := s.db.Table(table)
		row := make(sqldb.Row, len(t.Def.Columns))
		row[0] = sqldb.NewString(v)
		for i := 1; i < len(row); i++ {
			row[i] = sqldb.NewString(values[s.rng.Intn(len(values))])
		}
		if err := s.db.Insert(table, row); err != nil {
			return err
		}
	}
	return nil
}

// fill inserts n convention-generated rows into the table.
func (s *seeder) fill(table string, n int) error {
	t := s.db.Table(table)
	if t == nil {
		return fmt.Errorf("unknown table %s", table)
	}
	def := t.Def
	fkCols := map[int]*sqldb.ForeignKey{}
	for i := range def.ForeignKeys {
		for _, c := range def.ForeignKeys[i].Columns {
			fkCols[c] = &def.ForeignKeys[i]
		}
	}
	for k := 0; k < n; k++ {
		ok := false
		for attempt := 0; attempt < 48 && !ok; attempt++ {
			row := make(sqldb.Row, len(def.Columns))
			// FKs first (consistent composite tuples).
			skip := false
			for fi := range def.ForeignKeys {
				fk := &def.ForeignKeys[fi]
				parent := s.db.Table(fk.RefTable)
				if parent == nil || parent.Len() == 0 {
					// self-referencing strat units: NULL parent allowed
					if s.nullableFK(def, fk) {
						continue
					}
					skip = true
					break
				}
				if strings.EqualFold(fk.RefTable, def.Name) {
					// self-FK (stratigraphy): 60% NULL roots, else an
					// earlier unit
					if s.rng.Float64() < 0.6 {
						continue
					}
				}
				src := parent.Rows[s.rng.Intn(parent.Len())]
				for i, c := range fk.Columns {
					row[c] = src[fk.RefColumns[i]]
				}
				// optional FKs are occasionally NULL (realistic sparsity)
				if s.nullableFK(def, fk) && s.rng.Float64() < 0.15 {
					for _, c := range fk.Columns {
						row[c] = sqldb.Null
					}
				}
			}
			if skip {
				break
			}
			for i, col := range def.Columns {
				if !row[i].IsNull() {
					continue
				}
				if _, isFK := fkCols[i]; isFK && !row[i].IsNull() {
					continue
				}
				if _, isFK := fkCols[i]; isFK {
					continue // deliberately NULL FK
				}
				row[i] = s.columnValue(def.Name, col, k)
			}
			if err := s.db.InsertUnchecked(def.Name, row); err != nil {
				if _, dup := err.(*sqldb.DuplicateKeyError); dup {
					continue
				}
				return err
			}
			ok = true
		}
	}
	return nil
}

func (s *seeder) nullableFK(def *sqldb.TableDef, fk *sqldb.ForeignKey) bool {
	for _, c := range fk.Columns {
		if def.Columns[c].NotNull {
			return false
		}
		for _, pk := range def.PrimaryKey {
			if pk == c {
				return false
			}
		}
	}
	return true
}

// columnValue generates one value using FactPages naming conventions.
func (s *seeder) columnValue(table string, col sqldb.Column, rowIdx int) sqldb.Value {
	name := strings.ToLower(col.Name)
	pick := func(vals []string) sqldb.Value {
		return sqldb.NewString(vals[s.rng.Intn(len(vals))])
	}
	switch col.Type {
	case sqldb.TInt:
		switch {
		case strings.Contains(name, "npdid"):
			key := npdidFamily(name)
			s.seq[key]++
			return sqldb.NewInt(s.seq[key])
		case strings.Contains(name, "year"):
			return sqldb.NewInt(int64(1966 + s.rng.Intn(48))) // 1966–2013
		case strings.Contains(name, "month"):
			return sqldb.NewInt(int64(1 + s.rng.Intn(12)))
		case strings.Contains(name, "number") || strings.Contains(name, "seq"):
			return sqldb.NewInt(int64(1 + s.rng.Intn(24)))
		case strings.Contains(name, "deg"):
			return sqldb.NewInt(int64(s.rng.Intn(75)))
		case strings.Contains(name, "min"):
			return sqldb.NewInt(int64(s.rng.Intn(60)))
		case strings.Contains(name, "symbol"):
			return sqldb.NewInt(int64(s.rng.Intn(30)))
		}
		return sqldb.NewInt(int64(s.rng.Intn(10000)))
	case sqldb.TFloat:
		switch {
		case strings.Contains(name, "depth"):
			return sqldb.NewFloat(100 + s.rng.Float64()*5400)
		case strings.Contains(name, "length"):
			return sqldb.NewFloat(s.rng.Float64() * 220)
		case strings.Contains(name, "interest") || strings.Contains(name, "share"):
			return sqldb.NewFloat(float64(s.rng.Intn(20)+1) * 5)
		case strings.Contains(name, "decdeg") && strings.Contains(name, "ns"):
			return sqldb.NewFloat(56 + s.rng.Float64()*18)
		case strings.Contains(name, "decdeg") && strings.Contains(name, "ew"):
			return sqldb.NewFloat(1 + s.rng.Float64()*30)
		case strings.Contains(name, "prd") || strings.Contains(name, "recoverable") || strings.Contains(name, "remaining"):
			return sqldb.NewFloat(s.rng.Float64() * 40)
		case strings.Contains(name, "investment") || strings.Contains(name, "nok"):
			return sqldb.NewFloat(s.rng.Float64() * 9000)
		case strings.Contains(name, "area"):
			return sqldb.NewFloat(10 + s.rng.Float64()*900)
		case strings.Contains(name, "temperature"):
			return sqldb.NewFloat(40 + s.rng.Float64()*140)
		}
		return sqldb.NewFloat(s.rng.Float64() * 1000)
	case sqldb.TBool:
		return sqldb.NewBool(s.rng.Intn(2) == 0)
	case sqldb.TDate:
		// 1966-01-01 .. 2013-12-31 as days since epoch
		return sqldb.NewDate(int64(-1461 + s.rng.Intn(17532)))
	case sqldb.TGeometry:
		return sqldb.NewGeometry(s.shelfPolygon())
	}
	// text columns
	switch {
	case strings.Contains(name, "mainarea") || name == "maingrouping":
		return pick(mainAreas)
	case strings.Contains(name, "hctype"):
		return pick(hcTypes)
	case strings.Contains(name, "activitystatus"):
		return pick(activityStates)
	case strings.Contains(name, "purpose"):
		return pick(purposes)
	case strings.Contains(name, "contentplanned"), strings.HasSuffix(name, "content"):
		return pick(contents)
	case strings.Contains(name, "mudtype"):
		return pick(mudTypes)
	case strings.Contains(name, "taskstatus"):
		return pick(taskStatuses)
	case strings.Contains(name, "documenttype"):
		return pick(docTypes)
	case table == "survey" && name == "seastatus":
		return pick(surveyStates)
	case strings.Contains(name, "surveytype"):
		return pick(surveyTypes)
	case strings.Contains(name, "medium"):
		return pick(mediums)
	case table == "baa" && name == "baakind":
		return pick(baaKinds)
	case table == "tuf" && name == "tufkind":
		return pick(tufKinds)
	case strings.Contains(name, "kind") && strings.Contains(name, "owner"):
		return pick(ownerKinds)
	case table == "wellbore_npdid_overview" && name == "wlbkind":
		return pick(wlbKinds)
	case strings.HasSuffix(name, "kind"):
		return pick(fclKinds)
	case strings.Contains(name, "phase"):
		if strings.HasPrefix(name, "fcl") {
			return pick(fclPhases)
		}
		return pick(phases)
	case strings.Contains(name, "status"):
		return pick(statuses)
	case strings.Contains(name, "datum"):
		return pick(geoDatums)
	case strings.Contains(name, "nationcode"):
		return pick(nationCodes)
	case strings.Contains(name, "lsulevel"):
		return pick(lsuLevels)
	case strings.Contains(name, "era") || strings.Contains(name, "ageattd"):
		return pick(eras)
	case strings.Contains(name, "coordinatesystem"):
		return pick(coordSystems)
	case strings.Contains(name, "casingtype"):
		return pick(casingTypes)
	case strings.Contains(name, "heading"):
		return pick(headings)
	case strings.Contains(name, "direction"):
		return pick(transferDirs)
	case strings.Contains(name, "messagekind"):
		return pick(petregKinds)
	case strings.Contains(name, "fluidtype"):
		return pick(fluidTypes)
	case strings.Contains(name, "seaareakind"):
		return pick(seaAreaKinds)
	case strings.Contains(name, "stratigraphical"):
		return pick([]string{"YES", "NO"})
	case strings.Contains(name, "url"):
		return sqldb.NewString(fmt.Sprintf("http://factpages.npd.no/doc/%s/%d", table, rowIdx))
	case strings.Contains(name, "wellborename") || name == "wlbwell":
		q := 1 + s.rng.Intn(36)
		b := 1 + s.rng.Intn(12)
		w := 1 + s.rng.Intn(40)
		if name == "wlbwell" {
			return sqldb.NewString(fmt.Sprintf("%d/%d-%d", q, b, w))
		}
		return sqldb.NewString(fmt.Sprintf("%d/%d-%d %s", q, b, w, string(rune('A'+s.rng.Intn(4)))))
	case strings.Contains(name, "name"):
		return sqldb.NewString(nameFor(table, name, rowIdx, s.rng))
	case strings.Contains(name, "text"):
		return sqldb.NewString(fmt.Sprintf("Synthetic FactPages narrative %d for %s.", rowIdx, table))
	case strings.Contains(name, "prefix"):
		return sqldb.NewString(fmt.Sprintf("%c%c", 'A'+s.rng.Intn(26), 'A'+s.rng.Intn(26)))
	case strings.Contains(name, "orgnumber"):
		return sqldb.NewString(fmt.Sprintf("%09d", s.rng.Intn(1_000_000_000)))
	case strings.Contains(name, "functions"):
		return pick([]string{"DRILLING", "PRODUCTION", "QUARTER", "PROCESSING", "INJECTION", "STORAGE"})
	case strings.Contains(name, "base"):
		return pick([]string{"Tananger", "Dusavik", "Mongstad", "Kristiansund", "Sandnessjøen", "Hammerfest"})
	case strings.Contains(name, "location"):
		return sqldb.NewString(fmt.Sprintf("line %d", s.rng.Intn(4000)))
	case strings.Contains(name, "formationattd"):
		return sqldb.NewString(fmt.Sprintf("%s FM", strings.ToUpper(nameFor("strat", "name", s.rng.Intn(40), s.rng))))
	case strings.Contains(name, "geographicalarea"):
		return pick(mainAreas)
	case strings.Contains(name, "operator") || strings.Contains(name, "facility") || strings.Contains(name, "belongsto"):
		return sqldb.NewString(nameFor("company", "name", s.rng.Intn(60), s.rng))
	case strings.Contains(name, "aocstatus"):
		return pick([]string{"AOC VALID", "AOC EXPIRED"})
	case strings.Contains(name, "part"):
		return pick([]string{"NORTH", "SOUTH", "EAST", "WEST", "CENTRAL"})
	}
	return sqldb.NewString(fmt.Sprintf("%s_%d", name, rowIdx))
}

// npdidFamily groups npdid columns so that FKs and PKs of the same entity
// share a sequence.
func npdidFamily(colName string) string {
	i := strings.Index(colName, "npdid")
	return "npdid:" + colName[i:]
}

var norseSyllables = []string{"Tro", "Eko", "Sno", "Vis", "Hei", "Bal", "Gull", "Os", "Frig", "Sleip", "Var", "Mik", "Orm", "Dra", "Skar", "Alv", "Tyr", "Embl", "Gud", "Mun"}
var norseSuffixes = []string{"ll", "fisk", "ne", "und", "dal", "berg", "vik", "heim", "øy", "nes", "en", "a", "ungen", "gard"}

// nameFor produces stable, domain-flavoured entity names.
func nameFor(table, col string, idx int, rng *rand.Rand) string {
	base := norseSyllables[idx%len(norseSyllables)] + norseSuffixes[(idx/len(norseSyllables))%len(norseSuffixes)]
	switch {
	case strings.HasPrefix(table, "company") || table == "company":
		corp := []string{"Petroleum AS", "Energy ASA", "Oil Company", "E&P Norge", "Exploration AS"}
		return base + " " + corp[idx%len(corp)]
	case strings.HasPrefix(table, "licence") || strings.HasPrefix(col, "prl"):
		return fmt.Sprintf("PL%03d", 1+idx)
	case strings.HasPrefix(table, "block"):
		return fmt.Sprintf("%d/%d", 1+idx/12, 1+idx%12)
	case strings.HasPrefix(table, "quadrant"):
		return fmt.Sprintf("%d", 1+idx)
	case strings.HasPrefix(table, "apa"):
		return fmt.Sprintf("APA%d", 2003+idx%11)
	case strings.HasPrefix(table, "survey"):
		return fmt.Sprintf("ST%02d%03d", idx%14, idx)
	}
	return strings.ToUpper(base[:1]) + base[1:]
}

// shelfPolygon draws a small rectangle on the Norwegian continental shelf
// (1–31°E, 56–74°N).
func (s *seeder) shelfPolygon() *sqldb.Geometry {
	x0 := 1 + s.rng.Float64()*28
	y0 := 56 + s.rng.Float64()*16
	w := 0.05 + s.rng.Float64()*0.8
	h := 0.05 + s.rng.Float64()*0.8
	return &sqldb.Geometry{Points: []sqldb.Point{
		{X: x0, Y: y0}, {X: x0 + w, Y: y0}, {X: x0 + w, Y: y0 + h}, {X: x0, Y: y0 + h}, {X: x0, Y: y0},
	}}
}

// SortedTableSizes renders table row counts (diagnostics).
func SortedTableSizes(db *sqldb.Database) string {
	var names []string
	for _, t := range db.Tables() {
		names = append(names, fmt.Sprintf("%-36s %6d", t.Def.Name, t.Len()))
	}
	sort.Strings(names)
	return strings.Join(names, "\n")
}
