package npd

import (
	"strings"
	"testing"

	"npdbench/internal/core"
	"npdbench/internal/owl"
	"npdbench/internal/sqldb"
	"npdbench/internal/vig"
)

func seedDB(t *testing.T) *sqldb.Database {
	t.Helper()
	db, err := NewSeededDatabase(SeedConfig{Scale: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestSchemaShape(t *testing.T) {
	db, err := NewDatabase()
	if err != nil {
		t.Fatal(err)
	}
	if TableCount() < 70 {
		t.Fatalf("schema has %d tables, want >= 70 (paper)", TableCount())
	}
	nfk := 0
	wide := 0
	for _, tab := range db.Tables() {
		nfk += len(tab.Def.ForeignKeys)
		if len(tab.Def.Columns) >= 25 {
			wide++
		}
	}
	if nfk < 80 {
		t.Fatalf("schema has %d FKs, want approximately the paper's 94", nfk)
	}
	if wide < 2 {
		t.Fatalf("expected at least two wide wellbore tables, got %d", wide)
	}
}

func TestSeedIntegrityAndDeterminism(t *testing.T) {
	db1, err := NewSeededDatabase(SeedConfig{Scale: 0.25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if errs := db1.CheckIntegrity(); len(errs) != 0 {
		t.Fatalf("integrity violations: %v", errs[0])
	}
	db2, err := NewSeededDatabase(SeedConfig{Scale: 0.25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if db1.TotalRows() != db2.TotalRows() {
		t.Fatalf("seeding not deterministic: %d vs %d rows", db1.TotalRows(), db2.TotalRows())
	}
	// different seed should give a different instance (values, if not counts)
	db3, err := NewSeededDatabase(SeedConfig{Scale: 0.25, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if SortedTableSizes(db1) == "" || db3.TotalRows() == 0 {
		t.Fatal("empty instance")
	}
}

func TestOntologyShape(t *testing.T) {
	o := NewOntology()
	s := o.Stats()
	if s.Classes < 150 {
		t.Fatalf("ontology has %d classes, want a rich hierarchy (paper: 343)", s.Classes)
	}
	if s.ObjectProps < 60 {
		t.Fatalf("ontology has %d object properties (paper: 142)", s.ObjectProps)
	}
	if s.DataProps < 200 {
		t.Fatalf("ontology has %d data properties (paper: 238)", s.DataProps)
	}
	if s.MaxDepth < 8 {
		t.Fatalf("hierarchy depth %d, want >= 8 (paper: 10)", s.MaxDepth)
	}
	if len(o.Existentials) < 15 {
		t.Fatalf("only %d existential axioms; tree witnesses need more", len(o.Existentials))
	}
	if unsat := o.UnsatisfiableClasses(); len(unsat) != 0 {
		t.Fatalf("ontology has unsatisfiable classes: %v", unsat)
	}
	// hierarchy sanity: WildcatWellbore ⊑* Wellbore
	if !o.Subsumes(owl.NamedConcept(V("Wellbore")), owl.NamedConcept(V("WildcatWellbore"))) {
		t.Fatal("WildcatWellbore must be subsumed by Wellbore")
	}
	if !o.Subsumes(owl.NamedConcept(V("LithostratigraphicUnit")), owl.NamedConcept(V("JurassicFormation"))) {
		t.Fatal("JurassicFormation must be a LithostratigraphicUnit")
	}
}

func TestMappingShape(t *testing.T) {
	mp := NewMapping()
	st := mp.Stats()
	if st.Assertions < 300 {
		t.Fatalf("mapping has %d assertions, too sparse (paper: 1190)", st.Assertions)
	}
	if st.MappedTerms < 250 {
		t.Fatalf("mapping covers %d terms", st.MappedTerms)
	}
	// every mapping's SQL must parse and reference existing tables
	db, err := NewDatabase()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mp.Maps {
		stmt, err := m.LogicalSQL()
		if err != nil {
			t.Fatalf("mapping %s: %v", m.Name, err)
		}
		if _, err := db.ExecSelect(stmt); err != nil {
			t.Fatalf("mapping %s source does not run: %v", m.Name, err)
		}
	}
}

func TestAll21QueriesRun(t *testing.T) {
	db := seedDB(t)
	eng, err := core.NewEngine(core.Spec{
		Onto: NewOntology(), Mapping: NewMapping(), DB: db, Prefixes: Prefixes(),
	}, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	queries := Queries()
	if len(queries) != 21 {
		t.Fatalf("expected 21 queries, got %d", len(queries))
	}
	empty := 0
	for _, q := range queries {
		ans, err := eng.Query(q.SPARQL)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		if ans.Len() == 0 {
			empty++
			t.Logf("%s returned no rows", q.ID)
		}
	}
	if empty > 3 {
		t.Fatalf("%d of 21 queries returned empty results on the seed", empty)
	}
}

func TestQ6TreeWitnesses(t *testing.T) {
	db := seedDB(t)
	eng, err := core.NewEngine(core.Spec{
		Onto: NewOntology(), Mapping: NewMapping(), DB: db, Prefixes: Prefixes(),
	}, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	q := QueryByID("q6")
	ans, err := eng.Query(q.SPARQL)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Stats.TreeWitnesses != 2 {
		t.Fatalf("q6 tree witnesses = %d, want 2 (paper)", ans.Stats.TreeWitnesses)
	}
	if ans.Len() == 0 {
		t.Fatal("q6 returned no rows")
	}
	// Existential reasoning must matter: belongsToWell has no mapping, so
	// with reasoning off the query is empty.
	engOff, err := core.NewEngine(core.Spec{
		Onto: NewOntology(), Mapping: NewMapping(), DB: db, Prefixes: Prefixes(),
	}, core.Options{TMappings: true, Existential: false})
	if err != nil {
		t.Fatal(err)
	}
	ansOff, err := engOff.Query(q.SPARQL)
	if err != nil {
		t.Fatal(err)
	}
	if ansOff.Len() != 0 {
		t.Fatalf("q6 without existential reasoning returned %d rows, want 0", ansOff.Len())
	}
}

func TestOBDAMatchesTripleStoreOnNPD(t *testing.T) {
	db, err := NewSeededDatabase(SeedConfig{Scale: 0.15, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	spec := core.Spec{Onto: NewOntology(), Mapping: NewMapping(), DB: db, Prefixes: Prefixes()}
	eng, err := core.NewEngine(spec, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	store, err := core.NewStoreEngine(spec, core.StoreOptions{Reasoning: true})
	if err != nil {
		t.Fatal(err)
	}
	// Non-aggregate queries must agree between the OBDA engine and the
	// reasoning triple store (certain-answer semantics).
	for _, id := range []string{"q1", "q2", "q3", "q4", "q5", "q7", "q8", "q10", "q11", "q12", "q13"} {
		q := QueryByID(id)
		a1, err := eng.Query(q.SPARQL)
		if err != nil {
			t.Fatalf("obda %s: %v", id, err)
		}
		a2, err := store.Query(q.SPARQL)
		if err != nil {
			t.Fatalf("store %s: %v", id, err)
		}
		if a1.Len() != a2.Len() {
			t.Fatalf("%s: OBDA %d rows vs store %d rows", id, a1.Len(), a2.Len())
		}
	}
}

func TestAggregateQueriesPushdown(t *testing.T) {
	db, err := NewSeededDatabase(SeedConfig{Scale: 0.2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(core.Spec{
		Onto: NewOntology(), Mapping: NewMapping(), DB: db, Prefixes: Prefixes(),
	}, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// q15/q16/q18/q19/q20 are in the pushable fragment (single filtered
	// BGP, plain grouping, simple aggregates); q17/q21 carry HAVING and
	// fall back. All must produce correct, non-erroneous answers.
	pushable := map[string]bool{"q15": true, "q16": true, "q18": true, "q19": true, "q20": true}
	for _, q := range Queries() {
		if !q.Aggregate {
			continue
		}
		ans, err := eng.Query(q.SPARQL)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		gotPush := strings.Contains(ans.Stats.UnfoldedSQL, "GROUP BY") ||
			strings.Contains(ans.Stats.UnfoldedSQL, "COUNT") ||
			strings.Contains(ans.Stats.UnfoldedSQL, "MIN(")
		if gotPush != pushable[q.ID] {
			t.Errorf("%s: pushdown = %v, want %v", q.ID, gotPush, pushable[q.ID])
		}
	}
}

func TestScaledInstanceStaysConsistent(t *testing.T) {
	db, err := NewSeededDatabase(SeedConfig{Scale: 0.15, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	spec := core.Spec{Onto: NewOntology(), Mapping: NewMapping(), DB: db, Prefixes: Prefixes()}
	eng, err := core.NewEngine(spec, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	before, err := eng.Query(`SELECT ?w WHERE { ?w a npdv:Wellbore }`)
	if err != nil {
		t.Fatal(err)
	}
	// pump with VIG, then the same engine must see more wellbores and the
	// instance must still satisfy every disjointness axiom.
	a, err := vig.Analyze(db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vig.New(a, 21).Generate(db, 1.5); err != nil {
		t.Fatal(err)
	}
	after, err := eng.Query(`SELECT ?w WHERE { ?w a npdv:Wellbore }`)
	if err != nil {
		t.Fatal(err)
	}
	if after.Len() <= before.Len() {
		t.Fatalf("wellbores did not grow: %d -> %d", before.Len(), after.Len())
	}
	// VIG preserves column-level statistics but not cross-table semantic
	// partitions: a generated overview row can claim a development
	// wellbore's id as EXPLORATION, putting one IRI in two disjoint
	// classes. This is precisely the approximation the paper's "Virtually
	// Sound" requirement admits — and the consistency checker must be
	// able to *detect* it (requirement O2). We only require that the
	// check completes and that any violation it finds names the
	// exploration/development partition.
	rep, err := eng.CheckConsistency(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		// wellbore and facility classes are partitioned by table in the
		// schema; those are the partitions VIG's duplicates can cross
		if !strings.Contains(v.A+v.B, "Wellbore") && !strings.Contains(v.A+v.B, "Facility") {
			t.Fatalf("unexpected violation outside the table partitions: %v", v)
		}
	}
}

func TestSeedInstanceIsConsistent(t *testing.T) {
	db, err := NewSeededDatabase(SeedConfig{Scale: 0.2, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(core.Spec{
		Onto: NewOntology(), Mapping: NewMapping(), DB: db, Prefixes: Prefixes(),
	}, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.CheckConsistency(1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Consistent {
		t.Fatalf("seed instance inconsistent: %v", rep.Violations[0])
	}
	if rep.ChecksRun < 10 {
		t.Fatalf("only %d disjointness axioms checked", rep.ChecksRun)
	}
}
