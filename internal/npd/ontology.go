package npd

import (
	"strings"

	"npdbench/internal/owl"
	"npdbench/internal/rdf"
)

// Vocabulary namespaces, matching the published NPD ontology layout.
const (
	NPDV = "http://sws.ifi.uio.no/vocab/npd-v2#"
	Data = "http://sws.ifi.uio.no/data/npd-v2/"
)

// V expands a local name in the vocabulary namespace.
func V(local string) string { return NPDV + local }

// Prefixes returns the prefix bindings used by the benchmark queries and
// mappings.
func Prefixes() rdf.PrefixMap {
	pm := rdf.StandardPrefixes()
	pm["npdv"] = NPDV
	pm["npdd"] = Data
	return pm
}

// NewOntology builds the benchmark's OWL 2 QL ontology: deep class
// hierarchies over the petroleum domain, object properties with
// inverse/subproperty structure, one data property per FactPages attribute,
// existential axioms that generate anonymous individuals (the tree-witness
// sources), and disjointness assertions.
func NewOntology() *owl.Ontology {
	o := owl.New(NPDV)
	sub := func(child, parent string) {
		o.AddSubClass(owl.NamedConcept(V(child)), owl.NamedConcept(V(parent)))
	}
	chain := func(names ...string) {
		for i := 0; i+1 < len(names); i++ {
			sub(names[i], names[i+1])
		}
	}

	// --- upper structure (depth builds from here) ---
	chain("Point", "SpatialObject", "Thing")
	chain("Area", "SpatialObject")
	chain("TemporalEntity", "Thing")
	chain("Agent", "Thing")
	chain("Document", "InformationObject", "Thing")
	chain("Activity", "TemporalEntity")
	chain("PhysicalObject", "Thing")

	// --- wellbores: the deepest hierarchy (paper: max depth 10) ---
	chain("Wellbore", "Well", "DrillingOperation", "PetroleumActivity", "Activity")
	for _, k := range []string{"ExplorationWellbore", "DevelopmentWellbore", "ShallowWellbore", "SidetrackWellbore"} {
		sub(k, "Wellbore")
	}
	chain("WildcatWellbore", "ExplorationWellbore")
	chain("AppraisalWellbore", "ExplorationWellbore")
	chain("ProductionWellbore", "DevelopmentWellbore")
	chain("InjectionWellbore", "DevelopmentWellbore")
	chain("ObservationWellbore", "DevelopmentWellbore")
	chain("OilProducingWellbore", "ProducingWellbore", "ProductionWellbore")
	chain("GasProducingWellbore", "ProducingWellbore")
	chain("OilGasProducingWellbore", "OilProducingWellbore")
	chain("SuspendedWellbore", "NonActiveWellbore", "Wellbore")
	chain("PluggedAndAbandonedWellbore", "NonActiveWellbore")
	chain("JunkedWellbore", "NonActiveWellbore")
	chain("WaterInjectionWellbore", "InjectionWellbore")
	chain("GasInjectionWellbore", "InjectionWellbore")
	chain("WaterGasInjectionWellbore", "WaterInjectionWellbore")
	chain("CuttingsInjectionWellbore", "InjectionWellbore")
	chain("DryWellbore", "ExplorationWellbore")
	chain("DiscoveryWellbore", "ExplorationWellbore")
	chain("OilDiscoveryWellbore", "DiscoveryWellbore")
	chain("GasDiscoveryWellbore", "DiscoveryWellbore")
	chain("ShowsWellbore", "ExplorationWellbore")
	chain("OilShowsWellbore", "ShowsWellbore")
	chain("GasShowsWellbore", "ShowsWellbore")
	chain("MultilateralWellbore", "DevelopmentWellbore")
	chain("ReentryWellbore", "Wellbore")
	// deep specialization to reach depth 10 realistically:
	chain("HpHtWildcatWellbore", "HpHtExplorationWellbore", "WildcatWellbore")
	chain("DeepWaterHpHtWildcatWellbore", "HpHtWildcatWellbore")
	chain("UltraDeepWaterHpHtWildcatWellbore", "DeepWaterHpHtWildcatWellbore")

	// --- wellbore satellites ---
	chain("WellboreCore", "WellboreSample", "Sample", "PhysicalObject")
	chain("WellboreCorePhoto", "Photo", "Document")
	chain("WellboreDst", "DrillStemTest", "Test", "Activity")
	chain("WellboreDocument", "Document")
	chain("CompletionReport", "WellboreDocument")
	chain("CompletionLog", "WellboreDocument")
	chain("WellboreMudSample", "WellboreSample")
	chain("WellboreCasing", "WellboreEquipment", "Equipment", "PhysicalObject")
	chain("WellboreLot", "WellboreEquipment")
	chain("WellboreOilSample", "WellboreSample")
	chain("WellboreCoordinate", "Point")
	chain("WellboreHistoryEntry", "InformationObject")
	chain("FormationTop", "StratigraphicObservation", "Observation", "InformationObject")

	// --- stratigraphy: era × level lattice ---
	chain("LithostratigraphicUnit", "GeologicalObject", "PhysicalObject")
	for _, lvl := range []string{"Group", "Formation", "Member"} {
		sub("Litho"+lvl, "LithostratigraphicUnit")
	}
	for _, era := range eras {
		e := titleCase(era)
		sub(e+"Unit", "LithostratigraphicUnit")
		for _, lvl := range []string{"Group", "Formation", "Member"} {
			cls := e + lvl
			sub(cls, e+"Unit")
			sub(cls, "Litho"+lvl)
		}
	}

	// --- fields / discoveries ---
	chain("Field", "PetroleumDeposit", "Thing")
	chain("Discovery", "PetroleumDeposit")
	for _, s2 := range []string{"ProducingField", "ShutDownField", "ApprovedField", "DecidedField"} {
		sub(s2, "Field")
	}
	chain("OilField", "Field")
	chain("GasField", "Field")
	chain("OilGasField", "OilField")
	sub("OilGasField", "GasField")
	chain("CondensateField", "Field")
	chain("OilDiscovery", "Discovery")
	chain("GasDiscovery", "Discovery")
	chain("IncludedInFieldDiscovery", "Discovery")

	// --- companies / agents ---
	chain("Company", "Organisation", "Agent")
	chain("Operator", "LicenceParticipant", "Company")
	chain("Licensee", "LicenceParticipant")
	chain("CurrentOperator", "Operator")
	chain("FormerOperator", "Operator")
	chain("CurrentLicensee", "Licensee")
	chain("FormerLicensee", "Licensee")
	chain("SurveyingCompany", "Company")
	chain("DrillingOperatorCompany", "Company")

	// --- licences & areas ---
	chain("ProductionLicence", "Licence", "LegalDocument", "Document")
	chain("PetregLicence", "Licence")
	chain("StratigraphicalLicence", "ProductionLicence")
	chain("APALicence", "ProductionLicence")
	chain("LicenceTask", "Task", "Activity")
	chain("LicenceTransfer", "Transaction", "Activity")
	chain("Block", "GridArea", "Area")
	chain("Quadrant", "GridArea")
	chain("ProductionLicenceArea", "LicensedArea", "Area")
	chain("BusinessArrangementArea", "LicensedArea")
	chain("UnitizedField", "BusinessArrangementArea")
	chain("APAAreaGross", "APAArea", "Area")
	chain("APAAreaNet", "APAArea")
	chain("SeaArea", "Area")
	chain("Prospect", "ExplorationTarget", "Thing")

	// --- facilities / infrastructure ---
	chain("Facility", "PhysicalObject")
	chain("FixedFacility", "Facility")
	chain("MoveableFacility", "Facility")
	for _, k := range fclKinds {
		sub(facilityClass(k), "FixedFacility")
	}
	chain("Jacket4LegsFacility", "JacketFacility")
	sub("JacketFacility", "FixedFacility")
	chain("TUF", "Facility")
	chain("TransportationTUF", "TUF")
	chain("UtilizationTUF", "TUF")
	chain("Pipeline", "TransportInfrastructure", "PhysicalObject")
	chain("OilPipeline", "Pipeline")
	chain("GasPipeline", "Pipeline")
	chain("CondensatePipeline", "Pipeline")

	// --- surveys ---
	chain("Survey", "DataAcquisitionActivity", "PetroleumActivity")
	chain("SeismicSurvey", "Survey")
	chain("OrdinarySeismicSurvey", "SeismicSurvey")
	chain("SiteSurvey", "Survey")
	chain("ElectromagneticSurvey", "Survey")
	chain("GravimetricSurvey", "Survey")
	chain("SeismicAcquisition", "DataAcquisitionActivity")

	// --- production / economics ---
	chain("ProductionVolume", "Measurement", "InformationObject")
	chain("MonthlyProductionVolume", "ProductionVolume")
	chain("YearlyProductionVolume", "ProductionVolume")
	chain("Investment", "EconomicFigure", "InformationObject")
	chain("Reserve", "EconomicFigure")
	chain("FieldReserve", "Reserve")
	chain("DiscoveryReserve", "Reserve")
	chain("CompanyReserve", "Reserve")

	// --- object properties ---
	op := func(name, domain, rng string) string {
		iri := V(name)
		o.DeclareObjectProperty(iri)
		if domain != "" {
			o.AddDomain(iri, false, V(domain))
		}
		if rng != "" {
			o.AddRange(iri, V(rng))
		}
		return iri
	}
	subOP := func(child, parent string) {
		o.AddSubObjectProperty(owl.PropRef{Prop: V(child)}, owl.PropRef{Prop: V(parent)})
	}
	op("involvedIn", "Agent", "")
	op("operatorForLicence", "Company", "ProductionLicence")
	op("licenseeForLicence", "Company", "ProductionLicence")
	subOP("operatorForLicence", "involvedIn")
	subOP("licenseeForLicence", "involvedIn")
	op("currentOperatorForLicence", "", "")
	subOP("currentOperatorForLicence", "operatorForLicence")
	op("formerOperatorForLicence", "", "")
	subOP("formerOperatorForLicence", "operatorForLicence")

	op("drillingOperatorCompany", "Wellbore", "Company")
	op("wellOperator", "Wellbore", "Company")
	subOP("drillingOperatorCompany", "wellOperator")
	op("drilledInLicence", "Wellbore", "ProductionLicence")
	op("wellboreForDiscovery", "ExplorationWellbore", "Discovery")
	op("wellboreForField", "DevelopmentWellbore", "Field")
	op("drillingFacility", "Wellbore", "Facility")
	op("coreForWellbore", "WellboreCore", "Wellbore")
	op("dstForWellbore", "WellboreDst", "Wellbore")
	op("documentForWellbore", "WellboreDocument", "Wellbore")
	op("mudTestForWellbore", "WellboreMudSample", "Wellbore")
	op("casingForWellbore", "WellboreCasing", "Wellbore")
	op("oilSampleForWellbore", "WellboreOilSample", "Wellbore")
	op("coordinateForWellbore", "WellboreCoordinate", "Wellbore")
	op("historyForWellbore", "WellboreHistoryEntry", "Wellbore")
	op("formationTopForWellbore", "FormationTop", "Wellbore")
	op("photoForCore", "WellboreCorePhoto", "WellboreCore")
	op("stratumForFormationTop", "FormationTop", "LithostratigraphicUnit")
	op("coreStratum", "WellboreCore", "LithostratigraphicUnit")
	op("parentStratum", "LithostratigraphicUnit", "LithostratigraphicUnit")
	generic := func(name string) { op(name, "", "") }
	op("belongsToWell", "Wellbore", "Well")

	op("ownerForField", "Field", "")
	op("operatorForField", "Company", "Field")
	subOP("operatorForField", "involvedIn")
	op("licenseeForField", "Company", "Field")
	subOP("licenseeForField", "involvedIn")
	op("currentFieldOperator", "", "")
	subOP("currentFieldOperator", "operatorForField")
	op("includedInField", "Discovery", "Field")
	op("discoveryWellbore", "Discovery", "ExplorationWellbore")
	op("licenceForField", "Field", "ProductionLicence")
	op("productionForField", "ProductionVolume", "Field")
	op("investmentForField", "Investment", "Field")
	op("reservesForField", "FieldReserve", "Field")
	op("reservesForDiscovery", "DiscoveryReserve", "Discovery")
	op("reservesForCompany", "CompanyReserve", "Company")
	op("reservesInField", "CompanyReserve", "Field")
	op("statusForField", "", "Field")
	op("descriptionForField", "", "Field")
	op("descriptionForDiscovery", "", "Discovery")

	op("licenceeTransfer", "LicenceTransfer", "ProductionLicence")
	op("taskForLicence", "LicenceTask", "ProductionLicence")
	op("phaseForLicence", "", "ProductionLicence")
	op("areaForLicence", "ProductionLicence", "Block")
	op("blockInQuadrant", "Block", "Quadrant")
	op("messageForLicence", "", "PetregLicence")
	op("licenseeForPetregLicence", "Company", "PetregLicence")
	subOP("licenseeForPetregLicence", "involvedIn")
	op("operatorForPetregLicence", "Company", "PetregLicence")
	subOP("operatorForPetregLicence", "involvedIn")

	op("facilityForField", "Facility", "Field")
	op("operatorForFacility", "Company", "MoveableFacility")
	op("pipelineFromFacility", "Pipeline", "Facility")
	op("pipelineToFacility", "Pipeline", "Facility")
	op("ownerForTUF", "Company", "TUF")
	op("operatorForTUF", "Company", "TUF")
	subOP("ownerForTUF", "involvedIn")
	subOP("operatorForTUF", "involvedIn")
	op("licenceForTUF", "TUF", "PetregLicence")

	op("surveyingCompany", "Survey", "Company")
	op("acquisitionForSurvey", "SeismicAcquisition", "Survey")
	op("progressForSurvey", "", "Survey")
	op("coordinateForSurvey", "", "Survey")
	op("prospectInLicence", "Prospect", "ProductionLicence")
	op("areaForDiscovery", "Discovery", "Block")
	op("areaForField", "Field", "Block")
	op("areaForBAA", "BusinessArrangementArea", "Block")
	op("licenseeForBAA", "Company", "BusinessArrangementArea")
	op("operatorForBAA", "Company", "BusinessArrangementArea")
	subOP("licenseeForBAA", "involvedIn")
	subOP("operatorForBAA", "involvedIn")
	op("transferForBAA", "", "BusinessArrangementArea")
	op("netAreaOf", "APAAreaNet", "APAAreaGross")
	op("nameHistoryFor", "", "Company")
	generic("memberOf")
	o.AddInverse(V("coreForWellbore"), V("wellboreOfCore"))
	o.AddInverse(V("includedInField"), V("fieldOfDiscovery"))
	o.AddInverse(V("blockInQuadrant"), V("quadrantHasBlock"))

	// --- existential axioms (tree-witness generators) ---
	ex := func(sub, prop, filler string) {
		o.AddExistential(owl.NamedConcept(V(sub)), V(prop), false, V(filler))
	}
	ex("WellboreCore", "coreForWellbore", "Wellbore")
	ex("WellboreDst", "dstForWellbore", "Wellbore")
	ex("WellboreDocument", "documentForWellbore", "Wellbore")
	ex("FormationTop", "formationTopForWellbore", "Wellbore")
	ex("FormationTop", "stratumForFormationTop", "LithostratigraphicUnit")
	ex("Wellbore", "drillingOperatorCompany", "Company")
	ex("Wellbore", "belongsToWell", "Well")
	ex("DevelopmentWellbore", "wellboreForField", "Field")
	ex("Discovery", "discoveryWellbore", "ExplorationWellbore")
	ex("Field", "licenceForField", "ProductionLicence")
	ex("ProductionLicence", "areaForLicence", "Block")
	ex("Block", "blockInQuadrant", "Quadrant")
	ex("Survey", "surveyingCompany", "Company")
	ex("Pipeline", "pipelineFromFacility", "Facility")
	ex("MonthlyProductionVolume", "productionForField", "Field")
	ex("FieldReserve", "reservesForField", "Field")
	ex("CompanyReserve", "reservesForCompany", "Company")
	ex("Prospect", "prospectInLicence", "ProductionLicence")
	ex("APAAreaNet", "netAreaOf", "APAAreaGross")
	ex("WellboreCorePhoto", "photoForCore", "WellboreCore")

	// --- area cohorts: every located entity specializes by main area ---
	for _, area := range mainAreas {
		a := areaClass(area) // "NorthSea", "NorwegianSea", "BarentsSea"
		sub(a+"Wellbore", "Wellbore")
		sub(a+"Field", "Field")
		sub(a+"Discovery", "Discovery")
		sub(a+"Licence", "ProductionLicence")
		sub(a+"Block", "Block")
		sub(a+"Survey", "Survey")
		sub(a+"Prospect", "Prospect")
	}

	// --- moveable facility kinds mirror the fixed ones ---
	for _, k := range fclKinds {
		sub("Moveable"+facilityClass(k), "MoveableFacility")
	}

	// --- licence lifecycle ---
	for _, ph := range phases {
		sub(titleCase(ph)+"PhaseLicence", "ProductionLicence")
	}
	sub("ActiveLicence", "ProductionLicence")
	sub("ExpiredLicence", "ProductionLicence")

	// --- company nationality cohorts ---
	for _, nc := range nationCodes {
		sub("Company"+nc, "Company")
	}

	// --- wellbore content/status completions ---
	chain("WaterWellbore", "ExplorationWellbore")
	chain("JunkedExplorationWellbore", "JunkedWellbore")
	chain("ProducingOilWellbore", "ProducingWellbore")
	for _, s2 := range []string{"DrillingWellbore", "CompletedWellbore"} {
		sub(s2, "Wellbore")
	}

	// --- stratigraphy sub-epochs: Early/Late refinements per era ---
	for _, era := range eras {
		e := titleCase(era)
		for _, ep := range []string{"Early", "Late"} {
			sub(ep+e+"Formation", e+"Formation")
			sub(ep+e+"Member", e+"Member")
		}
	}

	// --- samples / tests refinements ---
	chain("OilBasedMudSample", "WellboreMudSample")
	chain("WaterBasedMudSample", "WellboreMudSample")
	chain("SyntheticMudSample", "WellboreMudSample")
	for _, c := range casingTypes {
		sub(titleCase(strings.ToLower(c))+"Casing", "WellboreCasing")
	}
	chain("CorePhotoDocument", "WellboreDocument")
	chain("PressReleaseDocument", "WellboreDocument")

	// --- production refinements ---
	chain("OilProductionVolume", "ProductionVolume")
	chain("GasProductionVolume", "ProductionVolume")
	chain("CondensateProductionVolume", "ProductionVolume")
	chain("NGLProductionVolume", "ProductionVolume")
	chain("WaterPipeline", "Pipeline")
	chain("OilGasPipeline", "Pipeline")

	// --- inverse object properties for the core relations ---
	inv := func(p, q string) {
		o.DeclareObjectProperty(V(q))
		o.AddInverse(V(p), V(q))
	}
	inv("drillingOperatorCompany", "companyDrilledWellbore")
	inv("drilledInLicence", "licenceHasWellbore")
	inv("wellboreForField", "fieldHasWellbore")
	inv("wellboreForDiscovery", "discoveryHasWellbore")
	inv("dstForWellbore", "wellboreHasDst")
	inv("documentForWellbore", "wellboreHasDocument")
	inv("formationTopForWellbore", "wellboreHasFormationTop")
	inv("facilityForField", "fieldHasFacility")
	inv("productionForField", "fieldHasProduction")
	inv("investmentForField", "fieldHasInvestment")
	inv("reservesForField", "fieldHasReserves")
	inv("areaForLicence", "blockInLicence")
	inv("licenseeForLicence", "licenceHasLicensee")
	inv("operatorForLicence", "licenceHasOperator")
	inv("surveyingCompany", "companyConductedSurvey")
	inv("acquisitionForSurvey", "surveyHasAcquisition")
	inv("taskForLicence", "licenceHasTask")
	inv("prospectInLicence", "licenceHasProspect")
	inv("pipelineFromFacility", "facilityPipelineOrigin")
	inv("pipelineToFacility", "facilityPipelineDestination")

	// --- additional relations rounding out the property vocabulary ---
	op("supplyBaseForField", "", "Field")
	op("stratumOfCore", "", "")
	subOP("coreStratum", "stratumOfCore")
	op("participantInBAA", "Company", "BusinessArrangementArea")
	subOP("licenseeForBAA", "participantInBAA")
	subOP("operatorForBAA", "participantInBAA")
	op("participantInTUF", "Company", "TUF")
	subOP("ownerForTUF", "participantInTUF")
	subOP("operatorForTUF", "participantInTUF")
	op("responsibleCompany", "", "Company")
	subOP("drillingOperatorCompany", "responsibleCompany")
	op("locatedInArea", "SpatialObject", "Area")
	subOP("areaForField", "locatedInArea")
	subOP("areaForDiscovery", "locatedInArea")
	subOP("areaForBAA", "locatedInArea")

	// --- disjointness (consistency-relevant axioms, requirement O2) ---
	dis := func(a, b string) {
		o.AddDisjoint(owl.NamedConcept(V(a)), owl.NamedConcept(V(b)))
	}
	dis("Point", "Area")
	dis("Agent", "SpatialObject")
	dis("Wellbore", "Field")
	dis("Field", "Discovery")
	dis("ExplorationWellbore", "DevelopmentWellbore")
	dis("ExplorationWellbore", "ShallowWellbore")
	dis("DevelopmentWellbore", "ShallowWellbore")
	dis("FixedFacility", "MoveableFacility")
	dis("OilField", "CondensateField")
	dis("Company", "Facility")
	dis("LithoGroup", "LithoFormation")
	dis("LithoFormation", "LithoMember")
	o.AddDisjointProperties(owl.PropRef{Prop: V("pipelineFromFacility")}, owl.PropRef{Prop: V("pipelineToFacility")})

	// --- data properties: one per FactPages attribute ---
	addDataProps(o)
	return o
}

// addDataProps declares a data property for every non-surrogate attribute
// of the schema, grouped under a small hand-written hierarchy (all date
// attributes under dateValue, all name attributes under name, production
// measures under productionVolume), mirroring how the published ontology
// lifts FactPages columns.
func addDataProps(o *owl.Ontology) {
	o.DeclareDataProperty(V("name"))
	o.DeclareDataProperty(V("dateValue"))
	o.DeclareDataProperty(V("yearValue"))
	o.DeclareDataProperty(V("depthValue"))
	o.DeclareDataProperty(V("productionVolume"))
	o.DeclareDataProperty(V("interestValue"))
	seen := map[string]bool{}
	for _, ts := range schemaSpecs {
		for _, item := range ts.items {
			if strings.HasPrefix(item, "pk=") || strings.HasPrefix(item, "fk=") {
				continue
			}
			col, _, _ := strings.Cut(item, ":")
			lower := strings.ToLower(col)
			if strings.Contains(lower, "npdid") || strings.Contains(lower, "geometry") {
				continue
			}
			iri := V(col)
			if seen[iri] {
				continue
			}
			seen[iri] = true
			o.DeclareDataProperty(iri)
			switch {
			case strings.Contains(lower, "name"):
				o.AddSubDataProperty(iri, V("name"))
			case strings.Contains(lower, "date"):
				o.AddSubDataProperty(iri, V("dateValue"))
			case strings.Contains(lower, "year"):
				o.AddSubDataProperty(iri, V("yearValue"))
			case strings.Contains(lower, "depth"):
				o.AddSubDataProperty(iri, V("depthValue"))
			case strings.Contains(lower, "prd"):
				o.AddSubDataProperty(iri, V("productionVolume"))
			case strings.Contains(lower, "interest") || strings.Contains(lower, "share"):
				o.AddSubDataProperty(iri, V("interestValue"))
			}
		}
	}
	// Canonical benchmark aliases used by the query set.
	alias := map[string]string{
		"wellboreCompletionYear": "wlbCompletionYear",
		"wellboreEntryYear":      "wlbEntryYear",
		"coresTotalLength":       "wlbTotalCoreLength",
		"dateLicenceGranted":     "prlDateGranted",
		"dateUpdated":            "wlbDateUpdated",
	}
	for a, base := range alias {
		o.DeclareDataProperty(V(a))
		o.AddSubDataProperty(V(base), V(a))
		o.AddSubDataProperty(V(a), V(base))
	}
}

// areaClass converts a main-area vocabulary value to a class-name prefix
// ("North sea" -> "NorthSea").
func areaClass(area string) string {
	parts := strings.Fields(area)
	var sb strings.Builder
	for _, p := range parts {
		p = strings.ToLower(p)
		sb.WriteString(strings.ToUpper(p[:1]) + p[1:])
	}
	return sb.String()
}

func titleCase(s string) string {
	s = strings.ToLower(s)
	return strings.ToUpper(s[:1]) + s[1:]
}

// facilityClass converts a FactPages facility kind to a class local name
// ("JACKET 4 LEGS" -> "Jacket4LegsFacility").
func facilityClass(kind string) string {
	parts := strings.FieldsFunc(kind, func(r rune) bool { return r == ' ' || r == '-' || r == '/' })
	var sb strings.Builder
	for _, p := range parts {
		p = strings.ToLower(p)
		sb.WriteString(strings.ToUpper(p[:1]) + p[1:])
	}
	sb.WriteString("Facility")
	return sb.String()
}
