package rewrite

import (
	"fmt"
	"sort"

	"npdbench/internal/owl"
)

// Rewriter turns a CQ into the UCQ embedding the TBox inferences.
type Rewriter struct {
	Onto *owl.Ontology
	// ExpandHierarchy enables the classic per-atom UCQ expansion. Engines
	// using T-mappings (the default in Ontop and in this reproduction)
	// leave it off, because the hierarchy closure already lives in the
	// saturated mapping.
	ExpandHierarchy bool
	// Existential enables tree-witness rewriting (the paper evaluates
	// systems with this both on and off).
	Existential bool
	// MaxCQs caps the size of the produced UCQ (0 = default 4096); the
	// exponential blow-up the paper warns about is thereby bounded.
	MaxCQs int
}

// Result carries the rewritten UCQ and the quality metrics of the paper's
// Table 1 (Simplicity R-Query: #CQs in the rewriting, #tree witnesses).
type Result struct {
	UCQ           UCQ
	TreeWitnesses int
	// CQCount is the number of CQs in the rewriting (the "73 intermediate
	// queries" measure quoted for q6 in the paper).
	CQCount int
	// Truncated reports that MaxCQs was hit.
	Truncated bool
}

func (rw *Rewriter) maxCQs() int {
	if rw.MaxCQs > 0 {
		return rw.MaxCQs
	}
	return 4096
}

// Rewrite computes the UCQ rewriting of cq. protected lists variables that
// must not be folded into tree witnesses (answer variables are always
// protected; callers add filter/optional variables).
func (rw *Rewriter) Rewrite(cq *CQ, protected []string) (*Result, error) {
	res := &Result{}
	base := UCQ{cq.Clone()}

	if rw.Existential {
		tws := rw.findTreeWitnesses(cq, protected)
		res.TreeWitnesses = len(tws)
		base = rw.applyTreeWitnesses(cq, tws)
	}

	if rw.ExpandHierarchy {
		var expanded UCQ
		truncated := false
		for _, q := range base {
			ex, tr := rw.expandHierarchy(q, rw.maxCQs()-len(expanded))
			expanded = append(expanded, ex...)
			truncated = truncated || tr
			if len(expanded) >= rw.maxCQs() {
				truncated = true
				break
			}
		}
		res.Truncated = truncated
		base = expanded
	}

	base = dedupeCQs(base)
	base = minimizeUCQ(base)
	res.UCQ = base
	res.CQCount = len(base)
	if res.CQCount == 0 {
		return nil, fmt.Errorf("rewrite: empty rewriting")
	}
	return res, nil
}

// AtomAlternatives returns the atoms entailing a (including a itself),
// using fresh variable names drawn from seq. Triple-store engines use it
// to expand each query atom into a union independently — polynomial in the
// query size, unlike the cross-product UCQ expansion.
func (rw *Rewriter) AtomAlternatives(a Atom, seq *int) []Atom {
	return rw.atomAlternatives(a, func() string {
		*seq++
		return fmt.Sprintf("_ha%d", *seq)
	})
}

// ---- hierarchy expansion ----

// atomAlternatives returns the atoms entailing a (including a itself).
func (rw *Rewriter) atomAlternatives(a Atom, fresh func() string) []Atom {
	switch a.Kind {
	case ClassAtom:
		subs := rw.Onto.SubConceptsOf(owl.NamedConcept(a.Pred))
		out := make([]Atom, 0, len(subs))
		for _, c := range subs {
			switch {
			case c.IsNamed():
				out = append(out, Atom{Kind: ClassAtom, Pred: c.Class, S: a.S})
			case c.IsData:
				out = append(out, Atom{Kind: DataPropAtom, Pred: c.Prop, S: a.S, O: Term{Var: fresh()}})
			case c.Inverse:
				out = append(out, Atom{Kind: ObjPropAtom, Pred: c.Prop, S: Term{Var: fresh()}, O: a.S})
			default:
				out = append(out, Atom{Kind: ObjPropAtom, Pred: c.Prop, S: a.S, O: Term{Var: fresh()}})
			}
		}
		return out
	case ObjPropAtom:
		subs := rw.Onto.SubPropertiesOf(owl.PropRef{Prop: a.Pred})
		out := make([]Atom, 0, len(subs))
		for _, p := range subs {
			if p.Inverse {
				out = append(out, Atom{Kind: ObjPropAtom, Pred: p.Prop, S: a.O, O: a.S})
			} else {
				out = append(out, Atom{Kind: ObjPropAtom, Pred: p.Prop, S: a.S, O: a.O})
			}
		}
		return out
	case DataPropAtom:
		subs := rw.Onto.SubDataPropertiesOf(a.Pred)
		out := make([]Atom, 0, len(subs))
		for _, p := range subs {
			out = append(out, Atom{Kind: DataPropAtom, Pred: p, S: a.S, O: a.O})
		}
		return out
	}
	return []Atom{a}
}

// expandHierarchy produces the cartesian expansion of the CQ's atoms,
// capped at limit CQs.
func (rw *Rewriter) expandHierarchy(cq *CQ, limit int) (UCQ, bool) {
	if limit <= 0 {
		return nil, true
	}
	freshSeq := 0
	fresh := func() string {
		freshSeq++
		return fmt.Sprintf("_h%d", freshSeq)
	}
	alts := make([][]Atom, len(cq.Atoms))
	for i, a := range cq.Atoms {
		alts[i] = rw.atomAlternatives(a, fresh)
	}
	out := UCQ{}
	truncated := false
	var build func(i int, acc []Atom)
	build = func(i int, acc []Atom) {
		if len(out) >= limit {
			truncated = true
			return
		}
		if i == len(alts) {
			out = append(out, &CQ{Atoms: append([]Atom{}, acc...), Answer: cq.Answer})
			return
		}
		for _, a := range alts[i] {
			build(i+1, append(acc, a))
			if truncated {
				return
			}
		}
	}
	build(0, nil)
	return out, truncated
}

// minimizeUCQ removes CQs subsumed by another disjunct: when cq2's atoms
// are a subset of cq1's (same answer variables), every answer of cq1 is an
// answer of cq2, so cq1 is redundant. This identity-homomorphism case is
// exactly what makes tree-witness rewritings tractable downstream (the
// paper's "semantic query optimisation in the SPARQL-to-SQL translation"):
// the partially-folded disjuncts of a tree-witness expansion are all
// subsumed by the fully-folded one whenever the generator atoms already
// occur in the query.
func minimizeUCQ(u UCQ) UCQ {
	atomSets := make([]map[string]bool, len(u))
	for i, q := range u {
		s := make(map[string]bool, len(q.Atoms))
		for _, a := range q.Atoms {
			s[a.String()] = true
		}
		atomSets[i] = s
	}
	drop := make([]bool, len(u))
	for i := range u {
		if drop[i] {
			continue
		}
		for j := range u {
			if i == j || drop[j] {
				continue
			}
			// drop i when j ⊆ i strictly, or j == i with j earlier.
			if isSubset(atomSets[j], atomSets[i]) &&
				(len(atomSets[j]) < len(atomSets[i]) || j < i) {
				drop[i] = true
				break
			}
		}
	}
	out := make(UCQ, 0, len(u))
	for i, q := range u {
		if !drop[i] {
			out = append(out, q)
		}
	}
	return out
}

func isSubset(a, b map[string]bool) bool {
	if len(a) > len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// dedupeCQs removes syntactically identical CQs.
func dedupeCQs(u UCQ) UCQ {
	seen := map[string]bool{}
	out := make(UCQ, 0, len(u))
	for _, q := range u {
		q.Normalize()
		k := canonicalKey(q)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, q)
	}
	return out
}

func canonicalKey(q *CQ) string {
	parts := make([]string, len(q.Atoms))
	for i, a := range q.Atoms {
		parts[i] = a.String()
	}
	sort.Strings(parts)
	return fmt.Sprint(parts)
}
