package rewrite

import (
	"fmt"

	"npdbench/internal/owl"
	"npdbench/internal/r2rml"
)

// Saturate compiles the ontology's hierarchy inferences into the mapping
// (Ontop's T-mappings, [Rodriguez-Muro & Calvanese 2012], cited by the
// paper as the technique that makes the starting phase critical): for each
// ontology term, mapping assertions are added deriving its instances from
// every subsumed term's mappings. After saturation, hierarchy reasoning at
// query time is unnecessary; only existential reasoning (tree witnesses)
// remains.
//
// The returned mapping shares the logical sources of the input.
func Saturate(mp *r2rml.Mapping, onto *owl.Ontology) *r2rml.Mapping {
	out := r2rml.NewMapping()
	for k, v := range mp.Prefixes {
		out.Prefixes[k] = v
	}
	// Copy originals.
	out.Maps = append(out.Maps, mp.Maps...)

	seen := make(map[string]bool) // dedup key for derived assertions
	keyOf := func(term, source, subj, obj string) string {
		return term + "\x00" + source + "\x00" + subj + "\x00" + obj
	}
	for _, m := range mp.Maps {
		for _, c := range m.Classes {
			seen[keyOf(c, m.SourceDescription(), m.Subject.String(), "")] = true
		}
		for _, po := range m.POs {
			seen[keyOf(po.Predicate, m.SourceDescription(), m.Subject.String(), po.Object.String())] = true
		}
	}
	derived := 0
	addClass := func(class string, src *r2rml.TriplesMap, subject r2rml.TermMap) {
		k := keyOf(class, src.SourceDescription(), subject.String(), "")
		if seen[k] {
			return
		}
		seen[k] = true
		derived++
		out.Add(&r2rml.TriplesMap{
			Name:    fmt.Sprintf("tmap-%s-%d", localName(class), derived),
			Table:   src.Table,
			SQL:     src.SQL,
			Subject: subject,
			Classes: []string{class},
		})
	}
	addProp := func(prop string, src *r2rml.TriplesMap, subject r2rml.TermMap, object r2rml.TermMap) {
		k := keyOf(prop, src.SourceDescription(), subject.String(), object.String())
		if seen[k] {
			return
		}
		seen[k] = true
		derived++
		out.Add(&r2rml.TriplesMap{
			Name:    fmt.Sprintf("tmap-%s-%d", localName(prop), derived),
			Table:   src.Table,
			SQL:     src.SQL,
			Subject: subject,
			POs:     []r2rml.PredicateObject{{Predicate: prop, Object: object}},
		})
	}

	// Classes: gather from all subsumed basic concepts.
	for _, class := range onto.ClassNames() {
		for _, sub := range onto.SubConceptsOf(owl.NamedConcept(class)) {
			switch {
			case sub.IsNamed():
				if sub.Class == class {
					continue
				}
				for _, m := range mp.Maps {
					for _, c := range m.Classes {
						if c == sub.Class {
							addClass(class, m, m.Subject)
						}
					}
				}
			case sub.IsData:
				for _, m := range mp.Maps {
					for _, po := range m.POs {
						if po.Predicate == sub.Prop {
							addClass(class, m, m.Subject)
						}
					}
				}
			case sub.Inverse:
				// ∃R⁻ ⊑ class: objects of R are instances.
				for _, m := range mp.Maps {
					for _, po := range m.POs {
						if po.Predicate == sub.Prop && po.Object.Kind == r2rml.IRITemplate {
							addClass(class, m, po.Object)
						}
					}
				}
			default:
				// ∃R ⊑ class: subjects of R are instances.
				for _, m := range mp.Maps {
					for _, po := range m.POs {
						if po.Predicate == sub.Prop {
							addClass(class, m, m.Subject)
						}
					}
				}
			}
		}
	}

	// Object properties: gather from subsumed (possibly inverted) props.
	for _, prop := range onto.ObjectPropertyNames() {
		for _, sub := range onto.SubPropertiesOf(owl.PropRef{Prop: prop}) {
			if sub.Prop == prop && !sub.Inverse {
				continue
			}
			for _, m := range mp.Maps {
				for _, po := range m.POs {
					if po.Predicate != sub.Prop {
						continue
					}
					if sub.Inverse {
						// prop(x,y) derived from sub(y,x): swap; needs an
						// IRI-valued object.
						if po.Object.Kind != r2rml.IRITemplate {
							continue
						}
						addProp(prop, m, po.Object, m.Subject)
					} else {
						addProp(prop, m, m.Subject, po.Object)
					}
				}
			}
		}
	}

	// Data properties.
	for _, prop := range onto.DataPropertyNames() {
		for _, sub := range onto.SubDataPropertiesOf(prop) {
			if sub == prop {
				continue
			}
			for _, m := range mp.Maps {
				for _, po := range m.POs {
					if po.Predicate == sub {
						addProp(prop, m, m.Subject, po.Object)
					}
				}
			}
		}
	}
	return OptimizeMapping(out)
}
