package rewrite

import (
	"strings"
	"testing"

	"npdbench/internal/owl"
	"npdbench/internal/r2rml"
	"npdbench/internal/rdf"
	"npdbench/internal/sparql"
)

const ns = "http://test/"

func testOntology() *owl.Ontology {
	o := owl.New(ns)
	o.AddSubClass(owl.NamedConcept(ns+"Student"), owl.NamedConcept(ns+"Person"))
	o.AddSubClass(owl.NamedConcept(ns+"Professor"), owl.NamedConcept(ns+"Person"))
	o.AddDomain(ns+"teaches", false, ns+"Professor")
	o.AddRange(ns+"teaches", ns+"Course")
	o.AddSubObjectProperty(owl.PropRef{Prop: ns + "lectures"}, owl.PropRef{Prop: ns + "teaches"})
	o.AddInverse(ns+"teaches", ns+"taughtBy")
	o.AddExistential(owl.NamedConcept(ns+"Professor"), ns+"teaches", false, ns+"Course")
	o.DeclareDataProperty(ns + "name")
	return o
}

func parseBGP(t *testing.T, src string, onto *owl.Ontology) *CQ {
	t.Helper()
	pm := rdf.StandardPrefixes()
	pm[""] = ns
	q, err := sparql.Parse(src, pm)
	if err != nil {
		t.Fatal(err)
	}
	bgp, ok := q.Pattern.(*sparql.BGP)
	if !ok {
		t.Fatalf("pattern is %T, want BGP", q.Pattern)
	}
	var answer []string
	for _, v := range sparql.PatternVars(bgp) {
		if !strings.HasPrefix(v, "_bn") {
			answer = append(answer, v)
		}
	}
	cq, err := FromBGP(bgp, onto, answer)
	if err != nil {
		t.Fatal(err)
	}
	return cq
}

func TestHierarchyExpansion(t *testing.T) {
	onto := testOntology()
	rw := &Rewriter{Onto: onto, ExpandHierarchy: true}
	cq := parseBGP(t, `SELECT ?x WHERE { ?x a :Person }`, onto)
	res, err := rw.Rewrite(cq, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Person(x) expands to: Person, Student, Professor, ∃teaches (domain),
	// ∃lectures (⊑ teaches), ∃taughtBy⁻ (≡ teaches)... at least 5 CQs.
	if res.CQCount < 5 {
		t.Fatalf("CQ count = %d, want >= 5\n%s", res.CQCount, res.UCQ)
	}
	// one disjunct must be the property atom teaches(x, fresh)
	found := false
	for _, q := range res.UCQ {
		for _, a := range q.Atoms {
			if a.Kind == ObjPropAtom && a.Pred == ns+"teaches" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("expected a teaches-atom disjunct:\n%s", res.UCQ)
	}
}

func TestPropertyHierarchyExpansion(t *testing.T) {
	onto := testOntology()
	rw := &Rewriter{Onto: onto, ExpandHierarchy: true}
	cq := parseBGP(t, `SELECT ?x ?y WHERE { ?x :teaches ?y }`, onto)
	res, err := rw.Rewrite(cq, nil)
	if err != nil {
		t.Fatal(err)
	}
	// teaches(x,y) expands by lectures(x,y) and taughtBy(y,x).
	var preds []string
	swapped := false
	for _, q := range res.UCQ {
		for _, a := range q.Atoms {
			preds = append(preds, a.Pred)
			if a.Pred == ns+"taughtBy" && a.S.Var == "y" && a.O.Var == "x" {
				swapped = true
			}
		}
	}
	if len(res.UCQ) != 3 {
		t.Fatalf("UCQ size = %d, want 3 (%v)", len(res.UCQ), preds)
	}
	if !swapped {
		t.Fatalf("inverse property must swap arguments: %s", res.UCQ)
	}
}

func TestTreeWitnessDetection(t *testing.T) {
	onto := testOntology()
	rw := &Rewriter{Onto: onto, Existential: true}
	// ?p teaches some course: the course variable is non-distinguished.
	cq := parseBGP(t, `SELECT ?p WHERE { ?p a :Professor . ?p :teaches [ a :Course ] }`, onto)
	res, err := rw.Rewrite(cq, []string{"p"})
	if err != nil {
		t.Fatal(err)
	}
	if res.TreeWitnesses != 1 {
		t.Fatalf("tree witnesses = %d, want 1", res.TreeWitnesses)
	}
	// The minimized UCQ is the single folded CQ {Professor(p)}: the folded
	// disjunct subsumes the unfolded one.
	if len(res.UCQ) != 1 || len(res.UCQ[0].Atoms) != 1 {
		t.Fatalf("expected minimized UCQ with one 1-atom CQ, got:\n%s", res.UCQ)
	}
	if res.UCQ[0].Atoms[0].Pred != ns+"Professor" {
		t.Fatalf("folded CQ should be Professor(p): %s", res.UCQ[0])
	}
}

func TestTreeWitnessProtectedVariable(t *testing.T) {
	onto := testOntology()
	rw := &Rewriter{Onto: onto, Existential: true}
	// same query but the course variable is an answer variable: no folding.
	cq := parseBGP(t, `SELECT ?p ?c WHERE { ?p a :Professor . ?p :teaches ?c . ?c a :Course }`, onto)
	res, err := rw.Rewrite(cq, []string{"p", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if res.TreeWitnesses != 0 {
		t.Fatalf("answer variables must not fold: tw = %d", res.TreeWitnesses)
	}
}

func TestTreeWitnessRejectsMultiRoot(t *testing.T) {
	onto := testOntology()
	rw := &Rewriter{Onto: onto, Existential: true}
	// the existential variable connects two different roots: not a tree.
	cq := parseBGP(t, `SELECT ?p ?q WHERE { ?p :teaches ?c . ?q :teaches ?c }`, onto)
	res, err := rw.Rewrite(cq, []string{"p", "q"})
	if err != nil {
		t.Fatal(err)
	}
	if res.TreeWitnesses != 0 {
		t.Fatalf("multi-root variable must not fold: tw = %d", res.TreeWitnesses)
	}
}

func TestMinimizeUCQRemovesSubsumed(t *testing.T) {
	a1 := Atom{Kind: ClassAtom, Pred: ns + "A", S: Term{Var: "x"}}
	a2 := Atom{Kind: ObjPropAtom, Pred: ns + "p", S: Term{Var: "x"}, O: Term{Var: "y"}}
	small := &CQ{Atoms: []Atom{a1}, Answer: []string{"x"}}
	big := &CQ{Atoms: []Atom{a1, a2}, Answer: []string{"x"}}
	out := minimizeUCQ(UCQ{big, small})
	if len(out) != 1 || len(out[0].Atoms) != 1 {
		t.Fatalf("expected only the small CQ to survive: %s", out)
	}
}

func TestNormalizeRemovesDuplicateAtoms(t *testing.T) {
	a := Atom{Kind: ClassAtom, Pred: ns + "A", S: Term{Var: "x"}}
	q := &CQ{Atoms: []Atom{a, a, a}}
	q.Normalize()
	if len(q.Atoms) != 1 {
		t.Fatalf("atoms = %d, want 1", len(q.Atoms))
	}
}

func TestMaxCQsTruncation(t *testing.T) {
	onto := owl.New(ns)
	// one class with many subclasses
	for i := 0; i < 50; i++ {
		sub := ns + "S" + string(rune('A'+i%26)) + string(rune('A'+i/26))
		onto.AddSubClass(owl.NamedConcept(sub), owl.NamedConcept(ns+"Top"))
	}
	rw := &Rewriter{Onto: onto, ExpandHierarchy: true, MaxCQs: 10}
	cq := &CQ{
		Atoms:  []Atom{{Kind: ClassAtom, Pred: ns + "Top", S: Term{Var: "x"}}},
		Answer: []string{"x"},
	}
	res, err := rw.Rewrite(cq, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("expected truncation")
	}
	if res.CQCount > 10 {
		t.Fatalf("CQ count %d exceeds cap", res.CQCount)
	}
}

func TestSaturateDerivesHierarchy(t *testing.T) {
	onto := testOntology()
	mp := r2rml.MustParseMapping(`
[PrefixDeclaration]
t: http://test/

[MappingDeclaration]
mappingId students
target    t:person/{id} a t:Student .
source    SELECT id FROM students

mappingId teaching
target    t:person/{id} t:lectures t:course/{course} .
source    SELECT id, course FROM teaching
`)
	sat := Saturate(mp, onto)
	// Person must now have assertions (from Student and from ∃teaches ⊒ ∃lectures).
	persons := 0
	teaches := 0
	taughtBy := 0
	for _, m := range sat.Maps {
		for _, c := range m.Classes {
			if c == ns+"Person" {
				persons++
			}
		}
		for _, po := range m.POs {
			if po.Predicate == ns+"teaches" {
				teaches++
			}
			if po.Predicate == ns+"taughtBy" {
				taughtBy++
			}
		}
	}
	if persons == 0 {
		t.Fatal("saturation must derive Person assertions")
	}
	if teaches == 0 {
		t.Fatal("saturation must derive teaches from lectures")
	}
	if taughtBy == 0 {
		t.Fatal("saturation must derive the inverse taughtBy with swapped terms")
	}
}

func TestOptimizeMappingDropsRedundant(t *testing.T) {
	mp := r2rml.NewMapping()
	mp.Add(&r2rml.TriplesMap{
		Name: "all", Table: "w",
		Subject: r2rml.IRIMap(ns + "w/{id}"),
		Classes: []string{ns + "W"},
	})
	mp.Add(&r2rml.TriplesMap{
		Name: "cond", SQL: "SELECT id FROM w WHERE kind = 'X'",
		Subject: r2rml.IRIMap(ns + "w/{id}"),
		Classes: []string{ns + "W"},
	})
	out := OptimizeMapping(mp)
	n := 0
	for _, m := range out.Maps {
		n += len(m.Classes)
	}
	if n != 1 {
		t.Fatalf("assertions for W = %d, want 1 (conditional subsumed by full scan)", n)
	}
}

func TestFromBGPRejectsVariablePredicate(t *testing.T) {
	onto := testOntology()
	pm := rdf.StandardPrefixes()
	pm[""] = ns
	q, err := sparql.Parse(`SELECT ?x WHERE { ?x ?p ?y }`, pm)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromBGP(q.Pattern.(*sparql.BGP), onto, nil); err == nil {
		t.Fatal("variable predicates must be rejected")
	}
}

func TestSaturateDerivesRangeClasses(t *testing.T) {
	// Course instances must be derivable from objects of teaches (range
	// axiom ∃teaches⁻ ⊑ Course) and from objects of lectures (⊑ teaches).
	onto := testOntology()
	mp := r2rml.MustParseMapping(`
[PrefixDeclaration]
t: http://test/

[MappingDeclaration]
mappingId teaching
target    t:person/{id} t:lectures t:course/{course} .
source    SELECT id, course FROM teaching
`)
	sat := Saturate(mp, onto)
	courseFromObject := false
	profFromSubject := false
	for _, m := range sat.Maps {
		for _, c := range m.Classes {
			if c == ns+"Course" && m.Subject.Template.String() == "http://test/course/{course}" {
				courseFromObject = true
			}
			if c == ns+"Professor" && m.Subject.Template.String() == "http://test/person/{id}" {
				profFromSubject = true
			}
		}
	}
	if !courseFromObject {
		t.Fatal("range axiom must derive Course from lectures objects")
	}
	if !profFromSubject {
		t.Fatal("domain axiom must derive Professor from lectures subjects")
	}
}

func TestSaturateSkipsLiteralObjectsForInverse(t *testing.T) {
	// A literal-valued property cannot feed an ∃R⁻ class derivation.
	onto := owl.New(ns)
	onto.DeclareDataProperty(ns + "label")
	onto.AddRange(ns+"p", ns+"Target")
	mp := r2rml.NewMapping()
	mp.Add(&r2rml.TriplesMap{
		Name: "m", Table: "t",
		Subject: r2rml.IRIMap(ns + "x/{id}"),
		POs: []r2rml.PredicateObject{
			{Predicate: ns + "p", Object: r2rml.ColumnMap("v")},
		},
	})
	sat := Saturate(mp, onto)
	for _, m := range sat.Maps {
		for _, c := range m.Classes {
			if c == ns+"Target" && m.Subject.Kind == r2rml.LiteralColumn {
				t.Fatal("literal object used as class subject")
			}
		}
	}
}

func TestTreeWitnessGeneratorsAcrossHierarchy(t *testing.T) {
	// Lecturer ⊑ Professor ⊑ ∃teaches.Course: a Lecturer-rooted query
	// still folds, and the folded CQ keeps the root atom.
	onto := testOntology()
	onto.AddSubClass(owl.NamedConcept(ns+"Lecturer2"), owl.NamedConcept(ns+"Professor"))
	rw := &Rewriter{Onto: onto, Existential: true}
	cq := parseBGP(t, `SELECT ?p WHERE { ?p a :Lecturer2 . ?p :teaches [ a :Course ] }`, onto)
	res, err := rw.Rewrite(cq, []string{"p"})
	if err != nil {
		t.Fatal(err)
	}
	if res.TreeWitnesses != 1 {
		t.Fatalf("tw = %d", res.TreeWitnesses)
	}
	// minimized: Lecturer2(p) ∧ Professor(p) — generator Professor is not
	// already implied syntactically, so both atoms remain.
	found := false
	for _, q := range res.UCQ {
		has2, hasProf := false, false
		for _, a := range q.Atoms {
			if a.Pred == ns+"Lecturer2" {
				has2 = true
			}
			if a.Pred == ns+"Professor" {
				hasProf = true
			}
		}
		if has2 && hasProf && len(q.Atoms) == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected folded disjunct {Lecturer2(p), Professor(p)}:\n%s", res.UCQ)
	}
}
