package rewrite

import (
	"sort"
	"strings"

	"npdbench/internal/r2rml"
	"npdbench/internal/sqldb"
)

// OptimizeMapping removes redundant mapping assertions: an assertion for a
// term is dropped when another assertion for the same term, with the same
// subject (and object) templates, draws from the same base table under a
// WHERE clause whose conjuncts are a subset of this one's — its rows are a
// superset. This is the T-mapping optimization of Ontop the paper refers
// to ("the opportunity to apply different optimization on the mappings at
// loading time"): without it, a saturated NPD mapping asserts
// :ExplorationWellbore once per conditional subclass of the same table,
// and every class atom in a query multiplies into dozens of redundant
// union arms.
//
// The containment test is deliberately conservative: only single-table
// sources are compared, and containment is syntactic conjunct-set
// inclusion (the unrestricted source is the empty-set special case;
// equal conjunct sets collapse to one assertion).
func OptimizeMapping(mp *r2rml.Mapping) *r2rml.Mapping {
	type srcShape struct {
		simple bool
		table  string
		conjs  map[string]bool
	}
	shapeOf := func(m *r2rml.TriplesMap) srcShape {
		if m.Table != "" {
			return srcShape{simple: true, table: strings.ToLower(m.Table), conjs: map[string]bool{}}
		}
		stmt, err := m.LogicalSQL()
		if err != nil || stmt.Union != nil || len(stmt.GroupBy) > 0 ||
			stmt.Limit >= 0 || stmt.Distinct || len(stmt.From) != 1 {
			return srcShape{}
		}
		bt, ok := stmt.From[0].(*sqldb.BaseTable)
		if !ok {
			return srcShape{}
		}
		conjs := map[string]bool{}
		for _, cj := range sqldb.Conjuncts(stmt.Where) {
			conjs[sqldb.QualifyColumns(cj, "").String()] = true
		}
		return srcShape{simple: true, table: strings.ToLower(bt.Name), conjs: conjs}
	}
	subset := func(a, b map[string]bool) bool {
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	}

	// assertion identifies one class or PO assertion inside the mapping.
	type assertion struct {
		mapIdx int
		isPO   bool
		idx    int // index into Classes or POs
		shape  srcShape
		subj   string
		obj    string
	}
	byTerm := make(map[string][]assertion)
	for mi, m := range mp.Maps {
		sh := shapeOf(m)
		for ci, c := range m.Classes {
			byTerm[c] = append(byTerm[c], assertion{mapIdx: mi, idx: ci, shape: sh, subj: m.Subject.String()})
		}
		for pi, po := range m.POs {
			byTerm[po.Predicate] = append(byTerm[po.Predicate], assertion{
				mapIdx: mi, isPO: true, idx: pi, shape: sh,
				subj: m.Subject.String(), obj: po.Object.String(),
			})
		}
	}

	dropClass := make(map[[2]int]bool) // (mapIdx, classIdx)
	dropPO := make(map[[2]int]bool)
	terms := make([]string, 0, len(byTerm))
	for t := range byTerm {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	for _, term := range terms {
		asserts := byTerm[term]
		// group by (table, subj, obj); within a group a no-WHERE assertion
		// subsumes everything else, and equal-WHERE duplicates collapse.
		type gkey struct{ table, subj, obj string }
		groups := make(map[gkey][]assertion)
		for _, a := range asserts {
			if !a.shape.simple {
				continue
			}
			k := gkey{a.shape.table, a.subj, a.obj}
			groups[k] = append(groups[k], a)
		}
		for _, g := range groups {
			if len(g) < 2 {
				continue
			}
			keep := make([]bool, len(g))
			for i := range keep {
				keep[i] = true
			}
			for i := range g {
				for j := range g {
					if i == j || !keep[j] {
						continue
					}
					if !subset(g[j].shape.conjs, g[i].shape.conjs) {
						continue
					}
					if len(g[j].shape.conjs) == len(g[i].shape.conjs) && j > i {
						continue // equal conjunct sets: keep the earlier one
					}
					keep[i] = false
					break
				}
			}
			for i, a := range g {
				if keep[i] {
					continue
				}
				if a.isPO {
					dropPO[[2]int{a.mapIdx, a.idx}] = true
				} else {
					dropClass[[2]int{a.mapIdx, a.idx}] = true
				}
			}
		}
	}
	if len(dropClass) == 0 && len(dropPO) == 0 {
		return mp
	}

	out := r2rml.NewMapping()
	for k, v := range mp.Prefixes {
		out.Prefixes[k] = v
	}
	for mi, m := range mp.Maps {
		nm := &r2rml.TriplesMap{Name: m.Name, Table: m.Table, SQL: m.SQL, Subject: m.Subject}
		for ci, c := range m.Classes {
			if !dropClass[[2]int{mi, ci}] {
				nm.Classes = append(nm.Classes, c)
			}
		}
		for pi, po := range m.POs {
			if !dropPO[[2]int{mi, pi}] {
				nm.POs = append(nm.POs, po)
			}
		}
		if len(nm.Classes) > 0 || len(nm.POs) > 0 {
			out.Add(nm)
		}
	}
	return out
}
