package core

import (
	"strings"
	"testing"

	"npdbench/internal/owl"
	"npdbench/internal/r2rml"
	"npdbench/internal/rdf"
	"npdbench/internal/sqldb"
)

const exNS = "http://example.org/"

// exampleSpec builds the paper's running example (Sect. 4, Example 4.1):
// database D, mappings M1–M6, plus a small ontology with a hierarchy and an
// existential axiom to exercise reasoning.
func exampleSpec(t *testing.T) Spec {
	t.Helper()
	db := sqldb.NewDatabase("example")
	mustCreate := func(def *sqldb.TableDef) {
		t.Helper()
		if _, err := db.CreateTable(def); err != nil {
			t.Fatal(err)
		}
	}
	mustCreate(&sqldb.TableDef{
		Name: "TEmployee",
		Columns: []sqldb.Column{
			{Name: "id", Type: sqldb.TInt, NotNull: true},
			{Name: "name", Type: sqldb.TText},
			{Name: "branch", Type: sqldb.TText},
		},
		PrimaryKey: []int{0},
	})
	mustCreate(&sqldb.TableDef{
		Name: "TProduct",
		Columns: []sqldb.Column{
			{Name: "product", Type: sqldb.TText, NotNull: true},
			{Name: "size", Type: sqldb.TText},
		},
		PrimaryKey: []int{0},
	})
	mustCreate(&sqldb.TableDef{
		Name: "TAssignment",
		Columns: []sqldb.Column{
			{Name: "branch", Type: sqldb.TText, NotNull: true},
			{Name: "task", Type: sqldb.TText, NotNull: true},
		},
		PrimaryKey: []int{0, 1},
	})
	mustCreate(&sqldb.TableDef{
		Name: "TSellsProduct",
		Columns: []sqldb.Column{
			{Name: "id", Type: sqldb.TInt, NotNull: true},
			{Name: "product", Type: sqldb.TText, NotNull: true},
		},
		PrimaryKey: []int{0, 1},
		ForeignKeys: []sqldb.ForeignKey{
			{Columns: []int{0}, RefTable: "TEmployee", RefColumns: []int{0}},
			{Columns: []int{1}, RefTable: "TProduct", RefColumns: []int{0}},
		},
	})
	ins := func(table string, rows ...sqldb.Row) {
		t.Helper()
		for _, r := range rows {
			if err := db.Insert(table, r); err != nil {
				t.Fatal(err)
			}
		}
	}
	ins("TEmployee",
		sqldb.Row{sqldb.NewInt(1), sqldb.NewString("John"), sqldb.NewString("B1")},
		sqldb.Row{sqldb.NewInt(2), sqldb.NewString("Lisa"), sqldb.NewString("B1")},
	)
	ins("TProduct",
		sqldb.Row{sqldb.NewString("p1"), sqldb.NewString("big")},
		sqldb.Row{sqldb.NewString("p2"), sqldb.NewString("big")},
		sqldb.Row{sqldb.NewString("p3"), sqldb.NewString("small")},
		sqldb.Row{sqldb.NewString("p4"), sqldb.NewString("big")},
	)
	ins("TAssignment",
		sqldb.Row{sqldb.NewString("B1"), sqldb.NewString("task1")},
		sqldb.Row{sqldb.NewString("B1"), sqldb.NewString("task2")},
		sqldb.Row{sqldb.NewString("B2"), sqldb.NewString("task1")},
		sqldb.Row{sqldb.NewString("B2"), sqldb.NewString("task2")},
	)
	ins("TSellsProduct",
		sqldb.Row{sqldb.NewInt(1), sqldb.NewString("p1")},
		sqldb.Row{sqldb.NewInt(1), sqldb.NewString("p2")},
		sqldb.Row{sqldb.NewInt(2), sqldb.NewString("p2")},
		sqldb.Row{sqldb.NewInt(2), sqldb.NewString("p3")},
	)

	// Ontology: Employee ⊑ Person; SellsProduct domain Employee;
	// Employee ⊑ ∃WorksFor.Branch (existential — tree witness source).
	onto := owl.New(exNS + "onto")
	onto.AddSubClass(owl.NamedConcept(exNS+"Employee"), owl.NamedConcept(exNS+"Person"))
	onto.AddDomain(exNS+"SellsProduct", false, exNS+"Employee")
	onto.AddExistential(owl.NamedConcept(exNS+"Employee"), exNS+"WorksFor", false, exNS+"Branch")
	onto.DeclareClass(exNS + "ProductSize")
	onto.DeclareClass(exNS + "Branch")
	onto.DeclareObjectProperty(exNS + "AssignedTo")
	onto.DeclareDataProperty(exNS + "name")

	mapping := r2rml.MustParseMapping(`
[PrefixDeclaration]
:  http://example.org/

[MappingDeclaration]
mappingId M1
target    :emp/{id} a :Employee ; :name {name} .
source    SELECT id, name FROM TEmployee

mappingId M2
target    :branch/{branch} a :Branch .
source    SELECT branch FROM TAssignment

mappingId M3
target    :branch/{branch} a :Branch .
source    SELECT branch FROM TEmployee

mappingId M4
target    :emp/{id} :SellsProduct :prod/{product} .
source    SELECT id, product FROM TSellsProduct

mappingId M5
target    :size/{size} a :ProductSize .
source    SELECT size FROM TProduct

mappingId M6
target    :emp/{id} :AssignedTo :task/{task} .
source    SELECT id, task FROM TEmployee NATURAL JOIN TAssignment

mappingId M7
target    :emp/{id} :WorksFor :branch/{branch} .
source    SELECT id, branch FROM TEmployee
`)
	prefixes := rdf.StandardPrefixes()
	prefixes[""] = exNS
	return Spec{Onto: onto, Mapping: mapping, DB: db, Prefixes: prefixes}
}

func TestEngineSimpleClassQuery(t *testing.T) {
	e, err := NewEngine(exampleSpec(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ans, err := e.Query(`SELECT ?x WHERE { ?x a :Employee }`)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 2 {
		t.Fatalf("employees: got %d rows\n%s", ans.Len(), ans.ResultSet)
	}
}

func TestEngineHierarchyReasoning(t *testing.T) {
	// Person has no direct mapping; instances come from Employee via the
	// subclass axiom (T-mappings) and from SellsProduct via the domain
	// axiom.
	e, err := NewEngine(exampleSpec(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ans, err := e.Query(`SELECT DISTINCT ?x WHERE { ?x a :Person }`)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 2 {
		t.Fatalf("persons: got %d rows\n%s", ans.Len(), ans.ResultSet)
	}
}

func TestEngineHierarchyViaUCQExpansion(t *testing.T) {
	// Same result with T-mappings off (classic UCQ expansion).
	e, err := NewEngine(exampleSpec(t), Options{TMappings: false, Existential: true})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := e.Query(`SELECT DISTINCT ?x WHERE { ?x a :Person }`)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 2 {
		t.Fatalf("persons (UCQ mode): got %d rows\n%s", ans.Len(), ans.ResultSet)
	}
	if ans.Stats.CQCount < 2 {
		t.Fatalf("expected a multi-CQ rewriting, got %d", ans.Stats.CQCount)
	}
}

func TestEngineJoinQuery(t *testing.T) {
	e, err := NewEngine(exampleSpec(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ans, err := e.Query(`SELECT ?n ?p WHERE { ?x :name ?n . ?x :SellsProduct ?p }`)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 4 {
		t.Fatalf("join: got %d rows\n%s", ans.Len(), ans.ResultSet)
	}
}

func TestEngineConstantInQuery(t *testing.T) {
	e, err := NewEngine(exampleSpec(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ans, err := e.Query(`SELECT ?p WHERE { <http://example.org/emp/1> :SellsProduct ?p }`)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 2 {
		t.Fatalf("constant subject: got %d rows\n%s", ans.Len(), ans.ResultSet)
	}
}

func TestEngineFilterPushdown(t *testing.T) {
	e, err := NewEngine(exampleSpec(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ans, err := e.Query(`SELECT ?x ?n WHERE { ?x :name ?n . FILTER(?n = "John") }`)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 1 {
		t.Fatalf("filter: got %d rows\n%s", ans.Len(), ans.ResultSet)
	}
}

func TestEngineExistentialReasoning(t *testing.T) {
	// ?x :WorksFor ?b — with existential reasoning OFF, only explicit
	// WorksFor triples (from M7). The tree-witness case: a query where the
	// branch variable is non-distinguished should succeed for every
	// Employee even without M7 data... here M7 provides data anyway, so we
	// check the rewriting structure instead.
	e, err := NewEngine(exampleSpec(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.ParseQuery(`SELECT ?x WHERE { ?x a :Employee . ?x :WorksFor [ a :Branch ] }`)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := e.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Stats.TreeWitnesses < 1 {
		t.Fatalf("expected at least one tree witness, got %d", ans.Stats.TreeWitnesses)
	}
	// Every employee satisfies the pattern thanks to the existential axiom,
	// even an employee with no WorksFor fact: both employees here have
	// facts, so the answer must be exactly both.
	if ans.Len() != 2 {
		t.Fatalf("existential: got %d rows\n%s", ans.Len(), ans.ResultSet)
	}
}

func TestEngineExistentialProvesEmptyWithoutFacts(t *testing.T) {
	// Drop M7 (no WorksFor facts at all). With existential reasoning the
	// query must still return all employees; without it, none.
	spec := exampleSpec(t)
	var maps []*r2rml.TriplesMap
	for _, m := range spec.Mapping.Maps {
		if m.Name != "M7" {
			maps = append(maps, m)
		}
	}
	spec.Mapping.Maps = maps

	withEx, err := NewEngine(spec, Options{TMappings: true, Existential: true})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := withEx.Query(`SELECT ?x WHERE { ?x a :Employee . ?x :WorksFor [ a :Branch ] }`)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 2 {
		t.Fatalf("with existential: got %d rows\n%s", ans.Len(), ans.ResultSet)
	}

	withoutEx, err := NewEngine(spec, Options{TMappings: true, Existential: false})
	if err != nil {
		t.Fatal(err)
	}
	ans2, err := withoutEx.Query(`SELECT ?x WHERE { ?x a :Employee . ?x :WorksFor [ a :Branch ] }`)
	if err != nil {
		t.Fatal(err)
	}
	if ans2.Len() != 0 {
		t.Fatalf("without existential: got %d rows", ans2.Len())
	}
}

func TestEngineOptional(t *testing.T) {
	e, err := NewEngine(exampleSpec(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Every ProductSize, optionally nothing else — smoke-test OPTIONAL
	// through the engine using sells: employees OPTIONAL AssignedTo.
	ans, err := e.Query(`SELECT ?x ?t WHERE { ?x a :Employee OPTIONAL { ?x :AssignedTo ?t } }`)
	if err != nil {
		t.Fatal(err)
	}
	// Both employees are in B1 with two tasks each -> 4 rows.
	if ans.Len() != 4 {
		t.Fatalf("optional: got %d rows\n%s", ans.Len(), ans.ResultSet)
	}
}

func TestEngineAggregates(t *testing.T) {
	e, err := NewEngine(exampleSpec(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ans, err := e.Query(`SELECT ?x (COUNT(?p) AS ?n) WHERE { ?x :SellsProduct ?p } GROUP BY ?x ORDER BY ?x`)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 2 {
		t.Fatalf("aggregate: got %d rows\n%s", ans.Len(), ans.ResultSet)
	}
	for _, row := range ans.Rows {
		if row[1].Value != "2" {
			t.Fatalf("each employee sells 2 products, got %s", row[1])
		}
	}
}

func TestEngineSelfJoinElimination(t *testing.T) {
	e, err := NewEngine(exampleSpec(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// name and Employee-ness both come from TEmployee with the same
	// subject template: the unfolder must merge them into one scan.
	ans, err := e.Query(`SELECT ?x ?n WHERE { ?x a :Employee . ?x :name ?n }`)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 2 {
		t.Fatalf("got %d rows", ans.Len())
	}
	if ans.Stats.SelfJoinsEliminated < 1 {
		t.Fatalf("expected self-join elimination, stats: %+v", ans.Stats)
	}
	// The first union arm (both atoms from M1 over TEmployee) must be a
	// single-table scan; later arms legitimately join other T-mapping
	// sources.
	firstArm := ans.Stats.UnfoldedSQL
	if i := strings.Index(firstArm, "UNION"); i >= 0 {
		firstArm = firstArm[:i]
	}
	if strings.Contains(firstArm, "t2") {
		t.Fatalf("first arm still self-joins:\n%s", ans.Stats.UnfoldedSQL)
	}
}

func TestEngineTemplateMismatchPruning(t *testing.T) {
	e, err := NewEngine(exampleSpec(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Joining an employee IRI with a product IRI via shared variable is
	// impossible at the template level: :emp/{id} vs :prod/{product}.
	ans, err := e.Query(`SELECT ?y WHERE { ?x :SellsProduct ?y . ?y :SellsProduct ?z }`)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 0 {
		t.Fatalf("expected empty answer, got %d rows", ans.Len())
	}
	if ans.Stats.PrunedArms == 0 && ans.Stats.StaticPrunedArms == 0 {
		t.Fatal("expected pruned arms from template mismatch")
	}
}

func TestStoreEngineAgreesWithOBDA(t *testing.T) {
	spec := exampleSpec(t)
	obda, err := NewEngine(spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	store, err := NewStoreEngine(spec, StoreOptions{Reasoning: true})
	if err != nil {
		t.Fatal(err)
	}
	if store.LoadStats().Triples == 0 {
		t.Fatal("no triples materialized")
	}
	queries := []string{
		`SELECT ?x WHERE { ?x a :Employee }`,
		`SELECT DISTINCT ?x WHERE { ?x a :Person }`,
		`SELECT ?n ?p WHERE { ?x :name ?n . ?x :SellsProduct ?p }`,
		`SELECT DISTINCT ?b WHERE { ?b a :Branch }`,
		`SELECT ?x (COUNT(?p) AS ?n) WHERE { ?x :SellsProduct ?p } GROUP BY ?x`,
	}
	for _, q := range queries {
		a1, err := obda.Query(q)
		if err != nil {
			t.Fatalf("obda %q: %v", q, err)
		}
		a2, err := store.Query(q)
		if err != nil {
			t.Fatalf("store %q: %v", q, err)
		}
		if canonical(a1) != canonical(a2) {
			t.Fatalf("engines disagree on %q:\nOBDA:\n%s\nStore:\n%s", q, a1.ResultSet, a2.ResultSet)
		}
	}
}

func canonical(a *Answer) string {
	lines := make([]string, len(a.Rows))
	for i, row := range a.Rows {
		parts := make([]string, len(row))
		for j, t := range row {
			parts[j] = t.String()
		}
		lines[i] = strings.Join(parts, "\t")
	}
	sortStrings(lines)
	return strings.Join(lines, "\n")
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestVirtualGraphShape(t *testing.T) {
	// The virtual instance of Example 4.1 must contain the triples the
	// paper lists.
	spec := exampleSpec(t)
	store, err := NewStoreEngine(spec, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := []rdf.Triple{
		{S: rdf.NewIRI(exNS + "emp/1"), P: rdf.NewIRI(rdf.RDFType), O: rdf.NewIRI(exNS + "Employee")},
		{S: rdf.NewIRI(exNS + "emp/2"), P: rdf.NewIRI(rdf.RDFType), O: rdf.NewIRI(exNS + "Employee")},
		{S: rdf.NewIRI(exNS + "emp/1"), P: rdf.NewIRI(exNS + "SellsProduct"), O: rdf.NewIRI(exNS + "prod/p1")},
		{S: rdf.NewIRI(exNS + "emp/1"), P: rdf.NewIRI(exNS + "SellsProduct"), O: rdf.NewIRI(exNS + "prod/p2")},
	}
	for _, tr := range want {
		if !store.Store().Contains(tr) {
			t.Fatalf("missing triple %s", tr)
		}
	}
	// :ProductSize has exactly two instances (big, small), regardless of
	// product count — the "intrinsically constant" concept.
	n := store.Store().CountClass(rdf.NewIRI(exNS + "ProductSize"))
	if n != 2 {
		t.Fatalf("ProductSize instances = %d, want 2", n)
	}
}
