package core

import (
	"fmt"
	"time"

	"npdbench/internal/obs"
	"npdbench/internal/rdf"
	"npdbench/internal/rewrite"
	"npdbench/internal/sparql"
	"npdbench/internal/triplestore"
)

// StoreEngine is the triple-store baseline of the benchmark (the role
// Stardog plays in the paper): the virtual RDF graph exposed by the OBDA
// specification is materialized into an indexed store, and SPARQL queries
// are answered over it with OWL 2 QL reasoning by query rewriting.
type StoreEngine struct {
	store    *triplestore.Store
	spec     Spec
	rewriter *rewrite.Rewriter
	load     StoreLoadStats
	freshSeq int
}

// StoreOptions configures the baseline.
type StoreOptions struct {
	// Reasoning enables OWL 2 QL query rewriting (hierarchy + existential).
	Reasoning bool
	// MaxCQs bounds the rewriting size (0 = default).
	MaxCQs int
}

// StoreLoadStats reports materialization cost — the triple store's
// "loading time" measure, which the paper contrasts with the OBDA starting
// phase.
type StoreLoadStats struct {
	LoadTime time.Duration
	Triples  int
}

// NewStoreEngine materializes the virtual graph and prepares the store.
func NewStoreEngine(spec Spec, opts StoreOptions) (*StoreEngine, error) {
	if spec.Onto == nil || spec.Mapping == nil || spec.DB == nil {
		return nil, fmt.Errorf("core: spec needs ontology, mapping, and database")
	}
	start := obs.Now()
	st := triplestore.New()
	if err := spec.Mapping.Materialize(spec.DB, func(t rdf.Triple) { st.Add(t) }); err != nil {
		return nil, err
	}
	se := &StoreEngine{store: st, spec: spec}
	if opts.Reasoning {
		// Hierarchy reasoning is applied per atom (each atom becomes a
		// union of its entailing atoms), so the rewriter itself only
		// handles the existential (tree-witness) part.
		se.rewriter = &rewrite.Rewriter{
			Onto:        spec.Onto,
			Existential: true,
			MaxCQs:      opts.MaxCQs,
		}
	}
	se.load = StoreLoadStats{LoadTime: obs.Since(start), Triples: st.Len()}
	return se, nil
}

// LoadStats returns materialization statistics.
func (se *StoreEngine) LoadStats() StoreLoadStats { return se.load }

// Store exposes the underlying triple store.
func (se *StoreEngine) Store() *triplestore.Store { return se.store }

// ParseQuery parses SPARQL with the spec's prefixes.
func (se *StoreEngine) ParseQuery(src string) (*sparql.Query, error) {
	return sparql.Parse(src, se.spec.Prefixes)
}

// Query parses and answers a SPARQL query over the materialized graph.
func (se *StoreEngine) Query(src string) (*Answer, error) {
	q, err := se.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return se.Answer(q)
}

// Answer evaluates the query; when reasoning is on, each BGP is first
// rewritten into a union of BGPs embedding the TBox inferences.
func (se *StoreEngine) Answer(q *sparql.Query) (*Answer, error) {
	start := obs.Now()
	st := PhaseStats{}
	pattern := q.Pattern
	if se.rewriter != nil {
		rwStart := obs.Now()
		var err error
		pattern, err = se.rewritePattern(pattern, &st)
		if err != nil {
			return nil, err
		}
		st.RewriteTime = obs.Since(rwStart)
	}
	exStart := obs.Now()
	bindings, err := sparql.EvalPattern(pattern, se.store)
	if err != nil {
		return nil, err
	}
	if se.rewriter != nil {
		// Reasoning rewrites BGPs into unions whose arms can derive the
		// same certain answer repeatedly; certain-answer semantics is a
		// set, so deduplicate over the original pattern's variables.
		bindings = dedupeBindings(bindings, sparql.PatternVars(q.Pattern))
	}
	rs, err := sparql.Finalize(q, bindings)
	if err != nil {
		return nil, err
	}
	st.ExecTime = obs.Since(exStart)
	st.TotalTime = obs.Since(start)
	return &Answer{ResultSet: rs, Stats: st}, nil
}

// rewritePattern expands every BGP leaf into the union of its UCQ
// rewriting.
func (se *StoreEngine) rewritePattern(p sparql.GraphPattern, st *PhaseStats) (sparql.GraphPattern, error) {
	switch x := p.(type) {
	case *sparql.BGP:
		if len(x.Triples) == 0 {
			return x, nil
		}
		cq, err := rewrite.FromBGP(x, se.spec.Onto, sparql.PatternVars(x))
		if err != nil {
			// Variable predicates etc.: evaluate unrewritten.
			return x, nil
		}
		res, err := se.rewriter.Rewrite(cq, sparql.PatternVars(x))
		if err != nil {
			return nil, err
		}
		st.TreeWitnesses += res.TreeWitnesses
		// Per-atom hierarchy expansion: each CQ becomes a join of unions.
		var out sparql.GraphPattern
		for _, dis := range res.UCQ {
			g := &sparql.Group{}
			for _, atom := range dis.Atoms {
				alts := se.rewriter.AtomAlternatives(atom, &se.freshSeq)
				st.CQCount += len(alts)
				var armPat sparql.GraphPattern
				for _, alt := range alts {
					bgp := cqToBGP(&rewrite.CQ{Atoms: []rewrite.Atom{alt}})
					if armPat == nil {
						armPat = bgp
					} else {
						armPat = &sparql.Union{Left: armPat, Right: bgp}
					}
				}
				g.Parts = append(g.Parts, armPat)
			}
			if out == nil {
				out = g
			} else {
				out = &sparql.Union{Left: out, Right: g}
			}
		}
		if out == nil {
			out = &sparql.BGP{}
		}
		return out, nil
	case *sparql.Group:
		out := &sparql.Group{}
		for _, part := range x.Parts {
			np, err := se.rewritePattern(part, st)
			if err != nil {
				return nil, err
			}
			out.Parts = append(out.Parts, np)
		}
		return out, nil
	case *sparql.Filter:
		inner, err := se.rewritePattern(x.Inner, st)
		if err != nil {
			return nil, err
		}
		return &sparql.Filter{Inner: inner, Cond: x.Cond}, nil
	case *sparql.Optional:
		l, err := se.rewritePattern(x.Left, st)
		if err != nil {
			return nil, err
		}
		r, err := se.rewritePattern(x.Right, st)
		if err != nil {
			return nil, err
		}
		return &sparql.Optional{Left: l, Right: r}, nil
	case *sparql.Union:
		l, err := se.rewritePattern(x.Left, st)
		if err != nil {
			return nil, err
		}
		r, err := se.rewritePattern(x.Right, st)
		if err != nil {
			return nil, err
		}
		return &sparql.Union{Left: l, Right: r}, nil
	}
	return p, nil
}

func cqToBGP(cq *rewrite.CQ) *sparql.BGP {
	bgp := &sparql.BGP{}
	toTV := func(t rewrite.Term) sparql.TermOrVar {
		if t.IsVar() {
			return sparql.V(t.Var)
		}
		return sparql.T(t.Const)
	}
	for _, a := range cq.Atoms {
		switch a.Kind {
		case rewrite.ClassAtom:
			bgp.Triples = append(bgp.Triples, sparql.TriplePattern{
				S: toTV(a.S),
				P: sparql.T(rdf.NewIRI(rdf.RDFType)),
				O: sparql.T(rdf.NewIRI(a.Pred)),
			})
		default:
			bgp.Triples = append(bgp.Triples, sparql.TriplePattern{
				S: toTV(a.S),
				P: sparql.T(rdf.NewIRI(a.Pred)),
				O: toTV(a.O),
			})
		}
	}
	return bgp
}
