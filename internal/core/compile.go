package core

import (
	"strings"

	"npdbench/internal/obs"
	"npdbench/internal/planck"
	"npdbench/internal/rewrite"
	"npdbench/internal/sparql"
	"npdbench/internal/sqldb"
	"npdbench/internal/unfold"
)

// compiledPlan is the immutable result of compiling one BGP (with its
// pushed filters) through rewrite → static-prune → unfold → plan. It is
// what the plan cache stores and what concurrent clients share: the
// executor never mutates a SelectStmt, so one plan serves any number of
// simultaneous executions.
type compiledPlan struct {
	// unsatFilter marks a BGP proved answerless by contradictory pushed
	// filter bounds before any rewriting happened.
	unsatFilter bool
	// stmt is the unfolded SQL statement; nil (with unsatFilter false)
	// means the BGP is provably empty (every disjunct or arm pruned).
	stmt *sqldb.SelectStmt
	// vars lists the answer variables; output columns come in (v, v_t,
	// v_dt) triples in this order.
	vars []string
	// sql is the rendered statement text (diagnostics).
	sql string

	sqlMetrics sqldb.SQLMetrics

	// Simplicity measures replayed into PhaseStats on every execution,
	// cached or not (they describe the plan, not the compile run).
	treeWitnesses    int
	cqCount          int
	unionArms        int
	prunedArms       int
	selfJoins        int
	subsumedArms     int
	staticPrunedCQs  int
	staticPrunedArms int

	// filtersPushed[i] reports whether pushed filter i reached SQL in
	// every arm (aggregate pushdown requires all true).
	filtersPushed []bool
	// varInfos summarizes tag/datatype uniformity per answer variable
	// (aggregate pushdown's MIN/MAX/SUM faithfulness check).
	varInfos map[string]unfold.VarInfo
}

// addTo replays the plan-shape measures into the per-query stats.
func (p *compiledPlan) addTo(st *PhaseStats) {
	if p.unsatFilter {
		st.StaticUnsatFilters++
		return
	}
	st.TreeWitnesses += p.treeWitnesses
	st.CQCount += p.cqCount
	st.UnionArms += p.unionArms
	st.PrunedArms += p.prunedArms
	st.SelfJoinsEliminated += p.selfJoins
	st.SubsumedArms += p.subsumedArms
	st.StaticPrunedCQs += p.staticPrunedCQs
	st.StaticPrunedArms += p.staticPrunedArms
	st.SQL.Joins += p.sqlMetrics.Joins
	st.SQL.LeftJoins += p.sqlMetrics.LeftJoins
	st.SQL.Unions += p.sqlMetrics.Unions
	st.SQL.InnerQueries += p.sqlMetrics.InnerQueries
}

// compiledPlanFor returns the plan for a BGP, from the cache when enabled.
// spawn creates the stage spans in the caller's trace position (top-level
// spans for answerBGP, children of the aggregate-pushdown span for the
// aggregate path). A hit still emits the compile-stage spans — marked
// cached, like the parse span of a pre-parsed query — so every trace
// carries the full taxonomy and a cached execution stays visible in the
// JSONL run log.
func (e *Engine) compiledPlanFor(bgp *sparql.BGP, push []unfold.PushFilter, st *PhaseStats, spawn func(string) *obs.Span) (*compiledPlan, error) {
	if e.cache == nil {
		return e.compileBGP(bgp, push, st, spawn)
	}
	key := planKey(bgp, push)
	if plan, ok := e.cache.get(key); ok {
		st.PlanCacheHits++
		emitCachedSpans(plan, spawn)
		return plan, nil
	}
	epoch := e.cache.epochNow()
	plan, err := e.compileBGP(bgp, push, st, spawn)
	if err != nil {
		return nil, err
	}
	st.PlanCacheMisses++
	e.cache.put(key, plan, epoch)
	return plan, nil
}

// emitCachedSpans records the compile stages of a cache hit: same span
// names as a real compilation, near-zero durations, cached=true. An
// unsat-filter plan emits nothing, matching the uncached short-circuit
// (which returns before the rewrite stage starts).
func emitCachedSpans(p *compiledPlan, spawn func(string) *obs.Span) {
	if p.unsatFilter {
		return
	}
	rw := spawn("rewrite")
	rw.SetStr("cached", "true")
	rw.SetInt("cqs", p.cqCount)
	rw.SetInt("tree_witnesses", p.treeWitnesses)
	rw.End()
	sp := spawn("static-prune")
	sp.SetStr("cached", "true")
	sp.End()
	un := spawn("unfold")
	un.SetStr("cached", "true")
	un.SetInt("union_arms", p.unionArms)
	un.SetInt("pruned_arms", p.prunedArms)
	un.End()
	pl := spawn("plan")
	pl.SetStr("cached", "true")
	pl.SetStr("cache", "hit")
	pl.SetInt("sql_len", len(p.sql))
	pl.End()
}

// compileBGP runs the compile half of the pipeline for one BGP: CQ
// translation, tree-witness rewriting, static pruning, unfolding, and plan
// verification. Only compile timings are charged to st here; the
// plan-shape measures live on the returned plan so cached executions
// replay them too.
func (e *Engine) compileBGP(bgp *sparql.BGP, push []unfold.PushFilter, st *PhaseStats, spawn func(string) *obs.Span) (*compiledPlan, error) {
	// Blank-node variables (_bn…) introduced by the parser are local to
	// the BGP: they are existential, never projected, and are the
	// tree-witness fold candidates. Everything else is an answer variable
	// of the leaf and is protected from folding.
	var answerVars []string
	for _, v := range sparql.PatternVars(bgp) {
		if !strings.HasPrefix(v, "_bn") {
			answerVars = append(answerVars, v)
		}
	}
	cq, err := rewrite.FromBGP(bgp, e.spec.Onto, answerVars)
	if err != nil {
		return nil, err
	}
	if err := e.verifyCQ("translate", cq); err != nil {
		return nil, err
	}
	// Contradictory pushed-filter bounds prove the BGP answerless before
	// any rewriting happens (the filters are conjunctive: every solution
	// would have to satisfy all of them).
	if e.opts.StaticPrune && len(push) > 0 {
		if reason := planck.UnsatisfiableBounds(staticBounds(push)); reason != "" {
			return &compiledPlan{unsatFilter: true}, nil
		}
	}
	// Filter variables are protected alongside the answer variables: a
	// pushed comparison must see the real values, never a tree-witness
	// fold surrogate.
	protected := append([]string{}, answerVars...)
	for _, f := range push {
		protected = append(protected, f.Var)
	}

	plan := &compiledPlan{}
	rwSpan := spawn("rewrite")
	rwStart := obs.Now()
	rres, err := e.rewriter.Rewrite(cq, protected)
	if err != nil {
		rwSpan.End()
		return nil, err
	}
	st.RewriteTime += obs.Since(rwStart)
	plan.treeWitnesses = rres.TreeWitnesses
	plan.cqCount = rres.CQCount
	rwSpan.SetInt("cqs", rres.CQCount)
	rwSpan.SetInt("tree_witnesses", rres.TreeWitnesses)
	rwSpan.End()
	if err := e.verifyUCQ("rewrite", rres.UCQ, cq.Answer); err != nil {
		return nil, err
	}
	ucq := rres.UCQ
	spSpan := spawn("static-prune")
	spSpan.SetInt("ucq_before", len(ucq))
	if e.opts.StaticPrune {
		pr := planck.PruneUCQ(ucq, e.spec.Onto)
		plan.staticPrunedCQs = pr.Dropped
		ucq = pr.Kept
		spSpan.SetInt("ucq_after", len(ucq))
		spSpan.End()
		if len(ucq) == 0 {
			return plan, nil // every disjunct statically unsatisfiable
		}
		if err := e.verifyUCQ("static-prune", ucq, cq.Answer); err != nil {
			return nil, err
		}
	} else {
		spSpan.SetStr("skipped", "true")
		spSpan.SetInt("ucq_after", len(ucq))
		spSpan.End()
	}

	unSpan := spawn("unfold")
	unStart := obs.Now()
	un, err := unfold.UnfoldOpts(ucq, e.mapping, push, unfold.Opts{Cons: e.cons, StaticPrune: e.opts.StaticPrune})
	if err != nil {
		unSpan.End()
		return nil, err
	}
	st.UnfoldTime += obs.Since(unStart)
	plan.unionArms = un.Arms
	plan.prunedArms = un.PrunedArms
	plan.selfJoins = un.SelfJoinsEliminated
	plan.subsumedArms = un.SubsumedArms
	plan.staticPrunedArms = un.StaticPrunedCands + un.StaticContradictions
	plan.filtersPushed = un.FiltersPushed
	unSpan.SetInt("union_arms", un.Arms)
	unSpan.SetInt("pruned_arms", un.PrunedArms)
	unSpan.End()
	if un.Stmt == nil {
		return plan, nil // provably empty
	}

	// The plan stage covers everything between unfolding and running the
	// SQL: invariant verification, plan-shape metrics, statement text.
	plSpan := spawn("plan")
	if err := e.verifySQL("unfold", un.Stmt, un.Vars); err != nil {
		plSpan.End()
		return nil, err
	}
	plan.stmt = un.Stmt
	plan.vars = un.Vars
	plan.sqlMetrics = un.Metrics()
	plan.sql = un.Stmt.String()
	plan.varInfos = un.VarInfos()
	plSpan.SetInt("sql_joins", plan.sqlMetrics.Joins)
	plSpan.SetInt("sql_unions", plan.sqlMetrics.Unions)
	plSpan.SetInt("sql_len", len(plan.sql))
	plSpan.End()
	return plan, nil
}
