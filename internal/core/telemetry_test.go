package core

import (
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"npdbench/internal/obs"
)

func TestUsageInStats(t *testing.T) {
	reg := obs.NewRegistry()
	e, err := NewEngine(exampleSpec(t), obsOptions(&obs.Observer{Metrics: reg}))
	if err != nil {
		t.Fatal(err)
	}
	ans, err := e.Query(`SELECT ?n ?p WHERE { ?x :name ?n . ?x :SellsProduct ?p }`)
	if err != nil {
		t.Fatal(err)
	}
	u := ans.Stats.Usage
	if u == nil {
		t.Fatal("no usage block with observer installed")
	}
	if u.RowsScanned <= 0 || u.RowsProduced <= 0 || u.BytesMaterialized <= 0 {
		t.Fatalf("usage not accounted: %+v", u)
	}
	if len(u.BudgetExceeded) != 0 {
		t.Fatalf("unlimited budget tripped: %v", u.BudgetExceeded)
	}
	text := reg.PrometheusText()
	for _, want := range []string{
		"npdbench_usage_rows_scanned_total",
		"npdbench_usage_rows_produced_total",
		"npdbench_usage_bytes_materialized_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if got := reg.Gauge("npdbench_queries_inflight").Value(); got != 0 {
		t.Fatalf("inflight gauge = %d after query settled", got)
	}
}

func TestUsageOffWithoutObserver(t *testing.T) {
	e, err := NewEngine(exampleSpec(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ans, err := e.Query(`SELECT ?x WHERE { ?x a :Employee }`)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Stats.Usage != nil {
		t.Fatal("usage accounted with observability off")
	}
}

func TestBudgetExceededSurfaces(t *testing.T) {
	reg := obs.NewRegistry()
	e, err := NewEngine(exampleSpec(t), obsOptions(&obs.Observer{
		Metrics: reg,
		Budget:  obs.QueryBudget{MaxRowsScanned: 1},
	}))
	if err != nil {
		t.Fatal(err)
	}
	ans, err := e.Query(`SELECT ?x WHERE { ?x a :Employee }`)
	if err != nil {
		t.Fatal(err)
	}
	u := ans.Stats.Usage
	if u == nil || len(u.BudgetExceeded) == 0 || u.BudgetExceeded[0] != "rows_scanned" {
		t.Fatalf("budget trip not surfaced: %+v", u)
	}
	if !strings.Contains(reg.PrometheusText(), `npdbench_budget_exceeded_total{limit="rows_scanned"} 1`) {
		t.Errorf("budget counter missing:\n%s", reg.PrometheusText())
	}
}

func TestSampledTraceRetention(t *testing.T) {
	// Rate 0, no slow threshold worth tripping: trace collected for the
	// slow log but dropped from the answer.
	slowlog := obs.NewSlowLog(4)
	e, err := NewEngine(exampleSpec(t), obsOptions(&obs.Observer{
		Sampler: &obs.Sampler{Rate: 0, SlowThreshold: time.Hour},
		SlowLog: slowlog,
	}))
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.ParseQuery(`SELECT ?x WHERE { ?x a :Employee }`)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := e.AnswerNamed(q, "emp-scan")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Trace != nil {
		t.Fatal("unsampled trace retained on answer")
	}
	if ans.Sample.Sampled || ans.Sample.Reason != "unsampled" {
		t.Fatalf("decision = %+v", ans.Sample)
	}
	// The slow log still saw the execution, under the caller's label.
	if slowlog.Len() != 1 || slowlog.Snapshot()[0].Query != "emp-scan" {
		t.Fatalf("slowlog = %+v", slowlog.Snapshot())
	}

	// A 0ns threshold promotes everything: trace retained as "slow".
	e2, err := NewEngine(exampleSpec(t), obsOptions(&obs.Observer{
		Sampler: &obs.Sampler{Rate: 0, SlowThreshold: time.Nanosecond},
	}))
	if err != nil {
		t.Fatal(err)
	}
	ans, err = e2.Query(`SELECT ?x WHERE { ?x a :Employee }`)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Trace == nil || ans.Sample.Reason != "slow" {
		t.Fatalf("slow promotion failed: trace=%v decision=%+v", ans.Trace, ans.Sample)
	}
}

// TestConcurrentAnswerTelemetry runs concurrent queries against one
// engine with the full telemetry stack on, while HTTP clients poll the
// metrics and slowlog endpoints — exactly the serving posture of
// `mixer -http`. The -race run in ci.sh is the real assertion.
func TestConcurrentAnswerTelemetry(t *testing.T) {
	reg := obs.NewRegistry()
	slowlog := obs.NewSlowLog(8)
	e, err := NewEngine(exampleSpec(t), obsOptions(&obs.Observer{
		Metrics: reg,
		Sampler: &obs.Sampler{Rate: 0.5, Seed: 3, SlowThreshold: time.Nanosecond},
		SlowLog: slowlog,
		Budget:  obs.QueryBudget{MaxRowsScanned: 2},
	}))
	if err != nil {
		t.Fatal(err)
	}
	rc := obs.NewRuntimeCollector(reg)
	rc.Start(time.Millisecond)
	defer rc.Stop()
	metricsSrv := httptest.NewServer(reg.Handler())
	defer metricsSrv.Close()
	slowSrv := httptest.NewServer(slowlog.Handler())
	defer slowSrv.Close()

	const workers, iters = 6, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q := stressQueries[(w+i)%len(stressQueries)]
				if _, err := e.Query(q); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				for _, url := range []string{metricsSrv.URL, slowSrv.URL} {
					resp, err := metricsSrv.Client().Get(url)
					if err != nil {
						t.Error(err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()

	if got := reg.Counter("npdbench_queries_total").Value(); got != workers*iters {
		t.Fatalf("queries_total = %d, want %d", got, workers*iters)
	}
	if got := reg.Gauge("npdbench_queries_inflight").Value(); got != 0 {
		t.Fatalf("inflight gauge = %d after drain", got)
	}
	if slowlog.Len() == 0 {
		t.Fatal("no slow queries captured")
	}
	text := reg.PrometheusText()
	for _, want := range []string{
		"npdbench_traces_sampled_total",
		"npdbench_slowlog_captured_total",
		"npdbench_usage_rows_scanned_total",
		"npdbench_runtime_goroutines",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
