package core

import (
	"fmt"
	"time"

	"npdbench/internal/obs"
	"npdbench/internal/owl"
	"npdbench/internal/rdf"
	"npdbench/internal/rewrite"
	"npdbench/internal/sparql"
	"npdbench/internal/unfold"
)

// Violation reports one inconsistency witness: an individual (or pair)
// entailed to belong to declared-disjoint concepts or properties.
type Violation struct {
	// Kind is "class" or "property".
	Kind string
	// A and B are the disjoint terms violated.
	A, B string
	// Witness is the offending individual (class case) or subject (property
	// case).
	Witness rdf.Term
}

func (v Violation) String() string {
	return fmt.Sprintf("%s disjointness %s ⊓ %s violated by %s", v.Kind, v.A, v.B, v.Witness)
}

// ConsistencyReport is the result of a consistency check.
type ConsistencyReport struct {
	Consistent bool
	Violations []Violation
	Elapsed    time.Duration
	// ChecksRun counts the disjointness axioms evaluated.
	ChecksRun int
}

// CheckConsistency verifies the virtual instance against every declared
// disjointness axiom by answering, for each axiom A ⊓ B ⊑ ⊥, the boolean
// query ∃x. A(x) ∧ B(x) through the normal rewrite→unfold→execute
// pipeline. This is the paper's requirement O2 in action: the TBox's
// negative axioms give the reasoner something to falsify. maxWitnesses
// bounds the number of reported witnesses per axiom (0 = 1).
func (e *Engine) CheckConsistency(maxWitnesses int) (*ConsistencyReport, error) {
	if maxWitnesses <= 0 {
		maxWitnesses = 1
	}
	start := obs.Now()
	rep := &ConsistencyReport{Consistent: true}

	askBoth := func(a, b owl.Concept) ([]sparql.Binding, error) {
		cq := &rewrite.CQ{Answer: []string{"x"}}
		add := func(c owl.Concept) {
			x := rewrite.Term{Var: "x"}
			switch {
			case c.IsNamed():
				cq.Atoms = append(cq.Atoms, rewrite.Atom{Kind: rewrite.ClassAtom, Pred: c.Class, S: x})
			case c.IsData:
				cq.Atoms = append(cq.Atoms, rewrite.Atom{Kind: rewrite.DataPropAtom, Pred: c.Prop, S: x, O: rewrite.Term{Var: "_w" + c.Prop}})
			case c.Inverse:
				cq.Atoms = append(cq.Atoms, rewrite.Atom{Kind: rewrite.ObjPropAtom, Pred: c.Prop, S: rewrite.Term{Var: "_w" + c.Prop}, O: x})
			default:
				cq.Atoms = append(cq.Atoms, rewrite.Atom{Kind: rewrite.ObjPropAtom, Pred: c.Prop, S: x, O: rewrite.Term{Var: "_w" + c.Prop}})
			}
		}
		add(a)
		add(b)
		res, err := e.rewriter.Rewrite(cq, []string{"x"})
		if err != nil {
			return nil, err
		}
		un, err := unfold.UnfoldWith(res.UCQ, e.mapping, nil, e.cons)
		if err != nil {
			return nil, err
		}
		if un.Stmt == nil {
			return nil, nil
		}
		un.Stmt.Limit = maxWitnesses
		sqlRes, err := e.spec.DB.ExecSelect(un.Stmt)
		if err != nil {
			return nil, err
		}
		return translateRows(un.Vars, sqlRes), nil
	}

	for _, d := range e.spec.Onto.Disjoints {
		rep.ChecksRun++
		witnesses, err := askBoth(d.A, d.B)
		if err != nil {
			return nil, fmt.Errorf("core: consistency check %s/%s: %w", d.A, d.B, err)
		}
		for i, w := range witnesses {
			if i >= maxWitnesses {
				break
			}
			rep.Consistent = false
			rep.Violations = append(rep.Violations, Violation{
				Kind: "class", A: d.A.String(), B: d.B.String(), Witness: w["x"],
			})
		}
	}

	// Disjoint object properties: ∃x,y. P(x,y) ∧ Q(x,y).
	for _, d := range e.spec.Onto.DisjointProps {
		rep.ChecksRun++
		cq := &rewrite.CQ{
			Answer: []string{"x", "y"},
			Atoms: []rewrite.Atom{
				{Kind: rewrite.ObjPropAtom, Pred: d.A.Prop, S: rewrite.Term{Var: "x"}, O: rewrite.Term{Var: "y"}},
				{Kind: rewrite.ObjPropAtom, Pred: d.B.Prop, S: rewrite.Term{Var: "x"}, O: rewrite.Term{Var: "y"}},
			},
		}
		res, err := e.rewriter.Rewrite(cq, []string{"x", "y"})
		if err != nil {
			return nil, err
		}
		un, err := unfold.UnfoldWith(res.UCQ, e.mapping, nil, e.cons)
		if err != nil {
			return nil, err
		}
		if un.Stmt == nil {
			continue
		}
		un.Stmt.Limit = maxWitnesses
		sqlRes, err := e.spec.DB.ExecSelect(un.Stmt)
		if err != nil {
			return nil, err
		}
		for _, b := range translateRows(un.Vars, sqlRes) {
			rep.Consistent = false
			rep.Violations = append(rep.Violations, Violation{
				Kind: "property", A: d.A.String(), B: d.B.String(), Witness: b["x"],
			})
		}
	}
	rep.Elapsed = obs.Since(start)
	return rep, nil
}
