package core

import (
	"fmt"

	"npdbench/internal/obs"
	"npdbench/internal/rdf"
	"npdbench/internal/sparql"
	"npdbench/internal/sqldb"
	"npdbench/internal/unfold"
)

// Aggregate pushdown: the paper's journal-version queries (q15–q21) exist
// to stress "semantic query optimisation in the SPARQL-to-SQL translation"
// around aggregation. When the query is a single (possibly filtered) BGP
// with plain-variable grouping and simple aggregates, the whole
// aggregation is compiled into the unfolded SQL:
//
//	SELECT g…, COUNT(v_x) FROM (SELECT DISTINCT * FROM <union>) GROUP BY g…
//
// The inner DISTINCT enforces the RDF set semantics of the virtual graph
// (union arms can derive the same solution repeatedly) before counting.
// Queries outside this fragment fall back to in-memory aggregation over
// the translated bindings.

// tryAggregatePushdown attempts the SQL compilation; ok=false means the
// query is outside the pushable fragment. Its pipeline stages are traced as
// children of an "aggregate-pushdown" span so a fallback attempt stays
// distinguishable from the regular BGP stages that follow it; an attempt
// that started compiling but was abandoned tags that span abandoned=true so
// the trace and the phase stats stay reconcilable.
func (e *Engine) tryAggregatePushdown(q *sparql.Query, qc *queryCtx) (rs *sparql.ResultSet, ok bool, err error) {
	st := qc.st
	if !q.HasAggregates() || q.Having != nil {
		return nil, false, nil
	}
	var bgp *sparql.BGP
	var filters []unfold.PushFilter
	var cond sparql.Expr
	switch p := q.Pattern.(type) {
	case *sparql.BGP:
		bgp = p
	case *sparql.Filter:
		inner, ok := p.Inner.(*sparql.BGP)
		if !ok {
			return nil, false, nil
		}
		// Every filter conjunct must be pushable, otherwise rows would be
		// aggregated before filtering.
		if !fullyPushable(p.Cond) {
			return nil, false, nil
		}
		bgp = inner
		cond = p.Cond
		filters = pushableFilters(p.Cond)
	default:
		return nil, false, nil
	}
	if len(bgp.Triples) == 0 {
		return nil, false, nil
	}
	// Select items: plain group variables or simple aggregates over vars.
	type aggItem struct {
		outVar   string
		name     string
		argVar   string // "" for COUNT(*)
		distinct bool
	}
	var aggs []aggItem
	groupSet := map[string]bool{}
	for _, g := range q.GroupBy {
		groupSet[g] = true
	}
	for _, it := range q.Items {
		if it.Expr == nil {
			if !groupSet[it.Var] {
				return nil, false, nil // plain var must be grouped
			}
			continue
		}
		agg, ok := it.Expr.(*sparql.AggExpr)
		if !ok {
			return nil, false, nil
		}
		item := aggItem{outVar: it.Var, name: agg.Name, distinct: agg.Distinct}
		if !agg.Star {
			v, ok := agg.Arg.(*sparql.VarExpr)
			if !ok {
				return nil, false, nil
			}
			item.argVar = v.Name
		}
		aggs = append(aggs, item)
	}
	if len(aggs) == 0 {
		return nil, false, nil
	}

	// Compile the BGP through the shared (cacheable) pipeline.
	ag := qc.tr.StartSpan("aggregate-pushdown")
	defer func() {
		if !ok && err == nil {
			ag.SetStr("abandoned", "true")
		}
		ag.End()
	}()
	plan, err := e.compiledPlanFor(bgp, filters, st, ag.StartChild)
	if err != nil {
		return nil, false, err
	}
	plan.addTo(st)
	if plan.stmt == nil {
		// Unsatisfiable filter bounds, an empty UCQ, or every arm pruned:
		// aggregate over a provably empty solution set.
		return emptyAggregate(q), true, nil
	}

	// Every filter conjunct must actually have been compiled into every
	// arm — a filter silently skipped in SQL would over-count. The
	// unfolder reports that per filter.
	if cond != nil {
		for _, p := range plan.filtersPushed {
			if !p {
				return nil, false, nil
			}
		}
		for _, v := range sparql.ExprVars(cond) {
			if !containsStr(plan.vars, v) {
				return nil, false, nil
			}
		}
	}

	// MIN/MAX/SUM/AVG operate on the lexical column directly, which is only
	// faithful when the variable never carries IRIs (term-kind would be
	// lost) — check the arms' constant tag columns.
	varInfos := plan.varInfos
	for _, a := range aggs {
		if a.name == "COUNT" || a.argVar == "" {
			continue
		}
		if !varInfos[a.argVar].AlwaysLiteral {
			return nil, false, nil
		}
	}

	// distinct-solutions subquery
	inner := &sqldb.SubqueryTable{Query: plan.stmt, Alias: "u"}
	middle := sqldb.NewSelect()
	middle.Distinct = true
	middle.Items = []sqldb.SelectItem{{Star: true}}
	middle.From = []sqldb.TableRef{inner}

	outer := sqldb.NewSelect()
	outer.From = []sqldb.TableRef{&sqldb.SubqueryTable{Query: middle, Alias: "d"}}
	// group columns: the variable's (lex, tag, dt) triple
	for _, g := range q.GroupBy {
		if !containsStr(plan.vars, g) {
			return nil, false, nil
		}
		for _, suffix := range []string{"", "_t", "_dt"} {
			col := "v_" + g + suffix
			outer.Items = append(outer.Items, sqldb.SelectItem{
				Expr: &sqldb.ColRef{Table: "d", Name: col}, Alias: col,
			})
			outer.GroupBy = append(outer.GroupBy, &sqldb.ColRef{Table: "d", Name: col})
		}
	}
	for i, a := range aggs {
		f := &sqldb.FuncExpr{Name: a.name, Distinct: a.distinct}
		if a.argVar == "" {
			f.Star = true
		} else {
			if !containsStr(plan.vars, a.argVar) {
				return nil, false, nil
			}
			f.Args = []sqldb.Expr{&sqldb.ColRef{Table: "d", Name: "v_" + a.argVar}}
		}
		outer.Items = append(outer.Items, sqldb.SelectItem{Expr: f, Alias: fmt.Sprintf("agg_%d", i)})
	}

	exSpan := ag.StartChild("execute")
	exStart := obs.Now()
	res, err := e.execStmt(outer, qc, exSpan)
	exSpan.End()
	if err != nil {
		// Cancellation is not a fallback condition: re-running the query
		// in memory would defeat the client's disconnect or deadline.
		if ctxErr := qc.cancelled(); ctxErr != nil {
			return nil, false, ctxErr
		}
		// e.g. SUM over a non-numeric literal column: SQL raises a type
		// error where SPARQL semantics silently unbinds — fall back to the
		// in-memory path, which implements the SPARQL behaviour.
		return nil, false, nil
	}
	st.ExecTime += obs.Since(exStart)
	exSpan.SetInt("rows", len(res.Rows))
	st.UnfoldedSQL = outer.String()
	m := outer.Metrics()
	st.SQL.Joins += m.Joins
	st.SQL.Unions += m.Unions
	st.SQL.InnerQueries += m.InnerQueries

	// Translate rows to bindings: 3 columns per group var, then one per agg.
	asSpan := ag.StartChild("assemble")
	defer asSpan.End()
	trStart := obs.Now()
	bindings := make([]sparql.Binding, 0, len(res.Rows))
	for _, row := range res.Rows {
		b := make(sparql.Binding, len(q.GroupBy)+len(aggs))
		col := 0
		for _, g := range q.GroupBy {
			lex := row[col]
			tag, _ := row[col+1].AsInt()
			dt := row[col+2].S
			if !lex.IsNull() {
				b[g] = termFromValue(lex, int(tag), dt)
			}
			col += 3
		}
		for i, a := range aggs {
			v := row[col+i]
			if v.IsNull() {
				continue
			}
			b[a.outVar] = aggregateTerm(a.name, v, varInfos[a.argVar])
		}
		bindings = append(bindings, b)
	}
	st.TranslateTime += obs.Since(trStart)

	// Finalize with the aggregation stripped (it already happened in SQL).
	flat := *q
	flat.GroupBy = nil
	flat.Having = nil
	items := make([]sparql.SelectItem, len(q.Items))
	for i, it := range q.Items {
		items[i] = sparql.SelectItem{Var: it.Var}
	}
	flat.Items = items
	rs, err = sparql.Finalize(&flat, bindings)
	if err != nil {
		return nil, false, err
	}
	return rs, true, nil
}

// aggregateTerm converts a SQL aggregate value into an RDF literal.
// MIN/MAX return one of the input values, so the variable's uniform
// datatype (when the arms agree on one) is preserved; computed aggregates
// (COUNT/SUM/AVG) derive the datatype from the SQL value kind.
func aggregateTerm(name string, v sqldb.Value, info unfold.VarInfo) rdf.Term {
	if (name == "MIN" || name == "MAX") && info.DatatypeKnown && info.UniformDatatype != "" {
		return rdf.NewTypedLiteral(v.String(), info.UniformDatatype)
	}
	switch v.Kind {
	case sqldb.KindInt:
		return rdf.NewTypedLiteral(v.String(), rdf.XSDInteger)
	case sqldb.KindFloat:
		return rdf.NewTypedLiteral(v.String(), rdf.XSDDouble)
	case sqldb.KindDate:
		return rdf.NewTypedLiteral(v.String(), rdf.XSDDate)
	case sqldb.KindBool:
		return rdf.NewTypedLiteral(v.String(), rdf.XSDBoolean)
	}
	return rdf.NewLiteral(v.String())
}

// fullyPushable reports whether the filter condition is a conjunction of
// var-op-literal comparisons (everything pushableFilters can translate).
func fullyPushable(cond sparql.Expr) bool {
	b, ok := cond.(*sparql.BinExpr)
	if !ok {
		return false
	}
	if b.Op == "&&" {
		return fullyPushable(b.L) && fullyPushable(b.R)
	}
	switch b.Op {
	case "=", "!=", "<", "<=", ">", ">=":
		if _, okv := b.L.(*sparql.VarExpr); okv {
			if t, okt := b.R.(*sparql.TermExpr); okt && t.Term.IsLiteral() {
				return true
			}
		}
		if _, okv := b.R.(*sparql.VarExpr); okv {
			if t, okt := b.L.(*sparql.TermExpr); okt && t.Term.IsLiteral() {
				return true
			}
		}
	}
	return false
}

func containsStr(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// emptyAggregate returns the SPARQL-mandated result over an empty solution
// set: COUNT yields 0, other aggregates yield no binding; with GROUP BY
// there are no groups at all.
func emptyAggregate(q *sparql.Query) *sparql.ResultSet {
	rs := &sparql.ResultSet{Vars: q.SelectVars()}
	if len(q.GroupBy) > 0 {
		return rs
	}
	row := make([]rdf.Term, len(q.Items))
	for i, it := range q.Items {
		if agg, ok := it.Expr.(*sparql.AggExpr); ok && agg.Name == "COUNT" {
			row[i] = rdf.NewInteger(0)
		}
	}
	rs.Rows = append(rs.Rows, row)
	return rs
}
