package core

import (
	"strings"
	"testing"

	"npdbench/internal/sparql"
)

// answerWithoutPushdown evaluates the query through the binding-level
// (in-memory) aggregation path, bypassing tryAggregatePushdown.
func answerWithoutPushdown(t *testing.T, e *Engine, src string) *sparql.ResultSet {
	t.Helper()
	q, err := e.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	bindings, err := e.evalPattern(q.Pattern, &queryCtx{st: &PhaseStats{}})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sparql.Finalize(q, bindings)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func canonicalRS(rs *sparql.ResultSet) string {
	lines := make([]string, len(rs.Rows))
	for i, row := range rs.Rows {
		parts := make([]string, len(row))
		for j, term := range row {
			parts[j] = term.String()
		}
		lines[i] = strings.Join(parts, "\t")
	}
	sortStrings(lines)
	return strings.Join(lines, "\n")
}

func TestAggregatePushdownMatchesInMemory(t *testing.T) {
	e, err := NewEngine(exampleSpec(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	queries := []struct {
		src  string
		push bool // expected to take the SQL pushdown path
	}{
		{`SELECT (COUNT(?x) AS ?n) WHERE { ?x a :Employee }`, true},
		{`SELECT (COUNT(*) AS ?n) WHERE { ?x :SellsProduct ?p }`, true},
		{`SELECT ?x (COUNT(?p) AS ?n) WHERE { ?x :SellsProduct ?p } GROUP BY ?x`, true},
		{`SELECT (COUNT(DISTINCT ?x) AS ?n) WHERE { ?x :SellsProduct ?p }`, true},
		// MIN/MAX over an IRI-valued variable must NOT push (term kind
		// would be lost); the fallback still answers correctly.
		{`SELECT ?x (MIN(?p) AS ?lo) (MAX(?p) AS ?hi) WHERE { ?x :SellsProduct ?p } GROUP BY ?x`, false},
		// MIN/MAX over a literal-valued variable pushes.
		{`SELECT (MIN(?n) AS ?lo) WHERE { ?x :name ?n }`, true},
		{`SELECT ?n (COUNT(?p) AS ?c) WHERE { ?x :name ?n . ?x :SellsProduct ?p . FILTER(?n != "Zed") } GROUP BY ?n`, true},
	}
	for _, c := range queries {
		ans, err := e.Query(c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		want := answerWithoutPushdown(t, e, c.src)
		if canonicalRS(ans.ResultSet) != canonicalRS(want) {
			t.Fatalf("pushdown disagrees on %s:\npushed:\n%s\nin-memory:\n%s",
				c.src, ans.ResultSet, want)
		}
		pushed := strings.Contains(ans.Stats.UnfoldedSQL, "GROUP BY") ||
			strings.Contains(ans.Stats.UnfoldedSQL, "COUNT") ||
			strings.Contains(ans.Stats.UnfoldedSQL, "MIN")
		if pushed != c.push {
			t.Fatalf("pushdown = %v, want %v for %s\nSQL: %s", pushed, c.push, c.src, ans.Stats.UnfoldedSQL)
		}
	}
}

func TestAggregateFallbackForHaving(t *testing.T) {
	e, err := NewEngine(exampleSpec(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// HAVING is outside the pushable fragment — must still answer.
	ans, err := e.Query(`SELECT ?x (COUNT(?p) AS ?n) WHERE { ?x :SellsProduct ?p } GROUP BY ?x HAVING(COUNT(?p) > 1)`)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 2 {
		t.Fatalf("having fallback rows = %d", ans.Len())
	}
	if strings.Contains(ans.Stats.UnfoldedSQL, "GROUP BY") {
		t.Fatal("HAVING queries must not take the pushdown path")
	}
}

func TestAggregateCountEmptyIsZero(t *testing.T) {
	spec := exampleSpec(t)
	spec.Onto.DeclareClass(exNS + "Ghost")
	e, err := NewEngine(spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ans, err := e.Query(`SELECT (COUNT(?x) AS ?n) WHERE { ?x a :Ghost }`)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 1 || ans.Rows[0][0].Value != "0" {
		t.Fatalf("COUNT over empty must be one row of 0, got %v", ans.Rows)
	}
}
