// Package core is the OBDA engine of this reproduction — the system under
// test in the NPD benchmark. It implements the four-phase query-answering
// workflow the paper describes (Sect. 3):
//
//  1. starting phase — load ontology + mappings, classify the TBox, and
//     (by default) compile the hierarchy inferences into the mapping as
//     T-mappings;
//  2. query rewriting — tree-witness rewriting for existential axioms
//     (toggleable), plus classic hierarchy UCQ expansion when T-mappings
//     are disabled;
//  3. query translation (unfolding) — UCQ × mappings → one SQL statement
//     with semantic query optimizations;
//  4. query execution + result translation — run the SQL on the embedded
//     relational engine and reconstruct RDF terms.
//
// Every phase reports the Table 1 measures (times and simplicity metrics).
package core

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"npdbench/internal/analyze"
	"npdbench/internal/obs"
	"npdbench/internal/owl"
	"npdbench/internal/planck"
	"npdbench/internal/r2rml"
	"npdbench/internal/rdf"
	"npdbench/internal/rewrite"
	"npdbench/internal/sparql"
	"npdbench/internal/sqldb"
	"npdbench/internal/unfold"
)

// Spec bundles the three OBDA components: ontology, mappings, data source.
type Spec struct {
	Onto     *owl.Ontology
	Mapping  *r2rml.Mapping
	DB       *sqldb.Database
	Prefixes rdf.PrefixMap
}

// Options configures reasoning behaviour.
type Options struct {
	// TMappings compiles the hierarchy into the mapping at load time
	// (Ontop's approach; the default mode in the paper's experiments).
	TMappings bool
	// Existential enables tree-witness rewriting. The paper runs the
	// benchmark both with and without it.
	Existential bool
	// MaxCQs bounds the rewriting size (0 = default).
	MaxCQs int
	// Constraints derives database constraints (keys, NOT NULL, exact
	// predicates) via the static analyzer at load time and applies the
	// constraint-driven unfolding optimizations: key-based self-join
	// elimination, NULL-guard elision, subsumed-arm elimination.
	Constraints bool
	// VerifyPlans controls the per-transform plan verifier: every
	// intermediate plan (translated CQ, rewritten UCQ, unfolded SQL) is
	// checked against the planck invariant catalog, failing the query with
	// a structured diagnostic naming the offending transform. The zero
	// value (VerifyAuto) verifies under `go test` only.
	VerifyPlans VerifyMode
	// StaticPrune deletes statically unsatisfiable work before it runs:
	// contradictory pushed-filter bounds, UCQ disjuncts typed into
	// disjoint concepts, mapping candidates with no arc-consistent
	// partner, and union arms with contradictory WHERE conjunctions.
	StaticPrune bool
	// PlanCache memoizes per-BGP compilation results (rewritten UCQ,
	// unfolded SQL plan, projection/tag metadata) in a bounded sharded
	// LRU, so repeated executions of the same BGP+filter shape pay
	// execute-only cost. Cached plans are immutable and safe to share
	// across concurrent Answer calls.
	PlanCache bool
	// PlanCacheSize bounds the number of cached plans (0 = the
	// DefaultPlanCacheSize).
	PlanCacheSize int
	// Parallelism caps the intra-query parallel workers each SQL
	// statement may use (union-arm fan-out, partitioned hash joins,
	// morsel-parallel scans in sqldb). 0 means runtime.NumCPU(); 1 forces
	// fully sequential execution (the pre-parallel behaviour). Results
	// are bit-identical at every setting; only wall time changes.
	Parallelism int
	// BatchSize selects the sqldb executor per statement: 0 runs the
	// vectorized batch executor at its default batch size, 1 forces the
	// classic row-at-a-time executor, larger values set the batch size
	// explicitly. Results are row-for-row identical at every setting.
	BatchSize int
	// Obs enables observability: per-query span traces, operator-level
	// execution profiles, and process metrics. nil means fully off — the
	// pipeline then pays a single nil check per stage.
	Obs *obs.Observer
}

// DefaultOptions returns the configuration the paper uses for the main
// experiments: T-mappings on, existential reasoning on, database
// constraints on, static pruning on, plan cache on.
func DefaultOptions() Options {
	return Options{TMappings: true, Existential: true, Constraints: true, StaticPrune: true, PlanCache: true}
}

// LoadStats reports the starting-phase measures.
type LoadStats struct {
	LoadTime            time.Duration
	MappingAssertions   int // before saturation
	SaturatedAssertions int // after T-mapping saturation
	Classes             int
	ObjectProperties    int
	DataProperties      int
}

// Engine answers SPARQL queries over a virtual RDF graph.
type Engine struct {
	spec     Spec
	opts     Options
	mapping  *r2rml.Mapping // saturated when TMappings is on
	cons     *analyze.Constraints
	rewriter *rewrite.Rewriter
	load     LoadStats
	verifier *planck.Verifier
	verify   bool
	cache    *planCache     // nil when Options.PlanCache is off
	met      *engineMetrics // nil when the observer has no registry
	par      int            // resolved Options.Parallelism (>= 1)
	pool     *sqldb.Pool    // shared worker pool; nil when par == 1
	batch    int            // Options.BatchSize, passed through to sqldb
}

// engineMetrics holds the per-engine metric handles, resolved once at
// construction so the per-query hot path never formats a metric name.
type engineMetrics struct {
	queries      *obs.Counter
	errors       *obs.Counter
	querySeconds *obs.Histogram
	// stageSeconds is indexed in pipeline order: rewrite, unfold,
	// execute, assemble.
	stageSeconds [4]*obs.Histogram
	// parallel counts the intra-query parallel execution work, indexed
	// like parallelMetricNames: tasks, workers, union arms, join
	// partitions, morsels, batches.
	parallel [6]*obs.Counter
	// inflight gauges queries currently inside Answer.
	inflight *obs.Gauge
	// usage accumulates the per-query resource accounting totals,
	// indexed like usageMetricNames: rows scanned, rows produced, bytes
	// materialized.
	usage [3]*obs.Counter
	// budgetExceeded counts queries that tripped each soft budget limit,
	// indexed by the obs.BudgetLimitNames bit order.
	budgetExceeded [len(obs.BudgetLimitNames)]*obs.Counter
}

// usageMetricNames is the npdbench_usage_* family, in engineMetrics.usage
// index order.
var usageMetricNames = [3]string{
	"npdbench_usage_rows_scanned_total",
	"npdbench_usage_rows_produced_total",
	"npdbench_usage_bytes_materialized_total",
}

// parallelMetricNames is the npdbench_exec_parallel_* family, in the index
// order engineMetrics.parallel and ParallelStats use.
var parallelMetricNames = [6]string{
	"npdbench_exec_parallel_tasks_total",
	"npdbench_exec_parallel_workers_total",
	"npdbench_exec_parallel_union_arms_total",
	"npdbench_exec_parallel_join_partitions_total",
	"npdbench_exec_parallel_morsels_total",
	"npdbench_exec_batches_total",
}

func newEngineMetrics(reg *obs.Registry) *engineMetrics {
	if reg == nil {
		return nil
	}
	m := &engineMetrics{
		queries:      reg.Counter("npdbench_queries_total"),
		errors:       reg.Counter("npdbench_query_errors_total"),
		querySeconds: reg.Histogram("npdbench_query_seconds", obs.DefDurationBuckets),
	}
	for i, stage := range [4]string{"rewrite", "unfold", "execute", "assemble"} {
		m.stageSeconds[i] = reg.Histogram(fmt.Sprintf("npdbench_stage_seconds{stage=%q}", stage), obs.DefDurationBuckets)
	}
	for i, name := range parallelMetricNames {
		m.parallel[i] = reg.Counter(name)
	}
	m.inflight = reg.Gauge("npdbench_queries_inflight")
	for i, name := range usageMetricNames {
		m.usage[i] = reg.Counter(name)
	}
	for i, limit := range obs.BudgetLimitNames {
		m.budgetExceeded[i] = reg.Counter(fmt.Sprintf("npdbench_budget_exceeded_total{limit=%q}", limit))
	}
	return m
}

// NewEngine performs the starting phase and returns a ready engine.
func NewEngine(spec Spec, opts Options) (*Engine, error) {
	if spec.Onto == nil || spec.Mapping == nil || spec.DB == nil {
		return nil, fmt.Errorf("core: spec needs ontology, mapping, and database")
	}
	start := obs.Now()
	e := &Engine{spec: spec, opts: opts}
	e.load.MappingAssertions = spec.Mapping.AssertionCount()
	stats := spec.Onto.Stats()
	e.load.Classes = stats.Classes
	e.load.ObjectProperties = stats.ObjectProps
	e.load.DataProperties = stats.DataProps
	// Classification is forced here so that query time excludes it.
	_ = spec.Onto.SubConceptsOf(owl.NamedConcept(""))
	if opts.TMappings {
		e.mapping = rewrite.Saturate(spec.Mapping, spec.Onto)
	} else {
		e.mapping = spec.Mapping
	}
	if opts.Constraints {
		e.cons = analyze.DeriveConstraints(spec.Mapping, spec.Onto, spec.DB)
	}
	e.load.SaturatedAssertions = e.mapping.AssertionCount()
	e.verifier = &planck.Verifier{Onto: spec.Onto, Cons: e.cons, DB: spec.DB}
	e.verify = opts.VerifyPlans.enabled()
	e.rewriter = &rewrite.Rewriter{
		Onto:            spec.Onto,
		ExpandHierarchy: !opts.TMappings,
		Existential:     opts.Existential,
		MaxCQs:          opts.MaxCQs,
	}
	if opts.PlanCache {
		e.cache = newPlanCache(opts.PlanCacheSize, opts.Obs.Registry())
	}
	e.par = opts.Parallelism
	if e.par <= 0 {
		e.par = runtime.NumCPU()
	}
	e.batch = opts.BatchSize
	if e.par > 1 {
		// One pool for the engine's lifetime: concurrent queries share the
		// same bounded helper supply, so total goroutines stay capped no
		// matter how many clients fan out.
		e.pool = sqldb.NewPool(e.par)
	}
	e.met = newEngineMetrics(opts.Obs.Registry())
	e.load.LoadTime = obs.Since(start)
	return e, nil
}

// PlanCacheStats snapshots the compiled-query cache counters; ok is false
// when the cache is disabled.
func (e *Engine) PlanCacheStats() (PlanCacheStats, bool) {
	if e.cache == nil {
		return PlanCacheStats{}, false
	}
	return e.cache.stats(), true
}

// InvalidatePlans drops every cached compiled plan. Safe to call
// concurrently with queries: in-flight compilations from before the
// invalidation cannot repopulate the cache.
func (e *Engine) InvalidatePlans() {
	if e.cache != nil {
		e.cache.invalidate()
	}
}

// SetConstraints toggles the constraint-driven unfolding optimizations,
// re-deriving the schema constraints and invalidating the plan cache
// (cached plans embed constraint-dependent SQL). Reconfiguration is not
// synchronized with in-flight queries; callers must quiesce query traffic
// first, exactly as for swapping the engine itself.
func (e *Engine) SetConstraints(on bool) {
	e.opts.Constraints = on
	if on {
		e.cons = analyze.DeriveConstraints(e.spec.Mapping, e.spec.Onto, e.spec.DB)
	} else {
		e.cons = nil
	}
	e.verifier = &planck.Verifier{Onto: e.spec.Onto, Cons: e.cons, DB: e.spec.DB}
	e.InvalidatePlans()
}

// SetMapping replaces the engine's R2RML mapping, re-running the starting
// phase work that depends on it (T-mapping saturation, constraint
// derivation) and invalidating the plan cache. The same quiescence rule as
// SetConstraints applies.
func (e *Engine) SetMapping(mp *r2rml.Mapping) {
	e.spec.Mapping = mp
	if e.opts.TMappings {
		e.mapping = rewrite.Saturate(mp, e.spec.Onto)
	} else {
		e.mapping = mp
	}
	if e.opts.Constraints {
		e.cons = analyze.DeriveConstraints(mp, e.spec.Onto, e.spec.DB)
	}
	e.verifier = &planck.Verifier{Onto: e.spec.Onto, Cons: e.cons, DB: e.spec.DB}
	e.InvalidatePlans()
}

// LoadStats returns the starting-phase statistics.
func (e *Engine) LoadStats() LoadStats { return e.load }

// Options returns the engine configuration.
func (e *Engine) Options() Options { return e.opts }

// DB exposes the underlying database (benchmark harness access).
func (e *Engine) DB() *sqldb.Database { return e.spec.DB }

// Pool exposes the engine's shared worker pool (nil when execution is
// sequential); serving-path tests assert it is idle again after a
// canceled or failed query.
func (e *Engine) Pool() *sqldb.Pool { return e.pool }

// PhaseStats carries the per-query measures of the paper's Table 1.
type PhaseStats struct {
	RewriteTime   time.Duration
	UnfoldTime    time.Duration
	ExecTime      time.Duration
	TranslateTime time.Duration
	TotalTime     time.Duration

	// Simplicity R-Query measures.
	TreeWitnesses int
	CQCount       int
	// Simplicity U-Query measures.
	UnionArms           int
	PrunedArms          int
	SelfJoinsEliminated int
	SubsumedArms        int
	// Static pruning measures (planck): UCQ disjuncts deleted for type
	// contradictions, unfolder work deleted by the pre-walk candidate
	// analysis plus contradictory-condition arms, and whole BGPs skipped
	// because their pushed filter bounds are unsatisfiable.
	StaticPrunedCQs    int
	StaticPrunedArms   int
	StaticUnsatFilters int
	// Plan-cache measures: BGP compilations served from, respectively
	// added to, the compiled-query cache during this query.
	PlanCacheHits   int
	PlanCacheMisses int
	// Parallel reports the intra-query parallel execution work of this
	// query's SQL statements (all zero when Options.Parallelism is 1 or
	// the statements were too small to fan out).
	Parallel ParallelStats
	// PushdownAbandoned is the wall time an abandoned aggregate-pushdown
	// attempt consumed before the query fell back to in-memory
	// aggregation. It is part of TotalTime but of no per-stage time: the
	// stage measures describe only the path that produced the answer.
	PushdownAbandoned time.Duration
	// Usage is the frozen per-query resource accounting block (nil when
	// observability is fully off): base-table rows scanned, operator
	// rows/bytes produced, parallel tasks, cache hits, and any tripped
	// soft budget limits.
	Usage *obs.UsageSnapshot
	SQL   sqldb.SQLMetrics
	// UnfoldedSQL is the translated query text (diagnostics; empty when
	// all arms were pruned).
	UnfoldedSQL string
}

// ParallelStats counts the intra-query parallel-operator work of one
// query: tasks dispatched by the sqldb parallel driver, helper goroutines
// launched, union arms evaluated in parallel, hash-join partitions built,
// and scan/filter/probe morsels processed.
type ParallelStats struct {
	Tasks          int
	Workers        int
	UnionArms      int
	JoinPartitions int
	Morsels        int
	// Batches counts vectorized executor batches, sequential or parallel
	// (zero when Options.BatchSize forces the row-at-a-time executor).
	Batches int
}

// WeightRU is the paper's "Weight of R+U": rewriting+unfolding cost over
// total cost.
func (p PhaseStats) WeightRU() float64 {
	if p.TotalTime <= 0 {
		return 0
	}
	return float64(p.RewriteTime+p.UnfoldTime) / float64(p.TotalTime)
}

// Answer is a query result with its phase statistics and, when the engine's
// observer enables them, the span trace and operator-level execution
// profiles of the run.
type Answer struct {
	*sparql.ResultSet
	Stats PhaseStats
	// Trace is the hierarchical span tree of this query (nil unless
	// Options.Obs.Tracing).
	Trace *obs.Trace
	// Profiles holds one EXPLAIN ANALYZE operator tree per SQL statement
	// executed (nil unless Options.Obs.ExecProfile).
	Profiles []*sqldb.OpProfile
	// Sample is the trace sampling decision: whether the trace was
	// retained and why ("off" when no tracing/sampling is configured).
	Sample obs.SampleDecision
}

// queryCtx carries the per-query observability state alongside the phase
// statistics through the pattern evaluator.
type queryCtx struct {
	st       *PhaseStats
	tr       *obs.Trace
	dec      obs.SampleDecision
	usage    *obs.Usage
	name     string
	profiles []*sqldb.OpProfile
	// ctx is the query's cancellation signal (context.Background() on the
	// batch paths): a client disconnect or per-query deadline stops the
	// pattern evaluator at the next stage boundary and the SQL executor at
	// the next morsel boundary.
	ctx context.Context
	// settled flips when the query's terminal accounting (inflight gauge,
	// error counters, usage publication) has run, making failQuery and
	// finishAnswer idempotent — the panic-recovery path and a regular
	// error return can never double-settle the gauge.
	settled bool
}

// cancelled returns the query context's error once it is done.
func (qc *queryCtx) cancelled() error {
	if qc.ctx == nil {
		return nil
	}
	return qc.ctx.Err()
}

// settleOnce reports whether terminal accounting should run: true exactly
// the first time it is called for this query.
func (qc *queryCtx) settleOnce() bool {
	if qc.settled {
		return false
	}
	qc.settled = true
	return true
}

// ParseQuery parses SPARQL with the spec's prefix bindings.
func (e *Engine) ParseQuery(src string) (*sparql.Query, error) {
	return sparql.Parse(src, e.spec.Prefixes)
}

// Query parses and answers a SPARQL query.
func (e *Engine) Query(src string) (*Answer, error) {
	return e.QueryCtx(context.Background(), src)
}

// QueryCtx is Query under a cancellation context: when ctx is canceled or
// its deadline passes, the pipeline stops cooperatively (pattern evaluator
// at stage boundaries, SQL operators at morsel boundaries) and returns
// ctx.Err(), with pool slots and the inflight gauge released.
func (e *Engine) QueryCtx(ctx context.Context, src string) (*Answer, error) {
	qc := e.beginQuery(ctx, queryLabel(src))
	ps := qc.tr.StartSpan("parse")
	q, err := e.ParseQuery(src)
	ps.End()
	if err != nil {
		return nil, e.failQuery(qc, err)
	}
	return e.answer(q, qc)
}

// Answer runs the full query-answering pipeline on a pre-parsed query. The
// parse stage still appears in the trace (marked cached) so every trace
// carries the complete taxonomy.
func (e *Engine) Answer(q *sparql.Query) (*Answer, error) {
	return e.AnswerNamedCtx(context.Background(), q, "")
}

// AnswerCtx is Answer under a cancellation context (see QueryCtx).
func (e *Engine) AnswerCtx(ctx context.Context, q *sparql.Query) (*Answer, error) {
	return e.AnswerNamedCtx(ctx, q, "")
}

// AnswerNamed is Answer with a caller-supplied query label (e.g. the NPD
// mix's "q12") used by the slow-query log and the sampling counters.
func (e *Engine) AnswerNamed(q *sparql.Query, name string) (*Answer, error) {
	return e.AnswerNamedCtx(context.Background(), q, name)
}

// AnswerNamedCtx is AnswerNamed under a cancellation context (see
// QueryCtx).
func (e *Engine) AnswerNamedCtx(ctx context.Context, q *sparql.Query, name string) (*Answer, error) {
	qc := e.beginQuery(ctx, name)
	ps := qc.tr.StartSpan("parse")
	ps.SetStr("cached", "true")
	ps.End()
	return e.answer(q, qc)
}

// queryLabel compresses raw SPARQL text into a short slow-log label.
func queryLabel(src string) string {
	s := strings.Join(strings.Fields(src), " ")
	if len(s) > 80 {
		s = s[:77] + "..."
	}
	return s
}

// beginQuery opens the per-query observability state: the (possibly
// sampled) trace, the resource-usage tracker, and the in-flight gauge.
// With observability fully off every field stays nil.
func (e *Engine) beginQuery(ctx context.Context, name string) *queryCtx {
	qc := &queryCtx{st: &PhaseStats{}, name: name, ctx: ctx}
	qc.tr, qc.dec = e.opts.Obs.StartQuery("query")
	qc.usage = e.opts.Obs.NewUsage()
	if e.met != nil {
		e.met.inflight.Add(1)
	}
	return qc
}

func (e *Engine) answer(q *sparql.Query, qc *queryCtx) (*Answer, error) {
	// A panicking operator must not leak the inflight gauge: settle the
	// query's terminal accounting, then let the panic continue. Pool slots
	// are already safe — parState.run releases helpers via defer.
	defer func() {
		if r := recover(); r != nil {
			_ = e.failQuery(qc, fmt.Errorf("core: panic during query: %v", r))
			panic(r)
		}
	}()
	start := obs.Now()
	st := qc.st
	if q.HasAggregates() {
		rs, ok, err := e.tryAggregatePushdown(q, qc)
		if err != nil {
			return nil, e.failQuery(qc, err)
		}
		if ok {
			st.TotalTime = obs.Since(start)
			return e.finishAnswer(rs, qc), nil
		}
		// Fall through: in-memory aggregation over translated bindings.
		// The abandoned attempt keeps its spans in the trace (tagged
		// abandoned=true) and its wall time stays in TotalTime, but its
		// stage timings, shape counters, and profiles are dropped so the
		// per-stage stats describe only the path that answers the query;
		// the attempt's cost is reported separately as PushdownAbandoned.
		*st = PhaseStats{PushdownAbandoned: obs.Since(start)}
		qc.profiles = nil
	}
	bindings, err := e.evalPattern(q.Pattern, qc)
	if err != nil {
		return nil, e.failQuery(qc, err)
	}
	tStart := obs.Now()
	rs, err := sparql.Finalize(q, bindings)
	if err != nil {
		return nil, e.failQuery(qc, err)
	}
	st.TranslateTime += obs.Since(tStart)
	st.TotalTime = obs.Since(start)
	return e.finishAnswer(rs, qc), nil
}

// finishAnswer settles a successful query: freezes the usage snapshot
// into the stats and the root span, finishes the trace, resolves the
// sampling decision (dropping an unretained trace), and publishes the
// per-query metrics.
func (e *Engine) finishAnswer(rs *sparql.ResultSet, qc *queryCtx) *Answer {
	st := qc.st
	if !qc.settleOnce() {
		// Already settled (defensive; the success path settles exactly once).
		return &Answer{ResultSet: rs, Stats: *st, Sample: qc.dec}
	}
	if qc.usage != nil {
		qc.usage.AddCacheHits(int64(st.PlanCacheHits))
		st.Usage = qc.usage.Snapshot()
		if qc.tr != nil {
			st.Usage.Annotate(qc.tr.Root)
		}
	}
	qc.tr.Finish()
	retained, dec := e.opts.Obs.FinishQuery(qc.name, qc.tr, qc.dec, st.TotalTime, st.Usage, profilesValue(qc.profiles))
	e.recordMetrics(st)
	tr := qc.tr
	if !retained {
		tr = nil
	}
	return &Answer{ResultSet: rs, Stats: *st, Trace: tr, Profiles: qc.profiles, Sample: dec}
}

// profilesValue erases the profile slice for the obs slow log without
// handing it a non-nil interface wrapping an empty slice.
func profilesValue(p []*sqldb.OpProfile) any {
	if len(p) == 0 {
		return nil
	}
	return p
}

// failQuery settles a failed or canceled query: finishes the trace, counts
// the error, publishes the work the query did before dying (rows scanned by
// a canceled query are real load), and releases the in-flight gauge.
// Idempotent — the panic-recovery defer and a regular error return can both
// call it. Failed runs skip the latency histograms and the slow log (their
// timings are partial).
func (e *Engine) failQuery(qc *queryCtx, err error) error {
	if !qc.settleOnce() {
		return err
	}
	qc.tr.Finish()
	e.countQuery(true)
	if e.met != nil {
		e.met.inflight.Add(-1)
		if u := qc.usage.Snapshot(); u != nil {
			for i, v := range [3]int64{u.RowsScanned, u.RowsProduced, u.BytesMaterialized} {
				e.met.usage[i].Add(v)
			}
		}
	}
	return err
}

// countQuery bumps the query counters; failed runs skip the latency
// histograms (their timings are partial).
func (e *Engine) countQuery(failed bool) {
	if e.met == nil {
		return
	}
	e.met.queries.Inc()
	if failed {
		e.met.errors.Inc()
	}
}

// recordMetrics publishes the per-query phase timings and resource usage
// to the registry via the handles resolved at engine construction (no
// name formatting here).
func (e *Engine) recordMetrics(st *PhaseStats) {
	if e.met == nil {
		return
	}
	e.countQuery(false)
	e.met.inflight.Add(-1)
	e.met.querySeconds.Observe(st.TotalTime.Seconds())
	for i, d := range [4]time.Duration{st.RewriteTime, st.UnfoldTime, st.ExecTime, st.TranslateTime} {
		e.met.stageSeconds[i].Observe(d.Seconds())
	}
	if u := st.Usage; u != nil {
		for i, v := range [3]int64{u.RowsScanned, u.RowsProduced, u.BytesMaterialized} {
			e.met.usage[i].Add(v)
		}
		for _, limit := range u.BudgetExceeded {
			for i, name := range obs.BudgetLimitNames {
				if name == limit {
					e.met.budgetExceeded[i].Inc()
				}
			}
		}
	}
}

// evalPattern evaluates the SPARQL algebra; BGP leaves go through the
// rewrite → unfold → execute pipeline, non-leaf operators combine binding
// sets (the way OBDA engines stage OPTIONAL/UNION around SQL fragments).
func (e *Engine) evalPattern(p sparql.GraphPattern, qc *queryCtx) ([]sparql.Binding, error) {
	if err := qc.cancelled(); err != nil {
		return nil, err
	}
	switch x := p.(type) {
	case *sparql.BGP:
		return e.answerBGP(x, nil, qc)
	case *sparql.Filter:
		// Push simple comparisons into the leaf when it is a BGP.
		if bgp, ok := x.Inner.(*sparql.BGP); ok {
			push := pushableFilters(x.Cond)
			bindings, err := e.answerBGP(bgp, push, qc)
			if err != nil {
				return nil, err
			}
			return filterBindings(bindings, x.Cond), nil
		}
		inner, err := e.evalPattern(x.Inner, qc)
		if err != nil {
			return nil, err
		}
		return filterBindings(inner, x.Cond), nil
	case *sparql.Group:
		cur := []sparql.Binding{{}}
		for _, part := range x.Parts {
			next, err := e.evalPattern(part, qc)
			if err != nil {
				return nil, err
			}
			cur = sparql.JoinBindings(cur, next)
		}
		return cur, nil
	case *sparql.Optional:
		left, err := e.evalPattern(x.Left, qc)
		if err != nil {
			return nil, err
		}
		right, err := e.evalPattern(x.Right, qc)
		if err != nil {
			return nil, err
		}
		return sparql.LeftJoinBindings(left, right), nil
	case *sparql.Union:
		left, err := e.evalPattern(x.Left, qc)
		if err != nil {
			return nil, err
		}
		right, err := e.evalPattern(x.Right, qc)
		if err != nil {
			return nil, err
		}
		return append(left, right...), nil
	}
	return nil, fmt.Errorf("core: unsupported pattern %T", p)
}

func filterBindings(bs []sparql.Binding, cond sparql.Expr) []sparql.Binding {
	var out []sparql.Binding
	for _, b := range bs {
		if sparql.FilterKeeps(cond, b) {
			out = append(out, b)
		}
	}
	return out
}

// pushableFilters extracts var-op-constant comparisons from a filter
// conjunction; these are pushed into the unfolded SQL (and re-checked on
// the translated bindings, which keeps pushing safe).
func pushableFilters(cond sparql.Expr) []unfold.PushFilter {
	var out []unfold.PushFilter
	var walk func(sparql.Expr)
	walk = func(ex sparql.Expr) {
		b, ok := ex.(*sparql.BinExpr)
		if !ok {
			return
		}
		if b.Op == "&&" {
			walk(b.L)
			walk(b.R)
			return
		}
		switch b.Op {
		case "=", "!=", "<", "<=", ">", ">=":
			if v, okv := b.L.(*sparql.VarExpr); okv {
				if t, okt := b.R.(*sparql.TermExpr); okt && t.Term.IsLiteral() {
					out = append(out, unfold.PushFilter{Var: v.Name, Op: b.Op, Val: t.Term})
				}
			}
			if v, okv := b.R.(*sparql.VarExpr); okv {
				if t, okt := b.L.(*sparql.TermExpr); okt && t.Term.IsLiteral() {
					out = append(out, unfold.PushFilter{Var: v.Name, Op: flipOp(b.Op), Val: t.Term})
				}
			}
		}
	}
	walk(cond)
	return out
}

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

// answerBGP runs the rewrite/unfold/execute pipeline for one BGP. When
// tracing is on it emits one span per pipeline stage (rewrite,
// static-prune, unfold, plan, execute, assemble) under the query trace.
// The compile half goes through the plan cache when enabled; execution
// always runs live against the database.
func (e *Engine) answerBGP(bgp *sparql.BGP, push []unfold.PushFilter, qc *queryCtx) ([]sparql.Binding, error) {
	st := qc.st
	if len(bgp.Triples) == 0 {
		return []sparql.Binding{{}}, nil
	}
	plan, err := e.compiledPlanFor(bgp, push, st, qc.tr.StartSpan)
	if err != nil {
		return nil, err
	}
	plan.addTo(st)
	if plan.stmt == nil {
		// Unsatisfiable filter bounds, an empty UCQ after static pruning,
		// or every union arm pruned: provably no answers.
		return nil, nil
	}
	if st.UnfoldedSQL == "" {
		st.UnfoldedSQL = plan.sql
	}

	exSpan := qc.tr.StartSpan("execute")
	exStart := obs.Now()
	res, err := e.execStmt(plan.stmt, qc, exSpan)
	if err != nil {
		exSpan.End()
		return nil, fmt.Errorf("core: executing unfolded SQL: %w", err)
	}
	st.ExecTime += obs.Since(exStart)
	exSpan.SetInt("rows", len(res.Rows))
	exSpan.End()

	asSpan := qc.tr.StartSpan("assemble")
	trStart := obs.Now()
	bindings := translateRows(plan.vars, res)
	st.TranslateTime += obs.Since(trStart)
	// Distinct at the BGP level: SQL UNION ALL plus multiple mapping
	// assertions can produce duplicate RDF solutions that a virtual graph
	// (an RDF *set*) must not expose twice.
	bindings = dedupeBindings(bindings, plan.vars)
	asSpan.SetInt("bindings_in", len(res.Rows))
	asSpan.SetInt("bindings_out", len(bindings))
	asSpan.End()
	return bindings, nil
}

// execStmt runs one unfolded SQL statement under the engine's execution
// options: intra-query parallelism from the shared worker pool, EXPLAIN
// ANALYZE profile collection when enabled, and per-statement parallel
// counters folded into the phase stats, the execute span, and the
// npdbench_exec_parallel_* metric family.
func (e *Engine) execStmt(stmt *sqldb.SelectStmt, qc *queryCtx, span *obs.Span) (*sqldb.Result, error) {
	opt := sqldb.ExecOptions{Parallelism: e.par, Pool: e.pool, Usage: qc.usage, Ctx: qc.ctx, BatchSize: e.batch}
	var stats *sqldb.ExecStats
	if e.par > 1 || e.batch != 1 {
		stats = &sqldb.ExecStats{}
		opt.Stats = stats
	}
	var res *sqldb.Result
	var err error
	if e.opts.Obs.Profiling() {
		var prof *sqldb.OpProfile
		res, prof, err = e.spec.DB.ProfileSelectOpts(stmt, opt)
		if prof != nil {
			qc.profiles = append(qc.profiles, prof)
		}
	} else {
		res, err = e.spec.DB.ExecSelectOpts(stmt, opt)
	}
	if stats != nil {
		e.publishParallel(qc.st, span, stats)
		qc.usage.AddParallelTasks(stats.Tasks.Load())
	}
	return res, err
}

// publishParallel folds one statement's parallel-execution counters into
// the query's phase stats, annotates the execute span, and bumps the
// engine-lifetime npdbench_exec_parallel_* counters.
func (e *Engine) publishParallel(st *PhaseStats, span *obs.Span, s *sqldb.ExecStats) {
	vals := [6]int64{
		s.Tasks.Load(), s.Workers.Load(), s.UnionArms.Load(),
		s.JoinPartitions.Load(), s.Morsels.Load(), s.Batches.Load(),
	}
	if st != nil {
		st.Parallel.Tasks += int(vals[0])
		st.Parallel.Workers += int(vals[1])
		st.Parallel.UnionArms += int(vals[2])
		st.Parallel.JoinPartitions += int(vals[3])
		st.Parallel.Morsels += int(vals[4])
		st.Parallel.Batches += int(vals[5])
	}
	if span != nil && vals[1] > 0 {
		span.SetInt("parallel_tasks", int(vals[0]))
		span.SetInt("parallel_workers", int(vals[1]))
	}
	if e.met != nil {
		for i, v := range vals {
			e.met.parallel[i].Add(v)
		}
	}
}

// translateRows is phase 4's result translation: SQL rows (lexical, tag,
// datatype column triples) become RDF term bindings.
func translateRows(vars []string, res *sqldb.Result) []sparql.Binding {
	out := make([]sparql.Binding, 0, len(res.Rows))
	for _, row := range res.Rows {
		b := make(sparql.Binding, len(vars))
		for i, v := range vars {
			lex := row[3*i]
			if lex.IsNull() {
				continue
			}
			tag, _ := row[3*i+1].AsInt()
			dt := row[3*i+2].S
			b[v] = termFromValue(lex, int(tag), dt)
		}
		out = append(out, b)
	}
	return out
}

func termFromValue(lex sqldb.Value, tag int, dt string) rdf.Term {
	switch tag {
	case unfold.TagIRI:
		return rdf.NewIRI(lex.String())
	case unfold.TagLiteral:
		return rdf.NewLiteral(lex.String())
	default:
		if dt == "" {
			dt = derivedDatatype(lex)
		}
		if dt == rdf.XSDString {
			return rdf.NewLiteral(lex.String())
		}
		return rdf.NewTypedLiteral(lex.String(), dt)
	}
}

func derivedDatatype(v sqldb.Value) string {
	switch v.Kind {
	case sqldb.KindInt:
		return rdf.XSDInteger
	case sqldb.KindFloat:
		return rdf.XSDDouble
	case sqldb.KindBool:
		return rdf.XSDBoolean
	case sqldb.KindDate:
		return rdf.XSDDate
	}
	return rdf.XSDString
}

func dedupeBindings(bs []sparql.Binding, vars []string) []sparql.Binding {
	seen := make(map[string]bool, len(bs))
	out := bs[:0]
	for _, b := range bs {
		var sb strings.Builder
		for _, v := range vars {
			t := b[v]
			s := t.String()
			fmt.Fprintf(&sb, "%d:%s", len(s), s)
		}
		k := sb.String()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, b)
	}
	return out
}
