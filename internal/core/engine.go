// Package core is the OBDA engine of this reproduction — the system under
// test in the NPD benchmark. It implements the four-phase query-answering
// workflow the paper describes (Sect. 3):
//
//  1. starting phase — load ontology + mappings, classify the TBox, and
//     (by default) compile the hierarchy inferences into the mapping as
//     T-mappings;
//  2. query rewriting — tree-witness rewriting for existential axioms
//     (toggleable), plus classic hierarchy UCQ expansion when T-mappings
//     are disabled;
//  3. query translation (unfolding) — UCQ × mappings → one SQL statement
//     with semantic query optimizations;
//  4. query execution + result translation — run the SQL on the embedded
//     relational engine and reconstruct RDF terms.
//
// Every phase reports the Table 1 measures (times and simplicity metrics).
package core

import (
	"fmt"
	"strings"
	"time"

	"npdbench/internal/analyze"
	"npdbench/internal/owl"
	"npdbench/internal/planck"
	"npdbench/internal/r2rml"
	"npdbench/internal/rdf"
	"npdbench/internal/rewrite"
	"npdbench/internal/sparql"
	"npdbench/internal/sqldb"
	"npdbench/internal/unfold"
)

// Spec bundles the three OBDA components: ontology, mappings, data source.
type Spec struct {
	Onto     *owl.Ontology
	Mapping  *r2rml.Mapping
	DB       *sqldb.Database
	Prefixes rdf.PrefixMap
}

// Options configures reasoning behaviour.
type Options struct {
	// TMappings compiles the hierarchy into the mapping at load time
	// (Ontop's approach; the default mode in the paper's experiments).
	TMappings bool
	// Existential enables tree-witness rewriting. The paper runs the
	// benchmark both with and without it.
	Existential bool
	// MaxCQs bounds the rewriting size (0 = default).
	MaxCQs int
	// Constraints derives database constraints (keys, NOT NULL, exact
	// predicates) via the static analyzer at load time and applies the
	// constraint-driven unfolding optimizations: key-based self-join
	// elimination, NULL-guard elision, subsumed-arm elimination.
	Constraints bool
	// VerifyPlans controls the per-transform plan verifier: every
	// intermediate plan (translated CQ, rewritten UCQ, unfolded SQL) is
	// checked against the planck invariant catalog, failing the query with
	// a structured diagnostic naming the offending transform. The zero
	// value (VerifyAuto) verifies under `go test` only.
	VerifyPlans VerifyMode
	// StaticPrune deletes statically unsatisfiable work before it runs:
	// contradictory pushed-filter bounds, UCQ disjuncts typed into
	// disjoint concepts, mapping candidates with no arc-consistent
	// partner, and union arms with contradictory WHERE conjunctions.
	StaticPrune bool
}

// DefaultOptions returns the configuration the paper uses for the main
// experiments: T-mappings on, existential reasoning on, database
// constraints on, static pruning on.
func DefaultOptions() Options {
	return Options{TMappings: true, Existential: true, Constraints: true, StaticPrune: true}
}

// LoadStats reports the starting-phase measures.
type LoadStats struct {
	LoadTime            time.Duration
	MappingAssertions   int // before saturation
	SaturatedAssertions int // after T-mapping saturation
	Classes             int
	ObjectProperties    int
	DataProperties      int
}

// Engine answers SPARQL queries over a virtual RDF graph.
type Engine struct {
	spec     Spec
	opts     Options
	mapping  *r2rml.Mapping // saturated when TMappings is on
	cons     *analyze.Constraints
	rewriter *rewrite.Rewriter
	load     LoadStats
	verifier *planck.Verifier
	verify   bool
}

// NewEngine performs the starting phase and returns a ready engine.
func NewEngine(spec Spec, opts Options) (*Engine, error) {
	if spec.Onto == nil || spec.Mapping == nil || spec.DB == nil {
		return nil, fmt.Errorf("core: spec needs ontology, mapping, and database")
	}
	start := time.Now()
	e := &Engine{spec: spec, opts: opts}
	e.load.MappingAssertions = spec.Mapping.AssertionCount()
	stats := spec.Onto.Stats()
	e.load.Classes = stats.Classes
	e.load.ObjectProperties = stats.ObjectProps
	e.load.DataProperties = stats.DataProps
	// Classification is forced here so that query time excludes it.
	_ = spec.Onto.SubConceptsOf(owl.NamedConcept(""))
	if opts.TMappings {
		e.mapping = rewrite.Saturate(spec.Mapping, spec.Onto)
	} else {
		e.mapping = spec.Mapping
	}
	if opts.Constraints {
		e.cons = analyze.DeriveConstraints(spec.Mapping, spec.Onto, spec.DB)
	}
	e.load.SaturatedAssertions = e.mapping.AssertionCount()
	e.verifier = &planck.Verifier{Onto: spec.Onto, Cons: e.cons, DB: spec.DB}
	e.verify = opts.VerifyPlans.enabled()
	e.rewriter = &rewrite.Rewriter{
		Onto:            spec.Onto,
		ExpandHierarchy: !opts.TMappings,
		Existential:     opts.Existential,
		MaxCQs:          opts.MaxCQs,
	}
	e.load.LoadTime = time.Since(start)
	return e, nil
}

// LoadStats returns the starting-phase statistics.
func (e *Engine) LoadStats() LoadStats { return e.load }

// Options returns the engine configuration.
func (e *Engine) Options() Options { return e.opts }

// DB exposes the underlying database (benchmark harness access).
func (e *Engine) DB() *sqldb.Database { return e.spec.DB }

// PhaseStats carries the per-query measures of the paper's Table 1.
type PhaseStats struct {
	RewriteTime   time.Duration
	UnfoldTime    time.Duration
	ExecTime      time.Duration
	TranslateTime time.Duration
	TotalTime     time.Duration

	// Simplicity R-Query measures.
	TreeWitnesses int
	CQCount       int
	// Simplicity U-Query measures.
	UnionArms           int
	PrunedArms          int
	SelfJoinsEliminated int
	SubsumedArms        int
	// Static pruning measures (planck): UCQ disjuncts deleted for type
	// contradictions, unfolder work deleted by the pre-walk candidate
	// analysis plus contradictory-condition arms, and whole BGPs skipped
	// because their pushed filter bounds are unsatisfiable.
	StaticPrunedCQs    int
	StaticPrunedArms   int
	StaticUnsatFilters int
	SQL                sqldb.SQLMetrics
	// UnfoldedSQL is the translated query text (diagnostics; empty when
	// all arms were pruned).
	UnfoldedSQL string
}

// WeightRU is the paper's "Weight of R+U": rewriting+unfolding cost over
// total cost.
func (p PhaseStats) WeightRU() float64 {
	if p.TotalTime <= 0 {
		return 0
	}
	return float64(p.RewriteTime+p.UnfoldTime) / float64(p.TotalTime)
}

// Answer is a query result with its phase statistics.
type Answer struct {
	*sparql.ResultSet
	Stats PhaseStats
}

// ParseQuery parses SPARQL with the spec's prefix bindings.
func (e *Engine) ParseQuery(src string) (*sparql.Query, error) {
	return sparql.Parse(src, e.spec.Prefixes)
}

// Query parses and answers a SPARQL query.
func (e *Engine) Query(src string) (*Answer, error) {
	q, err := e.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return e.Answer(q)
}

// Answer runs the full query-answering pipeline.
func (e *Engine) Answer(q *sparql.Query) (*Answer, error) {
	start := time.Now()
	st := &PhaseStats{}
	if q.HasAggregates() {
		rs, ok, err := e.tryAggregatePushdown(q, st)
		if err != nil {
			return nil, err
		}
		if ok {
			st.TotalTime = time.Since(start)
			return &Answer{ResultSet: rs, Stats: *st}, nil
		}
		// fall through: in-memory aggregation over translated bindings
		*st = PhaseStats{}
	}
	bindings, err := e.evalPattern(q.Pattern, st)
	if err != nil {
		return nil, err
	}
	tStart := time.Now()
	rs, err := sparql.Finalize(q, bindings)
	if err != nil {
		return nil, err
	}
	st.TranslateTime += time.Since(tStart)
	st.TotalTime = time.Since(start)
	return &Answer{ResultSet: rs, Stats: *st}, nil
}

// evalPattern evaluates the SPARQL algebra; BGP leaves go through the
// rewrite → unfold → execute pipeline, non-leaf operators combine binding
// sets (the way OBDA engines stage OPTIONAL/UNION around SQL fragments).
func (e *Engine) evalPattern(p sparql.GraphPattern, st *PhaseStats) ([]sparql.Binding, error) {
	switch x := p.(type) {
	case *sparql.BGP:
		return e.answerBGP(x, nil, st)
	case *sparql.Filter:
		// Push simple comparisons into the leaf when it is a BGP.
		if bgp, ok := x.Inner.(*sparql.BGP); ok {
			push := pushableFilters(x.Cond)
			bindings, err := e.answerBGP(bgp, push, st)
			if err != nil {
				return nil, err
			}
			return filterBindings(bindings, x.Cond), nil
		}
		inner, err := e.evalPattern(x.Inner, st)
		if err != nil {
			return nil, err
		}
		return filterBindings(inner, x.Cond), nil
	case *sparql.Group:
		cur := []sparql.Binding{{}}
		for _, part := range x.Parts {
			next, err := e.evalPattern(part, st)
			if err != nil {
				return nil, err
			}
			cur = sparql.JoinBindings(cur, next)
		}
		return cur, nil
	case *sparql.Optional:
		left, err := e.evalPattern(x.Left, st)
		if err != nil {
			return nil, err
		}
		right, err := e.evalPattern(x.Right, st)
		if err != nil {
			return nil, err
		}
		return sparql.LeftJoinBindings(left, right), nil
	case *sparql.Union:
		left, err := e.evalPattern(x.Left, st)
		if err != nil {
			return nil, err
		}
		right, err := e.evalPattern(x.Right, st)
		if err != nil {
			return nil, err
		}
		return append(left, right...), nil
	}
	return nil, fmt.Errorf("core: unsupported pattern %T", p)
}

func filterBindings(bs []sparql.Binding, cond sparql.Expr) []sparql.Binding {
	var out []sparql.Binding
	for _, b := range bs {
		if sparql.FilterKeeps(cond, b) {
			out = append(out, b)
		}
	}
	return out
}

// pushableFilters extracts var-op-constant comparisons from a filter
// conjunction; these are pushed into the unfolded SQL (and re-checked on
// the translated bindings, which keeps pushing safe).
func pushableFilters(cond sparql.Expr) []unfold.PushFilter {
	var out []unfold.PushFilter
	var walk func(sparql.Expr)
	walk = func(ex sparql.Expr) {
		b, ok := ex.(*sparql.BinExpr)
		if !ok {
			return
		}
		if b.Op == "&&" {
			walk(b.L)
			walk(b.R)
			return
		}
		switch b.Op {
		case "=", "!=", "<", "<=", ">", ">=":
			if v, okv := b.L.(*sparql.VarExpr); okv {
				if t, okt := b.R.(*sparql.TermExpr); okt && t.Term.IsLiteral() {
					out = append(out, unfold.PushFilter{Var: v.Name, Op: b.Op, Val: t.Term})
				}
			}
			if v, okv := b.R.(*sparql.VarExpr); okv {
				if t, okt := b.L.(*sparql.TermExpr); okt && t.Term.IsLiteral() {
					out = append(out, unfold.PushFilter{Var: v.Name, Op: flipOp(b.Op), Val: t.Term})
				}
			}
		}
	}
	walk(cond)
	return out
}

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

// answerBGP runs the rewrite/unfold/execute pipeline for one BGP.
func (e *Engine) answerBGP(bgp *sparql.BGP, push []unfold.PushFilter, st *PhaseStats) ([]sparql.Binding, error) {
	if len(bgp.Triples) == 0 {
		return []sparql.Binding{{}}, nil
	}
	// Blank-node variables (_bn…) introduced by the parser are local to
	// the BGP: they are existential, never projected, and are the
	// tree-witness fold candidates. Everything else is an answer variable
	// of the leaf and is protected from folding.
	var answerVars []string
	for _, v := range sparql.PatternVars(bgp) {
		if !strings.HasPrefix(v, "_bn") {
			answerVars = append(answerVars, v)
		}
	}
	cq, err := rewrite.FromBGP(bgp, e.spec.Onto, answerVars)
	if err != nil {
		return nil, err
	}
	if err := e.verifyCQ("translate", cq); err != nil {
		return nil, err
	}
	// Contradictory pushed-filter bounds prove the BGP answerless before
	// any rewriting happens (the filters are conjunctive: every solution
	// would have to satisfy all of them).
	if e.opts.StaticPrune && len(push) > 0 {
		if reason := planck.UnsatisfiableBounds(staticBounds(push)); reason != "" {
			st.StaticUnsatFilters++
			return nil, nil
		}
	}
	protected := append([]string{}, answerVars...)
	for _, f := range push {
		protected = append(protected, f.Var)
	}

	rwStart := time.Now()
	rres, err := e.rewriter.Rewrite(cq, protected)
	if err != nil {
		return nil, err
	}
	st.RewriteTime += time.Since(rwStart)
	st.TreeWitnesses += rres.TreeWitnesses
	st.CQCount += rres.CQCount
	if err := e.verifyUCQ("rewrite", rres.UCQ, cq.Answer); err != nil {
		return nil, err
	}
	ucq := rres.UCQ
	if e.opts.StaticPrune {
		pr := planck.PruneUCQ(ucq, e.spec.Onto)
		st.StaticPrunedCQs += pr.Dropped
		ucq = pr.Kept
		if len(ucq) == 0 {
			return nil, nil // every disjunct statically unsatisfiable
		}
		if err := e.verifyUCQ("static-prune", ucq, cq.Answer); err != nil {
			return nil, err
		}
	}

	unStart := time.Now()
	un, err := unfold.UnfoldOpts(ucq, e.mapping, push, unfold.Opts{Cons: e.cons, StaticPrune: e.opts.StaticPrune})
	if err != nil {
		return nil, err
	}
	st.UnfoldTime += time.Since(unStart)
	st.UnionArms += un.Arms
	st.PrunedArms += un.PrunedArms
	st.SelfJoinsEliminated += un.SelfJoinsEliminated
	st.SubsumedArms += un.SubsumedArms
	st.StaticPrunedArms += un.StaticPrunedCands + un.StaticContradictions
	if un.Stmt == nil {
		return nil, nil // provably empty
	}
	if err := e.verifySQL("unfold", un.Stmt, un.Vars); err != nil {
		return nil, err
	}
	m := un.Metrics()
	st.SQL.Joins += m.Joins
	st.SQL.LeftJoins += m.LeftJoins
	st.SQL.Unions += m.Unions
	st.SQL.InnerQueries += m.InnerQueries
	if st.UnfoldedSQL == "" {
		st.UnfoldedSQL = un.Stmt.String()
	}

	exStart := time.Now()
	res, err := e.spec.DB.ExecSelect(un.Stmt)
	if err != nil {
		return nil, fmt.Errorf("core: executing unfolded SQL: %w", err)
	}
	st.ExecTime += time.Since(exStart)

	trStart := time.Now()
	bindings := translateRows(un.Vars, res)
	st.TranslateTime += time.Since(trStart)
	// Distinct at the BGP level: SQL UNION ALL plus multiple mapping
	// assertions can produce duplicate RDF solutions that a virtual graph
	// (an RDF *set*) must not expose twice.
	bindings = dedupeBindings(bindings, un.Vars)
	return bindings, nil
}

// translateRows is phase 4's result translation: SQL rows (lexical, tag,
// datatype column triples) become RDF term bindings.
func translateRows(vars []string, res *sqldb.Result) []sparql.Binding {
	out := make([]sparql.Binding, 0, len(res.Rows))
	for _, row := range res.Rows {
		b := make(sparql.Binding, len(vars))
		for i, v := range vars {
			lex := row[3*i]
			if lex.IsNull() {
				continue
			}
			tag, _ := row[3*i+1].AsInt()
			dt := row[3*i+2].S
			b[v] = termFromValue(lex, int(tag), dt)
		}
		out = append(out, b)
	}
	return out
}

func termFromValue(lex sqldb.Value, tag int, dt string) rdf.Term {
	switch tag {
	case unfold.TagIRI:
		return rdf.NewIRI(lex.String())
	case unfold.TagLiteral:
		return rdf.NewLiteral(lex.String())
	default:
		if dt == "" {
			dt = derivedDatatype(lex)
		}
		if dt == rdf.XSDString {
			return rdf.NewLiteral(lex.String())
		}
		return rdf.NewTypedLiteral(lex.String(), dt)
	}
}

func derivedDatatype(v sqldb.Value) string {
	switch v.Kind {
	case sqldb.KindInt:
		return rdf.XSDInteger
	case sqldb.KindFloat:
		return rdf.XSDDouble
	case sqldb.KindBool:
		return rdf.XSDBoolean
	case sqldb.KindDate:
		return rdf.XSDDate
	}
	return rdf.XSDString
}

func dedupeBindings(bs []sparql.Binding, vars []string) []sparql.Binding {
	seen := make(map[string]bool, len(bs))
	out := bs[:0]
	for _, b := range bs {
		var sb strings.Builder
		for _, v := range vars {
			t := b[v]
			s := t.String()
			fmt.Fprintf(&sb, "%d:%s", len(s), s)
		}
		k := sb.String()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, b)
	}
	return out
}
