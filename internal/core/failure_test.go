package core

import (
	"strings"
	"testing"

	"npdbench/internal/owl"
	"npdbench/internal/r2rml"
	"npdbench/internal/rdf"
	"npdbench/internal/sqldb"
)

// Failure-injection tests: the engine must surface broken specifications
// as errors, not wrong answers or panics.

func TestEngineRejectsIncompleteSpec(t *testing.T) {
	spec := exampleSpec(t)
	broken := spec
	broken.Onto = nil
	if _, err := NewEngine(broken, DefaultOptions()); err == nil {
		t.Fatal("nil ontology must be rejected")
	}
	broken = spec
	broken.DB = nil
	if _, err := NewEngine(broken, DefaultOptions()); err == nil {
		t.Fatal("nil database must be rejected")
	}
	broken = spec
	broken.Mapping = nil
	if _, err := NewStoreEngine(broken, StoreOptions{}); err == nil {
		t.Fatal("nil mapping must be rejected")
	}
}

func TestEngineSurfacesMappingToMissingTable(t *testing.T) {
	spec := exampleSpec(t)
	spec.Mapping.Add(&r2rml.TriplesMap{
		Name:    "broken-src",
		Table:   "no_such_table",
		Subject: r2rml.IRIMap(exNS + "x/{id}"),
		Classes: []string{exNS + "Employee"},
	})
	e, err := NewEngine(spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Query(`SELECT ?x WHERE { ?x a :Employee }`)
	if err == nil {
		t.Fatal("query over a mapping to a missing table must fail loudly")
	}
	if !strings.Contains(err.Error(), "no_such_table") {
		t.Fatalf("error should name the missing table: %v", err)
	}
}

func TestEngineSurfacesMalformedMappingSQL(t *testing.T) {
	spec := exampleSpec(t)
	spec.Mapping.Add(&r2rml.TriplesMap{
		Name:    "broken-sql",
		SQL:     "SELEKT id FROM TEmployee",
		Subject: r2rml.IRIMap(exNS + "emp/{id}"),
		Classes: []string{exNS + "Employee"},
	})
	e, err := NewEngine(spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(`SELECT ?x WHERE { ?x a :Employee }`); err == nil {
		t.Fatal("malformed mapping SQL must fail the query")
	}
}

func TestEngineRejectsVariablePredicateQuery(t *testing.T) {
	e, err := NewEngine(exampleSpec(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(`SELECT ?p WHERE { ?x ?p ?y }`); err == nil {
		t.Fatal("variable predicates are out of fragment and must error")
	}
}

func TestEngineParseErrorsPropagate(t *testing.T) {
	e, err := NewEngine(exampleSpec(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{
		"",
		"SELECT",
		"SELECT ?x WHERE { ?x a }",
		"SELECT ?x WHERE { ?x a :Employee",
	} {
		if _, err := e.Query(bad); err == nil {
			t.Errorf("expected parse error for %q", bad)
		}
	}
}

func TestUnmappedTermIsEmptyNotError(t *testing.T) {
	// Querying a declared class with no mapping is a valid question whose
	// answer is empty.
	spec := exampleSpec(t)
	spec.Onto.DeclareClass(exNS + "Ghost")
	e, err := NewEngine(spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ans, err := e.Query(`SELECT ?x WHERE { ?x a :Ghost }`)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 0 {
		t.Fatalf("got %d rows", ans.Len())
	}
}

func TestLimitOffsetThroughEngine(t *testing.T) {
	e, err := NewEngine(exampleSpec(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	all, err := e.Query(`SELECT ?x WHERE { ?x a :Employee } ORDER BY ?x`)
	if err != nil {
		t.Fatal(err)
	}
	page, err := e.Query(`SELECT ?x WHERE { ?x a :Employee } ORDER BY ?x LIMIT 1 OFFSET 1`)
	if err != nil {
		t.Fatal(err)
	}
	if page.Len() != 1 || all.Len() < 2 {
		t.Fatalf("paging wrong: all=%d page=%d", all.Len(), page.Len())
	}
	if page.Rows[0][0] != all.Rows[1][0] {
		t.Fatalf("offset row mismatch: %v vs %v", page.Rows[0][0], all.Rows[1][0])
	}
}

func TestAggregateAgreementWithStore(t *testing.T) {
	spec := exampleSpec(t)
	e, err := NewEngine(spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewStoreEngine(spec, StoreOptions{Reasoning: true})
	if err != nil {
		t.Fatal(err)
	}
	q := `SELECT (COUNT(?x) AS ?n) WHERE { ?x a :Employee }`
	a1, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := se.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Rows[0][0] != a2.Rows[0][0] {
		t.Fatalf("aggregate disagreement: %v vs %v", a1.Rows[0][0], a2.Rows[0][0])
	}
	if a1.Rows[0][0] != rdf.NewInteger(2) {
		t.Fatalf("count = %v, want 2", a1.Rows[0][0])
	}
}

func TestEngineWithEmptyDatabase(t *testing.T) {
	spec := exampleSpec(t)
	// fresh empty DB with the same schema
	empty := sqldb.NewDatabase("empty")
	for _, tab := range spec.DB.Tables() {
		if _, err := empty.CreateTable(tab.Def); err != nil {
			t.Fatal(err)
		}
	}
	spec.DB = empty
	e, err := NewEngine(spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ans, err := e.Query(`SELECT ?x WHERE { ?x a :Person }`)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 0 {
		t.Fatalf("empty database produced %d rows", ans.Len())
	}
}

func TestDisjointnessEntailment(t *testing.T) {
	spec := exampleSpec(t)
	spec.Onto.AddDisjoint(owl.NamedConcept(exNS+"Employee"), owl.NamedConcept(exNS+"Branch"))
	// subclassing makes the entailed disjointness visible
	spec.Onto.AddSubClass(owl.NamedConcept(exNS+"Manager"), owl.NamedConcept(exNS+"Employee"))
	if !spec.Onto.DisjointWith(owl.NamedConcept(exNS+"Manager"), owl.NamedConcept(exNS+"Branch")) {
		t.Fatal("disjointness must propagate to subclasses")
	}
}
