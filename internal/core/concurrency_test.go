package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
)

// stressQueries is a mixed workload: class scan, hierarchy reasoning,
// joins, a filter, an aggregate, and a union — every evaluator path that
// can observe a shared cached plan.
var stressQueries = []string{
	`SELECT ?x WHERE { ?x a :Employee }`,
	`SELECT DISTINCT ?x WHERE { ?x a :Person }`,
	`SELECT ?n ?p WHERE { ?x :name ?n . ?x :SellsProduct ?p }`,
	`SELECT ?n WHERE { ?x :name ?n . FILTER(?n = "John") }`,
	`SELECT (COUNT(?x) AS ?c) WHERE { ?x a :Employee }`,
	`SELECT ?x WHERE { { ?x a :Employee } UNION { ?x a :ProductSize } }`,
	`SELECT ?x ?b WHERE { ?x :WorksFor ?b }`,
}

// canonicalRows renders an answer order-insensitively for comparison.
func canonicalRows(a *Answer) string {
	rows := make([]string, len(a.Rows))
	for i, r := range a.Rows {
		parts := make([]string, len(r))
		for j, term := range r {
			parts[j] = term.String()
		}
		rows[i] = strings.Join(parts, "\t")
	}
	sort.Strings(rows)
	return strings.Join(rows, "\n")
}

// TestConcurrentAnswerStress runs many goroutines against one shared
// engine (cache on and cache off) and checks every concurrent answer
// against a sequential baseline. The -race run in ci.sh is the real
// assertion: any in-place AST or plan mutation shows up as a data race.
func TestConcurrentAnswerStress(t *testing.T) {
	for _, cache := range []bool{true, false} {
		cache := cache
		t.Run(fmt.Sprintf("cache=%v", cache), func(t *testing.T) {
			opts := DefaultOptions()
			opts.PlanCache = cache
			e, err := NewEngine(exampleSpec(t), opts)
			if err != nil {
				t.Fatal(err)
			}

			baseline := make(map[string]string, len(stressQueries))
			for _, q := range stressQueries {
				ans, err := e.Query(q)
				if err != nil {
					t.Fatalf("baseline %q: %v", q, err)
				}
				baseline[q] = canonicalRows(ans)
			}

			const goroutines = 8
			const iters = 25
			var wg sync.WaitGroup
			errs := make(chan error, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						q := stressQueries[(g+i)%len(stressQueries)]
						ans, err := e.Query(q)
						if err != nil {
							errs <- fmt.Errorf("goroutine %d %q: %w", g, q, err)
							return
						}
						if got := canonicalRows(ans); got != baseline[q] {
							errs <- fmt.Errorf("goroutine %d %q: answer diverged from baseline\ngot:\n%s\nwant:\n%s",
								g, q, got, baseline[q])
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}

			if cache {
				st, on := e.PlanCacheStats()
				if !on || st.Hits == 0 {
					t.Fatalf("stress run produced no cache hits: %+v", st)
				}
			}
		})
	}
}

// TestConcurrentAnswerWithInvalidation interleaves queries with cache
// invalidations; answers must stay correct throughout (invalidation is
// the one cache mutation allowed concurrently with traffic).
func TestConcurrentAnswerWithInvalidation(t *testing.T) {
	e, err := NewEngine(exampleSpec(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	const q = `SELECT ?n ?p WHERE { ?x :name ?n . ?x :SellsProduct ?p }`
	base, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	want := canonicalRows(base)

	var wg sync.WaitGroup
	errs := make(chan error, 5)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				ans, err := e.Query(q)
				if err != nil {
					errs <- err
					return
				}
				if canonicalRows(ans) != want {
					errs <- fmt.Errorf("goroutine %d iter %d: answer diverged", g, i)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			e.InvalidatePlans()
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
