package core

import (
	"testing"

	"npdbench/internal/planck"
	"npdbench/internal/rewrite"
	"npdbench/internal/sqldb"
	"npdbench/internal/unfold"
)

// VerifyMode controls the per-transform plan verifier (package planck).
type VerifyMode int

const (
	// VerifyAuto (the zero value) verifies plans when running under `go
	// test` and skips verification otherwise: the invariants guard the
	// test suite and the CI pipeline for free without taxing production
	// query latency.
	VerifyAuto VerifyMode = iota
	// VerifyOn checks every transform unconditionally (obdaq -verify).
	VerifyOn
	// VerifyOff disables the verifier (overhead measurements).
	VerifyOff
)

func (m VerifyMode) enabled() bool {
	switch m {
	case VerifyOn:
		return true
	case VerifyOff:
		return false
	default:
		return testing.Testing()
	}
}

// verifyCQ checks the translated CQ after a pipeline stage; a nil error
// means verification is off or the plan is sound.
func (e *Engine) verifyCQ(stage string, cq *rewrite.CQ) error {
	if !e.verify {
		return nil
	}
	return e.verifier.CheckCQ(stage, cq)
}

func (e *Engine) verifyUCQ(stage string, ucq rewrite.UCQ, answer []string) error {
	if !e.verify {
		return nil
	}
	return e.verifier.CheckUCQ(stage, ucq, answer)
}

func (e *Engine) verifySQL(stage string, stmt *sqldb.SelectStmt, vars []string) error {
	if !e.verify {
		return nil
	}
	return e.verifier.CheckSQL(stage, stmt, vars)
}

// staticBounds converts the pushable filter fragment into planck bounds for
// contradiction detection. Both types describe the same var-op-literal
// shape; the conversion is lossless.
func staticBounds(push []unfold.PushFilter) []planck.Bound {
	out := make([]planck.Bound, len(push))
	for i, f := range push {
		out[i] = planck.Bound{Var: f.Var, Op: f.Op, Val: f.Val}
	}
	return out
}
