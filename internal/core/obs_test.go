package core

import (
	"strings"
	"testing"
	"time"

	"npdbench/internal/obs"
)

func obsOptions(observer *obs.Observer) Options {
	o := DefaultOptions()
	o.Obs = observer
	return o
}

// TestTraceStageTaxonomy checks that a traced single-BGP query emits the
// full seven-stage span taxonomy in pipeline order.
func TestTraceStageTaxonomy(t *testing.T) {
	e, err := NewEngine(exampleSpec(t), obsOptions(&obs.Observer{Tracing: true}))
	if err != nil {
		t.Fatal(err)
	}
	ans, err := e.Query(`SELECT ?x WHERE { ?x a :Employee }`)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Trace == nil {
		t.Fatal("tracing enabled but Answer.Trace is nil")
	}
	want := []string{"parse", "rewrite", "static-prune", "unfold", "plan", "execute", "assemble"}
	got := ans.Trace.Root.StageNames()
	if len(got) != len(want) {
		t.Fatalf("stages = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stage %d = %q, want %q\n%s", i, got[i], want[i], ans.Trace.Render())
		}
	}
	// Pre-parsed entry point still carries all stages, with parse cached.
	q, err := e.ParseQuery(`SELECT ?x WHERE { ?x a :Employee }`)
	if err != nil {
		t.Fatal(err)
	}
	ans2, err := e.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := ans2.Trace.Root.StageNames(); len(got) != len(want) {
		t.Fatalf("pre-parsed stages = %v", got)
	}
	if !strings.Contains(ans2.Trace.Render(), "cached") {
		t.Fatalf("parse span not marked cached:\n%s", ans2.Trace.Render())
	}
	if ans.Trace.ID == ans2.Trace.ID {
		t.Fatal("trace ids must be unique")
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	e, err := NewEngine(exampleSpec(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ans, err := e.Query(`SELECT ?x WHERE { ?x a :Employee }`)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Trace != nil || ans.Profiles != nil {
		t.Fatal("observability must be fully off without an observer")
	}
}

// TestExecProfileCollection checks the operator-level EXPLAIN ANALYZE path
// through the engine: a profile per executed SQL statement, with row
// counts consistent with the answer.
func TestExecProfileCollection(t *testing.T) {
	e, err := NewEngine(exampleSpec(t), obsOptions(&obs.Observer{ExecProfile: true}))
	if err != nil {
		t.Fatal(err)
	}
	ans, err := e.Query(`SELECT ?n ?p WHERE { ?x :name ?n . ?x :SellsProduct ?p }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Profiles) != 1 {
		t.Fatalf("profiles = %d, want 1", len(ans.Profiles))
	}
	prof := ans.Profiles[0]
	if prof.Op != "query" {
		t.Fatalf("root op = %q", prof.Op)
	}
	// The SQL result feeds the BGP translation; after dedup the answer can
	// only shrink.
	if prof.Rows < ans.Len() {
		t.Fatalf("profile rows=%d < answer rows=%d\n%s", prof.Rows, ans.Len(), prof.Render())
	}
	if prof.Find("scan") == nil {
		t.Fatalf("no scan operator:\n%s", prof.Render())
	}
}

func TestMetricsRecording(t *testing.T) {
	reg := obs.NewRegistry()
	e, err := NewEngine(exampleSpec(t), obsOptions(&obs.Observer{Metrics: reg}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := e.Query(`SELECT ?x WHERE { ?x a :Employee }`); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Query(`SELECT ?x WHERE { this is not sparql`); err == nil {
		t.Fatal("malformed query should fail")
	}
	if got := reg.Counter("npdbench_queries_total").Value(); got != 4 {
		t.Fatalf("queries_total = %d, want 4", got)
	}
	if got := reg.Counter("npdbench_query_errors_total").Value(); got != 1 {
		t.Fatalf("query_errors_total = %d, want 1", got)
	}
	h := reg.Histogram("npdbench_query_seconds", obs.DefDurationBuckets)
	if h.Count() != 3 {
		t.Fatalf("query_seconds count = %d, want 3 (failed runs excluded)", h.Count())
	}
	text := reg.PrometheusText()
	for _, want := range []string{
		"npdbench_queries_total 4",
		`npdbench_stage_seconds_count{stage="rewrite"} 3`,
		`npdbench_stage_seconds_count{stage="execute"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestWeightRU(t *testing.T) {
	cases := []struct {
		st   PhaseStats
		want float64
	}{
		{PhaseStats{}, 0}, // zero total must not divide by zero
		{PhaseStats{RewriteTime: 2, UnfoldTime: 3, TotalTime: 10}, 0.5},
		{PhaseStats{RewriteTime: 10, TotalTime: 10}, 1},
		{PhaseStats{TotalTime: -5}, 0},
	}
	for i, c := range cases {
		if got := c.st.WeightRU(); got != c.want {
			t.Errorf("case %d: WeightRU = %g, want %g", i, got, c.want)
		}
	}
}

func TestLoadStats(t *testing.T) {
	e, err := NewEngine(exampleSpec(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ls := e.LoadStats()
	if ls.LoadTime <= 0 {
		t.Fatal("load time not recorded")
	}
	if ls.MappingAssertions <= 0 {
		t.Fatal("mapping assertions not counted")
	}
	// T-mapping saturation can only add assertions.
	if ls.SaturatedAssertions < ls.MappingAssertions {
		t.Fatalf("saturated %d < base %d", ls.SaturatedAssertions, ls.MappingAssertions)
	}
	if ls.Classes <= 0 || ls.ObjectProperties <= 0 {
		t.Fatalf("ontology stats missing: %+v", ls)
	}
	// Without saturation the counts stay equal.
	e2, err := NewEngine(exampleSpec(t), Options{TMappings: false})
	if err != nil {
		t.Fatal(err)
	}
	if ls2 := e2.LoadStats(); ls2.SaturatedAssertions != ls2.MappingAssertions {
		t.Fatalf("TMappings off must not saturate: %+v", ls2)
	}
}

func TestStageDurationsSumBelowTotal(t *testing.T) {
	e, err := NewEngine(exampleSpec(t), obsOptions(&obs.Observer{Tracing: true}))
	if err != nil {
		t.Fatal(err)
	}
	ans, err := e.Query(`SELECT ?x WHERE { ?x a :Employee }`)
	if err != nil {
		t.Fatal(err)
	}
	var sum time.Duration
	for _, d := range ans.Trace.StageDurations() {
		if d < 0 {
			t.Fatal("negative stage duration")
		}
		sum += d
	}
	if root := ans.Trace.Root.Duration; sum > 2*root {
		t.Fatalf("stage durations %v wildly exceed root %v", sum, root)
	}
}
