package core

import (
	"testing"

	"npdbench/internal/owl"
	"npdbench/internal/r2rml"
)

func TestConsistencyOfCleanInstance(t *testing.T) {
	spec := exampleSpec(t)
	spec.Onto.AddDisjoint(
		owl.NamedConcept(exNS+"Employee"),
		owl.NamedConcept(exNS+"ProductSize"))
	e, err := NewEngine(spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.CheckConsistency(3)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Consistent {
		t.Fatalf("clean instance reported inconsistent: %v", rep.Violations)
	}
	if rep.ChecksRun == 0 {
		t.Fatal("no disjointness axioms checked")
	}
}

func TestConsistencyDetectsViolation(t *testing.T) {
	spec := exampleSpec(t)
	// Employee and Branch disjoint — then map branches with the employee
	// IRI template so the same individuals fall in both classes.
	spec.Onto.AddDisjoint(
		owl.NamedConcept(exNS+"Employee"),
		owl.NamedConcept(exNS+"Branch"))
	spec.Mapping.Add(&r2rml.TriplesMap{
		Name:    "broken",
		SQL:     "SELECT id FROM TEmployee",
		Subject: r2rml.IRIMap(exNS + "emp/{id}"),
		Classes: []string{exNS + "Branch"},
	})
	e, err := NewEngine(spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.CheckConsistency(2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Consistent {
		t.Fatal("violation not detected")
	}
	found := false
	for _, v := range rep.Violations {
		if v.Kind == "class" && v.Witness.Value != "" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no class violation witness: %v", rep.Violations)
	}
}

func TestConsistencyViaHierarchy(t *testing.T) {
	// The violation is indirect: disjoint(Person, Branch) and the broken
	// mapping puts employee IRIs (⊑ Person) into Branch.
	spec := exampleSpec(t)
	spec.Onto.AddDisjoint(
		owl.NamedConcept(exNS+"Person"),
		owl.NamedConcept(exNS+"Branch"))
	spec.Mapping.Add(&r2rml.TriplesMap{
		Name:    "broken",
		SQL:     "SELECT id FROM TEmployee",
		Subject: r2rml.IRIMap(exNS + "emp/{id}"),
		Classes: []string{exNS + "Branch"},
	})
	e, err := NewEngine(spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.CheckConsistency(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Consistent {
		t.Fatal("hierarchy-mediated violation not detected (Employee ⊑ Person)")
	}
}
