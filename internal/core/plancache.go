package core

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"npdbench/internal/obs"
	"npdbench/internal/sparql"
	"npdbench/internal/unfold"
)

// The compiled-query cache memoizes the per-BGP compilation result — the
// rewritten UCQ after static pruning, the unfolded SQL plan, and the
// projection/tag metadata — so a served query pays rewrite/unfold/plan once
// and every later execution of the same BGP+filter shape is execute-only.
// Entries are immutable once published (the executor never writes into a
// SelectStmt; binding resolves column slots into locals), which is what
// makes sharing one cached plan across concurrent clients safe.

// DefaultPlanCacheSize is the entry bound used when Options.PlanCacheSize
// is zero.
const DefaultPlanCacheSize = 256

// planShardCount is the number of lock-sharded LRU buckets.
const planShardCount = 8

// PlanCacheStats is a point-in-time snapshot of the cache counters.
type PlanCacheStats struct {
	Hits          int64
	Misses        int64
	Evictions     int64
	Invalidations int64
	Entries       int
	Capacity      int
}

type planEntry struct {
	key        string
	epoch      uint64
	plan       *compiledPlan
	prev, next *planEntry
}

// planShard is one LRU bucket: a map for lookup plus an intrusive
// doubly-linked list ordered most- to least-recently used.
type planShard struct {
	mu      sync.Mutex
	cap     int                   // immutable after construction
	entries map[string]*planEntry // guarded by mu
	head    *planEntry            // most recently used; guarded by mu
	tail    *planEntry            // least recently used; guarded by mu
}

// planCache is the bounded, sharded LRU. All counters are atomics; the
// registry handles are nil when the engine runs without metrics (obs
// counters and gauges are nil-safe).
type planCache struct {
	shards   [planShardCount]planShard
	epoch    atomic.Uint64
	entryCnt atomic.Int64

	hits          atomic.Int64
	misses        atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64

	mHits          *obs.Counter
	mMisses        *obs.Counter
	mEvictions     *obs.Counter
	mInvalidations *obs.Counter
	mEntries       *obs.Gauge
	mCapacity      *obs.Gauge
}

func newPlanCache(size int, reg *obs.Registry) *planCache {
	if size <= 0 {
		size = DefaultPlanCacheSize
	}
	perShard := (size + planShardCount - 1) / planShardCount
	c := &planCache{}
	for i := range c.shards {
		c.shards[i].cap = perShard
		//lint:ignore lockguard construction happens-before publication of the cache
		c.shards[i].entries = make(map[string]*planEntry)
	}
	if reg != nil {
		c.mHits = reg.Counter("npdbench_compile_cache_hits_total")
		c.mMisses = reg.Counter("npdbench_compile_cache_misses_total")
		c.mEvictions = reg.Counter("npdbench_compile_cache_evictions_total")
		c.mInvalidations = reg.Counter("npdbench_compile_cache_invalidations_total")
		c.mEntries = reg.Gauge("npdbench_compile_cache_entries")
		c.mCapacity = reg.Gauge("npdbench_compile_cache_capacity")
		c.mCapacity.Set(int64(perShard * planShardCount))
	}
	return c
}

func (c *planCache) capacity() int {
	return c.shards[0].cap * planShardCount
}

// epochNow returns the current configuration epoch; a compilation started
// under an older epoch is rejected by put, so a plan built against a
// constraint set that was swapped out mid-compile never lands in the cache.
func (c *planCache) epochNow() uint64 { return c.epoch.Load() }

func (c *planCache) shard(key string) *planShard {
	// FNV-1a.
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h%planShardCount]
}

func (c *planCache) get(key string) (*compiledPlan, bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	en := sh.entries[key]
	if en == nil || en.epoch != c.epoch.Load() {
		sh.mu.Unlock()
		c.misses.Add(1)
		c.mMisses.Inc()
		return nil, false
	}
	sh.moveToFront(en)
	plan := en.plan
	sh.mu.Unlock()
	c.hits.Add(1)
	c.mHits.Inc()
	return plan, true
}

// put publishes a plan compiled under the given epoch. Stale epochs (an
// invalidation happened while compiling) are dropped.
func (c *planCache) put(key string, plan *compiledPlan, epoch uint64) {
	if epoch != c.epoch.Load() {
		return
	}
	sh := c.shard(key)
	sh.mu.Lock()
	if en, ok := sh.entries[key]; ok {
		en.plan = plan
		en.epoch = epoch
		sh.moveToFront(en)
		sh.mu.Unlock()
		return
	}
	en := &planEntry{key: key, epoch: epoch, plan: plan}
	sh.entries[key] = en
	sh.pushFront(en)
	evicted := 0
	for len(sh.entries) > sh.cap {
		victim := sh.tail
		sh.unlink(victim)
		delete(sh.entries, victim.key)
		evicted++
	}
	sh.mu.Unlock()
	c.entryCnt.Add(int64(1 - evicted))
	if evicted > 0 {
		c.evictions.Add(int64(evicted))
		c.mEvictions.Add(int64(evicted))
	}
	c.mEntries.Set(c.entryCnt.Load())
}

// invalidate drops every entry and bumps the epoch so in-flight
// compilations cannot repopulate the cache with pre-invalidation plans.
func (c *planCache) invalidate() {
	c.epoch.Add(1)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.entries = make(map[string]*planEntry)
		sh.head, sh.tail = nil, nil
		sh.mu.Unlock()
	}
	c.entryCnt.Store(0)
	c.invalidations.Add(1)
	c.mInvalidations.Inc()
	c.mEntries.Set(0)
}

func (c *planCache) stats() PlanCacheStats {
	return PlanCacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Entries:       int(c.entryCnt.Load()),
		Capacity:      c.capacity(),
	}
}

// --- intrusive LRU list ---

// pushFront links en as the most-recently-used entry.
//
//lint:holds mu
func (sh *planShard) pushFront(en *planEntry) {
	en.prev = nil
	en.next = sh.head
	if sh.head != nil {
		sh.head.prev = en
	}
	sh.head = en
	if sh.tail == nil {
		sh.tail = en
	}
}

// unlink removes en from the LRU list.
//
//lint:holds mu
func (sh *planShard) unlink(en *planEntry) {
	if en.prev != nil {
		en.prev.next = en.next
	} else {
		sh.head = en.next
	}
	if en.next != nil {
		en.next.prev = en.prev
	} else {
		sh.tail = en.prev
	}
	en.prev, en.next = nil, nil
}

// moveToFront marks en most recently used.
//
//lint:holds mu
func (sh *planShard) moveToFront(en *planEntry) {
	if sh.head == en {
		return
	}
	sh.unlink(en)
	sh.pushFront(en)
}

// planKey derives the canonical cache signature of a BGP plus its pushed
// filters. Triple patterns and filter conjuncts are order-insensitive —
// both the rewriting (a CQ is a set of atoms) and the pushed-filter
// conjunction (checked only as "all pushed") are — so both lists are
// sorted before joining. Field and record separators are control bytes
// that cannot appear inside rendered terms, keeping the signature
// injective over distinct shapes.
func planKey(bgp *sparql.BGP, push []unfold.PushFilter) string {
	ts := make([]string, len(bgp.Triples))
	for i, t := range bgp.Triples {
		ts[i] = t.String()
	}
	sort.Strings(ts)
	fs := make([]string, len(push))
	for i, f := range push {
		fs[i] = f.Var + "\x1f" + f.Op + "\x1f" + f.Val.String()
	}
	sort.Strings(fs)
	return strings.Join(ts, "\x1e") + "\x1d" + strings.Join(fs, "\x1e")
}
