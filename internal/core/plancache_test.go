package core

import (
	"fmt"
	"strings"
	"testing"

	"npdbench/internal/obs"
	"npdbench/internal/rdf"
	"npdbench/internal/sparql"
	"npdbench/internal/unfold"
)

func tp(s, p, o sparql.TermOrVar) sparql.TriplePattern {
	return sparql.TriplePattern{S: s, P: p, O: o}
}

func TestPlanKeyCanonicalization(t *testing.T) {
	name := sparql.T(rdf.NewIRI(exNS + "name"))
	sells := sparql.T(rdf.NewIRI(exNS + "SellsProduct"))
	a := tp(sparql.V("x"), name, sparql.V("n"))
	b := tp(sparql.V("x"), sells, sparql.V("p"))

	k1 := planKey(&sparql.BGP{Triples: []sparql.TriplePattern{a, b}}, nil)
	k2 := planKey(&sparql.BGP{Triples: []sparql.TriplePattern{b, a}}, nil)
	if k1 != k2 {
		t.Fatalf("triple order changed the key:\n%q\n%q", k1, k2)
	}

	// Different variable naming is a different shape (no alpha-renaming in
	// the signature) and must not collide.
	c := tp(sparql.V("y"), name, sparql.V("n"))
	k3 := planKey(&sparql.BGP{Triples: []sparql.TriplePattern{c, b}}, nil)
	if k1 == k3 {
		t.Fatalf("distinct shapes share a key: %q", k1)
	}

	// Pushed filters are order-insensitive too.
	f1 := unfold.PushFilter{Var: "n", Op: "=", Val: rdf.NewLiteral("John")}
	f2 := unfold.PushFilter{Var: "p", Op: "!=", Val: rdf.NewLiteral("p1")}
	bgp := &sparql.BGP{Triples: []sparql.TriplePattern{a, b}}
	if planKey(bgp, []unfold.PushFilter{f1, f2}) != planKey(bgp, []unfold.PushFilter{f2, f1}) {
		t.Fatal("filter order changed the key")
	}
	if planKey(bgp, []unfold.PushFilter{f1}) == planKey(bgp, nil) {
		t.Fatal("filtered and unfiltered shapes share a key")
	}
	f3 := unfold.PushFilter{Var: "n", Op: "=", Val: rdf.NewLiteral("Lisa")}
	if planKey(bgp, []unfold.PushFilter{f1}) == planKey(bgp, []unfold.PushFilter{f3}) {
		t.Fatal("different filter values share a key")
	}
}

// sameShardKeys returns n keys that all hash to the same shard as the first
// generated key, so LRU behavior can be tested deterministically.
func sameShardKeys(c *planCache, n int) []string {
	target := c.shard("seed-key")
	keys := []string{}
	for i := 0; len(keys) < n; i++ {
		k := fmt.Sprintf("key-%d", i)
		if c.shard(k) == target {
			keys = append(keys, k)
		}
	}
	return keys
}

func TestPlanCacheLRUEviction(t *testing.T) {
	c := newPlanCache(16, nil) // 2 entries per shard
	keys := sameShardKeys(c, 3)

	c.put(keys[0], &compiledPlan{}, 0)
	c.put(keys[1], &compiledPlan{}, 0)
	if _, ok := c.get(keys[0]); !ok { // keys[0] becomes most recently used
		t.Fatal("expected hit on keys[0]")
	}
	c.put(keys[2], &compiledPlan{}, 0) // shard over cap: evicts LRU keys[1]

	if _, ok := c.get(keys[1]); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.get(keys[0]); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if _, ok := c.get(keys[2]); !ok {
		t.Fatal("newest entry was evicted")
	}
	st := c.stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want 2", st.Entries)
	}
	if st.Capacity != 16 {
		t.Fatalf("capacity = %d, want 16", st.Capacity)
	}
}

func TestPlanCacheBoundedUnderLoad(t *testing.T) {
	c := newPlanCache(8, nil) // 1 entry per shard
	for i := 0; i < 100; i++ {
		c.put(fmt.Sprintf("k%d", i), &compiledPlan{}, 0)
	}
	st := c.stats()
	if st.Entries > 8 {
		t.Fatalf("entries = %d exceeds capacity %d", st.Entries, st.Capacity)
	}
	if st.Evictions < 100-8 {
		t.Fatalf("evictions = %d, want >= %d", st.Evictions, 100-8)
	}
}

func TestPlanCacheEpochGuardsStalePut(t *testing.T) {
	c := newPlanCache(8, nil)
	epoch := c.epochNow()
	c.invalidate() // a config change lands while "compiling"
	c.put("stale", &compiledPlan{}, epoch)
	if _, ok := c.get("stale"); ok {
		t.Fatal("pre-invalidation plan was published after invalidate")
	}
	c.put("fresh", &compiledPlan{}, c.epochNow())
	if _, ok := c.get("fresh"); !ok {
		t.Fatal("current-epoch put did not land")
	}
	if st := c.stats(); st.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", st.Invalidations)
	}
}

func TestEngineCacheHitOnRepeat(t *testing.T) {
	reg := obs.NewRegistry()
	e, err := NewEngine(exampleSpec(t), Options{
		TMappings: true, Existential: true, Constraints: true,
		StaticPrune: true, PlanCache: true,
		Obs: &obs.Observer{Metrics: reg},
	})
	if err != nil {
		t.Fatal(err)
	}
	const q = `SELECT ?n ?p WHERE { ?x :name ?n . ?x :SellsProduct ?p }`

	first, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.PlanCacheHits != 0 || first.Stats.PlanCacheMisses == 0 {
		t.Fatalf("first run: hits=%d misses=%d, want cold miss",
			first.Stats.PlanCacheHits, first.Stats.PlanCacheMisses)
	}
	second, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.PlanCacheHits == 0 || second.Stats.PlanCacheMisses != 0 {
		t.Fatalf("second run: hits=%d misses=%d, want warm hit",
			second.Stats.PlanCacheHits, second.Stats.PlanCacheMisses)
	}
	if first.Len() != second.Len() {
		t.Fatalf("cached run changed the answer: %d vs %d rows", first.Len(), second.Len())
	}
	// Shape counters must be replayed from the cached plan, not zeroed.
	if second.Stats.UnionArms != first.Stats.UnionArms || second.Stats.CQCount != first.Stats.CQCount {
		t.Fatalf("cached run lost shape counters: first %+v second %+v", first.Stats, second.Stats)
	}
	st, on := e.PlanCacheStats()
	if !on {
		t.Fatal("PlanCacheStats reports cache off")
	}
	if st.Hits == 0 || st.Entries == 0 {
		t.Fatalf("cache stats %+v, want hits and entries > 0", st)
	}
	text := reg.PrometheusText()
	if !strings.Contains(text, "npdbench_compile_cache_hits_total") ||
		!strings.Contains(text, "npdbench_compile_cache_entries") {
		t.Fatalf("compile-cache metric family missing from exposition:\n%s", text)
	}
}

func TestEngineCacheDisabled(t *testing.T) {
	e, err := NewEngine(exampleSpec(t), Options{TMappings: true, Existential: true, Constraints: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, on := e.PlanCacheStats(); on {
		t.Fatal("PlanCacheStats reports cache on for a cache-off engine")
	}
	ans, err := e.Query(`SELECT ?x WHERE { ?x a :Employee }`)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Stats.PlanCacheHits != 0 || ans.Stats.PlanCacheMisses != 0 {
		t.Fatalf("cache-off run reported cache traffic: %+v", ans.Stats)
	}
	if ans.Len() != 2 {
		t.Fatalf("got %d rows, want 2", ans.Len())
	}
}

func TestEngineInvalidationOnConstraintChange(t *testing.T) {
	e, err := NewEngine(exampleSpec(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	const q = `SELECT ?n ?p WHERE { ?x :name ?n . ?x :SellsProduct ?p }`
	warm := func() *Answer {
		t.Helper()
		ans, err := e.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		return ans
	}
	before := warm()
	if hit := warm(); hit.Stats.PlanCacheHits == 0 {
		t.Fatal("second run did not hit the cache")
	}

	// Turning constraint optimization off must flush every cached plan: a
	// plan compiled with self-join merging enabled is stale afterwards.
	e.SetConstraints(false)
	st, _ := e.PlanCacheStats()
	if st.Invalidations != 1 || st.Entries != 0 {
		t.Fatalf("after SetConstraints: %+v, want 1 invalidation and 0 entries", st)
	}
	after := warm()
	if after.Stats.PlanCacheHits != 0 || after.Stats.PlanCacheMisses == 0 {
		t.Fatalf("post-invalidation run: hits=%d misses=%d, want recompile",
			after.Stats.PlanCacheHits, after.Stats.PlanCacheMisses)
	}
	if before.Len() != after.Len() {
		t.Fatalf("answers diverged across invalidation: %d vs %d rows", before.Len(), after.Len())
	}

	// Re-installing the same mapping invalidates again.
	e.SetMapping(exampleSpec(t).Mapping)
	st, _ = e.PlanCacheStats()
	if st.Invalidations != 2 {
		t.Fatalf("after SetMapping: invalidations = %d, want 2", st.Invalidations)
	}
	if again := warm(); again.Len() != before.Len() {
		t.Fatalf("answers diverged after SetMapping: %d vs %d rows", again.Len(), before.Len())
	}
}

func TestEngineInvalidatePlansKeepsAnswers(t *testing.T) {
	e, err := NewEngine(exampleSpec(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	const q = `SELECT DISTINCT ?x WHERE { ?x a :Person }`
	first, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	e.InvalidatePlans()
	second, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.PlanCacheMisses == 0 {
		t.Fatal("run after InvalidatePlans did not recompile")
	}
	if first.Len() != second.Len() {
		t.Fatalf("answers diverged: %d vs %d rows", first.Len(), second.Len())
	}
}
