package server

import (
	"context"
	"errors"
	"net"
	"net/http"
)

// StartHTTP binds srv.Addr (":0" picks a free port), serves it on a
// background goroutine, and returns the bound address plus a stop
// function that drains gracefully: Shutdown stops accepting, waits for
// in-flight requests up to the stop context's deadline, and the serve
// goroutine's exit is always collected — the helper can never leave a
// listener or a serving goroutine behind. Both obdaqd's SIGTERM path and
// `mixer -http` drain through this one helper.
func StartHTTP(srv *http.Server) (addr string, stop func(ctx context.Context) error, err error) {
	ln, err := net.Listen("tcp", srv.Addr)
	if err != nil {
		return "", nil, err
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	stop = func(ctx context.Context) error {
		shutErr := srv.Shutdown(ctx)
		serveErr := <-done
		if serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
			return serveErr
		}
		return shutErr
	}
	return ln.Addr().String(), stop, nil
}
