package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"npdbench/internal/core"
	"npdbench/internal/mixer"
	"npdbench/internal/npd"
	"npdbench/internal/obs"
)

// contextWithTestTimeout bounds a test's drain/shutdown wait.
func contextWithTestTimeout(t *testing.T) (context.Context, context.CancelFunc) {
	t.Helper()
	return context.WithTimeout(context.Background(), 10*time.Second)
}

// countdownCtx is a context whose Err() flips to context.Canceled after a
// fixed number of polls. It makes "cancel mid-execute" deterministic: the
// first N cooperative-cancellation checks pass (the query provably starts
// executing), the N+1th — wherever it lands inside the executor — stops
// the query. No sleeps, no timing races.
type countdownCtx struct {
	remaining atomic.Int64
}

func newCountdownCtx(polls int64) *countdownCtx {
	c := &countdownCtx{}
	c.remaining.Store(polls)
	return c
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Done() <-chan struct{}       { return nil }
func (c *countdownCtx) Value(any) any               { return nil }
func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestCancelMidExecuteReleasesResources is the serving-path leak audit: a
// query canceled in the middle of execution must return ctx's error, and
// neither the npdbench_queries_inflight gauge nor any worker-pool slot may
// leak. Runs across several NPD mix queries and both early and late
// cancellation points.
func TestCancelMidExecuteReleasesResources(t *testing.T) {
	reg := obs.NewRegistry()
	eng := testEngine(t, 4, reg)
	gauge := reg.Gauge("npdbench_queries_inflight")
	for _, id := range []string{"q2", "q6", "q9", "q12"} {
		bq := npd.QueryByID(id)
		if bq == nil {
			t.Fatalf("unknown query %s", id)
		}
		q, err := eng.ParseQuery(bq.SPARQL)
		if err != nil {
			t.Fatalf("%s: parse: %v", id, err)
		}
		for _, polls := range []int64{3, 25, 200} {
			_, err := eng.AnswerNamedCtx(newCountdownCtx(polls), q, id)
			if err == nil {
				// The query finished before poll N — it was cheaper than
				// the countdown. Only the late points may do that.
				if polls <= 25 {
					t.Errorf("%s polls=%d: query completed, cancellation never observed", id, polls)
				}
			} else if !errors.Is(err, context.Canceled) {
				t.Errorf("%s polls=%d: err = %v, want context.Canceled", id, polls, err)
			}
			if v := gauge.Value(); v != 0 {
				t.Fatalf("%s polls=%d: inflight gauge = %d after cancel, want 0", id, polls, v)
			}
			if !eng.Pool().Idle() {
				t.Fatalf("%s polls=%d: worker pool not idle after cancel", id, polls)
			}
		}
		// The engine must stay healthy for the next client.
		ans, err := eng.AnswerNamedCtx(context.Background(), q, id)
		if err != nil {
			t.Fatalf("%s: query after cancellations failed: %v", id, err)
		}
		if ans == nil {
			t.Fatalf("%s: nil answer", id)
		}
	}
}

// TestCancelMidExecuteBatchExecutor re-runs the leak audit with the
// vectorized executor pinned at both ends of the batch ladder: cooperative
// cancellation now polls on batch boundaries, and a canceled batched query
// must drop its segments and scratch buffers exactly like the row path —
// inflight gauge back to zero, every worker-pool slot returned.
func TestCancelMidExecuteBatchExecutor(t *testing.T) {
	for _, bs := range []int{1, 1024} {
		reg := obs.NewRegistry()
		db, _, err := mixer.BuildInstance(1, 0.15, 42)
		if err != nil {
			t.Fatalf("building instance: %v", err)
		}
		spec := core.Spec{Onto: npd.NewOntology(), Mapping: npd.NewMapping(), DB: db, Prefixes: npd.Prefixes()}
		eng, err := core.NewEngine(spec, core.Options{
			TMappings:   true,
			Existential: true,
			Constraints: true,
			StaticPrune: true,
			PlanCache:   true,
			Parallelism: 4,
			BatchSize:   bs,
			Obs:         &obs.Observer{Metrics: reg},
		})
		if err != nil {
			t.Fatalf("building engine: %v", err)
		}
		gauge := reg.Gauge("npdbench_queries_inflight")
		for _, id := range []string{"q2", "q6", "q9", "q12"} {
			q, err := eng.ParseQuery(npd.QueryByID(id).SPARQL)
			if err != nil {
				t.Fatalf("%s: parse: %v", id, err)
			}
			for _, polls := range []int64{3, 25, 200} {
				_, err := eng.AnswerNamedCtx(newCountdownCtx(polls), q, id)
				if err != nil && !errors.Is(err, context.Canceled) {
					t.Errorf("batch=%d %s polls=%d: err = %v, want context.Canceled", bs, id, polls, err)
				}
				if v := gauge.Value(); v != 0 {
					t.Fatalf("batch=%d %s polls=%d: inflight gauge = %d after cancel, want 0", bs, id, polls, v)
				}
				if !eng.Pool().Idle() {
					t.Fatalf("batch=%d %s polls=%d: worker pool not idle after cancel", bs, id, polls)
				}
			}
			if _, err := eng.AnswerNamedCtx(context.Background(), q, id); err != nil {
				t.Fatalf("batch=%d %s: query after cancellations failed: %v", bs, id, err)
			}
		}
	}
}

// TestDeadlineExceededMapsTo503 drives a per-query deadline through the
// HTTP path: an immediately-expiring deadline must produce 503, not a
// hung request or a 200.
func TestDeadlineExceededMapsTo503(t *testing.T) {
	reg := obs.NewRegistry()
	eng := testEngine(t, 2, reg)
	s := New(eng, Config{QueryTimeout: time.Nanosecond, Obs: &obs.Observer{Metrics: reg}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/sparql?query=" + url.QueryEscape(npd.QueryByID("q6").SPARQL))
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if v := reg.Gauge("npdbench_queries_inflight").Value(); v != 0 {
		t.Fatalf("inflight gauge = %d, want 0", v)
	}
}

// TestConcurrentDisconnectsAcrossMix is the -race serving suite: client
// goroutines fire the full 21-query NPD mix and abandon most requests
// mid-flight (canceled request contexts = dropped connections), while a
// reloader swaps the mapping and invalidates plans under live traffic.
// Afterwards the server must be healthy, the inflight gauge zero, and the
// worker pool idle.
func TestConcurrentDisconnectsAcrossMix(t *testing.T) {
	reg := obs.NewRegistry()
	eng := testEngine(t, 4, reg)
	s := New(eng, Config{MaxInflight: 8, QueryTimeout: 2 * time.Second, Obs: &obs.Observer{Metrics: reg}})
	ts := httptest.NewServer(s.Handler())

	queries := npd.Queries()
	const clients = 6
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i, bq := range queries {
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if (i+c)%3 != 0 {
					// Two thirds of requests disconnect almost immediately.
					ctx, cancel = context.WithTimeout(ctx, time.Duration(1+(i+c)%5)*time.Millisecond)
				}
				req, err := http.NewRequestWithContext(ctx, http.MethodGet,
					ts.URL+"/sparql?query="+url.QueryEscape(bq.SPARQL)+"&label="+bq.ID, nil)
				if err != nil {
					cancel()
					t.Error(err)
					return
				}
				resp, err := http.DefaultClient.Do(req)
				if err == nil {
					switch resp.StatusCode {
					case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable:
					default:
						t.Errorf("%s: unexpected status %d", bq.ID, resp.StatusCode)
					}
					resp.Body.Close()
				}
				cancel()
			}
		}(c)
	}
	// Reloader: SetMapping and InvalidatePlans racing the live Answer
	// calls through the server's quiescing lock.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if i%2 == 0 {
				s.ReloadMapping(npd.NewMapping())
			} else {
				s.Reload(func(e *core.Engine) { e.InvalidatePlans() })
			}
		}
	}()
	wg.Wait()
	ts.Close() // waits for outstanding handlers

	if v := reg.Gauge("npdbench_queries_inflight").Value(); v != 0 {
		t.Fatalf("inflight gauge = %d after drain, want 0", v)
	}
	if !eng.Pool().Idle() {
		t.Fatal("worker pool not idle after drain")
	}
	if got := reg.Counter("npdbench_server_reloads_total").Value(); got != 8 {
		t.Fatalf("reloads counter = %d, want 8", got)
	}
}
