package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"npdbench/internal/core"
	"npdbench/internal/mixer"
	"npdbench/internal/npd"
	"npdbench/internal/obs"
	"npdbench/internal/rdf"
	"npdbench/internal/sparql"
)

// testEngine builds one small NPD engine per configuration, shared across
// the package's tests (instance generation dominates test wall time).
var engOnce struct {
	sync.Mutex
	cache map[string]*core.Engine
}

func testEngine(t *testing.T, parallelism int, reg *obs.Registry) *core.Engine {
	t.Helper()
	key := fmt.Sprintf("p%d-reg%v", parallelism, reg != nil)
	engOnce.Lock()
	defer engOnce.Unlock()
	if engOnce.cache == nil {
		engOnce.cache = make(map[string]*core.Engine)
	}
	if e, ok := engOnce.cache[key]; ok && reg == nil {
		return e
	}
	db, _, err := mixer.BuildInstance(1, 0.15, 42)
	if err != nil {
		t.Fatalf("building instance: %v", err)
	}
	spec := core.Spec{Onto: npd.NewOntology(), Mapping: npd.NewMapping(), DB: db, Prefixes: npd.Prefixes()}
	var observer *obs.Observer
	if reg != nil {
		observer = &obs.Observer{Metrics: reg}
	}
	eng, err := core.NewEngine(spec, core.Options{
		TMappings:   true,
		Existential: true,
		Constraints: true,
		StaticPrune: true,
		PlanCache:   true,
		Parallelism: parallelism,
		Obs:         observer,
	})
	if err != nil {
		t.Fatalf("building engine: %v", err)
	}
	if reg == nil {
		engOnce.cache[key] = eng
	}
	return eng
}

const testQuery = `PREFIX npdv: <http://sws.ifi.uio.no/vocab/npd-v2#>
SELECT ?licence WHERE { ?licence a npdv:ProductionLicence } LIMIT 5`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	eng := testEngine(t, 1, nil)
	if cfg.Obs != nil && cfg.Obs.Metrics != nil {
		eng = testEngine(t, 2, cfg.Obs.Metrics)
	}
	s := New(eng, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

type jsonResults struct {
	Head struct {
		Vars []string `json:"vars"`
	} `json:"head"`
	Results struct {
		Bindings []map[string]map[string]string `json:"bindings"`
	} `json:"results"`
}

func decodeJSONResults(t *testing.T, r io.Reader) *jsonResults {
	t.Helper()
	var doc jsonResults
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		t.Fatalf("decoding results JSON: %v", err)
	}
	return &doc
}

func TestProtocolGET(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/sparql?query=" + url.QueryEscape(testQuery))
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/sparql-results+json" {
		t.Fatalf("content type %q", ct)
	}
	doc := decodeJSONResults(t, resp.Body)
	if len(doc.Head.Vars) != 1 || doc.Head.Vars[0] != "licence" {
		t.Fatalf("vars = %v", doc.Head.Vars)
	}
	if len(doc.Results.Bindings) == 0 {
		t.Fatal("no bindings returned")
	}
	for _, b := range doc.Results.Bindings {
		if b["licence"]["type"] != "uri" {
			t.Fatalf("binding %v: want uri term", b)
		}
	}
}

func TestProtocolPOSTForm(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.PostForm(ts.URL+"/sparql", url.Values{"query": {testQuery}, "label": {"q-test"}})
	if err != nil {
		t.Fatalf("POST form: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	doc := decodeJSONResults(t, resp.Body)
	if len(doc.Results.Bindings) == 0 {
		t.Fatal("no bindings returned")
	}
}

func TestProtocolPOSTSparqlQuery(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/sparql", "application/sparql-query", strings.NewReader(testQuery))
	if err != nil {
		t.Fatalf("POST raw: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	doc := decodeJSONResults(t, resp.Body)
	if len(doc.Results.Bindings) == 0 {
		t.Fatal("no bindings returned")
	}
}

func TestProtocolTSV(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/sparql?query="+url.QueryEscape(testQuery), nil)
	req.Header.Set("Accept", "text/tab-separated-values")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if lines[0] != "?licence" {
		t.Fatalf("TSV header %q", lines[0])
	}
	if len(lines) < 2 {
		t.Fatalf("TSV has no data rows:\n%s", body)
	}
	for _, l := range lines[1:] {
		if !strings.HasPrefix(l, "<") || !strings.HasSuffix(l, ">") {
			t.Fatalf("TSV row %q: want IRI cell", l)
		}
	}
}

func TestProtocolErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, tc := range map[string]struct {
		method, path, ct, body string
		want                   int
	}{
		"missing query":    {http.MethodGet, "/sparql", "", "", http.StatusBadRequest},
		"bad sparql":       {http.MethodGet, "/sparql?query=NOT+SPARQL", "", "", http.StatusBadRequest},
		"bad method":       {http.MethodDelete, "/sparql?query=x", "", "", http.StatusBadRequest},
		"bad content type": {http.MethodPost, "/sparql", "application/xml", "<q/>", http.StatusBadRequest},
	} {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		if tc.ct != "" {
			req.Header.Set("Content-Type", tc.ct)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", name, resp.StatusCode, tc.want)
		}
	}
}

func TestAdmissionControl(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 2, RetryAfter: 3 * time.Second})
	// Fill the admission semaphore directly: both slots busy.
	for i := 0; i < cap(s.sem); i++ {
		s.sem <- struct{}{}
	}
	defer func() {
		for i := 0; i < cap(s.sem); i++ {
			<-s.sem
		}
	}()
	resp, err := http.Get(ts.URL + "/sparql?query=" + url.QueryEscape(testQuery))
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After %q, want 3", ra)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestResultsJSONShape(t *testing.T) {
	rs := &sparql.ResultSet{
		Vars: []string{"a", "b"},
		Rows: [][]rdf.Term{
			{rdf.NewIRI("http://x/1"), rdf.NewTypedLiteral("4", rdf.XSDInteger)},
			{rdf.NewLangLiteral("hei", "no"), {}}, // second var unbound
		},
	}
	var sb strings.Builder
	if err := writeJSON(&sb, rs); err != nil {
		t.Fatal(err)
	}
	doc := decodeJSONResults(t, strings.NewReader(sb.String()))
	if got := doc.Head.Vars; len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("vars %v", got)
	}
	b0 := doc.Results.Bindings[0]
	if b0["a"]["type"] != "uri" || b0["a"]["value"] != "http://x/1" {
		t.Fatalf("row 0 var a: %v", b0["a"])
	}
	if b0["b"]["datatype"] != rdf.XSDInteger || b0["b"]["value"] != "4" {
		t.Fatalf("row 0 var b: %v", b0["b"])
	}
	b1 := doc.Results.Bindings[1]
	if b1["a"]["xml:lang"] != "no" {
		t.Fatalf("row 1 var a: %v", b1["a"])
	}
	if _, bound := b1["b"]; bound {
		t.Fatalf("row 1 var b should be omitted: %v", b1)
	}
}

func TestResultsTSVEscaping(t *testing.T) {
	rs := &sparql.ResultSet{
		Vars: []string{"v"},
		Rows: [][]rdf.Term{{rdf.NewLiteral("a\tb\"c\nd")}},
	}
	var sb strings.Builder
	if err := writeTSV(&sb, rs); err != nil {
		t.Fatal(err)
	}
	want := "?v\n\"a\\tb\\\"c\\nd\"\n"
	if sb.String() != want {
		t.Fatalf("TSV = %q, want %q", sb.String(), want)
	}
}

func TestNegotiateFormat(t *testing.T) {
	for accept, want := range map[string]resultFormat{
		"":                                formatJSON,
		"*/*":                             formatJSON,
		"application/sparql-results+json": formatJSON,
		"application/json":                formatJSON,
		"text/tab-separated-values":       formatTSV,
		"text/tab-separated-values;q=0.9, */*;q=0.1": formatTSV,
	} {
		if got := negotiateFormat(accept); got != want {
			t.Errorf("negotiateFormat(%q) = %v, want %v", accept, got, want)
		}
	}
}

func TestStartHTTPDrains(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/ping", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "pong")
	})
	srv := &http.Server{Addr: "127.0.0.1:0", Handler: mux}
	addr, stop, err := StartHTTP(srv)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/ping")
	if err != nil {
		t.Fatalf("GET before stop: %v", err)
	}
	resp.Body.Close()
	ctx, cancel := contextWithTestTimeout(t)
	defer cancel()
	if err := stop(ctx); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/ping"); err == nil {
		t.Fatal("server still serving after stop")
	}
}
