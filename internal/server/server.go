// Package server is the SPARQL-protocol serving layer over the OBDA
// engine: a long-running HTTP endpoint with admission control, per-query
// deadlines wired into the engine's cooperative cancellation, streaming
// result serialization, and quiesced configuration reload. It is the
// layer the paper's QMpH experiments (Sect. 6) assume: a live endpoint
// absorbing sustained concurrent traffic, not a batch replay harness.
package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"npdbench/internal/core"
	"npdbench/internal/obs"
	"npdbench/internal/r2rml"
)

// Config tunes the serving policy around one engine.
type Config struct {
	// MaxInflight bounds concurrently executing queries; arrivals past the
	// bound get 429 + Retry-After instead of queueing without bound.
	// <= 0 means DefaultMaxInflight.
	MaxInflight int
	// QueryTimeout is the per-query deadline; past it the engine stops
	// cooperatively and the client gets 503. 0 disables the deadline.
	QueryTimeout time.Duration
	// RetryAfter is the advisory backoff stamped on 429 responses.
	// 0 means one second.
	RetryAfter time.Duration
	// Obs carries the observer whose registry and slow log the server
	// exposes on /metrics and /debug/slowlog (nil = those endpoints 404).
	Obs *obs.Observer
}

// DefaultMaxInflight is the admission bound when Config leaves it zero.
const DefaultMaxInflight = 16

// Server answers SPARQL-protocol requests against one engine.
//
// Engine reconfiguration (SetMapping/SetConstraints) requires quiesced
// query traffic; the server enforces that contract with a read-write
// lock: every query handler holds the read side while inside the engine,
// and Reload takes the write side, so a reload waits for in-flight
// queries to drain and new arrivals wait for the reload — no query ever
// races a mapping swap.
type Server struct {
	mu  sync.RWMutex // write-held during Reload; read-held around Answer
	eng *core.Engine
	cfg Config
	sem chan struct{} // admission tokens, cap = MaxInflight

	requests  *obs.Counter
	errors    *obs.Counter
	throttled *obs.Counter
	canceled  *obs.Counter
	timeouts  *obs.Counter
	reloads   *obs.Counter
	seconds   *obs.Histogram
}

// New wraps an engine in a serving layer.
func New(eng *core.Engine, cfg Config) *Server {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	s := &Server{eng: eng, cfg: cfg, sem: make(chan struct{}, cfg.MaxInflight)}
	if reg := cfg.Obs.Registry(); reg != nil {
		s.requests = reg.Counter("npdbench_server_requests_total")
		s.errors = reg.Counter("npdbench_server_errors_total")
		s.throttled = reg.Counter("npdbench_server_throttled_total")
		s.canceled = reg.Counter("npdbench_server_canceled_total")
		s.timeouts = reg.Counter("npdbench_server_timeouts_total")
		s.reloads = reg.Counter("npdbench_server_reloads_total")
		s.seconds = reg.Histogram("npdbench_server_request_seconds", obs.DefDurationBuckets)
	}
	return s
}

// Engine returns the served engine (tests inspect its pool and metrics).
func (s *Server) Engine() *core.Engine { return s.eng }

// Handler returns the endpoint's route table. Always an explicit mux —
// never the process-global DefaultServeMux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/sparql", s.handleSPARQL)
	mux.HandleFunc("/healthz", s.handleHealthz)
	if s.cfg.Obs != nil && s.cfg.Obs.Metrics != nil {
		reg := s.cfg.Obs.Metrics
		mux.Handle("/metrics", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			// Refresh the runtime family on every scrape so goroutine and
			// heap gauges describe the moment of the request.
			obs.NewRuntimeCollector(reg).Collect()
			reg.Handler().ServeHTTP(w, r)
		}))
	}
	if s.cfg.Obs != nil && s.cfg.Obs.SlowLog != nil {
		mux.Handle("/debug/slowlog", s.cfg.Obs.SlowLog.Handler())
	}
	return mux
}

// Reload applies a configuration change under the write lock: it waits
// for in-flight queries to drain, runs fn against the quiesced engine,
// and releases traffic. This is the SIGHUP path of obdaqd.
func (s *Server) Reload(fn func(eng *core.Engine)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn(s.eng)
	if s.reloads != nil {
		s.reloads.Inc()
	}
}

// ReloadMapping is the canonical reload: swap the R2RML mapping (which
// re-saturates T-mappings, re-derives constraints, and invalidates the
// plan cache) under quiesced traffic.
func (s *Server) ReloadMapping(mp *r2rml.Mapping) {
	s.Reload(func(eng *core.Engine) { eng.SetMapping(mp) })
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleSPARQL is the SPARQL 1.1 protocol endpoint: GET ?query= and POST
// (form or application/sparql-query), with admission control in front of
// the engine and the client's disconnect/deadline context threaded all
// the way into the SQL operators.
func (s *Server) handleSPARQL(w http.ResponseWriter, r *http.Request) {
	start := obs.Now()
	if s.requests != nil {
		s.requests.Inc()
	}
	req, err := parseProtocolRequest(r)
	if err != nil {
		s.clientError(w, err)
		return
	}

	// Admission control: a full semaphore means MaxInflight queries are
	// already executing — shed the arrival instead of queueing it (the
	// open-loop harness measures exactly this behaviour under overload).
	select {
	case s.sem <- struct{}{}:
	default:
		if s.throttled != nil {
			s.throttled.Inc()
		}
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds()+0.5)))
		http.Error(w, "server at capacity", http.StatusTooManyRequests)
		return
	}
	defer func() { <-s.sem }()

	ctx := r.Context()
	if s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}

	// The read lock pairs with Reload's write lock: queries and mapping
	// swaps never overlap.
	s.mu.RLock()
	q, err := s.eng.ParseQuery(req.query)
	if err != nil {
		s.mu.RUnlock()
		s.clientError(w, fmt.Errorf("parsing query: %w", err))
		return
	}
	ans, err := s.eng.AnswerNamedCtx(ctx, q, req.label)
	s.mu.RUnlock()
	if err != nil {
		s.answerError(w, r, err)
		return
	}

	w.Header().Set("Content-Type", req.format.contentType())
	if err := writeResults(w, req.format, ans.ResultSet); err != nil {
		// Mid-stream write failure: the client went away. Status is
		// already committed; just count it.
		if s.canceled != nil {
			s.canceled.Inc()
		}
		return
	}
	if s.seconds != nil {
		s.seconds.Observe(obs.Since(start).Seconds())
	}
}

// clientError reports a malformed request (400).
func (s *Server) clientError(w http.ResponseWriter, err error) {
	if s.errors != nil {
		s.errors.Inc()
	}
	http.Error(w, err.Error(), http.StatusBadRequest)
}

// answerError maps an engine failure onto the protocol: deadline → 503
// with the timeout named, client disconnect → nothing (the connection is
// gone), anything else → 500.
func (s *Server) answerError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		if s.timeouts != nil {
			s.timeouts.Inc()
		}
		http.Error(w, fmt.Sprintf("query exceeded deadline %v", s.cfg.QueryTimeout), http.StatusServiceUnavailable)
	case errors.Is(err, context.Canceled) || r.Context().Err() != nil:
		if s.canceled != nil {
			s.canceled.Inc()
		}
		// Client is gone; nothing to write.
	default:
		if s.errors != nil {
			s.errors.Inc()
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
