package server

import (
	"bufio"
	"encoding/json"
	"io"
	"strings"

	"npdbench/internal/rdf"
	"npdbench/internal/sparql"
)

// Result serialization. Both writers stream: rows go out as they are
// encoded, through one buffered writer, so a large result set never
// builds a second in-memory document on top of the engine's bindings.

// writeResults serializes rs in the negotiated format.
func writeResults(w io.Writer, f resultFormat, rs *sparql.ResultSet) error {
	if f == formatTSV {
		return writeTSV(w, rs)
	}
	return writeJSON(w, rs)
}

// writeJSON emits the SPARQL 1.1 Query Results JSON Format: a head with
// the projected variables, then one binding object per solution. Unbound
// variables (zero terms) are omitted from their row, per spec.
func writeJSON(w io.Writer, rs *sparql.ResultSet) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"head":{"vars":`)
	vars, err := json.Marshal(rs.Vars)
	if err != nil {
		return err
	}
	bw.Write(vars)
	bw.WriteString(`},"results":{"bindings":[`)
	for i, row := range rs.Rows {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteByte('{')
		first := true
		for j, t := range row {
			if t.IsZero() || j >= len(rs.Vars) {
				continue
			}
			if !first {
				bw.WriteByte(',')
			}
			first = false
			name, err := json.Marshal(rs.Vars[j])
			if err != nil {
				return err
			}
			bw.Write(name)
			bw.WriteByte(':')
			obj, err := json.Marshal(jsonTerm(t))
			if err != nil {
				return err
			}
			bw.Write(obj)
		}
		bw.WriteByte('}')
	}
	bw.WriteString(`]}}`)
	bw.WriteByte('\n')
	return bw.Flush()
}

// jsonTerm maps one RDF term onto the results-JSON object shape.
func jsonTerm(t rdf.Term) map[string]string {
	switch {
	case t.IsIRI():
		return map[string]string{"type": "uri", "value": t.Value}
	case t.IsBlank():
		return map[string]string{"type": "bnode", "value": t.Value}
	default:
		obj := map[string]string{"type": "literal", "value": t.Value}
		if t.Lang != "" {
			obj["xml:lang"] = t.Lang
		} else if t.Datatype != "" && t.Datatype != rdf.XSDString {
			obj["datatype"] = t.Datatype
		}
		return obj
	}
}

// writeTSV emits the SPARQL 1.1 TSV results format: a ?var header line,
// then one Turtle-syntax term per cell (empty cell = unbound).
func writeTSV(w io.Writer, rs *sparql.ResultSet) error {
	bw := bufio.NewWriter(w)
	for i, v := range rs.Vars {
		if i > 0 {
			bw.WriteByte('\t')
		}
		bw.WriteByte('?')
		bw.WriteString(v)
	}
	bw.WriteByte('\n')
	for _, row := range rs.Rows {
		for j := range rs.Vars {
			if j > 0 {
				bw.WriteByte('\t')
			}
			if j < len(row) && !row[j].IsZero() {
				bw.WriteString(tsvTerm(row[j]))
			}
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// tsvTerm renders one term in the Turtle-ish syntax TSV results use.
func tsvTerm(t rdf.Term) string {
	switch {
	case t.IsIRI():
		return "<" + t.Value + ">"
	case t.IsBlank():
		return "_:" + t.Value
	default:
		var sb strings.Builder
		sb.WriteByte('"')
		sb.WriteString(escapeTSVLiteral(t.Value))
		sb.WriteByte('"')
		if t.Lang != "" {
			sb.WriteByte('@')
			sb.WriteString(t.Lang)
		} else if t.Datatype != "" && t.Datatype != rdf.XSDString {
			sb.WriteString("^^<")
			sb.WriteString(t.Datatype)
			sb.WriteByte('>')
		}
		return sb.String()
	}
}

// escapeTSVLiteral escapes the characters that would break a TSV cell or
// a quoted Turtle literal.
func escapeTSVLiteral(s string) string {
	r := strings.NewReplacer(
		`\`, `\\`,
		`"`, `\"`,
		"\t", `\t`,
		"\n", `\n`,
		"\r", `\r`,
	)
	return r.Replace(s)
}
