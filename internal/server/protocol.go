package server

import (
	"fmt"
	"io"
	"mime"
	"net/http"
	"strings"
)

// maxQueryBytes bounds a POSTed query document; SPARQL text beyond this is
// a malformed request, not a workload.
const maxQueryBytes = 1 << 20

// protocolRequest is one parsed SPARQL-protocol operation.
type protocolRequest struct {
	query  string
	label  string // optional caller-supplied label for the slow log
	format resultFormat
}

// parseProtocolRequest implements the SPARQL 1.1 Protocol query operation:
//
//	GET  /sparql?query=...
//	POST /sparql  (application/x-www-form-urlencoded, query=...)
//	POST /sparql  (application/sparql-query, raw query body)
//
// plus an optional "label" parameter naming the query for the slow log
// (the NPD mix sends q1..q21 so captures stay attributable).
func parseProtocolRequest(r *http.Request) (*protocolRequest, error) {
	req := &protocolRequest{format: negotiateFormat(r.Header.Get("Accept"))}
	switch r.Method {
	case http.MethodGet:
		req.query = r.URL.Query().Get("query")
		req.label = r.URL.Query().Get("label")
	case http.MethodPost:
		ct := r.Header.Get("Content-Type")
		mt, _, err := mime.ParseMediaType(ct)
		if ct != "" && err != nil {
			return nil, fmt.Errorf("malformed Content-Type %q", ct)
		}
		switch mt {
		case "application/sparql-query":
			body, err := io.ReadAll(io.LimitReader(r.Body, maxQueryBytes))
			if err != nil {
				return nil, fmt.Errorf("reading query body: %w", err)
			}
			req.query = string(body)
			req.label = r.URL.Query().Get("label")
		case "application/x-www-form-urlencoded", "":
			if err := r.ParseForm(); err != nil {
				return nil, fmt.Errorf("parsing form: %w", err)
			}
			req.query = r.PostForm.Get("query")
			req.label = r.PostForm.Get("label")
			if req.label == "" {
				req.label = r.URL.Query().Get("label")
			}
		default:
			return nil, fmt.Errorf("unsupported Content-Type %q", mt)
		}
	default:
		return nil, fmt.Errorf("method %s not allowed (use GET or POST)", r.Method)
	}
	if strings.TrimSpace(req.query) == "" {
		return nil, fmt.Errorf("missing query parameter")
	}
	return req, nil
}

// resultFormat is a negotiated result serialization.
type resultFormat int

const (
	formatJSON resultFormat = iota // application/sparql-results+json
	formatTSV                      // text/tab-separated-values
)

func (f resultFormat) contentType() string {
	if f == formatTSV {
		return "text/tab-separated-values; charset=utf-8"
	}
	return "application/sparql-results+json"
}

// negotiateFormat picks the result serialization from an Accept header.
// SPARQL-JSON is the default and the wildcard answer; TSV is chosen only
// when asked for explicitly. A full q-value parse buys nothing here — the
// protocol clients we serve (and the W3C test harnesses) send one
// concrete media type.
func negotiateFormat(accept string) resultFormat {
	for _, part := range strings.Split(accept, ",") {
		mt := strings.TrimSpace(strings.SplitN(part, ";", 2)[0])
		switch mt {
		case "text/tab-separated-values":
			return formatTSV
		case "application/sparql-results+json", "application/json", "*/*", "":
			return formatJSON
		}
	}
	return formatJSON
}
