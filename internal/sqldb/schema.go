package sqldb

import (
	"fmt"
	"strings"
)

// ColType is the declared type of a column.
type ColType uint8

// Column types supported by the engine.
const (
	TInt ColType = iota
	TFloat
	TText
	TBool
	TDate
	TGeometry
)

func (t ColType) String() string {
	switch t {
	case TInt:
		return "INTEGER"
	case TFloat:
		return "DOUBLE"
	case TText:
		return "TEXT"
	case TBool:
		return "BOOLEAN"
	case TDate:
		return "DATE"
	case TGeometry:
		return "GEOMETRY"
	}
	return fmt.Sprintf("ColType(%d)", uint8(t))
}

// Kind returns the value kind stored in columns of this type.
func (t ColType) Kind() Kind {
	switch t {
	case TInt:
		return KindInt
	case TFloat:
		return KindFloat
	case TText:
		return KindString
	case TBool:
		return KindBool
	case TDate:
		return KindDate
	case TGeometry:
		return KindGeometry
	}
	return KindNull
}

// Column describes one table column.
type Column struct {
	Name    string
	Type    ColType
	NotNull bool
}

// ForeignKey declares that the projection of this table on Columns must
// appear in RefTable's projection on RefColumns (or be NULL).
type ForeignKey struct {
	Columns    []int
	RefTable   string
	RefColumns []int
}

// TableDef is the schema of a table.
type TableDef struct {
	Name        string
	Columns     []Column
	PrimaryKey  []int // column positions; empty means no PK
	Uniques     [][]int
	ForeignKeys []ForeignKey
}

// ColIndex returns the position of the named column (case-insensitive), or
// -1 if absent.
func (d *TableDef) ColIndex(name string) int {
	for i, c := range d.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Validate checks internal consistency of the definition.
func (d *TableDef) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("sqldb: table with empty name")
	}
	if len(d.Columns) == 0 {
		return fmt.Errorf("sqldb: table %s has no columns", d.Name)
	}
	seen := make(map[string]bool, len(d.Columns))
	for _, c := range d.Columns {
		lc := strings.ToLower(c.Name)
		if seen[lc] {
			return fmt.Errorf("sqldb: table %s: duplicate column %s", d.Name, c.Name)
		}
		seen[lc] = true
	}
	check := func(cols []int, what string) error {
		for _, i := range cols {
			if i < 0 || i >= len(d.Columns) {
				return fmt.Errorf("sqldb: table %s: %s references column #%d out of range", d.Name, what, i)
			}
		}
		return nil
	}
	if err := check(d.PrimaryKey, "primary key"); err != nil {
		return err
	}
	for _, u := range d.Uniques {
		if err := check(u, "unique constraint"); err != nil {
			return err
		}
	}
	for _, fk := range d.ForeignKeys {
		if err := check(fk.Columns, "foreign key"); err != nil {
			return err
		}
		if len(fk.Columns) != len(fk.RefColumns) {
			return fmt.Errorf("sqldb: table %s: foreign key arity mismatch", d.Name)
		}
	}
	return nil
}

// DDL renders the definition as a CREATE TABLE statement (for debugging and
// dataset dumps).
func (d *TableDef) DDL() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "CREATE TABLE %s (", d.Name)
	for i, c := range d.Columns {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s %s", c.Name, c.Type)
		if c.NotNull {
			sb.WriteString(" NOT NULL")
		}
	}
	if len(d.PrimaryKey) > 0 {
		sb.WriteString(", PRIMARY KEY (")
		for i, ci := range d.PrimaryKey {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(d.Columns[ci].Name)
		}
		sb.WriteByte(')')
	}
	for _, fk := range d.ForeignKeys {
		sb.WriteString(", FOREIGN KEY (")
		for i, ci := range fk.Columns {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(d.Columns[ci].Name)
		}
		fmt.Fprintf(&sb, ") REFERENCES %s", fk.RefTable)
	}
	sb.WriteByte(')')
	return sb.String()
}
