package sqldb

import "sort"

// HashIndex maps a composite key over fixed column positions to the row
// positions carrying that key.
type HashIndex struct {
	Cols []int
	m    map[string][]int
}

// NewHashIndex creates an empty hash index over the given column positions.
func NewHashIndex(cols []int) *HashIndex {
	return &HashIndex{Cols: cols, m: make(map[string][]int)}
}

// Add indexes row (stored at position pos).
func (ix *HashIndex) Add(row Row, pos int) {
	k := RowKey(row, ix.Cols)
	ix.m[k] = append(ix.m[k], pos)
}

// Lookup returns the positions of rows whose key columns equal row's.
func (ix *HashIndex) Lookup(row Row) []int {
	return ix.m[RowKey(row, ix.Cols)]
}

// LookupKey returns the positions for a pre-encoded key.
func (ix *HashIndex) LookupKey(key string) []int { return ix.m[key] }

// LookupValues returns the positions whose key columns equal vals (in the
// index's column order).
func (ix *HashIndex) LookupValues(vals []Value) []int {
	return ix.m[RowKeyOf(vals)]
}

// Len returns the number of distinct keys.
func (ix *HashIndex) Len() int { return len(ix.m) }

// OrderedIndex supports range scans over a single column. It is built
// lazily by the executor for merge joins and range predicates.
type OrderedIndex struct {
	Col  int
	pos  []int // row positions sorted by column value
	vals []Value
}

// BuildOrderedIndex sorts the table's rows by the given column. NULLs sort
// first and are retained so that the caller can skip them.
func BuildOrderedIndex(t *Table, col int) *OrderedIndex {
	ix := &OrderedIndex{Col: col}
	ix.pos = make([]int, len(t.Rows))
	for i := range ix.pos {
		ix.pos[i] = i
	}
	sort.SliceStable(ix.pos, func(a, b int) bool {
		c, err := Compare(t.Rows[ix.pos[a]][col], t.Rows[ix.pos[b]][col])
		return err == nil && c < 0
	})
	ix.vals = make([]Value, len(ix.pos))
	for i, p := range ix.pos {
		ix.vals[i] = t.Rows[p][col]
	}
	return ix
}

// Range returns row positions whose column value v satisfies
// lo <= v (<=|<) hi, honouring open bounds when lo/hi are NULL.
// NULL column values never match.
func (ix *OrderedIndex) Range(lo Value, loInclusive bool, hi Value, hiInclusive bool) []int {
	n := len(ix.pos)
	start := 0
	if !lo.IsNull() {
		start = sort.Search(n, func(i int) bool {
			c, err := Compare(ix.vals[i], lo)
			if err != nil {
				return true
			}
			if loInclusive {
				return c >= 0
			}
			return c > 0
		})
	} else {
		// skip NULLs at the front
		start = sort.Search(n, func(i int) bool { return !ix.vals[i].IsNull() })
	}
	end := n
	if !hi.IsNull() {
		end = sort.Search(n, func(i int) bool {
			c, err := Compare(ix.vals[i], hi)
			if err != nil {
				return true
			}
			if hiInclusive {
				return c > 0
			}
			return c >= 0
		})
	}
	if start >= end {
		return nil
	}
	out := make([]int, end-start)
	copy(out, ix.pos[start:end])
	return out
}
