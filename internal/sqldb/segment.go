package sqldb

import (
	"npdbench/internal/rdf"
)

// Columnar segment storage. A table's rows are transposed once into typed
// per-column arrays — int64 for INTEGER/BOOLEAN/DATE, float64 for DOUBLE,
// dictionary codes for TEXT, pointers for GEOMETRY — with a compact null
// bitmap per column. The segment is the storage the vectorized batch
// executor scans; the row heap stays canonical for inserts, indexes and
// constraint checks, and the segment is rebuilt lazily after any write.
// Dictionary entries go through the rdf term interner, so a lexical form
// shared by many columns (IRI fragments, repeated literals) keeps one
// backing across every dictionary and the RDF term store.

// strDict is one column's string dictionary: codes are assigned in first-
// appearance order, and each distinct value's FNV hash is precomputed so
// vectorized joins and dedup hash dictionary codes instead of re-hashing
// string payloads per row. A dictionary is immutable once its segment is
// built; intermediate batch results share it by reference and never copy
// string payloads.
type strDict struct {
	vals   []string
	hashes []uint64
	index  map[string]uint32
}

func newStrDict() *strDict {
	return &strDict{index: make(map[string]uint32)}
}

// encode returns the code for s, assigning the next one on first sight.
func (d *strDict) encode(s string) uint32 {
	if c, ok := d.index[s]; ok {
		return c
	}
	c := uint32(len(d.vals))
	s = rdf.Intern(s)
	d.vals = append(d.vals, s)
	d.hashes = append(d.hashes, hashString(s))
	d.index[s] = c
	return c
}

// decode returns the string for a code.
func (d *strDict) decode(c uint32) string { return d.vals[c] }

// lookup returns the code for s without assigning one.
func (d *strDict) lookup(s string) (uint32, bool) {
	c, ok := d.index[s]
	return c, ok
}

// size returns the number of distinct values.
func (d *strDict) size() int { return len(d.vals) }

// nullBitmap marks NULL cells: bit i set means row i is NULL. A nil bitmap
// means the column has no NULLs (the common case for key columns).
type nullBitmap []uint64

func (b nullBitmap) get(i int) bool {
	if b == nil {
		return false
	}
	return b[i>>6]&(1<<(uint(i)&63)) != 0
}

func (b nullBitmap) set(i int) {
	b[i>>6] |= 1 << (uint(i) & 63)
}

func newNullBitmap(n int) nullBitmap {
	return make(nullBitmap, (n+63)>>6)
}

// buildSegment transposes rows into a vecData given the declared column
// kinds. checkTypes has already enforced that every cell is NULL or of the
// declared kind, so the per-kind loops need no per-cell dispatch.
func buildSegment(def *TableDef, rows []Row) *vecData {
	n := len(rows)
	vd := &vecData{n: n, cols: make([]colvec, len(def.Columns))}
	for ci, col := range def.Columns {
		kind := col.Type.Kind()
		cv := colvec{kind: kind}
		var nulls nullBitmap
		switch kind {
		case KindInt, KindBool, KindDate:
			cv.ints = make([]int64, n)
			for i, row := range rows {
				v := row[ci]
				if v.IsNull() {
					if nulls == nil {
						nulls = newNullBitmap(n)
					}
					nulls.set(i)
					continue
				}
				cv.ints[i] = v.I
			}
		case KindFloat:
			cv.floats = make([]float64, n)
			for i, row := range rows {
				v := row[ci]
				if v.IsNull() {
					if nulls == nil {
						nulls = newNullBitmap(n)
					}
					nulls.set(i)
					continue
				}
				cv.floats[i] = v.F
			}
		case KindString:
			cv.dict = newStrDict()
			cv.codes = make([]uint32, n)
			for i, row := range rows {
				v := row[ci]
				if v.IsNull() {
					if nulls == nil {
						nulls = newNullBitmap(n)
					}
					nulls.set(i)
					continue
				}
				cv.codes[i] = cv.dict.encode(v.S)
			}
		case KindGeometry:
			cv.geos = make([]*Geometry, n)
			for i, row := range rows {
				v := row[ci]
				if v.IsNull() {
					if nulls == nil {
						nulls = newNullBitmap(n)
					}
					nulls.set(i)
					continue
				}
				cv.geos[i] = v.G
			}
		}
		cv.nulls = nulls
		vd.cols[ci] = cv
	}
	return vd
}

// Segment returns the table's columnar segment, building it on first use
// after a write. Safe for concurrent readers; the returned vecData is
// immutable (batch operators gather into fresh vectors, never in place).
func (t *Table) Segment() *vecData {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.seg == nil {
		t.seg = buildSegment(t.Def, t.Rows)
	}
	return t.seg
}
