package sqldb

import (
	"strings"
	"sync"
	"testing"
)

// The batch executor runs by default, so the whole suite already gates it;
// these tests pin the properties the row-path tests cannot see — segment
// immutability under batch scans, cache invalidation on write, operator-
// level batch==row identity at awkward batch sizes, and truthful batches=
// annotations in EXPLAIN ANALYZE.

// renderRes flattens a result set for comparison.
func renderRes(res *Result) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(res.Columns, ","))
	for _, row := range res.Rows {
		sb.WriteByte('\n')
		for j, v := range row {
			if j > 0 {
				sb.WriteByte('|')
			}
			sb.WriteString(v.String())
		}
	}
	return sb.String()
}

// segmentSnapshot renders a table's columnar segment row by row through the
// same accessor the batch operators use.
func segmentSnapshot(t *testing.T, db *Database, table string) []string {
	t.Helper()
	tab := db.Table(table)
	if tab == nil {
		t.Fatalf("no table %s", table)
	}
	vd := tab.Segment()
	out := make([]string, vd.n)
	buf := make(Row, len(vd.cols))
	for i := 0; i < vd.n; i++ {
		vd.rowInto(buf, i)
		s := ""
		for j, v := range buf {
			if j > 0 {
				s += "|"
			}
			s += v.String()
		}
		out[i] = s
	}
	return out
}

// nullDB is testDB plus a typed table carrying NULLs in every column kind,
// so vectorized filters and aggregates see null bitmaps on int, float,
// bool, date and dictionary columns alike.
func nullDB(t *testing.T) *Database {
	t.Helper()
	db := testDB(t, ProfileHashJoin)
	if _, err := db.CreateTable(&TableDef{
		Name: "TTyped",
		Columns: []Column{
			{Name: "k", Type: TInt, NotNull: true},
			{Name: "n", Type: TInt},
			{Name: "f", Type: TFloat},
			{Name: "s", Type: TText},
			{Name: "b", Type: TBool},
			{Name: "d", Type: TDate},
		},
		PrimaryKey: []int{0},
	}); err != nil {
		t.Fatal(err)
	}
	null := Value{}
	rows := []Row{
		{NewInt(1), NewInt(10), NewFloat(1.5), NewString("alpha"), NewBool(true), NewDate(100)},
		{NewInt(2), null, NewFloat(-2.5), NewString("beta"), NewBool(false), null},
		{NewInt(3), NewInt(30), null, null, null, NewDate(300)},
		{NewInt(4), NewInt(10), NewFloat(4.0), NewString("alpha"), NewBool(true), NewDate(100)},
		{NewInt(5), NewInt(-7), NewFloat(1.5), NewString("gamma"), null, null},
	}
	for _, r := range rows {
		if err := db.Insert("TTyped", r); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// batchIdentityQueries covers every vectorized operator plus its fallback
// edges: pushdown comparisons in both literal positions, LIKE/IN/IS NULL,
// NOT (row fallback), hash joins with residuals, DISTINCT, aggregates with
// and without HAVING (HAVING falls back), projection, ORDER BY and LIMIT
// over batched input, unions, and NULL-heavy typed columns.
var batchIdentityQueries = []string{
	"SELECT * FROM TProduct WHERE size = 'big'",
	"SELECT product FROM TProduct WHERE size <> 'small' ORDER BY product",
	"SELECT * FROM TEmployee WHERE id > 1 AND branch = 'B1'",
	"SELECT * FROM TEmployee WHERE 2 <= id OR name LIKE 'J%'",
	"SELECT name FROM TEmployee WHERE branch IN ('B1', 'B9') ORDER BY name",
	"SELECT name FROM TEmployee WHERE branch NOT IN ('B1')",
	"SELECT name FROM TEmployee WHERE NOT (id = 1) ORDER BY name",
	"SELECT e.name, p.size FROM TEmployee e JOIN TSellsProduct s ON e.id = s.id JOIN TProduct p ON s.product = p.product ORDER BY e.name, p.size",
	"SELECT e.name FROM TEmployee e, TSellsProduct s, TProduct p WHERE e.id = s.id AND s.product = p.product AND p.size = 'small'",
	"SELECT e.name, s.product FROM TEmployee e LEFT JOIN TSellsProduct s ON e.id = s.id ORDER BY e.name, s.product",
	"SELECT id, task FROM TEmployee NATURAL JOIN TAssignment ORDER BY id, task",
	"SELECT DISTINCT size FROM TProduct ORDER BY size",
	"SELECT branch FROM TEmployee UNION SELECT branch FROM TAssignment",
	"SELECT branch FROM TEmployee UNION ALL SELECT branch FROM TAssignment",
	"SELECT COUNT(*) FROM TSellsProduct",
	"SELECT branch, COUNT(*) AS n FROM TEmployee GROUP BY branch ORDER BY branch",
	"SELECT branch, COUNT(*) FROM TEmployee GROUP BY branch HAVING COUNT(*) > 1",
	"SELECT MIN(id), MAX(id), SUM(id), AVG(id) FROM TEmployee",
	"SELECT COUNT(DISTINCT size) FROM TProduct",
	"SELECT id FROM TEmployee ORDER BY id DESC LIMIT 2",
	"SELECT v.name FROM (SELECT name, id FROM TEmployee WHERE branch = 'B1') AS v WHERE v.id = 2",
	"SELECT k FROM TTyped WHERE n = 10 ORDER BY k",
	"SELECT k FROM TTyped WHERE n IS NULL",
	"SELECT k FROM TTyped WHERE n IS NOT NULL ORDER BY k",
	"SELECT k FROM TTyped WHERE f > 1.0 AND b = TRUE ORDER BY k",
	"SELECT k FROM TTyped WHERE s IN ('alpha', 'gamma') ORDER BY k",
	"SELECT k FROM TTyped WHERE s LIKE 'a%' ORDER BY k",
	"SELECT k FROM TTyped WHERE d >= 100 OR f < 0 ORDER BY k",
	"SELECT DISTINCT n FROM TTyped ORDER BY n",
	"SELECT s, COUNT(*), SUM(n), MIN(f), MAX(d) FROM TTyped GROUP BY s ORDER BY s",
	"SELECT a.k, b.k FROM TTyped a JOIN TTyped b ON a.s = b.s WHERE a.k < b.k ORDER BY a.k, b.k",
}

// TestBatchRowOperatorIdentity executes every query at batch sizes 1 (the
// row path), 2 and 3 (forcing many partial batches over tiny tables), and
// the default, asserting byte-identical results. Both join profiles run:
// sort-merge falls back to row execution, hash-join vectorizes.
func TestBatchRowOperatorIdentity(t *testing.T) {
	for _, profile := range []Profile{ProfileHashJoin, ProfileSortMerge} {
		db := nullDB(t)
		db.Profile = profile
		for _, sql := range batchIdentityQueries {
			sel, err := Parse(sql)
			if err != nil {
				t.Fatalf("[%v] parse %q: %v", profile, sql, err)
			}
			base, err := db.ExecSelectOpts(sel, ExecOptions{BatchSize: 1, Parallelism: 1})
			if err != nil {
				t.Fatalf("[%v] row path %q: %v", profile, sql, err)
			}
			want := renderRes(base)
			for _, bs := range []int{2, 3, 0} {
				got, err := db.ExecSelectOpts(sel, ExecOptions{BatchSize: bs, Parallelism: 1})
				if err != nil {
					t.Fatalf("[%v] batch=%d %q: %v", profile, bs, sql, err)
				}
				if g := renderRes(got); g != want {
					t.Errorf("[%v] batch=%d diverges on %q\nrow path:\n%s\nbatched:\n%s", profile, bs, sql, want, g)
				}
			}
		}
	}
}

// TestBatchScanDoesNotMutateSegment mirrors the row-path immutability suite
// on columnar storage: ORDER BY and UNION over segment-backed scans must
// leave both the row heap and the cached segment untouched.
func TestBatchScanDoesNotMutateSegment(t *testing.T) {
	db := testDB(t, ProfileHashJoin)
	beforeRows := baseRowsSnapshot(t, db, "TProduct")
	beforeSeg := segmentSnapshot(t, db, "TProduct")
	for _, sql := range []string{
		"SELECT * FROM TProduct ORDER BY size, product",
		"SELECT * FROM TProduct UNION ALL SELECT * FROM TProduct",
		"SELECT product FROM TProduct WHERE size = 'big' ORDER BY product DESC",
	} {
		if _, err := db.Query(sql); err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
	}
	afterRows := baseRowsSnapshot(t, db, "TProduct")
	afterSeg := segmentSnapshot(t, db, "TProduct")
	for i := range beforeRows {
		if beforeRows[i] != afterRows[i] {
			t.Fatalf("batch scans mutated base row %d: %q -> %q", i, beforeRows[i], afterRows[i])
		}
		if beforeSeg[i] != afterSeg[i] {
			t.Fatalf("batch scans mutated segment row %d: %q -> %q", i, beforeSeg[i], afterSeg[i])
		}
	}
}

// TestSegmentInvalidatedByInsert pins the write path: a cached segment must
// be rebuilt after an insert, never served stale.
func TestSegmentInvalidatedByInsert(t *testing.T) {
	db := testDB(t, ProfileHashJoin)
	tab := db.Table("TProduct")
	seg := tab.Segment()
	if seg.n != 4 {
		t.Fatalf("segment rows = %d, want 4", seg.n)
	}
	if again := tab.Segment(); again != seg {
		t.Fatal("repeated Segment() calls rebuilt an unchanged segment")
	}
	if err := db.Insert("TProduct", Row{NewString("p9"), NewString("tiny")}); err != nil {
		t.Fatal(err)
	}
	fresh := tab.Segment()
	if fresh == seg {
		t.Fatal("insert did not invalidate the cached segment")
	}
	if fresh.n != 5 {
		t.Fatalf("rebuilt segment rows = %d, want 5", fresh.n)
	}
	res, err := db.Query("SELECT product FROM TProduct WHERE size = 'tiny'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "p9" {
		t.Fatalf("batch scan missed the inserted row: %v", res.Rows)
	}
}

// TestConcurrentBatchSelectsShareSegments is the columnar counterpart of
// TestConcurrentSelectsShareBaseTables: many goroutines scanning, joining
// and ordering over shared segments (the ci.sh -race run makes this a real
// race detector for the lazily built, shared vecData).
func TestConcurrentBatchSelectsShareSegments(t *testing.T) {
	db := nullDB(t)
	queries := []string{
		"SELECT * FROM TProduct ORDER BY size, product",
		"SELECT e.name, p.size FROM TEmployee e JOIN TSellsProduct s ON e.id = s.id JOIN TProduct p ON s.product = p.product",
		"SELECT DISTINCT size FROM TProduct",
		"SELECT s, COUNT(*) FROM TTyped GROUP BY s",
		"SELECT k FROM TTyped WHERE s LIKE 'a%' OR n IS NULL",
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := db.Query(queries[(g+i)%len(queries)]); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	rows := baseRowsSnapshot(t, db, "TProduct")
	if len(rows) != 4 || rows[0] != "p1|big" {
		t.Fatalf("concurrent batch reads corrupted TProduct: %v", rows)
	}
}

// TestExplainAnalyzeReportsBatches asserts the batches= annotations are
// truthful: present and consistent with the batch size on the vectorized
// path, absent when the executor is pinned to row-at-a-time.
func TestExplainAnalyzeReportsBatches(t *testing.T) {
	db := nullDB(t)
	stmt := MustParse("SELECT e.name FROM TEmployee e JOIN TSellsProduct s ON e.id = s.id WHERE e.id > 0")

	_, prof, err := db.ProfileSelectOpts(stmt, ExecOptions{BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	out := prof.Render()
	if !strings.Contains(out, "batches=") {
		t.Fatalf("vectorized profile carries no batches= annotation:\n%s", out)
	}
	scan := prof.Find("scan")
	if scan == nil || scan.Batches == 0 {
		t.Fatalf("scan node reports no batches:\n%s", out)
	}
	// 3 employee rows at batch size 2 is exactly 2 batches.
	if scan.Detail == "TEmployee" && scan.Batches != 2 {
		t.Fatalf("scan batches = %d, want 2:\n%s", scan.Batches, out)
	}
	join := prof.Find("hash join")
	if join == nil || join.Batches == 0 {
		t.Fatalf("hash join node reports no batches:\n%s", out)
	}

	_, prof, err = db.ProfileSelectOpts(stmt, ExecOptions{BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out := prof.Render(); strings.Contains(out, "batches=") {
		t.Fatalf("row-at-a-time profile claims batches:\n%s", out)
	}
}
