package sqldb

import (
	"fmt"
	"math"
	"strings"
)

// colMeta names one column of an intermediate relation. Both fields are
// lower-cased; table holds the alias qualifier ("" for computed columns).
type colMeta struct {
	table, name string
}

// findCol resolves a column reference against a relation layout. It returns
// the slot or -1. Ambiguous unqualified names resolve to the first match
// (MySQL-style leniency; the OBDA unfolder always emits qualified names).
func findCol(cols []colMeta, table, name string) int {
	lt, ln := strings.ToLower(table), strings.ToLower(name)
	for i, c := range cols {
		if c.name != ln {
			continue
		}
		if lt == "" || c.table == lt {
			return i
		}
	}
	return -1
}

// evalFn computes an expression over a row.
type evalFn func(Row) (Value, error)

// bindExpr compiles an expression against a relation layout.
func bindExpr(e Expr, cols []colMeta) (evalFn, error) {
	switch x := e.(type) {
	case *Lit:
		v := x.Val
		return func(Row) (Value, error) { return v, nil }, nil
	case *ColRef:
		slot := findCol(cols, x.Table, x.Name)
		if slot < 0 {
			return nil, fmt.Errorf("sqldb: unknown column %s", x)
		}
		return func(r Row) (Value, error) { return r[slot], nil }, nil
	case *BinOp:
		l, err := bindExpr(x.L, cols)
		if err != nil {
			return nil, err
		}
		r, err := bindExpr(x.R, cols)
		if err != nil {
			return nil, err
		}
		op := x.Op
		return func(row Row) (Value, error) {
			return applyBinOp(op, l, r, row)
		}, nil
	case *NotExpr:
		inner, err := bindExpr(x.E, cols)
		if err != nil {
			return nil, err
		}
		return func(row Row) (Value, error) {
			v, err := inner(row)
			if err != nil {
				return Null, err
			}
			if v.IsNull() {
				return Null, nil
			}
			return NewBool(!v.Bool()), nil
		}, nil
	case *IsNullExpr:
		inner, err := bindExpr(x.E, cols)
		if err != nil {
			return nil, err
		}
		neg := x.Negate
		return func(row Row) (Value, error) {
			v, err := inner(row)
			if err != nil {
				return Null, err
			}
			return NewBool(v.IsNull() != neg), nil
		}, nil
	case *InExpr:
		inner, err := bindExpr(x.E, cols)
		if err != nil {
			return nil, err
		}
		items := make([]evalFn, len(x.List))
		for i, it := range x.List {
			f, err := bindExpr(it, cols)
			if err != nil {
				return nil, err
			}
			items[i] = f
		}
		neg := x.Negate
		return func(row Row) (Value, error) {
			v, err := inner(row)
			if err != nil {
				return Null, err
			}
			if v.IsNull() {
				return Null, nil
			}
			sawNull := false
			for _, f := range items {
				iv, err := f(row)
				if err != nil {
					return Null, err
				}
				if iv.IsNull() {
					sawNull = true
					continue
				}
				if Equal(v, iv) {
					return NewBool(!neg), nil
				}
			}
			if sawNull {
				return Null, nil
			}
			return NewBool(neg), nil
		}, nil
	case *LikeExpr:
		inner, err := bindExpr(x.E, cols)
		if err != nil {
			return nil, err
		}
		pat, err := bindExpr(x.Pattern, cols)
		if err != nil {
			return nil, err
		}
		neg := x.Negate
		return func(row Row) (Value, error) {
			v, err := inner(row)
			if err != nil {
				return Null, err
			}
			pv, err := pat(row)
			if err != nil {
				return Null, err
			}
			if v.IsNull() || pv.IsNull() {
				return Null, nil
			}
			ok := likeMatch(v.String(), pv.String())
			return NewBool(ok != neg), nil
		}, nil
	case *FuncExpr:
		if isAggregateName(x.Name) {
			return nil, fmt.Errorf("sqldb: aggregate %s not allowed here", x.Name)
		}
		return bindScalarFunc(x, cols)
	}
	return nil, fmt.Errorf("sqldb: cannot bind expression %T", e)
}

func applyBinOp(op BinOpKind, l, r evalFn, row Row) (Value, error) {
	lv, err := l(row)
	if err != nil {
		return Null, err
	}
	// Short-circuit three-valued logic for AND/OR.
	switch op {
	case OpAnd:
		if !lv.IsNull() && !lv.Bool() {
			return NewBool(false), nil
		}
		rv, err := r(row)
		if err != nil {
			return Null, err
		}
		if !rv.IsNull() && !rv.Bool() {
			return NewBool(false), nil
		}
		if lv.IsNull() || rv.IsNull() {
			return Null, nil
		}
		return NewBool(true), nil
	case OpOr:
		if !lv.IsNull() && lv.Bool() {
			return NewBool(true), nil
		}
		rv, err := r(row)
		if err != nil {
			return Null, err
		}
		if !rv.IsNull() && rv.Bool() {
			return NewBool(true), nil
		}
		if lv.IsNull() || rv.IsNull() {
			return Null, nil
		}
		return NewBool(false), nil
	}
	rv, err := r(row)
	if err != nil {
		return Null, err
	}
	if lv.IsNull() || rv.IsNull() {
		return Null, nil
	}
	switch op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		c, err := Compare(lv, rv)
		if err != nil {
			// Incomparable kinds: SQL engines coerce; we return FALSE (a
			// mapping-template mismatch, pruned upstream in OBDA).
			return NewBool(false), nil
		}
		var ok bool
		switch op {
		case OpEq:
			ok = c == 0
		case OpNe:
			ok = c != 0
		case OpLt:
			ok = c < 0
		case OpLe:
			ok = c <= 0
		case OpGt:
			ok = c > 0
		case OpGe:
			ok = c >= 0
		}
		return NewBool(ok), nil
	case OpConcat:
		return NewString(lv.String() + rv.String()), nil
	case OpAdd, OpSub, OpMul, OpDiv:
		if lv.Kind == KindInt && rv.Kind == KindInt && op != OpDiv {
			switch op {
			case OpAdd:
				return NewInt(lv.I + rv.I), nil
			case OpSub:
				return NewInt(lv.I - rv.I), nil
			case OpMul:
				return NewInt(lv.I * rv.I), nil
			}
		}
		lf, ok1 := lv.AsFloat()
		rf, ok2 := rv.AsFloat()
		if !ok1 || !ok2 {
			return Null, fmt.Errorf("sqldb: arithmetic on non-numeric values %s, %s", lv.Kind, rv.Kind)
		}
		switch op {
		case OpAdd:
			return NewFloat(lf + rf), nil
		case OpSub:
			return NewFloat(lf - rf), nil
		case OpMul:
			return NewFloat(lf * rf), nil
		case OpDiv:
			if rf == 0 {
				return Null, nil
			}
			return NewFloat(lf / rf), nil
		}
	}
	return Null, fmt.Errorf("sqldb: unsupported operator %s", op)
}

// likeMatch implements SQL LIKE with % (any sequence) and _ (any char).
func likeMatch(s, pattern string) bool {
	return likeRec(s, pattern)
}

func likeRec(s, p string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			// collapse consecutive %
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(s[i:], p) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			s, p = s[1:], p[1:]
		default:
			if len(s) == 0 || !equalFoldByte(s[0], p[0]) {
				return false
			}
			s, p = s[1:], p[1:]
		}
	}
	return len(s) == 0
}

func equalFoldByte(a, b byte) bool {
	if a >= 'A' && a <= 'Z' {
		a += 'a' - 'A'
	}
	if b >= 'A' && b <= 'Z' {
		b += 'a' - 'A'
	}
	return a == b
}

func isAggregateName(name string) bool {
	switch name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

// exprHasAggregate reports whether the expression contains an aggregate call.
func exprHasAggregate(e Expr) bool {
	switch x := e.(type) {
	case *FuncExpr:
		if isAggregateName(x.Name) {
			return true
		}
		for _, a := range x.Args {
			if exprHasAggregate(a) {
				return true
			}
		}
	case *BinOp:
		return exprHasAggregate(x.L) || exprHasAggregate(x.R)
	case *NotExpr:
		return exprHasAggregate(x.E)
	case *IsNullExpr:
		return exprHasAggregate(x.E)
	case *InExpr:
		if exprHasAggregate(x.E) {
			return true
		}
		for _, it := range x.List {
			if exprHasAggregate(it) {
				return true
			}
		}
	case *LikeExpr:
		return exprHasAggregate(x.E) || exprHasAggregate(x.Pattern)
	}
	return false
}

func bindScalarFunc(x *FuncExpr, cols []colMeta) (evalFn, error) {
	args := make([]evalFn, len(x.Args))
	for i, a := range x.Args {
		f, err := bindExpr(a, cols)
		if err != nil {
			return nil, err
		}
		args[i] = f
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("sqldb: %s expects %d arguments, got %d", x.Name, n, len(args))
		}
		return nil
	}
	switch x.Name {
	case "UPPER":
		if err := need(1); err != nil {
			return nil, err
		}
		return func(r Row) (Value, error) {
			v, err := args[0](r)
			if err != nil || v.IsNull() {
				return v, err
			}
			return NewString(strings.ToUpper(v.String())), nil
		}, nil
	case "LOWER":
		if err := need(1); err != nil {
			return nil, err
		}
		return func(r Row) (Value, error) {
			v, err := args[0](r)
			if err != nil || v.IsNull() {
				return v, err
			}
			return NewString(strings.ToLower(v.String())), nil
		}, nil
	case "LENGTH":
		if err := need(1); err != nil {
			return nil, err
		}
		return func(r Row) (Value, error) {
			v, err := args[0](r)
			if err != nil || v.IsNull() {
				return v, err
			}
			return NewInt(int64(len(v.String()))), nil
		}, nil
	case "ABS":
		if err := need(1); err != nil {
			return nil, err
		}
		return func(r Row) (Value, error) {
			v, err := args[0](r)
			if err != nil || v.IsNull() {
				return v, err
			}
			switch v.Kind {
			case KindInt:
				if v.I < 0 {
					return NewInt(-v.I), nil
				}
				return v, nil
			case KindFloat:
				return NewFloat(math.Abs(v.F)), nil
			}
			return Null, fmt.Errorf("sqldb: ABS of %s", v.Kind)
		}, nil
	case "COALESCE":
		return func(r Row) (Value, error) {
			for _, f := range args {
				v, err := f(r)
				if err != nil {
					return Null, err
				}
				if !v.IsNull() {
					return v, nil
				}
			}
			return Null, nil
		}, nil
	case "CONCAT":
		return func(r Row) (Value, error) {
			var sb strings.Builder
			for _, f := range args {
				v, err := f(r)
				if err != nil {
					return Null, err
				}
				if v.IsNull() {
					return Null, nil
				}
				sb.WriteString(v.String())
			}
			return NewString(sb.String()), nil
		}, nil
	case "SUBSTR", "SUBSTRING":
		if len(args) != 2 && len(args) != 3 {
			return nil, fmt.Errorf("sqldb: SUBSTR expects 2 or 3 arguments")
		}
		return func(r Row) (Value, error) {
			v, err := args[0](r)
			if err != nil || v.IsNull() {
				return v, err
			}
			startV, err := args[1](r)
			if err != nil || startV.IsNull() {
				return Null, err
			}
			s := v.String()
			start, _ := startV.AsInt()
			if start < 1 {
				start = 1
			}
			if int(start) > len(s) {
				return NewString(""), nil
			}
			rest := s[start-1:]
			if len(args) == 3 {
				lenV, err := args[2](r)
				if err != nil || lenV.IsNull() {
					return Null, err
				}
				n, _ := lenV.AsInt()
				if n < 0 {
					n = 0
				}
				if int(n) < len(rest) {
					rest = rest[:n]
				}
			}
			return NewString(rest), nil
		}, nil
	case "YEAR":
		if err := need(1); err != nil {
			return nil, err
		}
		return func(r Row) (Value, error) {
			v, err := args[0](r)
			if err != nil || v.IsNull() {
				return v, err
			}
			switch v.Kind {
			case KindDate:
				y, _, _ := civilFromDays(v.I)
				return NewInt(int64(y)), nil
			case KindInt:
				return v, nil
			}
			return Null, fmt.Errorf("sqldb: YEAR of %s", v.Kind)
		}, nil
	}
	return nil, fmt.Errorf("sqldb: unknown function %s", x.Name)
}
