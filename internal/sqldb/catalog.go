package sqldb

import (
	"fmt"
	"sort"
	"strings"
)

// Database is a named collection of tables plus the execution profile used
// by its query planner.
type Database struct {
	Name    string
	Profile Profile
	tables  map[string]*Table
	order   []string // creation order, for deterministic iteration
}

// NewDatabase creates an empty database with the default profile.
func NewDatabase(name string) *Database {
	return &Database{Name: name, Profile: ProfileHashJoin, tables: make(map[string]*Table)}
}

// CreateTable adds a table; the definition is validated.
func (db *Database) CreateTable(def *TableDef) (*Table, error) {
	key := strings.ToLower(def.Name)
	if _, ok := db.tables[key]; ok {
		return nil, fmt.Errorf("sqldb: table %s already exists", def.Name)
	}
	t, err := NewTable(def)
	if err != nil {
		return nil, err
	}
	db.tables[key] = t
	db.order = append(db.order, key)
	return t, nil
}

// Table returns the named table or nil.
func (db *Database) Table(name string) *Table {
	return db.tables[strings.ToLower(name)]
}

// Tables returns all tables in creation order.
func (db *Database) Tables() []*Table {
	out := make([]*Table, 0, len(db.order))
	for _, k := range db.order {
		out = append(out, db.tables[k])
	}
	return out
}

// TableNames returns the table names in creation order.
func (db *Database) TableNames() []string {
	out := make([]string, 0, len(db.order))
	for _, k := range db.order {
		out = append(out, db.tables[k].Def.Name)
	}
	return out
}

// Insert adds a row to the named table, enforcing all constraints including
// foreign keys.
func (db *Database) Insert(table string, row Row) error {
	t := db.Table(table)
	if t == nil {
		return fmt.Errorf("sqldb: unknown table %s", table)
	}
	for _, fk := range t.Def.ForeignKeys {
		if hasNullAt(row, fk.Columns) {
			continue // SQL: NULL FK values are not checked
		}
		ref := db.Table(fk.RefTable)
		if ref == nil {
			return fmt.Errorf("sqldb: table %s: FK references unknown table %s", table, fk.RefTable)
		}
		vals := make([]Value, len(fk.Columns))
		for i, c := range fk.Columns {
			vals[i] = row[c]
		}
		if !db.refExists(ref, fk.RefColumns, vals) {
			return &ForeignKeyError{Table: table, RefTable: fk.RefTable}
		}
	}
	return t.insertUnchecked(row)
}

// InsertUnchecked adds a row without FK verification (bulk load fast path;
// VIG guarantees referential integrity by construction and re-validates via
// CheckIntegrity in tests).
func (db *Database) InsertUnchecked(table string, row Row) error {
	t := db.Table(table)
	if t == nil {
		return fmt.Errorf("sqldb: unknown table %s", table)
	}
	return t.insertUnchecked(row)
}

func (db *Database) refExists(ref *Table, refCols []int, vals []Value) bool {
	// Use the PK index when the referenced columns are the PK; otherwise a
	// secondary index.
	if ref.pkIndex != nil && sameCols(ref.Def.PrimaryKey, refCols) {
		return len(ref.pkIndex.LookupValues(vals)) > 0
	}
	idx := ref.EnsureIndex(refCols)
	return len(idx.LookupValues(vals)) > 0
}

func sameCols(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ForeignKeyError reports a referential-integrity violation.
type ForeignKeyError struct {
	Table, RefTable string
}

func (e *ForeignKeyError) Error() string {
	return fmt.Sprintf("sqldb: foreign key violation: %s -> %s", e.Table, e.RefTable)
}

// CheckIntegrity verifies every FK of every table; it returns the list of
// violations found (empty means the database is consistent).
func (db *Database) CheckIntegrity() []error {
	var errs []error
	for _, k := range db.order {
		t := db.tables[k]
		for _, fk := range t.Def.ForeignKeys {
			ref := db.Table(fk.RefTable)
			if ref == nil {
				errs = append(errs, fmt.Errorf("sqldb: %s: FK to missing table %s", t.Def.Name, fk.RefTable))
				continue
			}
			for _, row := range t.Rows {
				if hasNullAt(row, fk.Columns) {
					continue
				}
				vals := make([]Value, len(fk.Columns))
				for i, c := range fk.Columns {
					vals[i] = row[c]
				}
				if !db.refExists(ref, fk.RefColumns, vals) {
					errs = append(errs, &ForeignKeyError{Table: t.Def.Name, RefTable: fk.RefTable})
					break // one violation per FK is enough for a report
				}
			}
		}
	}
	return errs
}

// FKGraph returns the foreign-key adjacency (table -> referenced tables),
// used by VIG's cycle analysis.
func (db *Database) FKGraph() map[string][]string {
	g := make(map[string][]string)
	for _, k := range db.order {
		t := db.tables[k]
		name := strings.ToLower(t.Def.Name)
		g[name] = nil
		for _, fk := range t.Def.ForeignKeys {
			g[name] = append(g[name], strings.ToLower(fk.RefTable))
		}
	}
	return g
}

// TotalRows returns the sum of row counts over all tables.
func (db *Database) TotalRows() int {
	n := 0
	for _, t := range db.tables {
		n += len(t.Rows)
	}
	return n
}

// Summary renders a deterministic one-line-per-table overview.
func (db *Database) Summary() string {
	names := make([]string, 0, len(db.tables))
	for k := range db.tables {
		names = append(names, k)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, n := range names {
		t := db.tables[n]
		fmt.Fprintf(&sb, "%s: %d rows, %d cols\n", t.Def.Name, len(t.Rows), len(t.Def.Columns))
	}
	return sb.String()
}
