package sqldb

// Expression utilities shared by the unfolder's semantic query
// optimizations and the static analyzer (internal/analyze): splitting
// WHERE clauses into conjuncts, re-qualifying column references when a
// subquery is flattened into its enclosing arm, and generic traversal.

// Conjuncts splits an expression at top-level ANDs. A nil expression
// yields nil; anything that is not an AND is returned as a single
// conjunct.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*BinOp); ok && b.Op == OpAnd {
		return append(Conjuncts(b.L), Conjuncts(b.R)...)
	}
	return []Expr{e}
}

// AndAll joins conjuncts back into one expression (nil when empty).
func AndAll(conds []Expr) Expr {
	var out Expr
	for _, c := range conds {
		if out == nil {
			out = c
		} else {
			out = &BinOp{Op: OpAnd, L: out, R: c}
		}
	}
	return out
}

// QualifyColumns returns a deep copy of e with every column reference
// re-qualified by alias (alias "" removes qualifiers). The unfolder uses
// it to hoist a mapping view's WHERE clause onto a base-table alias; the
// analyzer uses alias "" to compare conditions modulo qualification.
func QualifyColumns(e Expr, alias string) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *ColRef:
		return &ColRef{Table: alias, Name: x.Name}
	case *Lit:
		return x
	case *BinOp:
		return &BinOp{Op: x.Op, L: QualifyColumns(x.L, alias), R: QualifyColumns(x.R, alias)}
	case *NotExpr:
		return &NotExpr{E: QualifyColumns(x.E, alias)}
	case *IsNullExpr:
		return &IsNullExpr{E: QualifyColumns(x.E, alias), Negate: x.Negate}
	case *InExpr:
		out := &InExpr{E: QualifyColumns(x.E, alias), Negate: x.Negate}
		for _, it := range x.List {
			out.List = append(out.List, QualifyColumns(it, alias))
		}
		return out
	case *LikeExpr:
		return &LikeExpr{E: QualifyColumns(x.E, alias), Pattern: QualifyColumns(x.Pattern, alias), Negate: x.Negate}
	case *FuncExpr:
		out := &FuncExpr{Name: x.Name, Star: x.Star, Distinct: x.Distinct}
		for _, a := range x.Args {
			out.Args = append(out.Args, QualifyColumns(a, alias))
		}
		return out
	}
	return e
}

// WalkExpr visits e and every sub-expression in pre-order. A nil
// expression is not visited.
func WalkExpr(e Expr, visit func(Expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch x := e.(type) {
	case *BinOp:
		WalkExpr(x.L, visit)
		WalkExpr(x.R, visit)
	case *NotExpr:
		WalkExpr(x.E, visit)
	case *IsNullExpr:
		WalkExpr(x.E, visit)
	case *InExpr:
		WalkExpr(x.E, visit)
		for _, it := range x.List {
			WalkExpr(it, visit)
		}
	case *LikeExpr:
		WalkExpr(x.E, visit)
		WalkExpr(x.Pattern, visit)
	case *FuncExpr:
		for _, a := range x.Args {
			WalkExpr(a, visit)
		}
	}
}

// ColumnRefs collects every column reference in e (pre-order).
func ColumnRefs(e Expr) []*ColRef {
	var out []*ColRef
	WalkExpr(e, func(x Expr) {
		if c, ok := x.(*ColRef); ok {
			out = append(out, c)
		}
	})
	return out
}
